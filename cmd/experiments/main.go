// Command experiments reproduces the paper's tables and figures. It runs
// one or all registered artifacts against a shared cached runner, so the
// embedding grid is trained once per invocation.
//
// Usage:
//
//	experiments -list
//	experiments -id fig2 -config bench
//	experiments -all -config bench
//	experiments -id fig1 -config bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"anchor"
)

func main() { os.Exit(run()) }

func run() int {
	id := flag.String("id", "", "artifact id to run (see -list)")
	all := flag.Bool("all", false, "run every registered artifact")
	list := flag.Bool("list", false, "list artifact ids")
	config := flag.String("config", "small", "config scale: small, bench, repro")
	workers := flag.Int("workers", 0, "training and measure goroutines (0 = all CPUs; result is identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(anchor.ExperimentIDs(), "\n"))
		return 0
	}
	var cfg anchor.ExperimentConfig
	switch *config {
	case "small":
		cfg = anchor.SmallExperimentConfig()
	case "bench":
		cfg = anchor.BenchExperimentConfig()
	case "repro":
		cfg = anchor.ReproExperimentConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		return 2
	}
	cfg.Workers = *workers

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var err error
	switch {
	case *all:
		err = anchor.RunAllExperiments(cfg, nil, os.Stdout)
	case *id != "":
		err = anchor.RunExperiment(cfg, *id, os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "pass -id <artifact> or -all (use -list for ids)")
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
