package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FPReduce enforces the ordered-reduction clause of the determinism
// contract: floating-point addition is not associative, so a sum whose
// term order depends on goroutine scheduling differs bitwise between runs
// even when every term is identical. A mutex makes such an accumulation
// race-free but not order-free, which is why -race stays silent; the
// sanctioned shape is shard-private accumulators folded in ascending shard
// order by parallel.Run's reduce callback (or any other fixed-order
// reduction).
var FPReduce = &Analyzer{
	Name: "fpreduce",
	Doc: "flags floating-point accumulation into variables shared across " +
		"goroutines and accumulation of channel receives, where " +
		"reduction order depends on scheduling; use internal/parallel's " +
		"ordered reductions",
	Run: runFPReduce,
}

func runFPReduce(pass *Pass) error {
	for _, file := range pass.Files {
		for _, lit := range goroutineBodies(file) {
			checkGoroutineAccum(pass, lit)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				checkChanAccum(pass, rng)
			}
			return true
		})
	}
	return nil
}

// checkGoroutineAccum flags compound float assignment to captured state
// inside a goroutine body.
func checkGoroutineAccum(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested launches are visited on their own
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isCompoundAdd(as.Tok) {
			return true
		}
		lhs := as.Lhs[0]
		t := pass.TypesInfo.Types[lhs].Type
		if t == nil || !isFloat(t) {
			return true
		}
		base, captured := capturedBase(pass.TypesInfo, lhs, lit.Pos(), lit.End())
		if base == nil || !captured {
			return true
		}
		pass.Reportf(as.Pos(),
			"floating-point accumulation into captured %s inside a goroutine: reduction order depends on scheduling (mutexes serialize but do not order); accumulate per shard and fold with parallel.Run's ordered reduce",
			types.ExprString(lhs))
		return true
	})
}

// checkChanAccum flags float accumulation of values received by ranging
// over a channel: with more than one sender, arrival order — and so the
// rounded sum — depends on scheduling.
func checkChanAccum(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isCompoundAdd(as.Tok) {
			return true
		}
		lhs := as.Lhs[0]
		t := pass.TypesInfo.Types[lhs].Type
		if t == nil || !isFloat(t) {
			return true
		}
		pass.Reportf(as.Pos(),
			"floating-point accumulation of channel receives into %s: arrival order depends on scheduling; collect into an indexed buffer and reduce in fixed order",
			types.ExprString(lhs))
		return true
	})
}

// isCompoundAdd reports whether tok is an order-sensitive compound
// floating-point assignment operator.
func isCompoundAdd(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}
