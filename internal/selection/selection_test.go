package selection

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mkCand builds a candidate with a single measure "m".
func mkCand(dim, prec int, measureVal, di float64) Candidate {
	return Candidate{
		Dim: dim, Precision: prec,
		Measures: map[string]float64{"m": measureVal},
		TrueDI:   di,
	}
}

func TestPairwiseErrorPerfectMeasure(t *testing.T) {
	// Measure value == true DI: zero error.
	cands := []Candidate{
		mkCand(8, 32, 5, 5), mkCand(16, 16, 3, 3), mkCand(32, 8, 8, 8),
	}
	if e := PairwiseError(cands, "m"); e != 0 {
		t.Fatalf("perfect measure error = %v", e)
	}
}

func TestPairwiseErrorAntiMeasure(t *testing.T) {
	// Measure inversely related to DI: always wrong.
	cands := []Candidate{
		mkCand(8, 32, -5, 5), mkCand(16, 16, -3, 3), mkCand(32, 8, -8, 8),
	}
	if e := PairwiseError(cands, "m"); e != 1 {
		t.Fatalf("anti measure error = %v, want 1", e)
	}
}

func TestPairwiseErrorTiesSkipped(t *testing.T) {
	cands := []Candidate{mkCand(8, 32, 1, 4), mkCand(16, 16, 2, 4)}
	if e := PairwiseError(cands, "m"); e != 0 {
		t.Fatalf("tied DI should contribute no error: %v", e)
	}
}

func TestPairwiseWorstCase(t *testing.T) {
	cands := []Candidate{
		mkCand(8, 32, 1, 10), // measure loves this one, but DI = 10
		mkCand(16, 16, 2, 3),
		mkCand(32, 8, 3, 2),
	}
	if w := PairwiseWorstCase(cands, "m"); w != 8 {
		t.Fatalf("worst case = %v, want 8 (10 vs 2)", w)
	}
}

func TestBudgetGroups(t *testing.T) {
	cands := []Candidate{
		mkCand(8, 32, 0, 0),  // 256 bits
		mkCand(32, 8, 0, 0),  // 256 bits
		mkCand(64, 4, 0, 0),  // 256 bits
		mkCand(16, 16, 0, 0), // 256 bits
		mkCand(8, 1, 0, 0),   // 8 bits, alone -> dropped
	}
	groups := BudgetGroups(cands)
	if len(groups) != 1 || len(groups[0]) != 4 {
		t.Fatalf("groups = %v", groups)
	}
	for i := 1; i < len(groups[0]); i++ {
		if groups[0][i].Precision < groups[0][i-1].Precision {
			t.Fatal("group not sorted by precision")
		}
	}
}

func TestOracleDistance(t *testing.T) {
	cands := []Candidate{
		mkCand(8, 32, 5, 6),  // budget 256
		mkCand(32, 8, 1, 4),  // budget 256, measure pick, DI 4
		mkCand(64, 4, 9, 2),  // budget 256, oracle (DI 2)
		mkCand(16, 32, 2, 7), // budget 512
		mkCand(64, 8, 4, 3),  // budget 512, oracle; measure picks 16x32 (DI 7)
	}
	mean, worst := OracleDistance(cands, MeasureSelector("m"))
	// Budget 256: pick DI 4, oracle 2 → 2. Budget 512: pick 7, oracle 3 → 4.
	if math.Abs(mean-3) > 1e-12 || worst != 4 {
		t.Fatalf("mean=%v worst=%v, want 3 and 4", mean, worst)
	}
}

func TestOracleSelectorIsZero(t *testing.T) {
	// A selector that picks the true best must have zero distance.
	rng := rand.New(rand.NewSource(1))
	var cands []Candidate
	for _, dim := range []int{8, 16, 32, 64} {
		for _, prec := range []int{1, 2, 4, 8, 16, 32} {
			cands = append(cands, mkCand(dim, prec, rng.Float64(), rng.Float64()*10))
		}
	}
	oracle := func(g []Candidate) Candidate {
		best := g[0]
		for _, c := range g[1:] {
			if c.TrueDI < best.TrueDI {
				best = c
			}
		}
		return best
	}
	mean, worst := OracleDistance(cands, oracle)
	if mean != 0 || worst != 0 {
		t.Fatalf("oracle distance = %v/%v", mean, worst)
	}
}

func TestHighLowPrecisionSelectors(t *testing.T) {
	g := []Candidate{mkCand(64, 4, 0, 1), mkCand(8, 32, 0, 2), mkCand(32, 8, 0, 3)}
	if HighPrecision(g).Precision != 32 {
		t.Fatal("HighPrecision wrong")
	}
	if LowPrecision(g).Precision != 4 {
		t.Fatal("LowPrecision wrong")
	}
}

func TestPairwiseErrorBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = mkCand(8*(1+rng.Intn(5)), 1<<uint(rng.Intn(6)), rng.NormFloat64(), rng.Float64()*20)
		}
		e := PairwiseError(cands, "m")
		w := PairwiseWorstCase(cands, "m")
		mean, worst := OracleDistance(cands, MeasureSelector("m"))
		return e >= 0 && e <= 1 && w >= 0 && mean >= 0 && worst >= mean-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureSelectorTieBreak(t *testing.T) {
	g := []Candidate{mkCand(64, 4, 1, 5), mkCand(8, 32, 1, 6)}
	if MeasureSelector("m")(g).Precision != 32 {
		t.Fatal("ties should break toward higher precision")
	}
}
