// Tradeoff sweeps the dimension x precision grid for one embedding
// algorithm through the Service API and reports the paper's
// stability-memory tradeoff (Figures 1 and 2): downstream instability
// falls roughly linearly in log2(memory), and the fitted slope is the
// paper's rule of thumb. The Service's artifact store trains each
// dimension once and reuses it across the precision ladder.
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"anchor"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600
	ccfg.NumDocs = 300

	dims := []int{8, 16, 32, 64}
	precisions := []int{1, 4, 32}
	const seed = 1

	cfg := anchor.SmallExperimentConfig()
	cfg.Corpus = ccfg
	cfg.Dims = dims

	svc, err := anchor.NewService(anchor.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("dim  bits  memory(bits/word)  disagreement(%)")
	var pts []anchor.LinearLogPoint
	for _, dim := range dims {
		for _, bits := range precisions {
			st, err := svc.Stability(ctx, "mc", "sst2", dim, bits, seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d  %4d  %17d  %6.2f\n", dim, bits, st.MemoryBits, st.Disagreement)
			pts = append(pts, anchor.LinearLogPoint{Task: "sst2", X: float64(st.MemoryBits), Y: st.Disagreement})
		}
	}

	fit := anchor.FitStabilityMemoryTrend(pts)
	fmt.Printf("\nfitted rule of thumb: doubling memory lowers instability by %.2f%% absolute\n", fit.Slope)
	fmt.Println("(the paper reports 1.3% at Wikipedia scale; the shape, not the constant, is the claim)")
}
