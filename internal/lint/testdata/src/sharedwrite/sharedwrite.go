// Package sharedwrite holds fixtures for the sharedwrite analyzer:
// goroutine closures may write captured slices only through indices that
// partition the buffer per goroutine; map stores and appends from a
// goroutine are always flagged.
package sharedwrite

import "sync"

// FillByParam partitions indices through a closure parameter: blessed.
func FillByParam(n int) []float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = float64(i)
		}(i)
	}
	wg.Wait()
	return out
}

// FillCaptured indexes through a captured variable: the analyzer cannot
// prove the writes disjoint, so it flags the store.
func FillCaptured(n int) []float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = 1 // want `write to captured out through captured index i`
		}()
	}
	wg.Wait()
	return out
}

// Index builds a map from goroutines: concurrent map stores fault.
func Index(words []string) map[string]int {
	m := make(map[string]int)
	var wg sync.WaitGroup
	for i, w := range words {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			m[w] = i // want `store into captured map m inside a goroutine`
		}(i, w)
	}
	wg.Wait()
	return m
}

// Gather appends to a captured slice from goroutines: even under a mutex
// the element order depends on scheduling.
func Gather(n int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			out = append(out, i) // want `append to captured out inside a goroutine`
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return out
}

// GatherSharded gives each goroutine its own slice slot and concatenates
// in fixed shard order: the sanctioned shape.
func GatherSharded(n, shards int) []int {
	parts := make([][]int, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var local []int
			for i := s; i < n; i += shards {
				local = append(local, i)
			}
			parts[s] = local
		}(s)
	}
	wg.Wait()
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
