package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"anchor"
)

// tinyConfig keeps HTTP tests at the experiments test scale.
func tinyConfig() anchor.ExperimentConfig {
	cfg := anchor.SmallExperimentConfig()
	cfg.Algorithms = []string{"mc"}
	cfg.Dims = []int{8, 16}
	cfg.Precisions = []int{1, 32}
	cfg.Seeds = []int64{1}
	cfg.SentimentTasks = []string{"sst2"}
	cfg.NEREnabled = false
	return cfg
}

func newTestServer(t *testing.T, opts ...anchor.ServiceOption) (*Server, *anchor.Service) {
	t.Helper()
	svc, err := anchor.NewService(append([]anchor.ServiceOption{anchor.WithConfig(tinyConfig())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return New(svc, nil), svc
}

// do issues one request against the handler and decodes the JSON reply.
func do(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if out != nil && rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s: %v (body %s)", method, path, err, rr.Body.String())
		}
	}
	return rr
}

func errCode(t *testing.T, rr *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body %q: %v", rr.Body.String(), err)
	}
	return body.Error.Code
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	var resp struct {
		Status     string   `json:"status"`
		Algorithms []string `json:"algorithms"`
		Tasks      []string `json:"tasks"`
		Measures   []string `json:"measures"`
	}
	rr := do(t, h, http.MethodGet, "/v1/healthz", "", &resp)
	if rr.Code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Algorithms) == 0 || len(resp.Tasks) == 0 || len(resp.Measures) != 5 {
		t.Fatalf("healthz registries: %+v", resp)
	}
	if rr := do(t, h, http.MethodPost, "/v1/healthz", "", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz = %d, want 405", rr.Code)
	}
}

func TestTrainEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	var resp struct {
		Algo   string `json:"algo"`
		Corpus string `json:"corpus"`
		Dim    int    `json:"dim"`
		Rows   int    `json:"rows"`
	}
	rr := do(t, h, http.MethodPost, "/v1/train", `{"algo":"mc","year":2017,"dim":8,"seed":1}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("train: %d %s", rr.Code, rr.Body.String())
	}
	if resp.Algo != "mc" || resp.Corpus != "wiki17" || resp.Dim != 8 || resp.Rows == 0 {
		t.Fatalf("train response: %+v", resp)
	}

	// Unknown algorithm -> 400 with a structured code.
	rr = do(t, h, http.MethodPost, "/v1/train", `{"algo":"elmo","year":2017,"dim":8}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_algorithm" {
		t.Fatalf("unknown algo: %d %s", rr.Code, rr.Body.String())
	}
	// Bad year -> 400.
	rr = do(t, h, http.MethodPost, "/v1/train", `{"algo":"mc","year":1999,"dim":8}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad year: %d", rr.Code)
	}
	// Unknown JSON field -> 400.
	rr = do(t, h, http.MethodPost, "/v1/train", `{"algo":"mc","yr":2017}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("typoed field: %d", rr.Code)
	}
}

func TestMeasuresEndpointBitwiseEqualsLibrary(t *testing.T) {
	// Server at workers=4, library reference at workers=1: the HTTP
	// response must be bitwise identical to the library path for any
	// worker count (acceptance criterion).
	srv, _ := newTestServer(t, anchor.WithWorkers(4))
	h := srv.Handler()
	var resp anchor.MeasureReport
	rr := do(t, h, http.MethodPost, "/v1/measures", `{"algo":"mc","dim":8,"bits":1,"seed":1}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("measures: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Values) != 5 || resp.MemoryBits != 8 {
		t.Fatalf("measures response: %+v", resp)
	}

	ref, err := anchor.NewService(anchor.WithConfig(tinyConfig()), anchor.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MeasureCell(context.Background(), "mc", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range want.Values {
		if resp.Values[name] != v {
			t.Fatalf("measure %s over HTTP %v != library %v", name, resp.Values[name], v)
		}
	}

	rr = do(t, h, http.MethodPost, "/v1/measures", `{"algo":"elmo","dim":8}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_algorithm" {
		t.Fatalf("unknown algo: %d %s", rr.Code, rr.Body.String())
	}
}

func TestStabilityEndpointBitwiseEqualsLibrary(t *testing.T) {
	srv, _ := newTestServer(t, anchor.WithWorkers(4))
	h := srv.Handler()
	var resp anchor.StabilityReport
	rr := do(t, h, http.MethodPost, "/v1/stability", `{"algo":"mc","task":"sst2","dim":8,"bits":1,"seed":1}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("stability: %d %s", rr.Code, rr.Body.String())
	}

	ref, err := anchor.NewService(anchor.WithConfig(tinyConfig()), anchor.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Stability(context.Background(), "mc", "sst2", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disagreement != want.Disagreement || resp.Accuracy != want.Accuracy {
		t.Fatalf("HTTP stability %+v != library %+v", resp, want)
	}

	rr = do(t, h, http.MethodPost, "/v1/stability", `{"algo":"mc","task":"imdb","dim":8}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_task" {
		t.Fatalf("unknown task: %d %s", rr.Code, rr.Body.String())
	}
}

func TestSelectEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	var resp anchor.SelectReport
	rr := do(t, h, http.MethodPost, "/v1/select",
		`{"algo":"mc","dims":[8,16],"precisions":[1,32],"budget_bits":64}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("select: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Candidates) != 4 || resp.Best == nil || resp.Best.MemoryBits > 64 {
		t.Fatalf("select response: %+v", resp)
	}

	rr = do(t, h, http.MethodPost, "/v1/select", `{"algo":"mc","dims":[8],"precisions":[1],"measure":"vibes"}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_measure" {
		t.Fatalf("unknown measure: %d %s", rr.Code, rr.Body.String())
	}
	rr = do(t, h, http.MethodPost, "/v1/select", `{"algo":"mc","dims":[],"precisions":[1]}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("empty grid: %d", rr.Code)
	}
}

// TestCanceledRequestAborts covers the 499-style abort: a request whose
// context is already canceled must not compute anything.
func TestCanceledRequestAborts(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct{ path, body string }{
		{"/v1/train", `{"algo":"mc","year":2017,"dim":8}`},
		{"/v1/measures", `{"algo":"mc","dim":8,"bits":1}`},
		{"/v1/stability", `{"algo":"mc","task":"sst2","dim":8,"bits":1}`},
		{"/v1/select", `{"algo":"mc","dims":[8],"precisions":[1]}`},
	} {
		req := httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body)).WithContext(ctx)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != StatusClientClosedRequest {
			t.Fatalf("%s with canceled ctx = %d, want %d (%s)", tc.path, rr.Code, StatusClientClosedRequest, rr.Body.String())
		}
		if errCode(t, rr) != "client_closed_request" {
			t.Fatalf("%s error code = %s", tc.path, errCode(t, rr))
		}
	}
	if st := svc.StoreStats(); st.Computes != 0 {
		t.Fatalf("canceled requests trained embeddings: %+v", st)
	}
}

// TestSecondRequestServedFromStore asserts the acceptance criterion that
// an identical second request is served from the artifact store.
func TestSecondRequestServedFromStore(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	body := `{"algo":"mc","dim":8,"bits":1,"seed":1}`
	if rr := do(t, h, http.MethodPost, "/v1/measures", body, nil); rr.Code != http.StatusOK {
		t.Fatalf("first: %d", rr.Code)
	}
	computes := svc.StoreStats().Computes
	if computes == 0 {
		t.Fatal("first request trained nothing")
	}
	if rr := do(t, h, http.MethodPost, "/v1/measures", body, nil); rr.Code != http.StatusOK {
		t.Fatalf("second: %d", rr.Code)
	}
	if got := svc.StoreStats().Computes; got != computes {
		t.Fatalf("second identical request retrained: %d -> %d", computes, got)
	}
}

// TestConcurrentRequests hammers the server with concurrent identical and
// distinct queries over a real HTTP listener: all must succeed, identical
// queries must produce byte-identical bodies, and (under -race) the
// shared store/runner must be data-race free.
func TestConcurrentRequests(t *testing.T) {
	srv, _ := newTestServer(t, anchor.WithWorkers(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) ([]byte, int, error) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return b, resp.StatusCode, err
	}

	const perKind = 8
	type result struct {
		kind string
		body []byte
	}
	kinds := map[string]string{
		"measures-d8":  `{"algo":"mc","dim":8,"bits":1,"seed":1}`,
		"measures-d16": `{"algo":"mc","dim":16,"bits":1,"seed":1}`,
		"stability-d8": `{"algo":"mc","task":"sst2","dim":8,"bits":1,"seed":1}`,
	}
	paths := map[string]string{
		"measures-d8":  "/v1/measures",
		"measures-d16": "/v1/measures",
		"stability-d8": "/v1/stability",
	}

	var wg sync.WaitGroup
	results := make(chan result, 3*perKind)
	errs := make(chan error, 3*perKind)
	for kind := range kinds {
		for i := 0; i < perKind; i++ {
			wg.Add(1)
			go func(kind string) {
				defer wg.Done()
				body, code, err := post(paths[kind], kinds[kind])
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", kind, code, body)
					return
				}
				results <- result{kind, body}
			}(kind)
		}
	}
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	first := map[string][]byte{}
	for res := range results {
		if prev, ok := first[res.kind]; ok {
			if !bytes.Equal(prev, res.body) {
				t.Fatalf("%s: concurrent responses differ:\n%s\nvs\n%s", res.kind, prev, res.body)
			}
		} else {
			first[res.kind] = res.body
		}
	}
	if len(first) != 3 {
		t.Fatalf("missing result kinds: %v", first)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	rr := do(t, h, http.MethodGet, "/v1/nope", "", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown route = %d, want 404", rr.Code)
	}
	// 404s use the structured envelope too.
	if errCode(t, rr) != "not_found" {
		t.Fatalf("404 code = %q (body %s)", errCode(t, rr), rr.Body.String())
	}
	if rr := do(t, h, http.MethodGet, "/v1/measures", "", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET measures = %d, want 405", rr.Code)
	}
}
