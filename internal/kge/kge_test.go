package kge

import (
	"testing"
	"testing/quick"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	return GenerateGraph(TestGraphConfig())
}

func TestGenerateGraphShape(t *testing.T) {
	cfg := TestGraphConfig()
	g := GenerateGraph(cfg)
	if len(g.Train) != cfg.TrainN || len(g.Valid) != cfg.ValidN || len(g.Test) != cfg.TestN {
		t.Fatalf("split sizes %d/%d/%d", len(g.Train), len(g.Valid), len(g.Test))
	}
	seen := map[Triplet]bool{}
	for _, tr := range g.Train {
		if tr.H == tr.T {
			t.Fatal("self-loop triplet")
		}
		if int(tr.H) >= cfg.Entities || int(tr.T) >= cfg.Entities || int(tr.R) >= cfg.Relations {
			t.Fatal("triplet indices out of range")
		}
		if seen[tr] {
			t.Fatal("duplicate triplet")
		}
		seen[tr] = true
	}
}

func TestGenerateGraphDeterministic(t *testing.T) {
	a := testGraph(t)
	b := testGraph(t)
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("graph generation not deterministic")
		}
	}
}

func TestSubsample(t *testing.T) {
	g := testGraph(t)
	s := Subsample(g, 0.95, 1)
	want := int(float64(len(g.Train)) * 0.95)
	if len(s.Train) != want {
		t.Fatalf("subsample size %d, want %d", len(s.Train), want)
	}
	if len(s.Valid) != len(g.Valid) || len(s.Test) != len(g.Test) {
		t.Fatal("valid/test must be unchanged")
	}
	// All kept triplets must come from the original train set.
	in := map[Triplet]bool{}
	for _, tr := range g.Train {
		in[tr] = true
	}
	for _, tr := range s.Train {
		if !in[tr] {
			t.Fatal("subsample invented a triplet")
		}
	}
}

func TestTransELearnsStructure(t *testing.T) {
	g := testGraph(t)
	m := TrainTransE(g, DefaultTransEConfig(16, 1))
	ranks := m.TailRanks(g.Test)
	mr := MeanRank(ranks)
	// Random guessing gives mean rank ≈ Entities/2 = 60.
	if mr > 30 {
		t.Fatalf("TransE mean rank %.1f no better than chance", mr)
	}
	t.Logf("TransE mean tail rank: %.2f / %d entities", mr, g.NumEntities)
}

func TestTransEDeterministic(t *testing.T) {
	g := testGraph(t)
	a := TrainTransE(g, DefaultTransEConfig(8, 3))
	b := TrainTransE(g, DefaultTransEConfig(8, 3))
	for i := range a.Entity.Data {
		if a.Entity.Data[i] != b.Entity.Data[i] {
			t.Fatal("TransE training not deterministic")
		}
	}
}

func TestUnstableRankAt10(t *testing.T) {
	a := []int{1, 5, 100, 50}
	b := []int{2, 40, 100, 55}
	// Diffs: 1, 35, 0, 5 → one above 10.
	if got := UnstableRankAt10(a, b); got != 0.25 {
		t.Fatalf("unstable-rank@10 = %v, want 0.25", got)
	}
	if UnstableRankAt10(nil, nil) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestUnstableRankSymmetryProperty(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		a := []int{int(seedA), int(seedB), int(seedA) + int(seedB)}
		b := []int{int(seedB), int(seedA), 5}
		return UnstableRankAt10(a, b) == UnstableRankAt10(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassificationSetBalanced(t *testing.T) {
	g := testGraph(t)
	set := BuildClassificationSet(g, g.Valid, 1)
	if len(set.Triplets) != 2*len(g.Valid) {
		t.Fatalf("set size %d", len(set.Triplets))
	}
	pos := 0
	for _, l := range set.Labels {
		if l {
			pos++
		}
	}
	if pos != len(g.Valid) {
		t.Fatal("positives != source triplets")
	}
}

func TestTripletClassificationBeatsChance(t *testing.T) {
	g := testGraph(t)
	m := TrainTransE(g, DefaultTransEConfig(16, 1))
	val := BuildClassificationSet(g, g.Valid, 1)
	test := BuildClassificationSet(g, g.Test, 2)
	th := m.TuneThresholds(g.NumRelations, val)
	acc := ClassificationAccuracy(test, m.Classify(test, th))
	if acc < 0.6 {
		t.Fatalf("triplet classification accuracy %.3f barely above chance", acc)
	}
	t.Logf("triplet classification accuracy: %.3f", acc)
}

func TestQuantizePairMoreBitsCloser(t *testing.T) {
	g := testGraph(t)
	m := TrainTransE(g, DefaultTransEConfig(8, 1))
	var prev float64 = -1
	for _, bits := range []int{1, 4, 8, 32} {
		q, _ := QuantizePair(m, m, bits)
		var mse float64
		for i := range m.Entity.Data {
			d := m.Entity.Data[i] - q.Entity.Data[i]
			mse += d * d
		}
		if prev >= 0 && mse > prev+1e-12 {
			t.Fatalf("MSE increased at %d bits", bits)
		}
		prev = mse
	}
}

func TestKGEInstabilityPipeline(t *testing.T) {
	// End-to-end Section 6.1: FB15K vs FB15K-95, instability between the
	// two models on link prediction and triplet classification.
	g := testGraph(t)
	g95 := Subsample(g, 0.95, 7)
	cfg := DefaultTransEConfig(16, 1)
	mFull := TrainTransE(g, cfg)
	m95 := TrainTransE(g95, cfg)

	ur := UnstableRankAt10(m95.TailRanks(g.Test), mFull.TailRanks(g.Test))
	if ur <= 0 || ur >= 1 {
		t.Fatalf("unstable-rank@10 = %v, want in (0,1)", ur)
	}
	t.Logf("unstable-rank@10: %.3f", ur)

	test := BuildClassificationSet(g, g.Test, 2)
	val := BuildClassificationSet(g, g.Valid, 1)
	th := m95.TuneThresholds(g.NumRelations, val) // shared thresholds, Fig. 3 protocol
	pa := m95.Classify(test, th)
	pb := mFull.Classify(test, th)
	diff := 0
	for i := range pa {
		if pa[i] != pb[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(len(pa))
	if frac <= 0 || frac >= 0.5 {
		t.Fatalf("triplet classification disagreement %.3f implausible", frac)
	}
	t.Logf("triplet classification disagreement: %.3f", frac)
}

func TestBestThresholdSeparable(t *testing.T) {
	ss := []scored{
		{0.1, true}, {0.2, true}, {0.9, false}, {1.1, false},
	}
	th := bestThreshold(ss)
	if th <= 0.2 || th >= 0.9 {
		t.Fatalf("threshold %v should separate 0.2 and 0.9", th)
	}
}

func TestHitsAtAndMRR(t *testing.T) {
	ranks := []int{1, 2, 11, 50}
	if got := HitsAt(ranks, 10); got != 0.5 {
		t.Fatalf("hits@10 = %v, want 0.5", got)
	}
	if got := HitsAt(ranks, 1); got != 0.25 {
		t.Fatalf("hits@1 = %v, want 0.25", got)
	}
	want := (1.0 + 0.5 + 1.0/11 + 0.02) / 4
	if got := MeanReciprocalRank(ranks); got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("MRR = %v, want %v", got, want)
	}
	if HitsAt(nil, 10) != 0 || MeanReciprocalRank(nil) != 0 {
		t.Fatal("empty metrics should be 0")
	}
}

func TestHitsImproveWithTraining(t *testing.T) {
	g := testGraph(t)
	short := DefaultTransEConfig(16, 1)
	short.Epochs = 1
	long := DefaultTransEConfig(16, 1)
	weak := TrainTransE(g, short)
	strong := TrainTransE(g, long)
	hw := HitsAt(weak.TailRanks(g.Test), 10)
	hs := HitsAt(strong.TailRanks(g.Test), 10)
	if hs <= hw {
		t.Fatalf("training did not improve hits@10: %v -> %v", hw, hs)
	}
}
