package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CacheDir is where anchorlint persists its go-list load cache and
// per-package fact stores across runs. Empty disables disk caching (the
// in-process memo still applies); drivers may point it elsewhere.
var CacheDir = defaultCacheDir()

func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "anchorlint")
}

// goListMemo de-duplicates `go list -export` invocations within one
// process: every analyzer run and every linttest fixture that lists the
// same (dir, patterns) pair reuses the first result.
var goListMemo struct {
	sync.Mutex
	m map[string][]*listPackage
}

// goListCached resolves a `go list -export` invocation through two cache
// layers: an in-process memo (same process, same patterns) and a disk
// cache under CacheDir keyed by a hash of the module's source files (so
// repeated `make lint` runs skip the go tool entirely while the tree is
// unchanged). A disk hit is only trusted while every export-data file it
// names still exists in the build cache.
func goListCached(dir string, patterns []string) ([]*listPackage, error) {
	memoKey := dir + "\x00" + strings.Join(patterns, "\x00")
	goListMemo.Lock()
	if goListMemo.m == nil {
		goListMemo.m = make(map[string][]*listPackage)
	}
	if pkgs, ok := goListMemo.m[memoKey]; ok {
		goListMemo.Unlock()
		return pkgs, nil
	}
	goListMemo.Unlock()

	var diskKey string
	if CacheDir != "" {
		if h, err := moduleHash(dir, patterns); err == nil {
			diskKey = h
			if pkgs, ok := readListCache(diskKey); ok {
				goListMemo.Lock()
				goListMemo.m[memoKey] = pkgs
				goListMemo.Unlock()
				return pkgs, nil
			}
		}
	}

	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	if diskKey != "" {
		writeListCache(diskKey, pkgs)
	}
	goListMemo.Lock()
	goListMemo.m[memoKey] = pkgs
	goListMemo.Unlock()
	return pkgs, nil
}

// moduleHash fingerprints the module containing dir (or the working
// directory when dir is empty): every .go file plus go.mod/go.sum from
// the module root down, hashed by path and content, together with the
// invocation dir and patterns. Hashing the whole module — not just dir —
// matters when dir is a fixture directory: its imports resolve to
// export data whose validity depends on sources elsewhere in the tree.
func moduleHash(dir string, patterns []string) (string, error) {
	root := dir
	if root == "" {
		var err error
		if root, err = os.Getwd(); err != nil {
			return "", err
		}
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		root = parent
	}
	h := sha256.New()
	fmt.Fprintf(h, "dir %q patterns %q\n", dir, patterns)
	var paths []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") || name == "go.mod" || name == "go.sum" {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %q\n", path)
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func listCachePath(key string) string {
	return filepath.Join(CacheDir, "golist-"+key+".json")
}

func readListCache(key string) ([]*listPackage, bool) {
	data, err := os.ReadFile(listCachePath(key))
	if err != nil {
		return nil, false
	}
	var pkgs []*listPackage
	if err := json.Unmarshal(data, &pkgs); err != nil {
		return nil, false
	}
	// The go build cache is garbage-collected independently of ours: if
	// any export file vanished, the whole entry is useless.
	for _, p := range pkgs {
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return nil, false
			}
		}
	}
	return pkgs, true
}

func writeListCache(key string, pkgs []*listPackage) {
	if err := os.MkdirAll(CacheDir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(pkgs)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(CacheDir, "golist-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), listCachePath(key))
}
