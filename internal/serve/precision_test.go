package serve

import (
	"fmt"
	"math"
	"net/http"
	"testing"

	"anchor"
)

// TestQuantizedNeighborsEndpointBitwiseEqualsLibrary: a quantized
// artifact served over HTTP must answer bitwise identically to the
// library path — same neighbor ids and Float64-bit-identical scores —
// even when the HTTP service runs more workers than the library
// reference.
func TestQuantizedNeighborsEndpointBitwiseEqualsLibrary(t *testing.T) {
	refSvc, err := anchor.NewService(anchor.WithConfig(tinyConfig()), anchor.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := newTestServer(t, anchor.WithWorkers(4))
	h := srv.Handler()
	words := queryWords(t, refSvc, 8)
	ctx := t.Context()

	for _, bits := range []int{1, 8} {
		want, err := refSvc.Neighbors(ctx, "mc", 8, words,
			anchor.QueryK(5), anchor.QueryPrecision(bits))
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf(`{"algo":"mc","words":["%s","%s","%s","%s","%s","%s","%s","%s"],"dim":8,"k":5,"bits":%d,"seed":1}`,
			words[0], words[1], words[2], words[3], words[4], words[5], words[6], words[7], bits)
		var got anchor.NeighborsReport
		if rr := do(t, h, http.MethodPost, "/v1/neighbors", body, &got); rr.Code != http.StatusOK {
			t.Fatalf("bits=%d: %d %s", bits, rr.Code, rr.Body.String())
		}
		if got.Bits != bits {
			t.Fatalf("response bits %d, want %d", got.Bits, bits)
		}
		for i, r := range got.Results {
			for j, n := range r.Neighbors {
				ref := want.Results[i].Neighbors[j]
				if n.ID != ref.ID || math.Float64bits(n.Score) != math.Float64bits(ref.Score) {
					t.Fatalf("bits=%d word %s neighbor %d: HTTP (%d, %x) vs library (%d, %x)",
						bits, r.Word, j, n.ID, math.Float64bits(n.Score), ref.ID, math.Float64bits(ref.Score))
				}
			}
		}
	}

	// The vectors GET surface takes bits too, and returns the quantized
	// rows the library returns.
	wantV, err := refSvc.Query(ctx, "mc", 8, words[:2], anchor.QueryPrecision(8))
	if err != nil {
		t.Fatal(err)
	}
	var gotV anchor.VectorsReport
	path := fmt.Sprintf("/v1/vectors?algo=mc&dim=8&bits=8&words=%s,%s", words[0], words[1])
	if rr := do(t, h, http.MethodGet, path, "", &gotV); rr.Code != http.StatusOK {
		t.Fatalf("vectors: %d %s", rr.Code, rr.Body.String())
	}
	if gotV.Bits != 8 {
		t.Fatalf("vectors response bits %d, want 8", gotV.Bits)
	}
	for i, v := range gotV.Vectors {
		for j, x := range v.Vector {
			if math.Float64bits(x) != math.Float64bits(wantV.Vectors[i].Vector[j]) {
				t.Fatalf("vector %s[%d] differs from library path", v.Word, j)
			}
		}
	}
}

// TestHealthzReportsResidentSnapshots: after quantized and full-precision
// queries, /v1/healthz lists each resident snapshot with its precision
// mode, bits, and byte footprint.
func TestHealthzReportsResidentSnapshots(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	words := queryWords(t, svc, 2)

	for _, bits := range []int{0, 8} {
		body := fmt.Sprintf(`{"algo":"mc","words":["%s"],"dim":8,"k":3,"bits":%d}`, words[0], bits)
		if rr := do(t, h, http.MethodPost, "/v1/neighbors", body, nil); rr.Code != http.StatusOK {
			t.Fatalf("bits=%d: %d %s", bits, rr.Code, rr.Body.String())
		}
	}

	var resp struct {
		Query struct {
			ResidentBytes int64                 `json:"resident_bytes"`
			Snapshots     []anchor.SnapshotInfo `json:"snapshots"`
		} `json:"query"`
	}
	if rr := do(t, h, http.MethodGet, "/v1/healthz", "", &resp); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body.String())
	}
	modes := map[string]anchor.SnapshotInfo{}
	var total int64
	for _, in := range resp.Query.Snapshots {
		modes[in.Mode] = in
		total += in.Bytes
	}
	if in, ok := modes["codes"]; !ok || in.Bits != 8 {
		t.Fatalf("no 8-bit codes snapshot in healthz: %+v", resp.Query.Snapshots)
	}
	if in, ok := modes["float64"]; !ok || in.Bits != 32 {
		t.Fatalf("no full-precision snapshot in healthz: %+v", resp.Query.Snapshots)
	}
	if resp.Query.ResidentBytes != total || total <= 0 {
		t.Fatalf("resident_bytes %d inconsistent with snapshot sum %d", resp.Query.ResidentBytes, total)
	}
	// At this test's tiny dim=8 the shared word index dominates both
	// footprints; the >= 4x matrix-bytes guarantee at serving dims is
	// pinned in internal/query. Here just check codes are clearly smaller.
	if modes["codes"].Bytes*2 > modes["float64"].Bytes {
		t.Fatalf("codes snapshot %d bytes vs float64 %d: want >= 2x smaller",
			modes["codes"].Bytes, modes["float64"].Bytes)
	}
}

// TestServingBudgetEndToEnd: with a serving budget, a dim-0 HTTP query is
// answered from the auto-selected cell and healthz advertises the budget.
func TestServingBudgetEndToEnd(t *testing.T) {
	srv, svc := newTestServer(t, anchor.WithServingBudget(16))
	h := srv.Handler()
	words := queryWords(t, svc, 1)

	body := fmt.Sprintf(`{"algo":"mc","words":["%s"],"k":3}`, words[0])
	var got anchor.NeighborsReport
	if rr := do(t, h, http.MethodPost, "/v1/neighbors", body, &got); rr.Code != http.StatusOK {
		t.Fatalf("budget query: %d %s", rr.Code, rr.Body.String())
	}
	if got.Dim <= 0 || got.Bits <= 0 || got.Dim*got.Bits > 16 {
		t.Fatalf("auto-selected cell d=%d b=%d violates budget 16", got.Dim, got.Bits)
	}
	var resp struct {
		ServingBudgetBits int `json:"serving_budget_bits"`
	}
	if rr := do(t, h, http.MethodGet, "/v1/healthz", "", &resp); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body.String())
	}
	if resp.ServingBudgetBits != 16 {
		t.Fatalf("healthz serving_budget_bits = %d, want 16", resp.ServingBudgetBits)
	}
}
