package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"unsafe"

	"anchor/internal/compress"
	"anchor/internal/embedding"
	"anchor/internal/faults"
	"anchor/internal/matrix"
)

// Binary embedding artifact format ("ANCB"), the store's zero-copy fast
// path. The gob tier decodes every float through reflection; this format
// lays the vector matrix out as a raw little-endian row-major payload at a
// 64-byte-aligned offset, so a load is one os.ReadFile (or mmap) plus a
// header check — the payload bytes are reinterpreted in place as the
// embedding's float64 storage with no per-row allocation and no copy.
//
// Version 3 layout (all integers little-endian):
//
//	[0:4)   magic "ANCB"
//	[4:8)   format version (currently 3)
//	[8:12)  element kind: 0 = float64, 1 = float32, 2 = quantized codes
//	[12:16) Meta.Dim
//	[16:24) rows
//	[24:32) cols
//	[32:40) Meta.Seed
//	[40:44) Meta.Precision
//	[44:48) len(algorithm string)
//	[48:52) len(corpus string)
//	[52:56) len(words blob)
//	[56:64) payload offset (from file start, 64-byte aligned)
//	[64:72) Meta.Clip (float64 bits; quantization clipping threshold)
//	[72:76) code bits (= Meta.Precision for the quantized kind, else 0)
//	[76:80) artifact checksum (CRC-32C over the entire artifact —
//	        header, strings, padding, payload — with this field zeroed)
//	[80:..) algorithm, corpus, words ("\n"-joined), zero padding
//	[payload offset:) payload, row-major
//
// The checksum is the integrity half of the failure model's "correct bits
// or clean error" rule: a torn write or bit rot in the payload surfaces as
// ErrCorrupt at decode time (quarantined and recovered by the store's disk
// tier), never as a quietly different embedding. Version 1 artifacts
// (64-byte header, no clip/code-bits fields, kinds 0 and 1 only) and
// version 2 artifacts (identical layout with [76:80) reserved as zero)
// remain readable; they simply carry no payload checksum to verify.
//
// Float64 payloads preserve bits exactly, so a binary load is bitwise
// identical to the gob artifact it was written alongside. Float32 payloads
// store float32(v) per element — lossless exactly when every value is
// float32-representable — at half the bytes. Quantized payloads store each
// element as a b-bit index into the 2^b level grid determined by
// (Meta.Clip, Meta.Precision), packed LSB-first with rows byte-aligned:
// 8-64x smaller than float64 and lossless exactly when every value sits on
// the grid, which is how compress.Quantize produces artifacts (levels are
// float32-rounded by construction). PickKind chooses the smallest kind
// that is lossless for a given embedding.

// ElemKind selects the binary payload's element representation.
type ElemKind uint32

const (
	// Float64 stores each element as its exact float64 bits (lossless).
	Float64 ElemKind = 0
	// Float32 stores float32(v) per element: half the bytes, exact only
	// for float32-representable values.
	Float32 ElemKind = 1
	// Quantized stores each element as a packed b-bit code over the level
	// grid of (Meta.Clip, Meta.Precision): exact only for b-bit quantized
	// embeddings, at b bits per element instead of 64.
	Quantized ElemKind = 2
)

const (
	binMagic = "ANCB"
	// BinaryVersion is the current binary artifact format version. Readers
	// accept versions 1 through this; the format evolves by bumping it.
	BinaryVersion  = 3
	binHeaderLenV1 = 64
	binHeaderLen   = 80
	binAlign       = 64
)

// ErrCorrupt tags decode failures caused by damaged artifact bytes —
// truncation, torn writes, bit rot, checksum mismatches — as opposed to a
// missing file or an I/O error. The disk tier quarantines artifacts whose
// load fails with errors.Is(err, ErrCorrupt) and recovers from the gob
// tier or a recompute.
var ErrCorrupt = errors.New("corrupt binary artifact")

// corruptf builds a decode error carrying the ErrCorrupt sentinel.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("store: %w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// castagnoli is the CRC-32C table for payload checksums (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BinaryExt is the file extension of binary artifacts in the disk tier.
const BinaryExt = ".bin"

// hostLittleEndian reports whether the host stores integers little-endian
// (the only layout the zero-copy cast is valid for; big-endian hosts fall
// back to element-wise decoding).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func elemSize(kind ElemKind) int {
	if kind == Float32 {
		return 4
	}
	return 8
}

// codeRowBytes is the packed size of one row of b-bit codes.
func codeRowBytes(cols, bits int) int { return (cols*bits + 7) / 8 }

// payloadSize returns the payload byte count for a rows-by-cols matrix of
// the given kind (codeBits is used only by the quantized kind).
func payloadSize(rows, cols int, kind ElemKind, codeBits int) int {
	if kind == Quantized {
		return rows * codeRowBytes(cols, codeBits)
	}
	return rows * cols * elemSize(kind)
}

// kindName names an element kind for error messages and health reports.
func kindName(kind ElemKind) string {
	switch kind {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Quantized:
		return "quantized"
	}
	return fmt.Sprintf("kind%d", kind)
}

// wordsBlob joins the vocabulary into the on-disk blob. Words cannot
// contain "\n" (the corpus tokenizer never produces one); an embedding
// with no vocabulary stores an empty blob.
func wordsBlob(words []string) []byte {
	if len(words) == 0 {
		return nil
	}
	return []byte(strings.Join(words, "\n"))
}

func splitWordsBlob(blob []byte) []string {
	if len(blob) == 0 {
		return nil
	}
	return strings.Split(string(blob), "\n")
}

// quantGrid returns the level grid a quantized payload of e decodes
// through, or nil when e's Meta does not describe a b<=8 quantization.
func quantGrid(e *embedding.Embedding) []float64 {
	b := e.Meta.Precision
	if b < 1 || b > 8 || !(e.Meta.Clip > 0) || math.IsInf(e.Meta.Clip, 0) {
		return nil
	}
	return compress.Levels(e.Meta.Clip, b)
}

// onGrid reports whether every value of data is exactly one of the
// ascending levels.
func onGrid(data []float64, levels []float64) bool {
	for _, v := range data {
		i := sort.SearchFloat64s(levels, v)
		if i >= len(levels) || levels[i] != v {
			return false
		}
	}
	return true
}

// PickKind returns the smallest element kind that stores e losslessly:
// packed b-bit codes when the embedding is b<=8-bit quantized and every
// value sits on its (Clip, Precision) level grid, float32 when every
// value is float32-representable, float64 otherwise. Artifacts written
// with the picked kind decode to bitwise identical embeddings.
func PickKind(e *embedding.Embedding) ElemKind {
	if lv := quantGrid(e); lv != nil && onGrid(e.Vectors.Data, lv) {
		return Quantized
	}
	if matrix.Float32Exact(e.Vectors.Data) {
		return Float32
	}
	return Float64
}

// WriteBinary writes e to w in the binary artifact format with the given
// payload element kind.
func WriteBinary(w io.Writer, e *embedding.Embedding, kind ElemKind) error {
	if kind != Float64 && kind != Float32 && kind != Quantized {
		return fmt.Errorf("store: unknown element kind %d", kind)
	}
	var codes *matrix.Codes
	codeBits := 0
	if kind == Quantized {
		lv := quantGrid(e)
		if lv == nil {
			return fmt.Errorf("store: quantized kind needs 1..8-bit precision and a positive clip, have b=%d clip=%v",
				e.Meta.Precision, e.Meta.Clip)
		}
		var err error
		codes, err = matrix.NewCodesFromDense(e.Vectors, lv, e.Meta.Precision)
		if err != nil {
			return fmt.Errorf("store: quantized kind: %w", err)
		}
		codeBits = e.Meta.Precision
	}
	algo, corp := []byte(e.Meta.Algorithm), []byte(e.Meta.Corpus)
	words := wordsBlob(e.Words)
	varLen := len(algo) + len(corp) + len(words)
	payloadOff := (binHeaderLen + varLen + binAlign - 1) / binAlign * binAlign
	pad := make([]byte, payloadOff-binHeaderLen-varLen)

	var h [binHeaderLen]byte
	copy(h[0:4], binMagic)
	binary.LittleEndian.PutUint32(h[4:8], BinaryVersion)
	binary.LittleEndian.PutUint32(h[8:12], uint32(kind))
	binary.LittleEndian.PutUint32(h[12:16], uint32(e.Meta.Dim))
	binary.LittleEndian.PutUint64(h[16:24], uint64(e.Rows()))
	binary.LittleEndian.PutUint64(h[24:32], uint64(e.Dim()))
	binary.LittleEndian.PutUint64(h[32:40], uint64(e.Meta.Seed))
	binary.LittleEndian.PutUint32(h[40:44], uint32(e.Meta.Precision))
	binary.LittleEndian.PutUint32(h[44:48], uint32(len(algo)))
	binary.LittleEndian.PutUint32(h[48:52], uint32(len(corp)))
	binary.LittleEndian.PutUint32(h[52:56], uint32(len(words)))
	binary.LittleEndian.PutUint64(h[56:64], uint64(payloadOff))
	binary.LittleEndian.PutUint64(h[64:72], math.Float64bits(e.Meta.Clip))
	binary.LittleEndian.PutUint32(h[72:76], uint32(codeBits))

	// The checksum covers the whole artifact — header (with the checksum
	// field still zero), strings, padding, payload — so any flipped byte,
	// vocabulary strings included, surfaces as ErrCorrupt at decode time
	// rather than a quietly different embedding. The header precedes the
	// payload on the wire and io.Writer cannot seek, so the payload
	// streams twice: once through the digest, once to w.
	d := crc32.New(castagnoli)
	d.Write(h[:])
	for _, b := range [][]byte{algo, corp, words, pad} {
		d.Write(b)
	}
	if kind == Quantized {
		d.Write(codes.Data)
	} else if err := writePayload(d, e.Vectors.Data, kind); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(h[76:80], d.Sum32())

	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("store: write binary header: %w", err)
	}
	for _, b := range [][]byte{algo, corp, words, pad} {
		if len(b) == 0 {
			continue
		}
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("store: write binary artifact: %w", err)
		}
	}
	if kind == Quantized {
		if len(codes.Data) == 0 {
			return nil
		}
		if _, err := w.Write(codes.Data); err != nil {
			return fmt.Errorf("store: write binary payload: %w", err)
		}
		return nil
	}
	return writePayload(w, e.Vectors.Data, kind)
}

// writePayload streams the matrix data as little-endian elements. On
// little-endian hosts the float64 payload is the matrix storage itself,
// written in one call.
func writePayload(w io.Writer, data []float64, kind ElemKind) error {
	if kind == Float64 && hostLittleEndian && len(data) > 0 {
		bytes := unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*8)
		_, err := w.Write(bytes)
		if err != nil {
			return fmt.Errorf("store: write binary payload: %w", err)
		}
		return nil
	}
	const chunk = 16 * 1024
	esz := elemSize(kind)
	buf := make([]byte, chunk*esz)
	for len(data) > 0 {
		n := len(data)
		if n > chunk {
			n = chunk
		}
		for i, v := range data[:n] {
			if kind == Float32 {
				binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
			} else {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
			}
		}
		if _, err := w.Write(buf[:n*esz]); err != nil {
			return fmt.Errorf("store: write binary payload: %w", err)
		}
		data = data[n:]
	}
	return nil
}

// DecodeBinary decodes a binary artifact from data. When the payload is
// float64, the host is little-endian, and the payload offset lands
// 8-byte-aligned in memory, the returned embedding's matrix aliases data
// directly (zero copy) — the caller must keep data immutable and alive for
// the embedding's lifetime (os.ReadFile allocations satisfy this; for
// mmap, see MapBinaryFile). Other payloads decode through one bulk
// allocation; nothing is allocated per row either way.
func DecodeBinary(data []byte) (*embedding.Embedding, error) {
	if len(data) < binHeaderLenV1 {
		return nil, corruptf("truncated: %d bytes < %d-byte header", len(data), binHeaderLenV1)
	}
	if string(data[0:4]) != binMagic {
		return nil, corruptf("not a binary artifact (magic %q)", data[0:4])
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	if version < 1 || version > BinaryVersion {
		return nil, fmt.Errorf("store: binary artifact version %d, want 1..%d", version, BinaryVersion)
	}
	headerLen := binHeaderLen
	if version == 1 {
		headerLen = binHeaderLenV1
	}
	if len(data) < headerLen {
		return nil, corruptf("truncated: %d bytes < %d-byte header", len(data), headerLen)
	}
	kind := ElemKind(binary.LittleEndian.Uint32(data[8:12]))
	if kind != Float64 && kind != Float32 && !(version >= 2 && kind == Quantized) {
		return nil, corruptf("unknown element kind %d (version %d)", kind, version)
	}
	metaDim := int(int32(binary.LittleEndian.Uint32(data[12:16])))
	rows := int(binary.LittleEndian.Uint64(data[16:24]))
	cols := int(binary.LittleEndian.Uint64(data[24:32]))
	seed := int64(binary.LittleEndian.Uint64(data[32:40]))
	prec := int(int32(binary.LittleEndian.Uint32(data[40:44])))
	algoLen := int(binary.LittleEndian.Uint32(data[44:48]))
	corpLen := int(binary.LittleEndian.Uint32(data[48:52]))
	wordsLen := int(binary.LittleEndian.Uint32(data[52:56]))
	payloadOff := int(binary.LittleEndian.Uint64(data[56:64]))
	var clip float64
	codeBits := 0
	if version >= 2 {
		clip = math.Float64frombits(binary.LittleEndian.Uint64(data[64:72]))
		codeBits = int(int32(binary.LittleEndian.Uint32(data[72:76])))
	}
	if kind == Quantized {
		if codeBits < 1 || codeBits > 8 || codeBits != prec {
			return nil, corruptf("quantized code bits %d (precision %d)", codeBits, prec)
		}
		if !(clip > 0) || math.IsInf(clip, 0) || math.IsNaN(clip) {
			return nil, corruptf("quantized clip %v", clip)
		}
	}

	if rows < 0 || cols < 0 || rows > math.MaxInt/8/max(cols, 1) {
		return nil, corruptf("%dx%d matrix", rows, cols)
	}
	if headerLen+algoLen+corpLen+wordsLen > payloadOff || payloadOff%binAlign != 0 {
		return nil, corruptf("payload offset %d under %d header bytes",
			payloadOff, headerLen+algoLen+corpLen+wordsLen)
	}
	want := payloadOff + payloadSize(rows, cols, kind, codeBits)
	if len(data) != want {
		return nil, corruptf("%d bytes, want %d for %dx%d %s",
			len(data), want, rows, cols, kindName(kind))
	}
	if version >= 3 {
		wantSum := binary.LittleEndian.Uint32(data[76:80])
		d := crc32.New(castagnoli)
		d.Write(data[:76])
		d.Write([]byte{0, 0, 0, 0}) // the checksum field, as hashed by the writer
		d.Write(data[80:])
		if got := d.Sum32(); got != wantSum {
			return nil, corruptf("artifact checksum %08x, want %08x", got, wantSum)
		}
	}

	off := headerLen
	algo := string(data[off : off+algoLen])
	off += algoLen
	corp := string(data[off : off+corpLen])
	off += corpLen
	words := splitWordsBlob(data[off : off+wordsLen])
	if words != nil && len(words) != rows {
		return nil, corruptf("%d words for %d rows", len(words), rows)
	}

	var vals []float64
	if kind == Quantized {
		codes := &matrix.Codes{
			Rows: rows, Cols: cols, Bits: codeBits,
			Levels:   compress.Levels(clip, codeBits),
			RowBytes: codeRowBytes(cols, codeBits),
			Data:     data[payloadOff:],
		}
		vals = codes.Dense().Data
	} else {
		vals = decodePayload(data[payloadOff:], rows*cols, kind)
	}
	return &embedding.Embedding{
		Vectors: matrix.NewDenseData(rows, cols, vals),
		Words:   words,
		Meta: embedding.Meta{
			Algorithm: algo, Corpus: corp, Dim: metaDim, Seed: seed, Precision: prec, Clip: clip,
		},
	}, nil
}

// decodePayload reinterprets (or decodes) n elements from payload.
func decodePayload(payload []byte, n int, kind ElemKind) []float64 {
	if n == 0 {
		return nil
	}
	if kind == Float64 && hostLittleEndian && uintptr(unsafe.Pointer(&payload[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), n)
	}
	vals := make([]float64, n)
	if kind == Float32 {
		for i := range vals {
			vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
		}
	} else {
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	}
	return vals
}

// SaveBinaryFile writes e to path in the binary format (not atomically;
// the store's disk tier goes through its own temp-file + rename).
func SaveBinaryFile(path string, e *embedding.Embedding, kind ElemKind) error {
	if err := faults.Error(siteWrite); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := WriteBinary(f, e, kind); err != nil {
		return err
	}
	return f.Sync()
}

// LoadBinaryFile reads a binary artifact in one os.ReadFile. The float64
// payload is used in place (see DecodeBinary), so the load allocates the
// file buffer and nothing per row.
func LoadBinaryFile(path string) (*embedding.Embedding, error) {
	if err := faults.Error(siteBinRead); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return DecodeBinary(faults.Corrupt(siteBinBytes, data))
}
