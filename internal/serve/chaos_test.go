package serve

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"anchor"
	"anchor/internal/faults"
)

// The chaos suite drives the HTTP API under a seeded fault schedule that
// spans every registered injection site — disk read errors, corrupted
// artifact bytes, write failures, load errors, latency, and handler
// panics — and asserts the degradation contract end to end: a request
// either succeeds with bytes identical to the fault-free oracle or fails
// with a structured, retryable error. Faults change availability, never
// answers. Run by `make chaos` (and the CI race job) with -race.

// chaosRequest is one entry of the request mix the suite replays.
type chaosRequest struct {
	method, path, body string
}

// chaosService builds a service whose read path is forced through every
// storage tier: a disk cache directory, a one-entry in-process artifact
// LRU, and a query snapshot budget of a single byte (one resident
// snapshot, evicted as soon as the mix alternates dimensions). Each
// alternation re-reads the artifact from disk, exercising the store
// fault sites on the serving path rather than only at warm-up.
func chaosService(t *testing.T, dir string) *anchor.Service {
	t.Helper()
	svc, err := anchor.NewService(
		anchor.WithConfig(tinyConfig()),
		anchor.WithCacheDir(dir),
		anchor.WithCacheCapacity(1),
		anchor.WithQueryBudget(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// chaosMix returns a request mix that alternates dimensions (forcing
// snapshot and artifact evictions between consecutive requests) across
// the neighbors and vectors endpoints.
func chaosMix(words []string) []chaosRequest {
	var mix []chaosRequest
	for _, dim := range []int{8, 16, 8, 16} {
		for _, w := range words {
			mix = append(mix, chaosRequest{
				http.MethodPost, "/v1/neighbors",
				fmt.Sprintf(`{"algo":"mc","dim":%d,"k":3,"words":[%q]}`, dim, w),
			})
		}
		mix = append(mix, chaosRequest{
			http.MethodGet,
			fmt.Sprintf("/v1/vectors?algo=mc&dim=%d&year=2017&seed=1&words=%s", dim, strings.Join(words, ",")),
			"",
		})
	}
	return mix
}

// checkChaosResponse asserts the degradation contract for one response:
// 200 bitwise-equal to the oracle, or one of the structured availability
// errors. Anything else — a different 2xx body, an unstructured error, a
// client-fault 4xx — is a contract violation.
func checkChaosResponse(t *testing.T, req chaosRequest, code int, body string, header http.Header, oracle string) {
	t.Helper()
	switch code {
	case http.StatusOK:
		if body != oracle {
			t.Errorf("%s %s: 200 body differs from fault-free oracle\n got: %s\nwant: %s",
				req.method, req.path, body, oracle)
		}
	case http.StatusTooManyRequests:
		if !strings.Contains(body, `"overloaded"`) || header.Get("Retry-After") == "" {
			t.Errorf("%s %s: malformed 429: %s", req.method, req.path, body)
		}
	case http.StatusServiceUnavailable:
		if !strings.Contains(body, `"deadline_exceeded"`) || header.Get("Retry-After") == "" {
			t.Errorf("%s %s: malformed 503: %s", req.method, req.path, body)
		}
	case http.StatusInternalServerError:
		if !strings.Contains(body, `"internal"`) && !strings.Contains(body, `"internal_panic"`) {
			t.Errorf("%s %s: malformed 500: %s", req.method, req.path, body)
		}
	default:
		t.Errorf("%s %s: status %d outside the degradation contract: %s",
			req.method, req.path, code, body)
	}
}

// chaosPlan is the seeded schedule: every registered fault site armed at
// once. Probabilistic rules model background flakiness; the deterministic
// Every/Count rules guarantee that corruption, panics, and long stalls
// actually fire during the serial stage regardless of scheduling.
func chaosPlan() *faults.Plan {
	return faults.MustPlan(8009,
		faults.Rule{Site: "store/bin.read", Kind: faults.KindError, Prob: 0.25},
		faults.Rule{Site: "store/bin.bytes", Kind: faults.KindCorrupt, Every: 3},
		faults.Rule{Site: "store/gob.read", Kind: faults.KindError, Prob: 0.2},
		faults.Rule{Site: "store/write", Kind: faults.KindError, Prob: 0.3},
		faults.Rule{Site: "query/load", Kind: faults.KindError, Prob: 0.15},
		faults.Rule{Site: "serve/latency", Kind: faults.KindLatency, Latency: time.Millisecond, Prob: 0.3},
		faults.Rule{Site: "serve/panic", Kind: faults.KindPanic, After: 10, Every: 11, Count: 2},
	)
}

// TestChaosSeededFaultSchedule is the headline chaos run. Stage one
// records a fault-free oracle for the whole request mix. Stage two
// replays the mix serially under the full seeded schedule — the visit
// order is deterministic, so the Every/Count rules provably fire — and
// stage three replays it from concurrent clients under the same
// schedule with admission control enabled. Every response in both
// stages must satisfy the contract, and once the schedule is lifted the
// server must serve the oracle bytes again with a healthy healthz.
func TestChaosSeededFaultSchedule(t *testing.T) {
	svc := chaosService(t, t.TempDir())
	srv := New(svc, nil, WithMaxInFlight(4), WithReadTimeout(30*time.Second))
	h := srv.Handler()
	mix := chaosMix(queryWords(t, svc, 3))

	// Stage 1: fault-free oracle.
	oracle := make([]string, len(mix))
	for i, req := range mix {
		rr := do(t, h, req.method, req.path, req.body, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("oracle %s %s: %d %s", req.method, req.path, rr.Code, rr.Body.String())
		}
		oracle[i] = rr.Body.String()
	}

	plan := chaosPlan()
	deactivate := faults.Activate(plan)

	// Stage 2: serial replay under faults — deterministic visit order.
	for round := 0; round < 3; round++ {
		for i, req := range mix {
			rr := do(t, h, req.method, req.path, req.body, nil)
			checkChaosResponse(t, req, rr.Code, rr.Body.String(), rr.Result().Header, oracle[i])
		}
	}
	for _, want := range []struct {
		site string
		kind faults.Kind
	}{
		{"store/bin.bytes", faults.KindCorrupt},
		{"serve/panic", faults.KindPanic},
		{"serve/latency", faults.KindLatency},
	} {
		if plan.Fired(want.site, want.kind) == 0 {
			t.Errorf("schedule never fired %v at %s; the run proved nothing", want.kind, want.site)
		}
	}

	// Stage 3: concurrent storm under the same schedule.
	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, req := range mix {
				rr := do(t, h, req.method, req.path, req.body, nil)
				checkChaosResponse(t, req, rr.Code, rr.Body.String(), rr.Result().Header, oracle[i])
			}
		}()
	}
	wg.Wait()
	deactivate()

	// Recovery: with the schedule lifted the exact oracle bytes return and
	// the process reports healthy.
	for i, req := range mix {
		rr := do(t, h, req.method, req.path, req.body, nil)
		if rr.Code != http.StatusOK || rr.Body.String() != oracle[i] {
			t.Fatalf("post-chaos %s %s: %d (bitwise match: %v)",
				req.method, req.path, rr.Code, rr.Body.String() == oracle[i])
		}
	}
	if rr := do(t, h, http.MethodGet, "/v1/healthz", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("healthz after chaos: %d %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, h, http.MethodGet, "/v1/livez", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("livez after chaos: %d", rr.Code)
	}
}

// TestChaosCorruptArtifactRecoveredOverHTTP plants real on-disk damage —
// a flipped byte in a persisted .bin artifact — and asserts the HTTP
// read path recovers without a single 5xx: the damaged file is
// quarantined, the answer is served from the gob fallback bitwise
// identical to the pre-damage response, and the rewritten .bin is
// healthy for the next process.
func TestChaosCorruptArtifactRecoveredOverHTTP(t *testing.T) {
	dir := t.TempDir()

	// Process one: warm the cache directory and record the oracle.
	svc1 := chaosService(t, dir)
	h1 := New(svc1, nil).Handler()
	word := queryWords(t, svc1, 1)[0]
	body := fmt.Sprintf(`{"algo":"mc","dim":8,"k":3,"words":[%q]}`, word)
	oracle := do(t, h1, http.MethodPost, "/v1/neighbors", body, nil)
	if oracle.Code != http.StatusOK {
		t.Fatalf("oracle: %d %s", oracle.Code, oracle.Body.String())
	}

	// Flip one byte in every persisted binary artifact.
	bins, err := filepath.Glob(filepath.Join(dir, "*.bin"))
	if err != nil || len(bins) == 0 {
		t.Fatalf("no persisted .bin artifacts in %s (err %v)", dir, err)
	}
	for _, bin := range bins {
		raw, err := os.ReadFile(bin)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x40
		if err := os.WriteFile(bin, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Process two: a fresh service over the damaged directory must serve
	// the oracle bytes with no 5xx, quarantining the damage as it goes.
	svc2 := chaosService(t, dir)
	h2 := New(svc2, nil).Handler()
	rr := do(t, h2, http.MethodPost, "/v1/neighbors", body, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("read over corrupt artifact: %d %s", rr.Code, rr.Body.String())
	}
	if rr.Body.String() != oracle.Body.String() {
		t.Fatal("recovered response differs from the pre-damage oracle")
	}
	if q := svc2.StoreStats().Quarantines; q == 0 {
		t.Fatal("corrupt artifact served without being quarantined")
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.quarantined"))
	if len(quarantined) == 0 {
		t.Fatal("no .quarantined file left behind for forensics")
	}

	// Process three: the rewritten binary fast path is healthy again.
	svc3 := chaosService(t, dir)
	h3 := New(svc3, nil).Handler()
	rr = do(t, h3, http.MethodPost, "/v1/neighbors", body, nil)
	if rr.Code != http.StatusOK || rr.Body.String() != oracle.Body.String() {
		t.Fatalf("post-repair read: %d (bitwise match: %v)", rr.Code, rr.Body.String() == oracle.Body.String())
	}
	if q := svc3.StoreStats().Quarantines; q != 0 {
		t.Fatalf("repaired artifact quarantined again (%d); the rewrite is unsound", q)
	}
}
