package nn

import (
	"math/rand"

	"anchor/internal/autodiff"
	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// CRF is a linear-chain conditional random field decoding layer over T
// tags, used by the BiLSTM-CRF NER model (Appendix E.2). Trans[i][j] is
// the score of transitioning from tag i to tag j; Start and End score the
// boundary transitions.
type CRF struct {
	T     int
	Trans *autodiff.Param // T x T
	Start *autodiff.Param // 1 x T
	End   *autodiff.Param // 1 x T
}

// NewCRF returns a CRF with small random transition scores.
func NewCRF(name string, tags int, rng *rand.Rand) *CRF {
	tr := matrix.NewDenseRand(tags, tags, 0.1, rng)
	st := matrix.NewDenseRand(1, tags, 0.1, rng)
	en := matrix.NewDenseRand(1, tags, 0.1, rng)
	return &CRF{
		T:     tags,
		Trans: autodiff.NewParam(name+".trans", tr),
		Start: autodiff.NewParam(name+".start", st),
		End:   autodiff.NewParam(name+".end", en),
	}
}

// Params implements Module.
func (c *CRF) Params() []*autodiff.Param {
	return []*autodiff.Param{c.Trans, c.Start, c.End}
}

// NegLogLikelihood returns −log p(tags | emissions) as a scalar node.
// emissions is n-by-T (per-token tag scores); tags is the gold sequence.
func (c *CRF) NegLogLikelihood(tp *autodiff.Tape, emissions *autodiff.Node, tags []int) *autodiff.Node {
	n := emissions.Value.Rows
	if n == 0 || len(tags) != n {
		panic("nn: CRF sequence/tags mismatch")
	}
	trans := tp.Use(c.Trans)
	start := tp.Use(c.Start)
	end := tp.Use(c.End)

	// Partition function via the forward algorithm in log space.
	// alpha is 1-by-T; alpha_0 = start + emit_0.
	alpha := tp.Add(start, tp.SliceRows(emissions, 0, 1))
	for t := 1; t < n; t++ {
		// scores[i][j] = alpha[i] + trans[i][j]; reduce over i.
		scores := tp.AddColVec(trans, tp.Reshape(alpha, c.T, 1))
		alpha = tp.Add(tp.LogSumExpCols(scores), tp.SliceRows(emissions, t, t+1))
	}
	alpha = tp.Add(alpha, end)
	logZ := tp.LogSumExpCols(tp.Reshape(alpha, c.T, 1))

	// Gold path score.
	score := tp.Add(tp.At(start, 0, tags[0]), tp.At(emissions, 0, tags[0]))
	for t := 1; t < n; t++ {
		score = tp.Add(score, tp.At(trans, tags[t-1], tags[t]))
		score = tp.Add(score, tp.At(emissions, t, tags[t]))
	}
	score = tp.Add(score, tp.At(end, 0, tags[n-1]))

	return tp.Sub(logZ, score)
}

// NLLValue returns −log p(tags | emissions) as a plain float — the same
// value NegLogLikelihood records on a tape, computed without autodiff.
// Used for validation scoring, where no gradients are needed.
func (c *CRF) NLLValue(emissions *matrix.Dense, tags []int) float64 {
	n := emissions.Rows
	if n == 0 || len(tags) != n {
		panic("nn: CRF sequence/tags mismatch")
	}
	alpha := make([]float64, c.T)
	next := make([]float64, c.T)
	col := make([]float64, c.T)
	for j := 0; j < c.T; j++ {
		alpha[j] = c.Start.Value.At(0, j) + emissions.At(0, j)
	}
	for t := 1; t < n; t++ {
		for j := 0; j < c.T; j++ {
			for i := 0; i < c.T; i++ {
				col[i] = alpha[i] + c.Trans.Value.At(i, j)
			}
			next[j] = floats.LogSumExp(col) + emissions.At(t, j)
		}
		alpha, next = next, alpha
	}
	for j := 0; j < c.T; j++ {
		alpha[j] += c.End.Value.At(0, j)
	}
	logZ := floats.LogSumExp(alpha)

	score := c.Start.Value.At(0, tags[0]) + emissions.At(0, tags[0])
	for t := 1; t < n; t++ {
		score += c.Trans.Value.At(tags[t-1], tags[t]) + emissions.At(t, tags[t])
	}
	score += c.End.Value.At(0, tags[n-1])
	return logZ - score
}

// Decode returns the Viterbi-optimal tag sequence for the given emission
// scores (no gradients involved).
func (c *CRF) Decode(emissions *matrix.Dense) []int {
	n := emissions.Rows
	if n == 0 {
		return nil
	}
	tr := c.Trans.Value
	delta := make([]float64, c.T)
	for j := 0; j < c.T; j++ {
		delta[j] = c.Start.Value.At(0, j) + emissions.At(0, j)
	}
	back := make([][]int, n)
	for t := 1; t < n; t++ {
		back[t] = make([]int, c.T)
		next := make([]float64, c.T)
		for j := 0; j < c.T; j++ {
			best, bi := delta[0]+tr.At(0, j), 0
			for i := 1; i < c.T; i++ {
				if s := delta[i] + tr.At(i, j); s > best {
					best, bi = s, i
				}
			}
			next[j] = best + emissions.At(t, j)
			back[t][j] = bi
		}
		delta = next
	}
	for j := 0; j < c.T; j++ {
		delta[j] += c.End.Value.At(0, j)
	}
	path := make([]int, n)
	path[n-1] = floats.ArgMax(delta)
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path
}

// BruteForceLogZ computes the log partition function by enumerating all
// T^n tag sequences. Exponential; for tests only.
func (c *CRF) BruteForceLogZ(emissions *matrix.Dense) float64 {
	n := emissions.Rows
	var scores []float64
	seq := make([]int, n)
	var rec func(t int, acc float64)
	rec = func(t int, acc float64) {
		if t == n {
			scores = append(scores, acc+c.End.Value.At(0, seq[n-1]))
			return
		}
		for j := 0; j < c.T; j++ {
			s := acc + emissions.At(t, j)
			if t == 0 {
				s += c.Start.Value.At(0, j)
			} else {
				s += c.Trans.Value.At(seq[t-1], j)
			}
			seq[t] = j
			rec(t+1, s)
		}
	}
	rec(0, 0)
	return floats.LogSumExp(scores)
}
