// Package cooc builds word co-occurrence statistics from a corpus: windowed
// co-occurrence counts (with GloVe-style 1/distance or uniform weighting)
// and the positive pointwise mutual information (PPMI) transform that the
// matrix-completion embedding algorithm factorizes (Bullinaria & Levy 2007).
package cooc

import (
	"math"
	"sort"

	"anchor/internal/corpus"
	"anchor/internal/parallel"
)

// Weighting selects how a co-occurrence at distance k within the window
// contributes to the count.
type Weighting int

// Supported weightings.
const (
	// Uniform counts every co-occurrence within the window as 1
	// (word2vec-style after window subsampling).
	Uniform Weighting = iota
	// InverseDistance counts a co-occurrence at distance k as 1/k
	// (GloVe-style).
	InverseDistance
)

// Matrix is a sparse symmetric co-occurrence (or PPMI) matrix in triplet
// form, sorted by (row, col). Only entries with Row <= Col are stored for
// counts built by Count; Entries lists every stored cell.
type Matrix struct {
	N       int // vocabulary size
	Entries []Entry
}

// Entry is one stored cell of a sparse matrix.
type Entry struct {
	Row, Col int32
	Val      float64
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.Entries) }

// Count accumulates windowed co-occurrence counts over the corpus.
// Co-occurrences are symmetric; each unordered pair is stored once with
// Row <= Col and carries the summed weight of both directions. Counting
// runs on all CPUs; see CountWorkers for the determinism contract.
func Count(c *corpus.Corpus, window int, w Weighting) *Matrix {
	return CountWorkers(c, window, w, 0)
}

// CountWorkers is Count with an explicit goroutine budget (workers <= 0
// selects all CPUs). Sentences are partitioned into a fixed number of
// shards; each shard accumulates into its own map and the per-shard maps
// are merged in ascending shard order, so for every key the summation
// order — and therefore the result — is bitwise identical for any worker
// count.
func CountWorkers(c *corpus.Corpus, window int, w Weighting, workers int) *Matrix {
	key := func(i, j int32) uint64 {
		if i > j {
			i, j = j, i
		}
		return uint64(uint32(i))<<32 | uint64(uint32(j))
	}
	shards := parallel.DefaultShards
	ranges := parallel.Ranges(len(c.Sentences), shards)
	accs := make([]map[uint64]float64, shards)
	acc := make(map[uint64]float64)
	parallel.Run(workers, shards, func(s int) {
		local := make(map[uint64]float64)
		for _, sent := range c.Sentences[ranges[s].Lo:ranges[s].Hi] {
			for i := 0; i < len(sent); i++ {
				lim := i + window
				if lim >= len(sent) {
					lim = len(sent) - 1
				}
				for j := i + 1; j <= lim; j++ {
					weight := 1.0
					if w == InverseDistance {
						weight = 1 / float64(j-i)
					}
					local[key(sent[i], sent[j])] += weight
				}
			}
		}
		accs[s] = local
	}, func(s int) {
		for k, v := range accs[s] {
			acc[k] += v
		}
	})
	m := &Matrix{N: c.Vocab.Size(), Entries: make([]Entry, 0, len(acc))}
	for k, v := range acc {
		m.Entries = append(m.Entries, Entry{Row: int32(k >> 32), Col: int32(uint32(k)), Val: v})
	}
	sort.Slice(m.Entries, func(a, b int) bool {
		if m.Entries[a].Row != m.Entries[b].Row {
			return m.Entries[a].Row < m.Entries[b].Row
		}
		return m.Entries[a].Col < m.Entries[b].Col
	})
	return m
}

// PPMI transforms co-occurrence counts into positive pointwise mutual
// information: max(0, log(p(i,j) / (p(i) p(j)))). Zero-valued results are
// dropped, so the output remains sparse. The input stores each unordered
// pair once (Row <= Col) and is interpreted symmetrically.
func PPMI(m *Matrix) *Matrix {
	rowSums := make([]float64, m.N)
	var total float64
	for _, e := range m.Entries {
		rowSums[e.Row] += e.Val
		total += e.Val
		if e.Row != e.Col {
			rowSums[e.Col] += e.Val
			total += e.Val
		}
	}
	out := &Matrix{N: m.N}
	for _, e := range m.Entries {
		cnt := e.Val
		if e.Row != e.Col {
			cnt *= 2 // symmetric mass for an unordered pair
		}
		pij := cnt / total
		pi := rowSums[e.Row] / total
		pj := rowSums[e.Col] / total
		v := math.Log(pij / (pi * pj))
		if v > 0 {
			out.Entries = append(out.Entries, Entry{Row: e.Row, Col: e.Col, Val: v})
		}
	}
	return out
}

// LogCounts returns a copy of m with values log(1 + count); GloVe
// factorizes log co-occurrence.
func LogCounts(m *Matrix) *Matrix {
	out := &Matrix{N: m.N, Entries: make([]Entry, len(m.Entries))}
	for i, e := range m.Entries {
		out.Entries[i] = Entry{Row: e.Row, Col: e.Col, Val: math.Log(1 + e.Val)}
	}
	return out
}
