GO ?= go

# Pinned linter toolchain so CI runs are reproducible; `make lint-tools`
# installs exactly these versions.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test vet fmt lint anchorlint anchorlint-sarif staticcheck govulncheck lint-tools docs race race-full chaos fuzz-smoke serve-smoke bench bench-artifacts cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# The full static-analysis gate: the repo's own determinism linter, go
# vet, staticcheck, and govulncheck. anchorlint encodes the bitwise-
# determinism contract (see docs/ARCHITECTURE.md, "Determinism rules");
# zero unsuppressed findings is a merge requirement.
lint: vet anchorlint staticcheck govulncheck

# The baseline carries grandfathered findings (keyed rule+file+message,
# no line numbers); entries whose finding is fixed turn stale and fail
# the run, so the debt can only shrink.
anchorlint:
	$(GO) run ./cmd/anchorlint -baseline lint-baseline.json ./...

# Machine-readable lint output for code-scanning upload.
anchorlint-sarif:
	$(GO) run ./cmd/anchorlint -baseline lint-baseline.json -format sarif ./... > anchorlint.sarif || true
	@test -s anchorlint.sarif

# staticcheck and govulncheck are external binaries; run them when
# installed, otherwise print the pinned install recipe and skip so the
# target still works on offline development machines. CI installs both
# via lint-tools, so there they always run.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Documentation gate: every package must carry a package comment, and the
# architecture + HTTP API documents must exist and be linked from the
# README. CI fails when any of it goes missing.
docs:
	@missing=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...); \
	if [ -n "$$missing" ]; then \
		echo "packages missing package comments:" >&2; \
		echo "$$missing" >&2; \
		exit 1; \
	fi
	@for doc in docs/ARCHITECTURE.md docs/HTTP_API.md; do \
		test -f $$doc || { echo "missing $$doc" >&2; exit 1; }; \
		grep -q "$$doc" README.md || { echo "README.md does not link $$doc" >&2; exit 1; }; \
	done
	@echo "docs ok"

# Race-detector pass over the traffic-serving layer: the HTTP API, the
# artifact store, and the query engine handle concurrent requests over
# shared state. This is the quick inner-loop target; CI additionally runs
# race-full.
race:
	$(GO) test -race ./internal/serve/... ./internal/store/... ./internal/query/...

# Full-module race pass: every package, including the parallel trainers
# and kernels, under the race detector (CI runs this as its own job). The
# worker-invariance training tests run several times slower under -race,
# so raise the per-package timeout above the 10m default.
race-full:
	$(GO) test -race -timeout 40m ./...

# Chaos suite: the HTTP API under a seeded fault schedule spanning every
# registered injection site (internal/faults), run under the race
# detector. Asserts the degradation contract — a request either succeeds
# bitwise identical to the fault-free oracle or fails with a structured,
# retryable error. CI runs this alongside the race job.
chaos:
	$(GO) test -race -run 'Chaos|FaultSchedule' -count=1 -v ./internal/serve/...

# Fuzz smoke: the binary-artifact decoders against corrupt and truncated
# inputs for a bounded budget per target. A decode must either succeed on
# intact bytes or fail cleanly — never panic, never return wrong rows.
# (Go runs one fuzz target per invocation, hence the two lines.)
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeBinary' -fuzztime 30s ./internal/store/
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeANNIndex' -fuzztime 30s ./internal/ann/

# Statement-coverage gate: run the full suite with a cover profile and
# enforce the floors in coverage-baseline.json (per-package minimums plus
# a module-wide total). cmd/covergate fails the build on any regression;
# ratchet the floors upward by editing the baseline.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/covergate -profile cover.out -baseline coverage-baseline.json

# Boot the HTTP server against the small config and hit /v1/healthz.
serve-smoke:
	$(GO) build -o /tmp/anchor-serve-smoke ./cmd/anchor
	@/tmp/anchor-serve-smoke serve -addr 127.0.0.1:18517 -config small & \
	pid=$$!; \
	ok=1; \
	for i in $$(seq 1 20); do \
		sleep 0.25; \
		if curl -fsS http://127.0.0.1:18517/v1/healthz; then ok=0; echo; break; fi; \
	done; \
	kill $$pid 2>/dev/null; \
	exit $$ok

# Kernel and measure micro-benchmarks (the set CI archives per PR),
# including the retained pre-PR k-NN loop for speedup comparison, plus the
# downstream-training benchmarks (fast vs retained reference trainers) and
# the grid-cell benchmark with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMulATB|BenchmarkMulABT|BenchmarkKNNMeasure|BenchmarkSVD|BenchmarkEigenspaceInstability|BenchmarkPIPLoss|BenchmarkSemanticDisplacement|BenchmarkQuantize' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkKNNMeasureReference3000' -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkTrainLinearBOW|BenchmarkNERTrain|BenchmarkGridCell' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkNeighborsServe|BenchmarkNeighborsPrecision' -benchtime 3x ./internal/query | tee BENCH_query.txt
	$(GO) run ./cmd/benchjson -o BENCH_query.json < BENCH_query.txt
	@rm -f BENCH_query.txt
	$(GO) test -run '^$$' -bench 'BenchmarkANNNeighbors' -benchtime 1x ./internal/ann | tee BENCH_ann.txt
	$(GO) run ./cmd/benchjson -o BENCH_ann.json < BENCH_ann.txt
	@rm -f BENCH_ann.txt
	$(GO) run ./cmd/anchorlint -bench ./... | tee BENCH_lint.txt
	$(GO) run ./cmd/benchjson -o BENCH_lint.json < BENCH_lint.txt
	@rm -f BENCH_lint.txt

# Full paper-artifact regeneration benchmarks (slow; trains the grid).
bench-artifacts:
	$(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkTable|BenchmarkRule|BenchmarkProp' -benchtime 1x .
