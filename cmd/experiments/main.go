// Command experiments reproduces the paper's tables and figures. It runs
// one or all registered artifacts against a shared cached runner, so the
// embedding grid is trained once per invocation.
//
// Usage:
//
//	experiments -list
//	experiments -id fig2 -config bench
//	experiments -all -config bench
//	experiments -id fig1 -config bench -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"anchor"
)

func main() { os.Exit(run()) }

func run() int {
	id := flag.String("id", "", "artifact id to run (see -list)")
	all := flag.Bool("all", false, "run every registered artifact")
	list := flag.Bool("list", false, "list artifact ids")
	config := flag.String("config", "small", "config scale: small, bench, repro")
	workers := flag.Int("workers", 0, "training and measure goroutines (0 = all CPUs; result is identical for any value)")
	cacheDir := flag.String("cache-dir", "", "persist trained embeddings to this directory (reused across runs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(anchor.ExperimentIDs(), "\n"))
		return 0
	}
	var cfg anchor.ExperimentConfig
	switch *config {
	case "small":
		cfg = anchor.SmallExperimentConfig()
	case "bench":
		cfg = anchor.BenchExperimentConfig()
	case "repro":
		cfg = anchor.ReproExperimentConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// One Service for the whole invocation: every experiment shares one
	// runner and one artifact store, so the embedding grid is trained
	// once (and, with -cache-dir, at most once across invocations).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	svc, err := anchor.NewService(
		anchor.WithConfig(cfg),
		anchor.WithWorkers(*workers),
		anchor.WithCacheDir(*cacheDir),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	switch {
	case *all:
		err = svc.Experiments(ctx, nil, os.Stdout)
	case *id != "":
		err = svc.Experiment(ctx, *id, os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "pass -id <artifact> or -all (use -list for ids)")
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
