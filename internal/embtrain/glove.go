package embtrain

import (
	"math"

	"anchor/internal/cooc"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/parallel"
)

// GloVe trains embeddings by weighted least-squares factorization of the
// log co-occurrence matrix (Pennington et al. 2014) with AdaGrad, modeling
// word and context vectors plus bias terms separately; the returned
// embedding is the standard sum of word and context vectors. Nonzero
// entries are sharded across cores by the deterministic parallel engine;
// the AdaGrad accumulators are replicated and merged like the parameters.
type GloVe struct {
	// Window is the co-occurrence half-window; counts are weighted 1/distance.
	Window int
	// Epochs is the number of AdaGrad passes over the nonzero entries.
	Epochs int
	// LR is the AdaGrad learning rate.
	LR float64
	// XMax and Alpha parameterize the weighting f(x) = min(1, (x/XMax)^Alpha).
	XMax  float64
	Alpha float64
	// Workers is the goroutine budget (<= 0 selects all CPUs). Embeddings
	// are bitwise identical for every value.
	Workers int
	// Shards is the fixed data-parallel shard count (<= 0 selects
	// parallel.DefaultShards). Unlike Workers, changing Shards changes the
	// (still deterministic) result.
	Shards int
	// Rounds is the number of synchronization rounds per epoch (<= 0
	// selects the package default). Like Shards it shapes the result
	// deterministically; it never depends on worker count.
	Rounds int
}

// NewGloVe returns a GloVe trainer with repro-scale defaults. The paper
// uses lr=0.01, xmax=100, alpha=0.75 on 4.5B tokens; xmax is scaled to the
// synthetic corpus so the weighting still saturates.
func NewGloVe() *GloVe {
	return &GloVe{Window: 5, Epochs: 25, LR: 0.05, XMax: 20, Alpha: 0.75}
}

// Name implements Trainer.
func (t *GloVe) Name() string { return "glove" }

// gloveShard is one shard's copy-on-write view of the GloVe parameters and
// their AdaGrad accumulators. all collects every replica so the round
// lifecycle (begin/seal/reduce) cannot silently skip one of them.
type gloveShard struct {
	w, wc   *parallel.Replica // word / context vectors
	b, bc   *parallel.Replica // word / context biases
	gw, gwc *parallel.Replica // AdaGrad accumulators for the vectors
	gb, gbc *parallel.Replica // AdaGrad accumulators for the biases
	all     []*parallel.Replica
}

func (st *gloveShard) begin() {
	for _, r := range st.all {
		r.Begin()
	}
}

func (st *gloveShard) seal() {
	for _, r := range st.all {
		r.Seal()
	}
}

func (st *gloveShard) reduce() {
	for _, r := range st.all {
		r.Reduce()
	}
}

// update applies one AdaGrad step for the directed pair (i -> j) with
// co-occurrence weight x.
func (t *GloVe) update(st *gloveShard, dim int, i, j int32, x float64) {
	wi := st.w.Row(int(i))
	cj := st.wc.Row(int(j))
	bi := st.b.Row(int(i))
	bj := st.bc.Row(int(j))
	gwi := st.gw.Row(int(i))
	gcj := st.gwc.Row(int(j))
	gbi := st.gb.Row(int(i))
	gbj := st.gbc.Row(int(j))
	diff := floats.Dot(wi, cj) + bi[0] + bj[0] - math.Log(x)
	f := 1.0
	if x < t.XMax {
		f = math.Pow(x/t.XMax, t.Alpha)
	}
	g := f * diff
	for k := 0; k < dim; k++ {
		gwk := g * cj[k]
		gck := g * wi[k]
		wi[k] -= t.LR * gwk / math.Sqrt(gwi[k])
		cj[k] -= t.LR * gck / math.Sqrt(gcj[k])
		gwi[k] += gwk * gwk
		gcj[k] += gck * gck
	}
	bi[0] -= t.LR * g / math.Sqrt(gbi[0])
	bj[0] -= t.LR * g / math.Sqrt(gbj[0])
	gbi[0] += g * g
	gbj[0] += g * g
}

// Train implements Trainer.
func (t *GloVe) Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding {
	counts := cooc.CountWorkers(c, t.Window, cooc.InverseDistance, t.Workers)
	n := c.Vocab.Size()
	rng := newTrainRNG(seed)

	w := make([]float64, n*dim)  // word vectors
	wc := make([]float64, n*dim) // context vectors
	b := make([]float64, n)      // word biases
	bc := make([]float64, n)     // context biases
	initMatrix(w, dim, rng)
	initMatrix(wc, dim, rng)

	// AdaGrad accumulators, initialized to 1 as in the reference implementation.
	gw := make([]float64, n*dim)
	gwc := make([]float64, n*dim)
	gb := make([]float64, n)
	gbc := make([]float64, n)
	for i := range gw {
		gw[i], gwc[i] = 1, 1
	}
	for i := range gb {
		gb[i], gbc[i] = 1, 1
	}

	shards := parallel.Shards(t.Shards)
	rounds := syncRounds(t.Rounds)
	local := make([]*gloveShard, shards)
	for s := range local {
		st := &gloveShard{
			w: parallel.NewReplica(w, dim), wc: parallel.NewReplica(wc, dim),
			b: parallel.NewReplica(b, 1), bc: parallel.NewReplica(bc, 1),
			gw: parallel.NewReplica(gw, dim), gwc: parallel.NewReplica(gwc, dim),
			gb: parallel.NewReplica(gb, 1), gbc: parallel.NewReplica(gbc, 1),
		}
		st.all = []*parallel.Replica{st.w, st.wc, st.b, st.bc, st.gw, st.gwc, st.gb, st.gbc}
		local[s] = st
	}

	for epoch := 0; epoch < t.Epochs; epoch++ {
		order := shuffledOrder(counts.NNZ(), rng)
		for _, rr := range parallel.Ranges(len(order), rounds) {
			sub := order[rr.Lo:rr.Hi]
			ranges := parallel.Ranges(len(sub), shards)
			parallel.Run(t.Workers, shards, func(s int) {
				st := local[s]
				st.begin()
				for _, ei := range sub[ranges[s].Lo:ranges[s].Hi] {
					e := counts.Entries[ei]
					// The sparse matrix stores each unordered pair once; train both
					// directions so word and context roles are symmetric.
					t.update(st, dim, e.Row, e.Col, e.Val)
					if e.Row != e.Col {
						t.update(st, dim, e.Col, e.Row, e.Val)
					}
				}
				st.seal()
			}, func(s int) {
				local[s].reduce()
			})
		}
	}

	e := embedding.New(n, dim)
	e.Words = c.Vocab.Words
	e.Meta = embedding.Meta{
		Algorithm: t.Name(), Corpus: corpusName(c), Dim: dim, Seed: seed, Precision: 32,
	}
	for i := 0; i < n*dim; i++ {
		e.Vectors.Data[i] = w[i] + wc[i]
	}
	return e
}
