// Command anchorlint is the multichecker driver for the repository's
// determinism lint suite (internal/lint). It loads the named packages,
// runs every selected analyzer, and exits non-zero when any unsuppressed
// finding remains:
//
//	anchorlint ./...                     # whole module (the CI gate)
//	anchorlint -rules seedrand ./...     # one rule
//	anchorlint -show-suppressed ./...    # audit documented exceptions
//
// Findings are suppressed in place with
//
//	//anchorlint:ignore <rule> <reason>
//
// on the flagged line or the line directly above it; see
// docs/ARCHITECTURE.md ("Determinism rules") for the rule catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anchor/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	detPkgs := flag.String("det-packages", "", "comma-separated override of the deterministic package list (paths; trailing /... matches a subtree)")
	showSuppressed := flag.Bool("show-suppressed", false, "also print findings covered by //anchorlint:ignore, with their reasons")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: anchorlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *detPkgs != "" {
		lint.DeterministicPackages = strings.Split(*detPkgs, ",")
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}

	failures := 0
	for _, d := range diags {
		if d.Suppressed {
			if *showSuppressed {
				fmt.Printf("%s: suppressed [%s]: %s (%s)\n", d.Pos, d.SuppressReason, d.Message, d.Rule)
			}
			continue
		}
		failures++
		fmt.Println(d)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "anchorlint: %d finding(s)\n", failures)
		os.Exit(1)
	}
}

// selectAnalyzers resolves a comma-separated rule list against the suite.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.All(), nil
	}
	byName := make(map[string]*lint.Analyzer)
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: seedrand, maporder, fpreduce, sharedwrite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
