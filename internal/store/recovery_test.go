package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"anchor/internal/embedding"
	"anchor/internal/faults"
)

// warmDir persists one artifact under k into a fresh cache dir and
// returns the dir and the embedding it holds.
func warmDir(t *testing.T) (string, Key, *embedding.Embedding) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := key(4)
	want := testEmbedding(4, 1.5)
	if _, err := s.Get(k, true, func() (*embedding.Embedding, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	return dir, k, want
}

// flipLastByte damages a file's final payload byte in place, leaving its
// length (and so every v2-era shape check) intact.
func flipLastByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSweepsStaleTemps plants crashed-writer debris and checks Open
// removes it without touching live artifacts or quarantined files.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir, k, _ := warmDir(t)
	stale := filepath.Join(dir, k.ID()+".tmp123456789")
	keepQuarantined := filepath.Join(dir, k.ID()+BinaryExt+".quarantined")
	for _, p := range []string{stale, keepQuarantined} {
		if err := os.WriteFile(p, []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived Open: stat err = %v", err)
	}
	for _, p := range []string{
		filepath.Join(dir, k.ID()+BinaryExt),
		filepath.Join(dir, k.ID()+".gob"),
		keepQuarantined,
	} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("Open swept non-temp file %s: %v", filepath.Base(p), err)
		}
	}
}

// TestChecksumRejectsPayloadFlip pins what the v3 checksum buys: a
// payload bit flip that preserves the artifact's length and header decodes
// to ErrCorrupt instead of quietly different vectors.
func TestChecksumRejectsPayloadFlip(t *testing.T) {
	dir, k, _ := warmDir(t)
	bin := filepath.Join(dir, k.ID()+BinaryExt)
	flipLastByte(t, bin)
	_, err := LoadBinaryFile(bin)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte: err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptBinQuarantinedAndRecovered: a damaged .bin is moved aside,
// the gob fallback serves bitwise-identical data with no recompute, and
// the binary fast path is rewritten clean.
func TestCorruptBinQuarantinedAndRecovered(t *testing.T) {
	dir, k, want := warmDir(t)
	bin := filepath.Join(dir, k.ID()+BinaryExt)
	flipLastByte(t, bin)

	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k, true, func() (*embedding.Embedding, error) {
		t.Fatal("recompute invoked despite intact gob fallback")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, want, got)
	st := s.Stats()
	if st.Quarantines != 1 || st.Computes != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine, 0 computes, 1 disk hit", st)
	}
	if _, err := os.Stat(bin + ".quarantined"); err != nil {
		t.Fatalf("damaged binary not quarantined: %v", err)
	}
	// The rewritten fast path must decode clean.
	repaired, err := LoadBinaryFile(bin)
	if err != nil {
		t.Fatalf("repaired binary: %v", err)
	}
	embEqualBits(t, want, repaired)
}

// TestCorruptBothEncodingsRecomputed: with both disk encodings damaged the
// store quarantines both and recomputes rather than serving bad bytes.
func TestCorruptBothEncodingsRecomputed(t *testing.T) {
	dir, k, want := warmDir(t)
	flipLastByte(t, filepath.Join(dir, k.ID()+BinaryExt))
	// Truncate the gob so it fails decode (a flipped trailing byte can
	// land in ignored padding; truncation always breaks the stream).
	if err := os.WriteFile(filepath.Join(dir, k.ID()+".gob"), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k, true, func() (*embedding.Embedding, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, want, got)
	st := s.Stats()
	if st.Quarantines != 2 || st.Computes != 1 {
		t.Fatalf("stats = %+v, want 2 quarantines, 1 compute", st)
	}
}

// TestInjectedReadErrorFallsBackWithoutQuarantine: a transient I/O error
// on the binary read (injected) degrades to the gob tier but must not
// quarantine or rewrite the intact binary artifact.
func TestInjectedReadErrorFallsBackWithoutQuarantine(t *testing.T) {
	dir, k, want := warmDir(t)
	bin := filepath.Join(dir, k.ID()+BinaryExt)
	before, err := os.Stat(bin)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer faults.Activate(faults.MustPlan(1, faults.Rule{Site: "store/bin.read", Kind: faults.KindError, Count: 1}))()
	got, err := s.Get(k, true, func() (*embedding.Embedding, error) {
		t.Fatal("recompute invoked despite intact gob fallback")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, want, got)
	st := s.Stats()
	if st.Quarantines != 0 || st.Computes != 0 {
		t.Fatalf("stats = %+v, want no quarantines and no computes", st)
	}
	after, err := os.Stat(bin)
	if err != nil {
		t.Fatalf("intact binary disappeared: %v", err)
	}
	if after.ModTime() != before.ModTime() || after.Size() != before.Size() {
		t.Fatal("transient read error rewrote the intact binary artifact")
	}
}
