package matrix

import (
	"math/rand"
	"testing"

	"anchor/internal/floats"
)

// The naive references below reproduce the pre-blocking serial kernels
// loop-for-loop. The golden tests assert the blocked parallel kernels are
// BITWISE identical to them for every worker count — the determinism
// contract the measure layer relies on.

func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			floats.Axpy(av, b.Row(k), orow)
		}
	}
	return out
}

func naiveMulATB(a, b *Dense) *Dense {
	out := NewDense(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			floats.Axpy(av, brow, out.Row(i))
		}
	}
	return out
}

func naiveMulABT(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = floats.Dot(arow, b.Row(j))
		}
	}
	return out
}

func matBitwiseEqual(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: entry %d = %x, want %x (not bitwise equal)", label, i, got.Data[i], want.Data[i])
		}
	}
}

// kernelWorkerCounts spans serial, fewer-than/more-than-core, and
// non-divisor band splits.
var kernelWorkerCounts = []int{1, 2, 3, 4, 7, 8}

// sparseRand returns a matrix with random entries and ~10% exact zeros, so
// the zero-skip path (which preserves signed-zero behavior) is exercised.
func sparseRand(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		if rng.Intn(10) == 0 {
			continue
		}
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulBlockedBitwiseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Shapes straddling the block sizes and the serial-small cutoff.
	for _, sh := range [][3]int{{3, 5, 4}, {40, 130, 33}, {300, 70, 45}, {129, 257, 9}} {
		a := sparseRand(sh[0], sh[1], rng)
		b := sparseRand(sh[1], sh[2], rng)
		want := naiveMul(a, b)
		for _, w := range kernelWorkerCounts {
			matBitwiseEqual(t, MulWorkers(a, b, w), want, "Mul")
		}
	}
}

func TestMulATBBlockedBitwiseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range [][3]int{{5, 3, 4}, {130, 40, 33}, {300, 64, 64}, {257, 9, 129}} {
		a := sparseRand(sh[0], sh[1], rng)
		b := sparseRand(sh[0], sh[2], rng)
		want := naiveMulATB(a, b)
		for _, w := range kernelWorkerCounts {
			matBitwiseEqual(t, MulATBWorkers(a, b, w), want, "MulATB")
		}
	}
}

func TestMulABTBlockedBitwiseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][3]int{{4, 6, 5}, {130, 33, 90}, {300, 64, 300}, {9, 257, 129}} {
		a := sparseRand(sh[0], sh[1], rng)
		b := sparseRand(sh[2], sh[1], rng)
		want := naiveMulABT(a, b)
		for _, w := range kernelWorkerCounts {
			matBitwiseEqual(t, MulABTWorkers(a, b, w), want, "MulABT")
		}
	}
}

func TestMulIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := NewDenseRand(20, 30, 1, rng)
	b := NewDenseRand(30, 10, 1, rng)
	dst := NewDense(20, 10)
	floats.Fill(dst.Data, 42) // stale contents must be overwritten
	MulInto(dst, a, b, 2)
	matBitwiseEqual(t, dst, naiveMul(a, b), "MulInto")

	at := NewDenseRand(30, 20, 1, rng)
	dstT := NewDense(20, 10)
	floats.Fill(dstT.Data, -7)
	MulATBInto(dstT, at, b, 2)
	matBitwiseEqual(t, dstT, naiveMulATB(at, b), "MulATBInto")

	bt := NewDenseRand(10, 30, 1, rng)
	dstBT := NewDense(20, 10)
	floats.Fill(dstBT.Data, 3)
	MulABTInto(dstBT, a, bt, 2)
	matBitwiseEqual(t, dstBT, naiveMulABT(a, bt), "MulABTInto")
}

func TestMulIntoShapePanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst shape")
		}
	}()
	MulInto(NewDense(2, 3), a, b, 1)
}
