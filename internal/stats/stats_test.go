package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 9, 16, 30} // monotone but nonlinear
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	yr := []float64{30, 16, 9, 4, 2}
	if got := Spearman(x, yr); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Classic example: ranks differ by small permutation.
	x := []float64{106, 86, 100, 101, 99, 103, 97, 113, 112, 110}
	y := []float64{7, 0, 27, 50, 28, 29, 20, 12, 6, 17}
	got := Spearman(x, y)
	if math.Abs(got-(-0.17575757575757575)) > 1e-9 {
		t.Fatalf("Spearman = %v, want -0.1757...", got)
	}
}

func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(5)) // ties likely
			y[i] = rng.NormFloat64()
		}
		s := Spearman(x, y)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanInvariantToMonotoneTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	base := Spearman(x, y)
	x2 := make([]float64, n)
	for i := range x {
		x2[i] = math.Exp(x[i]) // strictly monotone
	}
	if math.Abs(Spearman(x2, y)-base) > 1e-12 {
		t.Fatal("Spearman not invariant to monotone transform")
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("Pearson with constant input should be 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{5, 7, 9, 11} // y = 5 + 2x
	a, b := LinearFit(x, y)
	if math.Abs(a-5) > 1e-10 || math.Abs(b-2) > 1e-10 {
		t.Fatalf("LinearFit = (%v, %v), want (5, 2)", a, b)
	}
}

func TestFitLinearLogRecoversKnownTrend(t *testing.T) {
	// Generate DI = C_t - 1.3*log2(m) exactly and verify recovery.
	var pts []LinearLogPoint
	intercepts := map[string]float64{"sst2": 20, "ner": 12}
	for task, c := range intercepts {
		for _, m := range []float64{32, 64, 128, 256, 512} {
			pts = append(pts, LinearLogPoint{Task: task, X: m, Y: c - 1.3*math.Log2(m)})
		}
	}
	fit := FitLinearLog(pts)
	if math.Abs(fit.Slope-1.3) > 1e-9 {
		t.Fatalf("Slope = %v, want 1.3", fit.Slope)
	}
	for task, c := range intercepts {
		if math.Abs(fit.Intercepts[task]-c) > 1e-9 {
			t.Fatalf("Intercept[%s] = %v, want %v", task, fit.Intercepts[task], c)
		}
	}
	// Predict must reproduce the generating model.
	if math.Abs(fit.Predict("sst2", 128)-(20-1.3*7)) > 1e-9 {
		t.Fatal("Predict wrong")
	}
}

func TestFitLinearLogNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var pts []LinearLogPoint
	for _, m := range []float64{8, 16, 32, 64, 128, 256, 512, 1024} {
		for s := 0; s < 5; s++ {
			pts = append(pts, LinearLogPoint{
				Task: "t", X: m, Y: 15 - 1.3*math.Log2(m) + 0.2*rng.NormFloat64(),
			})
		}
	}
	fit := FitLinearLog(pts)
	if math.Abs(fit.Slope-1.3) > 0.15 {
		t.Fatalf("noisy slope = %v, want ≈1.3", fit.Slope)
	}
}

func TestFitLinearLogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nonpositive x")
		}
	}()
	FitLinearLog([]LinearLogPoint{{Task: "a", X: 0, Y: 1}, {Task: "a", X: 1, Y: 1}})
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Fatalf("MeanStd = (%v, %v)", m, s)
	}
}
