package sentiment

import (
	"testing"

	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embtrain"
)

func testSetup(t *testing.T) (corpus.Config, *corpus.Corpus) {
	t.Helper()
	cfg := corpus.TestConfig()
	return cfg, corpus.Generate(cfg, corpus.Wiki17)
}

func TestGenerateShapesAndBalance(t *testing.T) {
	cfg, c := testSetup(t)
	for _, p := range AllParams() {
		ds := Generate(c, cfg, p)
		if len(ds.Train) != p.TrainN || len(ds.Val) != p.ValN || len(ds.Test) != p.TestN {
			t.Fatalf("%s: split sizes wrong", p.Name)
		}
		pos := 0
		for _, ex := range ds.Train {
			if ex.Label == 1 {
				pos++
			}
			if len(ex.Tokens) < p.LenMin || len(ex.Tokens) > p.LenMax {
				t.Fatalf("%s: example length %d out of bounds", p.Name, len(ex.Tokens))
			}
		}
		frac := float64(pos) / float64(len(ds.Train))
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("%s: unbalanced labels: %.2f positive", p.Name, frac)
		}
		if len(ds.PosLex) != p.LexiconSize || len(ds.NegLex) != p.LexiconSize {
			t.Fatalf("%s: lexicon sizes %d/%d", p.Name, len(ds.PosLex), len(ds.NegLex))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg, c := testSetup(t)
	a := Generate(c, cfg, SST2Params())
	b := Generate(c, cfg, SST2Params())
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label || len(a.Train[i].Tokens) != len(b.Train[i].Tokens) {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestLexiconsDisjoint(t *testing.T) {
	cfg, c := testSetup(t)
	ds := Generate(c, cfg, SST2Params())
	inPos := map[int32]bool{}
	for _, w := range ds.PosLex {
		inPos[w] = true
	}
	for _, w := range ds.NegLex {
		if inPos[w] {
			t.Fatalf("word %d in both lexicons", w)
		}
	}
}

func TestLinearBOWLearns(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	ds := Generate(c, cfg, SST2Params())
	m := TrainLinearBOW(emb, ds, DefaultLinearBOWConfig(1))
	acc := m.Accuracy(ds.Test)
	if acc < 0.65 {
		t.Fatalf("linear BOW test accuracy %.3f too low", acc)
	}
	t.Logf("linear BOW accuracy: %.3f", acc)
}

func TestLinearBOWDeterministic(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	ds := Generate(c, cfg, MPQAParams())
	a := TrainLinearBOW(emb, ds, DefaultLinearBOWConfig(3))
	b := TrainLinearBOW(emb, ds, DefaultLinearBOWConfig(3))
	pa, pb := a.Predict(ds.Test), b.Predict(ds.Test)
	if core.PredictionDisagreement(pa, pb) != 0 {
		t.Fatal("same seed should give identical models")
	}
}

func TestLinearBOWSeedSensitivity(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	ds := Generate(c, cfg, SST2Params())
	a := TrainLinearBOW(emb, ds, DefaultLinearBOWConfig(1))
	b := TrainLinearBOW(emb, ds, DefaultLinearBOWConfig(2))
	// Different downstream seeds may disagree a little, but both should
	// still be reasonable models (Appendix E.3 quantifies this).
	if a.Accuracy(ds.Test) < 0.6 || b.Accuracy(ds.Test) < 0.6 {
		t.Fatal("seed change destroyed accuracy")
	}
}

func TestDownstreamInstabilityPipeline(t *testing.T) {
	// End-to-end Definition 1: train on Wiki'17 and Wiki'18 embeddings,
	// measure prediction disagreement. It should be nonzero (instability
	// exists) but far below chance (models mostly agree).
	cfg := corpus.TestConfig()
	c17 := corpus.Generate(cfg, corpus.Wiki17)
	c18 := corpus.Generate(cfg, corpus.Wiki18)
	tr := embtrain.NewMC()
	e17 := tr.Train(c17, 16, 1)
	e18 := tr.Train(c18, 16, 1)
	e18.AlignTo(e17)

	ds := Generate(c17, cfg, SST2Params())
	m17 := TrainLinearBOW(e17, ds, DefaultLinearBOWConfig(1))
	m18 := TrainLinearBOW(e18, ds, DefaultLinearBOWConfig(1))
	di := core.PredictionDisagreementPct(m17.Predict(ds.Test), m18.Predict(ds.Test))
	if di <= 0 {
		t.Fatal("expected nonzero downstream instability")
	}
	if di >= 50 {
		t.Fatalf("downstream instability %.1f%% at chance level", di)
	}
	t.Logf("SST-2 downstream instability: %.2f%%", di)
}

func TestFineTunedTrainsAndImproves(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	ds := Generate(c, cfg, MPQAParams())
	cfgM := DefaultLinearBOWConfig(1)
	cfgM.Epochs = 15
	m := TrainLinearBOWFineTuned(emb, ds, cfgM)
	if acc := m.Accuracy(ds.Test); acc < 0.6 {
		t.Fatalf("fine-tuned accuracy %.3f too low", acc)
	}
	// Fine-tuning must not mutate the original embedding.
	emb2 := embtrain.NewMC().Train(c, 8, 1)
	for i := range emb.Vectors.Data {
		if emb.Vectors.Data[i] != emb2.Vectors.Data[i] {
			t.Fatal("fine-tuning mutated the shared embedding")
		}
	}
}

func TestFeaturesBitwiseEqualsReference(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	ds := Generate(c, cfg, SST2Params())
	ref := featuresReference(emb, ds.Train)
	for _, workers := range []int{1, 4} {
		fast := Features(emb, ds.TrainCounts(), ds.Train, workers)
		if fast.Rows != ref.Rows || fast.Cols != ref.Cols {
			t.Fatal("feature shape mismatch")
		}
		for i := range ref.Data {
			if fast.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: feature element %d: %v != %v", workers, i, fast.Data[i], ref.Data[i])
			}
		}
	}
}

func TestLinearBOWBitwiseMatchesReference(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	ds := Generate(c, cfg, MPQAParams())
	mcfg := DefaultLinearBOWConfig(7)
	fast := TrainLinearBOW(emb, ds, mcfg)
	ref := TrainLinearBOWReference(emb, ds, mcfg)
	for i, v := range fast.lin.W.Value.Data {
		if ref.lin.W.Value.Data[i] != v {
			t.Fatalf("weight %d: fast %v != reference %v", i, v, ref.lin.W.Value.Data[i])
		}
	}
	for i, v := range fast.lin.B.Value.Data {
		if ref.lin.B.Value.Data[i] != v {
			t.Fatalf("bias %d: fast %v != reference %v", i, v, ref.lin.B.Value.Data[i])
		}
	}
	pf, pr := fast.Predict(ds.Test), ref.Predict(ds.Test)
	if core.PredictionDisagreement(pf, pr) != 0 {
		t.Fatal("fast and reference trainers disagree on predictions")
	}
	if fast.Accuracy(ds.Test) != ref.Accuracy(ds.Test) {
		t.Fatal("fast and reference accuracy differ")
	}
}

func TestCNNBitwiseMatchesReference(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	p := MPQAParams()
	p.TrainN, p.TestN = 120, 80
	ds := Generate(c, cfg, p)
	ccfg := DefaultCNNConfig(3)
	ccfg.Epochs = 3
	fast := TrainCNN(emb, ds, ccfg)
	ref := TrainCNNReference(emb, ds, ccfg)
	for pi, pp := range fast.conv.Params() {
		rp := ref.conv.Params()[pi]
		for i, v := range pp.Value.Data {
			if rp.Value.Data[i] != v {
				t.Fatalf("conv param %s[%d]: fast %v != reference %v", pp.Name, i, v, rp.Value.Data[i])
			}
		}
	}
	if core.PredictionDisagreement(fast.Predict(ds.Test), ref.Predict(ds.Test)) != 0 {
		t.Fatal("fast and reference CNN trainers disagree on predictions")
	}
}

func TestCNNLearns(t *testing.T) {
	cfg, c := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	p := MPQAParams() // short sentences keep the CNN fast
	p.TrainN, p.TestN = 200, 100
	ds := Generate(c, cfg, p)
	m := TrainCNN(emb, ds, DefaultCNNConfig(1))
	acc := m.Accuracy(ds.Test)
	if acc < 0.6 {
		t.Fatalf("CNN accuracy %.3f too low", acc)
	}
	t.Logf("CNN accuracy: %.3f", acc)
}
