// Package faultsite is the fault-injection-coverage fixture: the test
// lists it in FaultPathPackages, so unguarded os I/O boundaries must be
// flagged, and registered sites must appear in some chaos plan — the
// fixture's faultsite_test.go names fixture/read but not fixture/stale.
package faultsite

import (
	"os"

	"anchor/internal/faults"
)

var (
	readSite  = faults.Register("fixture/read")
	staleSite = faults.Register("fixture/stale") // want `fault site "fixture/stale" is registered but exercised by no chaos plan`
)

// Guarded passes through an injection site before touching the disk.
func Guarded(path string) ([]byte, error) {
	if err := faults.Error(readSite); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// Unguarded reads the disk with no injection site on the path.
func Unguarded(path string) ([]byte, error) {
	return os.ReadFile(path) // want `os.ReadFile in Unguarded is an I/O boundary with no fault-injection site`
}

// Suppressed documents a boundary deliberately kept outside the chaos
// plan.
func Suppressed(path string) error {
	//anchorlint:ignore faultsite fixture keeps this janitorial write outside the chaos plan
	return os.WriteFile(path, nil, 0o644)
}

var _ = staleSite
