package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

var (
	testSiteA = Register("faults.test/a")
	testSiteB = Register("faults.test/b")
)

// TestInertWithoutPlan pins the production contract: with no plan active
// every helper is a no-op.
func TestInertWithoutPlan(t *testing.T) {
	if Active() {
		t.Fatal("plan active at test start")
	}
	if err := Error(testSiteA); err != nil {
		t.Fatalf("inert Error = %v", err)
	}
	data := []byte{1, 2, 3}
	if got := Corrupt(testSiteA, data); &got[0] != &data[0] {
		t.Fatal("inert Corrupt copied the payload")
	}
	Sleep(context.Background(), testSiteA)
	Crash(testSiteA) // must not panic
	Pressure(testSiteA)
}

func TestUnregisteredSiteRejected(t *testing.T) {
	if _, err := NewPlan(1, Rule{Site: "faults.test/nope", Kind: KindError}); err == nil {
		t.Fatal("plan accepted a rule for an unregistered site")
	}
	if _, err := NewPlan(1, Rule{Site: testSiteA, Kind: KindError, Prob: 1.5}); err == nil {
		t.Fatal("plan accepted probability 1.5")
	}
}

// TestDeterministicSchedule: the same seed yields the same injection
// decisions at a site, visit for visit; a different seed yields a
// different schedule.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		plan := MustPlan(seed, Rule{Site: testSiteA, Kind: KindError, Prob: 0.5})
		defer Activate(plan)()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Error(testSiteA) != nil
		}
		return out
	}
	a1, a2, b := schedule(7), schedule(7), schedule(8)
	hits := 0
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("visit %d differs across identical seeds", i)
		}
		if a1[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a1) {
		t.Fatalf("prob 0.5 schedule fired %d/%d times", hits, len(a1))
	}
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestSiteIndependence: site B's decisions do not shift when site A is
// visited in between (per-site RNGs).
func TestSiteIndependence(t *testing.T) {
	run := func(interleave bool) []bool {
		plan := MustPlan(3,
			Rule{Site: testSiteA, Kind: KindError, Prob: 0.5},
			Rule{Site: testSiteB, Kind: KindError, Prob: 0.5})
		defer Activate(plan)()
		out := make([]bool, 32)
		for i := range out {
			if interleave {
				Error(testSiteA)
			}
			out[i] = Error(testSiteB) != nil
		}
		return out
	}
	plain, interleaved := run(false), run(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("site B visit %d changed because site A was visited", i)
		}
	}
}

func TestEveryAfterCount(t *testing.T) {
	plan := MustPlan(1, Rule{Site: testSiteA, Kind: KindError, Every: 3, After: 2, Count: 2})
	defer Activate(plan)()
	var fired []int
	for visit := 1; visit <= 12; visit++ {
		if Error(testSiteA) != nil {
			fired = append(fired, visit)
		}
	}
	// After 2 skips visits 1-2; Every 3 arms visits 3, 6, 9, ...; Count 2
	// stops after two injections.
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired at visits %v, want [3 6]", fired)
	}
	if got := plan.Fired(testSiteA, KindError); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestInjectedErrorShape(t *testing.T) {
	plan := MustPlan(1, Rule{Site: testSiteA, Kind: KindError})
	defer Activate(plan)()
	err := Error(testSiteA)
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Site != testSiteA {
		t.Fatalf("error = %#v", err)
	}
}

// TestCorruptFlipsBytesDeterministically: corruption returns a fresh,
// different buffer; the original is untouched; the flips are seed-stable.
func TestCorruptFlipsBytesDeterministically(t *testing.T) {
	orig := []byte(strings.Repeat("anchor", 16))
	mangle := func(seed int64) []byte {
		plan := MustPlan(seed, Rule{Site: testSiteA, Kind: KindCorrupt})
		defer Activate(plan)()
		return Corrupt(testSiteA, orig)
	}
	a, b := mangle(5), mangle(5)
	if &a[0] == &orig[0] {
		t.Fatal("Corrupt mutated the caller's buffer")
	}
	if string(orig) != strings.Repeat("anchor", 16) {
		t.Fatal("original buffer changed")
	}
	if string(a) == string(orig) {
		t.Fatal("armed Corrupt returned identical bytes")
	}
	if string(a) != string(b) {
		t.Fatal("same seed corrupted differently")
	}
}

func TestSleepHonorsContext(t *testing.T) {
	plan := MustPlan(1, Rule{Site: testSiteA, Kind: KindLatency, Latency: time.Hour})
	defer Activate(plan)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Sleep(ctx, testSiteA)
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored the canceled context")
	}
}

func TestCrashPanics(t *testing.T) {
	plan := MustPlan(1, Rule{Site: testSiteA, Kind: KindPanic})
	defer Activate(plan)()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Crash did not panic")
		}
		if s, ok := v.(string); !ok || !strings.Contains(s, testSiteA) {
			t.Fatalf("panic value %v does not name the site", v)
		}
	}()
	Crash(testSiteA)
}

func TestPressureAllocates(t *testing.T) {
	plan := MustPlan(1, Rule{Site: testSiteA, Kind: KindPressure, Bytes: 1 << 12})
	defer Activate(plan)()
	Pressure(testSiteA) // must not panic; the allocation is the effect
	if plan.Fired(testSiteA, KindPressure) != 1 {
		t.Fatal("pressure did not fire")
	}
}

// TestEventsRecordFirings: the event log names site, kind, and visit.
func TestEventsRecordFirings(t *testing.T) {
	plan := MustPlan(1,
		Rule{Site: testSiteA, Kind: KindError, Every: 2})
	defer Activate(plan)()
	for i := 0; i < 4; i++ {
		Error(testSiteA)
	}
	evs := plan.Events()
	if len(evs) != 2 || evs[0].Visit != 1 || evs[1].Visit != 3 || evs[0].Kind != KindError {
		t.Fatalf("events = %+v", evs)
	}
}

func TestSitesSorted(t *testing.T) {
	sites := Sites()
	found := 0
	for i, s := range sites {
		if i > 0 && sites[i-1] > s {
			t.Fatalf("sites not sorted: %v", sites)
		}
		if s == testSiteA || s == testSiteB {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("registered test sites missing from %v", sites)
	}
}
