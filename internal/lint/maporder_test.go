package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

// TestMapOrder runs the maporder fixtures: unsorted appends, float folds,
// and I/O inside map ranges must be flagged; the collect-then-sort idiom,
// keyed visit-once accumulation, integer counts, per-iteration locals, and
// a justified ignore directive must pass.
func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/src/maporder", "anchorlint.test/maporder")
}
