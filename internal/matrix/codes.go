package matrix

// Packed code-matrix representation for b-bit uniformly quantized rows
// (b in 1..8). A Codes matrix stores each entry as an index into a shared
// table of 2^b decode levels, packed LSB-first into bytes with rows
// aligned to byte boundaries — 8 to 64 entries per 8 bytes of float64.
//
// Scoring is decode-free: MulABTIntoLUT builds, per query row, a lookup
// table lut[k][v] = q[k]·level[v] (d·2^b float64 products) and then sums
// table entries selected by each candidate row's codes. Each product
// q[k]·level[code] is the exact float64 multiplication the dequantized
// reference performs, and each output element keeps one float64
// accumulator in ascending k, so results are bitwise identical to
// MulABTInto against the dequantized rows — for every worker count,
// batch shape, and bit width.

import (
	"fmt"
	"sort"

	"anchor/internal/parallel"
)

// Codes is a rows-by-cols matrix of b-bit level indices with its decode
// table. Data holds rows*RowBytes bytes; row i occupies
// Data[i*RowBytes:(i+1)*RowBytes], codes packed LSB-first.
type Codes struct {
	Rows, Cols int
	Bits       int       // bits per code, 1..8
	Levels     []float64 // 2^Bits decode levels, strictly ascending
	RowBytes   int       // bytes per packed row: ceil(Cols*Bits/8)
	Data       []byte
}

// NewCodes returns a zeroed code matrix with the given shape and decode
// table. It panics unless bits is in 1..8 and levels has exactly 2^bits
// strictly ascending entries.
func NewCodes(rows, cols, bits int, levels []float64) *Codes {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("matrix: Codes bits %d out of range 1..8", bits))
	}
	if len(levels) != 1<<uint(bits) {
		panic(fmt.Sprintf("matrix: Codes wants %d levels, got %d", 1<<uint(bits), len(levels)))
	}
	for i := 1; i < len(levels); i++ {
		if !(levels[i] > levels[i-1]) {
			panic(fmt.Sprintf("matrix: Codes levels not strictly ascending at %d", i))
		}
	}
	rowBytes := (cols*bits + 7) / 8
	return &Codes{
		Rows: rows, Cols: cols, Bits: bits,
		Levels:   append([]float64(nil), levels...),
		RowBytes: rowBytes,
		Data:     make([]byte, rows*rowBytes),
	}
}

// NewCodesFromDense packs m into b-bit codes over the given decode
// levels. Every value of m must be exactly one of the levels; the first
// value that is not yields an error (the matrix is not b-bit quantized
// on this grid, so a lossless code representation does not exist).
func NewCodesFromDense(m *Dense, levels []float64, bits int) (*Codes, error) {
	c := NewCodes(m.Rows, m.Cols, bits, levels)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for k, v := range row {
			idx := sort.SearchFloat64s(c.Levels, v)
			if idx >= len(c.Levels) || c.Levels[idx] != v {
				return nil, fmt.Errorf("matrix: value %v at (%d,%d) is not on the %d-bit level grid", v, i, k, bits)
			}
			c.set(i, k, uint8(idx))
		}
	}
	return c, nil
}

// set stores code at entry (i, k). Codes are packed LSB-first: entry k of
// a row occupies bits [k*Bits, (k+1)*Bits) of the row's bit stream.
func (c *Codes) set(i, k int, code uint8) {
	row := c.Data[i*c.RowBytes : (i+1)*c.RowBytes]
	off := k * c.Bits
	bi, sh := off>>3, uint(off&7)
	row[bi] |= code << sh
	if spill := sh + uint(c.Bits); spill > 8 {
		row[bi+1] |= code >> (8 - sh)
	}
}

// At returns the code at entry (i, k).
func (c *Codes) At(i, k int) uint8 {
	row := c.Data[i*c.RowBytes : (i+1)*c.RowBytes]
	off := k * c.Bits
	bi, sh := off>>3, uint(off&7)
	v := uint16(row[bi])
	if sh+uint(c.Bits) > 8 {
		v |= uint16(row[bi+1]) << 8
	}
	return uint8(v>>sh) & uint8(1<<uint(c.Bits)-1)
}

// DequantizeRow writes row i decoded through the level table into dst
// (length Cols).
func (c *Codes) DequantizeRow(i int, dst []float64) {
	row := c.Data[i*c.RowBytes : (i+1)*c.RowBytes]
	switch c.Bits {
	case 8:
		for k, code := range row[:c.Cols] {
			dst[k] = c.Levels[code]
		}
	default:
		var buf, nbits uint
		mask := uint(1)<<uint(c.Bits) - 1
		bi := 0
		for k := 0; k < c.Cols; k++ {
			for nbits < uint(c.Bits) {
				buf |= uint(row[bi]) << nbits
				bi++
				nbits += 8
			}
			dst[k] = c.Levels[buf&mask]
			buf >>= uint(c.Bits)
			nbits -= uint(c.Bits)
		}
	}
}

// Dense returns the fully dequantized float64 matrix — the reference
// representation golden tests score against.
func (c *Codes) Dense() *Dense {
	out := NewDense(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		c.DequantizeRow(i, out.Row(i))
	}
	return out
}

// SizeBytes returns the packed payload size.
func (c *Codes) SizeBytes() int { return len(c.Data) }

// MulABTIntoLUT computes a*bᵀ into dst for float64 query rows a against
// packed candidate rows b, and returns dst. dst must be a.Rows-by-b.Rows
// and must not alias a. Per query row it materializes the d·2^b table of
// products q[k]·level[v] once, then every candidate dot product is Cols
// table lookups and adds — no decode, and the only multiplications are
// the exact ones the dequantized reference performs. Workers banding
// follows the kernel contract: bands own disjoint output rows, results
// are bitwise identical to MulABTInto(dst, a, b.Dense()) for every
// worker count.
func MulABTIntoLUT(dst, a *Dense, b *Codes, workers int) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulABTLUT col mismatch %d vs %d", a.Cols, b.Cols))
	}
	checkDst(dst, a.Rows, b.Rows)
	nlv := len(b.Levels)
	runBanded(a.Rows, a.Rows*a.Cols*b.Rows, workers, func(band parallel.Range) {
		lut := make([]float64, a.Cols*nlv)
		for i := band.Lo; i < band.Hi; i++ {
			arow := a.Row(i)
			for k, qv := range arow {
				base := lut[k*nlv : (k+1)*nlv]
				for v, lvl := range b.Levels {
					base[v] = qv * lvl
				}
			}
			orow := dst.Row(i)
			switch b.Bits {
			case 8:
				for j := 0; j < b.Rows; j++ {
					row := b.Data[j*b.RowBytes : j*b.RowBytes+b.Cols]
					var s float64
					for k, code := range row {
						s += lut[k<<8+int(code)]
					}
					orow[j] = s
				}
			case 4:
				for j := 0; j < b.Rows; j++ {
					row := b.Data[j*b.RowBytes : (j+1)*b.RowBytes]
					var s float64
					k := 0
					for _, by := range row {
						s += lut[k<<4+int(by&15)]
						k++
						if k == b.Cols {
							break
						}
						s += lut[k<<4+int(by>>4)]
						k++
						if k == b.Cols {
							break
						}
					}
					orow[j] = s
				}
			default:
				mask := uint(1)<<uint(b.Bits) - 1
				for j := 0; j < b.Rows; j++ {
					row := b.Data[j*b.RowBytes : (j+1)*b.RowBytes]
					var s float64
					var buf, nbits uint
					bi := 0
					for k := 0; k < b.Cols; k++ {
						for nbits < uint(b.Bits) {
							buf |= uint(row[bi]) << nbits
							bi++
							nbits += 8
						}
						s += lut[k*nlv+int(buf&mask)]
						buf >>= uint(b.Bits)
						nbits -= uint(b.Bits)
					}
					orow[j] = s
				}
			}
		}
	})
	return dst
}
