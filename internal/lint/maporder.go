package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder enforces the ordered-iteration clause of the determinism
// contract: Go randomizes map iteration order, so a range over a map may
// not directly produce order-sensitive output. Three body shapes are
// order-sensitive: appending to a slice (unless the slice is sorted later
// in the same function — the collect-then-sort idiom), accumulating into a
// floating-point value (addition is not associative, so iteration order
// changes the rounded sum; writes indexed by the range key are exempt
// because each key is visited once), and I/O (bytes leave in map order).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map bodies that append to a slice with no " +
		"following sort, accumulate floats, or perform I/O — the " +
		"textio/cooc merge pattern, generalized",
	Run: runMapOrder,
}

// sortFuncs are the recognized deterministic-ordering calls: passing the
// appended slice to one of these after the loop discharges the finding.
var sortFuncs = map[[2]string]bool{
	{"sort", "Slice"}: true, {"sort", "SliceStable"}: true,
	{"sort", "Sort"}: true, {"sort", "Stable"}: true,
	{"sort", "Strings"}: true, {"sort", "Ints"}: true, {"sort", "Float64s"}: true,
	{"slices", "Sort"}: true, {"slices", "SortFunc"}: true,
	{"slices", "SortStableFunc"}: true,
}

// ioMethodNames are method names treated as I/O sinks inside a map range.
var ioMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Print": true, "Printf": true, "Println": true,
	"Encode": true,
}

// fmtPrintFuncs are fmt package-level output functions.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		var fnStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				fnStack = append(fnStack, n)
				ast.Inspect(funcBody(n), walk)
				fnStack = fnStack[:len(fnStack)-1]
				return false
			case *ast.RangeStmt:
				if len(fnStack) == 0 {
					return true
				}
				if t := pass.TypesInfo.Types[n.X].Type; t == nil || !isMap(t) {
					return true
				}
				checkMapRange(pass, n, funcBody(fnStack[len(fnStack)-1]))
			}
			return true
		}
		for _, decl := range file.Decls {
			ast.Inspect(decl, walk)
		}
	}
	return nil
}

// funcBody returns the body block of a FuncDecl or FuncLit.
func funcBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return &ast.BlockStmt{}
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one range-over-map body for order-sensitive
// operations; fn is the enclosing function body searched for post-loop
// sorts.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, fn ast.Node) {
	keyObj := rangeVarObj(pass.TypesInfo, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup("append") && len(n.Args) > 0 {
				target := types.ExprString(n.Args[0])
				if !sortedAfter(pass.TypesInfo, fn, rng.End(), target) {
					pass.Reportf(n.Pos(),
						"append to %s inside map iteration with no following sort: element order is randomized per run",
						target)
				}
				return true
			}
			checkMapRangeIO(pass, n)
		case *ast.AssignStmt:
			checkMapRangeFloat(pass, n, rng, keyObj)
		}
		return true
	})
}

// checkMapRangeFloat flags compound floating-point accumulation whose
// result depends on iteration order.
func checkMapRangeFloat(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, keyObj types.Object) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	lhs := as.Lhs[0]
	t := pass.TypesInfo.Types[lhs].Type
	if t == nil || !isFloat(t) {
		return
	}
	// acc[k] += v with k the range key touches each accumulator slot
	// exactly once per iteration, so order cannot change the sum.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && mentionsObj(pass.TypesInfo, ix.Index, keyObj) {
		return
	}
	// A variable declared inside the loop body resets every iteration.
	if base, _ := capturedBase(pass.TypesInfo, lhs, rng.Body.Pos(), rng.Body.End()); base != nil {
		if obj := pass.TypesInfo.Uses[base]; obj != nil && declaredWithin(obj, rng.Body.Pos(), rng.Body.End()) {
			return
		}
	}
	pass.Reportf(as.Pos(),
		"floating-point accumulation into %s inside map iteration: iteration order changes the rounded sum; iterate sorted keys",
		types.ExprString(lhs))
}

// checkMapRangeIO flags I/O calls inside a map range body.
func checkMapRangeIO(pass *Pass, call *ast.CallExpr) {
	if pkgPath, name, ok := pkgFunc(pass.TypesInfo, call); ok {
		if pkgPath == "fmt" && fmtPrintFuncs[name] {
			pass.Reportf(call.Pos(),
				"fmt.%s inside map iteration: output order is randomized per run; collect and sort first", name)
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !ioMethodNames[sel.Sel.Name] {
		return
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			pass.Reportf(call.Pos(),
				"%s call inside map iteration: output order is randomized per run; collect and sort first", sel.Sel.Name)
		}
	}
}

// sortedAfter reports whether the enclosing function body contains, after
// pos, a recognized sort call whose subject is the given expression.
func sortedAfter(info *types.Info, fn ast.Node, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		pkgPath, name, ok := pkgFunc(info, call)
		if !ok || !sortFuncs[[2]string{pkgPath, name}] || len(call.Args) == 0 {
			return true
		}
		if sortSubject(call.Args[0], target) {
			found = true
		}
		return !found
	})
	return found
}

// sortSubject reports whether a sort call's first argument is the target
// expression, directly or through a single-argument wrapper such as a
// sort.Interface conversion (sort.Sort(byLen(keys))).
func sortSubject(arg ast.Expr, target string) bool {
	if types.ExprString(arg) == target {
		return true
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok && len(call.Args) == 1 {
		return types.ExprString(call.Args[0]) == target
	}
	return false
}

// rangeVarObj resolves a range clause variable (key or value) to its
// object, handling both := definitions and = assignments.
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
