package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// TestGramSVDMatchesJacobi cross-validates the two SVD paths on tall-thin
// inputs: identical singular values (within tolerance), orthonormal
// factors, and agreeing reconstructions U·diag(S)·Vᵀ.
func TestGramSVDMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, sh := range [][2]int{{30, 3}, {100, 16}, {300, 64}, {50, 10}} {
		a := NewDenseRand(sh[0], sh[1], 1, rng)
		g, ok := gramSVD(a, 1)
		if !ok {
			t.Fatalf("%dx%d: gram path unexpectedly declined", sh[0], sh[1])
		}
		j := jacobiSVD(a)
		if len(g.S) != len(j.S) {
			t.Fatalf("%dx%d: rank %d vs %d", sh[0], sh[1], len(g.S), len(j.S))
		}
		for i := range g.S {
			if !almostEqual(g.S[i], j.S[i], 1e-9*(1+j.S[0])) {
				t.Fatalf("%dx%d: σ[%d] = %v vs %v", sh[0], sh[1], i, g.S[i], j.S[i])
			}
		}
		// U and V columns may differ by sign, so compare reconstructions.
		matAlmostEqual(t, g.Reconstruct(), j.Reconstruct(), 1e-8*(1+j.S[0]))
	}
}

func TestGramSVDOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := NewDenseRand(400, 32, 1, rng)
	s, ok := gramSVD(a, 1)
	if !ok {
		t.Fatal("gram path declined a well-conditioned tall-thin matrix")
	}
	r := len(s.S)
	matAlmostEqual(t, MulATB(s.U, s.U), Identity(r), 1e-10)
	matAlmostEqual(t, MulATB(s.V, s.V), Identity(r), 1e-10)
	for i := 1; i < r; i++ {
		if s.S[i] > s.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", s.S)
		}
	}
}

// TestGramSVDDeclinesIllConditioned builds a tall-thin matrix whose
// smallest singular value sits far below the Gram trust gate; ComputeSVD
// must fall back to one-sided Jacobi and still recover it accurately.
func TestGramSVDDeclinesIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, d := 60, 4
	a := NewDense(n, d)
	// Orthogonal-ish columns with σ ≈ {1, 1, 1, 1e-8}.
	base := NewDenseRand(n, d, 1, rng)
	qr := jacobiSVD(base)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			sv := 1.0
			if j == d-1 {
				sv = 1e-8
			}
			a.Set(i, j, qr.U.At(i, j)*sv)
		}
	}
	if _, ok := gramSVD(a, 1); ok {
		t.Fatal("gram path accepted a spectrum below its trust gate")
	}
	s := ComputeSVD(a)
	if len(s.S) != d {
		t.Fatalf("rank %d, want %d", len(s.S), d)
	}
	if got := s.S[d-1]; math.Abs(got-1e-8) > 1e-12 {
		t.Fatalf("smallest σ = %v, want ~1e-8", got)
	}
}

// TestComputeSVDRoutesTallThin confirms the dispatch: tall-thin inputs use
// the Gram path (same values as calling gramSVD directly), while square
// inputs use Jacobi.
func TestComputeSVDRoutesTallThin(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tall := NewDenseRand(90, 8, 1, rng)
	g, ok := gramSVD(tall, 1)
	if !ok {
		t.Fatal("gram path declined")
	}
	got := ComputeSVD(tall)
	matBitwiseEqual(t, got.U, g.U, "ComputeSVD tall-thin U")

	square := NewDenseRand(8, 8, 1, rng)
	j := jacobiSVD(square)
	got = ComputeSVD(square)
	matBitwiseEqual(t, got.U, j.U, "ComputeSVD square U")
}

func TestJacobiEigSymDiagonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	b := NewDenseRand(50, 6, 1, rng)
	g := MulATB(b, b) // symmetric PSD
	eig, v := jacobiEigSym(g)
	// V Λ Vᵀ must reconstruct G.
	vl := v.Clone()
	for i := 0; i < vl.Rows; i++ {
		row := vl.Row(i)
		for j := range row {
			row[j] *= eig[j]
		}
	}
	matAlmostEqual(t, MulABT(vl, v), g, 1e-9*(1+g.FrobNorm()))
	matAlmostEqual(t, MulATB(v, v), Identity(6), 1e-12)
}
