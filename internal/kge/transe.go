package kge

import (
	"math"
	"math/rand"
	"sort"

	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// TransEConfig mirrors the training protocol of Bordes et al. (2013) /
// OpenKE used in the paper (Appendix C.5): margin ranking loss with L1
// distance, uniform head/tail corruption, SGD, and per-epoch entity
// normalization.
type TransEConfig struct {
	Dim    int
	Epochs int
	LR     float64
	Margin float64
	Seed   int64
}

// DefaultTransEConfig returns the paper's hyperparameters (margin 1, L1,
// uniform corruption) with epochs scaled to the synthetic graph.
func DefaultTransEConfig(dim int, seed int64) TransEConfig {
	return TransEConfig{Dim: dim, Epochs: 30, LR: 0.01, Margin: 1, Seed: seed}
}

// TransE is a trained knowledge graph embedding: one vector per entity and
// per relation, scored by d(h + r, t) with L1 distance.
type TransE struct {
	Entity   *matrix.Dense // NumEntities x Dim
	Relation *matrix.Dense // NumRelations x Dim
}

// TrainTransE learns TransE embeddings for the graph.
func TrainTransE(g *Graph, cfg TransEConfig) *TransE {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bound := 6 / math.Sqrt(float64(cfg.Dim))
	m := &TransE{
		Entity:   matrix.NewDenseRand(g.NumEntities, cfg.Dim, bound, rng),
		Relation: matrix.NewDenseRand(g.NumRelations, cfg.Dim, bound, rng),
	}
	// Relations are normalized once at init (Bordes et al. 2013).
	for r := 0; r < g.NumRelations; r++ {
		floats.Normalize(m.Relation.Row(r))
	}

	order := make([]int, len(g.Train))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Entity normalization at the start of each epoch.
		for e := 0; e < g.NumEntities; e++ {
			floats.Normalize(m.Entity.Row(e))
		}
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			pos := g.Train[i]
			neg := pos
			// Uniform corruption of head or tail.
			if rng.Intn(2) == 0 {
				neg.H = int32(rng.Intn(g.NumEntities))
			} else {
				neg.T = int32(rng.Intn(g.NumEntities))
			}
			m.marginStep(pos, neg, cfg.Margin, cfg.LR)
		}
	}
	return m
}

// marginStep applies one SGD step on max(0, margin + d(pos) - d(neg))
// with L1 distance.
func (m *TransE) marginStep(pos, neg Triplet, margin, lr float64) {
	if margin+m.Score(pos)-m.Score(neg) <= 0 {
		return
	}
	// Gradient of L1 distance d(h+r-t) wrt its argument is sign(h+r-t).
	dim := m.Entity.Cols
	hp, rp, tp := m.Entity.Row(int(pos.H)), m.Relation.Row(int(pos.R)), m.Entity.Row(int(pos.T))
	hn, rn, tn := m.Entity.Row(int(neg.H)), m.Relation.Row(int(neg.R)), m.Entity.Row(int(neg.T))
	for j := 0; j < dim; j++ {
		gp := sign(hp[j] + rp[j] - tp[j]) // increase of d(pos) direction
		hp[j] -= lr * gp
		rp[j] -= lr * gp
		tp[j] += lr * gp
		gn := sign(hn[j] + rn[j] - tn[j])
		hn[j] += lr * gn
		rn[j] += lr * gn
		tn[j] -= lr * gn
	}
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Score returns the TransE energy d(h + r, t) with L1 distance; lower
// means the triplet is more plausible.
func (m *TransE) Score(t Triplet) float64 {
	h := m.Entity.Row(int(t.H))
	r := m.Relation.Row(int(t.R))
	tt := m.Entity.Row(int(t.T))
	var s float64
	for j := range h {
		s += math.Abs(h[j] + r[j] - tt[j])
	}
	return s
}

// TailRank returns the rank (1-based) of the true tail among all entities
// substituted as tail, ordered by ascending energy — the link prediction
// protocol ("raw" setting).
func (m *TransE) TailRank(t Triplet) int {
	target := m.Score(t)
	rank := 1
	probe := t
	for e := 0; e < m.Entity.Rows; e++ {
		if int32(e) == t.T {
			continue
		}
		probe.T = int32(e)
		if m.Score(probe) < target {
			rank++
		}
	}
	return rank
}

// TailRanks returns TailRank for every triplet.
func (m *TransE) TailRanks(triplets []Triplet) []int {
	out := make([]int, len(triplets))
	for i, t := range triplets {
		out[i] = m.TailRank(t)
	}
	return out
}

// MeanRank returns the average tail rank over the triplets (the link
// prediction quality metric).
func MeanRank(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var s float64
	for _, r := range ranks {
		s += float64(r)
	}
	return s / float64(len(ranks))
}

// HitsAt returns the fraction of ranks at or below k (hits@k, the
// standard link prediction quality metric alongside mean rank).
func HitsAt(ranks []int, k int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	n := 0
	for _, r := range ranks {
		if r <= k {
			n++
		}
	}
	return float64(n) / float64(len(ranks))
}

// MeanReciprocalRank returns the mean of 1/rank over the triplets.
func MeanReciprocalRank(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var s float64
	for _, r := range ranks {
		s += 1 / float64(r)
	}
	return s / float64(len(ranks))
}

// UnstableRankAt10 is the paper's link prediction instability metric: the
// fraction of test triplets whose rank changes by more than 10 between two
// models.
func UnstableRankAt10(a, b []int) float64 {
	if len(a) != len(b) {
		panic("kge: rank slices must align")
	}
	if len(a) == 0 {
		return 0
	}
	n := 0
	for i := range a {
		if abs(a[i]-b[i]) > 10 {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ClassificationSet is a labeled triplet set for triplet classification:
// each positive triplet is paired with one corrupted negative.
type ClassificationSet struct {
	Triplets []Triplet
	Labels   []bool
}

// BuildClassificationSet pairs each source triplet with a corrupted
// negative (tail replacement), as in Socher et al. (2013).
func BuildClassificationSet(g *Graph, src []Triplet, seed int64) ClassificationSet {
	rng := rand.New(rand.NewSource(seed))
	pos := map[Triplet]bool{}
	for _, t := range append(append(append([]Triplet{}, g.Train...), g.Valid...), g.Test...) {
		pos[t] = true
	}
	var set ClassificationSet
	for _, t := range src {
		set.Triplets = append(set.Triplets, t)
		set.Labels = append(set.Labels, true)
		neg := t
		for {
			neg.T = int32(rng.Intn(g.NumEntities))
			if !pos[neg] && neg.T != neg.H {
				break
			}
		}
		set.Triplets = append(set.Triplets, neg)
		set.Labels = append(set.Labels, false)
	}
	return set
}

// scored pairs a triplet energy with its gold label for threshold tuning.
type scored struct {
	s     float64
	label bool
}

// TuneThresholds selects one energy threshold per relation that maximizes
// accuracy on the validation classification set: predict positive iff
// d(h+r, t) <= threshold[r].
func (m *TransE) TuneThresholds(numRelations int, val ClassificationSet) []float64 {
	byRel := make([][]scored, numRelations)
	for i, t := range val.Triplets {
		byRel[t.R] = append(byRel[t.R], scored{m.Score(t), val.Labels[i]})
	}
	thresholds := make([]float64, numRelations)
	var global []scored
	for _, ss := range byRel {
		global = append(global, ss...)
	}
	globalThresh := bestThreshold(global)
	for r, ss := range byRel {
		if len(ss) == 0 {
			thresholds[r] = globalThresh
			continue
		}
		thresholds[r] = bestThreshold(ss)
	}
	return thresholds
}

func bestThreshold(ss []scored) float64 {
	if len(ss) == 0 {
		return 0
	}
	sort.Slice(ss, func(a, b int) bool { return ss[a].s < ss[b].s })
	// Candidate thresholds between consecutive scores; pick max accuracy.
	best, bestAcc := ss[0].s-1e-9, -1
	posBelow, totalPos := 0, 0
	for _, x := range ss {
		if x.label {
			totalPos++
		}
	}
	negBelow := 0
	for i := 0; i <= len(ss); i++ {
		// Threshold after i elements: positives below + negatives above.
		acc := posBelow + (len(ss) - totalPos - negBelow)
		if acc > bestAcc {
			bestAcc = acc
			if i == 0 {
				best = ss[0].s - 1e-9
			} else if i == len(ss) {
				best = ss[len(ss)-1].s + 1e-9
			} else {
				best = (ss[i-1].s + ss[i].s) / 2
			}
		}
		if i < len(ss) {
			if ss[i].label {
				posBelow++
			} else {
				negBelow++
			}
		}
	}
	return best
}

// Classify predicts labels for the set with the given per-relation
// thresholds.
func (m *TransE) Classify(set ClassificationSet, thresholds []float64) []bool {
	out := make([]bool, len(set.Triplets))
	for i, t := range set.Triplets {
		out[i] = m.Score(t) <= thresholds[t.R]
	}
	return out
}

// ClassificationAccuracy returns the accuracy of predictions against the
// set's labels.
func ClassificationAccuracy(set ClassificationSet, preds []bool) float64 {
	correct := 0
	for i := range preds {
		if preds[i] == set.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// Quantize returns a copy of the model with both embedding matrices
// uniformly quantized to the given precision, sharing this model's clips
// (use QuantizePair to share clips across a model pair as the paper does).
func (m *TransE) Quantize(bits int, entClip, relClip float64) *TransE {
	if bits >= 32 {
		return &TransE{Entity: m.Entity.Clone(), Relation: m.Relation.Clone()}
	}
	return &TransE{
		Entity:   quantizeDense(m.Entity, bits, entClip),
		Relation: quantizeDense(m.Relation, bits, relClip),
	}
}
