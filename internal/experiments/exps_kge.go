package experiments

import (
	"fmt"
	"sync"

	"anchor/internal/core"
	"anchor/internal/kge"
	"anchor/internal/stats"
)

// kgePair holds trained TransE models for FB15K-95 and FB15K at one
// (dim, seed).
type kgePair struct {
	m95, mFull *kge.TransE
}

var (
	kgeMu    sync.Mutex
	kgeCache = map[string]kgePair{}
)

func (r *Runner) kgePair(dim int, seed int64) kgePair {
	key := fmt.Sprintf("%v|%d|%d", r.Cfg.KGEGraph, dim, seed)
	kgeMu.Lock()
	p, ok := kgeCache[key]
	kgeMu.Unlock()
	if ok {
		return p
	}
	g := kge.GenerateGraph(r.Cfg.KGEGraph)
	g95 := kge.Subsample(g, 0.95, 7)
	cfg := kge.DefaultTransEConfig(dim, seed)
	p = kgePair{m95: kge.TrainTransE(g95, cfg), mFull: kge.TrainTransE(g, cfg)}
	kgeMu.Lock()
	kgeCache[key] = p
	kgeMu.Unlock()
	return p
}

// kgeEval evaluates one quantized pair on both KGE tasks. sharedThreshold
// selects the Figure 3 protocol (thresholds tuned on the FB15K-95 model
// and reused) versus Figure 10's per-dataset tuning.
func kgeEval(g *kge.Graph, q95, qFull *kge.TransE, sharedThreshold bool) (unstableRank, disagreement float64) {
	ranks95 := q95.TailRanks(g.Test)
	ranksFull := qFull.TailRanks(g.Test)
	unstableRank = kge.UnstableRankAt10(ranks95, ranksFull)

	val := kge.BuildClassificationSet(g, g.Valid, 1)
	test := kge.BuildClassificationSet(g, g.Test, 2)
	th95 := q95.TuneThresholds(g.NumRelations, val)
	thFull := th95
	if !sharedThreshold {
		thFull = qFull.TuneThresholds(g.NumRelations, val)
	}
	pa := q95.Classify(test, th95)
	pb := qFull.Classify(test, thFull)
	disagreement = core.PredictionDisagreementPct(pa, pb)
	return unstableRank, disagreement
}

func (r *Runner) kgeTable(id string, sharedThreshold bool) []*Table {
	g := kge.GenerateGraph(r.Cfg.KGEGraph)
	t := &Table{
		ID:    id,
		Title: "KGE stability vs memory (TransE, FB15K-95 vs FB15K)",
		Columns: []string{"dim", "prec", "memory(bits/vector)", "unstable-rank@10(%)",
			"triplet classification %disagreement"},
	}
	type row struct {
		dim, prec int
		ur, di    float64
	}
	var jobs []struct {
		dim, prec int
		seed      int64
	}
	for _, dim := range r.Cfg.KGEDims {
		for _, prec := range r.Cfg.KGEPrecisions {
			for _, seed := range r.Cfg.KGESeeds {
				jobs = append(jobs, struct {
					dim, prec int
					seed      int64
				}{dim, prec, seed})
			}
		}
	}
	// Warm the model cache serially (training is cached per dim/seed).
	for _, dim := range r.Cfg.KGEDims {
		for _, seed := range r.Cfg.KGESeeds {
			r.kgePair(dim, seed)
		}
	}
	results := make([]row, len(jobs))
	parallelFor(r.Cfg.Workers, len(jobs), func(i int) {
		j := jobs[i]
		p := r.kgePair(j.dim, j.seed)
		q95, qFull := kge.QuantizePair(p.m95, p.mFull, j.prec)
		ur, di := kgeEval(g, q95, qFull, sharedThreshold)
		results[i] = row{j.dim, j.prec, ur * 100, di}
	})

	// Average over seeds per (dim, prec).
	type key struct{ dim, prec int }
	sums := map[key]row{}
	counts := map[key]int{}
	for _, res := range results {
		k := key{res.dim, res.prec}
		s := sums[k]
		s.dim, s.prec = res.dim, res.prec
		s.ur += res.ur
		s.di += res.di
		sums[k] = s
		counts[k]++
	}
	var pts []stats.LinearLogPoint
	for _, dim := range r.Cfg.KGEDims {
		for _, prec := range r.Cfg.KGEPrecisions {
			k := key{dim, prec}
			n := counts[k]
			if n == 0 {
				continue
			}
			s := sums[k]
			ur, di := s.ur/float64(n), s.di/float64(n)
			t.AddRow(dim, prec, dim*prec, ur, di)
			pts = append(pts, stats.LinearLogPoint{Task: "linkpred", X: float64(dim * prec), Y: ur})
		}
	}
	fitT := &Table{
		ID: id, Title: "Linear-log fit of unstable-rank@10 vs memory",
		Columns: []string{"series", "slope (% per 2x memory)"},
	}
	if len(pts) >= 2 {
		fitT.AddRow("link prediction", stats.FitLinearLog(pts).Slope)
	}
	return []*Table{t, fitT}
}

// Fig3 reproduces Figure 3: KGE link prediction and triplet
// classification stability vs memory with shared thresholds.
func Fig3(r *Runner) []*Table { return r.kgeTable("fig3", true) }

// Fig10 reproduces Appendix Figure 10: triplet classification with
// per-dataset thresholds.
func Fig10(r *Runner) []*Table { return r.kgeTable("fig10", false) }
