package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Call is one static call site inside a function body.
type Call struct {
	// Callee is the called function's FullName.
	Callee string
	// Pos locates the call expression.
	Pos token.Pos
}

// A FuncNode is one function or method declared in a loaded package,
// with the static calls found in its body. Function literals (including
// goroutine bodies) are attributed to the enclosing declaration: a taint
// or blocking call inside a closure is the enclosing function's problem.
type FuncNode struct {
	// Name is the types.Func FullName — "pkgpath.Func" or
	// "(*pkgpath.Type).Method" — which is identical across packages even
	// though export-data importing gives each importer its own
	// *types.Package objects.
	Name string
	// Pkg is the defining package.
	Pkg *Package
	// Decl is the function's declaration.
	Decl *ast.FuncDecl
	// Calls lists call sites in source order, one entry per site.
	Calls []Call
}

// A CallGraph indexes every function declared in the loaded packages by
// FullName, with forward call edges on the nodes and a reverse index for
// caller lookups. Callees outside the loaded set (stdlib, generated
// code) appear as edge targets but have no node.
type CallGraph struct {
	// Funcs maps FullName to the declaring node.
	Funcs map[string]*FuncNode

	callers map[string][]string
}

// Node returns the function's node, or nil when it is not declared in a
// loaded package.
func (g *CallGraph) Node(name string) *FuncNode { return g.Funcs[name] }

// Callers returns the FullNames of loaded functions with at least one
// call edge to name, ordered by caller name.
func (g *CallGraph) Callers(name string) []string { return g.callers[name] }

// BuildCallGraph assembles the static call graph over the loaded
// packages. Dynamic calls through interface values resolve to the
// interface method's FullName (no devirtualization); calls through
// function-typed variables produce no edge.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Funcs:   make(map[string]*FuncNode),
		callers: make(map[string][]string),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Name: obj.FullName(), Pkg: pkg, Decl: fd}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee, ok := CalleeName(pkg.TypesInfo, call); ok {
						node.Calls = append(node.Calls, Call{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
				g.Funcs[node.Name] = node
			}
		}
	}
	// Build the reverse index over sorted function names: the caller
	// lists must not inherit map iteration order, or analyzer output
	// could vary between runs.
	names := make([]string, 0, len(g.Funcs))
	for name := range g.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	seen := make(map[[2]string]bool)
	for _, name := range names {
		node := g.Funcs[name]
		for _, c := range node.Calls {
			key := [2]string{c.Callee, node.Name}
			if !seen[key] {
				seen[key] = true
				g.callers[c.Callee] = append(g.callers[c.Callee], node.Name)
			}
		}
	}
	return g
}

// CalleeName resolves a call expression to the called function's
// FullName. Conversions, builtins, and calls through function-typed
// values yield ok=false.
func CalleeName(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := Callee(info, call)
	if fn == nil {
		return "", false
	}
	return fn.FullName(), true
}

// Callee resolves a call expression to the *types.Func it invokes
// (package function or method), or nil when the call target is not a
// statically known function.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn
				}
			}
			return nil
		}
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := e.X.(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}
