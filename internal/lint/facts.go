package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// A FactStore caches per-package analyzer facts (for example dettaint's
// function taint summaries) on disk so repeated lint runs over an
// unchanged package skip the fixed-point computation. Entries are keyed
// by (analyzer, package identity); the identity comes from the package's
// export-data path, whose build-cache action ID hashes the package's
// transitive sources — when any source in the package or its
// dependencies changes, the export path changes and the old fact entry
// is simply never looked up again.
type FactStore struct {
	dir string
}

// OpenFactStore returns a fact store rooted at dir; an empty dir yields
// a disabled store whose Load always misses.
func OpenFactStore(dir string) *FactStore {
	return &FactStore{dir: dir}
}

// PackageFactKey returns the package's content-addressed cache key, or
// "" when the package has no export data (linttest fixtures), in which
// case facts must be recomputed.
func PackageFactKey(p *Package) string {
	if p.ExportPath == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(p.ExportPath))
	return hex.EncodeToString(sum[:16])
}

func (s *FactStore) path(analyzer, key string) string {
	return filepath.Join(s.dir, "facts-"+analyzer+"-"+key+".json")
}

// Load reads the cached fact value for (analyzer, key) into out,
// reporting whether a valid entry was found.
func (s *FactStore) Load(analyzer, key string, out any) bool {
	if s == nil || s.dir == "" || key == "" {
		return false
	}
	data, err := os.ReadFile(s.path(analyzer, key))
	if err != nil {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// Save persists the fact value for (analyzer, key). Failures are
// ignored: the cache is an optimization, never a correctness input.
func (s *FactStore) Save(analyzer, key string, v any) {
	if s == nil || s.dir == "" || key == "" {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "facts-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), s.path(analyzer, key))
}
