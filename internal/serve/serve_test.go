package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"anchor"
)

// tinyConfig keeps HTTP tests at the experiments test scale.
func tinyConfig() anchor.ExperimentConfig {
	cfg := anchor.SmallExperimentConfig()
	cfg.Algorithms = []string{"mc"}
	cfg.Dims = []int{8, 16}
	cfg.Precisions = []int{1, 32}
	cfg.Seeds = []int64{1}
	cfg.SentimentTasks = []string{"sst2"}
	cfg.NEREnabled = false
	return cfg
}

func newTestServer(t *testing.T, opts ...anchor.ServiceOption) (*Server, *anchor.Service) {
	t.Helper()
	svc, err := anchor.NewService(append([]anchor.ServiceOption{anchor.WithConfig(tinyConfig())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return New(svc, nil), svc
}

// do issues one request against the handler and decodes the JSON reply.
func do(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if out != nil && rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s: %v (body %s)", method, path, err, rr.Body.String())
		}
	}
	return rr
}

func errCode(t *testing.T, rr *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body %q: %v", rr.Body.String(), err)
	}
	return body.Error.Code
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	var resp struct {
		Status     string   `json:"status"`
		Algorithms []string `json:"algorithms"`
		Tasks      []string `json:"tasks"`
		Measures   []string `json:"measures"`
	}
	rr := do(t, h, http.MethodGet, "/v1/healthz", "", &resp)
	if rr.Code != http.StatusOK || resp.Status != "ok" {
		t.Fatalf("healthz: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Algorithms) == 0 || len(resp.Tasks) == 0 || len(resp.Measures) != 5 {
		t.Fatalf("healthz registries: %+v", resp)
	}
	if rr := do(t, h, http.MethodPost, "/v1/healthz", "", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz = %d, want 405", rr.Code)
	}
}

func TestTrainEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	var resp struct {
		Algo   string `json:"algo"`
		Corpus string `json:"corpus"`
		Dim    int    `json:"dim"`
		Rows   int    `json:"rows"`
	}
	rr := do(t, h, http.MethodPost, "/v1/train", `{"algo":"mc","year":2017,"dim":8,"seed":1}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("train: %d %s", rr.Code, rr.Body.String())
	}
	if resp.Algo != "mc" || resp.Corpus != "wiki17" || resp.Dim != 8 || resp.Rows == 0 {
		t.Fatalf("train response: %+v", resp)
	}

	// Unknown algorithm -> 400 with a structured code.
	rr = do(t, h, http.MethodPost, "/v1/train", `{"algo":"elmo","year":2017,"dim":8}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_algorithm" {
		t.Fatalf("unknown algo: %d %s", rr.Code, rr.Body.String())
	}
	// Bad year -> 400.
	rr = do(t, h, http.MethodPost, "/v1/train", `{"algo":"mc","year":1999,"dim":8}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad year: %d", rr.Code)
	}
	// Unknown JSON field -> 400.
	rr = do(t, h, http.MethodPost, "/v1/train", `{"algo":"mc","yr":2017}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("typoed field: %d", rr.Code)
	}
}

func TestMeasuresEndpointBitwiseEqualsLibrary(t *testing.T) {
	// Server at workers=4, library reference at workers=1: the HTTP
	// response must be bitwise identical to the library path for any
	// worker count (acceptance criterion).
	srv, _ := newTestServer(t, anchor.WithWorkers(4))
	h := srv.Handler()
	var resp anchor.MeasureReport
	rr := do(t, h, http.MethodPost, "/v1/measures", `{"algo":"mc","dim":8,"bits":1,"seed":1}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("measures: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Values) != 5 || resp.MemoryBits != 8 {
		t.Fatalf("measures response: %+v", resp)
	}

	ref, err := anchor.NewService(anchor.WithConfig(tinyConfig()), anchor.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MeasureCell(context.Background(), "mc", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range want.Values {
		if resp.Values[name] != v {
			t.Fatalf("measure %s over HTTP %v != library %v", name, resp.Values[name], v)
		}
	}

	rr = do(t, h, http.MethodPost, "/v1/measures", `{"algo":"elmo","dim":8}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_algorithm" {
		t.Fatalf("unknown algo: %d %s", rr.Code, rr.Body.String())
	}
}

func TestStabilityEndpointBitwiseEqualsLibrary(t *testing.T) {
	srv, _ := newTestServer(t, anchor.WithWorkers(4))
	h := srv.Handler()
	var resp anchor.StabilityReport
	rr := do(t, h, http.MethodPost, "/v1/stability", `{"algo":"mc","task":"sst2","dim":8,"bits":1,"seed":1}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("stability: %d %s", rr.Code, rr.Body.String())
	}

	ref, err := anchor.NewService(anchor.WithConfig(tinyConfig()), anchor.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Stability(context.Background(), "mc", "sst2", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Disagreement != want.Disagreement || resp.Accuracy != want.Accuracy {
		t.Fatalf("HTTP stability %+v != library %+v", resp, want)
	}

	rr = do(t, h, http.MethodPost, "/v1/stability", `{"algo":"mc","task":"imdb","dim":8}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_task" {
		t.Fatalf("unknown task: %d %s", rr.Code, rr.Body.String())
	}
}

func TestSelectEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	var resp anchor.SelectReport
	rr := do(t, h, http.MethodPost, "/v1/select",
		`{"algo":"mc","dims":[8,16],"precisions":[1,32],"budget_bits":64}`, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("select: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Candidates) != 4 || resp.Best == nil || resp.Best.MemoryBits > 64 {
		t.Fatalf("select response: %+v", resp)
	}

	rr = do(t, h, http.MethodPost, "/v1/select", `{"algo":"mc","dims":[8],"precisions":[1],"measure":"vibes"}`, nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_measure" {
		t.Fatalf("unknown measure: %d %s", rr.Code, rr.Body.String())
	}
	rr = do(t, h, http.MethodPost, "/v1/select", `{"algo":"mc","dims":[],"precisions":[1]}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("empty grid: %d", rr.Code)
	}
}

// TestCanceledRequestAborts covers the 499-style abort: a request whose
// context is already canceled must not compute anything.
func TestCanceledRequestAborts(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct{ path, body string }{
		{"/v1/train", `{"algo":"mc","year":2017,"dim":8}`},
		{"/v1/measures", `{"algo":"mc","dim":8,"bits":1}`},
		{"/v1/stability", `{"algo":"mc","task":"sst2","dim":8,"bits":1}`},
		{"/v1/select", `{"algo":"mc","dims":[8],"precisions":[1]}`},
	} {
		req := httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body)).WithContext(ctx)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != StatusClientClosedRequest {
			t.Fatalf("%s with canceled ctx = %d, want %d (%s)", tc.path, rr.Code, StatusClientClosedRequest, rr.Body.String())
		}
		if errCode(t, rr) != "client_closed_request" {
			t.Fatalf("%s error code = %s", tc.path, errCode(t, rr))
		}
	}
	if st := svc.StoreStats(); st.Computes != 0 {
		t.Fatalf("canceled requests trained embeddings: %+v", st)
	}
}

// TestSecondRequestServedFromStore asserts the acceptance criterion that
// an identical second request is served from the artifact store.
func TestSecondRequestServedFromStore(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	body := `{"algo":"mc","dim":8,"bits":1,"seed":1}`
	if rr := do(t, h, http.MethodPost, "/v1/measures", body, nil); rr.Code != http.StatusOK {
		t.Fatalf("first: %d", rr.Code)
	}
	computes := svc.StoreStats().Computes
	if computes == 0 {
		t.Fatal("first request trained nothing")
	}
	if rr := do(t, h, http.MethodPost, "/v1/measures", body, nil); rr.Code != http.StatusOK {
		t.Fatalf("second: %d", rr.Code)
	}
	if got := svc.StoreStats().Computes; got != computes {
		t.Fatalf("second identical request retrained: %d -> %d", computes, got)
	}
}

// TestConcurrentRequests hammers the server with concurrent identical and
// distinct queries over a real HTTP listener: all must succeed, identical
// queries must produce byte-identical bodies, and (under -race) the
// shared store/runner must be data-race free.
func TestConcurrentRequests(t *testing.T) {
	srv, _ := newTestServer(t, anchor.WithWorkers(2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) ([]byte, int, error) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return b, resp.StatusCode, err
	}

	const perKind = 8
	type result struct {
		kind string
		body []byte
	}
	kinds := map[string]string{
		"measures-d8":  `{"algo":"mc","dim":8,"bits":1,"seed":1}`,
		"measures-d16": `{"algo":"mc","dim":16,"bits":1,"seed":1}`,
		"stability-d8": `{"algo":"mc","task":"sst2","dim":8,"bits":1,"seed":1}`,
	}
	paths := map[string]string{
		"measures-d8":  "/v1/measures",
		"measures-d16": "/v1/measures",
		"stability-d8": "/v1/stability",
	}

	var wg sync.WaitGroup
	results := make(chan result, 3*perKind)
	errs := make(chan error, 3*perKind)
	for kind := range kinds {
		for i := 0; i < perKind; i++ {
			wg.Add(1)
			go func(kind string) {
				defer wg.Done()
				body, code, err := post(paths[kind], kinds[kind])
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", kind, code, body)
					return
				}
				results <- result{kind, body}
			}(kind)
		}
	}
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	first := map[string][]byte{}
	for res := range results {
		if prev, ok := first[res.kind]; ok {
			if !bytes.Equal(prev, res.body) {
				t.Fatalf("%s: concurrent responses differ:\n%s\nvs\n%s", res.kind, prev, res.body)
			}
		} else {
			first[res.kind] = res.body
		}
	}
	if len(first) != 3 {
		t.Fatalf("missing result kinds: %v", first)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	srv, _ := newTestServer(t)
	h := srv.Handler()
	rr := do(t, h, http.MethodGet, "/v1/nope", "", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("unknown route = %d, want 404", rr.Code)
	}
	// 404s use the structured envelope too.
	if errCode(t, rr) != "not_found" {
		t.Fatalf("404 code = %q (body %s)", errCode(t, rr), rr.Body.String())
	}
	if rr := do(t, h, http.MethodGet, "/v1/measures", "", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET measures = %d, want 405", rr.Code)
	}
}

// queryWords returns real vocabulary words from the tiny config's corpus
// by training the smallest snapshot once (served from the store for every
// later request in the same test).
func queryWords(t *testing.T, svc *anchor.Service, n int) []string {
	t.Helper()
	e, err := svc.Train(context.Background(), "mc", 2017, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Words) < n {
		t.Fatalf("vocab too small: %d < %d", len(e.Words), n)
	}
	words := make([]string, n)
	for i := range words {
		words[i] = e.Words[(i*17)%len(e.Words)]
	}
	return words
}

func TestVectorsEndpoint(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	words := queryWords(t, svc, 2)
	var resp anchor.VectorsReport
	rr := do(t, h, http.MethodGet,
		"/v1/vectors?algo=mc&dim=8&year=2017&seed=1&words="+words[0]+","+words[1], "", &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("vectors: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Vectors) != 2 || len(resp.Vectors[0].Vector) != 8 {
		t.Fatalf("vectors response: %+v", resp)
	}
	// The served vector must be bitwise the trained embedding's row.
	e, err := svc.Train(context.Background(), "mc", 2017, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resp.Vectors {
		for j, x := range v.Vector {
			if x != e.Vector(v.ID)[j] {
				t.Fatalf("vector %s differs from trained row", v.Word)
			}
		}
	}

	// Out-of-vocabulary word -> 404 with the structured envelope.
	rr = do(t, h, http.MethodGet, "/v1/vectors?algo=mc&dim=8&words=notaword", "", nil)
	if rr.Code != http.StatusNotFound || errCode(t, rr) != "unknown_word" {
		t.Fatalf("unknown word: %d %s", rr.Code, rr.Body.String())
	}
	// Unknown algorithm stays 400.
	rr = do(t, h, http.MethodGet, "/v1/vectors?algo=elmo&dim=8&words="+words[0], "", nil)
	if rr.Code != http.StatusBadRequest || errCode(t, rr) != "unknown_algorithm" {
		t.Fatalf("unknown algo: %d %s", rr.Code, rr.Body.String())
	}
	// Malformed numbers -> 400.
	rr = do(t, h, http.MethodGet, "/v1/vectors?algo=mc&dim=eight&words="+words[0], "", nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad dim: %d", rr.Code)
	}
	// Missing words -> 400.
	rr = do(t, h, http.MethodGet, "/v1/vectors?algo=mc&dim=8", "", nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("no words: %d", rr.Code)
	}
	if rr := do(t, h, http.MethodPost, "/v1/vectors", "", nil); rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST vectors = %d, want 405", rr.Code)
	}
}

// TestNeighborsEndpointBitwise is the read-path acceptance criterion:
// POST /v1/neighbors returns bitwise-identical neighbor lists for
// workers=1 vs workers=N and for singleton vs micro-batched execution,
// exercised with concurrent requests over a real listener (and under
// -race in CI).
func TestNeighborsEndpointBitwise(t *testing.T) {
	// Reference: one worker, micro-batching disabled — every query is a
	// singleton block.
	refSrv, refSvc := newTestServer(t, anchor.WithWorkers(1), anchor.WithQueryWindow(0))
	words := queryWords(t, refSvc, 12)
	refH := refSrv.Handler()

	body := func(word string) string {
		return fmt.Sprintf(`{"algo":"mc","words":[%q],"dim":8,"k":5,"year":2017,"seed":1}`, word)
	}
	want := map[string][]byte{}
	for _, w := range words {
		rr := do(t, refH, http.MethodPost, "/v1/neighbors", body(w), nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("reference %s: %d %s", w, rr.Code, rr.Body.String())
		}
		want[w] = append([]byte(nil), rr.Body.Bytes()...)
	}

	// Subject: many workers, a wide-open gather window so the concurrent
	// burst below actually coalesces.
	srv, svc := newTestServer(t, anchor.WithWorkers(4), anchor.WithQueryWindow(2*time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const rounds = 4
	var wg sync.WaitGroup
	type result struct {
		word string
		body []byte
	}
	results := make(chan result, rounds*len(words))
	errs := make(chan error, rounds*len(words))
	for r := 0; r < rounds; r++ {
		for _, w := range words {
			wg.Add(1)
			go func(w string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/neighbors", "application/json", strings.NewReader(body(w)))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", w, resp.StatusCode, b)
					return
				}
				results <- result{w, b}
			}(w)
		}
	}
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := 0
	for res := range results {
		got++
		if !bytes.Equal(res.body, want[res.word]) {
			t.Fatalf("word %s: batched workers=4 response differs from singleton workers=1:\n%s\nvs\n%s",
				res.word, res.body, want[res.word])
		}
	}
	if got != rounds*len(words) {
		t.Fatalf("got %d results, want %d", got, rounds*len(words))
	}
	// The burst must actually have been micro-batched (fewer matrix
	// products than queries).
	if st := svc.QueryStats(); st.Batches >= st.BatchedQueries {
		t.Fatalf("no coalescing happened: %d batches for %d queries", st.Batches, st.BatchedQueries)
	}

	// Multi-word requests answer as one block, bitwise equal again.
	multi := fmt.Sprintf(`{"algo":"mc","words":[%q,%q],"dim":8,"k":5,"year":2017,"seed":1}`, words[0], words[1])
	var multiResp, refMulti anchor.NeighborsReport
	if rr := do(t, srv.Handler(), http.MethodPost, "/v1/neighbors", multi, &multiResp); rr.Code != http.StatusOK {
		t.Fatalf("multi: %d %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, refH, http.MethodPost, "/v1/neighbors", multi, &refMulti); rr.Code != http.StatusOK {
		t.Fatalf("ref multi: %d %s", rr.Code, rr.Body.String())
	}
	if !reflect.DeepEqual(multiResp, refMulti) {
		t.Fatalf("multi-word response differs:\n%+v\nvs\n%+v", multiResp, refMulti)
	}
}

func TestNeighborDeltaEndpoint(t *testing.T) {
	srv, svc := newTestServer(t)
	h := srv.Handler()
	words := queryWords(t, svc, 3)
	body := fmt.Sprintf(`{"algo":"mc","words":[%q,%q,%q],"dim":8,"k":5,"seed":1}`, words[0], words[1], words[2])
	var resp anchor.NeighborDeltaReport
	rr := do(t, h, http.MethodPost, "/v1/neighbors/delta", body, &resp)
	if rr.Code != http.StatusOK {
		t.Fatalf("delta: %d %s", rr.Code, rr.Body.String())
	}
	if len(resp.Results) != 3 || resp.K != 5 {
		t.Fatalf("delta response: %+v", resp)
	}
	mean := 0.0
	for i, d := range resp.Results {
		if d.Word != words[i] {
			t.Fatalf("delta %d word %q, want %q", i, d.Word, words[i])
		}
		if len(d.A) != 5 || len(d.B) != 5 {
			t.Fatalf("delta %s lists %d/%d, want 5/5", d.Word, len(d.A), len(d.B))
		}
		if d.Overlap < 0 || d.Overlap > 1 {
			t.Fatalf("delta %s overlap %v out of range", d.Word, d.Overlap)
		}
		mean += d.Overlap
	}
	if want := mean / 3; resp.MeanOverlap != want {
		t.Fatalf("mean overlap %v, want %v", resp.MeanOverlap, want)
	}

	rr = do(t, h, http.MethodPost, "/v1/neighbors/delta", `{"algo":"mc","words":["x"],"dim":8,"k":0,"seed":1}`, nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("oov delta word: %d %s", rr.Code, rr.Body.String())
	}
	rr = do(t, h, http.MethodPost, "/v1/neighbors/delta", `{"algo":"mc","words":[],"dim":8}`, nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("empty words: %d", rr.Code)
	}
}
