package anchor_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"anchor"
)

// TestServiceQueryPrecisionReadPath: QueryPrecision routes the read path
// through the quantized snapshot — reports carry the served bits, vector
// lookups return the quantized rows bitwise, and the snapshot goes
// resident as packed codes.
func TestServiceQueryPrecisionReadPath(t *testing.T) {
	svc := newTinyService(t)
	ctx := context.Background()
	e, err := svc.Train(ctx, "mc", 2017, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The serving path learns its clip on the Wiki'17 snapshot, exactly
	// like QuantizePair with the same embedding on both sides.
	q, _ := anchor.QuantizePair(e, e, 8)
	words := []string{e.Words[3], e.Words[77]}

	vrep, err := svc.Query(ctx, "mc", 8, words, anchor.QueryPrecision(8))
	if err != nil {
		t.Fatal(err)
	}
	if vrep.Bits != 8 {
		t.Fatalf("vectors report bits %d, want 8", vrep.Bits)
	}
	for _, v := range vrep.Vectors {
		for j, x := range v.Vector {
			if math.Float64bits(x) != math.Float64bits(q.Vector(v.ID)[j]) {
				t.Fatalf("quantized vector %s differs from QuantizePair reference", v.Word)
			}
		}
	}

	nrep, err := svc.Neighbors(ctx, "mc", 8, words, anchor.QueryK(4), anchor.QueryPrecision(8))
	if err != nil {
		t.Fatal(err)
	}
	if nrep.Bits != 8 || len(nrep.Results[0].Neighbors) != 4 {
		t.Fatalf("neighbors report bits=%d k-results=%d", nrep.Bits, len(nrep.Results[0].Neighbors))
	}

	// Full-precision default still reports 32 and serves the float64 rows.
	full, err := svc.Query(ctx, "mc", 8, words)
	if err != nil {
		t.Fatal(err)
	}
	if full.Bits != 32 {
		t.Fatalf("default report bits %d, want 32", full.Bits)
	}

	var codes bool
	for _, in := range svc.ResidentSnapshots() {
		if in.Bits == 8 && in.Mode == "codes" {
			codes = true
		}
	}
	if !codes {
		t.Fatal("no codes-mode resident snapshot after an 8-bit query")
	}

	var inv *anchor.InvalidRequestError
	if _, err := svc.Neighbors(ctx, "mc", 8, words, anchor.QueryPrecision(33)); !errors.As(err, &inv) {
		t.Fatalf("precision 33 error = %v, want InvalidRequestError", err)
	}
	if _, err := svc.Neighbors(ctx, "mc", 0, words); !errors.As(err, &inv) {
		t.Fatalf("dim 0 without serving budget error = %v, want InvalidRequestError", err)
	}
}

// TestServiceServingBudget: with a serving budget configured, dim-0
// queries have their (dim, bits) cell chosen by the selection algorithm
// under dim*bits <= budget, and the choice matches an explicit Select
// over the same grid.
func TestServiceServingBudget(t *testing.T) {
	const budget = 16
	svc := newTinyService(t, anchor.WithServingBudget(budget))
	if svc.ServingBudget() != budget {
		t.Fatalf("ServingBudget() = %d, want %d", svc.ServingBudget(), budget)
	}
	ctx := context.Background()
	e, err := svc.Train(ctx, "mc", 2017, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{e.Words[5]}

	nrep, err := svc.Neighbors(ctx, "mc", 0, words, anchor.QueryK(3))
	if err != nil {
		t.Fatal(err)
	}
	if nrep.Dim*nrep.Bits > budget {
		t.Fatalf("auto-selected cell d=%d b=%d exceeds budget %d", nrep.Dim, nrep.Bits, budget)
	}
	cfg := svc.Config()
	rep, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: cfg.Dims, Precisions: cfg.Precisions, BudgetBits: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil {
		t.Fatal("Select found no candidate within budget")
	}
	if nrep.Dim != rep.Best.Dim || nrep.Bits != rep.Best.Precision {
		t.Fatalf("auto-selection chose d=%d b=%d, Select's best is d=%d b=%d",
			nrep.Dim, nrep.Bits, rep.Best.Dim, rep.Best.Precision)
	}

	// The cached choice serves later queries without re-selecting.
	again, err := svc.Query(ctx, "mc", 0, words)
	if err != nil {
		t.Fatal(err)
	}
	if again.Dim != nrep.Dim || again.Bits != nrep.Bits {
		t.Fatalf("second budget query cell d=%d b=%d differs from first d=%d b=%d",
			again.Dim, again.Bits, nrep.Dim, nrep.Bits)
	}
}
