// Package faults is the deterministic, seeded fault-injection framework
// behind the serving tier's chaos tests. Production code registers named
// injection sites at its failure points — disk reads in internal/store,
// snapshot loads in internal/query, request handling in internal/serve —
// and calls the site helpers (Error, Corrupt, Sleep, Crash, Pressure) at
// those points. With no plan active the helpers are inert: one atomic nil
// check and out, so the sites cost nothing in production.
//
// Tests activate a Plan: a seeded schedule of Rules, each binding a fault
// kind (I/O error, corrupt bytes, latency, allocation pressure, panic) to
// one site with a probability, a visit period, and an injection cap. All
// randomness flows from per-site RNGs derived from the plan seed, so a
// site's injection decisions depend only on the plan seed and that site's
// visit count — the same discipline (seeded, order-fixed) the rest of the
// module's determinism contract demands, which is why this package sits
// in anchorlint's deterministic-packages set. Under concurrency the
// interleaving of visits across goroutines still varies, so chaos tests
// assert schedule-independent invariants (every success is bitwise equal
// to the fault-free oracle) rather than exact fault sequences.
//
// Sites are registered up front (Register, usually in a var declaration)
// and NewPlan rejects rules naming unregistered sites, so a site renamed
// in production code cannot silently turn a chaos schedule into a no-op.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies what an injected fault does at a site.
type Kind int

const (
	// KindError makes the site's Error helper return an injected
	// *InjectedError (callers treat it exactly like a real I/O failure).
	KindError Kind = iota
	// KindCorrupt makes the site's Corrupt helper flip deterministic bytes
	// in the payload passing through it.
	KindCorrupt
	// KindLatency makes the site's Sleep helper block for the rule's
	// Latency (bounded by the caller's context).
	KindLatency
	// KindPanic makes the site's Crash helper panic — the injected fault
	// for panic-recovery middleware.
	KindPanic
	// KindPressure makes the site's Pressure helper allocate and touch the
	// rule's Bytes of memory, simulating allocation pressure.
	KindPressure
)

// String names the kind for events and errors.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	case KindPressure:
		return "pressure"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// InjectedError is the error type returned by armed KindError rules;
// errors.As distinguishes injected failures from real ones in tests.
type InjectedError struct {
	// Site is the injection site that fired.
	Site string
	// Visit is the 1-based visit count at which the fault fired.
	Visit int
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected I/O error at %s (visit %d)", e.Site, e.Visit)
}

// Rule schedules one fault kind at one site.
type Rule struct {
	// Site names the registered injection site.
	Site string
	// Kind selects the fault.
	Kind Kind
	// Prob is the per-visit injection probability in [0, 1], drawn from
	// the site's seeded RNG. 0 means "every visit the other gates allow"
	// (i.e. it is treated as 1).
	Prob float64
	// Every, when > 1, arms the rule only on every Every-th visit of the
	// site (1st, Every+1-th, ...). 0 and 1 mean every visit.
	Every int
	// After skips the site's first After visits before the rule can fire.
	After int
	// Count caps the total injections of this rule (0 = unlimited).
	Count int
	// Latency is the sleep duration for KindLatency rules.
	Latency time.Duration
	// Bytes is the allocation size for KindPressure rules (default 1 MiB).
	Bytes int
}

// Event records one injection for test assertions.
type Event struct {
	// Site is where the fault fired.
	Site string
	// Kind is what fired.
	Kind Kind
	// Visit is the site's 1-based visit count at firing time.
	Visit int
}

// ruleState is a Rule plus its mutable schedule state.
type ruleState struct {
	Rule
	fired int
}

// siteState serializes scheduling decisions for one site.
type siteState struct {
	mu     sync.Mutex
	rng    *rand.Rand
	visits int
	rules  []*ruleState
}

// Plan is one seeded fault schedule. Construct with NewPlan, install with
// Activate. A Plan is safe for concurrent use by many request goroutines.
type Plan struct {
	seed  int64
	sites map[string]*siteState

	mu     sync.Mutex
	events []Event
}

// registry is the process-wide set of registered site names.
var (
	registryMu sync.Mutex
	registry   = map[string]bool{}
)

// Register declares an injection site and returns its name, so production
// packages can register in a var declaration:
//
//	var siteBinRead = faults.Register("store/bin.read")
//
// Registering the same name twice is fine (the registry is a set).
func Register(site string) string {
	registryMu.Lock()
	registry[site] = true
	registryMu.Unlock()
	return site
}

// Sites lists the registered injection sites, sorted.
func Sites() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// NewPlan builds a seeded fault schedule. Each site draws from its own
// RNG seeded by (seed, site), so one site's decisions are independent of
// every other site's visit order. Rules naming unregistered sites are
// rejected — a renamed production site must fail the test that schedules
// it, not silently stop injecting.
func NewPlan(seed int64, rules ...Rule) (*Plan, error) {
	p := &Plan{seed: seed, sites: map[string]*siteState{}}
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, r := range rules {
		if !registry[r.Site] {
			return nil, fmt.Errorf("faults: rule targets unregistered site %q (have %d registered sites)", r.Site, len(registry))
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faults: rule at %s: probability %v outside [0, 1]", r.Site, r.Prob)
		}
		st := p.sites[r.Site]
		if st == nil {
			st = &siteState{rng: rand.New(rand.NewSource(siteSeed(seed, r.Site)))}
			p.sites[r.Site] = st
		}
		st.rules = append(st.rules, &ruleState{Rule: r})
	}
	return p, nil
}

// MustPlan is NewPlan for tests whose rules are static.
func MustPlan(seed int64, rules ...Rule) *Plan {
	p, err := NewPlan(seed, rules...)
	if err != nil {
		panic(err)
	}
	return p
}

// siteSeed derives a site's RNG seed from the plan seed and the site name
// (FNV-1a over the name, folded with the seed).
func siteSeed(seed int64, site string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return seed ^ int64(h)
}

// active is the installed plan; nil (the production state) makes every
// site helper a single atomic load.
var active atomic.Pointer[Plan]

// Activate installs p as the process-wide fault plan and returns the
// deactivation function. Tests typically defer it:
//
//	defer faults.Activate(plan)()
//
// Activating over an already-active plan replaces it.
func Activate(p *Plan) (deactivate func()) {
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// Active reports whether a fault plan is installed.
func Active() bool { return active.Load() != nil }

// Events returns the injections fired so far, in firing order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Fired counts the injections of kind at site so far.
func (p *Plan) Fired(site string, kind Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ev := range p.events {
		if ev.Site == site && ev.Kind == kind {
			n++
		}
	}
	return n
}

// arm visits the site and returns the armed rule of the wanted kind, if
// any. Each call counts one visit; a site visited by several helpers
// (Error then Corrupt, say) advances once per helper call, keeping each
// helper's decision sequence deterministic.
func (p *Plan) arm(site string, want Kind) *ruleState {
	st := p.sites[site]
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.visits++
	var hit *ruleState
	for _, r := range st.rules {
		if r.Kind != want {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if st.visits <= r.After {
			continue
		}
		if e := r.Every; e > 1 && (st.visits-r.After-1)%e != 0 {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && st.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		hit = r
		break
	}
	if hit == nil {
		return nil
	}
	p.mu.Lock()
	p.events = append(p.events, Event{Site: site, Kind: want, Visit: st.visits})
	p.mu.Unlock()
	visit := st.visits
	// Copy the rule so callers read schedule-free fields without racing
	// future arms.
	out := &ruleState{Rule: hit.Rule, fired: visit}
	return out
}

// Error returns an injected I/O error when site has an armed KindError
// rule, nil otherwise (and always nil with no plan active).
func Error(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	if r := p.arm(site, KindError); r != nil {
		return &InjectedError{Site: site, Visit: r.fired}
	}
	return nil
}

// Corrupt returns data with deterministically chosen bytes flipped when
// site has an armed KindCorrupt rule; otherwise it returns data untouched
// (same backing array — the inert path copies nothing). The corrupted
// payload is a fresh copy: callers' buffers are never mutated in place.
func Corrupt(site string, data []byte) []byte {
	p := active.Load()
	if p == nil {
		return data
	}
	r := p.arm(site, KindCorrupt)
	if r == nil || len(data) == 0 {
		return data
	}
	st := p.sites[site]
	out := append([]byte(nil), data...)
	st.mu.Lock()
	// Flip 1..4 bytes at seeded offsets: enough to tear a header field, a
	// payload value, or a checksum, wherever the offsets land.
	n := 1 + st.rng.Intn(4)
	for i := 0; i < n; i++ {
		out[st.rng.Intn(len(out))] ^= byte(1 + st.rng.Intn(255))
	}
	st.mu.Unlock()
	return out
}

// Sleep blocks for the armed KindLatency rule's duration, returning early
// when ctx expires. With no armed rule (or no plan) it returns
// immediately.
func Sleep(ctx context.Context, site string) {
	p := active.Load()
	if p == nil {
		return
	}
	r := p.arm(site, KindLatency)
	if r == nil || r.Latency <= 0 {
		return
	}
	//anchorlint:ignore seedrand injected latency only delays scheduled work; answers are bitwise identical with or without the sleep (chaos suite invariant)
	timer := time.NewTimer(r.Latency)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// Crash panics with a recognizable value when site has an armed KindPanic
// rule — the injected fault for panic-recovery middleware.
func Crash(site string) {
	p := active.Load()
	if p == nil {
		return
	}
	if r := p.arm(site, KindPanic); r != nil {
		panic(fmt.Sprintf("faults: injected panic at %s (visit %d)", site, r.fired))
	}
}

// Pressure allocates and touches the armed KindPressure rule's Bytes
// (default 1 MiB), simulating allocation pressure at the site. The buffer
// is garbage immediately; the point is the allocator traffic.
func Pressure(site string) {
	p := active.Load()
	if p == nil {
		return
	}
	r := p.arm(site, KindPressure)
	if r == nil {
		return
	}
	n := r.Bytes
	if n <= 0 {
		n = 1 << 20
	}
	buf := make([]byte, n)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	sinkByte = buf[0]
}

// sinkByte keeps Pressure's buffer touch from being optimized away.
var sinkByte byte
