// Package lint implements anchorlint, a suite of static analyzers that
// mechanically enforce this repository's bitwise-determinism contract:
// worker-count-invariant training, order-preserving kernels, and seeded
// sharded RNGs (see docs/ARCHITECTURE.md, "Determinism rules").
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is self-contained: packages are loaded
// with `go list -export` and type-checked against compiler export data, so
// the linter needs nothing beyond the standard library and the go tool.
//
// Findings can be suppressed in place with a directive comment
//
//	//anchorlint:ignore <rule> <reason>
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory: intentional nondeterminism (for example the gather-window
// timing in internal/query) must be documented where it happens. A
// directive with a missing reason or an unknown rule name is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint rule: a named, documented check that
// reports diagnostics. Per-package rules implement Run; rules that need
// the whole module at once (call-graph analyses) implement RunModule.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in
	// //anchorlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the contract clause the
	// rule enforces.
	Doc string
	// Severity classifies the rule's findings for drivers and SARIF
	// output: "error" (the default when empty — unsuppressed findings
	// fail the build), "warning", or "note".
	Severity string
	// Run executes the rule over one package. Nil for module-level rules.
	Run func(*Pass) error
	// RunModule executes the rule once over every loaded package, with
	// the module call graph available. Nil for per-package rules.
	RunModule func(*ModulePass) error
}

// EffectiveSeverity resolves the analyzer's severity, defaulting to
// "error".
func (a *Analyzer) EffectiveSeverity() string {
	if a.Severity == "" {
		return "error"
	}
	return a.Severity
}

// A Pass provides one analyzer run with a single type-checked package and
// a sink for diagnostics.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees (library files
	// only; _test.go files are not analyzed).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// PkgPath is the package's import path.
	PkgPath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos under the pass's rule name.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a rule violation at a source position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule is the analyzer name that produced it.
	Rule string
	// Message describes the violation and the sanctioned alternative.
	Message string
	// Suppressed reports whether an //anchorlint:ignore directive (or a
	// baseline entry) covers the finding; suppressed findings do not
	// fail the build.
	Suppressed bool
	// SuppressReason is the directive's documented justification.
	SuppressReason string
	// Baselined reports that the suppression came from a baseline file
	// rather than an in-source directive.
	Baselined bool
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Rule)
}

// A ModulePass provides one module-level analyzer run with every loaded
// package, the call graph over them, and a sink for diagnostics.
type ModulePass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Pkgs are all loaded packages, in load order.
	Pkgs []*Package
	// Graph is the static call graph over Pkgs (see BuildCallGraph).
	Graph *CallGraph
	// Facts caches per-package analyzer facts across runs, keyed by
	// export-data identity (see FactStore).
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos (resolved through pkg's FileSet)
// under the pass's rule name.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full anchorlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SeedRand, MapOrder, FPReduce, SharedWrite,
		DetTaint, CtxFlow, FaultSite, SyncGuard,
	}
}

// ByName resolves an analyzer by rule name (nil when unknown).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// SeverityOf resolves a diagnostic rule name to its severity; the
// pseudo-rule "anchorlint" (directive hygiene) is always an error.
func SeverityOf(rule string) string {
	if a := ByName(rule); a != nil {
		return a.EffectiveSeverity()
	}
	return "error"
}

// ignoreDirective is one parsed //anchorlint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rules  []string
	reason string
	used   bool
	valid  bool
	err    string
}

const ignorePrefix = "anchorlint:ignore"

// parseDirectives extracts every //anchorlint:ignore directive from a
// file's comments.
func parseDirectives(fset *token.FileSet, file *ast.File) []*ignoreDirective {
	var ds []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
			if len(fields) < 2 {
				d.err = "anchorlint:ignore needs a rule name and a reason: //anchorlint:ignore <rule> <reason>"
			} else {
				d.rules = strings.Split(fields[0], ",")
				d.reason = strings.Join(fields[1:], " ")
				d.valid = true
				for _, r := range d.rules {
					if !knownRule(r) {
						d.valid = false
						d.err = fmt.Sprintf("anchorlint:ignore names unknown rule %q", r)
					}
				}
			}
			ds = append(ds, d)
		}
	}
	return ds
}

// allRunning reports whether every named rule is among those being run.
func allRunning(rules []string, running map[string]bool) bool {
	for _, r := range rules {
		if !running[r] {
			return false
		}
	}
	return true
}

// knownRule reports whether name identifies an analyzer in the suite.
func knownRule(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// covers reports whether the directive suppresses rule at line: directives
// apply to their own line and to the line directly below them.
func (d *ignoreDirective) covers(rule string, line int) bool {
	if !d.valid || (d.pos.Line != line && d.pos.Line != line-1) {
		return false
	}
	for _, r := range d.rules {
		if r == rule {
			return true
		}
	}
	return false
}

// RunAnalyzers executes the analyzers over every package, applies
// //anchorlint:ignore suppressions, and returns all diagnostics sorted by
// position. Suppressed findings are returned with Suppressed set so
// drivers can surface them on request; invalid or unused directives are
// reported as findings of the pseudo-rule "anchorlint".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var all []Diagnostic
	// Module-level analyzers first: they share one call graph, built once.
	var graph *CallGraph
	facts := OpenFactStore(CacheDir)
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph, Facts: facts, diags: &all}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				diags:     &all,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	// Suppression directives come from every loaded file and apply by
	// filename, so module-level findings are suppressible exactly like
	// per-package ones.
	var directives []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f)...)
		}
	}
	for i := range all {
		d := &all[i]
		for _, dir := range directives {
			if dir.covers(d.Rule, d.Pos.Line) && dir.pos.Filename == d.Pos.Filename {
				d.Suppressed = true
				d.SuppressReason = dir.reason
				dir.used = true
				break
			}
		}
	}
	for _, dir := range directives {
		switch {
		case dir.err != "":
			all = append(all, Diagnostic{Pos: dir.pos, Rule: "anchorlint", Message: dir.err})
		case !dir.used && allRunning(dir.rules, running):
			// Only call a directive stale when every rule it
			// names was actually run this invocation.
			all = append(all, Diagnostic{Pos: dir.pos, Rule: "anchorlint",
				Message: fmt.Sprintf("anchorlint:ignore suppresses nothing (rules %s)", strings.Join(dir.rules, ","))})
		}
	}
	// A nested loop can be visited from two enclosing contexts; keep one
	// copy of byte-identical findings.
	seen := make(map[Diagnostic]bool, len(all))
	uniq := all[:0]
	for _, d := range all {
		key := d
		key.Suppressed, key.SuppressReason = false, ""
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, d)
		}
	}
	all = uniq
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}
