package embtrain

import (
	"math"
	"math/rand"
	"testing"

	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
)

func testCorpus(t *testing.T, year corpus.Year) *corpus.Corpus {
	t.Helper()
	return corpus.Generate(corpus.TestConfig(), year)
}

// topicSeparation computes the average cosine similarity between words of
// the same topic minus the average between words of different topics,
// restricted to frequent words so rarely updated vectors don't dominate.
func topicSeparation(t *testing.T, e *embedding.Embedding, c *corpus.Corpus, cfg corpus.Config) float64 {
	t.Helper()
	top := c.TopWords(150)
	rng := rand.New(rand.NewSource(99))
	var same, diff []float64
	for trial := 0; trial < 4000; trial++ {
		a := top[rng.Intn(len(top))]
		b := top[rng.Intn(len(top))]
		if a == b {
			continue
		}
		sim := floats.CosineSim(e.Vector(a), e.Vector(b))
		if corpus.PrimaryTopic(cfg, a, c.Year) == corpus.PrimaryTopic(cfg, b, c.Year) {
			same = append(same, sim)
		} else {
			diff = append(diff, sim)
		}
	}
	if len(same) < 20 || len(diff) < 20 {
		t.Fatalf("not enough pairs: same=%d diff=%d", len(same), len(diff))
	}
	return floats.Mean(same) - floats.Mean(diff)
}

func checkLearnsTopics(t *testing.T, tr Trainer) {
	t.Helper()
	cfg := corpus.TestConfig()
	c := testCorpus(t, corpus.Wiki17)
	e := tr.Train(c, 16, 1)
	if e.Rows() != cfg.VocabSize || e.Dim() != 16 {
		t.Fatalf("shape %dx%d", e.Rows(), e.Dim())
	}
	sep := topicSeparation(t, e, c, cfg)
	if sep < 0.05 {
		t.Fatalf("%s: embeddings did not learn topic structure: separation=%.4f", tr.Name(), sep)
	}
	t.Logf("%s topic separation: %.4f", tr.Name(), sep)
}

func TestCBOWLearnsTopics(t *testing.T)     { checkLearnsTopics(t, NewCBOW()) }
func TestGloVeLearnsTopics(t *testing.T)    { checkLearnsTopics(t, NewGloVe()) }
func TestMCLearnsTopics(t *testing.T)       { checkLearnsTopics(t, NewMC()) }
func TestFastTextLearnsTopics(t *testing.T) { checkLearnsTopics(t, NewFastText()) }

func checkDeterministic(t *testing.T, tr Trainer) {
	t.Helper()
	c := testCorpus(t, corpus.Wiki17)
	a := tr.Train(c, 8, 7)
	b := tr.Train(c, 8, 7)
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatalf("%s: training not deterministic at %d", tr.Name(), i)
		}
	}
}

func TestCBOWDeterministic(t *testing.T)     { checkDeterministic(t, NewCBOW()) }
func TestGloVeDeterministic(t *testing.T)    { checkDeterministic(t, NewGloVe()) }
func TestMCDeterministic(t *testing.T)       { checkDeterministic(t, NewMC()) }
func TestFastTextDeterministic(t *testing.T) { checkDeterministic(t, NewFastText()) }

// checkWorkerInvariance is the acceptance property of the deterministic
// parallel engine: embeddings must be bitwise identical no matter how many
// workers execute the fixed shards.
func checkWorkerInvariance(t *testing.T, mk func(workers int) Trainer) {
	t.Helper()
	c := testCorpus(t, corpus.Wiki17)
	a := mk(1).Train(c, 8, 7)
	b := mk(4).Train(c, 8, 7)
	if a.Meta.Algorithm != b.Meta.Algorithm {
		t.Fatal("trainer factory returned mismatched algorithms")
	}
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatalf("%s: Workers=1 and Workers=4 diverge at %d: %v vs %v",
				a.Meta.Algorithm, i, a.Vectors.Data[i], b.Vectors.Data[i])
		}
	}
}

func TestCBOWWorkerInvariant(t *testing.T) {
	checkWorkerInvariance(t, func(w int) Trainer { tr := NewCBOW(); tr.Workers = w; return tr })
}

func TestGloVeWorkerInvariant(t *testing.T) {
	checkWorkerInvariance(t, func(w int) Trainer { tr := NewGloVe(); tr.Workers = w; return tr })
}

func TestMCWorkerInvariant(t *testing.T) {
	checkWorkerInvariance(t, func(w int) Trainer { tr := NewMC(); tr.Workers = w; return tr })
}

func TestFastTextWorkerInvariant(t *testing.T) {
	checkWorkerInvariance(t, func(w int) Trainer { tr := NewFastText(); tr.Workers = w; return tr })
}

func TestByNameWorkersSetsKnob(t *testing.T) {
	tr, ok := ByNameWorkers("cbow", 3)
	if !ok {
		t.Fatal("cbow not found")
	}
	if got := tr.(*CBOW).Workers; got != 3 {
		t.Fatalf("Workers = %d, want 3", got)
	}
}

func TestSeedChangesEmbedding(t *testing.T) {
	c := testCorpus(t, corpus.Wiki17)
	tr := NewCBOW()
	a := tr.Train(c, 8, 1)
	b := tr.Train(c, 8, 2)
	same := true
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical embeddings")
	}
}

func TestMetaRecorded(t *testing.T) {
	c := testCorpus(t, corpus.Wiki18)
	for _, name := range []string{"cbow", "glove", "mc", "fasttext"} {
		tr, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		e := tr.Train(c, 8, 3)
		m := e.Meta
		if m.Algorithm != name || m.Corpus != "wiki18" || m.Dim != 8 || m.Seed != 3 || m.Precision != 32 {
			t.Fatalf("meta wrong: %+v", m)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("elmo"); ok {
		t.Fatal("unknown algorithm should not resolve")
	}
}

func TestUnigramTableFavorsFrequent(t *testing.T) {
	counts := []int64{1000, 10, 0, 10}
	tab := newUnigramTable(counts, 0.75)
	rng := rand.New(rand.NewSource(1))
	draws := make([]int, len(counts))
	for i := 0; i < 20000; i++ {
		draws[tab.sample(rng)]++
	}
	if draws[0] <= draws[1] || draws[0] <= draws[3] {
		t.Fatalf("frequent word undersampled: %v", draws)
	}
	if draws[2] > 0 {
		t.Fatalf("zero-count word sampled %d times", draws[2])
	}
}

// TestUnigramTableCoversTailWords is the tail-handling regression test:
// every word with a nonzero count must be reachable as a negative sample.
// Under extreme skew the classic word2vec cumulative fill advances at most
// one word per table slot and runs out of slots before the tail, dropping
// those words from the table entirely.
func TestUnigramTableCoversTailWords(t *testing.T) {
	counts := make([]int64, 50)
	counts[0] = 1 << 40
	for i := 1; i < len(counts); i++ {
		counts[i] = 1
	}
	tab := newUnigramTable(counts, 0.75)
	present := make(map[int32]bool)
	for _, w := range tab.table {
		present[w] = true
	}
	for w, c := range counts {
		if c > 0 && !present[int32(w)] {
			t.Errorf("word %d (count %d) unreachable in negative-sampling table", w, c)
		}
	}
	if len(tab.table) > unigramTableSize+len(counts) {
		t.Fatalf("table overgrew: %d slots for %d words", len(tab.table), len(counts))
	}
}

// TestUnigramTableProportions checks the fill still tracks count^power for
// non-degenerate distributions: slot shares must be close to the exact
// normalized weights.
func TestUnigramTableProportions(t *testing.T) {
	counts := []int64{1000, 300, 100, 30, 10}
	power := 0.75
	tab := newUnigramTable(counts, power)
	var z float64
	for _, c := range counts {
		z += math.Pow(float64(c), power)
	}
	slots := make([]int, len(counts))
	for _, w := range tab.table {
		slots[w]++
	}
	for w, c := range counts {
		want := math.Pow(float64(c), power) / z
		got := float64(slots[w]) / float64(len(tab.table))
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("word %d slot share %.5f, want %.5f", w, got, want)
		}
	}
}

func TestUnigramTableAllZero(t *testing.T) {
	tab := newUnigramTable([]int64{0, 0}, 0.75)
	rng := rand.New(rand.NewSource(1))
	if got := tab.sample(rng); got != 0 {
		t.Fatalf("degenerate table sample = %d", got)
	}
}

func TestSigmoid(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Fatal("sigmoid clamping wrong")
	}
}

func TestSubwordsSharedAcrossFamily(t *testing.T) {
	ft := NewFastText()
	a := ft.Subwords("kubona")
	b := ft.Subwords("kubonas")
	inA := map[int32]bool{}
	for _, g := range a {
		inA[g] = true
	}
	shared := 0
	for _, g := range b {
		if inA[g] {
			shared++
		}
	}
	if shared < 3 {
		t.Fatalf("morphological relatives share too few subwords: %d", shared)
	}
}

// TestWikiPairSimilarButDifferent is the core property the whole paper
// rests on: embeddings from the two snapshots are close after alignment
// but not identical.
func TestWikiPairSimilarButDifferent(t *testing.T) {
	c17 := testCorpus(t, corpus.Wiki17)
	c18 := testCorpus(t, corpus.Wiki18)
	tr := NewMC()
	e17 := tr.Train(c17, 16, 1)
	e18 := tr.Train(c18, 16, 1)
	e18.AlignTo(e17)

	top := c17.TopWords(100)
	var sims []float64
	for _, w := range top {
		sims = append(sims, floats.CosineSim(e17.Vector(w), e18.Vector(w)))
	}
	mean := floats.Mean(sims)
	if mean < 0.5 {
		t.Fatalf("pair too different after alignment: mean cos %.3f", mean)
	}
	if mean > 0.9999 {
		t.Fatalf("pair suspiciously identical: mean cos %.5f", mean)
	}
	t.Logf("mean aligned cosine similarity: %.4f", mean)
}
