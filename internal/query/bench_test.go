package query

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"anchor/internal/compress"
	"anchor/internal/embedding"
	"anchor/internal/matrix"
	"anchor/internal/store"
)

// BenchmarkNeighborsServe measures the read path at the acceptance scale
// (|V| = 10k, d = 100):
//
//   - sequential-64 vs batched-64: 64 concurrent singleton /v1/neighbors-
//     style queries per round, with micro-batching off vs on. The batched
//     path coalesces the burst into shared MulABT blocks that stream the
//     10k x 100 snapshot matrix once per batch instead of once per query.
//   - coldload-gob vs coldload-binary: decoding one artifact from disk
//     through the gob tier vs the zero-copy binary format.
func BenchmarkNeighborsServe(b *testing.B) {
	const n, d, clients = 10_000, 100, 64
	rng := rand.New(rand.NewSource(3))
	e := embedding.New(n, d)
	e.Vectors = matrix.NewDenseRand(n, d, 1, rng)
	e.Words = make([]string, n)
	for i := range e.Words {
		e.Words[i] = fmt.Sprintf("w%05d", i)
	}
	e.Meta = embedding.Meta{Algorithm: "bench", Corpus: "wiki17", Dim: d, Seed: 1, Precision: 32}
	src := func(ctx context.Context, ref Ref) (*embedding.Embedding, error) { return e, nil }
	ref := Ref{Algo: "bench", Year: 2017, Dim: d, Seed: 1}
	words := make([]string, clients)
	for i := range words {
		words[i] = e.Words[(i*151)%n]
	}

	serve := func(b *testing.B, eng *Engine) {
		b.Helper()
		// Warm the snapshot so rounds measure query work, not the load.
		if _, err := eng.Neighbors(context.Background(), ref, words[0], 5); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					if _, err := eng.Neighbors(context.Background(), ref, words[c], 5); err != nil {
						b.Error(err)
					}
				}(c)
			}
			wg.Wait()
		}
		b.StopTimer()
		qps := float64(clients) * float64(b.N) / b.Elapsed().Seconds()
		b.ReportMetric(qps, "queries/s")
	}

	b.Run("sequential-64", func(b *testing.B) {
		serve(b, New(src, WithWindow(0)))
	})
	b.Run("batched-64", func(b *testing.B) {
		serve(b, New(src, WithWindow(time.Millisecond), WithMaxBatch(clients)))
	})

	dir := b.TempDir()
	gobPath := filepath.Join(dir, "emb.gob")
	binPath := filepath.Join(dir, "emb.bin")
	if err := e.SaveFile(gobPath); err != nil {
		b.Fatal(err)
	}
	if err := store.SaveBinaryFile(binPath, e, store.Float64); err != nil {
		b.Fatal(err)
	}
	b.Run("coldload-gob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := embedding.LoadFile(gobPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coldload-binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.LoadBinaryFile(binPath); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coldload-mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, close, err := store.MapBinaryFile(binPath)
			if err != nil {
				b.Fatal(err)
			}
			_ = m.Vector(0)[0] // touch one page
			if err := close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNeighborsPrecision measures the precision-parametrized read
// path at the acceptance scale (|V| = 10k, d = 100): the same batched
// 64-client workload served from float64 rows, float32 rows (b=16), and
// packed codes through the LUT kernel (b=8, b=1). Each sub-benchmark
// reports queries/s and bytes/query — the resident snapshot bytes every
// query streams — so the quantized rows' memory win is machine-readable
// next to the throughput numbers.
func BenchmarkNeighborsPrecision(b *testing.B) {
	const n, d, clients = 10_000, 100, 64
	rng := rand.New(rand.NewSource(3))
	e := embedding.New(n, d)
	e.Vectors = matrix.NewDenseRand(n, d, 1, rng)
	e.Words = make([]string, n)
	for i := range e.Words {
		e.Words[i] = fmt.Sprintf("w%05d", i)
	}
	e.Meta = embedding.Meta{Algorithm: "bench", Corpus: "wiki17", Dim: d, Seed: 1, Precision: 32}
	src := func(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
		if ref.Bits == 0 || ref.Bits >= 32 {
			return e, nil
		}
		clip := compress.OptimalClip(e.Vectors.Data, ref.Bits)
		return compress.Quantize(e, ref.Bits, clip), nil
	}
	words := make([]string, clients)
	for i := range words {
		words[i] = e.Words[(i*151)%n]
	}

	for _, bits := range []int{32, 16, 8, 1} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			ref := Ref{Algo: "bench", Year: 2017, Dim: d, Seed: 1}
			if bits < 32 {
				ref.Bits = bits
			}
			eng := New(src, WithWindow(time.Millisecond), WithMaxBatch(clients))
			if _, err := eng.Neighbors(context.Background(), ref, words[0], 5); err != nil {
				b.Fatal(err)
			}
			var snapBytes int64
			for _, in := range eng.Resident() {
				snapBytes = in.Bytes
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						if _, err := eng.Neighbors(context.Background(), ref, words[c], 5); err != nil {
							b.Error(err)
						}
					}(c)
				}
				wg.Wait()
			}
			b.StopTimer()
			qps := float64(clients) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
			b.ReportMetric(float64(snapBytes), "bytes/query")
		})
	}
}
