package lint_test

import (
	"strings"
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

func TestFaultSite(t *testing.T) {
	old := lint.FaultPathPackages
	lint.FaultPathPackages = append(old[:len(old):len(old)], "anchorlint.test/faultsite")
	defer func() { lint.FaultPathPackages = old }()
	linttest.Run(t, lint.FaultSite, "testdata/src/faultsite", "anchorlint.test/faultsite")
}

// TestFaultSiteOffPath checks that I/O boundaries outside
// FaultPathPackages are not the rule's business — but site registration
// hygiene still is, wherever the Register call lives.
func TestFaultSiteOffPath(t *testing.T) {
	diags := linttest.Collect(t, lint.FaultSite, "testdata/src/faultsite", "anchorlint.example/faultsite")
	var kept []string
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		// With the I/O-boundary check out of scope, the fixture's ignore
		// directive no longer suppresses anything, so its hygiene finding
		// fires too — which is itself the behavior under test.
		if strings.Contains(d.Message, "suppresses nothing (rules faultsite)") {
			continue
		}
		if !strings.Contains(d.Message, `fault site "fixture/stale"`) {
			t.Errorf("unexpected off-path diagnostic: %s", d)
			continue
		}
		kept = append(kept, d.Message)
	}
	if len(kept) != 1 {
		t.Errorf("registration hygiene should survive off-path: got %d findings, expected 1", len(kept))
	}
}
