package core

import (
	"anchor/internal/embedding"
	"anchor/internal/registry"
)

// MeasureConfig carries everything a measure factory may need. Zero
// values select the paper's defaults, so callers only set what they care
// about.
type MeasureConfig struct {
	// Anchors and AnchorsTilde are the eigenspace-instability anchor
	// embeddings (the highest-memory pair of the sweep). Measures that do
	// not use anchors ignore them.
	Anchors, AnchorsTilde *embedding.Embedding
	// Alpha is the EIS eigenvalue exponent (0 selects the paper's 3).
	Alpha float64
	// K is the k-NN neighborhood size (0 selects the paper's 5).
	K int
	// Queries is the k-NN query-word count (0 selects the paper's 1000).
	Queries int
	// KNNSeed seeds the k-NN query sample (0 selects the fixed seed 7
	// used throughout the experiments).
	KNNSeed int64
	// Workers bounds the goroutines used (<= 0 selects all CPUs). Every
	// registered measure must return identical values for every count.
	Workers int
	// KNNANNCutoff routes the k-NN measure's neighbor scans through the
	// IVF index at vocabularies of at least this many rows (0 selects
	// DefaultKNNANNCutoff; < 0 forces the exact scan at every size).
	KNNANNCutoff int
	// KNNNProbe is the cells-scanned-per-query knob for the routed scans
	// (<= 0 selects ann.DefaultNProbe).
	KNNNProbe int
}

func (c MeasureConfig) alpha() float64 {
	if c.Alpha == 0 {
		return 3
	}
	return c.Alpha
}

func (c MeasureConfig) k() int {
	if c.K == 0 {
		return 5
	}
	return c.K
}

func (c MeasureConfig) queries() int {
	if c.Queries == 0 {
		return 1000
	}
	return c.Queries
}

func (c MeasureConfig) knnSeed() int64 {
	if c.KNNSeed == 0 {
		return 7
	}
	return c.KNNSeed
}

func (c MeasureConfig) knnANNCutoff() int {
	if c.KNNANNCutoff == 0 {
		return DefaultKNNANNCutoff
	}
	if c.KNNANNCutoff < 0 {
		return 0
	}
	return c.KNNANNCutoff
}

// MeasureFactory builds a configured measure instance.
type MeasureFactory func(cfg MeasureConfig) Measure

// measures is the pluggable measure registry. Registration order is the
// paper's reporting order (Table 1 rows), so it doubles as the canonical
// measure ordering.
var measures = registry.New[MeasureFactory]("measure")

// RegisterMeasure makes a measure factory resolvable by name. The built
// measure's Name() must equal the registered name. Panics on duplicates;
// call from init.
func RegisterMeasure(name string, f MeasureFactory) { measures.Register(name, f) }

// MeasureNames returns the registered measure names in registration
// (= reporting) order.
func MeasureNames() []string { return measures.Names() }

// CheckMeasure returns nil when the measure is registered, else a
// *registry.UnknownError naming the known measures.
func CheckMeasure(name string) error { return measures.Check(name) }

// NewMeasure builds the named measure; unknown names return a
// *registry.UnknownError.
func NewMeasure(name string, cfg MeasureConfig) (Measure, error) {
	f, err := measures.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(cfg), nil
}

// NewMeasures builds every registered measure in reporting order with one
// shared configuration.
func NewMeasures(cfg MeasureConfig) []Measure {
	names := MeasureNames()
	out := make([]Measure, len(names))
	for i, name := range names {
		f, _ := measures.Get(name)
		out[i] = f(cfg)
	}
	return out
}

func init() {
	RegisterMeasure("eigenspace-instability", func(cfg MeasureConfig) Measure {
		return &EigenspaceInstability{
			E: cfg.Anchors, ETilde: cfg.AnchorsTilde,
			Alpha: cfg.alpha(), Workers: cfg.Workers,
		}
	})
	RegisterMeasure("1-knn", func(cfg MeasureConfig) Measure {
		return &KNN{
			K: cfg.k(), Queries: cfg.queries(), Seed: cfg.knnSeed(), Workers: cfg.Workers,
			ANNCutoff: cfg.knnANNCutoff(), NProbe: cfg.KNNNProbe,
		}
	})
	RegisterMeasure("semantic-displacement", func(cfg MeasureConfig) Measure {
		return SemanticDisplacement{Workers: cfg.Workers}
	})
	RegisterMeasure("pip-loss", func(cfg MeasureConfig) Measure {
		return PIPLoss{Workers: cfg.Workers}
	})
	RegisterMeasure("1-eigenspace-overlap", func(cfg MeasureConfig) Measure {
		return EigenspaceOverlap{Workers: cfg.Workers}
	})
}
