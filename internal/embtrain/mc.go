package embtrain

import (
	"math"

	"anchor/internal/cooc"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/parallel"
)

// clipResidual bounds the per-entry error used in the SGD step.
const clipResidual = 5.0

// MC trains embeddings by online matrix completion of the PPMI matrix
// (following Jin et al. 2016, as used in the paper): stochastic gradient
// descent on the squared error of sampled observed entries,
// min_X Σ_{(i,j)∈Θ} (X_i·X_j − A_ij)², with a single symmetric factor.
// Observed entries are sharded across cores by the deterministic parallel
// engine with per-row averaged delta merges; after every merge the rows
// are re-projected so the combined deltas cannot leave the norm ball that
// keeps plain SGD stable.
type MC struct {
	// Window is the co-occurrence half-window used to build the PPMI matrix.
	Window int
	// Epochs is the number of SGD passes over the observed entries.
	Epochs int
	// LR is the initial learning rate (the paper uses 0.2).
	LR float64
	// DecayEpochs is the epoch after which the learning rate decays
	// geometrically (the paper's "LR decay epochs").
	DecayEpochs int
	// DecayRate is the per-epoch multiplicative decay after DecayEpochs.
	DecayRate float64
	// Workers is the goroutine budget (<= 0 selects all CPUs). Embeddings
	// are bitwise identical for every value.
	Workers int
	// Shards is the fixed data-parallel shard count (<= 0 selects
	// parallel.DefaultShards). Unlike Workers, changing Shards changes the
	// (still deterministic) result.
	Shards int
	// Rounds is the number of synchronization rounds per epoch (<= 0
	// selects the package default). Like Shards it shapes the result
	// deterministically; it never depends on worker count.
	Rounds int
}

// NewMC returns an MC trainer with the paper's hyperparameters scaled to
// the synthetic corpus.
func NewMC() *MC {
	return &MC{Window: 5, Epochs: 30, LR: 0.2, DecayEpochs: 20, DecayRate: 0.8}
}

// Name implements Trainer.
func (t *MC) Name() string { return "mc" }

// Train implements Trainer.
func (t *MC) Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding {
	ppmi := cooc.PPMI(cooc.CountWorkers(c, t.Window, cooc.Uniform, t.Workers))
	n := c.Vocab.Size()
	rng := newTrainRNG(seed)

	e := embedding.New(n, dim)
	e.Words = c.Vocab.Words
	e.Meta = embedding.Meta{
		Algorithm: t.Name(), Corpus: corpusName(c), Dim: dim, Seed: seed, Precision: 32,
	}
	// Dimension-normalized initialization: keep the initial vector norms
	// (and therefore the SGD step size in X_i·X_j space) independent of
	// the dimension, so the same learning rate is stable across the whole
	// dimension ladder.
	initStd := 0.3 / math.Sqrt(float64(dim))
	for i := range e.Vectors.Data {
		e.Vectors.Data[i] = rng.NormFloat64() * initStd
	}

	// Row-norm projection radius: a valid factorization satisfies
	// X_i·X_j <= |X_i||X_j|, so rows never need norms beyond
	// sqrt(max PPMI) (with slack). Jin et al.'s online algorithm likewise
	// projects iterates; this is what keeps plain SGD stable at every
	// dimension.
	var maxVal float64
	for _, en := range ppmi.Entries {
		if en.Val > maxVal {
			maxVal = en.Val
		}
	}
	maxNorm := 1.5 * math.Sqrt(maxVal+1)

	shards := parallel.Shards(t.Shards)
	rounds := syncRounds(t.Rounds)
	local := make([]*parallel.Replica, shards)
	for s := range local {
		local[s] = parallel.NewReplica(e.Vectors.Data, dim)
	}

	lr := t.LR
	for epoch := 0; epoch < t.Epochs; epoch++ {
		if epoch >= t.DecayEpochs {
			lr *= t.DecayRate
		}
		order := shuffledOrder(ppmi.NNZ(), rng)
		for _, rr := range parallel.Ranges(len(order), rounds) {
			sub := order[rr.Lo:rr.Hi]
			ranges := parallel.Ranges(len(sub), shards)
			parallel.Run(t.Workers, shards, func(s int) {
				vec := local[s]
				vec.Begin()
				for _, ei := range sub[ranges[s].Lo:ranges[s].Hi] {
					entry := ppmi.Entries[ei]
					xi := vec.Row(int(entry.Row))
					xj := vec.Row(int(entry.Col))
					diff := floats.Dot(xi, xj) - entry.Val
					// Residual clipping keeps a rare large error from triggering
					// the divergence of the unregularized factorization.
					if diff > clipResidual {
						diff = clipResidual
					} else if diff < -clipResidual {
						diff = -clipResidual
					}
					g := lr * diff
					if entry.Row == entry.Col {
						floats.Axpy(-2*g, xi, xi)
						project(xi, maxNorm)
						continue
					}
					// Simultaneous update of both factors, then projection.
					for k := 0; k < dim; k++ {
						xik, xjk := xi[k], xj[k]
						xi[k] -= g * xjk
						xj[k] -= g * xik
					}
					project(xi, maxNorm)
					project(xj, maxNorm)
				}
				vec.Seal()
			}, nil)
			// Merged shard deltas can push a row past the ball each shard
			// respected locally; re-project the touched rows in fixed row
			// order (untouched rows stayed inside the ball by induction).
			for i, m := range parallel.ReduceAveraged(local) {
				if m > 0 {
					project(e.Vectors.Row(i), maxNorm)
				}
			}
		}
	}
	return e
}

// project rescales x onto the ball of the given radius if it lies outside.
func project(x []float64, radius float64) {
	n := floats.Norm(x)
	if n > radius {
		floats.Scale(radius/n, x)
	}
}
