package experiments

import (
	"anchor/internal/compress"
	"anchor/internal/core"
	"anchor/internal/embtrain"
	"anchor/internal/tasks/ner"
	"anchor/internal/tasks/sentiment"
)

// Fig12 reproduces Appendix Figure 12: the stability-memory tradeoff for
// fastText subword embeddings on SST-2 and CoNLL-2003.
func Fig12(r *Runner) []*Table {
	c17, c18 := r.Corpora()
	sst := r.SentimentData("sst2")
	nerDS := r.NERData()
	tr := embtrain.NewFastText()

	t := &Table{
		ID: "fig12", Title: "fastText subword embeddings: instability vs memory",
		Columns: []string{"task", "dim", "prec", "memory(bits/word)", "%disagreement"},
	}
	seed := r.Cfg.Seeds[0]
	for _, dim := range r.Cfg.NERDims {
		e17 := tr.Train(c17, dim, seed)
		e18 := tr.Train(c18, dim, seed)
		e18.AlignTo(e17)
		e18.Meta.Corpus = "wiki18a"
		for _, prec := range r.Cfg.NERPrecisions {
			q17, q18 := compress.QuantizePair(e17, e18, prec)
			scfg := sentiment.DefaultLinearBOWConfig(seed)
			sm17 := sentiment.TrainLinearBOW(q17, sst, scfg)
			sm18 := sentiment.TrainLinearBOW(q18, sst, scfg)
			t.AddRow("sst2", dim, prec, dim*prec,
				core.PredictionDisagreementPct(sm17.Predict(sst.Test), sm18.Predict(sst.Test)))

			ncfg := ner.DefaultConfig(seed)
			nm17 := ner.Train(q17, nerDS, ncfg)
			nm18 := ner.Train(q18, nerDS, ncfg)
			t.AddRow("conll2003", dim, prec, dim*prec,
				core.PredictionDisagreementPct(nm17.EntityPredictions(nerDS.Test), nm18.EntityPredictions(nerDS.Test)))
		}
	}
	return []*Table{t}
}

// Fig13 reproduces Appendix Figure 13: the tradeoff under more complex
// downstream models — a CNN for SST-2 and a BiLSTM-CRF for CoNLL-2003.
func Fig13(r *Runner) []*Table {
	sst := r.SentimentData("sst2")
	nerDS := r.NERData()
	seed := r.Cfg.Seeds[0]

	t := &Table{
		ID: "fig13", Title: "Complex downstream models: instability vs memory",
		Columns: []string{"model", "algo", "dim", "prec", "memory(bits/word)", "%disagreement"},
	}
	algo := r.Cfg.Algorithms[0]
	// The paper likewise trains this figure on a representative subset of
	// the grid (Appendix E.2: dims {25,100,800}, precisions {1,4,32});
	// the CNN dominates the cost, so the subset here is the two smaller
	// NER dimensions and the extreme precisions.
	dims := r.Cfg.NERDims
	if len(dims) > 2 {
		dims = dims[:2]
	}
	precs := r.Cfg.NERPrecisions
	if len(precs) > 2 {
		precs = []int{precs[0], precs[len(precs)-1]}
	}
	for _, dim := range dims {
		for _, prec := range precs {
			q17, q18 := r.QuantizedPair(algo, dim, prec, seed)

			ccfg := sentiment.DefaultCNNConfig(seed)
			cm17 := sentiment.TrainCNN(q17, sst, ccfg)
			cm18 := sentiment.TrainCNN(q18, sst, ccfg)
			t.AddRow("cnn-sst2", algo, dim, prec, dim*prec,
				core.PredictionDisagreementPct(cm17.Predict(sst.Test), cm18.Predict(sst.Test)))

			ncfg := ner.DefaultConfig(seed)
			ncfg.UseCRF = true
			nm17 := ner.Train(q17, nerDS, ncfg)
			nm18 := ner.Train(q18, nerDS, ncfg)
			t.AddRow("bilstm-crf-conll", algo, dim, prec, dim*prec,
				core.PredictionDisagreementPct(nm17.EntityPredictions(nerDS.Test), nm18.EntityPredictions(nerDS.Test)))
		}
	}
	return []*Table{t}
}

// Fig14 reproduces Appendix Figure 14: (a) instability when downstream
// model seeds are NOT matched between the two models, and (b) instability
// when the embeddings are fine-tuned during downstream training.
func Fig14(r *Runner) []*Table {
	sst := r.SentimentData("sst2")
	seed := r.Cfg.Seeds[0]
	algo := r.Cfg.Algorithms[0]

	t := &Table{
		ID: "fig14", Title: "Relaxed seeds (a) and fine-tuned embeddings (b), SST-2",
		Columns: []string{"setting", "algo", "dim", "prec", "%disagreement"},
	}
	for _, dim := range r.Cfg.NERDims {
		for _, prec := range r.Cfg.NERPrecisions {
			q17, q18 := r.QuantizedPair(algo, dim, prec, seed)

			// (a) mismatched downstream seeds.
			m17 := sentiment.TrainLinearBOW(q17, sst, sentiment.DefaultLinearBOWConfig(seed))
			m18 := sentiment.TrainLinearBOW(q18, sst, sentiment.DefaultLinearBOWConfig(seed+100))
			t.AddRow("relaxed-seeds", algo, dim, prec,
				core.PredictionDisagreementPct(m17.Predict(sst.Test), m18.Predict(sst.Test)))

			// (b) fine-tuned embeddings (full precision during training,
			// memory measured before training, as in the paper).
			cfg := sentiment.DefaultLinearBOWConfig(seed)
			cfg.Epochs = 15
			f17 := sentiment.TrainLinearBOWFineTuned(q17, sst, cfg)
			f18 := sentiment.TrainLinearBOWFineTuned(q18, sst, cfg)
			t.AddRow("fine-tuned", algo, dim, prec,
				core.PredictionDisagreementPct(f17.Predict(sst.Test), f18.Predict(sst.Test)))
		}
	}
	return []*Table{t}
}

// Fig15 reproduces Appendix Figure 15: the downstream learning rate's
// effect on instability at two dimensions.
func Fig15(r *Runner) []*Table {
	sst := r.SentimentData("sst2")
	seed := r.Cfg.Seeds[0]
	algo := r.Cfg.Algorithms[0]
	dims := []int{r.Cfg.midDim(), r.Cfg.maxDim()}

	t := &Table{
		ID: "fig15", Title: "Downstream learning rate vs instability (SST-2, full precision)",
		Columns: []string{"algo", "dim", "lr", "%disagreement", "wiki17 accuracy"},
	}
	for _, dim := range dims {
		e17, e18 := r.Pair(algo, dim, seed)
		for _, lr := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
			cfg := sentiment.DefaultLinearBOWConfig(seed)
			cfg.LR = lr
			m17 := sentiment.TrainLinearBOW(e17, sst, cfg)
			m18 := sentiment.TrainLinearBOW(e18, sst, cfg)
			t.AddRow(algo, dim, lr,
				core.PredictionDisagreementPct(m17.Predict(sst.Test), m18.Predict(sst.Test)),
				m17.Accuracy(sst.Test))
		}
	}
	return []*Table{t}
}

// Table13 reproduces Appendix Table 13: the instability contributed by
// each randomness source — downstream model initialization seed, sampling
// order seed, and the embedding training data — with everything else
// fixed.
func Table13(r *Runner) []*Table {
	seed := r.Cfg.Seeds[0]
	dim := r.Cfg.maxDim()
	t := &Table{
		ID: "table13", Title: "Instability by randomness source (full-precision, largest dim)",
		Columns: []string{"source", "task", "algo", "%disagreement"},
	}
	for _, algo := range r.Cfg.Algorithms {
		e17, e18 := r.Pair(algo, dim, seed)
		for _, task := range r.Cfg.SentimentTasks {
			ds := r.SentimentData(task)

			// Model initialization seed: same embedding, same order, new init.
			base := sentiment.DefaultLinearBOWConfig(seed)
			base.SampleSeed = 12345
			alt := base
			alt.Seed = seed + 500
			a := sentiment.TrainLinearBOW(e17, ds, base)
			b := sentiment.TrainLinearBOW(e17, ds, alt)
			t.AddRow("model-init-seed", task, algo,
				core.PredictionDisagreementPct(a.Predict(ds.Test), b.Predict(ds.Test)))

			// Sampling order seed: same embedding, same init, new order.
			orderAlt := base
			orderAlt.SampleSeed = 54321
			c := sentiment.TrainLinearBOW(e17, ds, orderAlt)
			t.AddRow("sampling-order-seed", task, algo,
				core.PredictionDisagreementPct(a.Predict(ds.Test), c.Predict(ds.Test)))

			// Embedding training data: Wiki'17 vs Wiki'18.
			d := sentiment.TrainLinearBOW(e18, ds, base)
			t.AddRow("embedding-data", task, algo,
				core.PredictionDisagreementPct(a.Predict(ds.Test), d.Predict(ds.Test)))
		}
	}
	return []*Table{t}
}

// Prop1 reports the Proposition 1 verification: the eigenspace
// instability measure against the Monte-Carlo estimate of the expected
// linear regression disagreement under the anchor covariance.
func Prop1(r *Runner) []*Table {
	algo := r.Cfg.Algorithms[0]
	seed := r.Cfg.Seeds[0]
	ids := r.TopWordIDs()
	e, et := r.Anchors(algo, seed)

	t := &Table{
		ID: "prop1", Title: "Proposition 1: closed form vs Monte-Carlo (linear regression)",
		Columns: []string{"dim pair", "alpha", "eigenspace instability", "monte-carlo"},
	}
	dims := r.Cfg.Dims
	x17, _ := r.Pair(algo, dims[0], seed)
	_, x18 := r.Pair(algo, dims[len(dims)-1], seed)
	x := x17.SubRows(ids)
	xt := x18.SubRows(ids)
	for _, alpha := range []float64{1, 3} {
		m := &core.EigenspaceInstability{E: e, ETilde: et, Alpha: alpha, Workers: r.Cfg.Workers}
		closed := m.Distance(x, xt)
		sqrtSigma := core.AnchorCovarianceSqrt(e, et, alpha)
		mc := core.ExpectedLinearDisagreement(x, xt, sqrtSigma, 500, 99)
		t.AddRow("min-dim vs max-dim", alpha, closed, mc)
	}
	return []*Table{t}
}
