package autodiff

import "anchor/internal/matrix"

// arena is the resettable allocator behind an arena-backed Tape. Nodes,
// Dense headers, float buffers (values, gradients, backward scratch), and
// int scratch all come from chunked slabs that Reset rewinds without
// freeing, so a tape that is reset between minibatches reaches a steady
// state where recording and differentiating a step performs no heap
// allocation beyond the per-op backward closures.
//
// The arena is a bump allocator: nothing is freed individually, and a
// buffer stays valid exactly until the next reset. That matches the tape
// lifecycle — forward values and gradients are only read between the ops
// that record them and the optimizer step that consumes them.
const (
	nodeChunkLen  = 256
	denseChunkLen = 256
	floatSlabLen  = 1 << 16 // 64k float64s = 512 KiB per slab
	intSlabLen    = 1 << 12
)

type arena struct {
	nodeChunks [][]Node
	nodeN      int

	denseChunks [][]matrix.Dense
	denseN      int

	slabs []([]float64)
	slab  int // index of the slab currently bump-allocated from
	off   int // offset into slabs[slab]

	intSlabs []([]int)
	intSlab  int
	intOff   int
}

// reset rewinds every allocation counter, keeping all capacity.
func (a *arena) reset() {
	a.nodeN, a.denseN = 0, 0
	a.slab, a.off = 0, 0
	a.intSlab, a.intOff = 0, 0
}

// node returns a zeroed Node with a stable address (chunks never move).
func (a *arena) node() *Node {
	chunk, i := a.nodeN/nodeChunkLen, a.nodeN%nodeChunkLen
	if chunk == len(a.nodeChunks) {
		a.nodeChunks = append(a.nodeChunks, make([]Node, nodeChunkLen))
	}
	a.nodeN++
	n := &a.nodeChunks[chunk][i]
	*n = Node{}
	return n
}

// dense returns a Dense header with a stable address; the caller attaches
// shape and a data buffer.
func (a *arena) dense() *matrix.Dense {
	chunk, i := a.denseN/denseChunkLen, a.denseN%denseChunkLen
	if chunk == len(a.denseChunks) {
		a.denseChunks = append(a.denseChunks, make([]matrix.Dense, denseChunkLen))
	}
	a.denseN++
	d := &a.denseChunks[chunk][i]
	*d = matrix.Dense{}
	return d
}

// floats bump-allocates n float64s. Contents are stale from earlier
// rounds; callers must fully overwrite or zero them.
func (a *arena) floats(n int) []float64 {
	for {
		if a.slab < len(a.slabs) && a.off+n <= len(a.slabs[a.slab]) {
			s := a.slabs[a.slab][a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		if a.slab < len(a.slabs)-1 {
			a.slab++
			a.off = 0
			continue
		}
		size := floatSlabLen
		if n > size {
			size = n
		}
		a.slabs = append(a.slabs, make([]float64, size))
		a.slab = len(a.slabs) - 1
		a.off = 0
	}
}

// ints bump-allocates n ints (same contract as floats).
func (a *arena) ints(n int) []int {
	for {
		if a.intSlab < len(a.intSlabs) && a.intOff+n <= len(a.intSlabs[a.intSlab]) {
			s := a.intSlabs[a.intSlab][a.intOff : a.intOff+n : a.intOff+n]
			a.intOff += n
			return s
		}
		if a.intSlab < len(a.intSlabs)-1 {
			a.intSlab++
			a.intOff = 0
			continue
		}
		size := intSlabLen
		if n > size {
			size = n
		}
		a.intSlabs = append(a.intSlabs, make([]int, size))
		a.intSlab = len(a.intSlabs) - 1
		a.intOff = 0
	}
}
