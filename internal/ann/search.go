package ann

import (
	"sort"

	"anchor/internal/floats"
)

// topK is a bounded min-heap over (similarity, id) pairs with the exact
// path's ranking rule: higher similarity wins, ties break toward the
// lower id (core.TopKSelector's order, duplicated here because core
// imports this package). (similarity, id) pairs are unique — ids are —
// so the rule is a strict total order and the selected set is
// independent of push order; only the rule decides membership.
type topK struct {
	k     int
	sims  []float64
	idxs  []int32
	order []int // scratch for the final rank sort, reused across queries
}

// worse reports whether entry a ranks strictly below entry b.
func (h *topK) worse(a, b int) bool {
	if h.sims[a] != h.sims[b] {
		return h.sims[a] < h.sims[b]
	}
	return h.idxs[a] > h.idxs[b]
}

func (h *topK) siftDown(i int) {
	n := len(h.sims)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.worse(l, min) {
			min = l
		}
		if r < n && h.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.sims[i], h.sims[min] = h.sims[min], h.sims[i]
		h.idxs[i], h.idxs[min] = h.idxs[min], h.idxs[i]
		i = min
	}
}

func (h *topK) reset(k int) {
	h.k = k
	h.sims = h.sims[:0]
	h.idxs = h.idxs[:0]
}

// push offers a candidate; the heap retains the k best-ranked seen.
func (h *topK) push(id int32, sim float64) {
	if len(h.sims) < h.k {
		h.sims = append(h.sims, sim)
		h.idxs = append(h.idxs, id)
		if len(h.sims) == h.k {
			for j := h.k/2 - 1; j >= 0; j-- {
				h.siftDown(j)
			}
		}
		return
	}
	// Replace the root when the candidate outranks it.
	if sim > h.sims[0] || (sim == h.sims[0] && id < h.idxs[0]) {
		h.sims[0] = sim
		h.idxs[0] = id
		h.siftDown(0)
	}
}

// drain writes the retained ids into out, best-ranked first, and returns
// the filled prefix.
func (h *topK) drain(out []int32) []int32 {
	out = out[:len(h.idxs)]
	h.order = h.order[:0]
	for i := range h.idxs {
		h.order = append(h.order, i)
	}
	sort.Slice(h.order, func(a, b int) bool { return h.worse(h.order[b], h.order[a]) })
	for i, o := range h.order {
		out[i] = h.idxs[o]
	}
	return out
}

// Searcher runs IVF queries against one Index, reusing its scratch
// across queries. A Searcher is not safe for concurrent use — hold one
// per goroutine (they share the immutable Index).
type Searcher struct {
	ix    *Index
	csims []float64 // per-centroid similarity scratch
	cells topK      // probe selection
	cands topK      // candidate selection
}

// NewSearcher returns a Searcher over ix.
func NewSearcher(ix *Index) *Searcher {
	return &Searcher{ix: ix, csims: make([]float64, ix.NList)}
}

// Search returns the ids of the k best-ranked rows among the cells whose
// centroids are most similar to q, ordered by similarity descending with
// id-ascending tie-breaks, written into out (which must have capacity k).
// q is the unit-normalized query vector and is used only to rank the
// centroids; each surviving candidate's similarity comes from sim, so
// the caller owns the similarity math (and with it the bitwise contract
// against its exact path). self >= 0 excludes that row id. nprobe <= 0
// selects DefaultNProbe; nprobe >= NList scans every row exactly once,
// reproducing the exact path's top-k bitwise.
func (s *Searcher) Search(q []float64, k, nprobe, self int, sim func(id int32) float64, out []int32) []int32 {
	ix := s.ix
	if k <= 0 || ix.Rows == 0 {
		return out[:0]
	}
	if nprobe <= 0 {
		nprobe = DefaultNProbe(ix.NList)
	}
	if nprobe > ix.NList {
		nprobe = ix.NList
	}

	// Rank the centroids. Scoring all of them with plain dots is O(nlist·d)
	// — the same cost as scanning one average cell.
	for c := 0; c < ix.NList; c++ {
		s.csims[c] = floats.Dot(q, ix.Centroids.Row(c))
	}
	s.cells.reset(nprobe)
	for c := 0; c < ix.NList; c++ {
		s.cells.push(int32(c), s.csims[c])
	}

	// Scan the probed cells' rows. The candidate heap's total order makes
	// the result independent of cell visit order; iterating the retained
	// heap storage directly skips the rank sort the probe set doesn't need.
	s.cands.reset(k)
	for _, c := range s.cells.idxs {
		for _, id := range ix.List(int(c)) {
			if int(id) == self {
				continue
			}
			s.cands.push(id, sim(id))
		}
	}
	return s.cands.drain(out)
}
