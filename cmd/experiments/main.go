// Command experiments reproduces the paper's tables and figures. It runs
// one or all registered artifacts against a shared cached runner, so the
// embedding grid is trained once per invocation.
//
// Usage:
//
//	experiments -list
//	experiments -id fig2 -config bench
//	experiments -all -config bench
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anchor"
)

func main() {
	id := flag.String("id", "", "artifact id to run (see -list)")
	all := flag.Bool("all", false, "run every registered artifact")
	list := flag.Bool("list", false, "list artifact ids")
	config := flag.String("config", "small", "config scale: small, bench, repro")
	workers := flag.Int("workers", 0, "training and measure goroutines (0 = all CPUs; result is identical for any value)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(anchor.ExperimentIDs(), "\n"))
		return
	}
	var cfg anchor.ExperimentConfig
	switch *config {
	case "small":
		cfg = anchor.SmallExperimentConfig()
	case "bench":
		cfg = anchor.BenchExperimentConfig()
	case "repro":
		cfg = anchor.ReproExperimentConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}
	cfg.Workers = *workers

	var err error
	switch {
	case *all:
		err = anchor.RunAllExperiments(cfg, nil, os.Stdout)
	case *id != "":
		err = anchor.RunExperiment(cfg, *id, os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "pass -id <artifact> or -all (use -list for ids)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
