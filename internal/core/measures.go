// Package core implements the paper's primary contribution: the
// eigenspace instability measure (Definition 2) with its theoretical link
// to downstream prediction disagreement (Proposition 1), alongside the four
// baseline embedding distance measures it is evaluated against (Section
// 2.4) and the downstream instability definition itself (Definition 1).
//
// All measures follow the convention "larger value = predicted to be more
// unstable downstream", so the paper's "1 − k-NN" and "1 − eigenspace
// overlap" reporting convention is built in.
package core

import (
	"container/list"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/parallel"
)

// Measure is an embedding distance measure: given a pair of embeddings
// over the same vocabulary it returns a scalar that is intended to predict
// the downstream instability of the pair (larger = more unstable).
type Measure interface {
	Name() string
	Distance(x, xt *embedding.Embedding) float64
}

// DefaultSVDCacheCap bounds the shared SVD cache. Each entry holds an
// n-by-r factor, so an unbounded cache grows without limit in long-running
// processes that sweep many embedding configurations.
const DefaultSVDCacheCap = 64

// svdCache memoizes thin SVDs keyed by embedding identity with LRU
// eviction at a fixed capacity. The selection experiments evaluate several
// measures over many pairs that share embeddings, and the SVD dominates
// their cost.
type svdCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type svdEntry struct {
	key string
	svd matrix.SVD
}

func newSVDCache(capacity int) *svdCache {
	return &svdCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

func (c *svdCache) get(key string) (matrix.SVD, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return matrix.SVD{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*svdEntry).svd, true
}

func (c *svdCache) put(key string, s matrix.SVD) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*svdEntry).svd = s
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&svdEntry{key: key, svd: s})
	c.evictOverCapLocked()
}

// evictOverCapLocked drops least-recently-used entries until the cache is
// within capacity. The caller must hold c.mu.
func (c *svdCache) evictOverCapLocked() {
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*svdEntry).key)
	}
}

var sharedSVDs = newSVDCache(DefaultSVDCacheCap)

// SetSVDCacheCapacity resizes the shared SVD cache, evicting
// least-recently-used entries if it shrinks. capacity <= 0 restores
// DefaultSVDCacheCap.
func SetSVDCacheCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultSVDCacheCap
	}
	sharedSVDs.mu.Lock()
	defer sharedSVDs.mu.Unlock()
	sharedSVDs.cap = capacity
	sharedSVDs.evictOverCapLocked()
}

// cacheKey returns a unique identity for the embedding, or "" if the
// embedding carries no provenance (ad-hoc matrices are never cached).
// The shape is part of the key because row-sliced sub-embeddings share
// their parent's Meta.
func cacheKey(e *embedding.Embedding) string {
	if e.Meta.Algorithm == "" {
		return ""
	}
	return fmt.Sprintf("%s@%dx%d", e.Meta.String(), e.Rows(), e.Dim())
}

func thinSVD(e *embedding.Embedding) matrix.SVD { return thinSVDWorkers(e, 0) }

func thinSVDWorkers(e *embedding.Embedding, workers int) matrix.SVD {
	key := cacheKey(e)
	if key == "" {
		return matrix.ComputeSVDWorkers(e.Vectors, workers)
	}
	if s, ok := sharedSVDs.get(key); ok {
		return s
	}
	s := matrix.ComputeSVDWorkers(e.Vectors, workers)
	sharedSVDs.put(key, s)
	return s
}

// ResetSVDCache clears the internal SVD cache (for tests and long-running
// processes that retrain embeddings under identical metadata).
func ResetSVDCache() {
	sharedSVDs.mu.Lock()
	sharedSVDs.m = make(map[string]*list.Element)
	sharedSVDs.lru = list.New()
	sharedSVDs.mu.Unlock()
}

// KNN is the k-nearest-neighbor instability measure used in prior work on
// intrinsic embedding stability (Hellrich & Hahn 2016; Antoniak & Mimno
// 2018; Wendlandt et al. 2018). Distance returns 1 − (average neighbor
// overlap) over Queries randomly sampled query words, computed by the
// batched engine in knn.go: rows normalized once, query-block similarities
// through the parallel MulABT kernel, top-k via a bounded heap, and the
// two embeddings' neighbor sets evaluated concurrently.
type KNN struct {
	K       int
	Queries int
	Seed    int64
	// Workers bounds the goroutines used (<= 0 selects all CPUs). The
	// result is identical for every worker count.
	Workers int
	// ANNCutoff routes the neighbor-set computation through the
	// deterministic IVF index (internal/ann) when the vocabulary has at
	// least this many rows; <= 0 keeps the exact scan at every size. At
	// large n the probed scan replaces the full n-row scan per query; the
	// index build is seeded by Seed, so the routed measure is still a
	// pure function of (embedding pair, configuration).
	ANNCutoff int
	// NProbe is the number of index cells scanned per query when the ANN
	// route is taken (<= 0 selects ann.DefaultNProbe; >= the cell count
	// reproduces the exact measure bitwise).
	NProbe int
}

// DefaultKNNANNCutoff is the vocabulary size at which NewKNN's
// configuration switches the neighbor scans to the IVF route: below it
// the exact scan is already cheap, above it the probed scan wins well
// past its index-build cost across the measure's 2×Queries searches.
const DefaultKNNANNCutoff = 50_000

// NewKNN returns the paper's configuration: k=5 (chosen in Appendix D.3),
// 1000 query words, IVF-routed neighbor scans from DefaultKNNANNCutoff
// rows up.
func NewKNN() *KNN { return &KNN{K: 5, Queries: 1000, Seed: 7, ANNCutoff: DefaultKNNANNCutoff} }

// Name implements Measure.
func (m *KNN) Name() string { return "1-knn" }

// Distance implements Measure.
func (m *KNN) Distance(x, xt *embedding.Embedding) float64 {
	n := x.Rows()
	if xt.Rows() != n {
		panic("core: KNN row mismatch")
	}
	rng := rand.New(rand.NewSource(m.Seed))
	q := m.Queries
	if q > n {
		q = n
	}
	queries := sampleIndices(rng, n, q)

	sets := func(e *embedding.Embedding, workers int) [][]int32 {
		if m.ANNCutoff > 0 && n >= m.ANNCutoff {
			return neighborSetsANN(e, queries, m.K, workers, m.NProbe, m.Seed)
		}
		return neighborSets(e, queries, m.K, workers)
	}
	var na, nb [][]int32
	if parallel.Workers(m.Workers) > 1 {
		// The two embeddings' neighbor sets are independent; overlap them.
		half := (parallel.Workers(m.Workers) + 1) / 2
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			nb = sets(xt, half)
		}()
		na = sets(x, half)
		wg.Wait()
	} else {
		na = sets(x, 1)
		nb = sets(xt, 1)
	}

	// Reduce in query order so the sum is independent of scheduling.
	var overlap float64
	for i := range queries {
		overlap += float64(knnOverlap(na[i], nb[i])) / float64(m.K)
	}
	return 1 - overlap/float64(len(queries))
}

// SemanticDisplacement measures the average cosine distance between
// aligned word vectors after solving orthogonal Procrustes (Hamilton et
// al. 2016): (1/n) Σ cos-dist(X_i, (X̃R)_i). Workers bounds the
// goroutines used (<= 0 selects all CPUs) without changing the result.
type SemanticDisplacement struct{ Workers int }

// Name implements Measure.
func (SemanticDisplacement) Name() string { return "semantic-displacement" }

// Distance implements Measure.
func (m SemanticDisplacement) Distance(x, xt *embedding.Embedding) float64 {
	if x.Rows() != xt.Rows() || x.Dim() != xt.Dim() {
		panic("core: SemanticDisplacement shape mismatch")
	}
	r := matrix.ProcrustesWorkers(x.Vectors, xt.Vectors, m.Workers)
	aligned := matrix.MulWorkers(xt.Vectors, r, m.Workers)
	var sum float64
	for i := 0; i < x.Rows(); i++ {
		sum += floats.CosineDist(x.Vector(i), aligned.Row(i))
	}
	return sum / float64(x.Rows())
}

// PIPLoss is the pairwise inner product loss ‖XXᵀ − X̃X̃ᵀ‖_F (Yin & Shen
// 2018), computed without materializing the n-by-n Gram matrices via
// ‖XXᵀ − X̃X̃ᵀ‖²_F = ‖XᵀX‖²_F + ‖X̃ᵀX̃‖²_F − 2‖XᵀX̃‖²_F. Workers bounds
// the goroutines used (<= 0 selects all CPUs) without changing the result.
type PIPLoss struct{ Workers int }

// Name implements Measure.
func (PIPLoss) Name() string { return "pip-loss" }

// Distance implements Measure.
func (m PIPLoss) Distance(x, xt *embedding.Embedding) float64 {
	if x.Rows() != xt.Rows() {
		panic("core: PIPLoss row mismatch")
	}
	gx := matrix.MulATBWorkers(x.Vectors, x.Vectors, m.Workers)
	gt := matrix.MulATBWorkers(xt.Vectors, xt.Vectors, m.Workers)
	cross := matrix.MulATBWorkers(x.Vectors, xt.Vectors, m.Workers)
	fx, ft, fc := gx.FrobNorm(), gt.FrobNorm(), cross.FrobNorm()
	v := fx*fx + ft*ft - 2*fc*fc
	if v < 0 {
		v = 0 // guard against cancellation for near-identical inputs
	}
	return math.Sqrt(v)
}

// EigenspaceOverlap is 1 minus the eigenspace overlap score
// (1/max(d,d̃))‖UᵀŨ‖²_F of May et al. 2019, so that larger means more
// unstable like every other measure here. Workers bounds the goroutines
// used (<= 0 selects all CPUs) without changing the result.
type EigenspaceOverlap struct{ Workers int }

// Name implements Measure.
func (EigenspaceOverlap) Name() string { return "1-eigenspace-overlap" }

// Distance implements Measure.
func (m EigenspaceOverlap) Distance(x, xt *embedding.Embedding) float64 {
	if x.Rows() != xt.Rows() {
		panic("core: EigenspaceOverlap row mismatch")
	}
	u := thinSVDWorkers(x, m.Workers).U
	ut := thinSVDWorkers(xt, m.Workers).U
	cross := matrix.MulATBWorkers(u, ut, m.Workers)
	f := cross.FrobNorm()
	denom := float64(u.Cols)
	if ut.Cols > u.Cols {
		denom = float64(ut.Cols)
	}
	return 1 - f*f/denom
}

// EigenspaceInstability is the paper's new measure (Definition 2): the
// normalized trace tr((UUᵀ + ŨŨᵀ − 2ŨŨᵀUUᵀ)Σ) / tr(Σ) with
// Σ = (EEᵀ)^α + (ẼẼᵀ)^α built from two fixed high-quality anchor
// embeddings E and Ẽ (the paper uses the highest-dimensional
// full-precision Wiki'17 and Wiki'18 embeddings). Distance evaluates it
// with the memory-efficient Appendix B.1 factorization, never forming an
// n-by-n matrix.
type EigenspaceInstability struct {
	// E and ETilde are the anchor embeddings defining Σ.
	E, ETilde *embedding.Embedding
	// Alpha weights high-eigenvalue directions (the paper selects α=3).
	Alpha float64
	// Workers bounds the goroutines used (<= 0 selects all CPUs). The
	// result is identical for every worker count.
	Workers int
}

// NewEigenspaceInstability returns the measure with the paper's α=3.
func NewEigenspaceInstability(e, eTilde *embedding.Embedding) *EigenspaceInstability {
	return &EigenspaceInstability{E: e, ETilde: eTilde, Alpha: 3}
}

// Name implements Measure.
func (m *EigenspaceInstability) Name() string { return "eigenspace-instability" }

// Distance implements Measure.
func (m *EigenspaceInstability) Distance(x, xt *embedding.Embedding) float64 {
	n := x.Rows()
	if xt.Rows() != n || m.E.Rows() != n || m.ETilde.Rows() != n {
		panic("core: EigenspaceInstability row mismatch")
	}
	u := thinSVDWorkers(x, m.Workers).U
	ut := thinSVDWorkers(xt, m.Workers).U

	num := 0.0
	den := 0.0
	for _, anchor := range []*embedding.Embedding{m.E, m.ETilde} {
		s := thinSVDWorkers(anchor, m.Workers)
		// Scale V's columns by σ^α: VRα has shape n-by-r. σ^α is hoisted
		// into a per-column vector — it is constant down each column.
		scale := powColumnScales(s.S, m.Alpha)
		vra := s.U.Clone() // left singular vectors of the anchor (n-by-r)
		for i := 0; i < vra.Rows; i++ {
			row := vra.Row(i)
			for j := range row {
				row[j] *= scale[j]
			}
		}
		uv := matrix.MulATBWorkers(u, vra, m.Workers)   // Uᵀ V Rα  (d-by-r)
		utv := matrix.MulATBWorkers(ut, vra, m.Workers) // Ũᵀ V Rα  (k-by-r)
		uut := matrix.MulATBWorkers(ut, u, m.Workers)   // Ũᵀ U    (k-by-d)

		fuv := uv.FrobNorm()
		futv := utv.FrobNorm()
		num += fuv*fuv + futv*futv

		// −2 tr(Rα Vᵀ Ũ Ũᵀ U Uᵀ V Rα) = −2 tr((Ũᵀ V Rα)ᵀ (ŨᵀU)(Uᵀ V Rα)).
		mid := matrix.MulWorkers(uut, uv, m.Workers) // k-by-r
		var tr float64
		for i := range mid.Data {
			tr += mid.Data[i] * utv.Data[i]
		}
		num -= 2 * tr

		for _, sv := range s.S {
			den += math.Pow(sv, 2*m.Alpha)
		}
	}
	if den == 0 {
		return 0
	}
	v := num / den
	if v < 0 {
		v = 0 // numerical guard: the trace is provably nonnegative
	}
	return v
}

// NaiveDistance computes the eigenspace instability measure directly from
// Definition 2, materializing the n-by-n matrices. It exists to validate
// the efficient implementation and for small-n experimentation.
func (m *EigenspaceInstability) NaiveDistance(x, xt *embedding.Embedding) float64 {
	n := x.Rows()
	u := thinSVD(x).U
	ut := thinSVD(xt).U

	sigma := matrix.NewDense(n, n)
	for _, anchor := range []*embedding.Embedding{m.E, m.ETilde} {
		s := thinSVD(anchor)
		scale := powColumnScales(s.S, m.Alpha)
		va := s.U.Clone()
		for i := 0; i < va.Rows; i++ {
			row := va.Row(i)
			for j := range row {
				row[j] *= scale[j]
			}
		}
		sigma.Add(matrix.MulABT(va, va))
	}

	uut := matrix.MulABT(u, u)
	utut := matrix.MulABT(ut, ut)
	inner := uut.Clone().Add(utut).Sub(matrix.Mul(utut, uut).Scale(2))
	prod := matrix.Mul(inner, sigma)
	var num, den float64
	for i := 0; i < n; i++ {
		num += prod.At(i, i)
		den += sigma.At(i, i)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// powColumnScales returns σ_j^α for every singular value, computed once
// per column instead of once per matrix row.
func powColumnScales(s []float64, alpha float64) []float64 {
	scale := make([]float64, len(s))
	for j, sv := range s {
		scale[j] = math.Pow(sv, alpha)
	}
	return scale
}

// AllMeasures returns the paper's five measures in reporting order, with
// the given anchors for the eigenspace instability measure, running on
// all CPUs.
func AllMeasures(e, eTilde *embedding.Embedding) []Measure {
	return AllMeasuresWorkers(e, eTilde, 0)
}

// AllMeasuresWorkers is AllMeasures with an explicit goroutine budget
// threaded into every measure (workers <= 0 selects all CPUs). Worker
// count is a pure throughput knob: every measure returns the same value
// for every worker count.
func AllMeasuresWorkers(e, eTilde *embedding.Embedding, workers int) []Measure {
	return NewMeasures(MeasureConfig{Anchors: e, AnchorsTilde: eTilde, Workers: workers})
}
