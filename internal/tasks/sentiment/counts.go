package sentiment

import (
	"sort"

	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// Bag-of-words feature pipeline. The canonical features of an example are
// its token counts times the embedding matrix, averaged over sentence
// length — computed grid-wide as ONE blocked count-matrix × embedding
// product per (dataset split, embedding) pair instead of per-token scalar
// loops inside every TrainLinearBOW call. The count matrix depends only on
// the dataset, so it is built once and cached on the Dataset; every grid
// cell then pays a single matrix product per split.
//
// Determinism: the blocked kernel accumulates each feature element over
// ascending word ids with a single accumulator (see matrix/kernels.go), so
// Features is bitwise identical to the retained per-example reference loop
// (featuresReference) for every worker count.

// splitCounts lazily builds and caches the bag-of-words count matrix of
// one split: row i holds the token counts of example i, with one column
// per word id up to the largest id in the split.
func (d *Dataset) splitCounts(which int, examples []Example) *matrix.Dense {
	d.countsOnce[which].Do(func() {
		maxID := int32(-1)
		for _, ex := range examples {
			for _, tk := range ex.Tokens {
				if tk > maxID {
					maxID = tk
				}
			}
		}
		m := matrix.NewDense(len(examples), int(maxID)+1)
		for i, ex := range examples {
			row := m.Row(i)
			for _, tk := range ex.Tokens {
				row[tk]++
			}
		}
		d.counts[which] = m
	})
	return d.counts[which]
}

// TrainCounts returns the cached count matrix of the training split.
func (d *Dataset) TrainCounts() *matrix.Dense { return d.splitCounts(0, d.Train) }

// ValCounts returns the cached count matrix of the validation split.
func (d *Dataset) ValCounts() *matrix.Dense { return d.splitCounts(1, d.Val) }

// TestCounts returns the cached count matrix of the test split.
func (d *Dataset) TestCounts() *matrix.Dense { return d.splitCounts(2, d.Test) }

// Features returns the averaged-embedding bag-of-words features of the
// examples as one blocked count-matrix × embedding product (counts must be
// the split's count matrix for those examples). The result is bitwise
// identical for every worker count.
func Features(emb *embedding.Embedding, counts *matrix.Dense, examples []Example, workers int) *matrix.Dense {
	d := emb.Dim()
	// View of the first counts.Cols embedding rows — the only ones the
	// split's vocabulary can touch — without copying.
	sub := matrix.NewDenseData(counts.Cols, d, emb.Vectors.Data[:counts.Cols*d])
	f := matrix.MulWorkers(counts, sub, workers)
	for i, ex := range examples {
		if len(ex.Tokens) > 0 {
			floats.Scale(1/float64(len(ex.Tokens)), f.Row(i))
		}
	}
	return f
}

// featuresReference computes the same features with the retained
// per-example loop: ascending word ids, count-weighted accumulation —
// the exact per-element operation order of the blocked product, kept as
// the slow path for equality tests and benchmarks.
func featuresReference(emb *embedding.Embedding, examples []Example) *matrix.Dense {
	out := matrix.NewDense(len(examples), emb.Dim())
	var ids []int32
	for i, ex := range examples {
		ids = append(ids[:0], ex.Tokens...)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		row := out.Row(i)
		for s := 0; s < len(ids); {
			e := s
			for e < len(ids) && ids[e] == ids[s] {
				e++
			}
			floats.Axpy(float64(e-s), emb.Vector(int(ids[s])), row)
			s = e
		}
		if len(ex.Tokens) > 0 {
			floats.Scale(1/float64(len(ex.Tokens)), row)
		}
	}
	return out
}
