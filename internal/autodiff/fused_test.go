package autodiff

import (
	"math/rand"
	"testing"

	"anchor/internal/matrix"
)

// sameDense fails unless a and b are bitwise identical.
func sameDense(t *testing.T, name string, a, b *matrix.Dense) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: element %d: %v != %v", name, i, a.Data[i], b.Data[i])
		}
	}
}

// ---- finite-difference gradient checks for every fused op ----

func TestGradGateActivations(t *testing.T) {
	const h = 3
	gates := randParam("gates", 2, 4*h, 41)
	w := randParam("w", 2, 4*h, 42)
	gradCheck(t, "gateact", []*Param{gates, w}, func(tp *Tape) *Node {
		return tp.SumAll(tp.Mul(tp.GateActivations(tp.Use(gates), h), tp.Use(w)))
	})
}

func TestGradLSTMCell(t *testing.T) {
	const h = 3
	act := randParam("act", 2, 4*h, 43)
	cPrev := randParam("cPrev", 2, h, 44)
	// Squash act through sigmoid-ish ranges first so tanh'(c) is far from
	// the flat tails, keeping finite differences well conditioned.
	gradCheck(t, "lstmcell", []*Param{act, cPrev}, func(tp *Tape) *Node {
		hN, cN := tp.LSTMCell(tp.GateActivations(tp.Use(act), h), h, tp.Use(cPrev))
		return tp.Add(tp.SumAll(tp.Mul(hN, hN)), tp.SumAll(tp.Mul(cN, cN)))
	})
}

func TestGradLSTMPreact(t *testing.T) {
	const in, hid = 3, 2
	x := randParam("x", 4, in, 45)
	h := randParam("h", 4, hid, 46)
	wx := randParam("wx", in, 4*hid, 47)
	wh := randParam("wh", hid, 4*hid, 48)
	b := randParam("b", 1, 4*hid, 49)
	gradCheck(t, "lstmpreact", []*Param{x, h, wx, wh, b}, func(tp *Tape) *Node {
		pre := tp.LSTMPreact(tp.Use(x), tp.Use(h), tp.Use(wx), tp.Use(wh), tp.Use(b))
		return tp.SumAll(tp.Mul(pre, pre))
	})
}

func TestGradMaxPoolSegRows(t *testing.T) {
	a := randParam("a", 6, 4, 50) // 2 segments of 3 rows
	gradCheck(t, "maxpoolseg", []*Param{a}, func(tp *Tape) *Node {
		m := tp.MaxPoolSegRows(tp.Use(a), 3)
		return tp.SumAll(tp.Mul(m, m))
	})
}

// ---- bitwise equality of fused ops against their unfused compositions ----

// lstmUnfusedStep replays the generic op composition of one LSTM step on
// packed pre-activations (the pre-fusion tape structure).
func lstmUnfusedStep(tp *Tape, gates, cPrev *Node, h int) (hNew, cNew *Node) {
	i := tp.Sigmoid(tp.SliceCols(gates, 0, h))
	f := tp.Sigmoid(tp.SliceCols(gates, h, 2*h))
	g := tp.Tanh(tp.SliceCols(gates, 2*h, 3*h))
	o := tp.Sigmoid(tp.SliceCols(gates, 3*h, 4*h))
	cNew = tp.Add(tp.Mul(f, cPrev), tp.Mul(i, g))
	hNew = tp.Mul(o, tp.Tanh(cNew))
	return hNew, cNew
}

func TestFusedLSTMStepBitwiseEqualsUnfused(t *testing.T) {
	const in, hid, batch, steps = 4, 3, 5, 4
	rng := rand.New(rand.NewSource(51))
	wx := NewParam("wx", matrix.NewDenseRand(in, 4*hid, 0.6, rng))
	wh := NewParam("wh", matrix.NewDenseRand(hid, 4*hid, 0.6, rng))
	b := NewParam("b", matrix.NewDenseRand(1, 4*hid, 0.6, rng))
	xs := make([]*matrix.Dense, steps)
	for t2 := range xs {
		xs[t2] = matrix.NewDenseRand(batch, in, 1, rng)
	}

	run := func(tp *Tape, fused bool) *matrix.Dense {
		h := tp.Const(matrix.NewDense(batch, hid))
		c := tp.Const(matrix.NewDense(batch, hid))
		wxN, whN, bN := tp.Use(wx), tp.Use(wh), tp.Use(b)
		var outs []*Node
		for _, x := range xs {
			xN := tp.Const(x)
			if fused {
				pre := tp.LSTMPreact(xN, h, wxN, whN, bN)
				act := tp.GateActivations(pre, hid)
				h, c = tp.LSTMCell(act, hid, c)
			} else {
				gates := tp.AddRowVec(tp.Add(tp.MatMul(xN, wxN), tp.MatMul(h, whN)), bN)
				h, c = lstmUnfusedStep(tp, gates, c, hid)
			}
			outs = append(outs, h)
		}
		stacked := tp.ConcatRows(outs...)
		tp.Backward(tp.SumAll(tp.Mul(stacked, stacked)))
		return stacked.Value
	}

	fusedOut := run(NewArenaTape(), true)
	gWx := wx.Grad.Clone()
	gWh := wh.Grad.Clone()
	gB := b.Grad.Clone()
	wx.ZeroGrad()
	wh.ZeroGrad()
	b.ZeroGrad()
	unfusedOut := run(NewTape(), false)

	sameDense(t, "hidden states", fusedOut, unfusedOut)
	sameDense(t, "dWx", gWx, wx.Grad)
	sameDense(t, "dWh", gWh, wh.Grad)
	sameDense(t, "db", gB, b.Grad)
}

func TestMaxPoolSegRowsBitwiseEqualsComposition(t *testing.T) {
	const segs, seg, cols = 3, 4, 5
	a := randParam("a", segs*seg, cols, 52)
	w := randParam("w", segs, cols, 53)

	tp1 := NewArenaTape()
	fused := tp1.MaxPoolSegRows(tp1.Use(a), seg)
	tp1.Backward(tp1.SumAll(tp1.Mul(fused, tp1.Use(w))))
	gFused := a.Grad.Clone()
	a.ZeroGrad()
	w.ZeroGrad()

	tp2 := NewTape()
	an := tp2.Use(a)
	parts := make([]*Node, segs)
	for s := 0; s < segs; s++ {
		parts[s] = tp2.MaxPoolRows(tp2.SliceRows(an, s*seg, (s+1)*seg))
	}
	unfused := tp2.ConcatRows(parts...)
	tp2.Backward(tp2.SumAll(tp2.Mul(unfused, tp2.Use(w))))

	sameDense(t, "pooled", fused.Value, unfused.Value)
	sameDense(t, "grad", gFused, a.Grad)
}

func TestLookupRows(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	src := matrix.NewDenseRand(6, 3, 1, rng)
	tp := NewArenaTape()
	n := tp.LookupRows(src, []int32{4, 0, 4})
	for r, id := range []int{4, 0, 4} {
		for j := 0; j < 3; j++ {
			if n.Value.At(r, j) != src.At(id, j) {
				t.Fatalf("row %d mismatch", r)
			}
		}
	}
	if n.Grad() != nil {
		t.Fatal("lookup node must be constant")
	}
}

// ---- arena behavior ----

func TestArenaTapeResetReproducesBitwise(t *testing.T) {
	// The same recording on a reset arena tape (reusing memory) and on a
	// classic tape must produce identical values and gradients.
	const h = 3
	p := randParam("p", 4, 4*h, 55)
	c0 := randParam("c0", 4, h, 56)

	record := func(tp *Tape) (*matrix.Dense, *matrix.Dense, *matrix.Dense) {
		act := tp.GateActivations(tp.Use(p), h)
		hN, _ := tp.LSTMCell(act, h, tp.Use(c0))
		loss := tp.CrossEntropy(hN, []int{0, 2, 1, 0})
		tp.Backward(loss)
		gp := p.Grad.Clone()
		gc := c0.Grad.Clone()
		p.ZeroGrad()
		c0.ZeroGrad()
		return hN.Value.Clone(), gp, gc
	}

	tp := NewArenaTape()
	v1, gp1, gc1 := record(tp)
	for i := 0; i < 3; i++ {
		tp.Reset()
		v2, gp2, gc2 := record(tp)
		sameDense(t, "value after reset", v1, v2)
		sameDense(t, "p grad after reset", gp1, gp2)
		sameDense(t, "c0 grad after reset", gc1, gc2)
	}
	v3, gp3, gc3 := record(NewTape())
	sameDense(t, "value vs classic", v1, v3)
	sameDense(t, "p grad vs classic", gp1, gp3)
	sameDense(t, "c0 grad vs classic", gc1, gc3)
}

func TestArenaTapeSteadyStateAllocations(t *testing.T) {
	// After warmup, re-recording the same minibatch graph on a reset arena
	// tape must allocate far less than one heap object per op (only the
	// backward closures remain; values, gradients, and nodes are reused).
	p := randParam("p", 8, 12, 57)
	c0 := randParam("c0", 8, 3, 58)
	tp := NewArenaTape()
	step := func() {
		tp.Reset()
		act := tp.GateActivations(tp.Use(p), 3)
		hN, _ := tp.LSTMCell(act, 3, tp.Use(c0))
		tp.Backward(tp.CrossEntropy(hN, []int{0, 1, 2, 0, 1, 2, 0, 1}))
		p.ZeroGrad()
		c0.ZeroGrad()
	}
	step() // warm the arena
	allocs := testing.AllocsPerRun(20, step)
	if allocs > 12 {
		t.Fatalf("steady-state arena tape allocates %.1f objects per step", allocs)
	}
}
