// Package parallel implements the deterministic sharded execution engine
// behind the embedding trainers and the co-occurrence counter.
//
// The engine separates what parallel hardware is available (Workers) from
// how work is partitioned (Shards). Work is always split into a fixed,
// configuration-derived number of shards; each shard runs sequentially with
// its own deterministically seeded RNG against state frozen at the start of
// the round, and shard results are folded back into the shared state by an
// ordered reduction (shard 0 first, then shard 1, ...). Because no shard
// observes another shard's writes and the reduction order is fixed, the
// result is bitwise identical for every worker count: Workers only controls
// how many shards are in flight at once. Changing Shards changes the
// (still deterministic) result, which is why it defaults to a constant
// rather than the machine's CPU count.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
)

// DefaultShards is the fixed shard count used when a Shards knob is left
// zero. It is a constant — never derived from GOMAXPROCS — so that results
// do not depend on the machine the training ran on. Eight balances scaling
// headroom against the per-shard cost of replicating the hottest rows.
const DefaultShards = 8

// Workers resolves a worker-count knob: values <= 0 select all CPUs.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Shards resolves a shard-count knob: values <= 0 select DefaultShards.
func Shards(n int) int {
	if n <= 0 {
		return DefaultShards
	}
	return n
}

// Range is a half-open interval [Lo, Hi) of work-item indices.
type Range struct{ Lo, Hi int }

// Len returns the number of items in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Ranges splits n items into shards contiguous near-equal ranges. The first
// n%shards ranges hold one extra item; ranges may be empty when n < shards.
// The partition depends only on (n, shards), never on scheduling.
func Ranges(n, shards int) []Range {
	rs := make([]Range, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for s := range rs {
		hi := lo + base
		if s < rem {
			hi++
		}
		rs[s] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return rs
}

// splitmix64 is the SplitMix64 finalizer, used to decorrelate shard seeds
// derived from small consecutive integers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardSeed derives the RNG seed for one (shard, round) pair from a base
// seed. Neighboring shards and rounds receive uncorrelated streams, and the
// derivation is a pure function of its arguments, so per-shard randomness
// is identical no matter which worker executes the shard.
func ShardSeed(seed int64, shard, round int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(shard)<<1 ^ 0xa5a5a5a5a5a5a5a5)
	h = splitmix64(h ^ uint64(round)<<1 ^ 0x5a5a5a5a5a5a5a5a)
	return int64(h >> 1) // non-negative, full 63-bit range
}

// ShardRNG returns a rand.Rand seeded with ShardSeed(seed, shard, round).
func ShardRNG(seed int64, shard, round int) *rand.Rand {
	return rand.New(rand.NewSource(ShardSeed(seed, shard, round)))
}

// Run executes work(s) for every shard s in [0, shards) on up to workers
// goroutines, waits for all shards to finish, and then calls reduce(s) for
// each shard in ascending order (reduce may be nil). work must not mutate
// state shared with other shards — it should read the pre-round state and
// write only shard-private buffers; reduce folds those buffers back in.
// Under this contract the combined result is bitwise independent of the
// worker count and of goroutine scheduling.
func Run(workers, shards int, work func(shard int), reduce func(shard int)) {
	if shards <= 0 {
		return
	}
	w := Workers(workers)
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for s := 0; s < shards; s++ {
			work(s)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range next {
					work(s)
				}
			}()
		}
		for s := 0; s < shards; s++ {
			next <- s
		}
		close(next)
		wg.Wait()
	}
	if reduce != nil {
		for s := 0; s < shards; s++ {
			reduce(s)
		}
	}
}

// Replica is one shard's copy-on-write view of a shared row-major matrix.
// During a round the shard reads and writes rows through Row, which copies
// a row from the shared state on first touch; Seal then turns the touched
// rows into deltas against the (still frozen) shared state, and Reduce
// folds them back in. Copying only touched rows keeps frequent
// synchronization rounds affordable: per round the copy and merge cost is
// proportional to the rows the shard actually updated, not to the matrix.
//
// The contract mirrors Run's: Begin/Row/Seal run inside work, while the
// shared state is frozen (all shards' work completes before any
// reduction), and Reduce runs in the ordered reduction. Under sequential
// shard execution the order rows enter the dirty list is deterministic, so
// reductions are bitwise reproducible for any worker count.
type Replica struct {
	shared []float64
	rowLen int
	local  []float64 // shard-private working copy (valid where stamped)
	stamp  []int     // round id per row; row is live when stamp[i] == round
	round  int
	dirty  []int32 // touched rows in first-touch order
}

// NewReplica returns a replica of the shared matrix whose rows are rowLen
// long. Vectors are matrices with rowLen 1.
func NewReplica(shared []float64, rowLen int) *Replica {
	rows := len(shared) / rowLen
	return &Replica{
		shared: shared,
		rowLen: rowLen,
		local:  make([]float64, len(shared)),
		stamp:  make([]int, rows),
		// Start at round 1 so the zero-valued stamps are never "live":
		// a Row call before the first Begin still faults in the shared
		// data instead of returning uninitialized zeros.
		round: 1,
	}
}

// Begin starts a new round: all rows revert to tracking the shared state.
func (r *Replica) Begin() {
	r.round++
	r.dirty = r.dirty[:0]
}

// Row returns the shard-local working copy of row i, copying it from the
// shared state the first time the row is touched in this round.
func (r *Replica) Row(i int) []float64 {
	lo, hi := i*r.rowLen, (i+1)*r.rowLen
	if r.stamp[i] != r.round {
		r.stamp[i] = r.round
		copy(r.local[lo:hi], r.shared[lo:hi])
		r.dirty = append(r.dirty, int32(i))
	}
	return r.local[lo:hi]
}

// Seal converts every touched row into a delta (local -= shared). It must
// be the shard's last call of the round, inside work — the shared state is
// frozen there, so no snapshot copy is needed.
func (r *Replica) Seal() {
	for _, i := range r.dirty {
		lo := int(i) * r.rowLen
		for k := 0; k < r.rowLen; k++ {
			r.local[lo+k] -= r.shared[lo+k]
		}
	}
}

// Reduce folds the sealed deltas of every touched row back into the
// shared state: shared[row] += delta[row]. Rows are processed in
// first-touch order, which is deterministic because shard work runs
// sequentially.
func (r *Replica) Reduce() {
	for _, i := range r.dirty {
		lo := int(i) * r.rowLen
		for k := 0; k < r.rowLen; k++ {
			r.shared[lo+k] += r.local[lo+k]
		}
	}
}

// ReduceAveraged folds a whole round's worth of sealed shard replicas of
// the same shared matrix at once, scaling each row's delta by one over the
// number of shards that touched the row this round. Summing raw deltas is
// correct for rows only one shard saw, but the frequent (Zipf-head) rows
// are updated by every shard toward the same target, and summing those
// nearly colinear deltas overshoots by up to a factor of the shard count;
// per-row averaging removes exactly that overshoot while leaving
// single-shard rows at full strength. The touch counts and the
// shard-order application are pure functions of the shard contents, so the
// merged result remains bitwise identical for every worker count.
//
// The returned slice holds the per-row touch counts (zero for rows no
// shard touched), letting callers post-process exactly the merged rows.
func ReduceAveraged(reps []*Replica) []int32 {
	if len(reps) == 0 {
		return nil
	}
	counts := make([]int32, len(reps[0].stamp))
	for _, r := range reps {
		for _, i := range r.dirty {
			counts[i]++
		}
	}
	for _, r := range reps {
		for _, i := range r.dirty {
			lo := int(i) * r.rowLen
			scale := 1 / float64(counts[i])
			for k := 0; k < r.rowLen; k++ {
				r.shared[lo+k] += r.local[lo+k] * scale
			}
		}
	}
	return counts
}
