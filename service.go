package anchor

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"anchor/internal/ann"
	"anchor/internal/core"
	"anchor/internal/embedding"
	"anchor/internal/embtrain"
	"anchor/internal/experiments"
	"anchor/internal/query"
	"anchor/internal/registry"
	"anchor/internal/store"
	"anchor/internal/tasks"
)

// Service is the context-aware entry point to anchor: a long-lived,
// concurrency-safe handle over the experiment runner, the pluggable
// registries (trainers, measures, downstream tasks), and the persistent
// artifact store. It is the layer both the CLIs and the `anchor serve`
// HTTP API are built on.
//
// All methods take a context.Context and return errors (no panics on
// unknown names — those surface as *UnknownNameError). Embeddings are
// cached by provenance in the artifact store, so repeated queries never
// retrain; give the service a cache directory (WithCacheDir) and the
// cache survives restarts.
type Service struct {
	runner   *experiments.Runner
	engine   *query.Engine
	progress func(string)
	defSeed  int64
	defBits  int

	// servingBudget, when positive, switches the read path into
	// serving-memory-budget mode: queries that leave dim unset have
	// (dim, bits) chosen by the paper's selection algorithm under
	// dim*bits <= servingBudget. Chosen cells are cached per
	// (algo, seed) so selection runs once per configuration.
	servingBudget int
	selMu         sync.Mutex
	selCache      map[string]servingChoice
}

// servingChoice is a cached serving-budget auto-selection result.
type servingChoice struct {
	Dim  int
	Bits int
}

// UnknownNameError reports a request naming an unregistered algorithm,
// task, or measure. The serve layer maps it to HTTP 400.
type UnknownNameError = registry.UnknownError

// InvalidRequestError reports a request with out-of-range parameters
// (dimension, precision, empty candidate grid). The serve layer maps it
// to HTTP 400; anything else that fails is an internal error.
type InvalidRequestError struct {
	Msg string
}

// Error implements error.
func (e *InvalidRequestError) Error() string { return "anchor: " + e.Msg }

func invalidf(format string, args ...any) error {
	return &InvalidRequestError{Msg: fmt.Sprintf(format, args...)}
}

// serviceSettings accumulates functional options.
type serviceSettings struct {
	cfg           ExperimentConfig
	workers       *int
	topWords      *int
	seed          int64
	bits          int
	cacheDir      string
	cacheCap      int
	queryBudget   int64
	queryWindow   time.Duration
	servingBudget int
	progress      func(string)
}

// ServiceOption configures NewService.
type ServiceOption func(*serviceSettings)

// WithConfig bases the service on an experiment configuration (corpus
// scale, dimension ladder for EIS anchors, measure parameters). The
// default is BenchExperimentConfig.
func WithConfig(cfg ExperimentConfig) ServiceOption {
	return func(s *serviceSettings) { s.cfg = cfg }
}

// WithWorkers bounds the goroutines used for training, measures, and the
// grid sweep (<= 0 selects all CPUs). Results are bitwise identical for
// every value; it is a pure throughput knob.
func WithWorkers(n int) ServiceOption {
	return func(s *serviceSettings) { s.workers = &n }
}

// WithSeed sets the default training seed used when a request passes
// seed 0. The initial default is 1.
func WithSeed(seed int64) ServiceOption {
	return func(s *serviceSettings) { s.seed = seed }
}

// WithPrecision sets the default precision (bits per entry) used when a
// request passes bits 0. The initial default is 32 (full precision).
func WithPrecision(bits int) ServiceOption {
	return func(s *serviceSettings) { s.bits = bits }
}

// WithTopWords sets the number of most-frequent words over which distance
// measures are computed (the paper uses the top 10k).
func WithTopWords(n int) ServiceOption {
	return func(s *serviceSettings) { s.topWords = &n }
}

// WithCacheDir persists the artifact store to dir: trained, aligned, and
// quantized embeddings are written there (see the internal/store package
// docs for the layout) and reloaded bitwise-identically after a restart.
func WithCacheDir(dir string) ServiceOption {
	return func(s *serviceSettings) { s.cacheDir = dir }
}

// WithCacheCapacity bounds the in-process artifact LRU to n entries
// (<= 0 = unbounded, the default). With a cache directory configured,
// evicted artifacts reload from disk instead of retraining.
func WithCacheCapacity(n int) ServiceOption {
	return func(s *serviceSettings) { s.cacheCap = n }
}

// WithQueryBudget bounds the total bytes of query-ready snapshots the
// read path keeps resident (each snapshot pins its normalized matrix,
// the raw embedding, and the word index); least recently used snapshots
// are evicted beyond it and reload from the artifact store on the next
// query. The default is 256 MiB; <= 0 removes the bound.
func WithQueryBudget(bytes int64) ServiceOption {
	return func(s *serviceSettings) { s.queryBudget = bytes }
}

// WithQueryWindow sets the read path's micro-batching gather window: how
// long the first of a burst of concurrent Neighbors queries waits for
// company before the batch is scored as one matrix product (default
// 200µs; 0 disables batching). Answers are bitwise identical for every
// value — the window only trades a bounded latency floor for throughput.
func WithQueryWindow(d time.Duration) ServiceOption {
	return func(s *serviceSettings) { s.queryWindow = d }
}

// WithServingBudget switches the read path into serving-memory-budget
// mode: a query that leaves the dimension unset (dim 0) has its
// (dim, bits) cell chosen automatically by the paper's selection
// algorithm (Section 5.2) over the configured dimension and precision
// ladders, restricted to cells with dim*bits <= budgetBits and ranked
// by eigenspace instability. The chosen cell is cached per (algo, seed),
// so selection trains its grid once and every later query reuses the
// answer. budgetBits <= 0 (the default) disables the mode; queries must
// then pass an explicit dimension.
func WithServingBudget(budgetBits int) ServiceOption {
	return func(s *serviceSettings) { s.servingBudget = budgetBits }
}

// WithProgress installs a progress callback invoked with a short human
// note at each expensive stage (training, measuring, downstream model
// fits). The callback must be safe for concurrent use.
func WithProgress(fn func(stage string)) ServiceOption {
	return func(s *serviceSettings) { s.progress = fn }
}

// NewService builds a Service from functional options.
func NewService(opts ...ServiceOption) (*Service, error) {
	settings := &serviceSettings{
		cfg:         BenchExperimentConfig(),
		seed:        1,
		bits:        32,
		queryBudget: 256 << 20,
		queryWindow: 200 * time.Microsecond,
	}
	for _, opt := range opts {
		opt(settings)
	}
	if settings.workers != nil {
		settings.cfg.Workers = *settings.workers
	}
	if settings.topWords != nil {
		settings.cfg.TopWords = *settings.topWords
	}
	if settings.bits != 32 && settings.bits != 0 {
		if err := validBits(settings.bits); err != nil {
			return nil, err
		}
	}
	st, err := store.Open(settings.cacheDir, settings.cacheCap)
	if err != nil {
		return nil, err
	}
	runner := experiments.NewRunnerWithStore(settings.cfg, st)
	// The query engine draws snapshots straight from the runner's artifact
	// store: a warm store answers read-path queries without retraining.
	// ref.Bits 0 means full precision; quantized refs resolve through the
	// runner's quantized-snapshot path (clip learned on Wiki'17, matching
	// the experiment grid), so a served artifact is bitwise the artifact
	// the library path would measure.
	engine := query.New(
		func(ctx context.Context, ref query.Ref) (*embedding.Embedding, error) {
			bits := ref.Bits
			if bits == 0 {
				bits = 32
			}
			return runner.QuantizedSnapshotCtx(ctx, ref.Algo, ref.Year, ref.Dim, bits, ref.Seed)
		},
		query.WithBudget(settings.queryBudget),
		query.WithWindow(settings.queryWindow),
		query.WithWorkers(settings.cfg.Workers),
		// ANN indexes resolve through the artifact store: a sidecar
		// persisted next to the snapshot's .bin is served without a
		// rebuild (and rebuilt + rewritten when absent, stale, or
		// quarantined-corrupt), so a warm store answers approximate
		// queries at mmap-load cost.
		query.WithANNSource(func(ctx context.Context, ref query.Ref, cfg ann.Config, rows, dim int, build func() (*ann.Index, error)) (*ann.Index, error) {
			k, err := runner.SnapshotKey(ref.Algo, ref.Year, ref.Dim, ref.Bits, ref.Seed)
			if err != nil {
				return nil, err
			}
			return st.GetANN(k, cfg, rows, dim, build)
		}),
	)
	return &Service{
		runner:        runner,
		engine:        engine,
		progress:      settings.progress,
		defSeed:       settings.seed,
		defBits:       settings.bits,
		servingBudget: settings.servingBudget,
		selCache:      map[string]servingChoice{},
	}, nil
}

// ServingBudget reports the serving-memory budget in bits per word
// (dim*bits), zero when auto-selection is disabled.
func (s *Service) ServingBudget() int { return s.servingBudget }

// selectServing resolves the (dim, bits) cell a budget-mode query should
// serve, running the paper's selection algorithm on first use for each
// (algo, seed) and caching the choice.
func (s *Service) selectServing(ctx context.Context, algo string, seed int64) (servingChoice, error) {
	key := fmt.Sprintf("%s/%d", algo, seed)
	s.selMu.Lock()
	choice, ok := s.selCache[key]
	s.selMu.Unlock()
	if ok {
		return choice, nil
	}
	cfg := s.runner.Cfg
	rep, err := s.Select(ctx, SelectRequest{
		Algo: algo, Dims: cfg.Dims, Precisions: cfg.Precisions,
		Seed: seed, BudgetBits: s.servingBudget,
	})
	if err != nil {
		return servingChoice{}, err
	}
	if rep.Best == nil {
		return servingChoice{}, invalidf(
			"serving budget %d bits excludes every configured cell", s.servingBudget)
	}
	choice = servingChoice{Dim: rep.Best.Dim, Bits: rep.Best.Precision}
	s.note("serving budget %d: selected d=%d b=%d for %s seed=%d",
		s.servingBudget, choice.Dim, choice.Bits, algo, seed)
	s.selMu.Lock()
	s.selCache[key] = choice
	s.selMu.Unlock()
	return choice, nil
}

// Config returns the experiment configuration the service runs at.
func (s *Service) Config() ExperimentConfig { return s.runner.Cfg }

// StoreStats reports artifact-store traffic (hits, disk hits, computes).
func (s *Service) StoreStats() store.Stats { return s.runner.Store().Stats() }

// Algorithms lists the registered embedding trainers.
func (s *Service) Algorithms() []string { return embtrain.Names() }

// Tasks lists the registered downstream tasks.
func (s *Service) Tasks() []string { return tasks.Names() }

// Measures lists the registered distance measures in reporting order.
func (s *Service) Measures() []string { return core.MeasureNames() }

func (s *Service) note(format string, args ...any) {
	if s.progress != nil {
		s.progress(fmt.Sprintf(format, args...))
	}
}

func (s *Service) seed(seed int64) int64 {
	if seed == 0 {
		return s.defSeed
	}
	return seed
}

func (s *Service) bits(bits int) int {
	if bits == 0 {
		if s.defBits == 0 {
			return 32
		}
		return s.defBits
	}
	return bits
}

func validBits(bits int) error {
	if bits < 1 || bits > 32 {
		return invalidf("precision must be 1..32 bits, got %d", bits)
	}
	return nil
}

func validDim(dim int) error {
	if dim < 1 {
		return invalidf("dimension must be positive, got %d", dim)
	}
	return nil
}

// The registries own the unknown-name error shape; these aliases keep
// request validation ahead of expensive work (training, dataset
// generation) without reimplementing the lookup.
func (s *Service) checkAlgo(algo string) error       { return embtrain.CheckName(algo) }
func (s *Service) checkTask(task string) error       { return tasks.CheckName(task) }
func (s *Service) checkMeasure(measure string) error { return core.CheckMeasure(measure) }

// Train returns the embedding for (algo, year, dim, seed), served from
// the artifact store or trained on a miss. year selects the corpus
// snapshot (2017 or 2018); seed 0 selects the service default. The result
// must be treated as read-only: it is shared with the cache.
func (s *Service) Train(ctx context.Context, algo string, year, dim int, seed int64) (*Embedding, error) {
	if err := errors.Join(ctx.Err(), s.checkAlgo(algo), validDim(dim)); err != nil {
		return nil, err
	}
	if year != 2017 && year != 2018 {
		return nil, invalidf("year must be 2017 or 2018, got %d", year)
	}
	seed = s.seed(seed)
	s.note("train %s wiki%d d=%d seed=%d", algo, year%100, dim, seed)
	return s.runner.TrainCtx(ctx, algo, year, dim, seed)
}

// Pair returns the aligned full-precision pair for (algo, dim, seed): the
// Wiki'17 embedding and the Wiki'18 embedding rotated onto it with
// orthogonal Procrustes (Section 3's protocol). Served from the artifact
// store when warm. Treat both as read-only.
func (s *Service) Pair(ctx context.Context, algo string, dim int, seed int64) (*Embedding, *Embedding, error) {
	if err := errors.Join(ctx.Err(), s.checkAlgo(algo), validDim(dim)); err != nil {
		return nil, nil, err
	}
	seed = s.seed(seed)
	s.note("pair %s d=%d seed=%d", algo, dim, seed)
	return s.runner.PairCtx(ctx, algo, dim, seed)
}

// MeasureReport is one embedding-distance evaluation of a grid cell.
type MeasureReport struct {
	Algo      string `json:"algo"`
	Dim       int    `json:"dim"`
	Precision int    `json:"bits"`
	Seed      int64  `json:"seed"`
	// MemoryBits is the paper's memory axis: dim x precision.
	MemoryBits int `json:"memory_bits"`
	// Values maps measure name to its distance value, over every
	// registered measure.
	Values map[string]float64 `json:"measures"`
}

// MeasureCell computes every registered distance measure between the
// quantized aligned pair at (algo, dim, bits, seed), over the configured
// top words, with EIS anchored at the configuration's largest dimension —
// exactly the grid sweep's per-cell measure evaluation, so values are
// bitwise identical to the library/grid path for any worker count.
// bits 0 and seed 0 select the service defaults.
func (s *Service) MeasureCell(ctx context.Context, algo string, dim, bits int, seed int64) (MeasureReport, error) {
	if err := errors.Join(ctx.Err(), s.checkAlgo(algo), validDim(dim)); err != nil {
		return MeasureReport{}, err
	}
	bits, seed = s.bits(bits), s.seed(seed)
	if err := validBits(bits); err != nil {
		return MeasureReport{}, err
	}
	s.note("measures %s d=%d b=%d seed=%d", algo, dim, bits, seed)
	q17, q18, err := s.runner.QuantizedPairCtx(ctx, algo, dim, bits, seed)
	if err != nil {
		return MeasureReport{}, err
	}
	ms, err := s.runner.MeasuresCtx(ctx, algo, seed)
	if err != nil {
		return MeasureReport{}, err
	}
	if err := ctx.Err(); err != nil {
		return MeasureReport{}, err
	}
	ids := s.runner.TopWordIDs()
	s17, s18 := q17.SubRows(ids), q18.SubRows(ids)
	rep := MeasureReport{
		Algo: algo, Dim: dim, Precision: bits, Seed: seed,
		MemoryBits: dim * bits,
		Values:     make(map[string]float64, len(ms)),
	}
	for _, m := range ms {
		if err := ctx.Err(); err != nil {
			return MeasureReport{}, err
		}
		rep.Values[m.Name()] = m.Distance(s17, s18)
	}
	return rep, nil
}

// StabilityReport is one end-to-end downstream instability evaluation.
type StabilityReport struct {
	Algo      string `json:"algo"`
	Task      string `json:"task"`
	Dim       int    `json:"dim"`
	Precision int    `json:"bits"`
	Seed      int64  `json:"seed"`
	// MemoryBits is the paper's memory axis: dim x precision.
	MemoryBits int `json:"memory_bits"`
	// Disagreement is the downstream prediction disagreement between the
	// Wiki'17 and Wiki'18 models, in percent (Definition 1).
	Disagreement float64 `json:"disagreement_pct"`
	// Accuracy is the Wiki'17 model's test quality.
	Accuracy float64 `json:"accuracy"`
}

// Stability measures true downstream instability for one configuration:
// it fetches the quantized aligned pair, trains the named task's model
// pair, and reports prediction disagreement (Definition 1) and quality.
// bits 0 and seed 0 select the service defaults.
func (s *Service) Stability(ctx context.Context, algo, task string, dim, bits int, seed int64) (StabilityReport, error) {
	if err := errors.Join(ctx.Err(), s.checkAlgo(algo), s.checkTask(task), validDim(dim)); err != nil {
		return StabilityReport{}, err
	}
	bits, seed = s.bits(bits), s.seed(seed)
	if err := validBits(bits); err != nil {
		return StabilityReport{}, err
	}
	s.note("stability %s/%s d=%d b=%d seed=%d", algo, task, dim, bits, seed)
	res, err := s.runner.StabilityCtx(ctx, algo, task, dim, bits, seed)
	if err != nil {
		return StabilityReport{}, err
	}
	return StabilityReport{
		Algo: algo, Task: task, Dim: dim, Precision: bits, Seed: seed,
		MemoryBits:   dim * bits,
		Disagreement: res.Disagreement,
		Accuracy:     res.Accuracy,
	}, nil
}

// SelectRequest parameterizes Select: the candidate grid and the measure
// used to rank it.
type SelectRequest struct {
	Algo string `json:"algo"`
	// Dims and Precisions span the candidate grid.
	Dims       []int `json:"dims"`
	Precisions []int `json:"precisions"`
	// Seed 0 selects the service default.
	Seed int64 `json:"seed"`
	// Measure ranks candidates (default eigenspace-instability, the
	// paper's proposed criterion).
	Measure string `json:"measure"`
	// BudgetBits, when positive, restricts the selection to candidates
	// with dim x bits <= BudgetBits (Section 5.2's budget setting).
	BudgetBits int `json:"budget_bits"`
}

// SelectCandidate is one ranked dimension-precision configuration.
type SelectCandidate struct {
	Dim        int     `json:"dim"`
	Precision  int     `json:"bits"`
	MemoryBits int     `json:"memory_bits"`
	Value      float64 `json:"value"`
	// WithinBudget marks candidates satisfying the memory budget.
	WithinBudget bool `json:"within_budget"`
}

// SelectReport ranks the candidate grid by the measure.
type SelectReport struct {
	Algo       string `json:"algo"`
	Measure    string `json:"measure"`
	Seed       int64  `json:"seed"`
	BudgetBits int    `json:"budget_bits"`
	// Candidates are sorted by ascending measure value (most stable
	// first); ties break toward smaller memory.
	Candidates []SelectCandidate `json:"candidates"`
	// Best is the minimum-value candidate within budget; nil when the
	// budget excludes every candidate.
	Best *SelectCandidate `json:"best,omitempty"`
}

// Select is the paper's payoff as a query: rank a dimension-precision
// grid by a cheap embedding-distance measure — no downstream models
// trained — and pick the predicted-most-stable configuration under a
// memory budget (Section 5.2). seed 0 and measure "" select defaults.
func (s *Service) Select(ctx context.Context, req SelectRequest) (SelectReport, error) {
	if req.Measure == "" {
		req.Measure = "eigenspace-instability"
	}
	if err := errors.Join(ctx.Err(), s.checkAlgo(req.Algo), s.checkMeasure(req.Measure)); err != nil {
		return SelectReport{}, err
	}
	if len(req.Dims) == 0 || len(req.Precisions) == 0 {
		return SelectReport{}, invalidf("select needs at least one dim and one precision")
	}
	for _, d := range req.Dims {
		if err := validDim(d); err != nil {
			return SelectReport{}, err
		}
	}
	for _, b := range req.Precisions {
		if err := validBits(b); err != nil {
			return SelectReport{}, err
		}
	}
	seed := s.seed(req.Seed)
	s.note("select %s by %s over %d cells", req.Algo, req.Measure, len(req.Dims)*len(req.Precisions))

	// The paper anchors EIS at the highest-memory pair of the sweep
	// being ranked — the request's largest dimension, not the service
	// config's ladder (which the request may exceed or not reach).
	anchorDim := req.Dims[0]
	for _, d := range req.Dims {
		if d > anchorDim {
			anchorDim = d
		}
	}
	e, et, err := s.runner.AnchorsAtCtx(ctx, req.Algo, anchorDim, seed)
	if err != nil {
		return SelectReport{}, err
	}
	cfg := s.runner.Cfg
	m, err := core.NewMeasure(req.Measure, core.MeasureConfig{
		Anchors: e, AnchorsTilde: et,
		Alpha: cfg.Alpha, K: cfg.K, Queries: cfg.KNNQueries,
		Workers: cfg.Workers,
	})
	if err != nil {
		return SelectReport{}, err
	}

	ids := s.runner.TopWordIDs()
	rep := SelectReport{Algo: req.Algo, Measure: req.Measure, Seed: seed, BudgetBits: req.BudgetBits}
	for _, dim := range req.Dims {
		for _, bits := range req.Precisions {
			if err := ctx.Err(); err != nil {
				return SelectReport{}, err
			}
			q17, q18, err := s.runner.QuantizedPairCtx(ctx, req.Algo, dim, bits, seed)
			if err != nil {
				return SelectReport{}, err
			}
			cand := SelectCandidate{
				Dim: dim, Precision: bits, MemoryBits: dim * bits,
				Value:        m.Distance(q17.SubRows(ids), q18.SubRows(ids)),
				WithinBudget: req.BudgetBits <= 0 || dim*bits <= req.BudgetBits,
			}
			rep.Candidates = append(rep.Candidates, cand)
		}
	}
	sort.SliceStable(rep.Candidates, func(i, j int) bool {
		a, b := rep.Candidates[i], rep.Candidates[j]
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.MemoryBits < b.MemoryBits
	})
	for i := range rep.Candidates {
		if rep.Candidates[i].WithinBudget {
			c := rep.Candidates[i]
			rep.Best = &c
			break
		}
	}
	return rep, nil
}

// Experiment reproduces a registered paper artifact by id against the
// service's shared runner (so embeddings are reused across experiments)
// and renders its tables to w.
func (s *Service) Experiment(ctx context.Context, id string, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.note("experiment %s", id)
	return renderExperiment(s.runner, id, w)
}

// Experiments reproduces the given artifact ids (all registered ones when
// empty) against the shared runner.
func (s *Service) Experiments(ctx context.Context, ids []string, w io.Writer) error {
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.Experiment(ctx, id, w); err != nil {
			return err
		}
	}
	return nil
}
