// Package sentiment implements the paper's sentiment analysis downstream
// tasks: synthetic analogues of the four binary classification datasets
// (SST-2, MR, Subj, MPQA from Kim 2014) plus the two downstream models
// trained on them — the linear bag-of-words model used throughout the
// paper and the CNN used in the robustness appendix (E.2).
//
// Dataset generation mirrors how sentiment is carried in natural corpora:
// positive and negative lexicons are drawn from disjoint topic groups of
// the synthetic corpus (so embedding geometry genuinely encodes the label
// signal), sentences mix lexicon words with topical/background filler, and
// a per-dataset noise rate flips lexicon words to the opposite polarity.
// The four datasets differ in size, sentence length, lexicon size, and
// noise, mirroring the difficulty spread of the real benchmarks.
package sentiment

import (
	"fmt"
	"math/rand"
	"sync"

	"anchor/internal/corpus"
	"anchor/internal/matrix"
)

// Example is one labeled sentence.
type Example struct {
	Tokens []int32
	Label  int // 0 = negative, 1 = positive
}

// Dataset is a train/validation/test split plus the generating lexicons.
type Dataset struct {
	Name             string
	Train, Val, Test []Example
	PosLex, NegLex   []int32

	// Cached per-split bag-of-words count matrices (see counts.go),
	// indexed train/val/test. Built lazily, safe for concurrent use.
	countsOnce [3]sync.Once
	counts     [3]*matrix.Dense
}

// Params controls dataset generation.
type Params struct {
	Name           string
	TrainN, ValN   int
	TestN          int
	LenMin, LenMax int
	LexiconSize    int
	// SentProb is the probability a token is drawn from the label's lexicon.
	SentProb float64
	// NoiseProb flips a lexicon draw to the opposite polarity.
	NoiseProb float64
	Seed      int64
}

// SST2Params returns the SST-2 analogue (the paper's headline sentiment
// task): mid-sized, moderately noisy.
func SST2Params() Params {
	return Params{
		Name: "sst2", TrainN: 600, ValN: 100, TestN: 250,
		LenMin: 8, LenMax: 20, LexiconSize: 60,
		SentProb: 0.35, NoiseProb: 0.22, Seed: 1001,
	}
}

// MRParams returns the MR analogue: the noisiest dataset (the paper finds
// MR the least stable).
func MRParams() Params {
	return Params{
		Name: "mr", TrainN: 500, ValN: 80, TestN: 220,
		LenMin: 10, LenMax: 24, LexiconSize: 50,
		SentProb: 0.3, NoiseProb: 0.3, Seed: 2002,
	}
}

// SubjParams returns the Subj analogue: the cleanest dataset (the paper
// finds Subj the most stable).
func SubjParams() Params {
	return Params{
		Name: "subj", TrainN: 700, ValN: 100, TestN: 250,
		LenMin: 8, LenMax: 18, LexiconSize: 70,
		SentProb: 0.45, NoiseProb: 0.1, Seed: 3003,
	}
}

// MPQAParams returns the MPQA analogue: short phrases.
func MPQAParams() Params {
	return Params{
		Name: "mpqa", TrainN: 450, ValN: 70, TestN: 200,
		LenMin: 3, LenMax: 8, LexiconSize: 45,
		SentProb: 0.5, NoiseProb: 0.18, Seed: 4004,
	}
}

// AllParams returns the four sentiment task configurations in the paper's
// reporting order.
func AllParams() []Params {
	return []Params{SST2Params(), MRParams(), SubjParams(), MPQAParams()}
}

// ParamsByName resolves a sentiment task name ("sst2", "mr", "subj",
// "mpqa") to its generation parameters. It is the single name switch for
// sentiment tasks; unknown names return an error listing the known ones.
func ParamsByName(name string) (Params, error) {
	for _, p := range AllParams() {
		if p.Name == name {
			return p, nil
		}
	}
	known := make([]string, 0, 4)
	for _, p := range AllParams() {
		known = append(known, p.Name)
	}
	return Params{}, fmt.Errorf("sentiment: unknown task %q (known: %v)", name, known)
}

// Generate builds the dataset from a corpus snapshot. The corpus supplies
// word frequencies (fillers are frequency-weighted) and the latent topic
// structure (lexicons come from disjoint topic groups so the label is
// linearly recoverable from embedding geometry).
func Generate(c *corpus.Corpus, ccfg corpus.Config, p Params) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))

	// Candidate words: frequent enough to have good embeddings, skipping
	// the very top ranks (those act as stopword filler).
	top := c.TopWords(ccfg.VocabSize)
	band := top[20:min(len(top), 20+12*p.LexiconSize)]

	half := ccfg.NumTopics / 2
	var pos, neg []int32
	for _, w := range band {
		t := corpus.PrimaryTopic(ccfg, w, corpus.Wiki17)
		if t < half && len(pos) < p.LexiconSize {
			pos = append(pos, int32(w))
		} else if t >= half && len(neg) < p.LexiconSize {
			neg = append(neg, int32(w))
		}
		if len(pos) == p.LexiconSize && len(neg) == p.LexiconSize {
			break
		}
	}

	// Filler distribution: the corpus's most frequent words.
	filler := top[:200]

	gen := func(n int) []Example {
		out := make([]Example, n)
		for i := range out {
			label := i % 2 // balanced
			length := p.LenMin + rng.Intn(p.LenMax-p.LenMin+1)
			toks := make([]int32, length)
			for j := range toks {
				if rng.Float64() < p.SentProb {
					lex := pos
					if label == 0 {
						lex = neg
					}
					if rng.Float64() < p.NoiseProb {
						if label == 0 {
							lex = pos
						} else {
							lex = neg
						}
					}
					toks[j] = lex[rng.Intn(len(lex))]
				} else {
					toks[j] = int32(filler[rng.Intn(len(filler))])
				}
			}
			out[i] = Example{Tokens: toks, Label: label}
		}
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}

	return &Dataset{
		Name:   p.Name,
		Train:  gen(p.TrainN),
		Val:    gen(p.ValN),
		Test:   gen(p.TestN),
		PosLex: pos,
		NegLex: neg,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
