package embtrain

import (
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/parallel"
)

// CBOW trains continuous bag-of-words embeddings with negative sampling
// (Mikolov et al. 2013): the averaged context window predicts the center
// word. This mirrors the word2vec implementation the paper uses, with the
// Hogwild-style threading replaced by the deterministic sharded engine.
type CBOW struct {
	// Window is the maximum context half-width; per position the effective
	// width is sampled uniformly from [1, Window] as in word2vec.
	Window int
	// Negatives is the number of negative samples per center word.
	Negatives int
	// Epochs is the number of passes over the corpus.
	Epochs int
	// LR is the initial learning rate, decayed linearly to LR/10000.
	LR float64
	// NegPower is the unigram distribution exponent (0.75 in word2vec).
	NegPower float64
	// Workers is the goroutine budget (<= 0 selects all CPUs). Embeddings
	// are bitwise identical for every value.
	Workers int
	// Shards is the fixed data-parallel shard count (<= 0 selects
	// parallel.DefaultShards). Unlike Workers, changing Shards changes the
	// (still deterministic) result.
	Shards int
	// Rounds is the number of synchronization rounds per epoch (<= 0
	// selects the package default). Like Shards it shapes the result
	// deterministically; it never depends on worker count.
	Rounds int
}

// NewCBOW returns a CBOW trainer with repro-scale defaults (the paper's
// hyperparameters, with window and epochs scaled to the synthetic corpus).
func NewCBOW() *CBOW {
	return &CBOW{Window: 5, Negatives: 5, Epochs: 12, LR: 0.1, NegPower: 0.75, Rounds: 16}
}

// Name implements Trainer.
func (t *CBOW) Name() string { return "cbow" }

// cbowShard is one shard's copy-on-write view of the CBOW state.
type cbowShard struct {
	in, out *parallel.Replica
	h, grad []float64 // per-position scratch
}

// Train implements Trainer.
func (t *CBOW) Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding {
	n := c.Vocab.Size()
	rng := newTrainRNG(seed)
	e := embedding.New(n, dim)
	e.Words = c.Vocab.Words
	e.Meta = embedding.Meta{
		Algorithm: t.Name(), Corpus: corpusName(c), Dim: dim, Seed: seed, Precision: 32,
	}
	initMatrix(e.Vectors.Data, dim, rng)
	out := make([]float64, n*dim) // output (context->center) matrix, zero-initialized

	table := newUnigramTable(c.Counts, t.NegPower)
	total := float64(t.Epochs) * float64(c.Tokens)

	shards := parallel.Shards(t.Shards)
	rounds := syncRounds(t.Rounds)
	local := make([]*cbowShard, shards)
	for s := range local {
		local[s] = &cbowShard{
			in:   parallel.NewReplica(e.Vectors.Data, dim),
			out:  parallel.NewReplica(out, dim),
			h:    make([]float64, dim),
			grad: make([]float64, dim),
		}
	}

	for epoch := 0; epoch < t.Epochs; epoch++ {
		order := shuffledOrder(len(c.Sentences), rng)
		var epochTokens float64
		for round, rr := range parallel.Ranges(len(order), rounds) {
			sub := order[rr.Lo:rr.Hi]
			ranges := parallel.Ranges(len(sub), shards)
			offsets, roundTokens := tokenOffsets(c, sub, ranges)
			parallel.Run(t.Workers, shards, func(s int) {
				st := local[s]
				st.in.Begin()
				st.out.Begin()
				srng := parallel.ShardRNG(seed, s, epoch*rounds+round)
				processed := float64(epoch)*float64(c.Tokens) + epochTokens + offsets[s]
				for _, si := range sub[ranges[s].Lo:ranges[s].Hi] {
					sent := c.Sentences[si]
					for pos, center := range sent {
						lr := t.LR * (1 - processed/total)
						if lr < t.LR*1e-4 {
							lr = t.LR * 1e-4
						}
						processed++

						b := 1 + srng.Intn(t.Window) // effective half-width
						floats.Fill(st.h, 0)
						count := 0
						for off := -b; off <= b; off++ {
							if off == 0 {
								continue
							}
							p := pos + off
							if p < 0 || p >= len(sent) {
								continue
							}
							floats.Add(st.h, st.in.Row(int(sent[p])))
							count++
						}
						if count == 0 {
							continue
						}
						floats.Scale(1/float64(count), st.h)
						floats.Fill(st.grad, 0)

						for k := 0; k <= t.Negatives; k++ {
							var target int32
							var label float64
							if k == 0 {
								target, label = center, 1
							} else {
								target = table.sample(srng)
								if target == center {
									continue
								}
								label = 0
							}
							row := st.out.Row(int(target))
							g := (label - sigmoid(floats.Dot(st.h, row))) * lr
							floats.Axpy(g, row, st.grad)
							floats.Axpy(g, st.h, row)
						}
						gScale := 1 / float64(count)
						for off := -b; off <= b; off++ {
							if off == 0 {
								continue
							}
							p := pos + off
							if p < 0 || p >= len(sent) {
								continue
							}
							floats.Axpy(gScale, st.grad, st.in.Row(int(sent[p])))
						}
					}
				}
				st.in.Seal()
				st.out.Seal()
			}, func(s int) {
				local[s].in.Reduce()
				local[s].out.Reduce()
			})
			epochTokens += roundTokens
		}
	}
	return e
}

func corpusName(c *corpus.Corpus) string {
	switch c.Year {
	case corpus.Wiki17:
		return "wiki17"
	case corpus.Wiki18:
		return "wiki18"
	}
	return "corpus"
}
