package main

import "testing"

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkNeighborsPrecision/bits=8-8         \t       3\t  69766318 ns/op\t   1622048 bytes/query\t       917.3 queries/s")
	if !ok {
		t.Fatal("result line not parsed")
	}
	if res.Name != "BenchmarkNeighborsPrecision/bits=8" {
		t.Fatalf("name %q", res.Name)
	}
	if res.Iterations != 3 {
		t.Fatalf("iterations %d", res.Iterations)
	}
	want := map[string]float64{"ns/op": 69766318, "bytes/query": 1622048, "queries/s": 917.3}
	for unit, v := range want {
		if res.Metrics[unit] != v {
			t.Fatalf("metric %s = %v, want %v", unit, res.Metrics[unit], v)
		}
	}

	// Sub-benchmark names keep internal dashes; only the GOMAXPROCS
	// suffix is stripped.
	res, ok = parseLine("BenchmarkFoo/pre-sorted-16 100 5 ns/op")
	if !ok || res.Name != "BenchmarkFoo/pre-sorted" {
		t.Fatalf("dash handling: ok=%v name=%q", ok, res.Name)
	}

	for _, line := range []string{
		"PASS",
		"ok  \tanchor/internal/query\t2.5s",
		"goos: linux",
		"--- FAIL: TestX",
		"BenchmarkBroken notanumber 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}
