package tasks

import (
	"errors"
	"testing"

	"anchor/internal/corpus"
	"anchor/internal/embtrain"
	"anchor/internal/registry"
	"anchor/internal/tasks/sentiment"
)

func TestNamesIncludeBuiltins(t *testing.T) {
	want := []string{"sst2", "mr", "subj", "mpqa", "conll2003"}
	got := Names()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("builtin task %q not registered (have %v)", name, got)
		}
	}
}

func TestNewUnknownTask(t *testing.T) {
	ccfg := corpus.TestConfig()
	c17 := corpus.Generate(ccfg, corpus.Wiki17)
	_, err := New("imdb", c17, ccfg)
	var unk *registry.UnknownError
	if !errors.As(err, &unk) {
		t.Fatalf("want *registry.UnknownError, got %v", err)
	}
	if unk.Kind != "task" || unk.Name != "imdb" {
		t.Fatalf("unexpected error contents: %+v", unk)
	}
}

func TestParamsByName(t *testing.T) {
	p, err := sentiment.ParamsByName("mr")
	if err != nil || p.Name != "mr" {
		t.Fatalf("ParamsByName(mr) = %+v, %v", p, err)
	}
	if _, err := sentiment.ParamsByName("imdb"); err == nil {
		t.Fatal("expected error for unknown sentiment task")
	}
}

// TestSentimentEvaluatorMatchesInline pins the evaluator to the inlined
// train-and-score sequence it replaced: identical predictions, identical
// disagreement and accuracy, for both serial and pair-concurrent training.
func TestSentimentEvaluatorMatchesInline(t *testing.T) {
	ccfg := corpus.TestConfig()
	c17 := corpus.Generate(ccfg, corpus.Wiki17)
	c18 := corpus.Generate(ccfg, corpus.Wiki18)
	tr, _ := embtrain.ByName("mc")
	e17 := tr.Train(c17, 8, 1)
	e18 := tr.Train(c18, 8, 1)
	e18.AlignTo(e17)
	e18.Meta.Corpus = "wiki18a"

	ev, err := New("sst2", c17, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := func(f17, f18 func()) { f17(); f18() }
	res := ev.Eval(e17, e18, 1, serial)

	ds := ev.(*Sentiment).Data
	cfg := sentiment.DefaultLinearBOWConfig(1)
	m17 := sentiment.TrainLinearBOW(e17, ds, cfg)
	m18 := sentiment.TrainLinearBOW(e18, ds, cfg)
	p17, p18 := m17.Predict(ds.Test), m18.Predict(ds.Test)
	var diff int
	for i := range p17 {
		if p17[i] != p18[i] {
			diff++
		}
	}
	wantDI := 100 * float64(diff) / float64(len(p17))
	if res.Disagreement != wantDI {
		t.Fatalf("evaluator DI %v != inline DI %v", res.Disagreement, wantDI)
	}
	if res.Accuracy != sentiment.AccuracyOf(p17, ds.Test) {
		t.Fatalf("evaluator Acc %v != inline Acc", res.Accuracy)
	}
}
