package query

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anchor/internal/embedding"
	"anchor/internal/faults"
)

// flakySource fails the first failures calls with errFlaky, then behaves
// like fixtureSource.
var errFlaky = errors.New("flaky source")

func flakySource(rows int, failures int32, calls *int32) Source {
	inner := fixtureSource(rows, nil)
	var n atomic.Int32
	return func(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
		c := n.Add(1)
		if calls != nil {
			atomic.StoreInt32(calls, c)
		}
		if c <= failures {
			return nil, errFlaky
		}
		return inner(ctx, ref)
	}
}

// TestLoadRetriesTransientFailures: a source that fails twice then
// succeeds serves the query, bitwise identical to a never-failing source,
// with the retries visible in Stats.
func TestLoadRetriesTransientFailures(t *testing.T) {
	ref := Ref{Algo: "mc", Year: 2017, Dim: 8, Seed: 1}
	clean := New(fixtureSource(40, nil), WithWindow(0))
	want, err := clean.Neighbors(context.Background(), ref, "w001", 5)
	if err != nil {
		t.Fatal(err)
	}

	e := New(flakySource(40, 2, nil), WithWindow(0), WithRetry(3, time.Microsecond))
	got, err := e.Neighbors(context.Background(), ref, "w001", 5)
	if err != nil {
		t.Fatalf("load did not recover: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbor %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r := e.Stats().Retries; r != 2 {
		t.Fatalf("Retries = %d, want 2", r)
	}
}

// TestLoadRetryExhaustion: a persistently failing source surfaces its
// error (wrapped with the attempt count) after exactly attempts tries.
func TestLoadRetryExhaustion(t *testing.T) {
	var calls int32
	e := New(flakySource(40, 1<<30, &calls), WithWindow(0), WithRetry(3, time.Microsecond))
	_, err := e.Neighbors(context.Background(), Ref{Algo: "mc", Year: 2017, Dim: 8, Seed: 1}, "w001", 5)
	if !errors.Is(err, errFlaky) {
		t.Fatalf("err = %v, want wrapped errFlaky", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err %q does not name the attempt budget", err)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("source called %d times, want 3", got)
	}
}

// TestLoadNoRetryOnCancellation: the caller's cancellation aborts the
// load immediately — no second try against a gone client.
func TestLoadNoRetryOnCancellation(t *testing.T) {
	var calls int32
	src := func(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
		atomic.AddInt32(&calls, 1)
		return nil, context.Canceled
	}
	e := New(src, WithWindow(0), WithRetry(3, time.Microsecond))
	_, err := e.Neighbors(context.Background(), Ref{Algo: "mc", Year: 2017, Dim: 8, Seed: 1}, "w001", 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("source called %d times after cancellation, want 1", got)
	}
}

// TestDeadlinePropagation: an already-expired context is refused at the
// engine entry points without touching the source.
func TestDeadlinePropagation(t *testing.T) {
	var calls int32
	e := New(fixtureSource(40, &calls), WithWindow(0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ref := Ref{Algo: "mc", Year: 2017, Dim: 8, Seed: 1}
	if _, err := e.Neighbors(ctx, ref, "w001", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Neighbors err = %v", err)
	}
	if _, _, err := e.Vector(ctx, ref, "w001"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Vector err = %v", err)
	}
	if _, err := e.Words(ctx, ref); !errors.Is(err, context.Canceled) {
		t.Fatalf("Words err = %v", err)
	}
	if _, err := e.NeighborsBatch(ctx, ref, []string{"w001"}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("NeighborsBatch err = %v", err)
	}
	if calls != 0 {
		t.Fatalf("expired context still reached the source %d times", calls)
	}
}

// TestInjectedLoadErrorRecovered drives the retry loop through the
// fault-injection site instead of a bespoke flaky source: one injected
// I/O error, one retry, answers served.
func TestInjectedLoadErrorRecovered(t *testing.T) {
	e := New(fixtureSource(40, nil), WithWindow(0), WithRetry(3, time.Microsecond))
	defer faults.Activate(faults.MustPlan(1,
		faults.Rule{Site: "query/load", Kind: faults.KindError, Count: 1}))()
	if _, err := e.Neighbors(context.Background(), Ref{Algo: "mc", Year: 2017, Dim: 8, Seed: 1}, "w001", 5); err != nil {
		t.Fatalf("injected transient error not recovered: %v", err)
	}
	if r := e.Stats().Retries; r != 1 {
		t.Fatalf("Retries = %d, want 1", r)
	}
}
