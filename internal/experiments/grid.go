package experiments

import (
	"fmt"
	"sort"

	"anchor/internal/parallel"
)

// Cell is one fully evaluated grid point: an (algorithm, dimension,
// precision, seed) configuration with every embedding distance measure
// and the downstream instability (and quality) of every enabled task.
type Cell struct {
	Algo string
	Dim  int
	Prec int
	Seed int64

	// Measures maps measure name to distance between the quantized pair.
	Measures map[string]float64
	// DI maps task name to downstream prediction disagreement (percent).
	DI map[string]float64
	// Acc maps task name to the Wiki'17 model's test quality (accuracy
	// for sentiment, entity token F1 for NER).
	Acc map[string]float64
}

// MemoryBits returns the paper's memory axis for the cell.
func (c Cell) MemoryBits() int { return c.Dim * c.Prec }

// SentimentGrid evaluates the full dimension x precision x seed grid for
// every algorithm: the shared substrate of Figures 1, 2, 4-7 and Tables
// 1-3 and 9-11. Results are cached per configuration.
func (r *Runner) SentimentGrid() []Cell {
	return r.grid("sentiment", r.Cfg.Dims, r.Cfg.Precisions, r.Cfg.Seeds, r.Cfg.SentimentTasks, false)
}

// NERGrid evaluates the (possibly reduced) grid with the BiLSTM NER task.
func (r *Runner) NERGrid() []Cell {
	if !r.Cfg.NEREnabled {
		return nil
	}
	return r.grid("ner", r.Cfg.NERDims, r.Cfg.NERPrecisions, r.Cfg.NERSeeds, nil, true)
}

func (r *Runner) grid(kind string, dims, precs []int, seeds []int64, sentTasks []string, withNER bool) []Cell {
	// The key must cover every input that shapes the cells — including the
	// task set and the NER flag, or two grids over the same ladder but
	// different tasks would collide in the cache.
	key := fmt.Sprintf("%s|%v|%v|%v|%v|%v", kind, dims, precs, seeds, sentTasks, withNER)
	r.mu.Lock()
	if g, ok := r.gridCache[key]; ok {
		r.mu.Unlock()
		return g
	}
	r.mu.Unlock()

	type job struct {
		algo      string
		dim, prec int
		seed      int64
	}
	var jobs []job
	for _, algo := range r.Cfg.Algorithms {
		for _, dim := range dims {
			for _, prec := range precs {
				for _, seed := range seeds {
					jobs = append(jobs, job{algo, dim, prec, seed})
				}
			}
		}
	}

	// Pre-train all embeddings serially (they are cached by Pair) so the
	// parallel phase below only reads the cache.
	for _, algo := range r.Cfg.Algorithms {
		for _, dim := range dims {
			for _, seed := range seeds {
				r.Pair(algo, dim, seed)
			}
		}
	}
	// Warm anchors and datasets.
	for _, algo := range r.Cfg.Algorithms {
		for _, seed := range seeds {
			r.Anchors(algo, seed)
		}
	}
	for _, t := range sentTasks {
		r.SentimentData(t)
	}
	if withNER {
		r.NERData()
	}

	cells := make([]Cell, len(jobs))
	parallelFor(r.Cfg.Workers, len(jobs), func(i int) {
		j := jobs[i]
		cells[i] = r.evalCell(j.algo, j.dim, j.prec, j.seed, sentTasks, withNER)
	})

	r.mu.Lock()
	r.gridCache[key] = cells
	r.mu.Unlock()
	return cells
}

// evalCell quantizes the pair, computes all measures on the top words,
// and trains/evaluates the enabled downstream tasks. The Wiki'17 and
// Wiki'18 downstream models of each task are independent, so they train
// concurrently when the worker budget allows; results are identical
// either way.
func (r *Runner) evalCell(algo string, dim, prec int, seed int64, sentTasks []string, withNER bool) Cell {
	q17, q18 := r.QuantizedPair(algo, dim, prec, seed)
	ids := r.TopWordIDs()
	s17, s18 := q17.SubRows(ids), q18.SubRows(ids)

	cell := Cell{
		Algo: algo, Dim: dim, Prec: prec, Seed: seed,
		Measures: map[string]float64{},
		DI:       map[string]float64{},
		Acc:      map[string]float64{},
	}
	for _, m := range r.Measures(algo, seed) {
		cell.Measures[m.Name()] = m.Distance(s17, s18)
	}

	taskNames := sentTasks
	if withNER {
		taskNames = append(append([]string(nil), sentTasks...), "conll2003")
	}
	for _, task := range taskNames {
		ev, err := r.TaskEvaluator(task)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		res := ev.Eval(q17, q18, seed, r.trainPair)
		cell.DI[task] = res.Disagreement
		cell.Acc[task] = res.Accuracy
	}
	return cell
}

// EvalCell evaluates one grid cell without touching the grid cache —
// the unit of work the benchmarks time.
func (r *Runner) EvalCell(algo string, dim, prec int, seed int64, sentTasks []string, withNER bool) Cell {
	return r.evalCell(algo, dim, prec, seed, sentTasks, withNER)
}

// trainPair runs the two model trainings of a cell, concurrently when the
// configured worker budget exceeds one. The trainings share no mutable
// state, so the schedule cannot change their results.
func (r *Runner) trainPair(f17, f18 func()) {
	if parallel.Workers(r.Cfg.Workers) > 1 {
		fns := []func(){f17, f18}
		parallel.Run(2, 2, func(s int) { fns[s]() }, nil)
	} else {
		f17()
		f18()
	}
}

// AverageOverSeeds groups cells by (algo, dim, prec) and averages the
// per-seed DI and measure values — the aggregation used in the figures.
func AverageOverSeeds(cells []Cell) []Cell {
	type key struct {
		algo      string
		dim, prec int
	}
	groups := map[key][]Cell{}
	for _, c := range cells {
		k := key{c.Algo, c.Dim, c.Prec}
		groups[k] = append(groups[k], c)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].algo != keys[b].algo {
			return keys[a].algo < keys[b].algo
		}
		if keys[a].dim != keys[b].dim {
			return keys[a].dim < keys[b].dim
		}
		return keys[a].prec < keys[b].prec
	})
	out := make([]Cell, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		avg := Cell{
			Algo: k.algo, Dim: k.dim, Prec: k.prec,
			Measures: map[string]float64{},
			DI:       map[string]float64{},
			Acc:      map[string]float64{},
		}
		for _, c := range g {
			for name, v := range c.Measures {
				avg.Measures[name] += v / float64(len(g))
			}
			for name, v := range c.DI {
				avg.DI[name] += v / float64(len(g))
			}
			for name, v := range c.Acc {
				avg.Acc[name] += v / float64(len(g))
			}
		}
		out = append(out, avg)
	}
	return out
}

// FilterCells returns the cells matching the predicate.
func FilterCells(cells []Cell, keep func(Cell) bool) []Cell {
	var out []Cell
	for _, c := range cells {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}
