package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

func TestSyncGuard(t *testing.T) {
	old := lint.RequestPathPackages
	lint.RequestPathPackages = append(old[:len(old):len(old)], "anchorlint.test/syncguard")
	defer func() { lint.RequestPathPackages = old }()
	linttest.Run(t, lint.SyncGuard, "testdata/src/syncguard", "anchorlint.test/syncguard")
}
