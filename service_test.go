package anchor_test

import (
	"context"
	"errors"
	"testing"

	"anchor"
)

// tinyServiceConfig keeps service tests at the experiments test scale:
// one cheap algorithm, a two-step dimension ladder, the test corpus.
func tinyServiceConfig() anchor.ExperimentConfig {
	cfg := anchor.SmallExperimentConfig()
	cfg.Algorithms = []string{"mc"}
	cfg.Dims = []int{8, 16}
	cfg.Precisions = []int{1, 32}
	cfg.Seeds = []int64{1}
	cfg.SentimentTasks = []string{"sst2"}
	cfg.NEREnabled = false
	return cfg
}

func newTinyService(t *testing.T, opts ...anchor.ServiceOption) *anchor.Service {
	t.Helper()
	svc, err := anchor.NewService(append([]anchor.ServiceOption{anchor.WithConfig(tinyServiceConfig())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestAlignQuantizeMatchesInlinedSequence pins the AlignQuantize helper
// bitwise to the align -> meta-tag -> quantize ritual it replaces.
func TestAlignQuantizeMatchesInlinedSequence(t *testing.T) {
	cfg := anchor.DefaultCorpusConfig()
	cfg.VocabSize = 300
	cfg.NumDocs = 120
	c17 := anchor.GenerateCorpus(cfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(cfg, anchor.Wiki18)
	e17, err := anchor.TrainEmbedding("mc", c17, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e18, err := anchor.TrainEmbedding("mc", c18, 8, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Inlined legacy sequence on clones.
	a, b := e17.Clone(), e18.Clone()
	b.AlignTo(a)
	b.Meta.Corpus += "a"
	wq17, wq18 := anchor.QuantizePair(a, b, 4)

	gq17, gq18 := anchor.AlignQuantize(e17, e18, 4)

	if e18.Meta.Corpus != "wiki18a" {
		t.Fatalf("AlignQuantize did not tag the aligned corpus: %q", e18.Meta.Corpus)
	}
	for i := range wq17.Vectors.Data {
		if gq17.Vectors.Data[i] != wq17.Vectors.Data[i] {
			t.Fatalf("q17 bit mismatch at %d", i)
		}
	}
	for i := range wq18.Vectors.Data {
		if gq18.Vectors.Data[i] != wq18.Vectors.Data[i] {
			t.Fatalf("q18 bit mismatch at %d", i)
		}
	}
	if gq17.Meta != wq17.Meta || gq18.Meta != wq18.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v / %+v vs %+v", gq17.Meta, wq17.Meta, gq18.Meta, wq18.Meta)
	}
}

// TestServiceMeasuresBitwiseAcrossWorkers is the service-level
// determinism contract: measure values must be bitwise identical for any
// worker count (and therefore identical to the library grid path, which
// shares the same code).
func TestServiceMeasuresBitwiseAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	s1 := newTinyService(t, anchor.WithWorkers(1))
	s4 := newTinyService(t, anchor.WithWorkers(4))

	r1, err := s1.MeasureCell(ctx, "mc", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s4.MeasureCell(ctx, "mc", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Values) != 5 {
		t.Fatalf("expected 5 measures, got %d", len(r1.Values))
	}
	for name, v := range r1.Values {
		if r4.Values[name] != v {
			t.Fatalf("measure %s: workers=1 %v != workers=4 %v", name, v, r4.Values[name])
		}
	}

	st1, err := s1.Stability(ctx, "mc", "sst2", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st4, err := s4.Stability(ctx, "mc", "sst2", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Disagreement != st4.Disagreement || st1.Accuracy != st4.Accuracy {
		t.Fatalf("stability drifted across workers: %+v vs %+v", st1, st4)
	}
}

// TestServiceSecondQueryServedFromStore asserts the caching acceptance
// criterion: an identical second request must not retrain.
func TestServiceSecondQueryServedFromStore(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t)
	if _, err := svc.MeasureCell(ctx, "mc", 8, 1, 1); err != nil {
		t.Fatal(err)
	}
	computes := svc.StoreStats().Computes
	if computes == 0 {
		t.Fatal("first query should have trained something")
	}
	if _, err := svc.MeasureCell(ctx, "mc", 8, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := svc.StoreStats().Computes; got != computes {
		t.Fatalf("second identical query retrained: computes %d -> %d", computes, got)
	}
}

// TestServiceRestartServedFromDisk asserts the persistence acceptance
// criterion: a fresh service over the same cache dir serves bitwise
// identical embeddings without any compute.
func TestServiceRestartServedFromDisk(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s1 := newTinyService(t, anchor.WithCacheDir(dir))
	e17, e18, err := s1.Pair(ctx, "mc", 8, 1)
	if err != nil {
		t.Fatal(err)
	}

	s2 := newTinyService(t, anchor.WithCacheDir(dir))
	f17, f18, err := s2.Pair(ctx, "mc", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.StoreStats()
	if st.Computes != 0 {
		t.Fatalf("restart retrained: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("restart did not touch the disk tier: %+v", st)
	}
	for i := range e17.Vectors.Data {
		if f17.Vectors.Data[i] != e17.Vectors.Data[i] {
			t.Fatalf("e17 restart not bitwise at %d", i)
		}
	}
	for i := range e18.Vectors.Data {
		if f18.Vectors.Data[i] != e18.Vectors.Data[i] {
			t.Fatalf("e18 restart not bitwise at %d", i)
		}
	}
}

func TestServiceUnknownNames(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t)
	var unk *anchor.UnknownNameError

	if _, err := svc.Train(ctx, "elmo", 2017, 8, 1); !errors.As(err, &unk) {
		t.Fatalf("Train: want UnknownNameError, got %v", err)
	}
	if unk.Kind != "algorithm" {
		t.Fatalf("kind = %q", unk.Kind)
	}
	if _, err := svc.Stability(ctx, "mc", "imdb", 8, 1, 1); !errors.As(err, &unk) {
		t.Fatalf("Stability: want UnknownNameError, got %v", err)
	}
	if unk.Kind != "task" {
		t.Fatalf("kind = %q", unk.Kind)
	}
	if _, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: []int{8}, Precisions: []int{1}, Measure: "vibes",
	}); !errors.As(err, &unk) {
		t.Fatalf("Select: want UnknownNameError, got %v", err)
	}
	if unk.Kind != "measure" {
		t.Fatalf("kind = %q", unk.Kind)
	}
}

func TestServiceCanceledContext(t *testing.T) {
	svc := newTinyService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.MeasureCell(ctx, "mc", 8, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := svc.Stability(ctx, "mc", "sst2", 8, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestServiceDefaults checks WithSeed/WithPrecision backfill of zero
// request values.
func TestServiceDefaults(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t, anchor.WithSeed(1), anchor.WithPrecision(1))
	rep, err := svc.MeasureCell(ctx, "mc", 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Precision != 1 || rep.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	if rep.MemoryBits != 8 {
		t.Fatalf("memory bits = %d", rep.MemoryBits)
	}
}

// TestServiceSelect exercises the selection endpoint shape: ranking,
// budget filtering, and the best pick.
func TestServiceSelect(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t)
	rep, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: []int{8, 16}, Precisions: []int{1, 32}, BudgetBits: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4", len(rep.Candidates))
	}
	for i := 1; i < len(rep.Candidates); i++ {
		if rep.Candidates[i].Value < rep.Candidates[i-1].Value {
			t.Fatal("candidates not sorted by value")
		}
	}
	if rep.Best == nil {
		t.Fatal("no best candidate")
	}
	if rep.Best.MemoryBits > 64 {
		t.Fatalf("best violates budget: %+v", rep.Best)
	}
	if rep.Measure != "eigenspace-instability" {
		t.Fatalf("default measure = %q", rep.Measure)
	}

	// A sweep whose dims exceed the configured ladder anchors EIS at the
	// request's largest dimension (the paper's protocol), not the
	// ladder's maximum.
	rep2, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: []int{8, 24}, Precisions: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Candidates) != 2 {
		t.Fatalf("ladder-exceeding select: %+v", rep2)
	}
}

// TestServiceQueryReadPath covers the Service's read-path surface:
// vector lookups match the trained rows, neighbors come from the same
// snapshot, deltas aggregate correctly, and validation errors carry the
// right types.
func TestServiceQueryReadPath(t *testing.T) {
	svc := newTinyService(t)
	ctx := context.Background()
	e, err := svc.Train(ctx, "mc", 2017, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{e.Words[3], e.Words[77]}

	vrep, err := svc.Query(ctx, "mc", 8, words)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vrep.Vectors {
		if v.Word != words[i] {
			t.Fatalf("vector %d word %q, want %q", i, v.Word, words[i])
		}
		for j, x := range v.Vector {
			if x != e.Vector(v.ID)[j] {
				t.Fatalf("vector %s differs from trained row", v.Word)
			}
		}
	}

	nrep, err := svc.Neighbors(ctx, "mc", 8, words, anchor.QueryK(4))
	if err != nil {
		t.Fatal(err)
	}
	if nrep.K != 4 || len(nrep.Results) != 2 || len(nrep.Results[0].Neighbors) != 4 {
		t.Fatalf("neighbors report: %+v", nrep)
	}
	for _, r := range nrep.Results {
		for _, n := range r.Neighbors {
			if n.Word == r.Word {
				t.Fatalf("word %s listed as its own neighbor", r.Word)
			}
		}
	}

	drep, err := svc.NeighborDelta(ctx, "mc", 8, words, anchor.QueryK(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(drep.Results) != 2 {
		t.Fatalf("delta report: %+v", drep)
	}
	mean := (drep.Results[0].Overlap + drep.Results[1].Overlap) / 2
	if drep.MeanOverlap != mean {
		t.Fatalf("mean overlap %v, want %v", drep.MeanOverlap, mean)
	}
	// The '17 side of the delta must agree with the plain 2017 neighbors.
	for i, d := range drep.Results {
		for j, n := range d.A {
			if n != nrep.Results[i].Neighbors[j] {
				t.Fatalf("delta '17 neighbors differ from Neighbors answer for %s", d.Word)
			}
		}
	}

	// Validation: unknown algorithm, bad year, bad k, no words, oov word.
	var unk *anchor.UnknownNameError
	if _, err := svc.Neighbors(ctx, "elmo", 8, words); !errors.As(err, &unk) {
		t.Fatalf("unknown algo err = %v", err)
	}
	var inv *anchor.InvalidRequestError
	if _, err := svc.Neighbors(ctx, "mc", 8, words, anchor.QueryYear(1999)); !errors.As(err, &inv) {
		t.Fatalf("bad year err = %v", err)
	}
	if _, err := svc.Neighbors(ctx, "mc", 8, words, anchor.QueryK(-1)); !errors.As(err, &inv) {
		t.Fatalf("bad k err = %v", err)
	}
	if _, err := svc.Query(ctx, "mc", 8, nil); !errors.As(err, &inv) {
		t.Fatalf("no words err = %v", err)
	}
	var uw *anchor.UnknownWordError
	if _, err := svc.Query(ctx, "mc", 8, []string{"definitely-not-a-word"}); !errors.As(err, &uw) {
		t.Fatalf("oov err = %v", err)
	}

	// The read path reuses store artifacts: all of the above trained the
	// 2017 and 2018 snapshots exactly once each.
	if st := svc.StoreStats(); st.Computes != 2 {
		t.Fatalf("computes = %d, want 2 (wiki17 + wiki18)", st.Computes)
	}
	if qs := svc.QueryStats(); qs.SnapshotLoads != 2 || qs.SnapshotHits == 0 {
		t.Fatalf("query stats: %+v", qs)
	}
}
