// Package syncguard is the request-path concurrency fixture: the test
// lists it in RequestPathPackages, so unjoined goroutines, lock-bearing
// values passed by value, and locks held across blocking calls must be
// flagged, while joined, ctx-bounded, and release-first shapes stay
// clean.
package syncguard

import (
	"context"
	"os"
	"sync"
	"time"
)

type state struct {
	mu sync.Mutex
	n  int
}

// Joined launches and awaits its goroutine.
func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// Detached leaks a goroutine with no join and no ctx bound.
func Detached() {
	go func() {}() // want `goroutine in Detached has no join`
}

// CtxBounded launches a goroutine that ends with the request's ctx.
func CtxBounded(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// CopiesLock receives the mutex-bearing state by value.
func (s state) CopiesLock() int { // want `CopiesLock receives .* by value, copying its lock`
	return s.n
}

// TakesLockByValue copies a bare mutex through a parameter.
func TakesLockByValue(mu sync.Mutex) { // want `TakesLockByValue receives sync.Mutex by value`
	_ = mu
}

// UsesPointer shares one mutex with all callers.
func UsesPointer(s *state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// HoldsAcrossSleep keeps the lock while blocking.
func (s *state) HoldsAcrossSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `s.mu held across time.Sleep in HoldsAcrossSleep`
	s.mu.Unlock()
}

// ReleasesFirst drops the lock before the blocking call.
func (s *state) ReleasesFirst(path string) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	if _, err := os.ReadFile(path); err != nil {
		return
	}
}

// DeferHold holds via defer to the end of the function, past the I/O.
func (s *state) DeferHold(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.ReadFile(path); err != nil { // want `s.mu held across os.ReadFile in DeferHold`
		return 0
	}
	return s.n
}

// Suppressed documents a deliberate paced backoff under lock.
func (s *state) Suppressed() {
	s.mu.Lock()
	//anchorlint:ignore syncguard fixture holds the lock across a paced backoff on purpose
	time.Sleep(time.Microsecond)
	s.mu.Unlock()
}
