// Package kge implements the paper's knowledge graph embedding extension
// (Section 6.1): a synthetic FB15K analogue with translation structure, the
// TransE training algorithm (Bordes et al. 2013), link prediction with the
// unstable-rank@10 instability metric, and triplet classification with
// per-relation thresholds (Socher et al. 2013).
package kge

import (
	"math/rand"
	"sort"
)

// Triplet is one (head, relation, tail) fact.
type Triplet struct {
	H, R, T int32
}

// Graph is a knowledge graph with train/valid/test triplet splits.
type Graph struct {
	NumEntities  int
	NumRelations int
	Train        []Triplet
	Valid        []Triplet
	Test         []Triplet
}

// GraphConfig controls synthetic graph generation. Entities receive latent
// positions in R^LatentDim; each relation is a latent translation vector;
// a triplet (h, r, t) holds when t is the entity nearest to pos(h)+vec(r).
// This gives the graph exactly the geometry TransE is built to model, the
// same reason TransE fits Freebase relations.
type GraphConfig struct {
	Entities  int
	Relations int
	TrainN    int
	ValidN    int
	TestN     int
	LatentDim int
	// Noise is the probability a triplet's tail is corrupted at
	// generation time (facts that break the translation pattern).
	Noise float64
	Seed  int64
}

// DefaultGraphConfig returns the repro-scale FB15K analogue.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{
		Entities: 400, Relations: 12,
		TrainN: 4000, ValidN: 400, TestN: 400,
		LatentDim: 6, Noise: 0.05, Seed: 99,
	}
}

// TestGraphConfig returns a miniature configuration for unit tests.
func TestGraphConfig() GraphConfig {
	c := DefaultGraphConfig()
	c.Entities, c.TrainN, c.ValidN, c.TestN = 120, 1200, 150, 150
	return c
}

// GenerateGraph builds the synthetic knowledge graph deterministically.
func GenerateGraph(cfg GraphConfig) *Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Latent entity positions: clustered so relations act within and
	// across clusters, as in real knowledge bases.
	clusters := 8
	centers := make([][]float64, clusters)
	for i := range centers {
		centers[i] = randVec(cfg.LatentDim, 2.0, rng)
	}
	pos := make([][]float64, cfg.Entities)
	for e := range pos {
		c := centers[e%clusters]
		pos[e] = make([]float64, cfg.LatentDim)
		for j := range pos[e] {
			pos[e][j] = c[j] + 0.5*rng.NormFloat64()
		}
	}
	rel := make([][]float64, cfg.Relations)
	for r := range rel {
		rel[r] = randVec(cfg.LatentDim, 1.5, rng)
	}

	seen := map[Triplet]bool{}
	total := cfg.TrainN + cfg.ValidN + cfg.TestN
	triplets := make([]Triplet, 0, total)
	for len(triplets) < total {
		h := rng.Intn(cfg.Entities)
		r := rng.Intn(cfg.Relations)
		var t int
		if rng.Float64() < cfg.Noise {
			t = rng.Intn(cfg.Entities)
		} else {
			t = nearestEntity(pos, pos[h], rel[r], h)
		}
		if t == h {
			continue
		}
		tr := Triplet{H: int32(h), R: int32(r), T: int32(t)}
		if seen[tr] {
			continue
		}
		seen[tr] = true
		triplets = append(triplets, tr)
	}
	return &Graph{
		NumEntities:  cfg.Entities,
		NumRelations: cfg.Relations,
		Train:        triplets[:cfg.TrainN],
		Valid:        triplets[cfg.TrainN : cfg.TrainN+cfg.ValidN],
		Test:         triplets[cfg.TrainN+cfg.ValidN:],
	}
}

func randVec(n int, scale float64, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = scale * rng.NormFloat64()
	}
	return v
}

func nearestEntity(pos [][]float64, from, shift []float64, exclude int) int {
	best, bestD := -1, 0.0
	for e := range pos {
		if e == exclude {
			continue
		}
		var d float64
		for j := range from {
			diff := from[j] + shift[j] - pos[e][j]
			d += diff * diff
		}
		if best == -1 || d < bestD {
			best, bestD = e, d
		}
	}
	return best
}

// Subsample returns a copy of g whose training set is a random fraction of
// the original (the paper's FB15K-95 keeps 95%); valid and test splits are
// unchanged, exactly as in the paper.
func Subsample(g *Graph, frac float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(g.Train))
	keep := int(float64(len(g.Train)) * frac)
	kept := make([]Triplet, keep)
	sel := idx[:keep]
	sort.Ints(sel) // preserve original order for determinism
	for i, j := range sel {
		kept[i] = g.Train[j]
	}
	return &Graph{
		NumEntities:  g.NumEntities,
		NumRelations: g.NumRelations,
		Train:        kept,
		Valid:        g.Valid,
		Test:         g.Test,
	}
}
