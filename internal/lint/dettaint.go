package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintSinks maps function FullNames to the contract surface their
// arguments feed. A nondeterministic value reaching a sink argument is a
// dettaint finding: artifact bytes, HTTP response bodies, and measure
// values must be pure functions of (corpus, seed, dim, bits). Tests may
// override the map to point at fixture sinks.
var TaintSinks = map[string]string{
	"anchor/internal/store.WriteBinary":         "artifact bytes",
	"anchor/internal/store.SaveBinaryFile":      "artifact bytes",
	"(*anchor/internal/serve.Server).writeJSON": "the HTTP response encoding",
}

// TaintLaunder lists function FullNames that cut taint: their results
// are deterministic by construction regardless of how they are reached.
// Seeded RNG derivation and the ordered shard reducer are the sanctioned
// ways to turn parallelism and randomness back into reproducible values.
// Plain constructors like rand.New are deliberately absent — they
// propagate their argument's taint, so rand.New(rand.NewSource(seed))
// is clean while rand.New(rand.NewSource(time.Now().UnixNano())) stays
// tainted.
var TaintLaunder = map[string]bool{
	"anchor/internal/parallel.ShardRNG":  true,
	"anchor/internal/parallel.ShardSeed": true,
	"anchor/internal/parallel.Run":       true,
}

// TaintMeasurePackages lists packages whose function results are measure
// values: any function there whose return is tainted is reported even
// without a sink call, because measures feed the paper's tables
// directly.
var TaintMeasurePackages = []string{"anchor/internal/core"}

// DetTaint is the interprocedural nondeterminism-taint rule: values
// derived from the global RNG, the clock, the environment, or map
// iteration order must not flow — through any chain of calls — into
// artifact bytes, HTTP responses, or measure values. Goroutine
// completion order, the remaining nondeterminism source, is enforced at
// write sites by the fpreduce and sharedwrite rules.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc: "tracks nondeterministic values (unseeded math/rand and " +
		"math/rand/v2, time.Now and friends, os.Getenv, map iteration " +
		"order) across function boundaries and flags any flow into " +
		"store.WriteBinary artifact bytes, serve response encoding, or " +
		"internal/core measure returns; parallel.ShardRNG/ShardSeed/Run " +
		"launder taint",
	RunModule: runDetTaint,
}

// taintFact is the per-function interprocedural summary: whether the
// function's results may carry nondeterminism, and the ultimate source
// when they do. Facts are cached per package keyed by export-data
// identity.
type taintFact struct {
	Tainted bool   `json:"tainted"`
	Via     string `json:"via,omitempty"`
}

// detTaintFactKind versions the cached fact format; bump when the
// summary computation changes.
const detTaintFactKind = "dettaint1"

func runDetTaint(mp *ModulePass) error {
	sums := taintSummaries(mp)
	for _, pkg := range mp.Pkgs {
		for _, fd := range funcDecls(pkg) {
			analyzeTaint(pkg, fd, sums, mp)
		}
	}
	return nil
}

// funcDecls returns the package's function declarations with bodies.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declFullName resolves a function declaration to its FullName.
func declFullName(pkg *Package, fd *ast.FuncDecl) (string, bool) {
	obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return "", false
	}
	return obj.FullName(), true
}

// taintSummaries computes the module-wide fixed point of per-function
// taint facts. Packages with a valid fact-cache entry contribute their
// summaries as constants; only uncached packages iterate, and their
// results are saved for the next run. Taint is monotone (a fact never
// turns back off), so the iteration terminates.
func taintSummaries(mp *ModulePass) map[string]taintFact {
	sums := make(map[string]taintFact)
	cached := make(map[*Package]bool)
	for _, pkg := range mp.Pkgs {
		var m map[string]taintFact
		if mp.Facts.Load(detTaintFactKind, PackageFactKey(pkg), &m) {
			for k, v := range m {
				sums[k] = v
			}
			cached[pkg] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, pkg := range mp.Pkgs {
			if cached[pkg] {
				continue
			}
			for _, fd := range funcDecls(pkg) {
				name, ok := declFullName(pkg, fd)
				if !ok || TaintLaunder[name] {
					continue
				}
				fact := analyzeTaint(pkg, fd, sums, nil)
				if fact != sums[name] {
					sums[name] = fact
					changed = true
				}
			}
		}
	}
	for _, pkg := range mp.Pkgs {
		if cached[pkg] {
			continue
		}
		key := PackageFactKey(pkg)
		if key == "" {
			continue
		}
		m := make(map[string]taintFact)
		for _, fd := range funcDecls(pkg) {
			if name, ok := declFullName(pkg, fd); ok {
				m[name] = sums[name]
			}
		}
		mp.Facts.Save(detTaintFactKind, key, m)
	}
	return sums
}

// analyzeTaint runs the intra-function taint pass over one declaration:
// locals assigned from nondeterministic expressions become tainted, and
// taint is checked at sink-call arguments and return statements. With mp
// nil it only computes the function's summary (the fixed-point phase);
// with mp set it reports findings (the report phase).
func analyzeTaint(pkg *Package, fd *ast.FuncDecl, sums map[string]taintFact, mp *ModulePass) taintFact {
	info := pkg.TypesInfo
	vars := make(map[types.Object]string)

	// Body spans of range-over-map loops: appends inside them produce
	// order-tainted slices unless the slice is sorted afterwards.
	type span struct{ lo, hi token.Pos }
	var mapRanges []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if t := info.Types[r.X].Type; t != nil && isMap(t) {
				mapRanges = append(mapRanges, span{r.Body.Pos(), r.Body.End()})
			}
		}
		return true
	})
	enclosingMapRange := func(p token.Pos) (token.Pos, bool) {
		for i := len(mapRanges) - 1; i >= 0; i-- {
			if s := mapRanges[i]; s.lo <= p && p <= s.hi {
				return s.hi, true
			}
		}
		return token.NoPos, false
	}

	// exprTaint reports whether the expression may carry a
	// nondeterministic value, and the ultimate source. Launder calls
	// prune their whole subtree.
	var exprTaint func(e ast.Expr) (string, bool)
	exprTaint = func(e ast.Expr) (string, bool) {
		var via string
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := CalleeName(info, n); ok {
					if TaintLaunder[name] {
						return false
					}
					if f := sums[name]; f.Tainted {
						via, found = f.Via, true
						return false
					}
				}
				if src, ok := sourceCall(info, n); ok {
					via, found = src, true
					return false
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil {
					if v, ok := vars[obj]; ok {
						via, found = v, true
						return false
					}
				}
			}
			return true
		})
		return via, found
	}

	taintLHS := func(targets []ast.Expr, via string) {
		for _, lhs := range targets {
			if obj := lhsObj(info, lhs); obj != nil {
				if _, had := vars[obj]; !had {
					vars[obj] = via
				}
			}
		}
	}
	// rhsTaint folds exprTaint with the map-iteration-order source: an
	// append inside a map range taints the target slice unless it is
	// sorted later in this function.
	rhsTaint := func(rhs []ast.Expr, pos token.Pos) (string, bool) {
		for _, e := range rhs {
			if via, ok := exprTaint(e); ok {
				return via, true
			}
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); !isID ||
				info.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			end, inRange := enclosingMapRange(pos)
			if !inRange {
				continue
			}
			if !sortedAfter(info, fd.Body, end, types.ExprString(call.Args[0])) {
				return "map iteration order", true
			}
		}
		return "", false
	}

	var fact taintFact
	measurePkg := mp != nil && pkgInList(pkg.PkgPath, TaintMeasurePackages)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if via, ok := rhsTaint(n.Rhs, n.Pos()); ok {
				taintLHS(n.Lhs, via)
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				if via, ok := rhsTaint(vs.Values, n.Pos()); ok {
					for _, name := range vs.Names {
						if obj := info.Defs[name]; obj != nil {
							vars[obj] = via
						}
					}
				}
			}
		case *ast.CallExpr:
			if mp == nil {
				return true
			}
			name, ok := CalleeName(info, n)
			if !ok {
				return true
			}
			surface, isSink := TaintSinks[name]
			if !isSink {
				return true
			}
			for _, arg := range n.Args {
				if via, tainted := exprTaint(arg); tainted {
					mp.Reportf(pkg, arg.Pos(),
						"nondeterministic value (from %s) flows into %s via %s: outputs must be pure functions of (corpus, seed, dim, bits)",
						via, surface, name)
					break
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				via, tainted := exprTaint(res)
				if !tainted {
					continue
				}
				if !fact.Tainted {
					fact = taintFact{Tainted: true, Via: via}
				}
				if measurePkg {
					mp.Reportf(pkg, n.Pos(),
						"measure value derived from %s: measures must be reproducible from (corpus, seed, dim, bits)",
						via)
				}
				break
			}
		}
		return true
	})
	return fact
}

// sourceCall reports whether the call is a direct nondeterminism source
// (global RNG draw, clock, or environment read) and names it.
func sourceCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkgPath, name, ok := pkgFunc(info, call)
	if !ok {
		return "", false
	}
	if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name] {
		return pkgPath + "." + name, true
	}
	if envFuncs[[2]string{pkgPath, name}] {
		return pkgPath + "." + name, true
	}
	return "", false
}

// lhsObj resolves an assignment target (x, x.f, x[i], *x, ...) to its
// root variable object.
func lhsObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Defs[x]; obj != nil {
				return obj
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pkgInList reports whether the import path falls under any entry of
// list (a trailing /... matches the subtree), mirroring
// IsDeterministicPkg for other package sets.
func pkgInList(path string, list []string) bool {
	for _, p := range list {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}
