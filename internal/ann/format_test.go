package ann

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"

	"anchor/internal/matrix"
)

// encodeValid builds and encodes a small valid sidecar.
func encodeValid(t *testing.T) (*Index, []byte) {
	t.Helper()
	ix := Build(clusteredRows(64, 6, 4, 0.1, 17), Config{NList: 5, Seed: 3})
	var buf bytes.Buffer
	if err := Encode(&buf, ix); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return ix, buf.Bytes()
}

// rechecksum recomputes the whole-file CRC after a test mutation so the
// mutation reaches the structural checks behind it.
func rechecksum(data []byte) []byte {
	d := crc32.New(castagnoli)
	d.Write(data[:36])
	d.Write([]byte{0, 0, 0, 0})
	d.Write(data[40:])
	binary.LittleEndian.PutUint32(data[36:40], d.Sum32())
	return data
}

func TestFormatRoundTrip(t *testing.T) {
	ix, data := encodeValid(t)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !sameIndex(ix, got) {
		t.Fatal("decoded index differs bitwise from the encoded one")
	}
	// Re-encode must reproduce the file byte for byte.
	var buf bytes.Buffer
	if err := Encode(&buf, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("re-encode differs from original bytes")
	}
}

func TestFormatRoundTripEmpty(t *testing.T) {
	ix := Build(matrix.NewDense(0, 3), Config{})
	var buf bytes.Buffer
	if err := Encode(&buf, ix); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Rows != 0 || got.NList != ix.NList || got.Dim != 3 {
		t.Fatalf("empty round trip: rows=%d nlist=%d dim=%d", got.Rows, got.NList, got.Dim)
	}
}

// TestFormatRejectsCorrupt walks every rejection branch of the decoder;
// each mutation must surface ErrCorrupt (or the version error), never a
// decoded index. These fixtures also seed FuzzDecodeANNIndex.
func TestFormatRejectsCorrupt(t *testing.T) {
	_, valid := encodeValid(t)
	payloadOff := int(binary.LittleEndian.Uint64(valid[40:48]))
	cases := []struct {
		name    string
		corrupt bool // expect ErrCorrupt specifically
		mutate  func([]byte) []byte
	}{
		{"truncated header", true, func(d []byte) []byte { return d[:annHeaderLen-1] }},
		{"truncated payload", true, func(d []byte) []byte { return d[:len(d)-1] }},
		{"trailing garbage", true, func(d []byte) []byte { return append(d, 0) }},
		{"bad magic", true, func(d []byte) []byte { d[0] = 'X'; return d }},
		{"version 0", false, func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], 0)
			return d
		}},
		{"future version", false, func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[4:8], FormatVersion+1)
			return d
		}},
		{"nlist zero", true, func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], 0)
			return d
		}},
		{"rows overflow", true, func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[16:24], math.MaxUint64/2)
			return d
		}},
		{"misaligned payload offset", true, func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[40:48], uint64(payloadOff+1))
			return d
		}},
		{"checksum mismatch", true, func(d []byte) []byte {
			d[len(d)-1] ^= 1 // flip a payload bit, leave the recorded sum
			return d
		}},
		{"starts not starting at zero", true, func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[payloadOff+5*6*8:], 1)
			return rechecksum(d)
		}},
		{"starts not monotone", true, func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[payloadOff+5*6*8+4:], 65)
			return rechecksum(d)
		}},
		{"id out of range", true, func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[payloadOff+5*6*8+6*4:], 64)
			return rechecksum(d)
		}},
		{"id duplicated", true, func(d []byte) []byte {
			ids := d[payloadOff+5*6*8+6*4:]
			copy(ids[4:8], ids[0:4])
			return rechecksum(d)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			ix, err := Decode(data)
			if err == nil {
				t.Fatal("decode accepted corrupt sidecar")
			}
			if ix != nil {
				t.Fatal("decode returned both an index and an error")
			}
			if tc.corrupt && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			if !tc.corrupt && errors.Is(err, ErrCorrupt) {
				t.Fatalf("version error %v should not wrap ErrCorrupt", err)
			}
		})
	}
}

// TestFormatNotAscendingRejected needs a list with two ids to swap; the
// table above can't guarantee one, so build it directly.
func TestFormatNotAscendingRejected(t *testing.T) {
	ix := Build(clusteredRows(32, 4, 1, 0.05, 9), Config{NList: 1, Seed: 1})
	var buf bytes.Buffer
	if err := Encode(&buf, ix); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	payloadOff := int(binary.LittleEndian.Uint64(data[40:48]))
	ids := data[payloadOff+1*4*8+2*4:]
	tmp := make([]byte, 4)
	copy(tmp, ids[0:4])
	copy(ids[0:4], ids[4:8])
	copy(ids[4:8], tmp)
	if _, err := Decode(rechecksum(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped ids decoded with err=%v, want ErrCorrupt", err)
	}
}

func TestEncodeWriteError(t *testing.T) {
	ix, _ := encodeValid(t)
	if err := Encode(failWriter{}, ix); err == nil || !strings.Contains(err.Error(), "write sidecar") {
		t.Fatalf("encode to failing writer: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }
