package experiments

import (
	"math/rand"

	"anchor/internal/bert"
	"anchor/internal/compress"
	"anchor/internal/core"
	"anchor/internal/matrix"
	"anchor/internal/nn"
	"anchor/internal/tasks/sentiment"

	ad "anchor/internal/autodiff"
)

// bertFeatures extracts mean-pooled frozen features for a dataset split.
func bertFeatures(m *bert.Model, examples []sentiment.Example) *matrix.Dense {
	out := matrix.NewDense(len(examples), m.Cfg.Hidden)
	for i, ex := range examples {
		copy(out.Row(i), m.SentenceFeature(ex.Tokens))
	}
	return out
}

// trainFeatureClassifier trains a linear softmax classifier on fixed
// feature rows (the linear layer the paper trains on BERT outputs).
func trainFeatureClassifier(x *matrix.Dense, labels []int, seed int64) *nn.Linear {
	rng := rand.New(rand.NewSource(seed))
	lin := nn.NewLinear("clf", x.Cols, 2, rng)
	opt := nn.NewAdam(0.01)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	const batch = 32
	for epoch := 0; epoch < 30; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += batch {
			e := s + batch
			if e > len(idx) {
				e = len(idx)
			}
			bx := matrix.NewDense(e-s, x.Cols)
			by := make([]int, e-s)
			for i := s; i < e; i++ {
				copy(bx.Row(i-s), x.Row(idx[i]))
				by[i-s] = labels[idx[i]]
			}
			tp := ad.NewTape()
			loss := tp.CrossEntropy(lin.Forward(tp, tp.Const(bx)), by)
			tp.Backward(loss)
			opt.Step(lin.Params())
		}
	}
	return lin
}

func classify(lin *nn.Linear, x *matrix.Dense) []int {
	tp := ad.NewTape()
	logits := lin.Forward(tp, tp.Const(x)).Value
	out := make([]int, x.Rows)
	for i := range out {
		if logits.At(i, 1) > logits.At(i, 0) {
			out[i] = 1
		}
	}
	return out
}

// Fig11 reproduces Appendix Figure 11 (referenced from Section 6.2):
// downstream instability of frozen BERT features on sentiment analysis,
// (a) as the transformer output dimension varies and (b) as the features
// are quantized to different precisions.
func Fig11(r *Runner) []*Table {
	c17, c18 := r.Corpora()
	ds := r.SentimentData(r.Cfg.SentimentTasks[0])
	labels := func(ex []sentiment.Example) []int {
		out := make([]int, len(ex))
		for i, e := range ex {
			out[i] = e.Label
		}
		return out
	}
	trainY, testY := labels(ds.Train), labels(ds.Test)

	dimT := &Table{
		ID: "fig11", Title: "BERT instability vs output dimension (" + ds.Name + ")",
		Columns: []string{"hidden", "seed-avg %disagreement", "wiki17 accuracy"},
	}
	precT := &Table{
		ID: "fig11", Title: "BERT instability vs feature precision (" + ds.Name + ")",
		Columns: []string{"hidden", "precision", "seed-avg %disagreement"},
	}

	for _, hidden := range r.Cfg.BERTHiddens {
		var diSum, accSum float64
		precSums := map[int]float64{}
		for _, seed := range r.Cfg.BERTSeeds {
			m17 := bert.Pretrain(c17, bert.DefaultConfig(hidden, seed))
			m18 := bert.Pretrain(c18, bert.DefaultConfig(hidden, seed))
			tr17, tr18 := bertFeatures(m17, ds.Train), bertFeatures(m18, ds.Train)
			te17, te18 := bertFeatures(m17, ds.Test), bertFeatures(m18, ds.Test)

			l17 := trainFeatureClassifier(tr17, trainY, seed)
			l18 := trainFeatureClassifier(tr18, trainY, seed)
			diSum += core.PredictionDisagreementPct(classify(l17, te17), classify(l18, te18))
			acc := 0.0
			for i, p := range classify(l17, te17) {
				if p == testY[i] {
					acc++
				}
			}
			accSum += acc / float64(len(testY))

			// Precision sweep: quantize train+test features with a clip
			// computed on the Wiki'17 features, shared with Wiki'18.
			for _, prec := range r.Cfg.BERTPrecisions {
				q := func(m *matrix.Dense, clip float64) *matrix.Dense {
					out := m.Clone()
					compress.QuantizeValues(out.Data, prec, clip)
					return out
				}
				clip := 1.0
				if prec < 32 {
					clip = compress.OptimalClip(tr17.Data, prec)
				}
				ql17 := trainFeatureClassifier(q(tr17, clip), trainY, seed)
				ql18 := trainFeatureClassifier(q(tr18, clip), trainY, seed)
				precSums[prec] += core.PredictionDisagreementPct(
					classify(ql17, q(te17, clip)), classify(ql18, q(te18, clip)))
			}
		}
		n := float64(len(r.Cfg.BERTSeeds))
		dimT.AddRow(hidden, diSum/n, accSum/n)
		for _, prec := range r.Cfg.BERTPrecisions {
			precT.AddRow(hidden, prec, precSums[prec]/n)
		}
	}
	return []*Table{dimT, precT}
}
