package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"anchor/internal/lint"
)

// checkSource type-checks one in-memory file (stdlib-only imports) and
// runs the full suite over it.
func checkSource(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var imports []string
	for _, imp := range f.Imports {
		imports = append(imports, strings.Trim(imp.Path.Value, `"`))
	}
	exports, err := lint.ExportData("", imports...)
	if err != nil {
		t.Fatalf("export data: %v", err)
	}
	typed, info, err := lint.Check("fixture", fset, []*ast.File{f}, lint.ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &lint.Package{PkgPath: "fixture", Fset: fset, Files: []*ast.File{f}, Types: typed, TypesInfo: info}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

// TestIgnoreDirectiveSuppresses checks that a valid directive marks the
// finding suppressed and records its reason.
func TestIgnoreDirectiveSuppresses(t *testing.T) {
	diags := checkSource(t, `package p

// F collects keys without sorting, with a documented justification.
func F(m map[string]int) []string {
	var keys []string
	for k := range m {
		//anchorlint:ignore maporder key order is irrelevant downstream
		keys = append(keys, k)
	}
	return keys
}
`)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !d.Suppressed {
		t.Fatalf("finding not suppressed: %v", d)
	}
	if d.SuppressReason != "key order is irrelevant downstream" {
		t.Fatalf("wrong reason: %q", d.SuppressReason)
	}
}

// TestIgnoreDirectiveNeedsReason checks that a bare directive is itself
// reported and suppresses nothing.
func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	diags := checkSource(t, `package p

// F collects keys without sorting under a reason-less directive.
func F(m map[string]int) []string {
	var keys []string
	for k := range m {
		//anchorlint:ignore maporder
		keys = append(keys, k)
	}
	return keys
}
`)
	var gotBad, gotFinding bool
	for _, d := range diags {
		if d.Rule == "anchorlint" && strings.Contains(d.Message, "needs a rule name and a reason") {
			gotBad = true
		}
		if d.Rule == "maporder" && !d.Suppressed {
			gotFinding = true
		}
	}
	if !gotBad || !gotFinding {
		t.Fatalf("want invalid-directive report and unsuppressed finding, got %v", diags)
	}
}

// TestIgnoreDirectiveUnknownRule checks that a typo'd rule name is
// reported instead of silently suppressing nothing.
func TestIgnoreDirectiveUnknownRule(t *testing.T) {
	diags := checkSource(t, `package p

// F carries a directive naming a rule that does not exist.
func F() int {
	//anchorlint:ignore maporderz sorted elsewhere
	return 1
}
`)
	if len(diags) != 1 || diags[0].Rule != "anchorlint" ||
		!strings.Contains(diags[0].Message, `unknown rule "maporderz"`) {
		t.Fatalf("want unknown-rule report, got %v", diags)
	}
}

// TestIgnoreDirectiveStale checks that a directive with nothing left to
// suppress is reported, so fixed code sheds its exceptions.
func TestIgnoreDirectiveStale(t *testing.T) {
	diags := checkSource(t, `package p

import "sort"

// F sorts its keys; the leftover directive must be called out.
func F(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		//anchorlint:ignore maporder stale justification
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`)
	if len(diags) != 1 || diags[0].Rule != "anchorlint" ||
		!strings.Contains(diags[0].Message, "suppresses nothing") {
		t.Fatalf("want stale-directive report, got %v", diags)
	}
}

// TestLoadRepoPackage smoke-tests the go list -export loader against a
// real module package.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := lint.Load("", "anchor/internal/cooc")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "anchor/internal/cooc" {
		t.Fatalf("got %d packages, want anchor/internal/cooc", len(pkgs))
	}
	p := pkgs[0]
	if len(p.Files) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatalf("package not fully loaded: %+v", p)
	}
	// The shard-merge and entry-emission loops are deterministic by
	// construction (keyed accumulation, collect-then-sort); the suite
	// must stay silent here without any suppression.
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("unexpected finding in cooc: %v", d)
		}
	}
}
