//go:build !unix

package store

import "anchor/internal/embedding"

// MapBinaryFile falls back to LoadBinaryFile on platforms without mmap
// support; close is then a no-op and the embedding has no lifetime bound.
func MapBinaryFile(path string) (e *embedding.Embedding, close func() error, err error) {
	e, err = LoadBinaryFile(path)
	if err != nil {
		return nil, nil, err
	}
	return e, func() error { return nil }, nil
}
