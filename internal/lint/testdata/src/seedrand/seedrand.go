// Package seedrand holds fixtures for the seedrand analyzer: the harness
// registers this package as deterministic, so global-source draws and
// clock/env reads must be flagged while explicitly seeded RNGs pass.
package seedrand

import (
	"math/rand"
	"os"
	"time"
)

// Bad draws from the process-global source and the environment.
func Bad() float64 {
	v := rand.Float64()                           // want `global math/rand.Float64 in deterministic package`
	rand.Shuffle(3, func(i, j int) {})            // want `global math/rand.Shuffle`
	n := rand.Intn(10)                            // want `global math/rand.Intn`
	src := rand.NewSource(time.Now().UnixNano())  // want `time.Now in deterministic package`
	if _, ok := os.LookupEnv("ANCHOR_SEED"); ok { // want `os.LookupEnv in deterministic package`
		v++
	}
	return v + float64(n) + rand.New(src).Float64()
}

// Good draws every value from an explicitly seeded generator; the
// constructors themselves are the sanctioned shape and stay silent.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() + float64(rng.Intn(10))
}

// Suppressed documents an intentional clock read in place.
func Suppressed() time.Time {
	//anchorlint:ignore seedrand fixture documents an intentional wall-clock read
	return time.Now()
}
