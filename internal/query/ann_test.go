package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"anchor/internal/ann"
)

// annWords returns the fixture vocabulary w000..w<rows-1>.
func annWords(rows int) []string {
	words := make([]string, rows)
	for i := range words {
		words[i] = fmt.Sprintf("w%03d", i)
	}
	return words
}

// TestANNFullProbeBitwiseExact is the golden oracle test the package doc
// promises: at nprobe >= NList the IVF path scans every row exactly once
// with the exact path's per-candidate arithmetic, so its answers — ids
// AND score bits — must equal the exact engine's, in every precision
// mode and for every worker count.
func TestANNFullProbeBitwiseExact(t *testing.T) {
	const rows, k = 60, 7
	src := quantFixtureSource(rows)
	ctx := context.Background()
	words := annWords(rows)
	full := Mode{ANN: true, NProbe: rows} // >= any NList
	for _, bits := range []int{0, 4, 16} {
		ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1, Bits: bits}
		exactEng := New(src, WithWindow(0))
		want, err := exactEng.NeighborsBatch(ctx, ref, words, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			label := fmt.Sprintf("bits=%d workers=%d", bits, workers)
			eng := New(src, WithWindow(0), WithWorkers(workers))
			got, err := eng.NeighborsBatchMode(ctx, ref, words, k, full)
			if err != nil {
				t.Fatal(err)
			}
			for id := range words {
				neighborsEqualBits(t, label+" batch", got[id], want[id])
			}
			// The singleton entry point takes the same path.
			ns, err := eng.NeighborsMode(ctx, ref, words[11], k, full)
			if err != nil {
				t.Fatal(err)
			}
			neighborsEqualBits(t, label+" singleton", ns, want[11])
		}
	}
}

// TestANNScoresMatchExactPath pins the per-candidate contract at a
// *partial* probe: the ANN answer may miss deep-tail ids, but every id it
// does report must carry the exact path's score for that id, bitwise.
// Results must also keep the exact path's order (similarity descending,
// id-ascending ties) and exclude the query word.
func TestANNScoresMatchExactPath(t *testing.T) {
	const rows, k = 120, 10
	src := quantFixtureSource(rows)
	ctx := context.Background()
	words := annWords(rows)
	for _, bits := range []int{0, 4, 16} {
		ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 2, Bits: bits}
		eng := New(src, WithWindow(0))
		// Exact full ranking: every row's score for every query word.
		exact, err := eng.NeighborsBatch(ctx, ref, words, rows-1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.NeighborsBatchMode(ctx, ref, words, k, Mode{ANN: true, NProbe: 2})
		if err != nil {
			t.Fatal(err)
		}
		for qi, ns := range got {
			scoreOf := map[int]float64{}
			for _, nb := range exact[qi] {
				scoreOf[nb.ID] = nb.Score
			}
			for i, nb := range ns {
				if nb.ID == qi {
					t.Fatalf("bits=%d query %d: self in answer", bits, qi)
				}
				want, ok := scoreOf[nb.ID]
				if !ok || math.Float64bits(nb.Score) != math.Float64bits(want) {
					t.Fatalf("bits=%d query %d: id %d score %v, exact path says %v",
						bits, qi, nb.ID, nb.Score, want)
				}
				if i > 0 {
					prev := ns[i-1]
					if nb.Score > prev.Score || (nb.Score == prev.Score && nb.ID < prev.ID) {
						t.Fatalf("bits=%d query %d: answer out of order at %d", bits, qi, i)
					}
				}
			}
		}
	}
}

// TestANNWorkerInvariance: the lazily built index and the fanned-out
// search must give bitwise-identical answers for every worker count, at
// the default (partial) nprobe where index structure actually matters.
func TestANNWorkerInvariance(t *testing.T) {
	const rows, k = 150, 9
	src := quantFixtureSource(rows)
	ctx := context.Background()
	words := annWords(rows)
	ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 3}
	mode := Mode{ANN: true}
	golden, err := New(src, WithWorkers(1)).NeighborsBatchMode(ctx, ref, words, k, mode)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := New(src, WithWorkers(workers)).NeighborsBatchMode(ctx, ref, words, k, mode)
		if err != nil {
			t.Fatal(err)
		}
		for id := range words {
			neighborsEqualBits(t, fmt.Sprintf("workers=%d word %d", workers, id), got[id], golden[id])
		}
	}
}

// TestANNIndexCachedAndCharged: the index builds once per snapshot (later
// ANN queries reuse it), the stats counters track queries and builds, and
// the built index's bytes are charged to the snapshot's resident
// footprint.
func TestANNIndexCachedAndCharged(t *testing.T) {
	const rows, k = 100, 5
	src := quantFixtureSource(rows)
	ctx := context.Background()
	ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1}
	eng := New(src, WithWindow(0))
	if _, err := eng.Words(ctx, ref); err != nil {
		t.Fatal(err)
	}
	before := eng.Resident()[0].Bytes

	if _, err := eng.NeighborsMode(ctx, ref, "w001", k, Mode{ANN: true}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.ANNQueries != 1 || st.ANNBuilds != 1 {
		t.Fatalf("stats after first ANN query = %+v", st)
	}
	after := eng.Resident()[0].Bytes
	if after <= before {
		t.Fatalf("index bytes not charged: %d -> %d", before, after)
	}

	if _, err := eng.NeighborsBatchMode(ctx, ref, []string{"w002", "w003"}, k, Mode{ANN: true}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.ANNQueries != 3 {
		t.Fatalf("ANNQueries = %d, want 3", st.ANNQueries)
	}
	if st.ANNBuilds != 1 {
		t.Fatalf("index rebuilt: ANNBuilds = %d, want 1", st.ANNBuilds)
	}
	if got := eng.Resident()[0].Bytes; got != after {
		t.Fatalf("bytes changed on cached-index query: %d -> %d", after, got)
	}

	// Exact queries never touch the ANN counters.
	if _, err := eng.Neighbors(ctx, ref, "w004", k); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.ANNQueries != 3 || st.ANNBuilds != 1 {
		t.Fatalf("exact query moved ANN stats: %+v", st)
	}
}

// TestANNSourceWiring: a configured ANNSource owns index resolution — it
// sees the snapshot's identity and geometry, its result is cached like a
// local build, and an index it serves without invoking the build callback
// (the warm-sidecar case) keeps ANNBuilds at zero.
func TestANNSourceWiring(t *testing.T) {
	const rows, k = 80, 5
	src := quantFixtureSource(rows)
	ctx := context.Background()
	ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 6}

	// Pass-through source: delegates to build, records what it was asked.
	var calls int32
	var gotCfg ann.Config
	var gotRows, gotDim int
	passthrough := func(ctx context.Context, r Ref, cfg ann.Config, rows, dim int, build func() (*ann.Index, error)) (*ann.Index, error) {
		atomic.AddInt32(&calls, 1)
		gotCfg, gotRows, gotDim = cfg, rows, dim
		return build()
	}
	eng := New(src, WithWindow(0), WithWorkers(2), WithANNSource(passthrough))
	want, err := eng.NeighborsMode(ctx, ref, "w007", k, Mode{ANN: true, NProbe: rows})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NeighborsMode(ctx, ref, "w008", k, Mode{ANN: true}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("source called %d times, want 1 (index cached)", calls)
	}
	if gotCfg.Seed != ref.Seed || gotCfg.Workers != 2 || gotRows != rows || gotDim != 16 {
		t.Fatalf("source saw cfg=%+v rows=%d dim=%d", gotCfg, gotRows, gotDim)
	}
	if st := eng.Stats(); st.ANNBuilds != 1 {
		t.Fatalf("pass-through source builds = %d, want 1", st.ANNBuilds)
	}

	// Warm source: serves a pre-built index; the engine must not build.
	exact, err := New(src, WithWindow(0)).NeighborsBatch(ctx, ref, []string{"w007"}, k)
	if err != nil {
		t.Fatal(err)
	}
	neighborsEqualBits(t, "pass-through full probe vs exact", want, exact[0])
	var warmIx *ann.Index
	warmEng := New(src, WithWindow(0), WithANNSource(func(ctx context.Context, r Ref, cfg ann.Config, rows, dim int, build func() (*ann.Index, error)) (*ann.Index, error) {
		return warmIx, nil
	}))
	// Build the index out of band, as store.GetANN would from a sidecar.
	s, err := warmEng.snapshot(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	warmIx = ann.Build(s.normalizedRows(1), ann.Config{Seed: ref.Seed})
	got, err := warmEng.NeighborsMode(ctx, ref, "w007", k, Mode{ANN: true, NProbe: rows})
	if err != nil {
		t.Fatal(err)
	}
	neighborsEqualBits(t, "warm source full probe vs exact", got, exact[0])
	if st := warmEng.Stats(); st.ANNBuilds != 0 {
		t.Fatalf("warm source triggered %d builds, want 0", st.ANNBuilds)
	}

	// A failing source surfaces its error (wrapped with the ref).
	boom := errors.New("sidecar store on fire")
	failEng := New(src, WithWindow(0), WithANNSource(func(ctx context.Context, r Ref, cfg ann.Config, rows, dim int, build func() (*ann.Index, error)) (*ann.Index, error) {
		return nil, boom
	}))
	if _, err := failEng.NeighborsMode(ctx, ref, "w007", k, Mode{ANN: true}); !errors.Is(err, boom) {
		t.Fatalf("source error not surfaced: %v", err)
	}
}

// TestANNModeErrors: the ANN entry points keep the exact path's argument
// contract, and a zero Mode routes to the exact path untouched.
func TestANNModeErrors(t *testing.T) {
	const rows = 40
	src := quantFixtureSource(rows)
	ctx := context.Background()
	ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1}
	eng := New(src, WithWindow(0))

	if _, err := eng.NeighborsBatchMode(ctx, ref, []string{"w001"}, 0, Mode{ANN: true}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := eng.NeighborsMode(ctx, ref, "nope", 3, Mode{ANN: true}); err == nil {
		t.Fatal("unknown word accepted")
	} else {
		var uw *UnknownWordError
		if !errors.As(err, &uw) {
			t.Fatalf("unknown word error type: %v", err)
		}
	}
	// Zero mode delegates to the exact path: no index, no ANN counters.
	if _, err := eng.NeighborsMode(ctx, ref, "w001", 3, Mode{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.ANNQueries != 0 || st.ANNBuilds != 0 {
		t.Fatalf("zero mode touched ANN stats: %+v", st)
	}
	// Empty batch is a no-op answer, not a panic.
	out, err := eng.NeighborsBatchMode(ctx, ref, nil, 3, Mode{ANN: true})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d answers", err, len(out))
	}
}

// TestNeighborDeltaModeFullProbe: the instability measure through the
// ANN path at full probe equals the exact measure bitwise.
func TestNeighborDeltaModeFullProbe(t *testing.T) {
	const rows, k = 60, 5
	src := quantFixtureSource(rows)
	ctx := context.Background()
	words := []string{"w003", "w017", "w042"}
	eng := New(src, WithWindow(0))
	want, err := eng.NeighborDelta(ctx, ref17(), ref18(), words, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.NeighborDeltaMode(ctx, ref17(), ref18(), words, k, Mode{ANN: true, NProbe: rows})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Word != want[i].Word || got[i].Shared != want[i].Shared ||
			math.Float64bits(got[i].Overlap) != math.Float64bits(want[i].Overlap) {
			t.Fatalf("delta %d: got %+v, want %+v", i, got[i], want[i])
		}
		neighborsEqualBits(t, "delta A "+words[i], got[i].A, want[i].A)
		neighborsEqualBits(t, "delta B "+words[i], got[i].B, want[i].B)
	}
}
