package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RequestPathPackages lists the packages whose goroutines and locks sit
// on the serving path, where a leaked goroutine or a lock held across a
// blocking call turns one slow request into a stalled server. Tests may
// override the list to cover fixtures.
var RequestPathPackages = []string{
	"anchor/internal/store",
	"anchor/internal/query",
	"anchor/internal/serve",
	"anchor/internal/faults",
	"anchor/internal/parallel",
}

// mutexMethods maps the sync lock/unlock method FullNames to their
// pairing kind: Lock pairs with Unlock, RLock with RUnlock.
var mutexMethods = map[string]string{
	"(*sync.Mutex).Lock":      "Lock",
	"(*sync.Mutex).Unlock":    "Unlock",
	"(*sync.RWMutex).Lock":    "Lock",
	"(*sync.RWMutex).Unlock":  "Unlock",
	"(*sync.RWMutex).RLock":   "RLock",
	"(*sync.RWMutex).RUnlock": "RUnlock",
}

// syncBlockingFuncs are direct calls treated as blocking for the
// held-lock check: sleeps (including injected fault latency) and file
// I/O.
var syncBlockingFuncs = map[[2]string]bool{
	{"time", "Sleep"}: true, {faultsPackage, "Sleep"}: true,
	{"os", "Open"}: true, {"os", "OpenFile"}: true, {"os", "Create"}: true,
	{"os", "ReadFile"}: true, {"os", "WriteFile"}: true,
	{"os", "CreateTemp"}: true, {"os", "ReadDir"}: true,
	{"os", "Remove"}: true, {"os", "Rename"}: true,
}

// SyncGuard enforces the request-path concurrency clauses: goroutines
// launched there are joined in the same function (or provably bounded by
// the request's ctx), locks are never copied by value, and no mutex is
// held across a blocking call.
var SyncGuard = &Analyzer{
	Name: "syncguard",
	Doc: "flags request-path goroutines with no join (Wait) in the " +
		"launching function and no ctx bound, functions that copy a " +
		"sync.Mutex/RWMutex by value, and locks held across blocking " +
		"calls (sleeps, file I/O)",
	Run: runSyncGuard,
}

func runSyncGuard(pass *Pass) error {
	if !pkgInList(pass.PkgPath, RequestPathPackages) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutineJoin(pass, fd)
			checkLockCopy(pass, fd)
			checkLockBlocking(pass, fd)
		}
	}
	return nil
}

// checkGoroutineJoin requires each `go` statement's enclosing function
// to contain a Wait() join, unless the goroutine body is bounded by the
// function's ctx (it selects on ctx.Done / checks ctx.Err, so it ends
// with the request).
func checkGoroutineJoin(pass *Pass, fd *ast.FuncDecl) {
	hasWait := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				hasWait = true
			}
		}
		return !hasWait
	})
	if hasWait {
		return
	}
	ctxObj := ctxParam(pass.TypesInfo, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if ctxObj != nil {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && mentionsObj(pass.TypesInfo, lit, ctxObj) {
				return true
			}
		}
		pass.Reportf(g.Pos(),
			"goroutine in %s has no join: request-path goroutines must be awaited (WaitGroup/errgroup Wait) in the launching function or bounded by its ctx",
			fd.Name.Name)
		return true
	})
}

// checkLockCopy flags value receivers and parameters whose type contains
// a sync.Mutex or sync.RWMutex: the copy and the original lock
// independently.
func checkLockCopy(pass *Pass, fd *ast.FuncDecl) {
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, field := range fields {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t, make(map[types.Type]bool)) {
			pass.Reportf(field.Type.Pos(),
				"%s receives %s by value, copying its lock: pass a pointer so all paths contend on one mutex",
				fd.Name.Name, t.String())
		}
	}
}

// containsLock reports whether t (by value) embeds a sync.Mutex or
// sync.RWMutex anywhere.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch s := t.String(); s {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockEvent is one lock, unlock, or blocking call at a position within a
// function body.
type lockEvent struct {
	pos      token.Pos
	recv     string // lock/unlock receiver expression, e.g. "s.mu"
	kind     string // "Lock", "RLock", "Unlock", "RUnlock"
	deferred bool
}

// checkLockBlocking pairs each Lock/RLock with its first matching
// Unlock/RUnlock on the same receiver expression and reports blocking
// calls inside the held interval. A deferred unlock holds the lock to
// the end of the function.
func checkLockBlocking(pass *Pass, fd *ast.FuncDecl) {
	var locks, unlocks []lockEvent
	type blockCall struct {
		pos  token.Pos
		name string
	}
	var blocking []blockCall
	deferCalls := make(map[token.Pos]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call = n.Call
			deferred = true
			// The call node is revisited as Inspect descends into the
			// DeferStmt; record it so the plain-call case skips it.
			deferCalls[call.Pos()] = true
		case *ast.CallExpr:
			if deferCalls[n.Pos()] {
				return true
			}
			call = n
		default:
			return true
		}
		if pkgPath, name, ok := pkgFunc(pass.TypesInfo, call); ok {
			if syncBlockingFuncs[[2]string{pkgPath, name}] {
				blocking = append(blocking, blockCall{call.Pos(), pkgPath + "." + name})
			}
			return true
		}
		fn := Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		kind, isMutex := mutexMethods[fn.FullName()]
		if !isMutex {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ev := lockEvent{pos: call.Pos(), recv: types.ExprString(sel.X), kind: kind, deferred: deferred}
		if kind == "Lock" || kind == "RLock" {
			locks = append(locks, ev)
		} else {
			unlocks = append(unlocks, ev)
		}
		return true
	})
	for _, l := range locks {
		release := l.kind[:len(l.kind)-4] + "Unlock" // Lock→Unlock, RLock→RUnlock
		end := fd.Body.End()
		for _, u := range unlocks {
			if u.pos > l.pos && u.recv == l.recv && u.kind == release && !u.deferred {
				end = u.pos
				break
			}
		}
		for _, b := range blocking {
			if b.pos > l.pos && b.pos < end {
				pass.Reportf(b.pos,
					"%s held across %s in %s: release the lock before blocking, or every request sharing it stalls",
					l.recv, b.name, fd.Name.Name)
			}
		}
	}
}
