package corpus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText writes the corpus as whitespace-tokenized text, one sentence
// per line — the input format of the original word2vec/GloVe tools, so
// embeddings trained by external implementations stay comparable.
func (c *Corpus) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, sent := range c.Sentences {
		for i, tok := range sent {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return fmt.Errorf("corpus: write: %w", err)
				}
			}
			if _, err := bw.WriteString(c.Vocab.Words[tok]); err != nil {
				return fmt.Errorf("corpus: write: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("corpus: write: %w", err)
		}
	}
	return bw.Flush()
}

// FromText builds a corpus from whitespace-tokenized text (one sentence
// per line), keeping words that occur at least minCount times. This is
// how the library consumes REAL corpora instead of the synthetic
// generator: pipe in any pre-processed Wikipedia dump and the rest of the
// pipeline (training, compression, measures, downstream tasks that take a
// corpus) works unchanged.
//
// Word ids are assigned by descending frequency (ties broken
// lexicographically), so id order equals frequency rank.
func FromText(r io.Reader, minCount int) (*Corpus, error) {
	if minCount < 1 {
		minCount = 1
	}
	counts := map[string]int64{}
	var lines [][]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		lines = append(lines, fields)
		for _, w := range fields {
			counts[w]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: read: %w", err)
	}

	type wc struct {
		w string
		n int64
	}
	kept := make([]wc, 0, len(counts))
	for w, n := range counts {
		if n >= int64(minCount) {
			kept = append(kept, wc{w, n})
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("corpus: no words with count >= %d", minCount)
	}
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].n != kept[b].n {
			return kept[a].n > kept[b].n
		}
		return kept[a].w < kept[b].w
	})

	vocab := &Vocab{Words: make([]string, len(kept)), Index: make(map[string]int, len(kept))}
	for i, k := range kept {
		vocab.Words[i] = k.w
		vocab.Index[k.w] = i
	}

	c := &Corpus{Vocab: vocab, Counts: make([]int64, len(kept))}
	for _, fields := range lines {
		sent := make([]int32, 0, len(fields))
		for _, w := range fields {
			id, ok := vocab.Index[w]
			if !ok {
				continue // below min count
			}
			sent = append(sent, int32(id))
			c.Counts[id]++
			c.Tokens++
		}
		if len(sent) > 0 {
			c.Sentences = append(c.Sentences, sent)
			c.Docs++
		}
	}
	return c, nil
}
