// Package matrix implements the dense linear algebra used by anchor:
// a row-major float64 matrix, cache-blocked goroutine-parallel matrix
// products (bitwise identical for every worker count — see kernels.go),
// SVD via Gram eigendecomposition for tall-thin inputs with a one-sided
// Jacobi fallback, least squares, and the orthogonal Procrustes solution.
// All operations are written against the flat backing slice for
// cache-friendly access.
package matrix

import (
	"fmt"
	"math/rand"

	"anchor/internal/floats"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps data as an r-by-c matrix without copying.
// len(data) must equal r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// NewDenseRand returns an r-by-c matrix with entries drawn uniformly from
// [-scale, scale] using rng.
func NewDenseRand(r, c int, scale float64, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * scale
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice sharing the matrix's backing storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// SetCol assigns v to column j.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("matrix: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Scale multiplies every entry by alpha in place and returns m.
func (m *Dense) Scale(alpha float64) *Dense {
	floats.Scale(alpha, m.Data)
	return m
}

// Add computes m += o element-wise in place and returns m.
func (m *Dense) Add(o *Dense) *Dense {
	m.mustSameShape(o)
	floats.Add(m.Data, o.Data)
	return m
}

// Sub computes m -= o element-wise in place and returns m.
func (m *Dense) Sub(o *Dense) *Dense {
	m.mustSameShape(o)
	floats.Sub(m.Data, o.Data)
	return m
}

func (m *Dense) mustSameShape(o *Dense) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 { return floats.Norm(m.Data) }

// Mul returns the matrix product a*b, computed by the blocked parallel
// kernel on all CPUs. The result is bitwise identical for every worker
// count (see kernels.go for the determinism contract).
func Mul(a, b *Dense) *Dense { return MulWorkers(a, b, 0) }

// MulATB returns aᵀ*b without materializing aᵀ, computed by the blocked
// parallel kernel on all CPUs.
func MulATB(a, b *Dense) *Dense { return MulATBWorkers(a, b, 0) }

// MulABT returns a*bᵀ without materializing bᵀ, computed by the blocked
// parallel kernel on all CPUs.
func MulABT(a, b *Dense) *Dense { return MulABTWorkers(a, b, 0) }

// MulVec returns the matrix-vector product m*x.
func MulVec(m *Dense, x []float64) []float64 {
	if m.Cols != len(x) {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = floats.Dot(m.Row(i), x)
	}
	return out
}

// MulVecT returns mᵀ*x.
func MulVecT(m *Dense, x []float64) []float64 {
	if m.Rows != len(x) {
		panic("matrix: MulVecT dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		floats.Axpy(xi, m.Row(i), out)
	}
	return out
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with v on the diagonal.
func Diag(v []float64) *Dense {
	m := NewDense(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}
