package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"unsafe"

	"anchor/internal/embedding"
	"anchor/internal/matrix"
)

// Binary embedding artifact format ("ANCB"), the store's zero-copy fast
// path. The gob tier decodes every float through reflection; this format
// lays the vector matrix out as a raw little-endian row-major payload at a
// 64-byte-aligned offset, so a load is one os.ReadFile (or mmap) plus a
// header check — the payload bytes are reinterpreted in place as the
// embedding's float64 storage with no per-row allocation and no copy.
//
// Layout (all integers little-endian):
//
//	[0:4)   magic "ANCB"
//	[4:8)   format version (currently 1)
//	[8:12)  element kind: 0 = float64, 1 = float32
//	[12:16) Meta.Dim
//	[16:24) rows
//	[24:32) cols
//	[32:40) Meta.Seed
//	[40:44) Meta.Precision
//	[44:48) len(algorithm string)
//	[48:52) len(corpus string)
//	[52:56) len(words blob)
//	[56:64) payload offset (from file start, 64-byte aligned)
//	[64:..) algorithm, corpus, words ("\n"-joined), zero padding
//	[payload offset:) rows x cols elements, row-major
//
// Float64 payloads preserve bits exactly, so a binary load is bitwise
// identical to the gob artifact it was written alongside. Float32 payloads
// store float32(v) per element — lossless exactly when every value is
// float32-representable (e.g. heavily quantized embeddings), at half the
// bytes.

// ElemKind selects the binary payload's element width.
type ElemKind uint32

const (
	// Float64 stores each element as its exact float64 bits (lossless).
	Float64 ElemKind = 0
	// Float32 stores float32(v) per element: half the bytes, exact only
	// for float32-representable values.
	Float32 ElemKind = 1
)

const (
	binMagic = "ANCB"
	// BinaryVersion is the current binary artifact format version. Readers
	// reject other versions: the format evolves by bumping it.
	BinaryVersion = 1
	binHeaderLen  = 64
	binAlign      = 64
)

// BinaryExt is the file extension of binary artifacts in the disk tier.
const BinaryExt = ".bin"

// hostLittleEndian reports whether the host stores integers little-endian
// (the only layout the zero-copy cast is valid for; big-endian hosts fall
// back to element-wise decoding).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func elemSize(kind ElemKind) int {
	if kind == Float32 {
		return 4
	}
	return 8
}

// wordsBlob joins the vocabulary into the on-disk blob. Words cannot
// contain "\n" (the corpus tokenizer never produces one); an embedding
// with no vocabulary stores an empty blob.
func wordsBlob(words []string) []byte {
	if len(words) == 0 {
		return nil
	}
	return []byte(strings.Join(words, "\n"))
}

func splitWordsBlob(blob []byte) []string {
	if len(blob) == 0 {
		return nil
	}
	return strings.Split(string(blob), "\n")
}

// WriteBinary writes e to w in the binary artifact format with the given
// payload element kind.
func WriteBinary(w io.Writer, e *embedding.Embedding, kind ElemKind) error {
	if kind != Float64 && kind != Float32 {
		return fmt.Errorf("store: unknown element kind %d", kind)
	}
	algo, corp := []byte(e.Meta.Algorithm), []byte(e.Meta.Corpus)
	words := wordsBlob(e.Words)
	varLen := len(algo) + len(corp) + len(words)
	payloadOff := (binHeaderLen + varLen + binAlign - 1) / binAlign * binAlign

	var h [binHeaderLen]byte
	copy(h[0:4], binMagic)
	binary.LittleEndian.PutUint32(h[4:8], BinaryVersion)
	binary.LittleEndian.PutUint32(h[8:12], uint32(kind))
	binary.LittleEndian.PutUint32(h[12:16], uint32(e.Meta.Dim))
	binary.LittleEndian.PutUint64(h[16:24], uint64(e.Rows()))
	binary.LittleEndian.PutUint64(h[24:32], uint64(e.Dim()))
	binary.LittleEndian.PutUint64(h[32:40], uint64(e.Meta.Seed))
	binary.LittleEndian.PutUint32(h[40:44], uint32(e.Meta.Precision))
	binary.LittleEndian.PutUint32(h[44:48], uint32(len(algo)))
	binary.LittleEndian.PutUint32(h[48:52], uint32(len(corp)))
	binary.LittleEndian.PutUint32(h[52:56], uint32(len(words)))
	binary.LittleEndian.PutUint64(h[56:64], uint64(payloadOff))

	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("store: write binary header: %w", err)
	}
	for _, b := range [][]byte{algo, corp, words, make([]byte, payloadOff-binHeaderLen-varLen)} {
		if len(b) == 0 {
			continue
		}
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("store: write binary artifact: %w", err)
		}
	}
	return writePayload(w, e.Vectors.Data, kind)
}

// writePayload streams the matrix data as little-endian elements. On
// little-endian hosts the float64 payload is the matrix storage itself,
// written in one call.
func writePayload(w io.Writer, data []float64, kind ElemKind) error {
	if kind == Float64 && hostLittleEndian && len(data) > 0 {
		bytes := unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), len(data)*8)
		_, err := w.Write(bytes)
		if err != nil {
			return fmt.Errorf("store: write binary payload: %w", err)
		}
		return nil
	}
	const chunk = 16 * 1024
	esz := elemSize(kind)
	buf := make([]byte, chunk*esz)
	for len(data) > 0 {
		n := len(data)
		if n > chunk {
			n = chunk
		}
		for i, v := range data[:n] {
			if kind == Float32 {
				binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
			} else {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
			}
		}
		if _, err := w.Write(buf[:n*esz]); err != nil {
			return fmt.Errorf("store: write binary payload: %w", err)
		}
		data = data[n:]
	}
	return nil
}

// DecodeBinary decodes a binary artifact from data. When the payload is
// float64, the host is little-endian, and the payload offset lands
// 8-byte-aligned in memory, the returned embedding's matrix aliases data
// directly (zero copy) — the caller must keep data immutable and alive for
// the embedding's lifetime (os.ReadFile allocations satisfy this; for
// mmap, see MapBinaryFile). Other payloads decode through one bulk
// allocation; nothing is allocated per row either way.
func DecodeBinary(data []byte) (*embedding.Embedding, error) {
	if len(data) < binHeaderLen {
		return nil, fmt.Errorf("store: binary artifact truncated: %d bytes < %d-byte header", len(data), binHeaderLen)
	}
	if string(data[0:4]) != binMagic {
		return nil, fmt.Errorf("store: not a binary artifact (magic %q)", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != BinaryVersion {
		return nil, fmt.Errorf("store: binary artifact version %d, want %d", v, BinaryVersion)
	}
	kind := ElemKind(binary.LittleEndian.Uint32(data[8:12]))
	if kind != Float64 && kind != Float32 {
		return nil, fmt.Errorf("store: unknown element kind %d", kind)
	}
	metaDim := int(int32(binary.LittleEndian.Uint32(data[12:16])))
	rows := int(binary.LittleEndian.Uint64(data[16:24]))
	cols := int(binary.LittleEndian.Uint64(data[24:32]))
	seed := int64(binary.LittleEndian.Uint64(data[32:40]))
	prec := int(int32(binary.LittleEndian.Uint32(data[40:44])))
	algoLen := int(binary.LittleEndian.Uint32(data[44:48]))
	corpLen := int(binary.LittleEndian.Uint32(data[48:52]))
	wordsLen := int(binary.LittleEndian.Uint32(data[52:56]))
	payloadOff := int(binary.LittleEndian.Uint64(data[56:64]))

	if rows < 0 || cols < 0 || rows > math.MaxInt/8/max(cols, 1) {
		return nil, fmt.Errorf("store: corrupt binary artifact: %dx%d matrix", rows, cols)
	}
	if binHeaderLen+algoLen+corpLen+wordsLen > payloadOff || payloadOff%binAlign != 0 {
		return nil, fmt.Errorf("store: corrupt binary artifact: payload offset %d under %d header bytes",
			payloadOff, binHeaderLen+algoLen+corpLen+wordsLen)
	}
	want := payloadOff + rows*cols*elemSize(kind)
	if len(data) != want {
		return nil, fmt.Errorf("store: corrupt binary artifact: %d bytes, want %d for %dx%d %s",
			len(data), want, rows, cols, map[ElemKind]string{Float64: "float64", Float32: "float32"}[kind])
	}

	off := binHeaderLen
	algo := string(data[off : off+algoLen])
	off += algoLen
	corp := string(data[off : off+corpLen])
	off += corpLen
	words := splitWordsBlob(data[off : off+wordsLen])
	if words != nil && len(words) != rows {
		return nil, fmt.Errorf("store: corrupt binary artifact: %d words for %d rows", len(words), rows)
	}

	vals := decodePayload(data[payloadOff:], rows*cols, kind)
	return &embedding.Embedding{
		Vectors: matrix.NewDenseData(rows, cols, vals),
		Words:   words,
		Meta: embedding.Meta{
			Algorithm: algo, Corpus: corp, Dim: metaDim, Seed: seed, Precision: prec,
		},
	}, nil
}

// decodePayload reinterprets (or decodes) n elements from payload.
func decodePayload(payload []byte, n int, kind ElemKind) []float64 {
	if n == 0 {
		return nil
	}
	if kind == Float64 && hostLittleEndian && uintptr(unsafe.Pointer(&payload[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), n)
	}
	vals := make([]float64, n)
	if kind == Float32 {
		for i := range vals {
			vals[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:])))
		}
	} else {
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	}
	return vals
}

// SaveBinaryFile writes e to path in the binary format (not atomically;
// the store's disk tier goes through its own temp-file + rename).
func SaveBinaryFile(path string, e *embedding.Embedding, kind ElemKind) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := WriteBinary(f, e, kind); err != nil {
		return err
	}
	return f.Sync()
}

// LoadBinaryFile reads a binary artifact in one os.ReadFile. The float64
// payload is used in place (see DecodeBinary), so the load allocates the
// file buffer and nothing per row.
func LoadBinaryFile(path string) (*embedding.Embedding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return DecodeBinary(data)
}
