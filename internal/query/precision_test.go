package query

import (
	"context"
	"fmt"
	"math"
	"testing"

	"anchor/internal/compress"
	"anchor/internal/embedding"
	"anchor/internal/floats"
)

// quantFixtureSource derives quantized snapshots from fixtureSource's
// deterministic full-precision bases: ref.Bits in 1..31 quantizes the
// base artifact through the real compress path (recording clip and
// precision in Meta), 0/32 serves the base unchanged. The same Ref
// always yields bitwise-identical artifacts.
func quantFixtureSource(rows int) Source {
	full := fixtureSource(rows, nil)
	return func(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
		base := ref
		base.Bits = 0
		e, err := full(ctx, base)
		if err != nil || ref.Bits == 0 || ref.Bits >= 32 {
			return e, err
		}
		clip := compress.OptimalClip(e.Vectors.Data, ref.Bits)
		return compress.Quantize(e, ref.Bits, clip), nil
	}
}

// referencePrecisionNeighbors is the dequantize-then-float64 oracle the
// golden tests hold the compact paths to: raw float64 rows (a quantized
// artifact's values ARE its dequantized rows), serial single-accumulator
// raw dot products, then sim = (dot·invQ)·invJ, then top-k by similarity
// descending with id-ascending tie-breaks, self excluded.
func referencePrecisionNeighbors(e *embedding.Embedding, id, k int) []Neighbor {
	n := e.Rows()
	inv := make([]float64, n)
	for i := 0; i < n; i++ {
		if nm := floats.Norm(e.Vector(i)); nm != 0 {
			inv[i] = 1 / nm
		}
	}
	type cand struct {
		id  int
		sim float64
	}
	var cands []cand
	for j := 0; j < n; j++ {
		if j == id {
			continue
		}
		sim := (floats.Dot(e.Vector(id), e.Vector(j)) * inv[id]) * inv[j]
		cands = append(cands, cand{j, sim})
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.sim > a.sim || (b.sim == a.sim && b.id < a.id) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]Neighbor, k)
	for i := range out {
		out[i] = Neighbor{Word: fmt.Sprintf("w%03d", cands[i].id), ID: cands[i].id, Score: cands[i].sim}
	}
	return out
}

func neighborsEqualBits(t *testing.T, label string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s neighbor %d: id %d, want %d", label, i, got[i].ID, want[i].ID)
		}
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s neighbor %d: score %x, want %x", label, i,
				math.Float64bits(got[i].Score), math.Float64bits(want[i].Score))
		}
	}
}

// TestQuantizedNeighborsGoldenBitEquality is the tentpole's golden test:
// for every precision mode (b<=8 packed codes, 9..31 float32, both
// compared against dequantize-then-float64 execution), every worker
// count, and every batch shape (singleton, one NeighborsBatch block,
// micro-batched concurrent singletons), the engine's answers must be
// bitwise identical to the reference.
func TestQuantizedNeighborsGoldenBitEquality(t *testing.T) {
	const rows, k = 60, 7
	src := quantFixtureSource(rows)
	ctx := context.Background()
	words := make([]string, rows)
	for i := range words {
		words[i] = fmt.Sprintf("w%03d", i)
	}
	for _, bits := range []int{1, 4, 8, 16} {
		ref := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1, Bits: bits}
		art, err := src(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]Neighbor, rows)
		for id := range want {
			want[id] = referencePrecisionNeighbors(art, id, k)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			label := fmt.Sprintf("bits=%d workers=%d", bits, workers)

			// Singleton execution: no gather window, one query per block.
			single := New(src, WithWindow(0), WithWorkers(workers))
			for id, w := range words {
				ns, err := single.Neighbors(ctx, ref, w, k)
				if err != nil {
					t.Fatal(err)
				}
				neighborsEqualBits(t, label+" singleton "+w, ns, want[id])
			}

			// One multi-word block.
			batched := New(src, WithWindow(0), WithWorkers(workers))
			all, err := batched.NeighborsBatch(ctx, ref, words, k)
			if err != nil {
				t.Fatal(err)
			}
			for id := range words {
				neighborsEqualBits(t, label+" batch", all[id], want[id])
			}

			// Micro-batched concurrent singletons through the gather window.
			gathered := New(src, WithWorkers(workers), WithMaxBatch(13))
			for id, ns := range queryAll(t, gathered, ref, words, k) {
				neighborsEqualBits(t, label+" gathered", ns, want[id])
			}
		}
	}
}

// TestQuantizedSnapshotResidency: a b<=8 artifact must go resident as
// packed codes at >= 4x (here ~8x) fewer bytes than the float64 path,
// a 9..31-bit artifact as float32 rows, and both must reconstruct any
// vector bitwise. This is what "8-16x more snapshots per byte of budget"
// is made of.
func TestQuantizedSnapshotResidency(t *testing.T) {
	const rows = 400
	src := quantFixtureSource(rows)
	ctx := context.Background()
	eng := New(src, WithWindow(0))
	mk := func(bits int) Ref { return Ref{Algo: "cbow", Year: 2017, Dim: 64, Seed: 1, Bits: bits} }
	for _, bits := range []int{32, 16, 8, 1} {
		if _, err := eng.Words(ctx, mk(bits)); err != nil {
			t.Fatal(err)
		}
	}
	infos := map[int]SnapshotInfo{}
	for _, in := range eng.Resident() {
		infos[in.Bits] = in
	}
	if got := infos[32].Mode; got != "float64" {
		t.Fatalf("32-bit mode %q", got)
	}
	if got := infos[16].Mode; got != "float32" {
		t.Fatalf("16-bit mode %q, want float32", got)
	}
	for _, b := range []int{1, 8} {
		if got := infos[b].Mode; got != "codes" {
			t.Fatalf("%d-bit mode %q, want codes", b, got)
		}
	}
	if f64, c8 := infos[32].Bytes, infos[8].Bytes; c8*4 > f64 {
		t.Fatalf("8-bit snapshot %d bytes vs float64 %d: want >= 4x reduction", c8, f64)
	}
	if f64, f32 := infos[32].Bytes, infos[16].Bytes; f32*2 > f64 {
		t.Fatalf("float32 snapshot %d bytes vs float64 %d: want >= 2x reduction", f32, f64)
	}

	// Vector lookups reconstruct the artifact's rows exactly in every mode.
	for _, bits := range []int{32, 16, 8, 1} {
		art, err := src(ctx, mk(bits))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{0, 7, rows - 1} {
			_, vec, err := eng.Vector(ctx, mk(bits), fmt.Sprintf("w%03d", id))
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range vec {
				if math.Float64bits(v) != math.Float64bits(art.Vector(id)[j]) {
					t.Fatalf("bits=%d: vector %d[%d] differs", bits, id, j)
				}
			}
		}
	}
}

// TestQuantizedRefsAreDistinctSnapshots: the same (algo, year, dim, seed)
// at different precisions are different cache entries with different
// ref strings.
func TestQuantizedRefsAreDistinctSnapshots(t *testing.T) {
	r := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1}
	if r.String() != "cbow-wiki17-d16-s1" {
		t.Fatalf("full-precision ref string %q changed", r.String())
	}
	r.Bits = 8
	if r.String() != "cbow-wiki17-d16-s1-b8" {
		t.Fatalf("quantized ref string %q", r.String())
	}
	src := quantFixtureSource(30)
	eng := New(src, WithWindow(0))
	ctx := context.Background()
	for _, bits := range []int{0, 8} {
		rr := Ref{Algo: "cbow", Year: 2017, Dim: 16, Seed: 1, Bits: bits}
		if _, err := eng.Words(ctx, rr); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.SnapshotLoads != 2 {
		t.Fatalf("loads = %d, want 2 distinct snapshots", st.SnapshotLoads)
	}
}
