// Package tasks is the pluggable registry of downstream tasks: the
// consumers of an embedding pair whose prediction disagreement defines
// downstream instability (Definition 1). Each task is registered by name
// with a factory that binds it to a corpus snapshot (generating its
// dataset once); the resulting Evaluator trains the Wiki'17/Wiki'18 model
// pair on any embedding pair and reports disagreement and quality.
//
// The built-in tasks are the paper's: the four sentiment datasets with the
// linear bag-of-words model (sst2, mr, subj, mpqa) and CoNLL-2003-style
// NER with the BiLSTM tagger (conll2003). New tasks plug in with Register.
package tasks

import (
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/registry"
)

// Result is one downstream evaluation of an embedding pair.
type Result struct {
	// Disagreement is the prediction disagreement between the two models
	// on the task's test split, in percent (Definition 1).
	Disagreement float64
	// Accuracy is the Wiki'17 model's test quality (accuracy for
	// sentiment, entity token F1 for NER).
	Accuracy float64
}

// Evaluator is a downstream task bound to its generated dataset.
// Implementations must be safe for concurrent Eval calls and
// deterministic: Result is a pure function of (e17, e18, seed).
type Evaluator interface {
	// Task returns the registered task name.
	Task() string
	// Eval trains the model pair on (e17, e18) and scores the test split.
	// train runs the two training closures; callers pass a scheduler that
	// may run them concurrently (the closures share no mutable state, so
	// the schedule cannot change the result).
	Eval(e17, e18 *embedding.Embedding, seed int64, train func(f17, f18 func())) Result
}

// Factory builds a task evaluator from the Wiki'17 snapshot. Dataset
// generation must be deterministic in (corpus, cfg).
type Factory func(c17 *corpus.Corpus, ccfg corpus.Config) (Evaluator, error)

// reg is the pluggable task registry. Registration order is the reporting
// order (the four sentiment tasks, then NER).
var reg = registry.New[Factory]("task")

// Register makes a task factory resolvable by name. Panics on duplicate
// or empty names; call from init.
func Register(name string, f Factory) { reg.Register(name, f) }

// Names returns the registered task names in registration order.
func Names() []string { return reg.Names() }

// CheckName returns nil when the task is registered, else a
// *registry.UnknownError naming the known tasks. Unlike New it builds
// nothing, so it is free to call before expensive work.
func CheckName(name string) error { return reg.Check(name) }

// New builds the named task's evaluator for the given snapshot. Unknown
// names return a *registry.UnknownError.
func New(name string, c17 *corpus.Corpus, ccfg corpus.Config) (Evaluator, error) {
	f, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(c17, ccfg)
}
