// Package registry provides the small ordered name registry shared by the
// pluggable subsystems (embedding trainers, distance measures, downstream
// tasks). A Registry maps names to factories, preserves registration order
// for stable reporting, and is safe for concurrent use so init-time
// registration and request-time lookup never race.
package registry

import (
	"fmt"
	"sync"
)

// Registry is an ordered, concurrency-safe name -> value map.
type Registry[T any] struct {
	// kind names the registry in panic messages ("trainer", "measure", ...).
	kind string

	mu    sync.RWMutex
	names []string
	items map[string]T
}

// New returns an empty registry; kind is used in error messages.
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, items: map[string]T{}}
}

// Register adds a named entry. Names must be unique and non-empty:
// registration happens at init time, so a collision is a programming error
// and panics rather than returning an error nobody checks.
func (r *Registry[T]) Register(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("registry: empty %s name", r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.items[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %q", r.kind, name))
	}
	r.items[name] = v
	r.names = append(r.names, name)
}

// Get returns the entry registered under name.
func (r *Registry[T]) Get(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.items[name]
	return v, ok
}

// Names returns the registered names in registration order. The returned
// slice is a copy.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// Lookup returns the entry for name or an *UnknownError listing the known
// names — the shared error shape the service layer maps to HTTP 400.
func (r *Registry[T]) Lookup(name string) (T, error) {
	if v, ok := r.Get(name); ok {
		return v, nil
	}
	var zero T
	return zero, &UnknownError{Kind: r.kind, Name: name, Known: r.Names()}
}

// Check returns nil when name is registered and the same *UnknownError a
// Lookup would, without constructing anything — the cheap request-time
// validation the service layer runs before expensive work.
func (r *Registry[T]) Check(name string) error {
	if _, ok := r.Get(name); ok {
		return nil
	}
	return &UnknownError{Kind: r.kind, Name: name, Known: r.Names()}
}

// UnknownError reports a lookup of a name nobody registered.
type UnknownError struct {
	Kind  string // what kind of thing was looked up ("trainer", "task", ...)
	Name  string // the unknown name
	Known []string
}

// Error implements error.
func (e *UnknownError) Error() string {
	return fmt.Sprintf("unknown %s %q (known: %v)", e.Kind, e.Name, e.Known)
}
