package core

import (
	"math"
	"math/rand"

	"anchor/internal/embedding"
	"anchor/internal/matrix"
)

// PredictionDisagreement implements Definition 1 (downstream instability)
// with the zero-one loss: the fraction of heldout predictions on which two
// downstream models disagree. The two slices must be the aligned
// predictions of the models trained on X and X̃ over the same heldout set.
func PredictionDisagreement[T comparable](a, b []T) float64 {
	if len(a) != len(b) {
		panic("core: prediction slices must align")
	}
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a))
}

// PredictionDisagreementPct returns PredictionDisagreement as a percentage,
// the unit used throughout the paper's figures and tables.
func PredictionDisagreementPct[T comparable](a, b []T) float64 {
	return 100 * PredictionDisagreement(a, b)
}

// LinearRegressionPredictions returns the in-sample predictions of the
// least-squares linear model trained on data matrix X with label vector y:
// X(XᵀX)⁻¹Xᵀy = UUᵀy, where U holds X's left singular vectors. This is
// the closed form Proposition 1 builds on.
func LinearRegressionPredictions(x *embedding.Embedding, y []float64) []float64 {
	u := thinSVD(x).U
	uty := matrix.MulVecT(u, y)
	return matrix.MulVec(u, uty)
}

// ExpectedLinearDisagreement estimates, by Monte Carlo over nSamples label
// vectors y ~ N(0, Σ), the normalized expected squared disagreement
// between the linear regression models trained on x and xt:
//
//	E[Σᵢ (f_y(xᵢ) − f̃_y(x̃ᵢ))²] / E[‖y‖²].
//
// Proposition 1 states this equals EigenspaceInstability.Distance(x, xt)
// when Σ matches the measure's anchor covariance; the property tests use
// this function to verify the theory numerically. sigmaSqrt must satisfy
// Σ = sigmaSqrt · sigmaSqrtᵀ.
func ExpectedLinearDisagreement(x, xt *embedding.Embedding, sigmaSqrt *matrix.Dense, nSamples int, seed int64) float64 {
	n := x.Rows()
	if sigmaSqrt.Rows != n {
		panic("core: sigmaSqrt row mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	var num, den float64
	g := make([]float64, sigmaSqrt.Cols)
	for s := 0; s < nSamples; s++ {
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		y := matrix.MulVec(sigmaSqrt, g)
		pa := LinearRegressionPredictions(x, y)
		pb := LinearRegressionPredictions(xt, y)
		for i := range y {
			d := pa[i] - pb[i]
			num += d * d
			den += y[i] * y[i]
		}
	}
	return num / den
}

// AnchorCovarianceSqrt returns a matrix S with S·Sᵀ = (EEᵀ)^α + (ẼẼᵀ)^α,
// the covariance the eigenspace instability measure uses; sampling
// y = S·g with g ~ N(0, I) yields labels with that covariance. S is the
// horizontal concatenation of U_E R_E^α and U_Ẽ R_Ẽ^α.
func AnchorCovarianceSqrt(e, eTilde *embedding.Embedding, alpha float64) *matrix.Dense {
	se := thinSVD(e)
	st := thinSVD(eTilde)
	n := e.Rows()
	cols := len(se.S) + len(st.S)
	out := matrix.NewDense(n, cols)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j, sv := range se.S {
			row[j] = se.U.At(i, j) * math.Pow(sv, alpha)
		}
		for j, sv := range st.S {
			row[len(se.S)+j] = st.U.At(i, j) * math.Pow(sv, alpha)
		}
	}
	return out
}
