// Package ner implements the paper's named entity recognition downstream
// task: a synthetic CoNLL-2003 analogue (gazetteer + template generation
// over the shared corpus vocabulary) and the BiLSTM / BiLSTM-CRF taggers
// (after Akbik et al. 2018) trained on top of fixed word embeddings.
//
// As in the paper, instability and quality are measured only over tokens
// whose gold label is an entity (PER, ORG, LOC, MISC), not O.
package ner

import (
	"math/rand"

	"anchor/internal/autodiff"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/matrix"
	"anchor/internal/nn"
)

// Tag values. O must be zero.
const (
	TagO = iota
	TagPER
	TagORG
	TagLOC
	TagMISC
	NumTags
)

// TagNames lists the human-readable tag names indexed by tag value.
var TagNames = [NumTags]string{"O", "PER", "ORG", "LOC", "MISC"}

// Example is one labeled sentence.
type Example struct {
	Tokens []int32
	Tags   []int
}

// Dataset is a train/validation/test split.
type Dataset struct {
	Name             string
	Train, Val, Test []Example
}

// Params controls dataset generation.
type Params struct {
	Name           string
	TrainN, ValN   int
	TestN          int
	LenMin, LenMax int
	// GazetteerSize is the number of distinct entities per type.
	GazetteerSize int
	// MentionRate is the expected number of entity mentions per sentence.
	MentionRate float64
	Seed        int64
}

// CoNLLParams returns the CoNLL-2003 analogue configuration.
func CoNLLParams() Params {
	return Params{
		Name: "conll2003", TrainN: 220, ValN: 60, TestN: 120,
		LenMin: 6, LenMax: 14, GazetteerSize: 30, MentionRate: 2.2, Seed: 5005,
	}
}

// Generate builds the dataset. Each entity type's gazetteer is drawn from
// two dedicated topics of the corpus, so entity identity is recoverable
// from embedding geometry; entities are 1–2 token sequences.
func Generate(c *corpus.Corpus, ccfg corpus.Config, p Params) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	top := c.TopWords(ccfg.VocabSize)

	// Filler (O) words are the most frequent words; gazetteer entities are
	// drawn strictly from the mid-frequency band below them so a word is
	// never both filler and entity (in CoNLL, names and function words are
	// likewise near-disjoint).
	const fillerCut = 60

	// Partition candidate words by topic group: type k draws from topics
	// {2k, 2k+1} mod NumTopics.
	byType := make([][]int32, 4)
	for _, w := range top[fillerCut:] {
		topic := corpus.PrimaryTopic(ccfg, w, corpus.Wiki17)
		ty := (topic / 2) % 4
		if len(byType[ty]) < 3*p.GazetteerSize {
			byType[ty] = append(byType[ty], int32(w))
		}
	}
	// Build gazetteers: each entity is 1 or 2 tokens from its type pool.
	gaz := make([][][]int32, 4)
	for ty := 0; ty < 4; ty++ {
		pool := byType[ty]
		if len(pool) < 4 {
			panic("ner: not enough candidate words for gazetteer")
		}
		for e := 0; e < p.GazetteerSize; e++ {
			n := 1 + rng.Intn(2)
			ent := make([]int32, n)
			for j := range ent {
				ent[j] = pool[rng.Intn(len(pool))]
			}
			gaz[ty] = append(gaz[ty], ent)
		}
	}

	filler := top[:fillerCut]
	gen := func(n int) []Example {
		out := make([]Example, n)
		for i := range out {
			length := p.LenMin + rng.Intn(p.LenMax-p.LenMin+1)
			toks := make([]int32, 0, length+4)
			tags := make([]int, 0, length+4)
			mentions := 0
			for len(toks) < length {
				if float64(mentions) < p.MentionRate && rng.Float64() < p.MentionRate/float64(length) {
					ty := rng.Intn(4)
					ent := gaz[ty][rng.Intn(len(gaz[ty]))]
					for _, w := range ent {
						toks = append(toks, w)
						tags = append(tags, ty+1) // TagPER..TagMISC
					}
					mentions++
				} else {
					toks = append(toks, int32(filler[rng.Intn(len(filler))]))
					tags = append(tags, TagO)
				}
			}
			out[i] = Example{Tokens: toks, Tags: tags}
		}
		return out
	}
	return &Dataset{Name: p.Name, Train: gen(p.TrainN), Val: gen(p.ValN), Test: gen(p.TestN)}
}

// Config configures the BiLSTM tagger. UseCRF switches to the BiLSTM-CRF
// variant of Appendix E.2.
type Config struct {
	Hidden int
	LR     float64
	Epochs int
	UseCRF bool
	// Patience and AnnealFactor implement the paper's anneal-on-plateau
	// schedule (Appendix C.3.2): if validation loss fails to improve for
	// Patience epochs, the learning rate is multiplied by AnnealFactor.
	Patience     int
	AnnealFactor float64
	Seed         int64
}

// DefaultConfig mirrors the paper's NER training setup scaled down.
func DefaultConfig(seed int64) Config {
	return Config{Hidden: 10, LR: 0.4, Epochs: 10, Patience: 2, AnnealFactor: 0.5, Seed: seed}
}

// Tagger is a trained BiLSTM (optionally +CRF) NER model over fixed
// embeddings.
type Tagger struct {
	emb *embedding.Embedding
	bi  *nn.BiLSTM
	out *nn.Linear
	crf *nn.CRF // nil without CRF
}

// Train fits the tagger on ds.Train with the fixed embedding.
func Train(emb *embedding.Embedding, ds *Dataset, cfg Config) *Tagger {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Tagger{
		emb: emb,
		bi:  nn.NewBiLSTM("bi", emb.Dim(), cfg.Hidden, rng),
		out: nn.NewLinear("out", 2*cfg.Hidden, NumTags, rng),
	}
	if cfg.UseCRF {
		m.crf = nn.NewCRF("crf", NumTags, rng)
	}
	params := append(m.bi.Params(), m.out.Params()...)
	if m.crf != nil {
		params = append(params, m.crf.Params()...)
	}
	opt := nn.NewSGD(cfg.LR)

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	bestVal := 1e30
	sincePlateau := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			ex := ds.Train[i]
			if len(ex.Tokens) == 0 {
				continue
			}
			tp := autodiff.NewTape()
			emissions := m.emissions(tp, ex.Tokens)
			var loss *autodiff.Node
			if m.crf != nil {
				loss = m.crf.NegLogLikelihood(tp, emissions, ex.Tags)
			} else {
				loss = tp.CrossEntropy(emissions, ex.Tags)
			}
			tp.Backward(loss)
			opt.Step(params)
		}
		// Anneal on validation plateau.
		val := m.valLoss(ds.Val)
		if val < bestVal-1e-4 {
			bestVal = val
			sincePlateau = 0
		} else {
			sincePlateau++
			if sincePlateau >= cfg.Patience {
				opt.LR *= cfg.AnnealFactor
				sincePlateau = 0
			}
		}
	}
	return m
}

func (m *Tagger) emissions(tp *autodiff.Tape, tokens []int32) *autodiff.Node {
	seq := matrix.NewDense(len(tokens), m.emb.Dim())
	for i, tk := range tokens {
		copy(seq.Row(i), m.emb.Vector(int(tk)))
	}
	h := m.bi.Forward(tp, tp.Const(seq))
	return m.out.Forward(tp, h)
}

func (m *Tagger) valLoss(val []Example) float64 {
	var total float64
	n := 0
	for _, ex := range val {
		if len(ex.Tokens) == 0 {
			continue
		}
		tp := autodiff.NewTape()
		emissions := m.emissions(tp, ex.Tokens)
		if m.crf != nil {
			total += m.crf.NegLogLikelihood(tp, emissions, ex.Tags).Value.At(0, 0)
		} else {
			total += tp.CrossEntropy(emissions, ex.Tags).Value.At(0, 0)
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Predict returns the predicted tag sequence for one sentence.
func (m *Tagger) Predict(tokens []int32) []int {
	if len(tokens) == 0 {
		return nil
	}
	tp := autodiff.NewTape()
	emissions := m.emissions(tp, tokens).Value
	if m.crf != nil {
		return m.crf.Decode(emissions)
	}
	out := make([]int, len(tokens))
	for i := 0; i < emissions.Rows; i++ {
		best := 0
		for j := 1; j < NumTags; j++ {
			if emissions.At(i, j) > emissions.At(i, best) {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// EntityPredictions returns the model's predictions flattened over the
// tokens whose GOLD tag is an entity — the prediction set the paper
// measures NER instability on.
func (m *Tagger) EntityPredictions(examples []Example) []int {
	var out []int
	for _, ex := range examples {
		preds := m.Predict(ex.Tokens)
		for i, gold := range ex.Tags {
			if gold != TagO {
				out = append(out, preds[i])
			}
		}
	}
	return out
}

// EntityTokenF1 returns the micro-averaged F1 over entity classes at the
// token level (precision/recall of entity-tagged tokens), the quality
// metric for the Figure 8 analogue.
func (m *Tagger) EntityTokenF1(examples []Example) float64 {
	var tp, fp, fn float64
	for _, ex := range examples {
		preds := m.Predict(ex.Tokens)
		for i, gold := range ex.Tags {
			pred := preds[i]
			switch {
			case gold != TagO && pred == gold:
				tp++
			case gold != TagO && pred != gold:
				fn++
				if pred != TagO {
					fp++
				}
			case gold == TagO && pred != TagO:
				fp++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}
