// Package embtrain implements the word embedding algorithms studied in the
// paper, from scratch on the synthetic corpora: CBOW with negative sampling
// (word2vec), GloVe, online matrix completion on PPMI (MC), and the
// fastText-style subword skipgram used in Appendix E.1.
//
// Every trainer is deterministic given (corpus, dim, seed) and trains on
// all CPUs by default through the sharded engine in internal/parallel: each
// epoch the work items (sentences or matrix entries) are split into a
// fixed, seed-derived set of shards, each shard runs sequential SGD on a
// private replica of the parameters with its own seeded RNG, and the shard
// deltas are folded back into the shared parameters in ascending shard
// order. Because the shard count is fixed and the reduction is ordered, the
// result is bitwise identical for every Workers setting — embedding
// instability in the experiments comes only from the modelled sources
// (corpus drift and the explicit seed), matching the paper's controlled
// setup, while retraining uses all cores.
package embtrain

import (
	"math"
	"math/rand"

	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/parallel"
	"anchor/internal/registry"
)

// Trainer is the common interface implemented by all embedding algorithms.
type Trainer interface {
	// Train learns an embedding of the given dimension from the corpus.
	Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding
	// Name returns the algorithm identifier used in Meta and reports.
	Name() string
}

// Factory builds a trainer with its goroutine budget set (workers <= 0
// selects all CPUs). Implementations must keep the PR 1 determinism
// contract: the trained embedding is a pure function of (corpus, dim,
// seed) and bitwise identical for every worker count.
type Factory func(workers int) Trainer

// trainers is the pluggable algorithm registry. Registration order is the
// reporting order.
var trainers = registry.New[Factory]("algorithm")

// Register makes a trainer factory available under name to every consumer
// that resolves algorithms by name (the experiments runner, the service
// layer, the CLIs). It panics on duplicate or empty names; call it from an
// init function.
func Register(name string, f Factory) { trainers.Register(name, f) }

// Names returns the registered algorithm names in registration order.
func Names() []string { return trainers.Names() }

// CheckName returns nil when the algorithm is registered, else a
// *registry.UnknownError naming the known algorithms.
func CheckName(name string) error { return trainers.Check(name) }

func init() {
	Register("cbow", func(workers int) Trainer {
		tr := NewCBOW()
		tr.Workers = workers
		return tr
	})
	Register("glove", func(workers int) Trainer {
		tr := NewGloVe()
		tr.Workers = workers
		return tr
	})
	Register("mc", func(workers int) Trainer {
		tr := NewMC()
		tr.Workers = workers
		return tr
	})
	Register("fasttext", func(workers int) Trainer {
		tr := NewFastText()
		tr.Workers = workers
		return tr
	})
}

// ByName returns the trainer with default configuration for the given
// registered algorithm name; ok is false for unknown names. The default
// trainers use all CPUs; the result does not depend on how many (see
// ByNameWorkers).
func ByName(name string) (Trainer, bool) {
	return ByNameWorkers(name, 0)
}

// ByNameWorkers returns the named trainer with its Workers knob set
// (workers <= 0 selects all CPUs). Worker count only controls how many of
// the fixed training shards run concurrently; embeddings are bitwise
// identical for any value.
func ByNameWorkers(name string, workers int) (Trainer, bool) {
	f, ok := trainers.Get(name)
	if !ok {
		return nil, false
	}
	return f(workers), true
}

// Lookup is ByNameWorkers with the error form the service layer wants: it
// returns a *registry.UnknownError naming the known algorithms.
func Lookup(name string, workers int) (Trainer, error) {
	f, err := trainers.Lookup(name)
	if err != nil {
		return nil, err
	}
	return f(workers), nil
}

// unigramTable is the word2vec-style negative sampling table: words are
// drawn proportionally to count^power.
type unigramTable struct {
	table []int32
}

const unigramTableSize = 1 << 17

// newUnigramTable builds the sampling table from word counts. Each word
// with a nonzero count occupies the table slots between its rounded
// cumulative probability boundaries, but never fewer than one slot: under
// extreme skew the classic word2vec cumulative fill drops tail words whose
// mass rounds to zero slots, which would make them unreachable as negative
// samples. The table may exceed unigramTableSize by at most one slot per
// word; sampling normalizes by the true length.
func newUnigramTable(counts []int64, power float64) *unigramTable {
	var z float64
	for _, c := range counts {
		if c > 0 {
			z += math.Pow(float64(c), power)
		}
	}
	t := &unigramTable{table: make([]int32, 0, unigramTableSize)}
	if z == 0 {
		t.table = append(t.table, 0)
		return t
	}
	var cum float64
	for w, cnt := range counts {
		if cnt <= 0 {
			continue
		}
		cum += math.Pow(float64(cnt), power) / z
		end := int(cum*unigramTableSize + 0.5)
		if end <= len(t.table) {
			end = len(t.table) + 1
		}
		for len(t.table) < end {
			t.table = append(t.table, int32(w))
		}
	}
	return t
}

func (t *unigramTable) sample(rng *rand.Rand) int32 {
	return t.table[rng.Intn(len(t.table))]
}

// sigmoid returns 1/(1+exp(-x)) with clamping for numerical robustness.
func sigmoid(x float64) float64 {
	if x > 30 {
		return 1
	}
	if x < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// initMatrix fills data with the word2vec initialization: uniform in
// (-0.5/dim, 0.5/dim).
func initMatrix(data []float64, dim int, rng *rand.Rand) {
	for i := range data {
		data[i] = (rng.Float64() - 0.5) / float64(dim)
	}
}

// newTrainRNG returns the master RNG driving parameter initialization and
// the epoch shuffles; per-shard randomness is derived independently via
// parallel.ShardRNG so it never depends on scheduling.
func newTrainRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// shuffledOrder returns a seeded permutation of [0, n).
func shuffledOrder(n int, rng *rand.Rand) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// defaultSyncRounds is the number of synchronization rounds per epoch used
// when a trainer's Rounds knob is zero. More rounds track sequential SGD
// more closely (each shard's delta stays small relative to the loss
// landscape before it is merged) at the cost of more barriers; eight keeps
// the quality of the paper's single-threaded trainers on the synthetic
// corpora while shards stay coarse enough to parallelize.
const defaultSyncRounds = 8

// syncRounds resolves a Rounds knob: values <= 0 select defaultSyncRounds.
func syncRounds(n int) int {
	if n <= 0 {
		return defaultSyncRounds
	}
	return n
}

// tokenOffsets returns, for each shard's range over one round's slice of
// the epoch's sentence order, the number of tokens that precede it inside
// the slice, plus the slice's total token count — so every shard can
// evaluate the global linearly-decaying learning-rate schedule without
// observing the other shards' progress.
func tokenOffsets(c *corpus.Corpus, order []int32, ranges []parallel.Range) ([]float64, float64) {
	offsets := make([]float64, len(ranges))
	var cum float64
	for s, r := range ranges {
		offsets[s] = cum
		for _, si := range order[r.Lo:r.Hi] {
			cum += float64(len(c.Sentences[si]))
		}
	}
	return offsets, cum
}
