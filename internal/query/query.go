// Package query is the read-path serving engine: it answers vector
// lookups, nearest-neighbor queries, and cross-snapshot neighbor-overlap
// queries over trained embedding snapshots at interactive latency.
//
// The paper's framing is that what users observe downstream of an
// embedding retrain are *queries* whose answers drift: a word's vector
// moves, and with it the word's nearest neighbors (Wendlandt et al.'s
// nearest-neighbor overlap is exactly this drift, and the k-NN measure in
// internal/core uses it as the downstream-instability proxy). This
// package makes those observations servable:
//
//   - Each snapshot (one Ref: algorithm, corpus year, dimension, seed,
//     precision) is resolved through a Source — in production the artifact
//     store, so a warm store serves queries without retraining — and held
//     query-ready in a byte-budgeted LRU. Full-precision snapshots keep
//     rows L2-normalized once (cosine becomes a dot product) plus a
//     word → row index. Quantized snapshots stay compact: b<=8-bit
//     artifacts keep their packed codes resident (8-16x more snapshots
//     per byte of budget) and score through the decode-free LUT kernel;
//     float32-exact artifacts keep float32 rows and score through the
//     widening float32 kernel. Compact modes score raw-row dot products
//     and scale by precomputed inverse norms afterwards, an order fixed so
//     answers are bitwise identical to dequantizing the artifact and
//     executing the same query in float64 — for every worker count and
//     batch shape (see the golden tests in precision_test.go).
//   - Nearest-neighbor queries run through the blocked MulABT kernel and
//     the bounded-heap top-k selector from internal/core. Concurrent
//     singleton queries against the same snapshot are micro-batched: the
//     first arrival opens a short gather window, later arrivals join the
//     batch, and the whole batch is scored as one query-block matrix
//     product. Because every similarity is an independent single-
//     accumulator dot product, each query's answer is bitwise identical
//     whether it ran alone or in any batch, for any worker count.
//   - NeighborDelta answers the paper's instability question directly:
//     the overlap between a word's top-k neighbors in two snapshots.
package query

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anchor/internal/ann"
	"anchor/internal/compress"
	"anchor/internal/core"
	"anchor/internal/embedding"
	"anchor/internal/faults"
	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/parallel"
)

// siteLoad is the fault-injection site on the snapshot load path (see
// internal/faults): inert in production, armed by seeded plans in chaos
// tests to exercise the retry loop and latency handling.
var siteLoad = faults.Register("query/load")

// Ref identifies one queryable embedding snapshot by provenance.
type Ref struct {
	// Algo is the training algorithm name ("cbow", "glove", ...).
	Algo string
	// Year selects the corpus snapshot (2017 or 2018).
	Year int
	// Dim is the embedding dimension.
	Dim int
	// Seed is the training seed.
	Seed int64
	// Bits is the artifact precision in bits per entry; 0 (or 32) means
	// full precision. Quantized refs resolve to quantized artifacts,
	// which the engine keeps resident in compact form.
	Bits int
}

// String renders the ref as a stable identifier. Full-precision refs keep
// the historical four-part form.
func (r Ref) String() string {
	if r.Bits != 0 && r.Bits != 32 {
		return fmt.Sprintf("%s-wiki%d-d%d-s%d-b%d", r.Algo, r.Year%100, r.Dim, r.Seed, r.Bits)
	}
	return fmt.Sprintf("%s-wiki%d-d%d-s%d", r.Algo, r.Year%100, r.Dim, r.Seed)
}

// Source resolves a Ref to its embedding. The production source is the
// service's artifact store (train on miss, cached thereafter); tests use
// in-memory fixtures. The returned embedding is treated as read-only.
type Source func(ctx context.Context, ref Ref) (*embedding.Embedding, error)

// UnknownWordError reports a query for a word outside a snapshot's
// vocabulary. The serve layer maps it to HTTP 404.
type UnknownWordError struct {
	Word string
	Ref  Ref
}

// Error implements error.
func (e *UnknownWordError) Error() string {
	return fmt.Sprintf("query: word %q not in vocabulary of %s", e.Word, e.Ref)
}

// Neighbor is one entry of a nearest-neighbor answer.
type Neighbor struct {
	// Word is the neighbor's surface form ("" when the snapshot has no
	// vocabulary strings).
	Word string `json:"word"`
	// ID is the neighbor's vocabulary row id.
	ID int `json:"id"`
	// Score is the cosine similarity to the query word.
	Score float64 `json:"score"`
}

// Stats counts engine traffic. Counters are cumulative and safe to read
// concurrently.
type Stats struct {
	// SnapshotHits counts queries served from an already-resident
	// query-ready snapshot.
	SnapshotHits int64
	// SnapshotLoads counts snapshots pulled through the Source and
	// normalized.
	SnapshotLoads int64
	// Evictions counts snapshots dropped by the byte budget.
	Evictions int64
	// Batches counts executed query blocks (micro-batched or singleton).
	Batches int64
	// BatchedQueries counts neighbor queries answered; BatchedQueries /
	// Batches is the achieved coalescing factor.
	BatchedQueries int64
	// Retries counts snapshot-load attempts beyond each load's first try
	// (see WithRetry). A nonzero value means the source failed
	// transiently and the engine recovered without surfacing an error.
	Retries int64
	// ANNQueries counts neighbor queries answered through the IVF index
	// (Mode.ANN); exact queries are counted by BatchedQueries.
	ANNQueries int64
	// ANNBuilds counts in-process IVF index constructions. Indexes
	// resolved by an ANNSource from a persisted sidecar don't build, so
	// ANNBuilds stays at zero on a warm store.
	ANNBuilds int64
}

// Engine serves vector, neighbor, and neighbor-delta queries over
// embedding snapshots. It is safe for concurrent use; construct with New.
type Engine struct {
	src      Source
	budget   int64
	window   time.Duration
	maxBatch int
	workers  int
	attempts int
	backoff  time.Duration
	annSrc   ANNSource

	mu     sync.Mutex
	items  map[Ref]*list.Element
	lru    *list.List // front = most recently used
	bytes  int64
	flight map[Ref]*snapFlight

	hits, loads, evictions, batches, batchedQueries, retries atomic.Int64
	annQueries, annBuilds                                    atomic.Int64
}

// Option configures New.
type Option func(*Engine)

// WithBudget bounds the total bytes of resident query-ready snapshots —
// each one's normalized matrix, pinned raw embedding, and word index —
// evicting the least recently used beyond it (<= 0 = unbounded). The
// most recently used snapshot is always kept, so a single snapshot
// larger than the budget still serves.
func WithBudget(bytes int64) Option {
	return func(e *Engine) { e.budget = bytes }
}

// WithWindow sets the micro-batching gather window: how long the first
// concurrent neighbor query against a snapshot waits for company before
// the batch is scored. 0 disables gathering — every query is scored as a
// singleton block. Answers are bitwise identical either way; the window
// trades a bounded latency floor for shared matrix-product bandwidth.
func WithWindow(d time.Duration) Option {
	return func(e *Engine) { e.window = d }
}

// WithMaxBatch caps how many queries one gather window may coalesce
// (default 128, the k-NN engine's block size). A full batch fires
// immediately instead of waiting out the window.
func WithMaxBatch(n int) Option {
	return func(e *Engine) { e.maxBatch = n }
}

// WithWorkers bounds the goroutines used per query-block matrix product
// and snapshot normalization (<= 0 selects all CPUs). Answers are bitwise
// identical for every value.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithRetry bounds the retry loop around source loads: up to attempts
// total tries per load, separated by exponentially growing waits
// (backoff, 2·backoff, 4·backoff, ...). Context cancellation and
// deadline expiry are never retried — the caller's deadline is the outer
// bound. attempts <= 1 disables retrying. The default is 3 attempts with
// a 2ms initial backoff. Retried loads resolve to the same content-keyed
// artifact, so a load that succeeds on retry is bitwise identical to one
// that succeeded first try.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(e *Engine) { e.attempts, e.backoff = attempts, backoff }
}

// New returns an Engine drawing snapshots from src.
func New(src Source, opts ...Option) *Engine {
	e := &Engine{
		src:      src,
		budget:   256 << 20,
		window:   200 * time.Microsecond,
		maxBatch: 128,
		attempts: 3,
		backoff:  2 * time.Millisecond,
		items:    map[Ref]*list.Element{},
		lru:      list.New(),
		flight:   map[Ref]*snapFlight{},
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.maxBatch < 1 {
		e.maxBatch = 1
	}
	return e
}

// Stats returns a snapshot of the traffic counters.
func (e *Engine) Stats() Stats {
	return Stats{
		SnapshotHits:   e.hits.Load(),
		SnapshotLoads:  e.loads.Load(),
		Evictions:      e.evictions.Load(),
		Batches:        e.batches.Load(),
		BatchedQueries: e.batchedQueries.Load(),
		Retries:        e.retries.Load(),
		ANNQueries:     e.annQueries.Load(),
		ANNBuilds:      e.annBuilds.Load(),
	}
}

// SnapshotInfo describes one resident query-ready snapshot for health
// and capacity reporting.
type SnapshotInfo struct {
	// Ref is the snapshot's stable identifier.
	Ref string `json:"ref"`
	// Mode is the resident representation: "float64", "float32", or
	// "codes" (packed b-bit quantized rows).
	Mode string `json:"mode"`
	// Bits is the artifact precision (32 = full).
	Bits int `json:"bits"`
	// Rows and Dim are the snapshot's shape.
	Rows int `json:"rows"`
	Dim  int `json:"dim"`
	// Bytes is the snapshot's resident footprint charged against the
	// engine budget (rows, inverse norms, decode table, word index).
	Bytes int64 `json:"bytes"`
}

// Resident lists the resident snapshots, most recently used first, with
// their representation and byte footprint — the per-snapshot view behind
// /v1/healthz.
func (e *Engine) Resident() []SnapshotInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SnapshotInfo, 0, e.lru.Len())
	for el := e.lru.Front(); el != nil; el = el.Next() {
		s := el.Value.(*snapshot)
		bits := s.ref.Bits
		if bits == 0 {
			bits = 32
		}
		out = append(out, SnapshotInfo{
			Ref:   s.ref.String(),
			Mode:  s.mode.String(),
			Bits:  bits,
			Rows:  s.rows,
			Dim:   s.dim,
			Bytes: s.bytes,
		})
	}
	return out
}

// precMode is a snapshot's resident representation.
type precMode int

const (
	// precFloat64 is the full-precision path: the raw embedding pinned
	// for vector lookups plus an L2-normalized float64 copy scored with
	// the float64 kernel.
	precFloat64 precMode = iota
	// precFloat32 keeps raw rows as float32 (lossless for float32-exact
	// artifacts) plus per-row inverse norms; scoring widens on the fly.
	precFloat32
	// precCodes keeps raw rows as packed b-bit codes plus per-row inverse
	// norms; scoring is the decode-free LUT kernel.
	precCodes
)

// String names the mode for health reports.
func (m precMode) String() string {
	switch m {
	case precFloat32:
		return "float32"
	case precCodes:
		return "codes"
	}
	return "float64"
}

// snapshot is one query-ready resident embedding plus its vocabulary
// index. The resident representation depends on the artifact's precision
// (see precMode): full-precision snapshots pin the store-shared raw
// embedding (read-only by contract) and a normalized matrix; compact
// snapshots pin only the narrow rows and per-row inverse norms, and
// scale cosine scores after the raw dot product in a fixed order.
type snapshot struct {
	ref  Ref
	mode precMode

	// precFloat64 representation.
	raw  *embedding.Embedding
	norm *matrix.Dense

	// Compact representations (one of these, plus inv).
	raw32 *matrix.Dense32
	codes *matrix.Codes
	// inv[i] is 1/||row i|| (0 for a zero row), precomputed so compact
	// modes can turn raw dot products into cosines: sim = (dot·invQ)·invJ,
	// in exactly that order.
	inv []float64

	rows, dim int
	words     []string
	index     map[string]int
	bytes     int64

	mu  sync.Mutex
	cur *gather // open micro-batch, nil when none

	// annMu serializes the lazy IVF index build; annIdx is the built (or
	// sidecar-loaded) index, nil until the first ANN query.
	annMu  sync.Mutex
	annIdx *ann.Index
}

// gather is one micro-batch being collected during a window.
type gather struct {
	reqs []*neighborReq
	full chan struct{} // closed when the batch seals at maxBatch
}

type neighborReq struct {
	id  int
	k   int
	out chan neighborAnswer // buffered; the computer never blocks
}

type neighborAnswer struct {
	idxs []int32
	sims []float64
}

type snapFlight struct {
	done chan struct{}
	snap *snapshot
	err  error
}

// snapshot returns the query-ready snapshot for ref, loading and
// normalizing it on a miss. Concurrent misses share one load.
func (e *Engine) snapshot(ctx context.Context, ref Ref) (*snapshot, error) {
	for {
		e.mu.Lock()
		if el, ok := e.items[ref]; ok {
			e.lru.MoveToFront(el)
			e.mu.Unlock()
			e.hits.Add(1)
			return el.Value.(*snapshot), nil
		}
		if fl, ok := e.flight[ref]; ok {
			e.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if fl.err != nil && (errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded)) {
				// The originating client hung up mid-load; its cancellation
				// is not ours. Retry with our own context.
				continue
			}
			return fl.snap, fl.err
		}
		fl := &snapFlight{done: make(chan struct{})}
		e.flight[ref] = fl
		e.mu.Unlock()

		fl.snap, fl.err = e.load(ctx, ref)
		e.mu.Lock()
		delete(e.flight, ref)
		if fl.err == nil {
			e.insertLocked(fl.snap)
		}
		e.mu.Unlock()
		close(fl.done)
		return fl.snap, fl.err
	}
}

// load pulls ref through the source and builds the query-ready form. The
// resident representation is a pure function of the artifact: b<=8-bit
// quantized artifacts (values on their (Clip, Precision) level grid)
// become packed codes, other float32-exact reduced-precision artifacts
// become float32 rows, everything else stays on the full float64 path.
func (e *Engine) load(ctx context.Context, ref Ref) (*snapshot, error) {
	emb, err := e.loadSource(ctx, ref)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.loads.Add(1)
	s := &snapshot{
		ref:   ref,
		rows:  emb.Rows(),
		dim:   emb.Dim(),
		words: emb.Words,
	}
	b := emb.Meta.Precision
	if b >= 1 && b <= 8 && emb.Meta.Clip > 0 {
		if codes, err := matrix.NewCodesFromDense(emb.Vectors, compress.Levels(emb.Meta.Clip, b), b); err == nil {
			s.mode = precCodes
			s.codes = codes
			s.inv = invNorms(s.rows, s.dim, e.workers, codes.DequantizeRow)
		}
	}
	if s.mode == precFloat64 && b >= 1 && b < 32 && matrix.Float32Exact(emb.Vectors.Data) {
		s.mode = precFloat32
		s.raw32 = matrix.NewDense32From(emb.Vectors)
		s.inv = invNorms(s.rows, s.dim, e.workers, s.raw32.WidenRow)
	}
	// Budget accounting covers everything the snapshot pins. Full
	// precision: the normalized matrix plus the raw embedding (held for
	// vector lookups even after the artifact store evicts it). Compact
	// modes: the narrow rows, the inverse norms, and (for codes) the
	// decode table. Either way, the word index adds ~one map entry plus
	// string header per word.
	switch s.mode {
	case precCodes:
		s.bytes = int64(len(s.codes.Data)) + int64(s.rows)*8 + int64(len(s.codes.Levels))*8
	case precFloat32:
		s.bytes = int64(s.rows)*int64(s.dim)*4 + int64(s.rows)*8
	default:
		s.raw = emb
		s.norm = core.NormalizedRows(emb, e.workers)
		s.bytes = 2 * int64(s.rows) * int64(s.dim) * 8
	}
	if emb.Words != nil {
		s.index = make(map[string]int, len(emb.Words))
		for id, w := range emb.Words {
			s.index[w] = id
			s.bytes += int64(len(w)) + 48
		}
	}
	return s, nil
}

// loadSource pulls ref through the source under the bounded-backoff
// retry policy (WithRetry). Cancellation and deadline errors abort
// immediately — they belong to the caller, not the source — and the wait
// between tries is cut short when the context expires.
func (e *Engine) loadSource(ctx context.Context, ref Ref) (*embedding.Embedding, error) {
	attempts := e.attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			e.retries.Add(1)
			if !sleepCtx(ctx, e.backoff<<(try-1)) {
				return nil, ctx.Err()
			}
		}
		faults.Sleep(ctx, siteLoad)
		if ferr := faults.Error(siteLoad); ferr != nil {
			err = ferr
		} else {
			var emb *embedding.Embedding
			if emb, err = e.src(ctx, ref); err == nil {
				return emb, nil
			}
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	if attempts > 1 {
		return nil, fmt.Errorf("query: load %s failed after %d attempts: %w", ref, attempts, err)
	}
	return nil, err
}

// sleepCtx waits for d or until ctx is done, reporting whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	//anchorlint:ignore seedrand retry backoff only delays a snapshot reload; the loaded artifact is content-keyed, so answers are bitwise identical with or without the wait
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// invNorms computes per-row inverse L2 norms (0 for zero rows) for a
// matrix presented row-by-row through fill. Rows are independent, so
// banding is bitwise invariant for every worker count; each norm is the
// same floats.Norm the dequantized float64 reference computes.
func invNorms(rows, cols, workers int, fill func(i int, dst []float64)) []float64 {
	inv := make([]float64, rows)
	bands := parallel.Ranges(rows, parallel.Workers(workers))
	parallel.Run(workers, len(bands), func(sh int) {
		row := make([]float64, cols)
		for i := bands[sh].Lo; i < bands[sh].Hi; i++ {
			fill(i, row)
			if n := floats.Norm(row); n != 0 {
				inv[i] = 1 / n
			}
		}
	}, nil)
	return inv
}

// insertLocked publishes a loaded snapshot and applies the byte budget.
// Caller holds e.mu.
func (e *Engine) insertLocked(s *snapshot) {
	if el, ok := e.items[s.ref]; ok {
		e.lru.MoveToFront(el)
		return
	}
	e.items[s.ref] = e.lru.PushFront(s)
	e.bytes += s.bytes
	e.evictOverBudgetLocked()
}

// evictOverBudgetLocked drops least-recently-used snapshots until the
// budget holds, always keeping the most recent one. Caller holds e.mu.
func (e *Engine) evictOverBudgetLocked() {
	if e.budget <= 0 {
		return
	}
	for e.bytes > e.budget && e.lru.Len() > 1 {
		back := e.lru.Back()
		old := back.Value.(*snapshot)
		e.lru.Remove(back)
		delete(e.items, old.ref)
		e.bytes -= old.bytes
		e.evictions.Add(1)
	}
}

// resolve maps a word to its row id in the snapshot.
func (s *snapshot) resolve(word string) (int, error) {
	if id, ok := s.index[word]; ok {
		return id, nil
	}
	return 0, &UnknownWordError{Word: word, Ref: s.ref}
}

// Words returns the vocabulary size of the snapshot under ref (loading it
// if necessary).
func (e *Engine) Words(ctx context.Context, ref Ref) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s, err := e.snapshot(ctx, ref)
	if err != nil {
		return 0, err
	}
	return s.rows, nil
}

// Vector returns the word's row id and a copy of its (unnormalized)
// embedding vector in the snapshot under ref. Compact modes reconstruct
// the row exactly: both are lossless representations of the artifact.
func (e *Engine) Vector(ctx context.Context, ref Ref, word string) (int, []float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	s, err := e.snapshot(ctx, ref)
	if err != nil {
		return 0, nil, err
	}
	id, err := s.resolve(word)
	if err != nil {
		return 0, nil, err
	}
	vec := make([]float64, s.dim)
	s.fillRaw(id, vec)
	return id, vec, nil
}

// Neighbors returns the word's k nearest neighbors by cosine similarity
// in the snapshot under ref, excluding the word itself, ordered by
// similarity descending with id-ascending tie-breaks. The query may be
// coalesced with concurrent Neighbors calls into one query-block matrix
// product; the answer is bitwise identical either way.
func (e *Engine) Neighbors(ctx context.Context, ref Ref, word string, k int) ([]Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("query: k must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := e.snapshot(ctx, ref)
	if err != nil {
		return nil, err
	}
	id, err := s.resolve(word)
	if err != nil {
		return nil, err
	}
	ans, err := e.enqueue(ctx, s, id, k)
	if err != nil {
		return nil, err
	}
	return s.neighbors(ans), nil
}

// NeighborsBatch answers one multi-word neighbors request as a single
// query block: no gather window, one matrix product for all words.
func (e *Engine) NeighborsBatch(ctx context.Context, ref Ref, words []string, k int) ([][]Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("query: k must be positive, got %d", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := e.snapshot(ctx, ref)
	if err != nil {
		return nil, err
	}
	reqs := make([]*neighborReq, len(words))
	for i, w := range words {
		id, err := s.resolve(w)
		if err != nil {
			return nil, err
		}
		reqs[i] = &neighborReq{id: id, k: k, out: make(chan neighborAnswer, 1)}
	}
	out := make([][]Neighbor, len(reqs))
	for lo := 0; lo < len(reqs); lo += e.maxBatch {
		hi := lo + e.maxBatch
		if hi > len(reqs) {
			hi = len(reqs)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.compute(s, reqs[lo:hi])
		for i, r := range reqs[lo:hi] {
			out[lo+i] = s.neighbors(<-r.out)
		}
	}
	return out, nil
}

// neighbors renders a computed answer with vocabulary strings.
func (s *snapshot) neighbors(ans neighborAnswer) []Neighbor {
	ns := make([]Neighbor, len(ans.idxs))
	for i, ix := range ans.idxs {
		ns[i] = Neighbor{ID: int(ix), Score: ans.sims[i]}
		if s.words != nil {
			ns[i].Word = s.words[ix]
		}
	}
	return ns
}

// enqueue submits one singleton neighbor query, micro-batching it with
// concurrent queries against the same snapshot. The first arrival becomes
// the batch leader: it opens the gather window, waits it out (or until
// the batch is full), seals the batch, and scores it for everyone.
func (e *Engine) enqueue(ctx context.Context, s *snapshot, id, k int) (neighborAnswer, error) {
	req := &neighborReq{id: id, k: k, out: make(chan neighborAnswer, 1)}
	if e.window <= 0 {
		e.compute(s, []*neighborReq{req})
		return <-req.out, nil
	}

	s.mu.Lock()
	leader := s.cur == nil
	if leader {
		s.cur = &gather{full: make(chan struct{})}
	}
	b := s.cur
	b.reqs = append(b.reqs, req)
	if len(b.reqs) >= e.maxBatch {
		// Seal at capacity: detach so the next arrival opens a fresh
		// batch, and wake the leader early.
		s.cur = nil
		close(b.full)
	}
	s.mu.Unlock()

	if leader {
		//anchorlint:ignore seedrand gather-window timing only groups requests into batches; per-query answers are bitwise identical singleton vs batched (TestNeighborsBitwiseSingletonVsBatched)
		timer := time.NewTimer(e.window)
		select {
		case <-timer.C:
		case <-b.full:
			timer.Stop()
		}
		s.mu.Lock()
		if s.cur == b { // sealed by timeout, not capacity
			s.cur = nil
		}
		reqs := b.reqs
		s.mu.Unlock()
		// The leader computes for the whole batch even if its own client
		// hung up: followers are waiting on it.
		e.compute(s, reqs)
	}

	select {
	case ans := <-req.out:
		return ans, nil
	case <-ctx.Done():
		return neighborAnswer{}, ctx.Err()
	}
}

// computeScratch pools the per-batch query and similarity blocks.
var computeScratch = sync.Pool{New: func() any { return &batchScratch{} }}

type batchScratch struct {
	qb, sb []float64
	qb32   []float32
	sel    core.TopKSelector
}

func (sc *batchScratch) blocks(q, d, n int) (qb, sb *matrix.Dense) {
	if cap(sc.qb) < q*d {
		sc.qb = make([]float64, q*d)
	}
	if cap(sc.sb) < q*n {
		sc.sb = make([]float64, q*n)
	}
	return matrix.NewDenseData(q, d, sc.qb[:q*d]), matrix.NewDenseData(q, n, sc.sb[:q*n])
}

func (sc *batchScratch) block32(q, d int) *matrix.Dense32 {
	if cap(sc.qb32) < q*d {
		sc.qb32 = make([]float32, q*d)
	}
	return &matrix.Dense32{Rows: q, Cols: d, Data: sc.qb32[:q*d]}
}

func (sc *batchScratch) simBlock(q, n int) *matrix.Dense {
	if cap(sc.sb) < q*n {
		sc.sb = make([]float64, q*n)
	}
	return matrix.NewDenseData(q, n, sc.sb[:q*n])
}

// compute scores one batch of neighbor queries as a single query-block
// product against the snapshot's resident rows and delivers each query's
// top-k. Every similarity is an independent single-accumulator dot
// product (plus, in compact modes, a fixed-order scale by the two inverse
// norms), so each answer is bitwise independent of the batch composition
// and the worker count — and, in compact modes, bitwise identical to
// dequantizing the artifact and executing the same query in float64.
func (e *Engine) compute(s *snapshot, reqs []*neighborReq) {
	e.batches.Add(1)
	e.batchedQueries.Add(int64(len(reqs)))
	n, d := s.rows, s.dim
	sc := computeScratch.Get().(*batchScratch)
	defer computeScratch.Put(sc)
	var sb *matrix.Dense
	switch s.mode {
	case precCodes:
		// Query rows dequantize to their exact raw float64 values; the LUT
		// kernel then scores them against the packed rows decode-free.
		var qb *matrix.Dense
		qb, sb = sc.blocks(len(reqs), d, n)
		for i, r := range reqs {
			s.codes.DequantizeRow(r.id, qb.Row(i))
		}
		matrix.MulABTIntoLUT(sb, qb, s.codes, e.workers)
		s.scaleSims(sb, reqs)
	case precFloat32:
		qb32 := sc.block32(len(reqs), d)
		sb = sc.simBlock(len(reqs), n)
		for i, r := range reqs {
			copy(qb32.Row(i), s.raw32.Row(r.id))
		}
		matrix.MulABTInto32(sb, qb32, s.raw32, e.workers)
		s.scaleSims(sb, reqs)
	default:
		var qb *matrix.Dense
		qb, sb = sc.blocks(len(reqs), d, n)
		for i, r := range reqs {
			copy(qb.Row(i), s.norm.Row(r.id))
		}
		matrix.MulABTInto(sb, qb, s.norm, e.workers)
	}
	for i, r := range reqs {
		sims := sb.Row(i)
		idxs := sc.sel.Select(sims, r.id, r.k, make([]int32, min(r.k, n)))
		scores := make([]float64, len(idxs))
		for j, ix := range idxs {
			scores[j] = sims[ix]
		}
		r.out <- neighborAnswer{idxs: idxs, sims: scores}
	}
}

// scaleSims turns raw-row dot products into cosine similarities using the
// precomputed inverse norms: sim = (dot·invQ)·invJ, in exactly that
// order for every element — the same two multiplications, in the same
// order, the dequantized float64 reference performs.
func (s *snapshot) scaleSims(sb *matrix.Dense, reqs []*neighborReq) {
	for i, r := range reqs {
		sims := sb.Row(i)
		qinv := s.inv[r.id]
		for j := range sims {
			sims[j] = (sims[j] * qinv) * s.inv[j]
		}
	}
}

// Delta is one word's neighbor-overlap comparison between two snapshots —
// the paper's downstream-instability proxy (Wendlandt et al. 2018's
// nearest-neighbor overlap) as a query answer.
type Delta struct {
	// Word is the query word.
	Word string `json:"word"`
	// Overlap is |N_A(w) ∩ N_B(w)| / k in [0, 1]: 1 = the word's
	// neighborhood survived the retrain, 0 = completely replaced.
	Overlap float64 `json:"overlap"`
	// Shared counts the common neighbors.
	Shared int `json:"shared"`
	// A and B are the word's top-k neighbor lists in the two snapshots.
	A []Neighbor `json:"a"`
	B []Neighbor `json:"b"`
}

// NeighborDelta compares each word's top-k neighbor sets between the
// snapshots under refA and refB. Cosine neighbor sets are invariant under
// orthogonal alignment, so the comparison needs no Procrustes step: the
// overlap is a pure function of the two trained snapshots.
func (e *Engine) NeighborDelta(ctx context.Context, refA, refB Ref, words []string, k int) ([]Delta, error) {
	na, err := e.NeighborsBatch(ctx, refA, words, k)
	if err != nil {
		return nil, err
	}
	nb, err := e.NeighborsBatch(ctx, refB, words, k)
	if err != nil {
		return nil, err
	}
	return deltas(words, na, nb), nil
}

// deltas computes the per-word overlap records from two aligned
// neighbor-list batches.
func deltas(words []string, na, nb [][]Neighbor) []Delta {
	out := make([]Delta, len(words))
	for i, w := range words {
		ia := make([]int32, len(na[i]))
		for j, nbr := range na[i] {
			ia[j] = int32(nbr.ID)
		}
		ib := make([]int32, len(nb[i]))
		for j, nbr := range nb[i] {
			ib[j] = int32(nbr.ID)
		}
		shared := core.Overlap(ia, ib)
		d := Delta{Word: w, Shared: shared, A: na[i], B: nb[i]}
		if denom := len(ia); denom > 0 {
			d.Overlap = float64(shared) / float64(denom)
		}
		out[i] = d
	}
	return out
}
