package ner

import (
	"testing"

	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embtrain"
)

func testSetup(t *testing.T) (corpus.Config, *corpus.Corpus, *Dataset) {
	t.Helper()
	cfg := corpus.TestConfig()
	c := corpus.Generate(cfg, corpus.Wiki17)
	p := CoNLLParams()
	p.TrainN, p.ValN, p.TestN = 120, 30, 60
	return cfg, c, Generate(c, cfg, p)
}

func TestGenerateWellFormed(t *testing.T) {
	_, _, ds := testSetup(t)
	entityTokens := 0
	total := 0
	for _, ex := range ds.Train {
		if len(ex.Tokens) != len(ex.Tags) {
			t.Fatal("tokens/tags length mismatch")
		}
		for _, tag := range ex.Tags {
			if tag < 0 || tag >= NumTags {
				t.Fatalf("invalid tag %d", tag)
			}
			if tag != TagO {
				entityTokens++
			}
			total++
		}
	}
	frac := float64(entityTokens) / float64(total)
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("entity token fraction %.3f implausible", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := corpus.TestConfig()
	c := corpus.Generate(cfg, corpus.Wiki17)
	a := Generate(c, cfg, CoNLLParams())
	b := Generate(c, cfg, CoNLLParams())
	for i := range a.Train {
		for j := range a.Train[i].Tokens {
			if a.Train[i].Tokens[j] != b.Train[i].Tokens[j] || a.Train[i].Tags[j] != b.Train[i].Tags[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestBiLSTMLearnsEntities(t *testing.T) {
	cfg, c, ds := testSetup(t)
	_ = cfg
	emb := embtrain.NewMC().Train(c, 16, 1)
	m := Train(emb, ds, DefaultConfig(1))
	f1 := m.EntityTokenF1(ds.Test)
	if f1 < 0.35 {
		t.Fatalf("BiLSTM entity F1 %.3f too low", f1)
	}
	t.Logf("BiLSTM entity token F1: %.3f", f1)
}

func TestEntityPredictionsOnlyGoldEntities(t *testing.T) {
	_, c, ds := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	cfg := DefaultConfig(1)
	cfg.Epochs = 2
	m := Train(emb, ds, cfg)
	preds := m.EntityPredictions(ds.Test)
	want := 0
	for _, ex := range ds.Test {
		for _, tag := range ex.Tags {
			if tag != TagO {
				want++
			}
		}
	}
	if len(preds) != want {
		t.Fatalf("entity predictions %d != gold entity tokens %d", len(preds), want)
	}
}

func TestTrainDeterministic(t *testing.T) {
	_, c, ds := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	cfg := DefaultConfig(2)
	cfg.Epochs = 2
	a := Train(emb, ds, cfg)
	b := Train(emb, ds, cfg)
	if core.PredictionDisagreement(a.EntityPredictions(ds.Test), b.EntityPredictions(ds.Test)) != 0 {
		t.Fatal("same-seed training should be deterministic")
	}
}

func TestCRFVariantTrains(t *testing.T) {
	_, c, ds := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	cfg := DefaultConfig(1)
	cfg.UseCRF = true
	cfg.Epochs = 4
	m := Train(emb, ds, cfg)
	f1 := m.EntityTokenF1(ds.Test)
	if f1 < 0.3 {
		t.Fatalf("BiLSTM-CRF entity F1 %.3f too low", f1)
	}
	t.Logf("BiLSTM-CRF entity token F1: %.3f", f1)
}

func TestNERInstabilityPipeline(t *testing.T) {
	cfg := corpus.TestConfig()
	c17 := corpus.Generate(cfg, corpus.Wiki17)
	c18 := corpus.Generate(cfg, corpus.Wiki18)
	tr := embtrain.NewMC()
	e17 := tr.Train(c17, 16, 1)
	e18 := tr.Train(c18, 16, 1)
	e18.AlignTo(e17)
	p := CoNLLParams()
	p.TrainN, p.ValN, p.TestN = 100, 25, 60
	ds := Generate(c17, cfg, p)
	mcfg := DefaultConfig(1)
	mcfg.Epochs = 5
	m17 := Train(e17, ds, mcfg)
	m18 := Train(e18, ds, mcfg)
	di := core.PredictionDisagreementPct(m17.EntityPredictions(ds.Test), m18.EntityPredictions(ds.Test))
	if di >= 80 {
		t.Fatalf("NER instability %.1f%% implausibly high", di)
	}
	t.Logf("NER downstream instability: %.2f%%", di)
}

// TestTrainBitwiseMatchesReference is the tentpole determinism contract:
// the fast trainer (arena tape, fused ops) must produce bitwise-identical
// weights, predictions, and quality to the retained slow reference over
// the same lockstep batch schedule — for the plain BiLSTM and the CRF
// variant.
func TestTrainBitwiseMatchesReference(t *testing.T) {
	_, c, ds := testSetup(t)
	emb := embtrain.NewMC().Train(c, 16, 1)
	for _, useCRF := range []bool{false, true} {
		cfg := DefaultConfig(3)
		cfg.Epochs = 3
		cfg.UseCRF = useCRF
		fast := Train(emb, ds, cfg)
		ref := TrainReference(emb, ds, cfg)
		for pi, pp := range fast.bi.Params() {
			rp := ref.bi.Params()[pi]
			for i, v := range pp.Value.Data {
				if rp.Value.Data[i] != v {
					t.Fatalf("crf=%v: param %s[%d]: fast %v != reference %v", useCRF, pp.Name, i, v, rp.Value.Data[i])
				}
			}
		}
		if core.PredictionDisagreement(fast.EntityPredictions(ds.Test), ref.EntityPredictions(ds.Test)) != 0 {
			t.Fatalf("crf=%v: fast and reference trainers disagree on predictions", useCRF)
		}
		if fast.EntityTokenF1(ds.Test) != ref.EntityTokenF1(ds.Test) {
			t.Fatalf("crf=%v: fast and reference F1 differ", useCRF)
		}
	}
}

// TestPredictBatchingInvariant checks that lockstep batched prediction is
// bitwise identical to per-sentence Predict calls.
func TestPredictBatchingInvariant(t *testing.T) {
	_, c, ds := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	cfg := DefaultConfig(1)
	cfg.Epochs = 2
	m := Train(emb, ds, cfg)
	batched := m.predictAll(ds.Test)
	for i, ex := range ds.Test {
		single := m.Predict(ex.Tokens)
		for j := range single {
			if batched[i][j] != single[j] {
				t.Fatalf("example %d token %d: batched %d != single %d", i, j, batched[i][j], single[j])
			}
		}
	}
}

func TestPredictEmptySentence(t *testing.T) {
	_, c, ds := testSetup(t)
	emb := embtrain.NewMC().Train(c, 8, 1)
	cfg := DefaultConfig(1)
	cfg.Epochs = 1
	m := Train(emb, ds, cfg)
	if got := m.Predict(nil); got != nil {
		t.Fatalf("Predict(nil) = %v, want nil", got)
	}
}
