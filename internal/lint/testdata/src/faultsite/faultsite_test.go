// The fixture's chaos plan: naming a site's string in a test file marks
// it exercised for the faultsite rule. fixture/stale is deliberately
// absent. This file is parsed, never type-checked or matched against
// expectations, mirroring how the loader treats real test files.
package faultsite

var fixturePlan = []string{"fixture/read"}
