package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

func TestSeedRandV2(t *testing.T) {
	old := lint.DeterministicPackages
	lint.DeterministicPackages = append(old[:len(old):len(old)], "anchorlint.test/seedrand_v2")
	defer func() { lint.DeterministicPackages = old }()
	linttest.Run(t, lint.SeedRand, "testdata/src/seedrand_v2", "anchorlint.test/seedrand_v2")
}
