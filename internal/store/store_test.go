package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anchor/internal/embedding"
)

func testEmbedding(dim int, fill float64) *embedding.Embedding {
	e := embedding.New(3, dim)
	for i := range e.Vectors.Data {
		e.Vectors.Data[i] = fill + float64(i)/7
	}
	e.Meta = embedding.Meta{Algorithm: "mc", Corpus: "wiki17", Dim: dim, Seed: 1, Precision: 32}
	return e
}

func key(dim int) Key {
	return Key{Algo: "mc", Corpus: "wiki17", Dim: dim, Seed: 1, Bits: 32, Scope: "t"}
}

func TestKeyID(t *testing.T) {
	k := Key{Algo: "cbow", Corpus: "wiki18a", Dim: 64, Seed: 1, Bits: 4, Scope: "9f8a"}
	if got, want := k.ID(), "cbow-wiki18a-d64-s1-b4-9f8a"; got != want {
		t.Fatalf("ID = %q, want %q", got, want)
	}
	// Hostile registry names must not escape the cache directory.
	k = Key{Algo: "../evil", Corpus: "a/b", Dim: 1, Seed: 1, Bits: 32, Scope: "s"}
	if got, want := k.ID(), ".._evil-a_b-d1-s1-b32-s"; got != want {
		t.Fatalf("sanitized ID = %q, want %q", got, want)
	}
}

func TestMemoryHitReturnsSamePointer(t *testing.T) {
	s := Memory()
	var computes int
	get := func() (*embedding.Embedding, error) {
		computes++
		return testEmbedding(4, 0), nil
	}
	a, err := s.Get(key(4), true, get)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(key(4), true, get)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memory hit did not return the cached pointer")
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Computes != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s1.Get(key(8), true, func() (*embedding.Embedding, error) {
		return testEmbedding(8, 1.25), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory must serve the artifact from
	// disk — no compute — and bitwise identical to the original.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(key(8), true, func() (*embedding.Embedding, error) {
		t.Fatal("restart hit recomputed")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Computes != 0 || st.DiskHits != 1 {
		t.Fatalf("stats after reopen = %+v", st)
	}
	if got.Meta != orig.Meta {
		t.Fatalf("meta drifted: %+v vs %+v", got.Meta, orig.Meta)
	}
	for i := range orig.Vectors.Data {
		if got.Vectors.Data[i] != orig.Vectors.Data[i] {
			t.Fatalf("disk roundtrip not bitwise at %d: %v vs %v", i, got.Vectors.Data[i], orig.Vectors.Data[i])
		}
	}
}

func TestNoPersistStaysOffDisk(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	if _, err := s.Get(key(2), false, func() (*embedding.Embedding, error) {
		return testEmbedding(2, 0), nil
	}); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir, 0)
	recomputed := false
	if _, err := s2.Get(key(2), false, func() (*embedding.Embedding, error) {
		recomputed = true
		return testEmbedding(2, 0), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("persist=false artifact unexpectedly survived restart")
	}
}

func TestGetPairComputesOnceAndCachesBoth(t *testing.T) {
	s := Memory()
	ka, kb := key(4), Key{Algo: "mc", Corpus: "wiki18a", Dim: 4, Seed: 1, Bits: 32, Scope: "t"}
	var computes int
	a1, b1, err := s.GetPair(ka, kb, true, func() (*embedding.Embedding, *embedding.Embedding, error) {
		computes++
		return testEmbedding(4, 0), testEmbedding(4, 9), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := s.GetPair(ka, kb, true, func() (*embedding.Embedding, *embedding.Embedding, error) {
		t.Fatal("second GetPair recomputed")
		return nil, nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b1 != b2 || computes != 1 {
		t.Fatalf("pair not cached (computes=%d)", computes)
	}
}

func TestSingleflightDedupesConcurrentGets(t *testing.T) {
	s := Memory()
	var computes atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]*embedding.Embedding, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := s.Get(key(4), false, func() (*embedding.Embedding, error) {
				computes.Add(1)
				<-release
				return testEmbedding(4, 0), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = e
		}(i)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("concurrent gets computed %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("waiters received different artifacts")
		}
	}
}

// TestWaiterRetriesAfterOriginatorCancellation: a healthy request that
// joined another request's flight must not inherit that request's
// context cancellation — it retries with its own compute.
func TestWaiterRetriesAfterOriginatorCancellation(t *testing.T) {
	s := Memory()
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, err := s.Get(key(4), false, func() (*embedding.Embedding, error) {
			close(entered)
			<-release
			return nil, context.Canceled // originator's client hung up
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("originator error = %v", err)
		}
	}()
	<-entered

	done := make(chan struct{})
	var got *embedding.Embedding
	var err error
	go func() {
		defer close(done)
		got, err = s.Get(key(4), false, func() (*embedding.Embedding, error) {
			return testEmbedding(4, 0), nil
		})
	}()
	// Let the waiter join the in-flight call, then fail the originator.
	time.Sleep(20 * time.Millisecond)
	close(release)
	<-done
	if err != nil || got == nil {
		t.Fatalf("waiter inherited the originator's cancellation: %v", err)
	}
}

// TestPersistFailureStillServes: a failed disk write must not discard the
// computed artifact or poison the slot.
func TestPersistFailureStillServes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Make every disk write fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	e, err := s.Get(key(4), true, func() (*embedding.Embedding, error) {
		return testEmbedding(4, 0), nil
	})
	if err != nil || e == nil {
		t.Fatalf("persist failure surfaced to the caller: %v", err)
	}
	if st := s.Stats(); st.PersistErrors != 1 {
		t.Fatalf("persist errors = %d, want 1", st.PersistErrors)
	}
	// Memory tier still serves it without recompute.
	if _, err := s.Get(key(4), true, func() (*embedding.Embedding, error) {
		t.Fatal("memory tier lost the artifact")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeErrorPropagatesAndIsNotCached(t *testing.T) {
	s := Memory()
	boom := fmt.Errorf("boom")
	if _, err := s.Get(key(4), false, func() (*embedding.Embedding, error) {
		return nil, boom
	}); err == nil {
		t.Fatal("expected error")
	}
	// The failure must not poison the slot.
	e, err := s.Get(key(4), false, func() (*embedding.Embedding, error) {
		return testEmbedding(4, 0), nil
	})
	if err != nil || e == nil {
		t.Fatalf("recovery get: %v", err)
	}
}

func TestLRUEvictionRefillsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1) // room for a single entry
	if _, err := s.Get(key(4), true, func() (*embedding.Embedding, error) {
		return testEmbedding(4, 0), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key(8), true, func() (*embedding.Embedding, error) {
		return testEmbedding(8, 0), nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted artifact comes back from the disk tier, not a retrain.
	if _, err := s.Get(key(4), true, func() (*embedding.Embedding, error) {
		t.Fatal("evicted artifact recomputed despite disk tier")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
}
