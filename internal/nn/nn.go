// Package nn builds the downstream model zoo of the paper on top of the
// autodiff engine: linear layers, LSTM/BiLSTM, 1-D convolutions (Kim 2014
// style), a linear-chain CRF, and the SGD/Adam optimizers used to train
// the sentiment and NER models.
package nn

import (
	"math"
	"math/rand"
	"sort"

	"anchor/internal/autodiff"
	"anchor/internal/matrix"
)

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*autodiff.Param
}

// XavierInit fills a parameter matrix with the Glorot uniform
// initialization for the given fan-in and fan-out.
func XavierInit(m *matrix.Dense, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W, B *autodiff.Param
}

// NewLinear returns a Glorot-initialized linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	w := matrix.NewDense(in, out)
	XavierInit(w, in, out, rng)
	return &Linear{
		W: autodiff.NewParam(name+".W", w),
		B: autodiff.NewParam(name+".b", matrix.NewDense(1, out)),
	}
}

// Forward applies the layer to x (n-by-in), returning n-by-out.
func (l *Linear) Forward(tp *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	return tp.AddRowVec(tp.MatMul(x, tp.Use(l.W)), tp.Use(l.B))
}

// Params implements Module.
func (l *Linear) Params() []*autodiff.Param { return []*autodiff.Param{l.W, l.B} }

// LSTM is a single-layer LSTM cell with input size In and hidden size H.
// Gate order in the packed weight matrices is [input, forget, cell, output].
type LSTM struct {
	In, H int
	Wx    *autodiff.Param // In x 4H
	Wh    *autodiff.Param // H x 4H
	B     *autodiff.Param // 1 x 4H
}

// NewLSTM returns a Glorot-initialized LSTM with forget-gate bias 1.
func NewLSTM(name string, in, hidden int, rng *rand.Rand) *LSTM {
	wx := matrix.NewDense(in, 4*hidden)
	wh := matrix.NewDense(hidden, 4*hidden)
	XavierInit(wx, in, 4*hidden, rng)
	XavierInit(wh, hidden, 4*hidden, rng)
	b := matrix.NewDense(1, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		b.Set(0, j, 1) // forget gate bias
	}
	return &LSTM{
		In: in, H: hidden,
		Wx: autodiff.NewParam(name+".Wx", wx),
		Wh: autodiff.NewParam(name+".Wh", wh),
		B:  autodiff.NewParam(name+".b", b),
	}
}

// Params implements Module.
func (l *LSTM) Params() []*autodiff.Param { return []*autodiff.Param{l.Wx, l.Wh, l.B} }

// Step advances the cell one timestep. x is B-by-In (B = 1 for a single
// sentence, larger for a lockstep batch); h and c are B-by-H (pass nil for
// the initial zero state). It returns the new h and c.
func (l *LSTM) Step(tp *autodiff.Tape, x, h, c *autodiff.Node) (hNew, cNew *autodiff.Node) {
	if h == nil {
		h = tp.NewConstBuf(x.Value.Rows, l.H)
		c = tp.NewConstBuf(x.Value.Rows, l.H)
	}
	gates := tp.AddRowVec(tp.Add(tp.MatMul(x, tp.Use(l.Wx)), tp.MatMul(h, tp.Use(l.Wh))), tp.Use(l.B))
	i := tp.Sigmoid(tp.SliceCols(gates, 0, l.H))
	f := tp.Sigmoid(tp.SliceCols(gates, l.H, 2*l.H))
	g := tp.Tanh(tp.SliceCols(gates, 2*l.H, 3*l.H))
	o := tp.Sigmoid(tp.SliceCols(gates, 3*l.H, 4*l.H))
	cNew = tp.Add(tp.Mul(f, c), tp.Mul(i, g))
	hNew = tp.Mul(o, tp.Tanh(cNew))
	return hNew, cNew
}

// Run unrolls the cell over a sequence (seq-by-In) and returns the hidden
// states stacked as seq-by-H.
func (l *LSTM) Run(tp *autodiff.Tape, seq *autodiff.Node) *autodiff.Node {
	n := seq.Value.Rows
	var h, c *autodiff.Node
	outs := make([]*autodiff.Node, n)
	for t := 0; t < n; t++ {
		x := tp.SliceRows(seq, t, t+1)
		h, c = l.Step(tp, x, h, c)
		outs[t] = h
	}
	return tp.ConcatRows(outs...)
}

// RunReverse unrolls the cell right-to-left and returns hidden states in
// the original (left-to-right) order.
func (l *LSTM) RunReverse(tp *autodiff.Tape, seq *autodiff.Node) *autodiff.Node {
	n := seq.Value.Rows
	var h, c *autodiff.Node
	outs := make([]*autodiff.Node, n)
	for t := n - 1; t >= 0; t-- {
		x := tp.SliceRows(seq, t, t+1)
		h, c = l.Step(tp, x, h, c)
		outs[t] = h
	}
	return tp.ConcatRows(outs...)
}

// stepFused advances the cell one lockstep timestep through the fully
// fused LSTMStep op. wx, wh, b are the parameter nodes, hoisted by the
// caller so one Use per parameter serves the whole sequence. Bitwise
// identical to Step.
func (l *LSTM) stepFused(tp *autodiff.Tape, x, h, c, wx, wh, b *autodiff.Node) (hNew, cNew *autodiff.Node) {
	if h == nil {
		h = tp.NewConstBuf(x.Value.Rows, l.H)
		c = tp.NewConstBuf(x.Value.Rows, l.H)
	}
	return tp.LSTMStep(x, h, c, wx, wh, b, l.H)
}

// RunSeq unrolls the cell over per-timestep input batches xs (each
// B-by-In, one node per timestep of a length-bucketed minibatch) and
// returns the per-timestep hidden-state nodes (each B-by-H). With
// fused=true the step runs through the fused LSTM ops; with fused=false it
// replays the generic op composition (the retained reference path). Both
// produce bitwise-identical values and gradients.
func (l *LSTM) RunSeq(tp *autodiff.Tape, xs []*autodiff.Node, fused bool) []*autodiff.Node {
	outs := make([]*autodiff.Node, len(xs))
	var h, c *autodiff.Node
	if fused {
		wx, wh, b := tp.Use(l.Wx), tp.Use(l.Wh), tp.Use(l.B)
		for t, x := range xs {
			h, c = l.stepFused(tp, x, h, c, wx, wh, b)
			outs[t] = h
		}
	} else {
		for t, x := range xs {
			h, c = l.Step(tp, x, h, c)
			outs[t] = h
		}
	}
	return outs
}

// RunSeqReverse is RunSeq right-to-left, with hidden states returned in
// the original (left-to-right) timestep order.
func (l *LSTM) RunSeqReverse(tp *autodiff.Tape, xs []*autodiff.Node, fused bool) []*autodiff.Node {
	outs := make([]*autodiff.Node, len(xs))
	var h, c *autodiff.Node
	if fused {
		wx, wh, b := tp.Use(l.Wx), tp.Use(l.Wh), tp.Use(l.B)
		for t := len(xs) - 1; t >= 0; t-- {
			h, c = l.stepFused(tp, xs[t], h, c, wx, wh, b)
			outs[t] = h
		}
	} else {
		for t := len(xs) - 1; t >= 0; t-- {
			h, c = l.Step(tp, xs[t], h, c)
			outs[t] = h
		}
	}
	return outs
}

// BiLSTM runs a forward and a backward LSTM over the sequence and
// concatenates their hidden states per timestep (the paper's NER encoder,
// after Akbik et al. 2018).
type BiLSTM struct {
	Fwd, Bwd *LSTM
}

// NewBiLSTM returns a bidirectional LSTM; the output size is 2*hidden.
func NewBiLSTM(name string, in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{
		Fwd: NewLSTM(name+".fwd", in, hidden, rng),
		Bwd: NewLSTM(name+".bwd", in, hidden, rng),
	}
}

// Forward returns seq-by-2H hidden states.
func (b *BiLSTM) Forward(tp *autodiff.Tape, seq *autodiff.Node) *autodiff.Node {
	return tp.ConcatCols(b.Fwd.Run(tp, seq), b.Bwd.RunReverse(tp, seq))
}

// ForwardSeq runs both directions over per-timestep batches xs (each
// B-by-In) and returns the hidden states stacked as (T*B)-by-2H, with row
// t*B+b holding sentence b at timestep t. The fused flag selects the fast
// fused step or the retained generic composition; results are bitwise
// identical, and each sentence's rows equal what a per-sentence Forward
// would produce.
func (b *BiLSTM) ForwardSeq(tp *autodiff.Tape, xs []*autodiff.Node, fused bool) *autodiff.Node {
	hf := b.Fwd.RunSeq(tp, xs, fused)
	hb := b.Bwd.RunSeqReverse(tp, xs, fused)
	if fused {
		return tp.StackBiRows(hf, hb)
	}
	cat := make([]*autodiff.Node, len(xs))
	for t := range xs {
		cat[t] = tp.ConcatCols(hf[t], hb[t])
	}
	return tp.ConcatRows(cat...)
}

// Params implements Module.
func (b *BiLSTM) Params() []*autodiff.Param {
	return append(b.Fwd.Params(), b.Bwd.Params()...)
}

// Conv1D is a bank of 1-D convolutions over token sequences with multiple
// filter widths, as in Kim (2014): each width w has Out filters over
// windows of w consecutive token vectors; outputs are max-pooled over time
// and concatenated (len(Widths)*Out features).
type Conv1D struct {
	Widths []int
	In     int
	Out    int
	W      []*autodiff.Param // per width: (w*In) x Out
	B      []*autodiff.Param // per width: 1 x Out
}

// NewConv1D returns a Glorot-initialized convolution bank.
func NewConv1D(name string, widths []int, in, out int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{Widths: widths, In: in, Out: out}
	for _, w := range widths {
		wm := matrix.NewDense(w*in, out)
		XavierInit(wm, w*in, out, rng)
		c.W = append(c.W, autodiff.NewParam(name+".W", wm))
		c.B = append(c.B, autodiff.NewParam(name+".b", matrix.NewDense(1, out)))
	}
	return c
}

// Forward maps a seq-by-In sequence to a 1-by-(len(Widths)*Out) feature
// vector: convolution, ReLU, max-over-time pooling per width. Sequences
// shorter than a width reuse the largest possible window.
func (c *Conv1D) Forward(tp *autodiff.Tape, seq *autodiff.Node) *autodiff.Node {
	var pooled []*autodiff.Node
	n := seq.Value.Rows
	for wi, w := range c.Widths {
		eff := w
		if n < eff {
			eff = n
		}
		var windows []*autodiff.Node
		for s := 0; s+eff <= n; s++ {
			win := tp.Reshape(tp.SliceRows(seq, s, s+eff), 1, eff*c.In)
			if eff < w {
				// Zero-pad the flattened window to the filter width.
				pad := tp.Const(matrix.NewDense(1, (w-eff)*c.In))
				win = tp.ConcatCols(win, pad)
			}
			windows = append(windows, win)
		}
		stacked := tp.ConcatRows(windows...)
		conv := tp.ReLU(tp.AddRowVec(tp.MatMul(stacked, tp.Use(c.W[wi])), tp.Use(c.B[wi])))
		pooled = append(pooled, tp.MaxPoolRows(conv))
	}
	return tp.ConcatCols(pooled...)
}

// Params implements Module.
func (c *Conv1D) Params() []*autodiff.Param {
	out := make([]*autodiff.Param, 0, 2*len(c.W))
	out = append(out, c.W...)
	out = append(out, c.B...)
	return out
}

// ForwardBatch maps a length-bucketed minibatch of batch sequences, each n
// tokens long, to a batch-by-(len(Widths)*Out) feature matrix in lockstep:
// one window-stack, one matrix product, and one segmented max-pool per
// filter width for the whole batch. tok(b, t) returns the (frozen)
// embedding of token t of sequence b; windows are constants, so no
// gradient flows into them. With fused=true pooling uses the fused
// MaxPoolSegRows op; fused=false replays the per-sequence
// SliceRows+MaxPoolRows+ConcatRows composition (the retained reference
// path). Both are bitwise identical to each other and to per-sequence
// Forward calls over the same inputs.
func (c *Conv1D) ForwardBatch(tp *autodiff.Tape, tok func(b, t int) []float64, batch, n int, fused bool) *autodiff.Node {
	var pooled []*autodiff.Node
	for wi, w := range c.Widths {
		eff := w
		if n < eff {
			eff = n
		}
		perSeq := n - eff + 1
		// Zero-filled buffer: when eff < w the tail of each flattened
		// window stays zero, matching Forward's explicit padding.
		win := tp.NewConstBuf(batch*perSeq, w*c.In)
		for b := 0; b < batch; b++ {
			for s := 0; s < perSeq; s++ {
				dst := win.Value.Row(b*perSeq + s)
				for k := 0; k < eff; k++ {
					copy(dst[k*c.In:(k+1)*c.In], tok(b, s+k))
				}
			}
		}
		conv := tp.ReLU(tp.AddRowVec(tp.MatMul(win, tp.Use(c.W[wi])), tp.Use(c.B[wi])))
		if fused {
			pooled = append(pooled, tp.MaxPoolSegRows(conv, perSeq))
		} else {
			segs := make([]*autodiff.Node, batch)
			for b := 0; b < batch; b++ {
				segs[b] = tp.MaxPoolRows(tp.SliceRows(conv, b*perSeq, (b+1)*perSeq))
			}
			pooled = append(pooled, tp.ConcatRows(segs...))
		}
	}
	return tp.ConcatCols(pooled...)
}

// LengthBatches is the deterministic schedule behind lockstep sequence
// training: it groups sequence indices by exact length (ascending) —
// preserving original order within a group — and slices each group into
// minibatches of at most batch indices. Zero-length sequences are
// dropped. The schedule is a pure function of (lengths, batch), so the
// fast and reference trainers sharing it see identical batches.
func LengthBatches(lengths []int, batch int) [][]int {
	if batch <= 0 {
		batch = 1
	}
	byLen := map[int][]int{}
	var ls []int
	for i, n := range lengths {
		if n == 0 {
			continue
		}
		if _, ok := byLen[n]; !ok {
			ls = append(ls, n)
		}
		byLen[n] = append(byLen[n], i)
	}
	sort.Ints(ls)
	var out [][]int
	for _, n := range ls {
		idx := byLen[n]
		for s := 0; s < len(idx); s += batch {
			e := s + batch
			if e > len(idx) {
				e = len(idx)
			}
			out = append(out, idx[s:e:e])
		}
	}
	return out
}
