package compress

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"anchor/internal/floats"
)

// serialOptimalClip is the retained pre-parallel reference: the exact
// grid-search loop OptimalClip ran before it was sharded, kept here so
// the worker-invariance test pins "bitwise identical to serial" rather
// than only "identical to itself".
func serialOptimalClip(data []float64, bits int) float64 {
	abs := make([]float64, len(data))
	for i, v := range data {
		abs[i] = math.Abs(v)
	}
	maxAbs := floats.Max(abs)
	if maxAbs == 0 {
		return 1
	}
	sort.Float64s(abs)
	bestClip, bestMSE := maxAbs, math.Inf(1)
	for _, q := range clipGrid {
		clip := floats.QuantileSorted(abs, q)
		if clip <= 0 {
			continue
		}
		mse := quantMSE(data, clip, bits)
		if mse < bestMSE {
			bestMSE, bestClip = mse, clip
		}
	}
	return bestClip
}

func randomData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return data
}

func TestOptimalClipWorkerInvariance(t *testing.T) {
	// Large enough to engage the parallel path (parMinLen elements).
	data := randomData(3*parMinLen+17, 11)
	for _, bits := range []int{1, 4, 8} {
		want := serialOptimalClip(data, bits)
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := OptimalClipWorkers(data, bits, workers)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("bits=%d workers=%d: clip %v != serial %v", bits, workers, got, want)
			}
		}
	}
}

func TestQuantizeValuesWorkerInvariance(t *testing.T) {
	data := randomData(2*parMinLen+5, 12)
	for _, bits := range []int{1, 4, 8} {
		clip := OptimalClip(data, bits)
		want := append([]float64(nil), data...)
		for i, v := range want {
			want[i] = quantizeValue(v, clip, bits)
		}
		for _, workers := range []int{1, 2, 3, 7, 16} {
			got := append([]float64(nil), data...)
			QuantizeValuesWorkers(got, bits, clip, workers)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("bits=%d workers=%d: element %d differs", bits, workers, i)
				}
			}
		}
	}
}

// TestQuantizeFloat32Representable is the invariant the storage layer's
// lossless-kind auto-pick and the float32/LUT serving kernels rely on:
// every value a b<=8 quantization produces survives a float64->float32->
// float64 round trip exactly.
func TestQuantizeFloat32Representable(t *testing.T) {
	f := func(seed int64, rawBits uint8) bool {
		bits := int(rawBits%8) + 1 // 1..8
		data := randomData(257, seed)
		clip := OptimalClip(data, bits)
		QuantizeValues(data, bits, clip)
		for _, v := range data {
			if v != float64(float32(v)) {
				return false
			}
		}
		// The level table itself must agree with the quantized values.
		lv := Levels(clip, bits)
		for _, l := range lv {
			if l != float64(float32(l)) {
				return false
			}
		}
		for _, v := range data {
			i := sort.SearchFloat64s(lv, v)
			if i >= len(lv) || lv[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeRecordsClip(t *testing.T) {
	e := randomEmbedding(30, 8, 21)
	clip := OptimalClip(e.Vectors.Data, 4)
	q := Quantize(e, 4, clip)
	if q.Meta.Clip != clip {
		t.Fatalf("Meta.Clip = %v, want %v", q.Meta.Clip, clip)
	}
	full := Quantize(e, 32, clip)
	if full.Meta.Clip != 0 {
		t.Fatalf("full-precision Meta.Clip = %v, want 0", full.Meta.Clip)
	}
	qx, qy := QuantizePair(e, randomEmbedding(30, 8, 22), 2)
	if qx.Meta.Clip == 0 || qx.Meta.Clip != qy.Meta.Clip {
		t.Fatalf("pair clips %v, %v: want equal and nonzero", qx.Meta.Clip, qy.Meta.Clip)
	}
}

func TestQuantizePairWorkerInvariance(t *testing.T) {
	x := randomEmbedding(80, 64, 23) // 5120 elements > parMinLen
	y := randomEmbedding(80, 64, 24)
	wx, wy := QuantizePairWorkers(x, y, 4, 1)
	for _, workers := range []int{2, 5, 16} {
		gx, gy := QuantizePairWorkers(x, y, 4, workers)
		for i := range wx.Vectors.Data {
			if math.Float64bits(gx.Vectors.Data[i]) != math.Float64bits(wx.Vectors.Data[i]) ||
				math.Float64bits(gy.Vectors.Data[i]) != math.Float64bits(wy.Vectors.Data[i]) {
				t.Fatalf("workers=%d: pair element %d differs", workers, i)
			}
		}
	}
}
