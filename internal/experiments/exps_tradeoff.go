package experiments

import (
	"fmt"
	"math"

	"anchor/internal/stats"
)

// Fig1 reproduces Figure 1: downstream instability of sentiment (SST-2)
// and NER (CoNLL-2003) as a function of dimension (at full precision) and
// of precision (at the mid dimension), per embedding algorithm.
func Fig1(r *Runner) []*Table {
	sent := AverageOverSeeds(r.SentimentGrid())
	nerCells := AverageOverSeeds(r.NERGrid())

	dimT := &Table{
		ID: "fig1", Title: "Instability vs dimension (32-bit precision), % disagreement",
		Columns: []string{"task", "algo", "dim", "memory(bits/word)", "%disagreement"},
	}
	for _, c := range FilterCells(sent, func(c Cell) bool { return c.Prec == 32 }) {
		if di, ok := c.DI["sst2"]; ok {
			dimT.AddRow("sst2", c.Algo, c.Dim, c.MemoryBits(), di)
		}
	}
	for _, c := range FilterCells(nerCells, func(c Cell) bool { return c.Prec == 32 }) {
		if di, ok := c.DI["conll2003"]; ok {
			dimT.AddRow("conll2003", c.Algo, c.Dim, c.MemoryBits(), di)
		}
	}

	mid := r.Cfg.midDim()
	precT := &Table{
		ID: "fig1", Title: fmt.Sprintf("Instability vs precision (dim %d), %% disagreement", mid),
		Columns: []string{"task", "algo", "precision", "memory(bits/word)", "%disagreement"},
	}
	for _, c := range FilterCells(sent, func(c Cell) bool { return c.Dim == mid }) {
		if di, ok := c.DI["sst2"]; ok {
			precT.AddRow("sst2", c.Algo, c.Prec, c.MemoryBits(), di)
		}
	}
	nerMid := nerMidDim(r)
	for _, c := range FilterCells(nerCells, func(c Cell) bool { return c.Dim == nerMid }) {
		if di, ok := c.DI["conll2003"]; ok {
			precT.AddRow("conll2003", c.Algo, c.Prec, c.MemoryBits(), di)
		}
	}
	return []*Table{dimT, precT}
}

func nerMidDim(r *Runner) int {
	return r.Cfg.NERDims[(len(r.Cfg.NERDims)-1)/2]
}

// Fig2 reproduces Figure 2: NER instability for every dimension-precision
// combination against memory, with the fitted linear-log trend.
func Fig2(r *Runner) []*Table {
	cells := AverageOverSeeds(r.NERGrid())
	t := &Table{
		ID: "fig2", Title: "NER (CoNLL-2003) instability vs memory, all dim x prec",
		Columns: []string{"algo", "dim", "prec", "memory(bits/word)", "%disagreement"},
	}
	var pts []stats.LinearLogPoint
	for _, c := range cells {
		di, ok := c.DI["conll2003"]
		if !ok {
			continue
		}
		t.AddRow(c.Algo, c.Dim, c.Prec, c.MemoryBits(), di)
		pts = append(pts, stats.LinearLogPoint{Task: "conll-" + c.Algo, X: float64(c.MemoryBits()), Y: di})
	}
	fitT := &Table{
		ID: "fig2", Title: "Linear-log fit DI = C - slope*log2(bits/word)",
		Columns: []string{"series", "slope(% per 2x memory)"},
	}
	if len(pts) >= 2 {
		fit := stats.FitLinearLog(pts)
		fitT.AddRow("conll2003 (all algos)", fit.Slope)
	}
	return []*Table{t, fitT}
}

// RuleOfThumb reproduces the Section 3.3 analysis: a joint linear-log fit
// of instability against memory across the sentiment tasks and NER (the
// paper reports a ~1.3% absolute drop per memory doubling), plus the
// independent dimension-only and precision-only fits (paper: 1.2% and
// 1.4%), restricted to the low-memory regime where the trend is linear.
func RuleOfThumb(r *Runner) []*Table {
	sent := r.SentimentGrid()
	nerCells := r.NERGrid()
	memCut := float64(r.Cfg.maxDim() * 32 / 8) // below this memory the trend is linear

	var memPts, dimPts, precPts []stats.LinearLogPoint
	add := func(task string, c Cell, di float64) {
		if float64(c.MemoryBits()) <= memCut {
			memPts = append(memPts, stats.LinearLogPoint{
				Task: task + "/" + c.Algo, X: float64(c.MemoryBits()), Y: di,
			})
		}
		dimPts = append(dimPts, stats.LinearLogPoint{
			Task: fmt.Sprintf("%s/%s/b%d", task, c.Algo, c.Prec), X: float64(c.Dim), Y: di,
		})
		precPts = append(precPts, stats.LinearLogPoint{
			Task: fmt.Sprintf("%s/%s/d%d", task, c.Algo, c.Dim), X: float64(c.Prec), Y: di,
		})
	}
	for _, c := range sent {
		for task, di := range c.DI {
			add(task, c, di)
		}
	}
	for _, c := range nerCells {
		if di, ok := c.DI["conll2003"]; ok {
			add("conll2003", c, di)
		}
	}

	t := &Table{
		ID: "rule", Title: "Stability-memory rule of thumb (paper: memory 1.3, dim 1.2, precision 1.4)",
		Columns: []string{"axis", "slope (% abs. decrease per 2x)"},
	}
	t.AddRow("memory (bits/word)", stats.FitLinearLog(memPts).Slope)
	t.AddRow("dimension", stats.FitLinearLog(dimPts).Slope)
	t.AddRow("precision", stats.FitLinearLog(precPts).Slope)
	return []*Table{t}
}

// Fig4 reproduces Appendix Figure 4: the dimension effect on the extra
// sentiment tasks at full and 1-bit precision.
func Fig4(r *Runner) []*Table {
	cells := AverageOverSeeds(r.SentimentGrid())
	t := &Table{
		ID: "fig4", Title: "Sentiment instability vs dimension at 32-bit and 1-bit",
		Columns: []string{"task", "algo", "precision", "dim", "%disagreement"},
	}
	for _, c := range cells {
		if c.Prec != 32 && c.Prec != 1 {
			continue
		}
		for _, task := range r.Cfg.SentimentTasks {
			if di, ok := c.DI[task]; ok {
				t.AddRow(task, c.Algo, c.Prec, c.Dim, di)
			}
		}
	}
	return []*Table{t}
}

// Fig5 reproduces Appendix Figure 5: the precision effect on the
// sentiment tasks at the mid dimension.
func Fig5(r *Runner) []*Table {
	mid := r.Cfg.midDim()
	cells := AverageOverSeeds(r.SentimentGrid())
	t := &Table{
		ID: "fig5", Title: fmt.Sprintf("Sentiment instability vs precision (dim %d)", mid),
		Columns: []string{"task", "algo", "precision", "%disagreement"},
	}
	for _, c := range FilterCells(cells, func(c Cell) bool { return c.Dim == mid }) {
		for _, task := range r.Cfg.SentimentTasks {
			if di, ok := c.DI[task]; ok {
				t.AddRow(task, c.Algo, c.Prec, di)
			}
		}
	}
	return []*Table{t}
}

// Fig6 reproduces Appendix Figure 6: instability vs memory for all four
// sentiment tasks and every dimension-precision combination.
func Fig6(r *Runner) []*Table {
	cells := AverageOverSeeds(r.SentimentGrid())
	t := &Table{
		ID: "fig6", Title: "Sentiment instability vs memory, all dim x prec",
		Columns: []string{"task", "algo", "dim", "prec", "memory(bits/word)", "%disagreement"},
	}
	for _, c := range cells {
		for _, task := range r.Cfg.SentimentTasks {
			if di, ok := c.DI[task]; ok {
				t.AddRow(task, c.Algo, c.Dim, c.Prec, c.MemoryBits(), di)
			}
		}
	}
	return []*Table{t}
}

// Fig7 reproduces Appendix Figure 7: quality-memory and quality-stability
// tradeoffs for the sentiment tasks.
func Fig7(r *Runner) []*Table {
	cells := AverageOverSeeds(r.SentimentGrid())
	t := &Table{
		ID: "fig7", Title: "Sentiment quality vs memory and vs instability",
		Columns: []string{"task", "algo", "dim", "prec", "memory(bits/word)", "test accuracy", "%disagreement"},
	}
	for _, c := range cells {
		for _, task := range r.Cfg.SentimentTasks {
			if di, ok := c.DI[task]; ok {
				t.AddRow(task, c.Algo, c.Dim, c.Prec, c.MemoryBits(), c.Acc[task], di)
			}
		}
	}
	return []*Table{t}
}

// Fig8 reproduces Appendix Figure 8: NER quality tradeoffs.
func Fig8(r *Runner) []*Table {
	cells := AverageOverSeeds(r.NERGrid())
	t := &Table{
		ID: "fig8", Title: "NER quality (entity token F1) vs memory and vs instability",
		Columns: []string{"algo", "dim", "prec", "memory(bits/word)", "F1", "%disagreement"},
	}
	for _, c := range cells {
		if di, ok := c.DI["conll2003"]; ok {
			t.AddRow(c.Algo, c.Dim, c.Prec, c.MemoryBits(), c.Acc["conll2003"], di)
		}
	}
	return []*Table{t}
}

// MonotonicityReport summarizes, for every (task, algo), the Spearman
// correlation between memory and instability — the quantitative check that
// "more memory, more stable" holds (used by tests and EXPERIMENTS.md).
func MonotonicityReport(r *Runner) []*Table {
	cells := AverageOverSeeds(r.SentimentGrid())
	t := &Table{
		ID: "monotone", Title: "Spearman(memory, instability) per task/algo (want strongly negative)",
		Columns: []string{"task", "algo", "spearman"},
	}
	for _, algo := range r.Cfg.Algorithms {
		for _, task := range r.Cfg.SentimentTasks {
			var mem, di []float64
			for _, c := range cells {
				if c.Algo != algo {
					continue
				}
				if v, ok := c.DI[task]; ok {
					mem = append(mem, math.Log2(float64(c.MemoryBits())))
					di = append(di, v)
				}
			}
			if len(mem) >= 3 {
				t.AddRow(task, algo, stats.Spearman(mem, di))
			}
		}
	}
	return []*Table{t}
}
