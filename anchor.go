// Package anchor is a from-scratch Go reproduction of "Understanding the
// Downstream Instability of Word Embeddings" (Leszczynski et al., MLSys
// 2020). It studies how retraining word embeddings on slightly different
// corpora changes the predictions of downstream NLP models, exposes the
// paper's stability-memory tradeoff, and implements its main contribution:
// the eigenspace instability measure, a theoretically grounded criterion
// for selecting embedding dimension-precision parameters without training
// downstream models.
//
// The package is a facade over the internal implementation:
//
//   - corpora:   synthetic Wikipedia-snapshot pairs with controlled drift
//   - trainers:  CBOW, GloVe, matrix completion (MC), fastText subword —
//     all running on the deterministic sharded engine in internal/parallel,
//     so training uses every core yet stays bitwise reproducible for any
//     worker count
//   - compression: uniform quantization with shared clipping thresholds
//   - measures:  eigenspace instability, k-NN, semantic displacement,
//     PIP loss, eigenspace overlap — built on cache-blocked parallel
//     matrix kernels and a batched k-NN engine, deterministic for any
//     worker count
//   - downstream: sentiment (linear BOW, CNN), NER (BiLSTM, BiLSTM-CRF),
//     knowledge graph embeddings (TransE), mini-BERT
//   - selection: dimension-precision selection under memory budgets
//   - experiments: one runner per paper table/figure
//
// # Quickstart
//
// The primary entry point is the Service: a long-lived, concurrency-safe
// handle whose methods take a context, resolve algorithms, measures, and
// downstream tasks through pluggable registries, and cache every trained
// embedding in a persistent artifact store.
//
//	svc, err := anchor.NewService(
//		anchor.WithConfig(anchor.SmallExperimentConfig()),
//		anchor.WithCacheDir(".anchor-cache"), // embeddings survive restarts
//	)
//	if err != nil { ... }
//	ctx := context.Background()
//
//	// Cheap prediction: every distance measure at one grid cell.
//	rep, err := svc.MeasureCell(ctx, "cbow", 64, 4, 1)
//	fmt.Println(rep.Values["eigenspace-instability"])
//
//	// Ground truth: train the downstream model pair and diff predictions.
//	st, err := svc.Stability(ctx, "cbow", "sst2", 64, 4, 1)
//	fmt.Println(st.Disagreement, st.Accuracy)
//
//	// The paper's payoff: pick dimension x precision under a memory
//	// budget without training downstream models.
//	sel, err := svc.Select(ctx, anchor.SelectRequest{
//		Algo: "cbow", Dims: []int{32, 64}, Precisions: []int{1, 4, 32},
//		BudgetBits: 256,
//	})
//	fmt.Println(sel.Best)
//
// The same API serves over HTTP: `anchor serve -addr :8080` exposes
// /v1/train, /v1/measures, /v1/stability, /v1/select, and /v1/healthz
// (see internal/serve). New trainers, measures, and tasks plug in by name
// via embtrain.Register, core.RegisterMeasure, and tasks.Register.
//
// The flat helper functions below (TrainEmbedding, AllMeasures, ...) are
// the original facade; they remain for small scripts and to pin the
// golden tests, but new code should prefer the Service.
package anchor

import (
	"fmt"
	"io"

	"anchor/internal/compress"
	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/embtrain"
	"anchor/internal/experiments"
	"anchor/internal/selection"
	"anchor/internal/stats"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Embedding is a vocabulary-aligned word embedding matrix.
	Embedding = embedding.Embedding
	// EmbeddingMeta records an embedding's provenance.
	EmbeddingMeta = embedding.Meta
	// Corpus is a generated snapshot of the synthetic corpus.
	Corpus = corpus.Corpus
	// CorpusConfig parameterizes corpus generation.
	CorpusConfig = corpus.Config
	// Measure is an embedding distance measure predicting downstream
	// instability (larger = more unstable).
	Measure = core.Measure
	// EigenspaceInstability is the paper's proposed measure (Definition 2).
	EigenspaceInstability = core.EigenspaceInstability
	// Candidate is a dimension-precision configuration for selection.
	Candidate = selection.Candidate
	// ExperimentConfig scopes a reproduction run.
	ExperimentConfig = experiments.Config
	// LinearLogFit is the fitted stability-memory trend.
	LinearLogFit = stats.LinearLogFit
	// LinearLogPoint is one observation for the trend fit.
	LinearLogPoint = stats.LinearLogPoint
)

// Corpus snapshot years.
const (
	Wiki17 = corpus.Wiki17
	Wiki18 = corpus.Wiki18
)

// DefaultCorpusConfig returns the repro-scale corpus configuration.
func DefaultCorpusConfig() CorpusConfig { return corpus.DefaultConfig() }

// GenerateCorpus deterministically generates a snapshot.
func GenerateCorpus(cfg CorpusConfig, year corpus.Year) *Corpus {
	return corpus.Generate(cfg, year)
}

// Algorithms lists the registered embedding algorithm names (see
// embtrain.Register for plugging in new ones).
func Algorithms() []string { return embtrain.Names() }

// TrainEmbedding trains an embedding with the named algorithm's default
// configuration on all CPUs. The result is deterministic in (corpus, dim,
// seed): training runs over a fixed set of seed-derived shards whose
// deltas merge in a fixed order, so the embedding is bitwise identical no
// matter how many cores execute it (see TrainEmbeddingWorkers to bound
// the core count).
//
// Deprecated: prefer Service.Train, which caches results in the
// artifact store and supports cancellation.
func TrainEmbedding(algo string, c *Corpus, dim int, seed int64) (*Embedding, error) {
	return TrainEmbeddingWorkers(algo, c, dim, seed, 0)
}

// TrainEmbeddingWorkers is TrainEmbedding with an explicit goroutine
// budget (workers <= 0 selects all CPUs). Worker count is a pure
// throughput knob: it never changes the trained embedding.
//
// Deprecated: prefer Service.Train with WithWorkers.
func TrainEmbeddingWorkers(algo string, c *Corpus, dim int, seed int64, workers int) (*Embedding, error) {
	tr, ok := embtrain.ByNameWorkers(algo, workers)
	if !ok {
		return nil, fmt.Errorf("anchor: unknown algorithm %q (have %v)", algo, Algorithms())
	}
	return tr.Train(c, dim, seed), nil
}

// QuantizePair compresses an embedding pair to the given precision (bits
// per entry) with uniform quantization, computing the clipping threshold
// on the first embedding and sharing it with the second as the paper
// prescribes. bits = 32 means full precision.
func QuantizePair(x, xTilde *Embedding, bits int) (*Embedding, *Embedding) {
	return compress.QuantizePair(x, xTilde, bits)
}

// AlignQuantize performs the paper's full Section 3 preparation ritual in
// one call: it rotates b onto a with orthogonal Procrustes (in place),
// tags b's provenance as the aligned variant, and quantizes the pair to
// the given precision with a shared clip. It replaces the align ->
// meta-tag -> quantize sequence previously inlined at every call site.
func AlignQuantize(a, b *Embedding, bits int) (*Embedding, *Embedding) {
	embedding.AlignTagged(a, b)
	return compress.QuantizePair(a, b, bits)
}

// LoadEmbedding reads an embedding saved with Embedding.SaveFile.
func LoadEmbedding(path string) (*Embedding, error) { return embedding.LoadFile(path) }

// NewEigenspaceInstability returns the paper's measure with anchors
// (e, eTilde) and the selected alpha = 3.
func NewEigenspaceInstability(e, eTilde *Embedding) *EigenspaceInstability {
	return core.NewEigenspaceInstability(e, eTilde)
}

// AllMeasures returns the paper's five embedding distance measures in
// reporting order, with the given EIS anchors, running on all CPUs.
func AllMeasures(e, eTilde *Embedding) []Measure { return core.AllMeasures(e, eTilde) }

// AllMeasuresWorkers is AllMeasures with an explicit goroutine budget
// (workers <= 0 selects all CPUs). Like training, measure evaluation is
// bitwise deterministic: every measure returns the same value for every
// worker count.
func AllMeasuresWorkers(e, eTilde *Embedding, workers int) []Measure {
	return core.AllMeasuresWorkers(e, eTilde, workers)
}

// PredictionDisagreement returns the fraction of aligned predictions that
// differ between two downstream models (Definition 1, zero-one loss).
func PredictionDisagreement[T comparable](a, b []T) float64 {
	return core.PredictionDisagreement(a, b)
}

// PredictionDisagreementPct returns PredictionDisagreement in percent.
func PredictionDisagreementPct[T comparable](a, b []T) float64 {
	return core.PredictionDisagreementPct(a, b)
}

// SelectUnderBudget picks, within each memory budget (dim x precision)
// group, the candidate minimizing the named measure, and reports the mean
// and worst absolute distance to the oracle instability (Section 5.2's
// harder selection setting).
func SelectUnderBudget(cands []Candidate, measure string) (mean, worst float64) {
	return selection.OracleDistance(cands, selection.MeasureSelector(measure))
}

// PairwiseSelectionError reports how often the named measure picks the
// less stable of two candidate configurations (Section 5.2's first
// selection setting).
func PairwiseSelectionError(cands []Candidate, measure string) float64 {
	return selection.PairwiseError(cands, measure)
}

// FitStabilityMemoryTrend fits the paper's linear-log rule of thumb
// DI ≈ C_task − slope·log2(memory) to observations.
func FitStabilityMemoryTrend(points []LinearLogPoint) LinearLogFit {
	return stats.FitLinearLog(points)
}

// Experiment configurations for reproduction runs.
func SmallExperimentConfig() ExperimentConfig { return experiments.SmallConfig() }

// BenchExperimentConfig returns the benchmark-scale configuration.
func BenchExperimentConfig() ExperimentConfig { return experiments.BenchConfig() }

// ReproExperimentConfig returns the full-scale configuration.
func ReproExperimentConfig() ExperimentConfig { return experiments.ReproConfig() }

// ExperimentIDs lists every reproducible paper artifact.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment executes a paper artifact reproduction by id ("fig1",
// "table3", ...) and renders its tables to w. The runner caches trained
// embeddings, so reuse it across experiments via RunAllExperiments when
// reproducing several artifacts.
//
// Deprecated: prefer Service.Experiment, which shares one runner
// (and one artifact store) across calls.
func RunExperiment(cfg ExperimentConfig, id string, w io.Writer) error {
	return renderExperiment(experiments.NewRunner(cfg), id, w)
}

// RunAllExperiments executes the given artifact ids (or all registered
// ones if empty) against one shared runner and renders results to w.
//
// Deprecated: prefer Service.Experiments.
func RunAllExperiments(cfg ExperimentConfig, ids []string, w io.Writer) error {
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	r := experiments.NewRunner(cfg)
	for _, id := range ids {
		if err := renderExperiment(r, id, w); err != nil {
			return err
		}
	}
	return nil
}

func renderExperiment(r *experiments.Runner, id string, w io.Writer) error {
	tables, err := experiments.Run(r, id)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Render(w)
	}
	return nil
}
