// Package serve exposes the anchor Service over HTTP as a JSON API — the
// selection service the paper argues for, as a traffic-serving surface:
// given an embedding configuration (or a whole candidate grid), answer
// stability queries cheaply from measures and the artifact store instead
// of retraining downstream models.
//
// Endpoints (all under /v1, JSON in/out; see docs/HTTP_API.md for the
// full request/response reference):
//
//	GET  /v1/healthz          liveness + registry, store, and query stats
//	GET  /v1/vectors          word vector lookup in one snapshot
//	POST /v1/neighbors        k nearest neighbors in one snapshot
//	POST /v1/neighbors/delta  neighbor overlap between the two snapshots
//	POST /v1/train            train (or fetch) one embedding snapshot
//	POST /v1/measures         every distance measure at one grid cell
//	POST /v1/stability        true downstream disagreement for one cell
//	POST /v1/select           rank a dim x precision grid under a budget
//
// Requests are handled concurrently over one shared Service; the artifact
// store's singleflight guarantees concurrent identical queries train at
// most once, and determinism guarantees responses are bitwise identical
// to the library path for any worker count. Concurrent /v1/neighbors
// requests against the same snapshot are additionally micro-batched into
// shared matrix products without changing any response's bits. Each
// request is scoped to its connection's context, so a dropped client
// cancels its computation at the next stage boundary (reported as 499 in
// logs, nginx-style).
//
// Errors are structured: {"error": {"code": "...", "message": "..."}}
// with 400 for malformed or unknown-name requests, 404 for unknown
// routes and out-of-vocabulary words, 405 for wrong methods, and 500 for
// internal failures.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"anchor"
)

// StatusClientClosedRequest is the nginx convention for "client canceled
// the request before the response was ready".
const StatusClientClosedRequest = 499

// Server wraps one Service as an http.Handler.
type Server struct {
	svc *anchor.Service
	log *log.Logger
}

// New returns a Server over svc. logger may be nil to disable logging.
func New(svc *anchor.Service, logger *log.Logger) *Server {
	return &Server{svc: svc, log: logger}
}

// Handler returns the routed handler for the /v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/vectors", s.handleVectors)
	mux.HandleFunc("/v1/neighbors", s.handleNeighbors)
	mux.HandleFunc("/v1/neighbors/delta", s.handleNeighborDelta)
	mux.HandleFunc("/v1/train", s.handleTrain)
	mux.HandleFunc("/v1/measures", s.handleMeasures)
	mux.HandleFunc("/v1/stability", s.handleStability)
	mux.HandleFunc("/v1/select", s.handleSelect)
	// Unknown routes get the structured envelope too, not the mux's
	// plain-text default.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no route %s (see docs/HTTP_API.md for the /v1 endpoints)", r.URL.Path))
	})
	return mux
}

// errorBody is the structured error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("serve: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	s.writeJSON(w, status, body)
}

// fail maps a service error onto the structured error space: unknown
// names and invalid parameters are the client's fault (400), a word
// missing from a snapshot's vocabulary is an absent resource (404), a
// canceled request context is the client hanging up (499, nginx
// convention), and everything else is ours (500).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	var unk *anchor.UnknownNameError
	var inv *anchor.InvalidRequestError
	var uw *anchor.UnknownWordError
	switch {
	case errors.As(err, &unk):
		s.writeError(w, http.StatusBadRequest, "unknown_"+unk.Kind, unk.Error())
	case errors.As(err, &uw):
		// The request is well-formed; the word just does not exist in the
		// snapshot's vocabulary.
		s.writeError(w, http.StatusNotFound, "unknown_word", uw.Error())
	case errors.As(err, &inv):
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status is for logs and tests.
		s.logf("serve: %s %s canceled", r.Method, r.URL.Path)
		s.writeError(w, StatusClientClosedRequest, "client_closed_request", err.Error())
	default:
		s.logf("serve: %s %s failed: %v", r.Method, r.URL.Path, err)
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// decode parses a JSON body into v, rejecting unknown fields so typos in
// request payloads fail loudly instead of silently selecting defaults.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s requires %s", r.URL.Path, method))
		return false
	}
	return true
}

// healthzResponse reports liveness plus what is plugged in and how the
// artifact store is doing.
type healthzResponse struct {
	Status     string   `json:"status"`
	Algorithms []string `json:"algorithms"`
	Tasks      []string `json:"tasks"`
	Measures   []string `json:"measures"`
	Store      struct {
		MemHits   int64 `json:"mem_hits"`
		DiskHits  int64 `json:"disk_hits"`
		Computes  int64 `json:"computes"`
		Evictions int64 `json:"evictions"`
	} `json:"store"`
	Query struct {
		SnapshotHits   int64 `json:"snapshot_hits"`
		SnapshotLoads  int64 `json:"snapshot_loads"`
		Evictions      int64 `json:"evictions"`
		Batches        int64 `json:"batches"`
		BatchedQueries int64 `json:"batched_queries"`
		// ResidentBytes totals the bytes pinned by resident snapshots.
		ResidentBytes int64 `json:"resident_bytes"`
		// Snapshots lists the resident snapshots (most recently used
		// first) with their precision mode and footprint.
		Snapshots []anchor.SnapshotInfo `json:"snapshots"`
	} `json:"query"`
	// ServingBudgetBits is the serving-memory budget (dim*bits) used to
	// auto-select cells for dim-0 queries; 0 when disabled.
	ServingBudgetBits int `json:"serving_budget_bits,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := healthzResponse{
		Status:     "ok",
		Algorithms: s.svc.Algorithms(),
		Tasks:      s.svc.Tasks(),
		Measures:   s.svc.Measures(),
	}
	st := s.svc.StoreStats()
	resp.Store.MemHits = st.MemHits
	resp.Store.DiskHits = st.DiskHits
	resp.Store.Computes = st.Computes
	resp.Store.Evictions = st.Evictions
	qs := s.svc.QueryStats()
	resp.Query.SnapshotHits = qs.SnapshotHits
	resp.Query.SnapshotLoads = qs.SnapshotLoads
	resp.Query.Evictions = qs.Evictions
	resp.Query.Batches = qs.Batches
	resp.Query.BatchedQueries = qs.BatchedQueries
	resp.Query.Snapshots = s.svc.ResidentSnapshots()
	for _, in := range resp.Query.Snapshots {
		resp.Query.ResidentBytes += in.Bytes
	}
	resp.ServingBudgetBits = s.svc.ServingBudget()
	s.writeJSON(w, http.StatusOK, resp)
}

// trainRequest asks for one embedding snapshot.
type trainRequest struct {
	Algo string `json:"algo"`
	Year int    `json:"year"`
	Dim  int    `json:"dim"`
	Seed int64  `json:"seed"`
	// ReturnVectors includes the full matrix in the response (row-major);
	// by default only provenance and shape are returned.
	ReturnVectors bool `json:"return_vectors"`
}

type trainResponse struct {
	Algo      string    `json:"algo"`
	Corpus    string    `json:"corpus"`
	Dim       int       `json:"dim"`
	Seed      int64     `json:"seed"`
	Precision int       `json:"bits"`
	Rows      int       `json:"rows"`
	Vectors   []float64 `json:"vectors,omitempty"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req trainRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if req.Year == 0 {
		req.Year = 2017
	}
	e, err := s.svc.Train(r.Context(), req.Algo, req.Year, req.Dim, req.Seed)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	resp := trainResponse{
		Algo: e.Meta.Algorithm, Corpus: e.Meta.Corpus,
		Dim: e.Dim(), Seed: e.Meta.Seed, Precision: e.Meta.Precision,
		Rows: e.Rows(),
	}
	if req.ReturnVectors {
		resp.Vectors = e.Vectors.Data
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// cellRequest identifies one grid cell.
type cellRequest struct {
	Algo string `json:"algo"`
	Dim  int    `json:"dim"`
	Bits int    `json:"bits"`
	Seed int64  `json:"seed"`
}

func (s *Server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req cellRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.MeasureCell(r.Context(), req.Algo, req.Dim, req.Bits, req.Seed)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// stabilityRequest identifies one grid cell and a downstream task.
type stabilityRequest struct {
	Algo string `json:"algo"`
	Task string `json:"task"`
	Dim  int    `json:"dim"`
	Bits int    `json:"bits"`
	Seed int64  `json:"seed"`
}

func (s *Server) handleStability(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req stabilityRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.Stability(r.Context(), req.Algo, req.Task, req.Dim, req.Bits, req.Seed)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// queryOptions assembles the Service query options shared by the read
// path handlers. Zero values select the service defaults.
func queryOptions(year, k, bits int, seed int64) []anchor.QueryOption {
	var opts []anchor.QueryOption
	if year != 0 {
		opts = append(opts, anchor.QueryYear(year))
	}
	if k != 0 {
		opts = append(opts, anchor.QueryK(k))
	}
	if bits != 0 {
		opts = append(opts, anchor.QueryPrecision(bits))
	}
	if seed != 0 {
		opts = append(opts, anchor.QuerySeed(seed))
	}
	return opts
}

// handleVectors is GET /v1/vectors: word vector lookup in one snapshot.
// Parameters come from the query string (it is a read), words
// comma-separated: /v1/vectors?algo=cbow&dim=64&words=king,queen.
func (s *Server) handleVectors(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	var year, dim, bits int
	var seed int64
	for _, p := range []struct {
		name string
		dst  *int
	}{{"year", &year}, {"dim", &dim}, {"bits", &bits}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "invalid_request",
					fmt.Sprintf("bad %s %q", p.name, v))
				return
			}
			*p.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid_request", fmt.Sprintf("bad seed %q", v))
			return
		}
		seed = n
	}
	var words []string
	for _, part := range strings.Split(q.Get("words"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			words = append(words, part)
		}
	}
	rep, err := s.svc.Query(r.Context(), q.Get("algo"), dim, words, queryOptions(year, 0, bits, seed)...)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// neighborsRequest asks for nearest neighbors in one snapshot.
type neighborsRequest struct {
	Algo  string   `json:"algo"`
	Words []string `json:"words"`
	Dim   int      `json:"dim"`
	K     int      `json:"k"`
	Year  int      `json:"year"`
	// Bits selects the served precision (1..32; 0 = service default).
	// Dim 0 with a serving budget configured has the (dim, bits) cell
	// auto-selected.
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req neighborsRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.Neighbors(r.Context(), req.Algo, req.Dim, req.Words,
		queryOptions(req.Year, req.K, req.Bits, req.Seed)...)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// neighborDeltaRequest asks for neighbor overlap between the snapshots.
type neighborDeltaRequest struct {
	Algo  string   `json:"algo"`
	Words []string `json:"words"`
	Dim   int      `json:"dim"`
	K     int      `json:"k"`
	// Bits selects the served precision (1..32; 0 = service default).
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
}

func (s *Server) handleNeighborDelta(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req neighborDeltaRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.NeighborDelta(r.Context(), req.Algo, req.Dim, req.Words,
		queryOptions(0, req.K, req.Bits, req.Seed)...)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req anchor.SelectRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.Select(r.Context(), req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}
