package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"anchor"
)

// TestNeighborsEndpointANN: the ann/nprobe request fields route
// /v1/neighbors through the IVF index. At an nprobe covering every cell
// the answer body's neighbor lists are bitwise the exact endpoint's
// (ids and scores); the reply echoes the mode; and the engine's ANN
// counters move.
func TestNeighborsEndpointANN(t *testing.T) {
	srv, svc := newTestServer(t)
	words := queryWords(t, svc, 6)
	h := srv.Handler()

	type reply struct {
		ANN     bool `json:"ann"`
		NProbe  int  `json:"nprobe"`
		Results []struct {
			Word      string            `json:"word"`
			Neighbors []json.RawMessage `json:"neighbors"`
		} `json:"results"`
	}
	body := func(word string, ann bool, nprobe int) string {
		return fmt.Sprintf(`{"algo":"mc","words":[%q],"dim":8,"k":5,"year":2017,"seed":1,"ann":%v,"nprobe":%d}`,
			word, ann, nprobe)
	}

	for _, w := range words {
		var exact, approx reply
		if rr := do(t, h, http.MethodPost, "/v1/neighbors", body(w, false, 0), &exact); rr.Code != http.StatusOK {
			t.Fatalf("exact %s: %d %s", w, rr.Code, rr.Body.String())
		}
		// nprobe far above any cell count = full probe = exact bitwise.
		if rr := do(t, h, http.MethodPost, "/v1/neighbors", body(w, true, 1<<20), &approx); rr.Code != http.StatusOK {
			t.Fatalf("ann %s: %d %s", w, rr.Code, rr.Body.String())
		}
		if !approx.ANN || approx.NProbe != 1<<20 {
			t.Fatalf("ann reply does not echo mode: ann=%v nprobe=%d", approx.ANN, approx.NProbe)
		}
		if exact.ANN {
			t.Fatal("exact reply claims ann")
		}
		if len(approx.Results) != 1 || len(exact.Results) != 1 {
			t.Fatalf("result shape: %d vs %d", len(approx.Results), len(exact.Results))
		}
		ga, ge := approx.Results[0].Neighbors, exact.Results[0].Neighbors
		if len(ga) != len(ge) {
			t.Fatalf("%s: %d ann neighbors vs %d exact", w, len(ga), len(ge))
		}
		for i := range ge {
			if string(ga[i]) != string(ge[i]) {
				t.Fatalf("%s neighbor %d: ann %s != exact %s", w, i, ga[i], ge[i])
			}
		}
	}
	st := svc.QueryStats()
	if st.ANNQueries != int64(len(words)) {
		t.Fatalf("ANNQueries = %d, want %d", st.ANNQueries, len(words))
	}
	if st.BatchedQueries != int64(len(words)) {
		t.Fatalf("BatchedQueries = %d, want %d (exact queries only)", st.BatchedQueries, len(words))
	}
	if st.ANNBuilds != 1 {
		t.Fatalf("ANNBuilds = %d, want one lazy build", st.ANNBuilds)
	}
}

// TestNeighborDeltaEndpointANN: /v1/neighbors/delta accepts the same
// ann/nprobe fields and at full probe reports the exact overlaps.
func TestNeighborDeltaEndpointANN(t *testing.T) {
	srv, svc := newTestServer(t)
	words := queryWords(t, svc, 4)
	h := srv.Handler()

	payload := func(ann string) string {
		list := ""
		for i, w := range words {
			if i > 0 {
				list += ","
			}
			list += fmt.Sprintf("%q", w)
		}
		return fmt.Sprintf(`{"algo":"mc","words":[%s],"dim":8,"k":5,"seed":1%s}`, list, ann)
	}
	var exact, approx anchor.NeighborDeltaReport
	if rr := do(t, h, http.MethodPost, "/v1/neighbors/delta", payload(""), &exact); rr.Code != http.StatusOK {
		t.Fatalf("exact delta: %d %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, h, http.MethodPost, "/v1/neighbors/delta", payload(`,"ann":true,"nprobe":1048576`), &approx); rr.Code != http.StatusOK {
		t.Fatalf("ann delta: %d %s", rr.Code, rr.Body.String())
	}
	if !approx.ANN {
		t.Fatal("delta reply does not echo ann")
	}
	if approx.MeanOverlap != exact.MeanOverlap {
		t.Fatalf("full-probe mean overlap %v != exact %v", approx.MeanOverlap, exact.MeanOverlap)
	}
	for i := range exact.Results {
		if approx.Results[i].Shared != exact.Results[i].Shared {
			t.Fatalf("word %d shared %d != exact %d", i, approx.Results[i].Shared, exact.Results[i].Shared)
		}
	}
}
