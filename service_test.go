package anchor_test

import (
	"context"
	"errors"
	"testing"

	"anchor"
)

// tinyServiceConfig keeps service tests at the experiments test scale:
// one cheap algorithm, a two-step dimension ladder, the test corpus.
func tinyServiceConfig() anchor.ExperimentConfig {
	cfg := anchor.SmallExperimentConfig()
	cfg.Algorithms = []string{"mc"}
	cfg.Dims = []int{8, 16}
	cfg.Precisions = []int{1, 32}
	cfg.Seeds = []int64{1}
	cfg.SentimentTasks = []string{"sst2"}
	cfg.NEREnabled = false
	return cfg
}

func newTinyService(t *testing.T, opts ...anchor.ServiceOption) *anchor.Service {
	t.Helper()
	svc, err := anchor.NewService(append([]anchor.ServiceOption{anchor.WithConfig(tinyServiceConfig())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestAlignQuantizeMatchesInlinedSequence pins the AlignQuantize helper
// bitwise to the align -> meta-tag -> quantize ritual it replaces.
func TestAlignQuantizeMatchesInlinedSequence(t *testing.T) {
	cfg := anchor.DefaultCorpusConfig()
	cfg.VocabSize = 300
	cfg.NumDocs = 120
	c17 := anchor.GenerateCorpus(cfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(cfg, anchor.Wiki18)
	e17, err := anchor.TrainEmbedding("mc", c17, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e18, err := anchor.TrainEmbedding("mc", c18, 8, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Inlined legacy sequence on clones.
	a, b := e17.Clone(), e18.Clone()
	b.AlignTo(a)
	b.Meta.Corpus += "a"
	wq17, wq18 := anchor.QuantizePair(a, b, 4)

	gq17, gq18 := anchor.AlignQuantize(e17, e18, 4)

	if e18.Meta.Corpus != "wiki18a" {
		t.Fatalf("AlignQuantize did not tag the aligned corpus: %q", e18.Meta.Corpus)
	}
	for i := range wq17.Vectors.Data {
		if gq17.Vectors.Data[i] != wq17.Vectors.Data[i] {
			t.Fatalf("q17 bit mismatch at %d", i)
		}
	}
	for i := range wq18.Vectors.Data {
		if gq18.Vectors.Data[i] != wq18.Vectors.Data[i] {
			t.Fatalf("q18 bit mismatch at %d", i)
		}
	}
	if gq17.Meta != wq17.Meta || gq18.Meta != wq18.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v / %+v vs %+v", gq17.Meta, wq17.Meta, gq18.Meta, wq18.Meta)
	}
}

// TestServiceMeasuresBitwiseAcrossWorkers is the service-level
// determinism contract: measure values must be bitwise identical for any
// worker count (and therefore identical to the library grid path, which
// shares the same code).
func TestServiceMeasuresBitwiseAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	s1 := newTinyService(t, anchor.WithWorkers(1))
	s4 := newTinyService(t, anchor.WithWorkers(4))

	r1, err := s1.MeasureCell(ctx, "mc", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := s4.MeasureCell(ctx, "mc", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Values) != 5 {
		t.Fatalf("expected 5 measures, got %d", len(r1.Values))
	}
	for name, v := range r1.Values {
		if r4.Values[name] != v {
			t.Fatalf("measure %s: workers=1 %v != workers=4 %v", name, v, r4.Values[name])
		}
	}

	st1, err := s1.Stability(ctx, "mc", "sst2", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st4, err := s4.Stability(ctx, "mc", "sst2", 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Disagreement != st4.Disagreement || st1.Accuracy != st4.Accuracy {
		t.Fatalf("stability drifted across workers: %+v vs %+v", st1, st4)
	}
}

// TestServiceSecondQueryServedFromStore asserts the caching acceptance
// criterion: an identical second request must not retrain.
func TestServiceSecondQueryServedFromStore(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t)
	if _, err := svc.MeasureCell(ctx, "mc", 8, 1, 1); err != nil {
		t.Fatal(err)
	}
	computes := svc.StoreStats().Computes
	if computes == 0 {
		t.Fatal("first query should have trained something")
	}
	if _, err := svc.MeasureCell(ctx, "mc", 8, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := svc.StoreStats().Computes; got != computes {
		t.Fatalf("second identical query retrained: computes %d -> %d", computes, got)
	}
}

// TestServiceRestartServedFromDisk asserts the persistence acceptance
// criterion: a fresh service over the same cache dir serves bitwise
// identical embeddings without any compute.
func TestServiceRestartServedFromDisk(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s1 := newTinyService(t, anchor.WithCacheDir(dir))
	e17, e18, err := s1.Pair(ctx, "mc", 8, 1)
	if err != nil {
		t.Fatal(err)
	}

	s2 := newTinyService(t, anchor.WithCacheDir(dir))
	f17, f18, err := s2.Pair(ctx, "mc", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.StoreStats()
	if st.Computes != 0 {
		t.Fatalf("restart retrained: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("restart did not touch the disk tier: %+v", st)
	}
	for i := range e17.Vectors.Data {
		if f17.Vectors.Data[i] != e17.Vectors.Data[i] {
			t.Fatalf("e17 restart not bitwise at %d", i)
		}
	}
	for i := range e18.Vectors.Data {
		if f18.Vectors.Data[i] != e18.Vectors.Data[i] {
			t.Fatalf("e18 restart not bitwise at %d", i)
		}
	}
}

func TestServiceUnknownNames(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t)
	var unk *anchor.UnknownNameError

	if _, err := svc.Train(ctx, "elmo", 2017, 8, 1); !errors.As(err, &unk) {
		t.Fatalf("Train: want UnknownNameError, got %v", err)
	}
	if unk.Kind != "algorithm" {
		t.Fatalf("kind = %q", unk.Kind)
	}
	if _, err := svc.Stability(ctx, "mc", "imdb", 8, 1, 1); !errors.As(err, &unk) {
		t.Fatalf("Stability: want UnknownNameError, got %v", err)
	}
	if unk.Kind != "task" {
		t.Fatalf("kind = %q", unk.Kind)
	}
	if _, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: []int{8}, Precisions: []int{1}, Measure: "vibes",
	}); !errors.As(err, &unk) {
		t.Fatalf("Select: want UnknownNameError, got %v", err)
	}
	if unk.Kind != "measure" {
		t.Fatalf("kind = %q", unk.Kind)
	}
}

func TestServiceCanceledContext(t *testing.T) {
	svc := newTinyService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.MeasureCell(ctx, "mc", 8, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := svc.Stability(ctx, "mc", "sst2", 8, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestServiceDefaults checks WithSeed/WithPrecision backfill of zero
// request values.
func TestServiceDefaults(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t, anchor.WithSeed(1), anchor.WithPrecision(1))
	rep, err := svc.MeasureCell(ctx, "mc", 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Precision != 1 || rep.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", rep)
	}
	if rep.MemoryBits != 8 {
		t.Fatalf("memory bits = %d", rep.MemoryBits)
	}
}

// TestServiceSelect exercises the selection endpoint shape: ranking,
// budget filtering, and the best pick.
func TestServiceSelect(t *testing.T) {
	ctx := context.Background()
	svc := newTinyService(t)
	rep, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: []int{8, 16}, Precisions: []int{1, 32}, BudgetBits: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4", len(rep.Candidates))
	}
	for i := 1; i < len(rep.Candidates); i++ {
		if rep.Candidates[i].Value < rep.Candidates[i-1].Value {
			t.Fatal("candidates not sorted by value")
		}
	}
	if rep.Best == nil {
		t.Fatal("no best candidate")
	}
	if rep.Best.MemoryBits > 64 {
		t.Fatalf("best violates budget: %+v", rep.Best)
	}
	if rep.Measure != "eigenspace-instability" {
		t.Fatalf("default measure = %q", rep.Measure)
	}

	// A sweep whose dims exceed the configured ladder anchors EIS at the
	// request's largest dimension (the paper's protocol), not the
	// ladder's maximum.
	rep2, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: []int{8, 24}, Precisions: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Candidates) != 2 {
		t.Fatalf("ladder-exceeding select: %+v", rep2)
	}
}
