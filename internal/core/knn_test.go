package core

import (
	"math/rand"
	"sort"
	"testing"

	"anchor/internal/embedding"
	"anchor/internal/floats"
)

// referenceNearestK is the seed implementation of top-k cosine neighbor
// search — a fresh cosine per pair and a full sort — kept as the golden
// reference for the batched engine.
func referenceNearestK(e *embedding.Embedding, query, k int) []int {
	type cand struct {
		idx int
		sim float64
	}
	qv := e.Vector(query)
	cands := make([]cand, 0, e.Rows()-1)
	for i := 0; i < e.Rows(); i++ {
		if i == query {
			continue
		}
		cands = append(cands, cand{i, floats.CosineSim(qv, e.Vector(i))})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sim != cands[b].sim {
			return cands[a].sim > cands[b].sim
		}
		return cands[a].idx < cands[b].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// referenceKNNDistance is the seed measure loop over referenceNearestK,
// used by equivalence tests and the pre-PR benchmark.
func referenceKNNDistance(m *KNN, x, xt *embedding.Embedding, queries []int) float64 {
	var overlap float64
	for _, qi := range queries {
		na := referenceNearestK(x, qi, m.K)
		nb := referenceNearestK(xt, qi, m.K)
		inA := make(map[int]bool, len(na))
		for _, w := range na {
			inA[w] = true
		}
		shared := 0
		for _, w := range nb {
			if inA[w] {
				shared++
			}
		}
		overlap += float64(shared) / float64(m.K)
	}
	return 1 - overlap/float64(len(queries))
}

// TestNeighborSetsMatchReference is the golden equivalence test: the
// batched engine must return exactly the seed implementation's neighbor
// lists — same indices, same order — for every query, k, and worker count.
func TestNeighborSetsMatchReference(t *testing.T) {
	for _, tc := range []struct{ n, d, k int }{
		{40, 8, 5}, {150, 16, 5}, {150, 16, 1}, {150, 16, 30}, {10, 4, 20},
	} {
		e := randEmb(tc.n, tc.d, int64(100+tc.n+tc.k))
		queries := make([]int, tc.n)
		for i := range queries {
			queries[i] = i
		}
		for _, w := range []int{1, 2, 4, 7} {
			sets := neighborSets(e, queries, tc.k, w)
			for _, qi := range queries {
				want := referenceNearestK(e, qi, tc.k)
				got := sets[qi]
				if len(got) != len(want) {
					t.Fatalf("n=%d k=%d w=%d q=%d: %d neighbors, want %d", tc.n, tc.k, w, qi, len(got), len(want))
				}
				for i := range want {
					if int(got[i]) != want[i] {
						t.Fatalf("n=%d k=%d w=%d q=%d: neighbors %v, want %v", tc.n, tc.k, w, qi, got, want)
					}
				}
			}
		}
	}
}

// TestKNNDistanceMatchesReference checks the full measure against the
// seed loop on the same query set.
func TestKNNDistanceMatchesReference(t *testing.T) {
	x := randEmb(120, 12, 41)
	xt := perturb(x, 0.3, 42)
	m := &KNN{K: 5, Queries: 60, Seed: 9}
	rng := rand.New(rand.NewSource(m.Seed))
	queries := sampleIndices(rng, x.Rows(), m.Queries)
	want := referenceKNNDistance(m, x, xt, queries)
	for _, w := range []int{1, 2, 4} {
		m.Workers = w
		if got := m.Distance(x, xt); got != want {
			t.Fatalf("workers=%d: distance %v, want %v", w, got, want)
		}
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, q := 50, 20
	got := sampleIndices(rng, n, q)
	if len(got) != q {
		t.Fatalf("got %d indices, want %d", len(got), q)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= n {
			t.Fatalf("index %d out of range [0,%d)", v, n)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
	}
	// Drawing all n indices must yield a permutation.
	perm := sampleIndices(rand.New(rand.NewSource(4)), n, n)
	seen = map[int]bool{}
	for _, v := range perm {
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("full draw covered %d of %d indices", len(seen), n)
	}
	// Deterministic in the seed.
	a := sampleIndices(rand.New(rand.NewSource(5)), n, q)
	b := sampleIndices(rand.New(rand.NewSource(5)), n, q)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampleIndices not deterministic for a fixed seed")
		}
	}
}

// TestSampleIndicesUniform spot-checks marginal uniformity: over many
// seeds, each position of [0,n) should be drawn with probability q/n.
func TestSampleIndicesUniform(t *testing.T) {
	n, q, trials := 20, 5, 4000
	counts := make([]int, n)
	for s := 0; s < trials; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		for _, v := range sampleIndices(rng, n, q) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(q) / float64(n)
	for i, c := range counts {
		if float64(c) < 0.8*want || float64(c) > 1.2*want {
			t.Fatalf("index %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
}

// TestAllMeasuresWorkerInvariance asserts the PR's determinism contract:
// every measure returns a bitwise-identical value for every worker count.
func TestAllMeasuresWorkerInvariance(t *testing.T) {
	ResetSVDCache()
	x := randEmb(90, 12, 51)
	xt := perturb(x, 0.2, 52)
	e := randEmb(90, 16, 53)
	et := perturb(e, 0.05, 54)
	base := AllMeasuresWorkers(e, et, 1)
	want := make([]float64, len(base))
	for i, m := range base {
		want[i] = m.Distance(x, xt)
	}
	for _, w := range []int{2, 3, 4, 8} {
		for i, m := range AllMeasuresWorkers(e, et, w) {
			if got := m.Distance(x, xt); got != want[i] {
				t.Fatalf("%s: workers=%d gives %v, workers=1 gives %v (not bitwise equal)",
					m.Name(), w, got, want[i])
			}
		}
	}
}

func TestSVDCacheLRUEviction(t *testing.T) {
	ResetSVDCache()
	defer func() {
		SetSVDCacheCapacity(0)
		ResetSVDCache()
	}()
	SetSVDCacheCapacity(2)
	mk := func(seed int64) *embedding.Embedding {
		e := randEmb(20, 4, seed)
		e.Meta = embedding.Meta{Algorithm: "mc", Corpus: "wiki17", Dim: 4, Seed: seed, Precision: 32}
		return e
	}
	a, b, c := mk(1), mk(2), mk(3)
	sa := thinSVD(a)
	thinSVD(b)
	// Touch a so b becomes least recently used, then insert c to evict b.
	if got := thinSVD(a); &got.U.Data[0] != &sa.U.Data[0] {
		t.Fatal("a not served from cache")
	}
	sb := thinSVD(b) // refill: b evicted? No — cap 2 holds {a,b}; touch order now b,a.
	sc := thinSVD(c) // evicts a (LRU after the b touch)
	if got := thinSVD(b); &got.U.Data[0] != &sb.U.Data[0] {
		t.Fatal("b should still be cached")
	}
	if got := thinSVD(c); &got.U.Data[0] != &sc.U.Data[0] {
		t.Fatal("c should still be cached")
	}
	if got := thinSVD(a); &got.U.Data[0] == &sa.U.Data[0] {
		t.Fatal("a should have been evicted and recomputed")
	}
}

func TestSVDCacheCapacityClamp(t *testing.T) {
	ResetSVDCache()
	SetSVDCacheCapacity(-5)
	sharedSVDs.mu.Lock()
	got := sharedSVDs.cap
	sharedSVDs.mu.Unlock()
	if got != DefaultSVDCacheCap {
		t.Fatalf("cap = %d, want default %d", got, DefaultSVDCacheCap)
	}
}

// benchKNNPair builds a deterministic n-by-d embedding pair for the k-NN
// benchmarks, the second a small perturbation of the first.
func benchKNNPair(n, d int) (*embedding.Embedding, *embedding.Embedding) {
	rng := rand.New(rand.NewSource(1))
	a := embedding.New(n, d)
	b := embedding.New(n, d)
	for i := range a.Vectors.Data {
		a.Vectors.Data[i] = rng.NormFloat64()
		b.Vectors.Data[i] = a.Vectors.Data[i] + 0.1*rng.NormFloat64()
	}
	return a, b
}

// BenchmarkKNNMeasureReference3000 times the seed implementation (fresh
// cosine per pair, full sort per query) at the scale where the batched
// engine's speedup is measured; compare with BenchmarkKNNMeasure3000 in
// the root package.
func BenchmarkKNNMeasureReference3000(b *testing.B) {
	x, xt := benchKNNPair(3000, 64)
	m := &KNN{K: 5, Queries: 1000, Seed: 1}
	rng := rand.New(rand.NewSource(m.Seed))
	queries := sampleIndices(rng, x.Rows(), m.Queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceKNNDistance(m, x, xt, queries)
	}
}

func BenchmarkKNNMeasureBatched3000(b *testing.B) {
	x, xt := benchKNNPair(3000, 64)
	m := &KNN{K: 5, Queries: 1000, Seed: 1, Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, xt)
	}
}

// TestKNNANNRouteExactAtFullProbe: with the IVF route forced on and
// nprobe covering every cell, the routed measure must equal the exact
// measure bitwise — the probed scan visits each row exactly once with
// the exact engine's arithmetic.
func TestKNNANNRouteExactAtFullProbe(t *testing.T) {
	x, xt := benchKNNPair(600, 24)
	exact := &KNN{K: 5, Queries: 200, Seed: 7, Workers: 2}
	routed := &KNN{K: 5, Queries: 200, Seed: 7, Workers: 2, ANNCutoff: 1, NProbe: 600}
	dExact := exact.Distance(x, xt)
	dRouted := routed.Distance(x, xt)
	if dExact != dRouted {
		t.Fatalf("full-probe routed measure %v != exact %v", dRouted, dExact)
	}
}

// TestKNNANNRoutePartialProbeClose: at a partial probe the routed
// measure is an approximation; on a correlated pair it must land near
// the exact value, and it must be identical across worker counts. (Half
// the cells, not the production default: the isotropic Gaussian fixture
// is a recall worst case — real embeddings cluster.)
func TestKNNANNRoutePartialProbeClose(t *testing.T) {
	x, xt := benchKNNPair(600, 24)
	exact := &KNN{K: 5, Queries: 200, Seed: 7}
	dExact := exact.Distance(x, xt)
	var first float64
	for i, workers := range []int{1, 3, 8} {
		routed := &KNN{K: 5, Queries: 200, Seed: 7, Workers: workers, ANNCutoff: 1, NProbe: 12}
		d := routed.Distance(x, xt)
		if i == 0 {
			first = d
		} else if d != first {
			t.Fatalf("workers=%d routed measure %v != workers=1 %v", workers, d, first)
		}
	}
	if diff := first - dExact; diff < -0.1 || diff > 0.1 {
		t.Fatalf("partial-probe routed measure %v too far from exact %v", first, dExact)
	}
}

// TestKNNANNCutoffRespected: below the cutoff the exact scan runs — the
// measure equals the ANNCutoff=0 configuration exactly.
func TestKNNANNCutoffRespected(t *testing.T) {
	x, xt := benchKNNPair(300, 16)
	base := &KNN{K: 5, Queries: 100, Seed: 7}
	cut := &KNN{K: 5, Queries: 100, Seed: 7, ANNCutoff: 301}
	if a, b := base.Distance(x, xt), cut.Distance(x, xt); a != b {
		t.Fatalf("below-cutoff measure %v != exact %v", b, a)
	}
}
