package embtrain

import (
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/parallel"
)

// FastText trains skipgram embeddings with subword information
// (Bojanowski et al. 2017), used in the paper's Appendix E.1 robustness
// study: each word's input representation is the average of its word
// vector and the vectors of its character n-grams, hashed into a fixed
// bucket table. The synthetic vocabulary has real morphology (stem+suffix
// families), so subwords carry signal exactly as in natural language.
// Sentences are sharded across cores by the deterministic parallel engine;
// the word, n-gram, and output matrices are replicated per shard and
// merged by ordered delta reduction.
type FastText struct {
	// Window is the maximum skipgram context half-width.
	Window int
	// Negatives is the number of negative samples per pair.
	Negatives int
	// Epochs is the number of passes over the corpus.
	Epochs int
	// LR is the initial learning rate, decayed linearly.
	LR float64
	// MinN and MaxN bound the character n-gram lengths.
	MinN, MaxN int
	// Buckets is the size of the n-gram hash table.
	Buckets int
	// NegPower is the unigram distribution exponent.
	NegPower float64
	// Workers is the goroutine budget (<= 0 selects all CPUs). Embeddings
	// are bitwise identical for every value.
	Workers int
	// Shards is the fixed data-parallel shard count (<= 0 selects
	// parallel.DefaultShards). Unlike Workers, changing Shards changes the
	// (still deterministic) result.
	Shards int
	// Rounds is the number of synchronization rounds per epoch (<= 0
	// selects the package default). Like Shards it shapes the result
	// deterministically; it never depends on worker count.
	Rounds int
}

// NewFastText returns a fastText trainer with repro-scale defaults.
func NewFastText() *FastText {
	return &FastText{
		Window: 5, Negatives: 5, Epochs: 10, LR: 0.1,
		MinN: 3, MaxN: 5, Buckets: 4096, NegPower: 0.75, Rounds: 32,
	}
}

// Name implements Trainer.
func (t *FastText) Name() string { return "fasttext" }

// fnv1a hashes a string with the 32-bit FNV-1a function fastText uses.
func fnv1a(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Subwords returns the hash-bucket ids of the character n-grams of word
// (with the <word> boundary markers fastText adds).
func (t *FastText) Subwords(word string) []int32 {
	w := "<" + word + ">"
	var out []int32
	for n := t.MinN; n <= t.MaxN; n++ {
		for i := 0; i+n <= len(w); i++ {
			out = append(out, int32(fnv1a(w[i:i+n])%uint32(t.Buckets)))
		}
	}
	return out
}

// ftShard is one shard's copy-on-write view of the fastText state.
type ftShard struct {
	word, gram, out *parallel.Replica
	h, grad         []float64
}

// Train implements Trainer.
func (t *FastText) Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding {
	n := c.Vocab.Size()
	rng := newTrainRNG(seed)

	// Precompute each word's subword bucket list.
	sub := make([][]int32, n)
	for w := 0; w < n; w++ {
		sub[w] = t.Subwords(c.Vocab.Words[w])
	}

	wordVec := make([]float64, n*dim)
	gramVec := make([]float64, t.Buckets*dim)
	out := make([]float64, n*dim)
	initMatrix(wordVec, dim, rng)
	initMatrix(gramVec, dim, rng)

	table := newUnigramTable(c.Counts, t.NegPower)
	total := float64(t.Epochs) * float64(c.Tokens)

	shards := parallel.Shards(t.Shards)
	rounds := syncRounds(t.Rounds)
	local := make([]*ftShard, shards)
	for s := range local {
		local[s] = &ftShard{
			word: parallel.NewReplica(wordVec, dim),
			gram: parallel.NewReplica(gramVec, dim),
			out:  parallel.NewReplica(out, dim),
			h:    make([]float64, dim),
			grad: make([]float64, dim),
		}
	}

	for epoch := 0; epoch < t.Epochs; epoch++ {
		order := shuffledOrder(len(c.Sentences), rng)
		var epochTokens float64
		for round, rr := range parallel.Ranges(len(order), rounds) {
			sub2 := order[rr.Lo:rr.Hi]
			ranges := parallel.Ranges(len(sub2), shards)
			offsets, roundTokens := tokenOffsets(c, sub2, ranges)
			parallel.Run(t.Workers, shards, func(s int) {
				st := local[s]
				st.word.Begin()
				st.gram.Begin()
				st.out.Begin()
				srng := parallel.ShardRNG(seed, s, epoch*rounds+round)
				processed := float64(epoch)*float64(c.Tokens) + epochTokens + offsets[s]
				for _, si := range sub2[ranges[s].Lo:ranges[s].Hi] {
					sent := c.Sentences[si]
					for pos, center := range sent {
						lr := t.LR * (1 - processed/total)
						if lr < t.LR*1e-4 {
							lr = t.LR * 1e-4
						}
						processed++

						// Input representation of the center word: average of word
						// vector and subword vectors.
						grams := sub[center]
						norm := 1 / float64(1+len(grams))
						copy(st.h, st.word.Row(int(center)))
						for _, g := range grams {
							floats.Add(st.h, st.gram.Row(int(g)))
						}
						floats.Scale(norm, st.h)

						b := 1 + srng.Intn(t.Window)
						for off := -b; off <= b; off++ {
							if off == 0 {
								continue
							}
							p := pos + off
							if p < 0 || p >= len(sent) {
								continue
							}
							ctx := sent[p]
							floats.Fill(st.grad, 0)
							for k := 0; k <= t.Negatives; k++ {
								var target int32
								var label float64
								if k == 0 {
									target, label = ctx, 1
								} else {
									target = table.sample(srng)
									if target == ctx {
										continue
									}
									label = 0
								}
								row := st.out.Row(int(target))
								g := (label - sigmoid(floats.Dot(st.h, row))) * lr
								floats.Axpy(g, row, st.grad)
								floats.Axpy(g, st.h, row)
							}
							// Distribute the input gradient over word + subword vectors.
							floats.Axpy(norm, st.grad, st.word.Row(int(center)))
							for _, g := range grams {
								floats.Axpy(norm, st.grad, st.gram.Row(int(g)))
							}
						}
					}
				}
				st.word.Seal()
				st.gram.Seal()
				st.out.Seal()
			}, func(s int) {
				local[s].word.Reduce()
				local[s].gram.Reduce()
				local[s].out.Reduce()
			})
			epochTokens += roundTokens
		}
	}

	// The stored embedding for each word is its composed representation.
	e := embedding.New(n, dim)
	e.Words = c.Vocab.Words
	e.Meta = embedding.Meta{
		Algorithm: t.Name(), Corpus: corpusName(c), Dim: dim, Seed: seed, Precision: 32,
	}
	for w := 0; w < n; w++ {
		row := e.Vectors.Row(w)
		copy(row, wordVec[w*dim:(w+1)*dim])
		for _, g := range sub[w] {
			floats.Add(row, gramVec[int(g)*dim:(int(g)+1)*dim])
		}
		floats.Scale(1/float64(1+len(sub[w])), row)
	}
	return e
}
