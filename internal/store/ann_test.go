package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"anchor/internal/ann"
	"anchor/internal/faults"
	"anchor/internal/matrix"
)

func annTestRows(n, d int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	for r := 0; r < n; r++ {
		row := m.Row(r)
		var s float64
		for _, v := range row {
			s += v * v
		}
		s = math.Sqrt(s)
		for j := range row {
			row[j] /= s
		}
	}
	return m
}

func annIndexEqualBits(t *testing.T, a, b *ann.Index) {
	t.Helper()
	if a.Rows != b.Rows || a.Dim != b.Dim || a.NList != b.NList || a.Seed != b.Seed || a.Iters != b.Iters {
		t.Fatalf("index identity differs: %+v vs %+v", a, b)
	}
	for i, v := range a.Centroids.Data {
		if math.Float64bits(v) != math.Float64bits(b.Centroids.Data[i]) {
			t.Fatalf("centroid bits differ at %d", i)
		}
	}
	for i, v := range a.Starts {
		if b.Starts[i] != v {
			t.Fatalf("starts differ at %d", i)
		}
	}
	for i, v := range a.IDs {
		if b.IDs[i] != v {
			t.Fatalf("ids differ at %d", i)
		}
	}
}

func annTestKey() Key {
	return Key{Algo: "cbow", Corpus: "wiki17", Dim: 8, Seed: 1, Bits: 32, Scope: "t"}
}

// TestGetANNBuildsAndHitsDisk: the first GetANN builds and persists the
// sidecar; a second store over the same directory serves it from disk,
// bitwise identical, without invoking build.
func TestGetANNBuildsAndHitsDisk(t *testing.T) {
	dir := t.TempDir()
	m := annTestRows(200, 8, 3)
	cfg := ann.Config{NList: 6, Seed: 9}
	k := annTestKey()

	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	built, err := s1.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.ANNBuilds != 1 || st.ANNDiskHits != 0 {
		t.Fatalf("stats after build = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, k.ID()+"-ivf6"+ann.Ext)); err != nil {
		t.Fatalf("sidecar not persisted: %v", err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := s2.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		t.Fatal("build invoked despite warm sidecar")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	annIndexEqualBits(t, built, loaded)
	if st := s2.Stats(); st.ANNBuilds != 0 || st.ANNDiskHits != 1 {
		t.Fatalf("stats after disk hit = %+v", st)
	}
}

// TestGetANNMemoryOnly: a memory-only store builds every time (indexes
// are derived data; callers cache them).
func TestGetANNMemoryOnly(t *testing.T) {
	m := annTestRows(60, 4, 5)
	cfg := ann.Config{NList: 4, Seed: 2}
	s := Memory()
	for i := 0; i < 2; i++ {
		if _, err := s.GetANN(annTestKey(), cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
			return ann.Build(m, cfg), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.ANNBuilds != 2 {
		t.Fatalf("memory-only builds = %d, want 2", st.ANNBuilds)
	}
}

// TestGetANNQuarantinesCorruptSidecar: a damaged sidecar is moved aside
// and rebuilt; the damaged bytes are never served and the repaired file
// takes its place.
func TestGetANNQuarantinesCorruptSidecar(t *testing.T) {
	dir := t.TempDir()
	m := annTestRows(200, 8, 3)
	cfg := ann.Config{NList: 6, Seed: 9}
	k := annTestKey()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	built, err := s.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, k.ID()+"-ivf6"+ann.Ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	annIndexEqualBits(t, built, got)
	if st := s2.Stats(); st.Quarantines != 1 || st.ANNBuilds != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine and 1 build", st)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("damaged sidecar not quarantined: %v", err)
	}
	if _, err := LoadANNFile(path); err != nil {
		t.Fatalf("repaired sidecar unreadable: %v", err)
	}
}

// TestGetANNStaleSidecarRebuilt: a sidecar whose build identity differs
// from the request (here: another seed) is a miss, not an answer.
func TestGetANNStaleSidecarRebuilt(t *testing.T) {
	dir := t.TempDir()
	m := annTestRows(200, 8, 3)
	k := annTestKey()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := ann.Config{NList: 6, Seed: 1}
	if _, err := s.GetANN(k, cfgA, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfgA), nil
	}); err != nil {
		t.Fatal(err)
	}
	cfgB := ann.Config{NList: 6, Seed: 2}
	got, err := s.GetANN(k, cfgB, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfgB), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 2 {
		t.Fatalf("served stale sidecar with seed %d", got.Seed)
	}
	if st := s.Stats(); st.ANNBuilds != 2 || st.ANNDiskHits != 0 {
		t.Fatalf("stats = %+v, want 2 builds and no disk hits", st)
	}
	// The rebuild overwrote the stale sidecar: a third request disk-hits.
	if _, err := s.GetANN(k, cfgB, m.Rows, m.Cols, func() (*ann.Index, error) {
		t.Fatal("build invoked despite repaired sidecar")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ANNDiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
}

// TestGetANNInjectedReadError: a transient I/O error on the sidecar read
// (injected at store/ann.read) degrades to a rebuild without
// quarantining the intact file.
func TestGetANNInjectedReadError(t *testing.T) {
	dir := t.TempDir()
	m := annTestRows(120, 6, 4)
	cfg := ann.Config{NList: 5, Seed: 3}
	k := annTestKey()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	built, err := s.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	defer faults.Activate(faults.MustPlan(1, faults.Rule{Site: "store/ann.read", Kind: faults.KindError, Count: 1}))()
	got, err := s.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	annIndexEqualBits(t, built, got)
	if st := s.Stats(); st.Quarantines != 0 {
		t.Fatalf("transient read error quarantined the sidecar: %+v", st)
	}
}

// TestMapANNFile: the mmap load decodes the same bits as the ReadFile
// load and the close function releases the mapping.
func TestMapANNFile(t *testing.T) {
	dir := t.TempDir()
	m := annTestRows(200, 8, 3)
	cfg := ann.Config{NList: 6, Seed: 9}
	k := annTestKey()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	built, err := s.GetANN(k, cfg, m.Rows, m.Cols, func() (*ann.Index, error) {
		return ann.Build(m, cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.ID()+"-ivf6"+ann.Ext)
	mapped, closeFn, err := MapANNFile(path)
	if err != nil {
		t.Fatal(err)
	}
	annIndexEqualBits(t, built, mapped)
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MapANNFile(filepath.Join(dir, "absent"+ann.Ext)); err == nil {
		t.Fatal("mapping an absent sidecar succeeded")
	}
}
