// Neighbors is the paper's instability story made observable: train the
// same embedding configuration on two corpus snapshots a year apart, then
// look at what a downstream user of the embeddings actually sees — each
// word's nearest neighbors — and how much of it the retrain silently
// replaced.
//
// It runs the read path end to end: a Service over a demo-scale
// configuration serves the Wiki'17 and Wiki'18 snapshots through the
// query engine, and one /v1/neighbors/delta-style query per word reports
// the top-k neighbor overlap (Wendlandt et al. 2018's nearest-neighbor
// stability, the proxy the paper's eigenspace measure predicts). The same
// query is then issued over HTTP against an in-process `anchor serve`
// handler to show both surfaces answer identically.
//
//	go run ./examples/neighbors
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"anchor"
	"anchor/internal/serve"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600 // keep the demo snappy
	ccfg.NumDocs = 300

	cfg := anchor.SmallExperimentConfig()
	cfg.Corpus = ccfg
	cfg.Dims = []int{32}

	svc, err := anchor.NewService(
		anchor.WithConfig(cfg),
		anchor.WithProgress(func(stage string) { fmt.Println("  ...", stage) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const algo, dim, k = "cbow", 32, 5

	// Pick a handful of frequent words to follow across the retrain.
	c17 := anchor.GenerateCorpus(ccfg, anchor.Wiki17)
	var words []string
	for _, id := range c17.TopWords(6) {
		words = append(words, c17.Vocab.Words[id])
	}

	fmt.Printf("%s dim=%d: top-%d neighbors on Wiki'17 vs Wiki'18\n\n", algo, dim, k)
	rep, err := svc.NeighborDelta(ctx, algo, dim, words, anchor.QueryK(k))
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range rep.Results {
		fmt.Printf("%-12s overlap %.2f\n  '17: %s\n  '18: %s\n",
			d.Word, d.Overlap, neighborList(d.A), neighborList(d.B))
	}
	fmt.Printf("\nmean overlap %.3f — the fraction of each word's neighborhood that\n"+
		"survived retraining on a corpus one year newer (1 = stable).\n", rep.MeanOverlap)

	// The same question over the HTTP surface: bit-identical answer.
	ts := httptest.NewServer(serve.New(svc, nil).Handler())
	defer ts.Close()
	body := fmt.Sprintf(`{"algo":%q,"words":[%q],"dim":%d,"k":%d}`, algo, words[0], dim, k)
	resp, err := http.Post(ts.URL+"/v1/neighbors/delta", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var httpRep anchor.NeighborDeltaReport
	if err := json.NewDecoder(resp.Body).Decode(&httpRep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v1/neighbors/delta for %q agrees: overlap %.2f (library %.2f)\n",
		words[0], httpRep.Results[0].Overlap, rep.Results[0].Overlap)
}

// neighborList renders a neighbor list as compact words.
func neighborList(ns []anchor.Neighbor) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.Word
	}
	return strings.Join(parts, " ")
}
