package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"anchor/internal/compress"
	"anchor/internal/embedding"
)

// quantTestEmbedding returns a b-bit quantized embedding with metadata and
// vocabulary, built through the real compress path so its values sit on
// the (Clip, Precision) level grid exactly as production artifacts do.
func quantTestEmbedding(t *testing.T, rows, cols, bits int) *embedding.Embedding {
	t.Helper()
	e := binTestEmbedding(t, rows, cols, false)
	clip := compress.OptimalClip(e.Vectors.Data, bits)
	q := compress.Quantize(e, bits, clip)
	q.Meta.Algorithm, q.Meta.Corpus = "mc", "wiki17"
	return q
}

func TestQuantizedKindRoundTrip(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4, 5, 8} {
		e := quantTestEmbedding(t, 17, 13, bits)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, e, Quantized); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		got, err := DecodeBinary(buf.Bytes())
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		embEqualBits(t, e, got)
		f64 := buf.Len() - int(binary.LittleEndian.Uint64(buf.Bytes()[56:64]))
		if want := 17 * ((13*bits + 7) / 8); f64 != want {
			t.Fatalf("bits=%d: payload %d bytes, want %d", bits, f64, want)
		}
	}
}

func TestQuantizedKindRejectsOffGridEmbedding(t *testing.T) {
	e := binTestEmbedding(t, 4, 3, false) // full-precision values, no grid
	e.Meta.Precision, e.Meta.Clip = 4, 1.25
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Quantized); err == nil {
		t.Fatal("expected error writing off-grid values as quantized codes")
	}
	e.Meta.Precision, e.Meta.Clip = 32, 0
	if err := WriteBinary(&buf, e, Quantized); err == nil {
		t.Fatal("expected error writing full-precision embedding as quantized codes")
	}
}

func TestPickKindLosslessCascade(t *testing.T) {
	q := quantTestEmbedding(t, 9, 7, 4)
	if k := PickKind(q); k != Quantized {
		t.Fatalf("4-bit quantized artifact picked kind %d, want Quantized", k)
	}
	f32 := binTestEmbedding(t, 9, 7, true)
	if k := PickKind(f32); k != Float32 {
		t.Fatalf("float32-exact artifact picked kind %d, want Float32", k)
	}
	// 9..31-bit quantized artifacts are float32-exact but have no b<=8
	// code grid: they must fall to Float32, not Quantized.
	wide := binTestEmbedding(t, 9, 7, false)
	q16 := compress.Quantize(wide, 16, compress.OptimalClip(wide.Vectors.Data, 16))
	if k := PickKind(q16); k != Float32 {
		t.Fatalf("16-bit quantized artifact picked kind %d, want Float32", k)
	}
	if k := PickKind(wide); k != Float64 {
		t.Fatalf("full-precision artifact picked kind %d, want Float64", k)
	}
	// Whatever PickKind chooses must round-trip bitwise.
	for _, e := range []*embedding.Embedding{q, f32, q16, wide} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, e, PickKind(e)); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBinary(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		embEqualBits(t, e, got)
	}
}

func TestDecodeBinaryVersion1Compat(t *testing.T) {
	// Hand-build a version-1 artifact (64-byte header, float64 payload) and
	// check the v2 reader still decodes it: existing disk caches must stay
	// readable across the format bump.
	e := binTestEmbedding(t, 5, 3, false)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Float64); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	payloadOff := int(binary.LittleEndian.Uint64(v2[56:64]))

	algo, corp := []byte(e.Meta.Algorithm), []byte(e.Meta.Corpus)
	words := []byte(strings.Join(e.Words, "\n"))
	varLen := len(algo) + len(corp) + len(words)
	v1Off := (binHeaderLenV1 + varLen + binAlign - 1) / binAlign * binAlign
	v1 := make([]byte, 0, v1Off+len(v2)-payloadOff)
	header := append([]byte(nil), v2[:binHeaderLenV1]...)
	binary.LittleEndian.PutUint32(header[4:8], 1)
	binary.LittleEndian.PutUint64(header[56:64], uint64(v1Off))
	v1 = append(v1, header...)
	v1 = append(v1, algo...)
	v1 = append(v1, corp...)
	v1 = append(v1, words...)
	v1 = append(v1, make([]byte, v1Off-binHeaderLenV1-varLen)...)
	v1 = append(v1, v2[payloadOff:]...)

	got, err := DecodeBinary(v1)
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, got)
}

func TestDecodeBinaryCorruptQuantizedHeader(t *testing.T) {
	e := quantTestEmbedding(t, 6, 5, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Quantized); err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		data := append([]byte(nil), buf.Bytes()...)
		if _, err := DecodeBinary(mutate(data)); err == nil {
			t.Fatalf("%s: decode accepted corrupt artifact", name)
		}
	}
	corrupt("code bits zero", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[72:76], 0)
		return d
	})
	corrupt("code bits over 8", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[72:76], 9)
		binary.LittleEndian.PutUint32(d[40:44], 9)
		return d
	})
	corrupt("code bits disagree with precision", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[40:44], 5)
		return d
	})
	corrupt("negative clip", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[64:72], math.Float64bits(-1))
		return d
	})
	corrupt("NaN clip", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[64:72], math.Float64bits(math.NaN()))
		return d
	})
	corrupt("truncated payload", func(d []byte) []byte { return d[:len(d)-1] })
	corrupt("quantized kind on v1 version stamp", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[4:8], 1)
		return d
	})
}
