package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"anchor/internal/matrix"
)

// gradCheck verifies the analytic gradient of params under loss against
// central finite differences. buildLoss must rebuild the graph from the
// current parameter values each call.
func gradCheck(t *testing.T, name string, params []*Param, buildLoss func(tp *Tape) *Node) {
	t.Helper()
	tp := NewTape()
	loss := buildLoss(tp)
	tp.Backward(loss)

	const eps = 1e-6
	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := buildLoss(NewTape()).Value.At(0, 0)
			p.Value.Data[i] = orig - eps
			lm := buildLoss(NewTape()).Value.At(0, 0)
			p.Value.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s: param %s[%d]: grad %v, finite-diff %v", name, p.Name, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func randParam(name string, r, c int, seed int64) *Param {
	rng := rand.New(rand.NewSource(seed))
	return NewParam(name, matrix.NewDenseRand(r, c, 1, rng))
}

func TestGradMatMulAddSub(t *testing.T) {
	a := randParam("a", 3, 4, 1)
	b := randParam("b", 4, 2, 2)
	c := randParam("c", 3, 2, 3)
	gradCheck(t, "matmul", []*Param{a, b, c}, func(tp *Tape) *Node {
		x := tp.MatMul(tp.Use(a), tp.Use(b))
		y := tp.Add(x, tp.Use(c))
		z := tp.Sub(y, tp.Scale(tp.Use(c), 0.5))
		return tp.SumAll(tp.Mul(z, z))
	})
}

func TestGradMatMulABT(t *testing.T) {
	a := randParam("a", 3, 4, 4)
	b := randParam("b", 5, 4, 5)
	gradCheck(t, "matmulABT", []*Param{a, b}, func(tp *Tape) *Node {
		return tp.SumAll(tp.MatMulABT(tp.Use(a), tp.Use(b)))
	})
}

func TestGradActivations(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   func(tp *Tape, n *Node) *Node
	}{
		{"sigmoid", func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) }},
		{"tanh", func(tp *Tape, n *Node) *Node { return tp.Tanh(n) }},
		{"relu", func(tp *Tape, n *Node) *Node { return tp.ReLU(n) }},
		{"gelu", func(tp *Tape, n *Node) *Node { return tp.GELU(n) }},
		{"softmax", func(tp *Tape, n *Node) *Node { return tp.SoftmaxRows(n) }},
	} {
		a := randParam("a", 3, 5, 6)
		w := randParam("w", 3, 5, 7) // weighting makes softmax grad nontrivial
		gradCheck(t, tc.name, []*Param{a, w}, func(tp *Tape) *Node {
			return tp.SumAll(tp.Mul(tc.op(tp, tp.Use(a)), tp.Use(w)))
		})
	}
}

func TestGradBroadcasts(t *testing.T) {
	a := randParam("a", 4, 3, 8)
	row := randParam("row", 1, 3, 9)
	col := randParam("col", 4, 1, 10)
	gradCheck(t, "broadcast", []*Param{a, row, col}, func(tp *Tape) *Node {
		x := tp.AddRowVec(tp.Use(a), tp.Use(row))
		y := tp.AddColVec(x, tp.Use(col))
		return tp.SumAll(tp.Mul(y, y))
	})
}

func TestGradGatherRows(t *testing.T) {
	emb := randParam("emb", 6, 3, 11)
	idx := []int{2, 0, 2, 5} // repeated index exercises scatter-add
	gradCheck(t, "gather", []*Param{emb}, func(tp *Tape) *Node {
		g := tp.GatherRows(tp.Use(emb), idx)
		return tp.SumAll(tp.Mul(g, g))
	})
}

func TestGradConcatAndSlice(t *testing.T) {
	a := randParam("a", 3, 2, 12)
	b := randParam("b", 3, 4, 13)
	gradCheck(t, "concatcols", []*Param{a, b}, func(tp *Tape) *Node {
		cc := tp.ConcatCols(tp.Use(a), tp.Use(b))
		s := tp.SliceCols(cc, 1, 5)
		return tp.SumAll(tp.Mul(s, s))
	})
	c := randParam("c", 2, 3, 14)
	d := randParam("d", 4, 3, 15)
	gradCheck(t, "concatrows", []*Param{c, d}, func(tp *Tape) *Node {
		cr := tp.ConcatRows(tp.Use(c), tp.Use(d))
		s := tp.SliceRows(cr, 1, 5)
		return tp.SumAll(tp.Mul(s, s))
	})
}

func TestGradPooling(t *testing.T) {
	a := randParam("a", 5, 3, 16)
	gradCheck(t, "meanrows", []*Param{a}, func(tp *Tape) *Node {
		m := tp.MeanRows(tp.Use(a))
		return tp.SumAll(tp.Mul(m, m))
	})
	gradCheck(t, "maxpool", []*Param{a}, func(tp *Tape) *Node {
		m := tp.MaxPoolRows(tp.Use(a))
		return tp.SumAll(tp.Mul(m, m))
	})
}

func TestGradLayerNorm(t *testing.T) {
	a := randParam("a", 4, 6, 17)
	gain := randParam("gain", 1, 6, 18)
	bias := randParam("bias", 1, 6, 19)
	gradCheck(t, "layernorm", []*Param{a, gain, bias}, func(tp *Tape) *Node {
		ln := tp.LayerNormRows(tp.Use(a), tp.Use(gain), tp.Use(bias))
		return tp.SumAll(tp.Mul(ln, ln))
	})
}

func TestGradLogSumExpCols(t *testing.T) {
	a := randParam("a", 4, 3, 20)
	w := randParam("w", 1, 3, 21)
	gradCheck(t, "logsumexp", []*Param{a, w}, func(tp *Tape) *Node {
		l := tp.LogSumExpCols(tp.Use(a))
		return tp.SumAll(tp.Mul(l, tp.Use(w)))
	})
}

func TestGradAt(t *testing.T) {
	a := randParam("a", 3, 3, 22)
	gradCheck(t, "at", []*Param{a}, func(tp *Tape) *Node {
		x := tp.At(tp.Use(a), 1, 2)
		y := tp.At(tp.Use(a), 0, 0)
		return tp.Mul(x, y)
	})
}

func TestGradCrossEntropy(t *testing.T) {
	logits := randParam("logits", 4, 3, 23)
	targets := []int{0, 2, 1, 2}
	gradCheck(t, "crossentropy", []*Param{logits}, func(tp *Tape) *Node {
		return tp.CrossEntropy(tp.Use(logits), targets)
	})
}

func TestGradComposite(t *testing.T) {
	// A miniature MLP end to end: embedding -> linear -> tanh -> linear -> CE.
	emb := randParam("emb", 8, 4, 24)
	w1 := randParam("w1", 4, 5, 25)
	b1 := randParam("b1", 1, 5, 26)
	w2 := randParam("w2", 5, 3, 27)
	idx := []int{1, 3, 7}
	targets := []int{0, 2, 1}
	gradCheck(t, "mlp", []*Param{emb, w1, b1, w2}, func(tp *Tape) *Node {
		x := tp.GatherRows(tp.Use(emb), idx)
		h := tp.Tanh(tp.AddRowVec(tp.MatMul(x, tp.Use(w1)), tp.Use(b1)))
		logits := tp.MatMul(h, tp.Use(w2))
		return tp.CrossEntropy(logits, targets)
	})
}

func TestDropoutIdentityAtZero(t *testing.T) {
	a := randParam("a", 3, 3, 28)
	tp := NewTape()
	n := tp.Use(a)
	if tp.Dropout(n, 0, rand.New(rand.NewSource(1))) != n {
		t.Fatal("dropout with p=0 should be identity")
	}
}

func TestDropoutMaskConsistency(t *testing.T) {
	a := randParam("a", 10, 10, 29)
	tp := NewTape()
	rng := rand.New(rand.NewSource(2))
	d := tp.Dropout(tp.Use(a), 0.5, rng)
	loss := tp.SumAll(d)
	tp.Backward(loss)
	// Zeroed outputs must have zero gradient; surviving ones 1/keep.
	for i := range d.Value.Data {
		if d.Value.Data[i] == 0 {
			if a.Grad.Data[i] != 0 {
				t.Fatal("dropped entry received gradient")
			}
		} else if math.Abs(a.Grad.Data[i]-2) > 1e-12 {
			t.Fatalf("surviving entry grad %v, want 2", a.Grad.Data[i])
		}
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar loss")
		}
	}()
	tp := NewTape()
	a := tp.Use(randParam("a", 2, 2, 30))
	tp.Backward(a)
}

func TestConstHasNoGradient(t *testing.T) {
	tp := NewTape()
	c := tp.Const(matrix.NewDense(2, 2))
	p := randParam("p", 2, 2, 31)
	loss := tp.SumAll(tp.Mul(c, tp.Use(p)))
	tp.Backward(loss)
	if c.Grad() != nil {
		t.Fatal("const node should not accumulate gradient")
	}
}

func TestGradAccumulationAcrossUses(t *testing.T) {
	// Using the same parameter twice must sum both contributions.
	p := randParam("p", 1, 1, 32)
	tp := NewTape()
	n1 := tp.Use(p)
	n2 := tp.Use(p)
	loss := tp.SumAll(tp.Add(n1, n2)) // d/dp = 2
	tp.Backward(loss)
	if math.Abs(p.Grad.Data[0]-2) > 1e-12 {
		t.Fatalf("accumulated grad = %v, want 2", p.Grad.Data[0])
	}
}
