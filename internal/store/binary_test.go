package store

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anchor/internal/embedding"
)

// binTestEmbedding builds a small embedding with full metadata, a
// vocabulary, and values exercising signs, subnormals, and
// non-representable floats.
func binTestEmbedding(t *testing.T, rows, cols int, f32exact bool) *embedding.Embedding {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	e := embedding.New(rows, cols)
	for i := range e.Vectors.Data {
		v := rng.NormFloat64()
		if f32exact {
			v = float64(float32(v))
		}
		e.Vectors.Data[i] = v
	}
	if rows > 2 {
		e.Vectors.Data[0] = 0
		e.Vectors.Data[1] = math.Copysign(0, -1)
		if !f32exact {
			e.Vectors.Data[2] = 5e-324 // float64 subnormal
		}
	}
	e.Words = make([]string, rows)
	for i := range e.Words {
		e.Words[i] = "w" + strings.Repeat("x", i%3) + string(rune('a'+i%26))
	}
	e.Meta = embedding.Meta{Algorithm: "cbow", Corpus: "wiki17", Dim: cols, Seed: 42, Precision: 32}
	return e
}

// embEqualBits fails unless a and b agree bit-for-bit in values, words,
// and metadata.
func embEqualBits(t *testing.T, a, b *embedding.Embedding) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Dim() != b.Dim() {
		t.Fatalf("shape %dx%d vs %dx%d", a.Rows(), a.Dim(), b.Rows(), b.Dim())
	}
	for i, v := range a.Vectors.Data {
		if math.Float64bits(v) != math.Float64bits(b.Vectors.Data[i]) {
			t.Fatalf("value %d: %x vs %x", i, math.Float64bits(v), math.Float64bits(b.Vectors.Data[i]))
		}
	}
	if len(a.Words) != len(b.Words) {
		t.Fatalf("words %d vs %d", len(a.Words), len(b.Words))
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("word %d: %q vs %q", i, a.Words[i], b.Words[i])
		}
	}
	if a.Meta != b.Meta {
		t.Fatalf("meta %+v vs %+v", a.Meta, b.Meta)
	}
}

// gobRoundTrip pushes e through the gob encoding, the store's reference
// for bit-exactness.
func gobRoundTrip(t *testing.T, e *embedding.Embedding) *embedding.Embedding {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := embedding.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBinaryRoundTripFloat64BitEqualsGob(t *testing.T) {
	e := binTestEmbedding(t, 37, 9, false)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Float64); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, gobRoundTrip(t, e), dec)
}

func TestBinaryRoundTripFloat32BitEqualsGob(t *testing.T) {
	// Float32 payloads are exact when every value is float32-representable
	// (the quantized-embedding case); then the binary round trip must
	// agree with gob bit-for-bit.
	e := binTestEmbedding(t, 23, 5, true)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Float32); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, gobRoundTrip(t, e), dec)
	if buf.Len() >= 23*5*8 {
		t.Fatalf("float32 payload not narrower: %d bytes", buf.Len())
	}
}

func TestBinaryFloat32Narrowing(t *testing.T) {
	// Non-representable values narrow to float32(v) — documented loss.
	e := embedding.New(1, 1)
	e.Vectors.Data[0] = 1.0000000000000002 // not float32-representable
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Float32); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Vectors.Data[0], float64(float32(e.Vectors.Data[0])); got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	e := binTestEmbedding(t, 12, 4, false)
	path := filepath.Join(t.TempDir(), "emb.bin")
	if err := SaveBinaryFile(path, e, Float64); err != nil {
		t.Fatal(err)
	}
	dec, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, dec)

	mapped, close, err := MapBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, mapped)
	if err := close(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryNoWords(t *testing.T) {
	e := binTestEmbedding(t, 6, 3, false)
	e.Words = nil
	var buf bytes.Buffer
	if err := WriteBinary(&buf, e, Float64); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, dec)
}

// encodeValid returns a well-formed binary artifact to corrupt.
func encodeValid(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, binTestEmbedding(t, 8, 3, false), Float64); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	valid := encodeValid(t)
	corrupt := func(name string, mutate func([]byte) []byte) {
		data := mutate(append([]byte(nil), valid...))
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: decode accepted corrupt artifact", name)
		}
	}
	corrupt("empty", func(d []byte) []byte { return nil })
	corrupt("truncated header", func(d []byte) []byte { return d[:binHeaderLen-1] })
	corrupt("truncated payload", func(d []byte) []byte { return d[:len(d)-1] })
	corrupt("trailing garbage", func(d []byte) []byte { return append(d, 0) })
	corrupt("bad magic", func(d []byte) []byte { d[0] = 'X'; return d })
	corrupt("bad elem kind", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[8:12], 9)
		return d
	})
	corrupt("rows overflow", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[16:24], math.MaxUint64/2)
		return d
	})
	corrupt("payload offset under strings", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[44:48], 1<<20) // algo len past payload
		return d
	})
	corrupt("word count mismatch", func(d []byte) []byte {
		// Shrink the words blob length so it splits into fewer words than rows.
		binary.LittleEndian.PutUint32(d[52:56], 2)
		return d
	})
}

func TestBinaryRejectsFutureVersion(t *testing.T) {
	// The format evolves by bumping the version; a reader must reject a
	// file stamped with a version it does not understand rather than
	// misparse it.
	data := encodeValid(t)
	binary.LittleEndian.PutUint32(data[4:8], BinaryVersion+1)
	_, err := DecodeBinary(data)
	if err == nil {
		t.Fatal("decode accepted artifact from a future format version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("error does not name the version mismatch: %v", err)
	}
}

func TestStoreDiskTierPrefersBinary(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Algo: "cbow", Corpus: "wiki17", Dim: 3, Seed: 1, Bits: 32, Scope: "x"}
	e := binTestEmbedding(t, 8, 3, false)
	got, err := st.Get(k, true, func() (*embedding.Embedding, error) { return e, nil })
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, got)
	for _, ext := range []string{BinaryExt, ".gob"} {
		if _, err := os.Stat(filepath.Join(dir, k.ID()+ext)); err != nil {
			t.Fatalf("missing %s artifact: %v", ext, err)
		}
	}

	// A fresh store must hit disk via the binary tier; breaking the gob
	// file proves the load path never touched it.
	if err := os.WriteFile(filepath.Join(dir, k.ID()+".gob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st2.Get(k, true, func() (*embedding.Embedding, error) {
		t.Fatal("recomputed despite binary disk artifact")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, got2)
	if st2.Stats().DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st2.Stats().DiskHits)
	}
}

func TestStoreDiskTierGobFallback(t *testing.T) {
	// Caches written before the binary format have only .gob files; they
	// must still hit.
	dir := t.TempDir()
	k := Key{Algo: "cbow", Corpus: "wiki17", Dim: 3, Seed: 1, Bits: 32, Scope: "x"}
	e := binTestEmbedding(t, 8, 3, false)
	if err := e.SaveFile(filepath.Join(dir, k.ID()+".gob")); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(k, true, func() (*embedding.Embedding, error) {
		t.Fatal("recomputed despite gob disk artifact")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	embEqualBits(t, e, got)

	// The gob hit must have backfilled the binary encoding, so the slow
	// decode is paid once per artifact, not once per restart.
	bin, err := LoadBinaryFile(filepath.Join(dir, k.ID()+BinaryExt))
	if err != nil {
		t.Fatalf("gob fallback did not backfill the binary artifact: %v", err)
	}
	embEqualBits(t, e, bin)
}

func TestDecodeBinaryZeroCopy(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy decode requires a little-endian host")
	}
	var buf bytes.Buffer
	e := binTestEmbedding(t, 8, 3, false)
	if err := WriteBinary(&buf, e, Float64); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	dec, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	// bytes.Buffer allocations are 8-aligned and the payload offset is
	// 64-aligned, so the decode must alias data, not copy it.
	data[len(data)-8] ^= 0xff
	if dec.Vectors.Data[len(dec.Vectors.Data)-1] == e.Vectors.Data[len(e.Vectors.Data)-1] {
		t.Fatal("decode copied the payload; expected zero-copy aliasing")
	}
}
