package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"anchor/internal/compress"
	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/embtrain"
	"anchor/internal/parallel"
	"anchor/internal/store"
	"anchor/internal/tasks"
	"anchor/internal/tasks/ner"
	"anchor/internal/tasks/sentiment"
)

// Runner executes experiments against a Config. Expensive shared
// artifacts are cached so that running the whole suite trains each
// embedding exactly once: trained, aligned, and quantized embeddings live
// in an artifact store (memory-only by default; give the store a cache
// directory and they survive restarts), downstream task datasets are
// generated once per task, and the measurement grid is cached per
// configuration.
//
// Trainers, measures, and downstream tasks are resolved through their
// registries (embtrain.Register, core.RegisterMeasure, tasks.Register),
// so new backends plug in by name. The context-aware methods (PairCtx,
// MeasuresCtx, ...) return errors; the legacy name-panicking variants are
// retained as thin wrappers for existing callers and tests.
type Runner struct {
	Cfg Config

	store *store.Store

	mu        sync.Mutex
	c17, c18  *corpus.Corpus
	taskCache map[string]tasks.Evaluator
	topIDs    []int
	gridCache map[string][]Cell
}

// NewRunner returns a Runner with an unbounded in-memory artifact store.
func NewRunner(cfg Config) *Runner {
	return NewRunnerWithStore(cfg, store.Memory())
}

// NewRunnerWithStore returns a Runner backed by the given artifact store;
// a store opened on a cache directory makes trained embeddings survive
// process restarts.
func NewRunnerWithStore(cfg Config, st *store.Store) *Runner {
	return &Runner{
		Cfg:       cfg,
		store:     st,
		taskCache: map[string]tasks.Evaluator{},
		gridCache: map[string][]Cell{},
	}
}

// Store exposes the runner's artifact store (for stats reporting).
func (r *Runner) Store() *store.Store { return r.store }

// corpusScope hashes the corpus generation config into the artifact-store
// key scope, so stores shared between differently-configured runners can
// never serve an embedding trained on the wrong corpus.
func corpusScope(cfg corpus.Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", cfg)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Corpora returns the two snapshots, generating them on first use.
func (r *Runner) Corpora() (*corpus.Corpus, *corpus.Corpus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c17 == nil {
		r.c17 = corpus.Generate(r.Cfg.Corpus, corpus.Wiki17)
		r.c18 = corpus.Generate(r.Cfg.Corpus, corpus.Wiki18)
	}
	return r.c17, r.c18
}

// TopWordIDs returns the ids of the most frequent Wiki'17 words used for
// distance measures.
func (r *Runner) TopWordIDs() []int {
	c17, _ := r.Corpora()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.topIDs == nil {
		r.topIDs = c17.TopWords(r.Cfg.TopWords)
	}
	return r.topIDs
}

// embKey builds the artifact-store key for an embedding of this runner's
// corpus configuration.
func (r *Runner) embKey(algo, corpusTag string, dim int, seed int64, bits int) store.Key {
	return store.Key{
		Algo: algo, Corpus: corpusTag, Dim: dim, Seed: seed, Bits: bits,
		Scope: corpusScope(r.Cfg.Corpus),
	}
}

// SnapshotKey returns the artifact-store key under which
// QuantizedSnapshotCtx serves the (algo, year, dim, bits, seed) snapshot —
// the identity derived sidecars (ANN indexes) attach to. bits 0 or >= 32
// normalizes to the full-precision key.
func (r *Runner) SnapshotKey(algo string, year, dim, bits int, seed int64) (store.Key, error) {
	var tag string
	switch year {
	case 2017:
		tag = "wiki17"
	case 2018:
		tag = "wiki18"
	default:
		return store.Key{}, fmt.Errorf("experiments: year must be 2017 or 2018, got %d", year)
	}
	if bits <= 0 || bits >= compress.FullPrecision {
		bits = compress.FullPrecision
	}
	return r.embKey(algo, tag, dim, seed, bits), nil
}

// TrainCtx returns the single unaligned embedding for (algo, year, dim,
// seed) from the artifact store, training it on a miss. year selects the
// snapshot (2017 or 2018).
func (r *Runner) TrainCtx(ctx context.Context, algo string, year, dim int, seed int64) (*embedding.Embedding, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var tag string
	switch year {
	case 2017:
		tag = "wiki17"
	case 2018:
		tag = "wiki18"
	default:
		return nil, fmt.Errorf("experiments: year must be 2017 or 2018, got %d", year)
	}
	c17, c18 := r.Corpora()
	c := c17
	if year == 2018 {
		c = c18
	}
	return r.store.Get(r.embKey(algo, tag, dim, seed, 32), true, func() (*embedding.Embedding, error) {
		tr, err := embtrain.Lookup(algo, r.Cfg.Workers)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return tr.Train(c, dim, seed), nil
	})
}

// PairCtx returns the full-precision embedding pair for (algo, dim,
// seed): the Wiki'17 embedding and the Wiki'18 embedding already aligned
// to it with orthogonal Procrustes (Section 3's protocol). Both come from
// the artifact store, so a warm store serves the pair without retraining;
// the compute path trains both snapshots and aligns in one flight.
func (r *Runner) PairCtx(ctx context.Context, algo string, dim int, seed int64) (*embedding.Embedding, *embedding.Embedding, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	_, c18 := r.Corpora()
	k17 := r.embKey(algo, "wiki17", dim, seed, 32)
	k18 := r.embKey(algo, "wiki18a", dim, seed, 32)
	return r.store.GetPair(k17, k18, true, func() (*embedding.Embedding, *embedding.Embedding, error) {
		tr, err := embtrain.Lookup(algo, r.Cfg.Workers)
		if err != nil {
			return nil, nil, err
		}
		// The Wiki'17 snapshot goes through its single-artifact store
		// slot, so a pair request never retrains an embedding that
		// /v1/train (or a restart's disk tier) already produced.
		e17, err := r.TrainCtx(ctx, algo, 2017, dim, seed)
		if err != nil {
			return nil, nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		e18 := tr.Train(c18, dim, seed)
		embedding.AlignTagged(e17, e18)
		return e17, e18, nil
	})
}

// Pair is PairCtx without cancellation.
//
// Deprecated: it panics on unknown algorithm names; new callers should
// use PairCtx.
func (r *Runner) Pair(algo string, dim int, seed int64) (*embedding.Embedding, *embedding.Embedding) {
	e17, e18, err := r.PairCtx(context.Background(), algo, dim, seed)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return e17, e18
}

// QuantizedPairCtx returns the (aligned) pair compressed to the given
// precision with a shared clip. Quantized variants are store artifacts
// too, keyed by their precision, so repeated queries at the same cell
// skip even the quantization pass.
func (r *Runner) QuantizedPairCtx(ctx context.Context, algo string, dim, prec int, seed int64) (*embedding.Embedding, *embedding.Embedding, error) {
	if prec == 32 {
		return r.PairCtx(ctx, algo, dim, seed)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	k17 := r.embKey(algo, "wiki17", dim, seed, prec)
	k18 := r.embKey(algo, "wiki18a", dim, seed, prec)
	return r.store.GetPair(k17, k18, true, func() (*embedding.Embedding, *embedding.Embedding, error) {
		e17, e18, err := r.PairCtx(ctx, algo, dim, seed)
		if err != nil {
			return nil, nil, err
		}
		q17, q18 := compress.QuantizePairWorkers(e17, e18, prec, r.Cfg.Workers)
		return q17, q18, nil
	})
}

// QuantizedSnapshotCtx returns the single unaligned embedding for (algo,
// year, dim, seed) compressed to the given precision, for the serving
// read path. The clip is always learned on the Wiki'17 snapshot, matching
// QuantizedPairCtx's shared-clip convention, so the 2017 and 2018
// snapshots of one cell stay directly comparable. bits >= 32 is the
// full-precision TrainCtx artifact; quantized variants are store
// artifacts keyed by their precision.
func (r *Runner) QuantizedSnapshotCtx(ctx context.Context, algo string, year, dim, bits int, seed int64) (*embedding.Embedding, error) {
	if bits >= compress.FullPrecision {
		return r.TrainCtx(ctx, algo, year, dim, seed)
	}
	if bits < 1 {
		return nil, fmt.Errorf("experiments: precision must be in 1..32, got %d", bits)
	}
	var tag string
	switch year {
	case 2017:
		tag = "wiki17"
	case 2018:
		tag = "wiki18"
	default:
		return nil, fmt.Errorf("experiments: year must be 2017 or 2018, got %d", year)
	}
	return r.store.Get(r.embKey(algo, tag, dim, seed, bits), true, func() (*embedding.Embedding, error) {
		e17, err := r.TrainCtx(ctx, algo, 2017, dim, seed)
		if err != nil {
			return nil, err
		}
		clip := compress.OptimalClipWorkers(e17.Vectors.Data, bits, r.Cfg.Workers)
		e := e17
		if year == 2018 {
			if e, err = r.TrainCtx(ctx, algo, 2018, dim, seed); err != nil {
				return nil, err
			}
		}
		return compress.QuantizeWorkers(e, bits, clip, r.Cfg.Workers), nil
	})
}

// QuantizedPair is QuantizedPairCtx without cancellation.
//
// Deprecated: it panics on unknown algorithm names; new callers should
// use QuantizedPairCtx.
func (r *Runner) QuantizedPair(algo string, dim, prec int, seed int64) (*embedding.Embedding, *embedding.Embedding) {
	q17, q18, err := r.QuantizedPairCtx(context.Background(), algo, dim, prec, seed)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return q17, q18
}

// AnchorsCtx returns the EIS anchor embeddings for an algorithm and seed:
// the highest-dimensional full-precision pair of the configured ladder,
// sliced to the top words.
func (r *Runner) AnchorsCtx(ctx context.Context, algo string, seed int64) (*embedding.Embedding, *embedding.Embedding, error) {
	return r.AnchorsAtCtx(ctx, algo, r.Cfg.maxDim(), seed)
}

// AnchorsAtCtx is AnchorsCtx with an explicit anchor dimension, for
// sweeps whose ladder differs from the configured one (the paper anchors
// EIS at the highest-memory pair of the sweep being ranked).
func (r *Runner) AnchorsAtCtx(ctx context.Context, algo string, dim int, seed int64) (*embedding.Embedding, *embedding.Embedding, error) {
	e17, e18, err := r.PairCtx(ctx, algo, dim, seed)
	if err != nil {
		return nil, nil, err
	}
	ids := r.TopWordIDs()
	return e17.SubRows(ids), e18.SubRows(ids), nil
}

// Anchors is AnchorsCtx without cancellation.
//
// Deprecated: it panics on unknown algorithm names; new callers should
// use AnchorsCtx.
func (r *Runner) Anchors(algo string, seed int64) (*embedding.Embedding, *embedding.Embedding) {
	e, et, err := r.AnchorsCtx(context.Background(), algo, seed)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return e, et
}

// TaskEvaluator returns the named downstream task bound to this runner's
// Wiki'17 snapshot, building (and caching) it on first use through the
// task registry.
func (r *Runner) TaskEvaluator(name string) (tasks.Evaluator, error) {
	c17, _ := r.Corpora()
	r.mu.Lock()
	defer r.mu.Unlock()
	if ev, ok := r.taskCache[name]; ok {
		return ev, nil
	}
	ev, err := tasks.New(name, c17, r.Cfg.Corpus)
	if err != nil {
		return nil, err
	}
	r.taskCache[name] = ev
	return ev, nil
}

// SentimentData returns the named sentiment dataset (generated once from
// the Wiki'17 snapshot, shared by every model).
//
// Deprecated: it panics on unknown task names; new callers should use
// TaskEvaluator.
func (r *Runner) SentimentData(name string) *sentiment.Dataset {
	ev, err := r.TaskEvaluator(name)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	st, ok := ev.(*tasks.Sentiment)
	if !ok {
		panic(fmt.Sprintf("experiments: task %q is not a sentiment task", name))
	}
	return st.Data
}

// NERData returns the CoNLL-analogue dataset.
func (r *Runner) NERData() *ner.Dataset {
	ev, err := r.TaskEvaluator("conll2003")
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return ev.(*tasks.NER).Data
}

// StabilityCtx evaluates one downstream task on one grid cell: it fetches
// the quantized aligned pair from the store, trains the task's
// Wiki'17/Wiki'18 model pair (concurrently under the worker budget), and
// returns the prediction disagreement and the Wiki'17 model's quality.
// This is the serving-path unit: bitwise identical to the grid sweep's
// per-cell evaluation.
func (r *Runner) StabilityCtx(ctx context.Context, algo, task string, dim, prec int, seed int64) (tasks.Result, error) {
	ev, err := r.TaskEvaluator(task)
	if err != nil {
		return tasks.Result{}, err
	}
	q17, q18, err := r.QuantizedPairCtx(ctx, algo, dim, prec, seed)
	if err != nil {
		return tasks.Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return tasks.Result{}, err
	}
	return ev.Eval(q17, q18, seed, r.trainPair), nil
}

// MeasuresCtx returns the configured measure set for (algo, seed) from
// the measure registry, with the eigenspace instability anchors resolved
// and the config's worker budget threaded into every measure.
func (r *Runner) MeasuresCtx(ctx context.Context, algo string, seed int64) ([]core.Measure, error) {
	e, et, err := r.AnchorsCtx(ctx, algo, seed)
	if err != nil {
		return nil, err
	}
	return core.NewMeasures(core.MeasureConfig{
		Anchors: e, AnchorsTilde: et,
		Alpha: r.Cfg.Alpha, K: r.Cfg.K, Queries: r.Cfg.KNNQueries,
		Workers: r.Cfg.Workers,
	}), nil
}

// Measures is MeasuresCtx without cancellation.
//
// Deprecated: it panics on unknown algorithm names; new callers should
// use MeasuresCtx.
func (r *Runner) Measures(algo string, seed int64) []core.Measure {
	ms, err := r.MeasuresCtx(context.Background(), algo, seed)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return ms
}

// MeasureNames lists the measure names in reporting order (Table 1's
// rows), straight from the measure registry.
func MeasureNames() []string { return core.MeasureNames() }

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects all CPUs). fn must synchronize its own writes to
// shared state.
func parallelFor(workers, n int, fn func(i int)) {
	parallel.Run(workers, n, fn, nil)
}
