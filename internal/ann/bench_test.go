package ann

import (
	"fmt"
	"testing"
	"time"

	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// exactScan is the brute-force baseline the speedup is measured against:
// one dot per row plus the same bounded-heap selection the IVF path uses,
// so the ratio isolates the scan reduction.
func exactScan(m *matrix.Dense, qi, k int) []int32 {
	q := m.Row(qi)
	var h topK
	h.reset(k)
	for i := 0; i < m.Rows; i++ {
		if i == qi {
			continue
		}
		h.push(int32(i), floats.Dot(q, m.Row(i)))
	}
	return h.drain(make([]int32, k))
}

// BenchmarkANNNeighbors measures IVF neighbor queries against the exact
// scan at |V| ∈ {10k, 100k} on clustered data, reporting the acceptance
// metrics machine-readable: speedup (exact time / IVF time at default
// nprobe) and recall@10 against the exact oracle. `make bench` archives
// the parsed output as BENCH_ann.json.
func BenchmarkANNNeighbors(b *testing.B) {
	const d, k, nq = 32, 10, 64
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			m := clusteredRows(n, d, n/250, 0.1, 13)
			ix := Build(m, Config{Seed: 13})
			queries := make([]int, nq)
			for i := range queries {
				queries[i] = (i * 1997) % n
			}

			want := make([][]int32, nq)
			exactStart := time.Now()
			for i, qi := range queries {
				want[i] = exactScan(m, qi, k)
			}
			exactDur := time.Since(exactStart)

			s := NewSearcher(ix)
			out := make([]int32, k)
			hits, total := 0, 0
			b.ResetTimer()
			annStart := time.Now()
			for it := 0; it < b.N; it++ {
				hits, total = 0, 0
				for i, qi := range queries {
					q := m.Row(qi)
					got := s.Search(q, k, 0, qi, func(id int32) float64 {
						return floats.Dot(q, m.Row(int(id)))
					}, out)
					hits += overlap(got, want[i])
					total += len(want[i])
				}
			}
			annDur := time.Since(annStart) / time.Duration(b.N)
			b.StopTimer()
			b.ReportMetric(float64(exactDur)/float64(annDur), "speedup")
			b.ReportMetric(float64(hits)/float64(total), "recall@10")
			b.ReportMetric(float64(annDur.Nanoseconds())/nq, "ns/query")
		})
	}
}
