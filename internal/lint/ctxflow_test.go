package lint_test

import (
	"strings"
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	oldLib := lint.CtxLibraryPrefixes
	lint.CtxLibraryPrefixes = append(oldLib[:len(oldLib):len(oldLib)], "anchorlint.test/")
	oldDet := lint.DeterministicPackages
	lint.DeterministicPackages = append(oldDet[:len(oldDet):len(oldDet)], "anchorlint.test/ctxflow")
	defer func() {
		lint.CtxLibraryPrefixes = oldLib
		lint.DeterministicPackages = oldDet
	}()
	linttest.Run(t, lint.CtxFlow, "testdata/src/ctxflow", "anchorlint.test/ctxflow")
}

// TestCtxFlowOutsideLibrary loads the same fixture under a package path
// outside both CtxLibraryPrefixes and DeterministicPackages: the
// root-context and I/O-loop findings are scoped to those lists and must
// vanish, while the blocking-call check binds any ctx-receiving
// function anywhere.
func TestCtxFlowOutsideLibrary(t *testing.T) {
	diags := linttest.Collect(t, lint.CtxFlow, "testdata/src/ctxflow", "anchorlint.example/ctxflow")
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if !strings.Contains(d.Message, "receives a ctx but calls") {
			t.Errorf("unexpected diagnostic outside library prefixes: %s", d)
		}
	}
}
