package parallel

import (
	"sync"
	"testing"
)

func TestRangesCoverAllItems(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {5, 4}, {17, 4}, {100, 16}, {16, 16},
	} {
		rs := Ranges(tc.n, tc.shards)
		if len(rs) != tc.shards {
			t.Fatalf("Ranges(%d,%d): %d ranges", tc.n, tc.shards, len(rs))
		}
		covered := 0
		prev := 0
		for _, r := range rs {
			if r.Lo != prev || r.Hi < r.Lo {
				t.Fatalf("Ranges(%d,%d): non-contiguous %+v", tc.n, tc.shards, rs)
			}
			covered += r.Len()
			prev = r.Hi
		}
		if covered != tc.n || prev != tc.n {
			t.Fatalf("Ranges(%d,%d): covered %d ending at %d", tc.n, tc.shards, covered, prev)
		}
	}
}

func TestRangesBalanced(t *testing.T) {
	rs := Ranges(103, 16)
	min, max := rs[0].Len(), rs[0].Len()
	for _, r := range rs {
		if r.Len() < min {
			min = r.Len()
		}
		if r.Len() > max {
			max = r.Len()
		}
	}
	if max-min > 1 {
		t.Fatalf("imbalanced ranges: min=%d max=%d", min, max)
	}
}

func TestShardSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for shard := 0; shard < 32; shard++ {
		for round := 0; round < 32; round++ {
			s := ShardSeed(7, shard, round)
			if s < 0 {
				t.Fatalf("negative shard seed %d", s)
			}
			if seen[s] {
				t.Fatalf("duplicate seed for shard=%d round=%d", shard, round)
			}
			seen[s] = true
		}
	}
	if ShardSeed(1, 0, 0) == ShardSeed(2, 0, 0) {
		t.Fatal("base seed does not affect shard seed")
	}
}

func TestShardRNGDeterministic(t *testing.T) {
	a := ShardRNG(42, 3, 5)
	b := ShardRNG(42, 3, 5)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("ShardRNG not deterministic")
		}
	}
}

func TestRunReducesInOrderAfterAllWork(t *testing.T) {
	const shards = 16
	var mu sync.Mutex
	done := map[int]bool{}
	var reduced []int
	Run(4, shards, func(s int) {
		mu.Lock()
		done[s] = true
		mu.Unlock()
	}, func(s int) {
		if len(done) != shards {
			t.Errorf("reduce(%d) ran before all work finished", s)
		}
		reduced = append(reduced, s)
	})
	for i, s := range reduced {
		if i != s {
			t.Fatalf("reduction out of order: %v", reduced)
		}
	}
	if len(reduced) != shards {
		t.Fatalf("reduced %d shards, want %d", len(reduced), shards)
	}
}

// TestRunWorkerInvariant is the engine's core property on a miniature
// trainer: shard-local accumulation with an ordered reduction must be
// bitwise identical across worker counts, including the sequential path.
func TestRunWorkerInvariant(t *testing.T) {
	train := func(workers int) []float64 {
		const shards = 8
		state := make([]float64, 32)
		reps := make([]*Replica, shards)
		for s := range reps {
			reps[s] = NewReplica(state, 4)
		}
		for round := 0; round < 5; round++ {
			Run(workers, shards, func(s int) {
				r := reps[s]
				r.Begin()
				rng := ShardRNG(9, s, round)
				for i := 0; i < 200; i++ {
					row := r.Row(rng.Intn(8))
					row[rng.Intn(4)] += rng.Float64() - 0.3
				}
				r.Seal()
			}, func(s int) {
				reps[s].Reduce()
			})
		}
		return state
	}
	ref := train(1)
	for _, w := range []int{2, 3, 4, 8, 16} {
		got := train(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d differs from workers=1 at %d: %v vs %v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestWorkersAndShardsDefaults(t *testing.T) {
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("Workers must resolve non-positive to at least 1")
	}
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Shards(0) != DefaultShards || Shards(-2) != DefaultShards {
		t.Fatal("Shards must default to DefaultShards")
	}
	if Shards(5) != 5 {
		t.Fatal("explicit shard count not honored")
	}
}

func TestReplicaRowBeforeBeginFaultsInSharedData(t *testing.T) {
	shared := []float64{7, 8}
	r := NewReplica(shared, 1)
	if got := r.Row(1)[0]; got != 8 {
		t.Fatalf("pre-Begin Row returned %v, want the shared value 8", got)
	}
}

func TestReplicaSealReduce(t *testing.T) {
	shared := []float64{1, 2, 3, 4}
	r := NewReplica(shared, 2)
	r.Begin()
	row := r.Row(1)
	row[0] += 10
	r.Seal()
	r.Reduce()
	want := []float64{1, 2, 13, 4}
	for i := range want {
		if shared[i] != want[i] {
			t.Fatalf("shared = %v, want %v", shared, want)
		}
	}
}

func TestReduceAveragedScalesSharedRows(t *testing.T) {
	shared := []float64{0, 0}
	a := NewReplica(shared, 1)
	b := NewReplica(shared, 1)
	for _, r := range []*Replica{a, b} {
		r.Begin()
	}
	a.Row(0)[0] += 4 // row 0 touched by both shards: averaged
	b.Row(0)[0] += 2
	b.Row(1)[0] += 5 // row 1 touched by one shard: full strength
	a.Seal()
	b.Seal()
	ReduceAveraged([]*Replica{a, b})
	if shared[0] != 3 || shared[1] != 5 {
		t.Fatalf("shared = %v, want [3 5]", shared)
	}
}
