// Package selection implements the paper's two dimension–precision
// selection tasks (Section 5.2): choosing the more stable of two candidate
// configurations, and choosing the most stable configuration under a fixed
// memory budget, using an embedding distance measure as the criterion
// instead of training downstream models. It also provides the paper's
// worst-case variants (Appendix D.5, Tables 10–11) and the high/low
// precision baselines.
package selection

import (
	"math"
	"sort"
)

// Candidate is one dimension–precision configuration evaluated on a fixed
// (task, algorithm, seed): every measure's value between the Wiki'17 and
// Wiki'18 embeddings, plus the true downstream disagreement.
type Candidate struct {
	Dim       int
	Precision int
	// Measures maps measure name to its distance value for this pair.
	Measures map[string]float64
	// TrueDI is the measured downstream prediction disagreement (percent).
	TrueDI float64
}

// MemoryBits returns the paper's memory axis: dimension × precision.
func (c Candidate) MemoryBits() int { return c.Dim * c.Precision }

// PairwiseError evaluates a measure in the paper's first setting: over all
// unordered pairs of candidates, the fraction where the measure selects
// the configuration with (strictly) higher true downstream instability.
func PairwiseError(cands []Candidate, measure string) float64 {
	errs, total := 0, 0
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			if a.TrueDI == b.TrueDI {
				continue // no wrong answer exists
			}
			total++
			pick := a
			if b.Measures[measure] < a.Measures[measure] {
				pick = b
			}
			best := math.Min(a.TrueDI, b.TrueDI)
			if pick.TrueDI != best {
				errs++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(errs) / float64(total)
}

// PairwiseWorstCase returns the maximum absolute increase in downstream
// instability incurred by following the measure over all candidate pairs
// (Appendix D.5, Table 10).
func PairwiseWorstCase(cands []Candidate, measure string) float64 {
	worst := 0.0
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			pick := a
			if b.Measures[measure] < a.Measures[measure] {
				pick = b
			}
			best := math.Min(a.TrueDI, b.TrueDI)
			if d := pick.TrueDI - best; d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Selector picks one candidate from a memory-budget group.
type Selector func(group []Candidate) Candidate

// MeasureSelector picks the candidate with the smallest value of the named
// measure (ties broken toward higher precision, then lower dim, for
// determinism).
func MeasureSelector(measure string) Selector {
	return func(group []Candidate) Candidate {
		best := group[0]
		for _, c := range group[1:] {
			if c.Measures[measure] < best.Measures[measure] ||
				(c.Measures[measure] == best.Measures[measure] && c.Precision > best.Precision) {
				best = c
			}
		}
		return best
	}
}

// HighPrecision is the naive baseline that always picks the highest
// precision available at the budget.
func HighPrecision(group []Candidate) Candidate {
	best := group[0]
	for _, c := range group[1:] {
		if c.Precision > best.Precision {
			best = c
		}
	}
	return best
}

// LowPrecision is the naive baseline that always picks the lowest
// precision available at the budget.
func LowPrecision(group []Candidate) Candidate {
	best := group[0]
	for _, c := range group[1:] {
		if c.Precision < best.Precision {
			best = c
		}
	}
	return best
}

// BudgetGroups groups candidates by memory budget (dim × precision) and
// returns only groups with at least two choices, sorted by budget — the
// paper's second, harder selection setting.
func BudgetGroups(cands []Candidate) [][]Candidate {
	byBudget := map[int][]Candidate{}
	for _, c := range cands {
		byBudget[c.MemoryBits()] = append(byBudget[c.MemoryBits()], c)
	}
	budgets := make([]int, 0, len(byBudget))
	for b, g := range byBudget {
		if len(g) >= 2 {
			budgets = append(budgets, b)
		}
	}
	sort.Ints(budgets)
	out := make([][]Candidate, 0, len(budgets))
	for _, b := range budgets {
		g := byBudget[b]
		sort.Slice(g, func(i, j int) bool { return g[i].Precision < g[j].Precision })
		out = append(out, g)
	}
	return out
}

// OracleDistance evaluates a selector in the budget setting: for each
// budget group it compares the selected candidate's true instability to
// the oracle (minimum) instability in the group, returning the mean and
// worst absolute difference across budgets (Table 3 and Table 11).
func OracleDistance(cands []Candidate, sel Selector) (mean, worst float64) {
	groups := BudgetGroups(cands)
	if len(groups) == 0 {
		return 0, 0
	}
	var sum float64
	for _, g := range groups {
		oracle := g[0].TrueDI
		for _, c := range g[1:] {
			if c.TrueDI < oracle {
				oracle = c.TrueDI
			}
		}
		d := sel(g).TrueDI - oracle
		sum += d
		if d > worst {
			worst = d
		}
	}
	return sum / float64(len(groups)), worst
}
