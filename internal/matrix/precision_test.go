package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// randDense32Exact returns a float64 matrix whose every value is exactly
// float32-representable, plus its narrowed copy — the precondition under
// which Dense32 serving is lossless.
func randDense32Exact(rows, cols int, seed int64) (*Dense, *Dense32) {
	rng := rand.New(rand.NewSource(seed))
	wide := NewDense(rows, cols)
	for i := range wide.Data {
		wide.Data[i] = float64(float32(rng.NormFloat64()))
	}
	return wide, NewDense32From(wide)
}

// randLevels returns 2^bits strictly ascending float32-exact levels, the
// shape compress.Levels produces.
func randLevels(bits int, clip float64) []float64 {
	n := 1 << uint(bits)
	step := 2 * clip / float64(n-1)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(float32(float64(i)*step - clip))
	}
	return out
}

// randCodes returns a code matrix with uniformly random codes.
func randCodes(rows, cols, bits int, seed int64) *Codes {
	rng := rand.New(rand.NewSource(seed))
	c := NewCodes(rows, cols, bits, randLevels(bits, 1.5))
	for i := 0; i < rows; i++ {
		for k := 0; k < cols; k++ {
			c.set(i, k, uint8(rng.Intn(1<<uint(bits))))
		}
	}
	return c
}

func sameBits(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMulABTInto32GoldenBitEquality: the float32 kernel must be bitwise
// identical to the float64 kernel on widened inputs for every worker
// count and shape (including the 4x2 remainder edges).
func TestMulABTInto32GoldenBitEquality(t *testing.T) {
	shapes := []struct{ m, n, d int }{
		{1, 1, 1}, {3, 5, 7}, {4, 2, 8}, {5, 67, 16}, {9, 130, 33}, {70, 70, 24},
	}
	for _, sh := range shapes {
		aWide, a32 := randDense32Exact(sh.m, sh.d, int64(sh.m*1000+sh.n))
		bWide, b32 := randDense32Exact(sh.n, sh.d, int64(sh.n*1000+sh.d))
		want := MulABTWorkers(aWide, bWide, 1)
		for _, workers := range []int{1, 2, 3, 8} {
			got := MulABTInto32(NewDense(sh.m, sh.n), a32, b32, workers)
			sameBits(t, got, want, "MulABTInto32")
		}
	}
}

func TestCodesPackRoundTrip(t *testing.T) {
	for bits := 1; bits <= 8; bits++ {
		for _, cols := range []int{1, 3, 8, 13, 64} {
			c := randCodes(5, cols, bits, int64(bits*100+cols))
			rng := rand.New(rand.NewSource(int64(bits*100 + cols)))
			dst := make([]float64, cols)
			for i := 0; i < c.Rows; i++ {
				c.DequantizeRow(i, dst)
				for k := 0; k < cols; k++ {
					want := uint8(rng.Intn(1 << uint(bits)))
					if got := c.At(i, k); got != want {
						t.Fatalf("bits=%d cols=%d: At(%d,%d)=%d, want %d", bits, cols, i, k, got, want)
					}
					if dst[k] != c.Levels[c.At(i, k)] {
						t.Fatalf("bits=%d: DequantizeRow(%d)[%d] = %v, want level %v", bits, i, k, dst[k], c.Levels[c.At(i, k)])
					}
				}
			}
		}
	}
}

func TestNewCodesFromDenseRoundTrip(t *testing.T) {
	for _, bits := range []int{1, 3, 4, 8} {
		c := randCodes(7, 13, bits, int64(bits))
		dense := c.Dense()
		back, err := NewCodesFromDense(dense, c.Levels, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		for i := range c.Data {
			if back.Data[i] != c.Data[i] {
				t.Fatalf("bits=%d: packed byte %d differs", bits, i)
			}
		}
	}
}

func TestNewCodesFromDenseRejectsOffGrid(t *testing.T) {
	m := NewDense(2, 2)
	m.Data = []float64{-1, 1, 0.3, -1} // 0.3 is not a 1-bit level
	if _, err := NewCodesFromDense(m, []float64{-1, 1}, 1); err == nil {
		t.Fatal("expected error for off-grid value")
	}
}

// TestMulABTIntoLUTGoldenBitEquality: LUT scoring of packed codes must be
// bitwise identical to the float64 kernel against the dequantized rows,
// for every bit width, worker count, and shape.
func TestMulABTIntoLUTGoldenBitEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, bits := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, sh := range []struct{ m, n, d int }{{1, 1, 1}, {3, 9, 13}, {6, 70, 32}} {
			codes := randCodes(sh.n, sh.d, bits, int64(bits*1000+sh.n))
			q := NewDense(sh.m, sh.d)
			for i := range q.Data {
				q.Data[i] = rng.NormFloat64()
			}
			want := MulABTWorkers(q, codes.Dense(), 1)
			for _, workers := range []int{1, 2, 3, 8} {
				got := MulABTIntoLUT(NewDense(sh.m, sh.n), q, codes, workers)
				sameBits(t, got, want, "MulABTIntoLUT")
			}
		}
	}
}
