package ann

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// fuzzSidecar builds a valid encoded sidecar without *testing.T so it
// can seed the fuzz corpus.
func fuzzSidecar(n, d, nlist int) []byte {
	ix := Build(clusteredRows(n, d, max(nlist, 1), 0.1, 7), Config{NList: nlist, Seed: 7})
	var buf bytes.Buffer
	if err := Encode(&buf, ix); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecodeANNIndex throws arbitrary, corrupt, and truncated bytes at
// the sidecar decoder, mirroring FuzzDecodeBinary in internal/store. The
// contract under damage is the same: decode cleanly and
// bitwise-faithfully, or return an error — never panic, never hand back
// an index whose invariants the search path cannot trust or a re-encode
// chokes on. Run by `make fuzz-smoke` and CI with a 30s budget.
func FuzzDecodeANNIndex(f *testing.F) {
	valid := fuzzSidecar(64, 6, 5)
	f.Add(valid)
	f.Add(fuzzSidecar(0, 3, 0))
	f.Add(fuzzSidecar(33, 2, 33))
	f.Add([]byte{})
	// The corrupt fixtures from TestFormatRejectsCorrupt seed the corpus
	// so the fuzzer starts at every rejection branch.
	mutate := func(m func([]byte) []byte) { f.Add(m(append([]byte(nil), valid...))) }
	mutate(func(d []byte) []byte { return d[:annHeaderLen-1] })
	mutate(func(d []byte) []byte { return d[:len(d)-1] })
	mutate(func(d []byte) []byte { return append(d, 0) })
	mutate(func(d []byte) []byte { d[0] = 'X'; return d })
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[8:12], 0) // nlist zero
		return d
	})
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[16:24], math.MaxUint64/2) // rows overflow
		return d
	})
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[40:48], 1<<20) // payload offset past file
		return d
	})
	mutate(func(d []byte) []byte {
		d[len(d)-1] ^= 1 // payload bit flip vs recorded checksum
		return d
	})
	payloadOff := int(binary.LittleEndian.Uint64(valid[40:48]))
	mutate(func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[payloadOff+5*6*8:], 1) // starts[0] != 0
		return rechecksum(d)
	})
	mutate(func(d []byte) []byte {
		ids := d[payloadOff+5*6*8+6*4:]
		copy(ids[4:8], ids[0:4]) // duplicate id
		return rechecksum(d)
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded input size")
		}
		ix, err := Decode(data)
		if err != nil {
			if ix != nil {
				t.Fatal("decode returned both an index and an error")
			}
			return
		}
		if ix == nil {
			t.Fatal("decode returned neither an index nor an error")
		}
		// A successful decode must carry the searchable invariants and
		// survive a round trip through the encoder.
		if ix.Starts[0] != 0 || int(ix.Starts[ix.NList]) != ix.Rows {
			t.Fatalf("decoded starts span [%d, %d) for %d rows", ix.Starts[0], ix.Starts[ix.NList], ix.Rows)
		}
		if err := Encode(io.Discard, ix); err != nil {
			t.Fatalf("re-encode of successfully decoded sidecar failed: %v", err)
		}
	})
}
