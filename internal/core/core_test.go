package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anchor/internal/embedding"
	"anchor/internal/matrix"
)

func randEmb(n, d int, seed int64) *embedding.Embedding {
	rng := rand.New(rand.NewSource(seed))
	e := embedding.New(n, d)
	for i := range e.Vectors.Data {
		e.Vectors.Data[i] = rng.NormFloat64()
	}
	return e
}

// perturb returns a copy of e with Gaussian noise of the given scale.
func perturb(e *embedding.Embedding, scale float64, seed int64) *embedding.Embedding {
	rng := rand.New(rand.NewSource(seed))
	c := e.Clone()
	for i := range c.Vectors.Data {
		c.Vectors.Data[i] += scale * rng.NormFloat64()
	}
	return c
}

func TestPredictionDisagreement(t *testing.T) {
	a := []int{1, 0, 1, 1}
	b := []int{1, 1, 1, 0}
	if got := PredictionDisagreement(a, b); got != 0.5 {
		t.Fatalf("disagreement = %v, want 0.5", got)
	}
	if got := PredictionDisagreementPct(a, b); got != 50 {
		t.Fatalf("pct = %v, want 50", got)
	}
	if PredictionDisagreement([]string{}, []string{}) != 0 {
		t.Fatal("empty disagreement should be 0")
	}
}

func TestPredictionDisagreementPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PredictionDisagreement([]int{1}, []int{1, 2})
}

func TestMeasuresZeroOnIdenticalEmbeddings(t *testing.T) {
	x := randEmb(40, 6, 1)
	anchors := randEmb(40, 10, 2)
	for _, m := range AllMeasures(anchors, anchors) {
		d := m.Distance(x, x.Clone())
		if d < -1e-9 || d > 1e-6 {
			t.Fatalf("%s: distance on identical embeddings = %v, want ~0", m.Name(), d)
		}
	}
}

func TestMeasuresIncreaseWithPerturbation(t *testing.T) {
	x := randEmb(60, 8, 3)
	e := randEmb(60, 12, 4)
	et := perturb(e, 0.01, 5)
	small := perturb(x, 0.05, 6)
	large := perturb(x, 1.0, 7)
	for _, m := range AllMeasures(e, et) {
		ds := m.Distance(x, small)
		dl := m.Distance(x, large)
		if ds >= dl {
			t.Fatalf("%s: small perturbation %v >= large %v", m.Name(), ds, dl)
		}
	}
}

func TestMeasureRangesProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randEmb(25, 4, seed)
		y := randEmb(25, 4, seed+1000)
		e := randEmb(25, 6, seed+2000)
		et := randEmb(25, 6, seed+3000)
		// Bounded measures stay in [0, their bound].
		if d := NewEigenspaceInstability(e, et).Distance(x, y); d < 0 || d > 1+1e-9 {
			return false
		}
		knn := &KNN{K: 3, Queries: 10, Seed: 1}
		if d := knn.Distance(x, y); d < 0 || d > 1+1e-9 {
			return false
		}
		if d := (EigenspaceOverlap{}).Distance(x, y); d < -1e-9 || d > 1+1e-9 {
			return false
		}
		if d := (SemanticDisplacement{}).Distance(x, y); d < 0 || d > 2+1e-9 {
			return false
		}
		return (PIPLoss{}).Distance(x, y) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNSymmetricIdentity(t *testing.T) {
	x := randEmb(30, 5, 8)
	m := &KNN{K: 5, Queries: 30, Seed: 1}
	if d := m.Distance(x, x); d != 0 {
		t.Fatalf("KNN self-distance = %v", d)
	}
}

func TestNeighborSetsExcludeSelf(t *testing.T) {
	x := randEmb(20, 4, 9)
	sets := neighborSets(x, []int{3}, 5, 1)
	if len(sets) != 1 || len(sets[0]) != 5 {
		t.Fatalf("got %v", sets)
	}
	for _, w := range sets[0] {
		if w == 3 {
			t.Fatal("query included in its own neighbors")
		}
	}
}

func TestPIPLossMatchesNaive(t *testing.T) {
	x := randEmb(15, 3, 10)
	y := randEmb(15, 4, 11)
	got := (PIPLoss{}).Distance(x, y)
	gx := matrix.MulABT(x.Vectors, x.Vectors)
	gy := matrix.MulABT(y.Vectors, y.Vectors)
	want := gx.Sub(gy).FrobNorm()
	if math.Abs(got-want) > 1e-8*(1+want) {
		t.Fatalf("PIP loss %v != naive %v", got, want)
	}
}

func TestEigenspaceOverlapRotationInvariant(t *testing.T) {
	// An orthogonal rotation spans the same subspace: overlap distance ~ 0.
	x := randEmb(30, 5, 12)
	rng := rand.New(rand.NewSource(13))
	s := matrix.ComputeSVD(matrix.NewDenseRand(5, 5, 1, rng))
	rot := matrix.MulABT(s.U, s.V)
	y := &embedding.Embedding{Vectors: matrix.Mul(x.Vectors, rot)}
	if d := (EigenspaceOverlap{}).Distance(x, y); d > 1e-8 {
		t.Fatalf("overlap distance after rotation = %v, want ~0", d)
	}
}

func TestEigenspaceInstabilityEfficientMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		x := randEmb(25, 4, 20+seed)
		y := randEmb(25, 6, 30+seed)
		e := randEmb(25, 8, 40+seed)
		et := randEmb(25, 8, 50+seed)
		m := NewEigenspaceInstability(e, et)
		eff := m.Distance(x, y)
		naive := m.NaiveDistance(x, y)
		if math.Abs(eff-naive) > 1e-8*(1+naive) {
			t.Fatalf("seed %d: efficient %v != naive %v", seed, eff, naive)
		}
	}
}

func TestEigenspaceInstabilityOrthogonalSubspaces(t *testing.T) {
	// X spans e1..e2, X̃ spans e3..e4 of R^8; with Σ = I-ish anchors
	// covering the whole space the measure should be large (near 1 when
	// Σ weights the union of the subspaces).
	n := 8
	x := embedding.New(n, 2)
	y := embedding.New(n, 2)
	x.Vectors.Set(0, 0, 1)
	x.Vectors.Set(1, 1, 1)
	y.Vectors.Set(2, 0, 1)
	y.Vectors.Set(3, 1, 1)
	// Anchors: identity embeddings spanning all of R^n with equal weight.
	e := embedding.New(n, n)
	for i := 0; i < n; i++ {
		e.Vectors.Set(i, i, 1)
	}
	m := &EigenspaceInstability{E: e, ETilde: e, Alpha: 1}
	got := m.Distance(x, y)
	// Σ = 2I: numerator tr((UUᵀ+ŨŨᵀ−2ŨŨᵀUUᵀ)·2I) = 2·(2+2−0) = 8,
	// denominator tr(Σ) = 2n = 16, so the measure is 0.5.
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("orthogonal subspace EIS = %v, want 0.5", got)
	}
	// Identical subspaces → 0.
	if d := m.Distance(x, x.Clone()); math.Abs(d) > 1e-9 {
		t.Fatalf("identical subspace EIS = %v, want 0", d)
	}
}

// TestProposition1 verifies the paper's central theorem: the expected
// normalized disagreement between linear regression models trained on X
// and X̃ with labels y ~ N(0, Σ) equals the eigenspace instability
// measure with that Σ.
func TestProposition1(t *testing.T) {
	n := 30
	x := randEmb(n, 4, 60)
	y := randEmb(n, 5, 61)
	e := randEmb(n, 6, 62)
	et := randEmb(n, 6, 63)
	for _, alpha := range []float64{1, 3} {
		m := &EigenspaceInstability{E: e, ETilde: et, Alpha: alpha}
		want := m.Distance(x, y)
		sqrtSigma := AnchorCovarianceSqrt(e, et, alpha)
		got := ExpectedLinearDisagreement(x, y, sqrtSigma, 4000, 64)
		if math.Abs(got-want) > 0.05*(want+0.01) {
			t.Fatalf("alpha=%v: Monte-Carlo %v vs closed form %v", alpha, got, want)
		}
	}
}

func TestLinearRegressionPredictionsMatchNormalEquations(t *testing.T) {
	n, d := 20, 4
	x := randEmb(n, d, 70)
	rng := rand.New(rand.NewSource(71))
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	got := LinearRegressionPredictions(x, y)
	w := matrix.LeastSquares(x.Vectors, y)
	want := matrix.MulVec(x.Vectors, w)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("prediction %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestAnchorCovarianceSqrtShape(t *testing.T) {
	e := randEmb(12, 3, 80)
	et := randEmb(12, 4, 81)
	s := AnchorCovarianceSqrt(e, et, 2)
	if s.Rows != 12 || s.Cols != 7 {
		t.Fatalf("shape %dx%d, want 12x7", s.Rows, s.Cols)
	}
	// S Sᵀ must equal (EEᵀ)² + (ẼẼᵀ)².
	sst := matrix.MulABT(s, s)
	ge := matrix.MulABT(e.Vectors, e.Vectors)
	gt := matrix.MulABT(et.Vectors, et.Vectors)
	want := matrix.Mul(ge, ge).Add(matrix.Mul(gt, gt))
	diff := sst.Sub(want).FrobNorm()
	if diff > 1e-7*(1+want.FrobNorm()) {
		t.Fatalf("S Sᵀ mismatch: %v", diff)
	}
}

func TestSVDCacheConsistency(t *testing.T) {
	ResetSVDCache()
	x := randEmb(20, 4, 90)
	x.Meta = embedding.Meta{Algorithm: "mc", Corpus: "wiki17", Dim: 4, Seed: 90, Precision: 32}
	a := thinSVD(x)
	b := thinSVD(x)
	if &a.U.Data[0] != &b.U.Data[0] {
		t.Fatal("cached SVD not reused")
	}
	ResetSVDCache()
	c := thinSVD(x)
	if &a.U.Data[0] == &c.U.Data[0] {
		t.Fatal("cache not cleared")
	}
}
