package corpus

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig()
	a := Generate(cfg, Wiki17)
	b := Generate(cfg, Wiki17)
	if a.Tokens != b.Tokens || len(a.Sentences) != len(b.Sentences) {
		t.Fatalf("nondeterministic shape: %d/%d vs %d/%d", a.Tokens, len(a.Sentences), b.Tokens, len(b.Sentences))
	}
	for i := range a.Sentences {
		for j := range a.Sentences[i] {
			if a.Sentences[i][j] != b.Sentences[i][j] {
				t.Fatalf("sentence %d token %d differs", i, j)
			}
		}
	}
}

func TestWiki18DiffersButSimilar(t *testing.T) {
	cfg := TestConfig()
	a := Generate(cfg, Wiki17)
	b := Generate(cfg, Wiki18)
	if b.Docs <= a.Docs {
		t.Fatalf("Wiki18 should have more documents (extra docs): %d vs %d", b.Docs, a.Docs)
	}
	// The snapshots should be distributionally close but not identical:
	// total variation distance between unigram distributions small yet > 0.
	var tv float64
	for w := range a.Counts {
		pa := float64(a.Counts[w]) / float64(a.Tokens)
		pb := float64(b.Counts[w]) / float64(b.Tokens)
		if pa > pb {
			tv += pa - pb
		} else {
			tv += pb - pa
		}
	}
	tv /= 2
	if tv == 0 {
		t.Fatal("corpora have identical unigram distributions; no drift")
	}
	if tv > 0.25 {
		t.Fatalf("corpora too different: unigram TV distance %.3f", tv)
	}
}

func TestVocabSharedAcrossYears(t *testing.T) {
	cfg := TestConfig()
	a := Generate(cfg, Wiki17)
	b := Generate(cfg, Wiki18)
	if a.Vocab.Size() != b.Vocab.Size() {
		t.Fatal("vocab size differs across years")
	}
	for i, w := range a.Vocab.Words {
		if b.Vocab.Words[i] != w {
			t.Fatalf("vocab word %d differs: %q vs %q", i, w, b.Vocab.Words[i])
		}
	}
}

func TestVocabWellFormed(t *testing.T) {
	cfg := TestConfig()
	v := BuildVocab(cfg)
	if v.Size() != cfg.VocabSize {
		t.Fatalf("vocab size %d != %d", v.Size(), cfg.VocabSize)
	}
	seen := map[string]bool{}
	for i, w := range v.Words {
		if w == "" {
			t.Fatal("empty word")
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if v.Index[w] != i {
			t.Fatalf("index mismatch for %q", w)
		}
	}
}

func TestCountsConsistent(t *testing.T) {
	cfg := TestConfig()
	c := Generate(cfg, Wiki17)
	var total int64
	counts := make([]int64, cfg.VocabSize)
	for _, s := range c.Sentences {
		for _, w := range s {
			counts[w]++
			total++
		}
	}
	if total != c.Tokens {
		t.Fatalf("token count mismatch: %d vs %d", total, c.Tokens)
	}
	for i := range counts {
		if counts[i] != c.Counts[i] {
			t.Fatalf("count mismatch for word %d", i)
		}
	}
}

func TestZipfLikeFrequencies(t *testing.T) {
	cfg := TestConfig()
	c := Generate(cfg, Wiki17)
	top := c.TopWords(cfg.VocabSize)
	// Top decile should carry far more mass than bottom decile.
	dec := cfg.VocabSize / 10
	var topMass, botMass int64
	for _, w := range top[:dec] {
		topMass += c.Counts[w]
	}
	for _, w := range top[len(top)-dec:] {
		botMass += c.Counts[w]
	}
	if topMass < 10*botMass {
		t.Fatalf("frequencies not skewed enough: top=%d bottom=%d", topMass, botMass)
	}
}

func TestTopWordsOrdering(t *testing.T) {
	cfg := TestConfig()
	c := Generate(cfg, Wiki17)
	top := c.TopWords(50)
	if len(top) != 50 {
		t.Fatalf("TopWords returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if c.Counts[top[i]] > c.Counts[top[i-1]] {
			t.Fatal("TopWords not sorted by count")
		}
	}
}

func TestPrimaryTopicInRangeProperty(t *testing.T) {
	cfg := TestConfig()
	f := func(w uint16) bool {
		id := int(w) % cfg.VocabSize
		t17 := PrimaryTopic(cfg, id, Wiki17)
		t18 := PrimaryTopic(cfg, id, Wiki18)
		return t17 >= 0 && t17 < cfg.NumTopics && t18 >= 0 && t18 < cfg.NumTopics
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopicDriftIsSmall(t *testing.T) {
	cfg := TestConfig()
	changed := 0
	for w := 0; w < cfg.VocabSize; w++ {
		if PrimaryTopic(cfg, w, Wiki17) != PrimaryTopic(cfg, w, Wiki18) {
			changed++
		}
	}
	frac := float64(changed) / float64(cfg.VocabSize)
	if frac > 3*cfg.Drift.WordShiftFrac+0.02 {
		t.Fatalf("too many words shifted topic: %.3f", frac)
	}
}

func TestSentenceLengthBounds(t *testing.T) {
	cfg := TestConfig()
	c := Generate(cfg, Wiki17)
	for _, s := range c.Sentences {
		if len(s) < cfg.SentLenMin || len(s) > cfg.SentLenMax {
			t.Fatalf("sentence length %d out of [%d,%d]", len(s), cfg.SentLenMin, cfg.SentLenMax)
		}
		for _, w := range s {
			if w < 0 || int(w) >= cfg.VocabSize {
				t.Fatalf("word id %d out of range", w)
			}
		}
	}
}
