package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
)

// FaultPathPackages lists the packages whose I/O boundaries must be
// covered by the fault-injection harness (internal/faults): the layers a
// request crosses between the HTTP listener and the bytes on disk. Tests
// may override the list to cover fixtures.
var FaultPathPackages = []string{
	"anchor/internal/store",
	"anchor/internal/query",
	"anchor/internal/serve",
}

// faultsPackage is the fault-injection harness package.
const faultsPackage = "anchor/internal/faults"

// faultIOFuncs are the os calls that constitute an I/O boundary for the
// faultsite rule. Janitorial calls (Remove, Rename, ReadDir — quarantine
// and temp-sweep paths) are deliberately absent: they run off the
// request path and injecting faults there tests nothing the chaos
// contract promises.
var faultIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true,
	"ReadFile": true, "WriteFile": true, "CreateTemp": true,
}

// FaultSite keeps `make chaos` honest as subsystems grow: every I/O
// boundary on the request path must be guarded by a registered fault
// site (a faults helper call earlier in the same function), and every
// registered site must actually be exercised by some chaos plan in the
// tests — otherwise coverage rots silently.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc: "flags os file I/O in store/query/serve functions with no " +
		"preceding faults helper call (the boundary is invisible to " +
		"`make chaos`), and faults.Register sites whose name appears in " +
		"no test file (the site is never scheduled by a chaos plan)",
	RunModule: runFaultSite,
}

func runFaultSite(mp *ModulePass) error {
	checkIOBoundaries(mp)
	checkRegisteredSites(mp)
	return nil
}

// checkIOBoundaries verifies that each os I/O call in a fault-path
// package is preceded, within its function, by a faults helper call.
func checkIOBoundaries(mp *ModulePass) {
	for _, pkg := range mp.Pkgs {
		if !pkgInList(pkg.PkgPath, FaultPathPackages) {
			continue
		}
		for _, fd := range funcDecls(pkg) {
			var guardPos []token.Pos
			type ioCall struct {
				pos  token.Pos
				name string
			}
			var ioCalls []ioCall
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkgPath, name, ok := pkgFunc(pkg.TypesInfo, call)
				if !ok {
					return true
				}
				switch {
				case pkgPath == faultsPackage:
					guardPos = append(guardPos, call.Pos())
				case pkgPath == "os" && faultIOFuncs[name]:
					ioCalls = append(ioCalls, ioCall{call.Pos(), name})
				}
				return true
			})
			for _, io := range ioCalls {
				guarded := false
				for _, g := range guardPos {
					if g < io.pos {
						guarded = true
						break
					}
				}
				if !guarded {
					mp.Reportf(pkg, io.pos,
						"os.%s in %s is an I/O boundary with no fault-injection site: call a faults helper (faults.Error(site)) before it so `make chaos` can exercise the failure",
						io.name, fd.Name.Name)
				}
			}
		}
	}
}

// checkRegisteredSites reports faults.Register calls whose site name
// appears as a string literal in no test file anywhere in the module —
// the chaos plan cannot be scheduling a site it never names.
func checkRegisteredSites(mp *ModulePass) {
	exercised := make(map[string]bool)
	for _, pkg := range mp.Pkgs {
		for _, file := range pkg.TestFiles {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						exercised[s] = true
					}
				}
				return true
			})
		}
	}
	type site struct {
		name string
		pkg  *Package
		pos  token.Pos
	}
	var sites []site
	for _, pkg := range mp.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				pkgPath, name, ok := pkgFunc(pkg.TypesInfo, call)
				if !ok || pkgPath != faultsPackage || name != "Register" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if s, err := strconv.Unquote(lit.Value); err == nil {
					sites = append(sites, site{s, pkg, call.Pos()})
				}
				return true
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	for _, s := range sites {
		if !exercised[s.name] {
			mp.Reportf(s.pkg, s.pos,
				"fault site %q is registered but exercised by no chaos plan: add a schedule rule for it to the chaos tests or remove the site",
				s.name)
		}
	}
}
