// Command anchor is the CLI for the anchor library: train embedding
// snapshot pairs, compress them, compute embedding distance measures,
// measure end-to-end downstream instability, query trained snapshots, and
// serve it all over HTTP. Every subcommand except measure (which works on
// saved .gob files) runs on the context-aware Service API, so trained
// embeddings are cached in the artifact store (pass -cache-dir to make
// the cache survive across invocations and share it with `anchor serve`).
//
// Usage:
//
//	anchor train     -algo cbow -dim 64 -seed 1 -year 2017 -out emb17.gob
//	anchor measure   -a emb17.gob -b emb18.gob -bits 4 -top 300
//	anchor stability -algo mc -dim 32 -bits 4 -seed 1 -task sst2
//	anchor select    -algo mc -dims 8,16,32 -bits 1,4,32 -budget 128
//	anchor query     -algo mc -dim 32 -bits 8 -words fezadis,dovoles -k 5 -delta
//	anchor experiment -id fig1 -config small
//	anchor serve     -addr :8080 -config bench -cache-dir .anchor-cache -serving-budget 256
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"anchor"
	"anchor/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(ctx, os.Args[2:])
	case "measure":
		err = cmdMeasure(ctx, os.Args[2:])
	case "stability":
		err = cmdStability(ctx, os.Args[2:])
	case "select":
		err = cmdSelect(ctx, os.Args[2:])
	case "query":
		err = cmdQuery(ctx, os.Args[2:])
	case "experiment":
		err = cmdExperiment(ctx, os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "anchor: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `anchor <command> [flags]

commands:
  train       train one embedding snapshot and save it
  measure     compute all embedding distance measures between two embeddings
  stability   end-to-end downstream instability for one configuration
  select      rank a dim x precision grid by a measure under a memory budget
  query       query a trained snapshot: vectors, nearest neighbors, neighbor delta
  experiment  reproduce a paper table/figure by id (see cmd/experiments for the full runner)
  serve       serve the API over HTTP (see docs/HTTP_API.md for the /v1 endpoints)`)
}

// serviceFlags are the flags shared by every Service-backed subcommand.
type serviceFlags struct {
	config   *string
	workers  *int
	cacheDir *string
	verbose  *bool
}

func addServiceFlags(fs *flag.FlagSet, defaultConfig string) serviceFlags {
	return serviceFlags{
		config:   fs.String("config", defaultConfig, "config scale: small, bench, repro"),
		workers:  fs.Int("workers", 0, "goroutine budget (0 = all CPUs; results are identical for any value)"),
		cacheDir: fs.String("cache-dir", "", "persist trained embeddings to this directory (reused across runs)"),
		verbose:  fs.Bool("v", false, "log progress stages"),
	}
}

func (f serviceFlags) newService(extra ...anchor.ServiceOption) (*anchor.Service, error) {
	cfg, err := configByName(*f.config)
	if err != nil {
		return nil, err
	}
	opts := []anchor.ServiceOption{
		anchor.WithConfig(cfg),
		anchor.WithWorkers(*f.workers),
		anchor.WithCacheDir(*f.cacheDir),
	}
	if *f.verbose {
		opts = append(opts, anchor.WithProgress(func(stage string) {
			fmt.Fprintln(os.Stderr, "anchor:", stage)
		}))
	}
	return anchor.NewService(append(opts, extra...)...)
}

func configByName(name string) (anchor.ExperimentConfig, error) {
	switch name {
	case "small":
		return anchor.SmallExperimentConfig(), nil
	case "bench":
		return anchor.BenchExperimentConfig(), nil
	case "repro":
		return anchor.ReproExperimentConfig(), nil
	}
	return anchor.ExperimentConfig{}, fmt.Errorf("unknown config %q (small, bench, repro)", name)
}

func cmdTrain(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	algo := fs.String("algo", "cbow", "embedding algorithm: "+strings.Join(anchor.Algorithms(), ", "))
	dim := fs.Int("dim", 64, "embedding dimension")
	seed := fs.Int64("seed", 1, "training seed")
	year := fs.Int("year", 2017, "corpus snapshot year (2017 or 2018)")
	out := fs.String("out", "emb.gob", "output path")
	sf := addServiceFlags(fs, "repro")
	fs.Parse(args)

	svc, err := sf.newService()
	if err != nil {
		return err
	}
	fmt.Printf("training %s dim=%d seed=%d (wiki'%d)...\n", *algo, *dim, *seed, *year%100)
	e, err := svc.Train(ctx, *algo, *year, *dim, *seed)
	if err != nil {
		return err
	}
	if err := e.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("saved %s (%d x %d) to %s\n", e.Meta, e.Rows(), e.Dim(), *out)
	return nil
}

func cmdMeasure(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	aPath := fs.String("a", "", "first embedding (gob)")
	bPath := fs.String("b", "", "second embedding (gob)")
	bits := fs.Int("bits", 32, "quantize both to this precision first")
	top := fs.Int("top", 300, "compute measures over the top-N frequent words")
	workers := fs.Int("workers", 0, "measure goroutines (0 = all CPUs; result is identical for any value)")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("measure requires -a and -b")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	a, err := anchor.LoadEmbedding(*aPath)
	if err != nil {
		return err
	}
	b, err := anchor.LoadEmbedding(*bPath)
	if err != nil {
		return err
	}
	// Section 3 protocol: align, tag, quantize with a shared clip.
	qa, qb := anchor.AlignQuantize(a, b, *bits)

	// Anchors: the full-precision pair itself (callers with a dimension
	// sweep should pass their largest pair; the CLI uses what it has).
	c17 := anchor.GenerateCorpus(anchor.DefaultCorpusConfig(), anchor.Wiki17)
	ids := c17.TopWords(*top)
	sa, sb := qa.SubRows(ids), qb.SubRows(ids)
	ea, eb := a.SubRows(ids), b.SubRows(ids)
	for _, m := range anchor.AllMeasuresWorkers(ea, eb, *workers) {
		fmt.Printf("%-24s %.6f\n", m.Name(), m.Distance(sa, sb))
	}
	return nil
}

func cmdStability(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stability", flag.ExitOnError)
	algo := fs.String("algo", "mc", "embedding algorithm")
	dim := fs.Int("dim", 32, "embedding dimension")
	bits := fs.Int("bits", 32, "precision in bits")
	seed := fs.Int64("seed", 1, "seed for embeddings and downstream model")
	task := fs.String("task", "sst2", "downstream task: sst2, mr, subj, mpqa, conll2003")
	sf := addServiceFlags(fs, "repro")
	fs.Parse(args)

	svc, err := sf.newService()
	if err != nil {
		return err
	}
	fmt.Printf("training %s dim=%d on Wiki'17 and Wiki'18...\n", *algo, *dim)
	rep, err := svc.Stability(ctx, *algo, *task, *dim, *bits, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("task=%s algo=%s dim=%d bits=%d memory=%d bits/word\n",
		rep.Task, rep.Algo, rep.Dim, rep.Precision, rep.MemoryBits)
	fmt.Printf("downstream prediction disagreement: %.2f%%\n", rep.Disagreement)
	return nil
}

// parseIntList parses "8,16,32" into ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdSelect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	algo := fs.String("algo", "mc", "embedding algorithm")
	dims := fs.String("dims", "8,16,32", "candidate dimensions (comma-separated)")
	bitsList := fs.String("bits", "1,4,32", "candidate precisions (comma-separated)")
	seed := fs.Int64("seed", 1, "training seed")
	measure := fs.String("measure", "eigenspace-instability", "ranking measure")
	budget := fs.Int("budget", 0, "memory budget in bits/word (0 = unlimited)")
	sf := addServiceFlags(fs, "bench")
	fs.Parse(args)

	ds, err := parseIntList(*dims)
	if err != nil {
		return err
	}
	bs, err := parseIntList(*bitsList)
	if err != nil {
		return err
	}
	svc, err := sf.newService()
	if err != nil {
		return err
	}
	rep, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: *algo, Dims: ds, Precisions: bs, Seed: *seed,
		Measure: *measure, BudgetBits: *budget,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ranking by %s (ascending = predicted more stable):\n", rep.Measure)
	fmt.Println("  dim  bits  memory  value       in-budget")
	for _, c := range rep.Candidates {
		mark := " "
		if c.WithinBudget {
			mark = "*"
		}
		fmt.Printf("  %3d  %4d  %6d  %.6f  %s\n", c.Dim, c.Precision, c.MemoryBits, c.Value, mark)
	}
	if rep.Best != nil {
		fmt.Printf("selected: dim=%d bits=%d (%d bits/word)\n", rep.Best.Dim, rep.Best.Precision, rep.Best.MemoryBits)
	} else {
		fmt.Println("no candidate satisfies the budget")
	}
	return nil
}

func cmdQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	algo := fs.String("algo", "mc", "embedding algorithm")
	dim := fs.Int("dim", 32, "embedding dimension")
	bits := fs.Int("bits", 0, "served precision in bits (1..32; 0 = service default, full precision)")
	seed := fs.Int64("seed", 1, "training seed")
	year := fs.Int("year", 2017, "corpus snapshot year (2017 or 2018; ignored by -delta)")
	wordsFlag := fs.String("words", "", "comma-separated query words (required)")
	k := fs.Int("k", 5, "neighborhood size")
	vectors := fs.Bool("vectors", false, "print raw vectors instead of neighbors")
	delta := fs.Bool("delta", false, "compare neighbors between Wiki'17 and Wiki'18 (the paper's instability probe)")
	annFlag := fs.Bool("ann", false, "answer through the snapshot's IVF index (approximate; sidecar-cached)")
	nprobe := fs.Int("nprobe", 0, "index cells scanned per -ann query (0 = index default; >= cell count is exact)")
	sf := addServiceFlags(fs, "bench")
	fs.Parse(args)

	var words []string
	for _, part := range strings.Split(*wordsFlag, ",") {
		if part = strings.TrimSpace(part); part != "" {
			words = append(words, part)
		}
	}
	if len(words) == 0 {
		return fmt.Errorf("query requires -words")
	}
	svc, err := sf.newService()
	if err != nil {
		return err
	}
	opts := []anchor.QueryOption{anchor.QueryYear(*year), anchor.QueryK(*k), anchor.QuerySeed(*seed)}
	if *bits != 0 {
		opts = append(opts, anchor.QueryPrecision(*bits))
	}
	if *annFlag {
		opts = append(opts, anchor.QueryANN(true), anchor.QueryNProbe(*nprobe))
	}
	switch {
	case *vectors:
		rep, err := svc.Query(ctx, *algo, *dim, words, opts...)
		if err != nil {
			return err
		}
		for _, v := range rep.Vectors {
			fmt.Printf("%-16s id=%-6d %v\n", v.Word, v.ID, v.Vector)
		}
	case *delta:
		rep, err := svc.NeighborDelta(ctx, *algo, *dim, words, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("neighbor overlap wiki17 vs wiki18, %s d=%d k=%d seed=%d:\n", rep.Algo, rep.Dim, rep.K, rep.Seed)
		for _, d := range rep.Results {
			fmt.Printf("  %-16s overlap=%.2f  '17: %s\n  %-16s               '18: %s\n",
				d.Word, d.Overlap, neighborWords(d.A), "", neighborWords(d.B))
		}
		fmt.Printf("mean overlap: %.3f (1 = stable neighborhoods, 0 = fully replaced)\n", rep.MeanOverlap)
	default:
		rep, err := svc.Neighbors(ctx, *algo, *dim, words, opts...)
		if err != nil {
			return err
		}
		for _, r := range rep.Results {
			fmt.Printf("%-16s ", r.Word)
			for i, n := range r.Neighbors {
				if i > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%s(%.3f)", n.Word, n.Score)
			}
			fmt.Println()
		}
	}
	return nil
}

// neighborWords renders a neighbor list as a compact word string.
func neighborWords(ns []anchor.Neighbor) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.Word
	}
	return strings.Join(parts, " ")
}

func cmdExperiment(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "fig1", "artifact id: "+strings.Join(anchor.ExperimentIDs(), ", "))
	sf := addServiceFlags(fs, "small")
	fs.Parse(args)

	svc, err := sf.newService()
	if err != nil {
		return err
	}
	return svc.Experiment(ctx, *id, os.Stdout)
}

func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	budget := fs.Int("serving-budget", 0,
		"serving memory budget in bits/word: dim-0 queries auto-select (dim, bits) by eigenspace instability under dim*bits <= budget (0 = disabled)")
	maxInFlight := fs.Int("max-in-flight", 64,
		"admission-control limit on concurrently served requests; excess requests are shed with 429 + Retry-After (0 = unbounded)")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second,
		"per-endpoint deadline for read requests (vectors/neighbors/delta); exceeded requests get a structured 503 (0 = none)")
	computeTimeout := fs.Duration("compute-timeout", 10*time.Minute,
		"per-endpoint deadline for compute requests (train/measures/stability/select); exceeded requests get a structured 503 (0 = none)")
	sf := addServiceFlags(fs, "bench")
	fs.Parse(args)

	logger := log.New(os.Stderr, "anchor-serve ", log.LstdFlags)
	svc, err := sf.newService(anchor.WithServingBudget(*budget), anchor.WithProgress(func(stage string) {
		if *sf.verbose {
			logger.Println(stage)
		}
	}))
	if err != nil {
		return err
	}

	api := serve.New(svc, logger,
		serve.WithMaxInFlight(*maxInFlight),
		serve.WithReadTimeout(*requestTimeout),
		serve.WithComputeTimeout(*computeTimeout),
	)
	srv := &http.Server{
		Addr:    *addr,
		Handler: api.Handler(),
		// Requests inherit the serve context: SIGINT/SIGTERM cancels
		// in-flight computations at their next stage boundary.
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Transport-level protection against slow or stuck clients: a
		// client that trickles its headers or body cannot pin a
		// connection forever, and idle keep-alives are reaped. These
		// bound the connection; the per-endpoint handler deadlines above
		// bound the work.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       1 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (config=%s, cache-dir=%q)", *addr, *sf.config, *sf.cacheDir)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Println("shutting down...")
		// Fail readiness first so load balancers stop routing new
		// traffic, then drain in-flight requests.
		api.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
