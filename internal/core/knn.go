package core

import (
	"math/rand"
	"sort"
	"sync"

	"anchor/internal/ann"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/parallel"
)

// Batched k-NN engine. The seed implementation scored each query against
// every candidate with a fresh cosine (two norms + one dot per pair) and
// sorted all n candidates per query. This engine normalizes each
// embedding's rows once, computes query-block similarities with the
// blocked parallel MulABT kernel, and selects the top k with a bounded
// heap — O(q·n·d + q·n·log k) total, with all O(n)-sized scratch pooled
// per worker (only the k-element result slice is allocated per query).
// Results are deterministic and identical for every worker count:
// per-query work is independent and the final overlap reduction runs in
// query order.

// knnBlockSize is the number of query rows scored per MulABT call; it
// bounds the similarity buffer at knnBlockSize×n floats per worker.
const knnBlockSize = 128

// sampleIndices draws q distinct indices uniformly from [0, n) with a
// sparse partial Fisher–Yates shuffle: q draws and O(q) memory, versus the
// full n-element permutation rng.Perm allocates. The draw sequence is a
// pure function of (rng state, n, q).
func sampleIndices(rng *rand.Rand, n, q int) []int {
	alias := make(map[int]int, q)
	out := make([]int, q)
	for i := 0; i < q; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := alias[j]
		if !ok {
			vj = j
		}
		vi, ok := alias[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		alias[j] = vi
	}
	return out
}

// NormalizedRows returns a copy of e's vectors with every row scaled to
// unit L2 norm (zero rows stay zero, matching CosineSim's convention),
// normalizing each row exactly once. This is the query-ready form shared
// by the k-NN measure and the serving-path query engine: cosine
// similarities against it are plain dot products, computable in blocks
// with the MulABT kernel.
func NormalizedRows(e *embedding.Embedding, workers int) *matrix.Dense {
	n, d := e.Rows(), e.Dim()
	out := matrix.NewDense(n, d)
	w := parallel.Workers(workers)
	if w > n {
		w = n
	}
	bands := parallel.Ranges(n, w)
	parallel.Run(w, len(bands), func(s int) {
		for i := bands[s].Lo; i < bands[s].Hi; i++ {
			row := out.Row(i)
			copy(row, e.Vector(i))
			floats.Normalize(row)
		}
	}, nil)
	return out
}

// topKHeap is a bounded min-heap over (similarity, index) pairs ordered by
// the seed implementation's ranking rule: higher similarity wins, ties
// break toward the lower index. The root is the weakest retained neighbor.
type topKHeap struct {
	sims  []float64
	idxs  []int32
	order []int // scratch for the final rank sort, reused across queries
}

// worse reports whether entry a ranks strictly below entry b.
func (h *topKHeap) worse(a, b int) bool {
	if h.sims[a] != h.sims[b] {
		return h.sims[a] < h.sims[b]
	}
	return h.idxs[a] > h.idxs[b]
}

func (h *topKHeap) siftDown(i int) {
	n := len(h.sims)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.worse(l, min) {
			min = l
		}
		if r < n && h.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h.sims[i], h.sims[min] = h.sims[min], h.sims[i]
		h.idxs[i], h.idxs[min] = h.idxs[min], h.idxs[i]
		i = min
	}
}

// topK writes the indices of the k best-ranked candidates in sims
// (excluding index self) into out, ordered by similarity descending with
// index-ascending tie-breaks — the seed full sort's ranking rule. (The
// similarities themselves are dots of pre-normalized rows, which can
// differ from the seed's Dot/(‖x‖·‖y‖) in the last ulp, so candidates
// that tie mathematically may rank differently at the k boundary than
// the seed implementation; the selection is still deterministic.)
// h's storage is reused across calls.
func (h *topKHeap) topK(sims []float64, self int, k int, out []int32) []int32 {
	n := len(sims)
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return out[:0]
	}
	h.sims = h.sims[:0]
	h.idxs = h.idxs[:0]
	for i := 0; i < n; i++ {
		if i == self {
			continue
		}
		if len(h.sims) < k {
			h.sims = append(h.sims, sims[i])
			h.idxs = append(h.idxs, int32(i))
			if len(h.sims) == k {
				for j := k/2 - 1; j >= 0; j-- {
					h.siftDown(j)
				}
			}
			continue
		}
		// Replace the root when candidate i outranks it.
		if sims[i] > h.sims[0] || (sims[i] == h.sims[0] && int32(i) < h.idxs[0]) {
			h.sims[0] = sims[i]
			h.idxs[0] = int32(i)
			h.siftDown(0)
		}
	}
	out = out[:len(h.idxs)]
	h.order = h.order[:0]
	for i := range h.idxs {
		h.order = append(h.order, i)
	}
	sort.Slice(h.order, func(a, b int) bool { return h.worse(h.order[b], h.order[a]) })
	for i, o := range h.order {
		out[i] = h.idxs[o]
	}
	return out
}

// TopKSelector selects the best-ranked k candidates from a row of
// similarities with the bounded-heap kernel, reusing its internal scratch
// across calls. The zero value is ready to use; a selector is not safe
// for concurrent use (hold one per goroutine).
type TopKSelector struct {
	h topKHeap
}

// Select writes the indices of the k best-ranked candidates in sims
// (excluding index self) into out, ordered by similarity descending with
// index-ascending tie-breaks, and returns the filled prefix of out.
func (s *TopKSelector) Select(sims []float64, self, k int, out []int32) []int32 {
	return s.h.topK(sims, self, k, out)
}

// Overlap returns the shared-element count between two neighbor lists —
// the paper's k-NN instability numerator. k is small, so the quadratic
// scan beats building a set.
func Overlap(a, b []int32) int { return knnOverlap(a, b) }

// neighborSets returns, for each query, the indices of the k rows of e
// most cosine-similar to it (excluding the query itself), each list
// ordered by similarity descending with index-ascending tie-breaks.
func neighborSets(e *embedding.Embedding, queries []int, k, workers int) [][]int32 {
	n := e.Rows()
	norm := NormalizedRows(e, workers)
	out := make([][]int32, len(queries))

	type scratch struct {
		qb   *matrix.Dense // gathered query rows
		sb   *matrix.Dense // similarity block
		heap topKHeap
	}
	pool := sync.Pool{New: func() any {
		return &scratch{
			qb:   matrix.NewDense(knnBlockSize, e.Dim()),
			sb:   matrix.NewDense(knnBlockSize, n),
			heap: topKHeap{sims: make([]float64, 0, k), idxs: make([]int32, 0, k)},
		}
	}}

	nBlocks := (len(queries) + knnBlockSize - 1) / knnBlockSize
	w := parallel.Workers(workers)
	parallel.Run(w, nBlocks, func(s int) {
		lo := s * knnBlockSize
		hi := lo + knnBlockSize
		if hi > len(queries) {
			hi = len(queries)
		}
		sc := pool.Get().(*scratch)
		defer pool.Put(sc)
		qb := matrix.NewDenseData(hi-lo, e.Dim(), sc.qb.Data[:(hi-lo)*e.Dim()])
		sb := matrix.NewDenseData(hi-lo, n, sc.sb.Data[:(hi-lo)*n])
		for r, qi := range queries[lo:hi] {
			copy(qb.Row(r), norm.Row(qi))
		}
		// The outer loop already spans the workers, so the kernel runs
		// serially within the block; per-query results are independent of
		// the blocking either way.
		matrix.MulABTInto(sb, qb, norm, 1)
		for r, qi := range queries[lo:hi] {
			out[lo+r] = sc.heap.topK(sb.Row(r), qi, k, make([]int32, k))
		}
	}, nil)
	return out
}

// neighborSetsANN is neighborSets routed through the deterministic IVF
// index (internal/ann): one seeded index build over the normalized rows,
// then each query probes its nprobe most similar cells instead of
// scanning all n rows. Every candidate the probe does reach is scored
// with the same single-accumulator dot the exact engine computes and
// ranked under the same total order, so at nprobe >= the index's cell
// count the neighbor sets equal neighborSets exactly; at smaller nprobe
// they are a high-recall approximation. The build and the per-query
// searches are both bitwise worker-count-invariant.
func neighborSetsANN(e *embedding.Embedding, queries []int, k, workers, nprobe int, seed int64) [][]int32 {
	norm := NormalizedRows(e, workers)
	ix := ann.Build(norm, ann.Config{Seed: seed, Workers: workers})
	out := make([][]int32, len(queries))
	nBlocks := (len(queries) + knnBlockSize - 1) / knnBlockSize
	w := parallel.Workers(workers)
	parallel.Run(w, nBlocks, func(s int) {
		lo := s * knnBlockSize
		hi := lo + knnBlockSize
		if hi > len(queries) {
			hi = len(queries)
		}
		srch := ann.NewSearcher(ix)
		for r, qi := range queries[lo:hi] {
			q := norm.Row(qi)
			sim := func(id int32) float64 { return floats.Dot(q, norm.Row(int(id))) }
			out[lo+r] = srch.Search(q, k, nprobe, qi, sim, make([]int32, k))
		}
	}, nil)
	return out
}

// knnOverlap is the shared-neighbor count between two neighbor lists.
// k is small, so the quadratic scan beats building a set.
func knnOverlap(a, b []int32) int {
	shared := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				shared++
				break
			}
		}
	}
	return shared
}
