// Command anchor is the CLI for the anchor library: train embedding
// snapshot pairs, compress them, compute embedding distance measures, and
// measure end-to-end downstream instability.
//
// Usage:
//
//	anchor train    -algo cbow -dim 64 -seed 1 -year 2017 -out emb17.gob
//	anchor measure  -a emb17.gob -b emb18.gob -bits 4 -top 300
//	anchor stability -algo mc -dim 32 -bits 4 -seed 1 -task sst2
//	anchor experiment -id fig1 -config small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"anchor"
	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/tasks/ner"
	"anchor/internal/tasks/sentiment"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "measure":
		err = cmdMeasure(os.Args[2:])
	case "stability":
		err = cmdStability(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "anchor: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `anchor <command> [flags]

commands:
  train       train one embedding snapshot and save it
  measure     compute all embedding distance measures between two embeddings
  stability   end-to-end downstream instability for one configuration
  experiment  reproduce a paper table/figure by id (see cmd/experiments for the full runner)`)
}

func corpusFor(year int) (*corpus.Corpus, corpus.Config, error) {
	cfg := anchor.DefaultCorpusConfig()
	switch year {
	case 2017:
		return anchor.GenerateCorpus(cfg, anchor.Wiki17), cfg, nil
	case 2018:
		return anchor.GenerateCorpus(cfg, anchor.Wiki18), cfg, nil
	}
	return nil, cfg, fmt.Errorf("year must be 2017 or 2018")
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	algo := fs.String("algo", "cbow", "embedding algorithm: "+strings.Join(anchor.Algorithms(), ", "))
	dim := fs.Int("dim", 64, "embedding dimension")
	seed := fs.Int64("seed", 1, "training seed")
	year := fs.Int("year", 2017, "corpus snapshot year (2017 or 2018)")
	out := fs.String("out", "emb.gob", "output path")
	workers := fs.Int("workers", 0, "training goroutines (0 = all CPUs; result is identical for any value)")
	fs.Parse(args)

	c, _, err := corpusFor(*year)
	if err != nil {
		return err
	}
	fmt.Printf("training %s dim=%d seed=%d on %d tokens...\n", *algo, *dim, *seed, c.Tokens)
	e, err := anchor.TrainEmbeddingWorkers(*algo, c, *dim, *seed, *workers)
	if err != nil {
		return err
	}
	if err := e.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("saved %s (%d x %d) to %s\n", e.Meta, e.Rows(), e.Dim(), *out)
	return nil
}

func cmdMeasure(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	aPath := fs.String("a", "", "first embedding (gob)")
	bPath := fs.String("b", "", "second embedding (gob)")
	bits := fs.Int("bits", 32, "quantize both to this precision first")
	top := fs.Int("top", 300, "compute measures over the top-N frequent words")
	workers := fs.Int("workers", 0, "measure goroutines (0 = all CPUs; result is identical for any value)")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("measure requires -a and -b")
	}
	a, err := anchor.LoadEmbedding(*aPath)
	if err != nil {
		return err
	}
	b, err := anchor.LoadEmbedding(*bPath)
	if err != nil {
		return err
	}
	b.AlignTo(a)
	b.Meta.Corpus += "a"
	qa, qb := anchor.QuantizePair(a, b, *bits)

	// Anchors: the full-precision pair itself (callers with a dimension
	// sweep should pass their largest pair; the CLI uses what it has).
	c17, ccfg, _ := corpusFor(2017)
	_ = ccfg
	ids := c17.TopWords(*top)
	sa, sb := qa.SubRows(ids), qb.SubRows(ids)
	ea, eb := a.SubRows(ids), b.SubRows(ids)
	for _, m := range anchor.AllMeasuresWorkers(ea, eb, *workers) {
		fmt.Printf("%-24s %.6f\n", m.Name(), m.Distance(sa, sb))
	}
	return nil
}

func cmdStability(args []string) error {
	fs := flag.NewFlagSet("stability", flag.ExitOnError)
	algo := fs.String("algo", "mc", "embedding algorithm")
	dim := fs.Int("dim", 32, "embedding dimension")
	bits := fs.Int("bits", 32, "precision in bits")
	seed := fs.Int64("seed", 1, "seed for embeddings and downstream model")
	task := fs.String("task", "sst2", "downstream task: sst2, mr, subj, mpqa, conll2003")
	workers := fs.Int("workers", 0, "training and measure goroutines (0 = all CPUs; result is identical for any value)")
	fs.Parse(args)

	cfg := anchor.DefaultCorpusConfig()
	c17 := anchor.GenerateCorpus(cfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(cfg, anchor.Wiki18)
	fmt.Printf("training %s dim=%d on Wiki'17 and Wiki'18...\n", *algo, *dim)
	e17, err := anchor.TrainEmbeddingWorkers(*algo, c17, *dim, *seed, *workers)
	if err != nil {
		return err
	}
	e18, err := anchor.TrainEmbeddingWorkers(*algo, c18, *dim, *seed, *workers)
	if err != nil {
		return err
	}
	e18.AlignTo(e17)
	e18.Meta.Corpus = "wiki18a"
	q17, q18 := anchor.QuantizePair(e17, e18, *bits)

	var di float64
	switch *task {
	case "conll2003":
		ds := ner.Generate(c17, cfg, ner.CoNLLParams())
		ncfg := ner.DefaultConfig(*seed)
		m17 := ner.Train(q17, ds, ncfg)
		m18 := ner.Train(q18, ds, ncfg)
		di = core.PredictionDisagreementPct(m17.EntityPredictions(ds.Test), m18.EntityPredictions(ds.Test))
	default:
		var p sentiment.Params
		switch *task {
		case "sst2":
			p = sentiment.SST2Params()
		case "mr":
			p = sentiment.MRParams()
		case "subj":
			p = sentiment.SubjParams()
		case "mpqa":
			p = sentiment.MPQAParams()
		default:
			return fmt.Errorf("unknown task %q", *task)
		}
		ds := sentiment.Generate(c17, cfg, p)
		scfg := sentiment.DefaultLinearBOWConfig(*seed)
		m17 := sentiment.TrainLinearBOW(q17, ds, scfg)
		m18 := sentiment.TrainLinearBOW(q18, ds, scfg)
		di = core.PredictionDisagreementPct(m17.Predict(ds.Test), m18.Predict(ds.Test))
	}
	fmt.Printf("task=%s algo=%s dim=%d bits=%d memory=%d bits/word\n", *task, *algo, *dim, *bits, *dim**bits)
	fmt.Printf("downstream prediction disagreement: %.2f%%\n", di)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "fig1", "artifact id: "+strings.Join(anchor.ExperimentIDs(), ", "))
	config := fs.String("config", "small", "config scale: small, bench, repro")
	workers := fs.Int("workers", 0, "training and measure goroutines (0 = all CPUs; result is identical for any value)")
	fs.Parse(args)
	var cfg anchor.ExperimentConfig
	switch *config {
	case "small":
		cfg = anchor.SmallExperimentConfig()
	case "bench":
		cfg = anchor.BenchExperimentConfig()
	case "repro":
		cfg = anchor.ReproExperimentConfig()
	default:
		return fmt.Errorf("unknown config %q", *config)
	}
	cfg.Workers = *workers
	return anchor.RunExperiment(cfg, *id, os.Stdout)
}
