package anchor_test

import (
	"bytes"
	"strings"
	"testing"

	"anchor"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := anchor.DefaultCorpusConfig()
	cfg.VocabSize = 300
	cfg.NumDocs = 120
	c17 := anchor.GenerateCorpus(cfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(cfg, anchor.Wiki18)

	e17, err := anchor.TrainEmbedding("mc", c17, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e18, err := anchor.TrainEmbedding("mc", c18, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e18.AlignTo(e17)
	e18.Meta.Corpus = "wiki18a"
	q17, q18 := anchor.QuantizePair(e17, e18, 4)
	if q17.Meta.Precision != 4 || q18.Meta.Precision != 4 {
		t.Fatal("quantized precision not recorded")
	}

	eis := anchor.NewEigenspaceInstability(e17, e18)
	if d := eis.Distance(q17, q18); d <= 0 || d > 1 {
		t.Fatalf("EIS distance out of range: %v", d)
	}
	if got := len(anchor.AllMeasures(e17, e18)); got != 5 {
		t.Fatalf("expected 5 measures, got %d", got)
	}
}

func TestFacadeUnknownAlgorithm(t *testing.T) {
	cfg := anchor.DefaultCorpusConfig()
	cfg.VocabSize = 300
	cfg.NumDocs = 50
	c := anchor.GenerateCorpus(cfg, anchor.Wiki17)
	if _, err := anchor.TrainEmbedding("elmo", c, 8, 1); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestFacadeDisagreement(t *testing.T) {
	if anchor.PredictionDisagreement([]int{1, 2, 3}, []int{1, 0, 3}) != 1.0/3 {
		t.Fatal("disagreement wrong")
	}
	if anchor.PredictionDisagreementPct([]string{"a"}, []string{"b"}) != 100 {
		t.Fatal("pct wrong")
	}
}

func TestFacadeSelectionHelpers(t *testing.T) {
	cands := []anchor.Candidate{
		{Dim: 8, Precision: 32, Measures: map[string]float64{"m": 2}, TrueDI: 4},
		{Dim: 32, Precision: 8, Measures: map[string]float64{"m": 1}, TrueDI: 2},
		{Dim: 64, Precision: 4, Measures: map[string]float64{"m": 3}, TrueDI: 6},
	}
	if e := anchor.PairwiseSelectionError(cands, "m"); e != 0 {
		t.Fatalf("selection error = %v", e)
	}
	mean, worst := anchor.SelectUnderBudget(cands, "m")
	if mean != 0 || worst != 0 {
		t.Fatalf("budget selection = %v/%v (measure picks the oracle here)", mean, worst)
	}
}

func TestFacadeTrendFit(t *testing.T) {
	pts := []anchor.LinearLogPoint{
		{Task: "t", X: 64, Y: 10}, {Task: "t", X: 128, Y: 8.7},
		{Task: "t", X: 256, Y: 7.4}, {Task: "t", X: 512, Y: 6.1},
	}
	fit := anchor.FitStabilityMemoryTrend(pts)
	if fit.Slope < 1.2 || fit.Slope > 1.4 {
		t.Fatalf("slope = %v, want ~1.3", fit.Slope)
	}
}

func TestFacadeExperimentIDsAndRun(t *testing.T) {
	ids := anchor.ExperimentIDs()
	if len(ids) != 25 {
		t.Fatalf("expected 25 experiment ids, got %d", len(ids))
	}
	var buf bytes.Buffer
	if err := anchor.RunExperiment(anchor.SmallExperimentConfig(), "prop1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Proposition 1") {
		t.Fatalf("unexpected output: %s", buf.String())
	}
}

func TestFacadeRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := anchor.RunExperiment(anchor.SmallExperimentConfig(), "fig99", &buf); err == nil {
		t.Fatal("expected error")
	}
}
