// Selection demonstrates the practical payoff of the eigenspace
// instability measure (Section 5.2) as a service query: choosing
// dimension-precision parameters under a memory budget WITHOUT training
// downstream models (Service.Select), then checking the choice against
// the downstream-trained oracle (Service.Stability per candidate).
//
//	go run ./examples/selection
package main

import (
	"context"
	"fmt"
	"log"

	"anchor"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600
	ccfg.NumDocs = 300

	const seed = 1
	dims := []int{8, 16, 32, 64}
	precisions := []int{1, 2, 4, 8, 32}

	cfg := anchor.SmallExperimentConfig()
	cfg.Corpus = ccfg
	cfg.Dims = dims // the largest rung anchors the measure
	cfg.TopWords = 200
	cfg.KNNQueries = 200

	svc, err := anchor.NewService(anchor.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The cheap half: rank the whole grid by the measure. No downstream
	// model is trained here — this is what a selection service serves.
	fmt.Println("ranking the dim x precision grid by eigenspace instability (no downstream training)...")
	sel, err := svc.Select(ctx, anchor.SelectRequest{
		Algo: "mc", Dims: dims, Precisions: precisions, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The expensive half, run only to audit the cheap half: true
	// downstream instability for every candidate.
	fmt.Println("auditing against the downstream-trained oracle (trains 2 models per cell)...")
	var cands []anchor.Candidate
	for _, c := range sel.Candidates {
		st, err := svc.Stability(ctx, "mc", "sst2", c.Dim, c.Precision, seed)
		if err != nil {
			log.Fatal(err)
		}
		cands = append(cands, anchor.Candidate{
			Dim: c.Dim, Precision: c.Precision,
			Measures: map[string]float64{sel.Measure: c.Value},
			TrueDI:   st.Disagreement,
		})
	}

	pairErr := anchor.PairwiseSelectionError(cands, sel.Measure)
	mean, worst := anchor.SelectUnderBudget(cands, sel.Measure)
	fmt.Printf("\npairwise selection error:      %.3f (0 = always picks the more stable config)\n", pairErr)
	fmt.Printf("budget selection vs oracle:    mean %.2f%%, worst %.2f%% extra instability\n", mean, worst)
	fmt.Println("\nmemory-budget groups (same dim x bits product, different tradeoffs):")
	fmt.Println("  the measure ranks them without ever training a downstream model")
}
