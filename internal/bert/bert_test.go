package bert

import (
	"testing"

	"anchor/internal/corpus"
)

func pretrainTiny(t *testing.T, seed int64) (*Model, *corpus.Corpus) {
	t.Helper()
	ccfg := corpus.TestConfig()
	c := corpus.Generate(ccfg, corpus.Wiki17)
	cfg := DefaultConfig(16, seed)
	cfg.Epochs = 1
	cfg.SubsampleFrac = 0.15
	return Pretrain(c, cfg), c
}

func TestPretrainReducesMLMLoss(t *testing.T) {
	ccfg := corpus.TestConfig()
	c := corpus.Generate(ccfg, corpus.Wiki17)
	cfg := DefaultConfig(16, 1)
	cfg.Epochs = 0 // untrained baseline
	cfg.SubsampleFrac = 0.15
	untrained := Pretrain(c, cfg)
	base := untrained.MLMLoss(c, 40, 9)

	cfg.Epochs = 2
	trained := Pretrain(c, cfg)
	after := trained.MLMLoss(c, 40, 9)
	if after >= base {
		t.Fatalf("MLM loss did not improve: %.3f -> %.3f", base, after)
	}
	t.Logf("MLM loss: %.3f -> %.3f", base, after)
}

func TestEncodeShapeAndTruncation(t *testing.T) {
	m, c := pretrainTiny(t, 2)
	sent := c.Sentences[0]
	h := m.Encode(sent)
	wantRows := len(sent)
	if wantRows > m.Cfg.SeqLen {
		wantRows = m.Cfg.SeqLen
	}
	if h.Rows != wantRows || h.Cols != 16 {
		t.Fatalf("Encode shape %dx%d", h.Rows, h.Cols)
	}
	long := make([]int32, 50)
	if got := m.Encode(long); got.Rows != m.Cfg.SeqLen {
		t.Fatalf("truncation failed: %d rows", got.Rows)
	}
}

func TestEncodeContextSensitivity(t *testing.T) {
	// The representation of token 0 must depend on its context — that is
	// what makes the embedding contextual.
	m, _ := pretrainTiny(t, 3)
	a := m.Encode([]int32{5, 7, 9})
	b := m.Encode([]int32{5, 8, 2})
	same := true
	for j := 0; j < m.Cfg.Hidden; j++ {
		if a.At(0, j) != b.At(0, j) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("token representation insensitive to context")
	}
}

func TestSentenceFeatureDeterministic(t *testing.T) {
	m, c := pretrainTiny(t, 4)
	f1 := m.SentenceFeature(c.Sentences[1])
	f2 := m.SentenceFeature(c.Sentences[1])
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("feature extraction not deterministic")
		}
	}
	if len(f1) != 16 {
		t.Fatalf("feature length %d", len(f1))
	}
}

func TestPretrainDeterministicAcrossRuns(t *testing.T) {
	a, c := pretrainTiny(t, 5)
	b, _ := pretrainTiny(t, 5)
	fa := a.SentenceFeature(c.Sentences[0])
	fb := b.SentenceFeature(c.Sentences[0])
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("pre-training not deterministic")
		}
	}
}

func TestSeedChangesModel(t *testing.T) {
	a, c := pretrainTiny(t, 6)
	b, _ := pretrainTiny(t, 7)
	fa := a.SentenceFeature(c.Sentences[0])
	fb := b.SentenceFeature(c.Sentences[0])
	same := true
	for i := range fa {
		if fa[i] != fb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical models")
	}
}
