package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

// TestSeedRand runs the seedrand fixtures with the fixture package
// registered as deterministic: global math/rand draws and clock/env reads
// must be flagged, seeded RNGs must pass, and the documented ignore
// directive must suppress its wall-clock read.
func TestSeedRand(t *testing.T) {
	old := lint.DeterministicPackages
	lint.DeterministicPackages = append(old[:len(old):len(old)], "anchorlint.test/seedrand")
	defer func() { lint.DeterministicPackages = old }()
	linttest.Run(t, lint.SeedRand, "testdata/src/seedrand", "anchorlint.test/seedrand")
}

// TestSeedRandOutsideContract checks the package gate: the same calls in a
// package outside DeterministicPackages produce no findings.
func TestSeedRandOutsideContract(t *testing.T) {
	linttest.Run(t, lint.SeedRand, "testdata/src/seedrand_nondet", "anchorlint.test/seedrand_nondet")
}

// TestIsDeterministicPkg pins the path matching, including the /...
// subtree form used for tasks/*.
func TestIsDeterministicPkg(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"anchor/internal/cooc", true},
		{"anchor/internal/tasks", true},
		{"anchor/internal/tasks/ner", true},
		{"anchor/internal/tasks/sentiment", true},
		{"anchor/internal/serve", false},
		{"anchor/internal/coocx", false},
	}
	for _, c := range cases {
		if got := lint.IsDeterministicPkg(c.path); got != c.want {
			t.Errorf("IsDeterministicPkg(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
