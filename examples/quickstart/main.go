// Quickstart: the end-to-end pipeline of the paper in one file.
//
// It generates the two corpus snapshots (the Wiki'17/Wiki'18 analogue),
// trains a pair of CBOW embeddings, aligns and compresses them, computes
// all five embedding distance measures, and finally measures the actual
// downstream instability of a sentiment model trained on each embedding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anchor"
	"anchor/internal/tasks/sentiment"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600 // keep the demo snappy
	ccfg.NumDocs = 300

	fmt.Println("generating Wiki'17 and Wiki'18 snapshots...")
	c17 := anchor.GenerateCorpus(ccfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(ccfg, anchor.Wiki18)
	fmt.Printf("  %d and %d tokens over a shared vocabulary of %d words\n",
		c17.Tokens, c18.Tokens, c17.Vocab.Size())

	const dim, seed = 32, 1
	fmt.Printf("training CBOW embeddings (dim %d)...\n", dim)
	e17, err := anchor.TrainEmbedding("cbow", c17, dim, seed)
	if err != nil {
		log.Fatal(err)
	}
	e18, err := anchor.TrainEmbedding("cbow", c18, dim, seed)
	if err != nil {
		log.Fatal(err)
	}
	// Align the pair with orthogonal Procrustes before compressing, as the
	// paper does (Section 3).
	e18.AlignTo(e17)
	e18.Meta.Corpus = "wiki18a"

	top := c17.TopWords(200)
	anchors17, anchors18 := e17.SubRows(top), e18.SubRows(top)

	fmt.Println("\nprecision  measure values (top words) and downstream instability")
	ds := sentiment.Generate(c17, ccfg, sentiment.SST2Params())
	for _, bits := range []int{1, 4, 32} {
		q17, q18 := anchor.QuantizePair(e17, e18, bits)

		eis := anchor.NewEigenspaceInstability(anchors17, anchors18)
		eisVal := eis.Distance(q17.SubRows(top), q18.SubRows(top))

		cfg := sentiment.DefaultLinearBOWConfig(seed)
		m17 := sentiment.TrainLinearBOW(q17, ds, cfg)
		m18 := sentiment.TrainLinearBOW(q18, ds, cfg)
		di := anchor.PredictionDisagreementPct(m17.Predict(ds.Test), m18.Predict(ds.Test))

		fmt.Printf("  %2d bits   eigenspace-instability=%.4f   SST-2 disagreement=%.2f%%   accuracy=%.3f\n",
			bits, eisVal, di, m17.Accuracy(ds.Test))
	}
	fmt.Println("\nhigher precision -> lower measure value -> fewer flipped predictions")
}
