package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"anchor"
	"anchor/internal/faults"
)

// newFaultServer builds a test server with serving middleware options and
// returns it plus a valid /v1/neighbors body for a real vocabulary word.
func newFaultServer(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	svc, err := anchor.NewService(anchor.WithConfig(tinyConfig()))
	if err != nil {
		t.Fatal(err)
	}
	word := queryWords(t, svc, 1)[0]
	body := fmt.Sprintf(`{"algo":"mc","dim":8,"k":3,"words":[%q]}`, word)
	return New(svc, nil, opts...), body
}

// TestPanicRecoveryKeepsServing: an injected handler panic yields a
// structured 500 and the very next request serves normally, bitwise
// identical to the pre-panic answer.
func TestPanicRecoveryKeepsServing(t *testing.T) {
	srv, neighborsBody := newFaultServer(t)
	h := srv.Handler()
	oracle := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil)
	if oracle.Code != http.StatusOK {
		t.Fatalf("oracle: %d %s", oracle.Code, oracle.Body.String())
	}

	defer faults.Activate(faults.MustPlan(11,
		faults.Rule{Site: "serve/panic", Kind: faults.KindPanic, Count: 1}))()

	rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil)
	if rr.Code != http.StatusInternalServerError || errCode(t, rr) != "internal_panic" {
		t.Fatalf("panicked request: %d %s", rr.Code, rr.Body.String())
	}
	rr = do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("request after panic: %d %s", rr.Code, rr.Body.String())
	}
	if rr.Body.String() != oracle.Body.String() {
		t.Fatal("post-panic response differs from the fault-free oracle")
	}

	var health struct {
		Serving struct {
			Panics int64 `json:"panics"`
		} `json:"serving"`
	}
	if rr := do(t, h, http.MethodGet, "/v1/healthz", "", &health); rr.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", rr.Code)
	}
	if health.Serving.Panics != 1 {
		t.Fatalf("healthz panics = %d, want 1", health.Serving.Panics)
	}
}

// TestAdmissionControlShedsBitwise drives a concurrent storm against a
// 2-slot server whose first two requests are slowed by injected latency:
// every response must be either 200 with exactly the oracle's bytes or a
// structured 429 with Retry-After — never a torn response. Run under
// -race by make race / make chaos.
func TestAdmissionControlShedsBitwise(t *testing.T) {
	srv, neighborsBody := newFaultServer(t, WithMaxInFlight(2))
	h := srv.Handler()
	oracle := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil)
	if oracle.Code != http.StatusOK {
		t.Fatalf("oracle: %d %s", oracle.Code, oracle.Body.String())
	}

	defer faults.Activate(faults.MustPlan(23,
		faults.Rule{Site: "serve/latency", Kind: faults.KindLatency, Latency: 300 * time.Millisecond, Count: 2}))()

	const clients = 8
	codes := make([]int, clients)
	bodies := make([]string, clients)
	headers := make([]http.Header, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil)
			codes[i], bodies[i], headers[i] = rr.Code, rr.Body.String(), rr.Result().Header
		}(i)
	}
	wg.Wait()

	oks, sheds := 0, 0
	for i := 0; i < clients; i++ {
		switch codes[i] {
		case http.StatusOK:
			oks++
			if bodies[i] != oracle.Body.String() {
				t.Fatalf("client %d: 200 body differs from oracle", i)
			}
		case http.StatusTooManyRequests:
			sheds++
			if headers[i].Get("Retry-After") == "" {
				t.Fatalf("client %d: 429 without Retry-After", i)
			}
		default:
			t.Fatalf("client %d: status %d (%s), want 200 or 429", i, codes[i], bodies[i])
		}
	}
	if oks == 0 || sheds == 0 {
		t.Fatalf("storm saw %d 200s and %d 429s; wanted both behaviors", oks, sheds)
	}

	// Overload ends with the storm: the next request is served.
	if rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil); rr.Code != http.StatusOK {
		t.Fatalf("request after storm: %d %s", rr.Code, rr.Body.String())
	}
}

// TestEndpointDeadlineYields503: a read request held past its endpoint
// deadline by injected latency is answered with a retryable structured
// 503, not a hung connection or a 499.
func TestEndpointDeadlineYields503(t *testing.T) {
	srv, neighborsBody := newFaultServer(t, WithReadTimeout(250*time.Millisecond))
	h := srv.Handler()
	// Warm the snapshot fault-free so the deadline can only be blamed on
	// the injected latency.
	if rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil); rr.Code != http.StatusOK {
		t.Fatalf("warm: %d %s", rr.Code, rr.Body.String())
	}

	defer faults.Activate(faults.MustPlan(31,
		faults.Rule{Site: "serve/latency", Kind: faults.KindLatency, Latency: time.Hour, Count: 1}))()

	rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil)
	if rr.Code != http.StatusServiceUnavailable || errCode(t, rr) != "deadline_exceeded" {
		t.Fatalf("deadline: %d %s", rr.Code, rr.Body.String())
	}
	if rr.Result().Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// And the timeout did not poison the server.
	if rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil); rr.Code != http.StatusOK {
		t.Fatalf("request after deadline: %d %s", rr.Code, rr.Body.String())
	}
}

// TestReadinessLivenessSplit: draining flips readyz to 503 while livez
// and the API keep answering; un-draining restores readiness.
func TestReadinessLivenessSplit(t *testing.T) {
	srv, neighborsBody := newFaultServer(t)
	h := srv.Handler()
	if rr := do(t, h, http.MethodGet, "/v1/livez", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("livez: %d", rr.Code)
	}
	if rr := do(t, h, http.MethodGet, "/v1/readyz", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rr.Code)
	}

	srv.SetDraining(true)
	if rr := do(t, h, http.MethodGet, "/v1/readyz", "", nil); rr.Code != http.StatusServiceUnavailable || errCode(t, rr) != "draining" {
		t.Fatalf("draining readyz: %d %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, h, http.MethodGet, "/v1/livez", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("livez while draining: %d", rr.Code)
	}
	// Draining refuses new routing, not in-flight work: the API still
	// serves while the balancer reacts.
	if rr := do(t, h, http.MethodPost, "/v1/neighbors", neighborsBody, nil); rr.Code != http.StatusOK {
		t.Fatalf("neighbors while draining: %d %s", rr.Code, rr.Body.String())
	}

	srv.SetDraining(false)
	if rr := do(t, h, http.MethodGet, "/v1/readyz", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("readyz after drain lifted: %d", rr.Code)
	}
}
