package sentiment

import (
	"math/rand"

	"anchor/internal/autodiff"
	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/nn"
)

// LinearBOWConfig configures the paper's linear bag-of-words sentiment
// model (Appendix C.3.1): average the fixed word embeddings of a sentence
// and classify with a linear layer trained by Adam.
type LinearBOWConfig struct {
	LR     float64
	Epochs int
	Batch  int
	// Seed controls model initialization and batch order. The paper ties
	// this to the embedding seed; Appendix E.3 varies them independently.
	Seed int64
	// SampleSeed, when nonzero, decouples the batch-order randomness from
	// Seed (used by the Table 13 randomness-source experiment).
	SampleSeed int64
}

// DefaultLinearBOWConfig mirrors the paper's shared hyperparameters
// (Adam, batch 32) with epochs scaled to the synthetic datasets.
func DefaultLinearBOWConfig(seed int64) LinearBOWConfig {
	return LinearBOWConfig{LR: 0.01, Epochs: 40, Batch: 32, Seed: seed}
}

// LinearBOW is a trained linear bag-of-words classifier over fixed
// embeddings.
type LinearBOW struct {
	emb *embedding.Embedding
	lin *nn.Linear
}

// features returns the averaged embedding for each example.
func features(emb *embedding.Embedding, examples []Example) *matrix.Dense {
	out := matrix.NewDense(len(examples), emb.Dim())
	for i, ex := range examples {
		row := out.Row(i)
		for _, tok := range ex.Tokens {
			floats.Add(row, emb.Vector(int(tok)))
		}
		if len(ex.Tokens) > 0 {
			floats.Scale(1/float64(len(ex.Tokens)), row)
		}
	}
	return out
}

// TrainLinearBOW trains the model on ds.Train with fixed embeddings.
// Because the embeddings are frozen, sentence features are precomputed
// once, making the grid experiments cheap.
func TrainLinearBOW(emb *embedding.Embedding, ds *Dataset, cfg LinearBOWConfig) *LinearBOW {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampleRng := rng
	if cfg.SampleSeed != 0 {
		sampleRng = rand.New(rand.NewSource(cfg.SampleSeed))
	}
	lin := nn.NewLinear("bow", emb.Dim(), 2, rng)
	opt := nn.NewAdam(cfg.LR)

	x := features(emb, ds.Train)
	labels := make([]int, len(ds.Train))
	for i, ex := range ds.Train {
		labels[i] = ex.Label
	}

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		sampleRng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += cfg.Batch {
			e := min(s+cfg.Batch, len(idx))
			bx := matrix.NewDense(e-s, emb.Dim())
			by := make([]int, e-s)
			for i := s; i < e; i++ {
				copy(bx.Row(i-s), x.Row(idx[i]))
				by[i-s] = labels[idx[i]]
			}
			tp := autodiff.NewTape()
			loss := tp.CrossEntropy(lin.Forward(tp, tp.Const(bx)), by)
			tp.Backward(loss)
			opt.Step(lin.Params())
		}
	}
	return &LinearBOW{emb: emb, lin: lin}
}

// Predict returns the predicted labels for the examples.
func (m *LinearBOW) Predict(examples []Example) []int {
	x := features(m.emb, examples)
	tp := autodiff.NewTape()
	logits := m.lin.Forward(tp, tp.Const(x)).Value
	out := make([]int, len(examples))
	for i := range out {
		if logits.At(i, 1) > logits.At(i, 0) {
			out[i] = 1
		}
	}
	return out
}

// Accuracy returns classification accuracy on the examples.
func (m *LinearBOW) Accuracy(examples []Example) float64 {
	preds := m.Predict(examples)
	correct := 0
	for i, ex := range examples {
		if preds[i] == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// TrainLinearBOWFineTuned trains the same model but lets gradients update
// a private copy of the embedding matrix (the Appendix E.4 fine-tuning
// study). It returns the trained model (holding the fine-tuned copy).
func TrainLinearBOWFineTuned(emb *embedding.Embedding, ds *Dataset, cfg LinearBOWConfig) *LinearBOW {
	rng := rand.New(rand.NewSource(cfg.Seed))
	lin := nn.NewLinear("bow", emb.Dim(), 2, rng)
	tuned := emb.Clone()
	embParam := autodiff.NewParam("emb", tuned.Vectors)
	params := append(lin.Params(), embParam)
	opt := nn.NewAdam(cfg.LR)

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += cfg.Batch {
			e := min(s+cfg.Batch, len(idx))
			tp := autodiff.NewTape()
			embNode := tp.Use(embParam)
			rows := make([]*autodiff.Node, e-s)
			by := make([]int, e-s)
			for i := s; i < e; i++ {
				ex := ds.Train[idx[i]]
				toks := make([]int, len(ex.Tokens))
				for j, tk := range ex.Tokens {
					toks[j] = int(tk)
				}
				rows[i-s] = tp.MeanRows(tp.GatherRows(embNode, toks))
				by[i-s] = ex.Label
			}
			tp2 := tp.ConcatRows(rows...)
			loss := tp.CrossEntropy(lin.Forward(tp, tp2), by)
			tp.Backward(loss)
			opt.Step(params)
		}
	}
	return &LinearBOW{emb: tuned, lin: lin}
}

// CNNConfig configures the Kim (2014) convolutional sentence classifier
// used in the robustness appendix.
type CNNConfig struct {
	LR      float64
	Epochs  int
	Batch   int
	Widths  []int
	Filters int
	Dropout float64
	Seed    int64
}

// DefaultCNNConfig mirrors Appendix E.2's CNN (widths 3/4/5, 100 filters)
// scaled down for the synthetic datasets.
func DefaultCNNConfig(seed int64) CNNConfig {
	return CNNConfig{
		LR: 0.005, Epochs: 8, Batch: 16,
		Widths: []int{2, 3, 4}, Filters: 24, Dropout: 0.3, Seed: seed,
	}
}

// CNN is a trained convolutional sentence classifier over fixed embeddings.
type CNN struct {
	emb  *embedding.Embedding
	conv *nn.Conv1D
	out  *nn.Linear
}

// TrainCNN trains the CNN sentiment model with fixed embeddings.
func TrainCNN(emb *embedding.Embedding, ds *Dataset, cfg CNNConfig) *CNN {
	rng := rand.New(rand.NewSource(cfg.Seed))
	conv := nn.NewConv1D("conv", cfg.Widths, emb.Dim(), cfg.Filters, rng)
	out := nn.NewLinear("out", len(cfg.Widths)*cfg.Filters, 2, rng)
	params := append(conv.Params(), out.Params()...)
	opt := nn.NewAdam(cfg.LR)
	dropRng := rand.New(rand.NewSource(cfg.Seed + 1))

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += cfg.Batch {
			e := min(s+cfg.Batch, len(idx))
			tp := autodiff.NewTape()
			feats := make([]*autodiff.Node, e-s)
			by := make([]int, e-s)
			for i := s; i < e; i++ {
				ex := ds.Train[idx[i]]
				seq := tp.Const(tokenMatrix(emb, ex.Tokens))
				f := conv.Forward(tp, seq)
				feats[i-s] = tp.Dropout(f, cfg.Dropout, dropRng)
				by[i-s] = ex.Label
			}
			loss := tp.CrossEntropy(out.Forward(tp, tp.ConcatRows(feats...)), by)
			tp.Backward(loss)
			opt.Step(params)
		}
	}
	return &CNN{emb: emb, conv: conv, out: out}
}

func tokenMatrix(emb *embedding.Embedding, tokens []int32) *matrix.Dense {
	m := matrix.NewDense(len(tokens), emb.Dim())
	for i, tk := range tokens {
		copy(m.Row(i), emb.Vector(int(tk)))
	}
	return m
}

// Predict returns predicted labels for the examples.
func (m *CNN) Predict(examples []Example) []int {
	out := make([]int, len(examples))
	for i, ex := range examples {
		tp := autodiff.NewTape()
		f := m.conv.Forward(tp, tp.Const(tokenMatrix(m.emb, ex.Tokens)))
		logits := m.out.Forward(tp, f).Value
		if logits.At(0, 1) > logits.At(0, 0) {
			out[i] = 1
		}
	}
	return out
}

// Accuracy returns classification accuracy on the examples.
func (m *CNN) Accuracy(examples []Example) float64 {
	preds := m.Predict(examples)
	correct := 0
	for i, ex := range examples {
		if preds[i] == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}
