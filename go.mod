module anchor

go 1.24
