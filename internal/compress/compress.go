// Package compress implements the uniform quantization scheme the paper
// uses to control embedding precision (Section 2.3, Appendix C.2, after
// May et al. 2019's "smallfry"). Each entry is clipped to [-c, c] and
// rounded deterministically to one of 2^b equally spaced values, so it can
// be stored with b bits. Two stability-relevant details from the paper are
// preserved:
//
//   - the clipping threshold c is chosen by minimizing quantization MSE on
//     the FIRST embedding of a pair and reused for the second, avoiding a
//     spurious source of instability;
//   - rounding is deterministic (round-to-nearest), not stochastic.
//
// Quantized levels are additionally rounded to the nearest float32, so
// every quantized value is exactly float32-representable. That invariant
// is what lets the storage layer auto-pick a narrower lossless element
// kind and the query engine serve quantized rows through float32/LUT
// kernels while staying bitwise faithful to the artifact.
//
// The package is under the repository's bitwise determinism contract:
// every exported function returns identical bits for every worker count.
// Parallelism only ever splits work whose per-element results are
// independent (element-wise maps, one grid candidate per task); each
// reduction keeps its serial accumulation order.
package compress

import (
	"math"
	"sort"

	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/parallel"
)

// FullPrecision is the number of bits that means "no compression".
const FullPrecision = 32

// clipGrid is the quantile grid OptimalClip searches, in search order.
var clipGrid = [...]float64{0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999, 1.0}

// parMinLen is the input size below which element-wise passes stay
// serial; goroutine overhead dominates under it. Depending only on the
// input length keeps the parallel/serial split deterministic.
const parMinLen = 1 << 12

// OptimalClip returns the clipping threshold that minimizes the mean
// squared quantization error of uniform b-bit quantization on data,
// searched over a grid of quantiles of |data|. It runs on all CPUs; use
// OptimalClipWorkers to bound parallelism. The result is bitwise
// identical for every worker count.
func OptimalClip(data []float64, bits int) float64 {
	return OptimalClipWorkers(data, bits, 0)
}

// OptimalClipWorkers is OptimalClip with an explicit worker bound
// (workers <= 0 means all CPUs). Each grid candidate's MSE pass keeps the
// serial single-accumulator order and candidates are compared in fixed
// grid order afterwards, so parallelism across candidates cannot change
// the chosen clip.
func OptimalClipWorkers(data []float64, bits, workers int) float64 {
	abs := make([]float64, len(data))
	ranges := parallel.Ranges(len(data), elemShards(len(data), workers))
	parallel.Run(workers, len(ranges), func(s int) {
		r := ranges[s]
		for i := r.Lo; i < r.Hi; i++ {
			abs[i] = math.Abs(data[i])
		}
	}, nil)
	maxAbs := floats.Max(abs)
	if maxAbs == 0 {
		return 1
	}
	sort.Float64s(abs)
	clips := make([]float64, len(clipGrid))
	mses := make([]float64, len(clipGrid))
	parallel.Run(workers, len(clipGrid), func(s int) {
		clip := floats.QuantileSorted(abs, clipGrid[s])
		clips[s], mses[s] = clip, math.Inf(1)
		if clip > 0 {
			mses[s] = quantMSE(data, clip, bits)
		}
	}, nil)
	bestClip, bestMSE := maxAbs, math.Inf(1)
	for s := range clipGrid {
		if clips[s] <= 0 {
			continue
		}
		if mses[s] < bestMSE {
			bestMSE, bestClip = mses[s], clips[s]
		}
	}
	return bestClip
}

func quantMSE(data []float64, clip float64, bits int) float64 {
	var mse float64
	for _, v := range data {
		q := quantizeValue(v, clip, bits)
		d := v - q
		mse += d * d
	}
	return mse / float64(len(data))
}

// quantizeValue rounds v to the nearest of 2^bits equally spaced values in
// [-clip, clip], with the level itself rounded to the nearest float32.
func quantizeValue(v, clip float64, bits int) float64 {
	levels := float64(int64(1) << uint(bits)) // 2^b
	if v > clip {
		v = clip
	} else if v < -clip {
		v = -clip
	}
	// Map [-clip, clip] onto [0, levels-1], round, map back.
	// For 1 bit (two levels) this degenerates to sign quantization at ±clip.
	step := 2 * clip / (levels - 1)
	idx := math.Round((v + clip) / step)
	if idx < 0 {
		idx = 0
	}
	max := levels - 1
	if idx > max {
		idx = max
	}
	// The float32 rounding shifts each level by at most 2^-24·clip, far
	// below the quantization step for every b <= 24, so requantizing a
	// quantized value is still exact (idempotence) while every output
	// becomes exactly float32-representable.
	return float64(float32(idx*step - clip))
}

// QuantizeValues quantizes data in place to the given number of bits with
// the given clip; bits >= 32 leaves the data unchanged. It is the raw
// primitive behind Quantize, exported for non-word-embedding matrices
// (knowledge graph embeddings, BERT features). It runs on all CPUs; use
// QuantizeValuesWorkers to bound parallelism.
func QuantizeValues(data []float64, bits int, clip float64) {
	QuantizeValuesWorkers(data, bits, clip, 0)
}

// QuantizeValuesWorkers is QuantizeValues with an explicit worker bound
// (workers <= 0 means all CPUs). Every element maps independently to its
// own slot, so the result is bitwise identical for every worker count.
func QuantizeValuesWorkers(data []float64, bits int, clip float64, workers int) {
	if bits >= FullPrecision {
		return
	}
	if bits < 1 {
		panic("compress: bits must be >= 1")
	}
	ranges := parallel.Ranges(len(data), elemShards(len(data), workers))
	parallel.Run(workers, len(ranges), func(s int) {
		r := ranges[s]
		for i := r.Lo; i < r.Hi; i++ {
			data[i] = quantizeValue(data[i], clip, bits)
		}
	}, nil)
}

// elemShards picks the shard count for an element-wise pass: serial for
// tiny inputs, one shard per worker otherwise.
func elemShards(n, workers int) int {
	if n < parMinLen {
		return 1
	}
	return parallel.Workers(workers)
}

// Quantize returns a copy of e uniformly quantized to the given number of
// bits using clip as the clipping threshold. bits == 32 returns an
// unmodified copy (full precision). The returned embedding records the
// precision and clip in its Meta.
func Quantize(e *embedding.Embedding, bits int, clip float64) *embedding.Embedding {
	return QuantizeWorkers(e, bits, clip, 0)
}

// QuantizeWorkers is Quantize with an explicit worker bound (workers <= 0
// means all CPUs); the result is bitwise identical for every worker count.
func QuantizeWorkers(e *embedding.Embedding, bits int, clip float64, workers int) *embedding.Embedding {
	out := e.Clone()
	out.Meta.Precision = bits
	out.Meta.Clip = 0
	if bits >= FullPrecision {
		out.Meta.Precision = FullPrecision
		return out
	}
	out.Meta.Clip = clip
	QuantizeValuesWorkers(out.Vectors.Data, bits, clip, workers)
	return out
}

// QuantizePair compresses a Wiki'17/Wiki'18 embedding pair to the given
// precision, computing the MSE-optimal clip on x and sharing it with
// xTilde exactly as the paper prescribes.
func QuantizePair(x, xTilde *embedding.Embedding, bits int) (*embedding.Embedding, *embedding.Embedding) {
	return QuantizePairWorkers(x, xTilde, bits, 0)
}

// QuantizePairWorkers is QuantizePair with an explicit worker bound
// (workers <= 0 means all CPUs); the result is bitwise identical for
// every worker count.
func QuantizePairWorkers(x, xTilde *embedding.Embedding, bits, workers int) (*embedding.Embedding, *embedding.Embedding) {
	if bits >= FullPrecision {
		qx, qy := x.Clone(), xTilde.Clone()
		qx.Meta.Precision, qy.Meta.Precision = FullPrecision, FullPrecision
		return qx, qy
	}
	clip := OptimalClipWorkers(x.Vectors.Data, bits, workers)
	return QuantizeWorkers(x, bits, clip, workers), QuantizeWorkers(xTilde, bits, clip, workers)
}

// Levels returns the set of representable values for the given clip and
// bit width (each rounded to the nearest float32, matching Quantize),
// ascending. A quantized artifact's values are exactly these levels,
// which is what the code-matrix storage kind and the LUT scoring kernel
// decode through.
func Levels(clip float64, bits int) []float64 {
	n := int64(1) << uint(bits)
	step := 2 * clip / float64(n-1)
	out := make([]float64, n)
	for i := int64(0); i < n; i++ {
		out[i] = float64(float32(float64(i)*step - clip))
	}
	return out
}
