package embtrain

import (
	"math"
	"math/rand"

	"anchor/internal/cooc"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
)

// GloVe trains embeddings by weighted least-squares factorization of the
// log co-occurrence matrix (Pennington et al. 2014) with AdaGrad, modeling
// word and context vectors plus bias terms separately; the returned
// embedding is the standard sum of word and context vectors.
type GloVe struct {
	// Window is the co-occurrence half-window; counts are weighted 1/distance.
	Window int
	// Epochs is the number of AdaGrad passes over the nonzero entries.
	Epochs int
	// LR is the AdaGrad learning rate.
	LR float64
	// XMax and Alpha parameterize the weighting f(x) = min(1, (x/XMax)^Alpha).
	XMax  float64
	Alpha float64
}

// NewGloVe returns a GloVe trainer with repro-scale defaults. The paper
// uses lr=0.01, xmax=100, alpha=0.75 on 4.5B tokens; xmax is scaled to the
// synthetic corpus so the weighting still saturates.
func NewGloVe() *GloVe {
	return &GloVe{Window: 5, Epochs: 25, LR: 0.05, XMax: 20, Alpha: 0.75}
}

// Name implements Trainer.
func (t *GloVe) Name() string { return "glove" }

// Train implements Trainer.
func (t *GloVe) Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding {
	counts := cooc.Count(c, t.Window, cooc.InverseDistance)
	n := c.Vocab.Size()
	rng := rand.New(rand.NewSource(seed))

	w := make([]float64, n*dim)  // word vectors
	wc := make([]float64, n*dim) // context vectors
	b := make([]float64, n)      // word biases
	bc := make([]float64, n)     // context biases
	initMatrix(w, dim, rng)
	initMatrix(wc, dim, rng)

	// AdaGrad accumulators, initialized to 1 as in the reference implementation.
	gw := make([]float64, n*dim)
	gwc := make([]float64, n*dim)
	gb := make([]float64, n)
	gbc := make([]float64, n)
	for i := range gw {
		gw[i], gwc[i] = 1, 1
	}
	for i := range gb {
		gb[i], gbc[i] = 1, 1
	}

	update := func(i, j int32, x float64) {
		wi := w[int(i)*dim : (int(i)+1)*dim]
		cj := wc[int(j)*dim : (int(j)+1)*dim]
		diff := floats.Dot(wi, cj) + b[i] + bc[j] - math.Log(x)
		f := 1.0
		if x < t.XMax {
			f = math.Pow(x/t.XMax, t.Alpha)
		}
		g := f * diff
		for k := 0; k < dim; k++ {
			gwk := g * cj[k]
			gck := g * wi[k]
			idxW := int(i)*dim + k
			idxC := int(j)*dim + k
			wi[k] -= t.LR * gwk / math.Sqrt(gw[idxW])
			cj[k] -= t.LR * gck / math.Sqrt(gwc[idxC])
			gw[idxW] += gwk * gwk
			gwc[idxC] += gck * gck
		}
		b[i] -= t.LR * g / math.Sqrt(gb[i])
		bc[j] -= t.LR * g / math.Sqrt(gbc[j])
		gb[i] += g * g
		gbc[j] += g * g
	}

	for epoch := 0; epoch < t.Epochs; epoch++ {
		order := shuffledOrder(counts.NNZ(), rng)
		for _, ei := range order {
			e := counts.Entries[ei]
			// The sparse matrix stores each unordered pair once; train both
			// directions so word and context roles are symmetric.
			update(e.Row, e.Col, e.Val)
			if e.Row != e.Col {
				update(e.Col, e.Row, e.Val)
			}
		}
	}

	e := embedding.New(n, dim)
	e.Words = c.Vocab.Words
	e.Meta = embedding.Meta{
		Algorithm: t.Name(), Corpus: corpusName(c), Dim: dim, Seed: seed, Precision: 32,
	}
	for i := 0; i < n*dim; i++ {
		e.Vectors.Data[i] = w[i] + wc[i]
	}
	return e
}
