//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"

	"anchor/internal/ann"
	"anchor/internal/embedding"
	"anchor/internal/faults"
)

// MapBinaryFile memory-maps a binary artifact read-only and decodes it in
// place: the returned embedding's float64 storage is the page cache
// itself, so no payload bytes are read or copied until touched. close
// unmaps the file; the embedding (and anything aliasing its matrix) must
// not be used afterwards. Callers that need an embedding with an unbounded
// lifetime should use LoadBinaryFile instead.
func MapBinaryFile(path string) (e *embedding.Embedding, close func() error, err error) {
	if err := faults.Error(siteBinRead); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() == 0 || st.Size() > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("store: cannot map %s: %d bytes", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	e, err = DecodeBinary(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, err
	}
	return e, func() error { return syscall.Munmap(data) }, nil
}

// MapANNFile memory-maps an IVF sidecar read-only and decodes it in
// place: the returned index's centroid and list storage is the page
// cache itself. close unmaps the file; the index must not be used
// afterwards. Callers that need an index with an unbounded lifetime
// should use LoadANNFile instead.
func MapANNFile(path string) (ix *ann.Index, close func() error, err error) {
	if err := faults.Error(siteANNRead); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() == 0 || st.Size() > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("store: cannot map %s: %d bytes", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	ix, err = ann.Decode(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, err
	}
	return ix, func() error { return syscall.Munmap(data) }, nil
}
