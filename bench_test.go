// Benchmark harness: one benchmark per table and figure in the paper.
// Each benchmark regenerates the corresponding artifact at BenchConfig
// scale and prints the resulting rows, so `go test -bench=.` both times
// the reproduction and emits the paper-shaped data series. All benchmarks
// share one cached runner: the first benchmark touching a grid pays its
// training cost; later ones reuse it (mirroring the paper's pipeline,
// where embeddings are trained once and reused across analyses).
//
// Micro-benchmarks for the core computational kernels (SVD, quantization,
// distance measures, embedding trainers) follow the artifact benchmarks.
package anchor_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"anchor/internal/compress"
	"anchor/internal/cooc"
	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/embtrain"
	"anchor/internal/experiments"
	"anchor/internal/kge"
	"anchor/internal/matrix"
	"anchor/internal/tasks/ner"
	"anchor/internal/tasks/sentiment"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	printedMu   sync.Mutex
	printed     = map[string]bool{}
)

func runner() *experiments.Runner {
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(experiments.BenchConfig())
	})
	return benchRunner
}

// benchArtifact times the regeneration of one paper artifact and prints
// its tables once.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	r := runner()
	var tables []*experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Run(r, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printedMu.Lock()
	defer printedMu.Unlock()
	if !printed[id] {
		printed[id] = true
		fmt.Printf("\n")
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}
}

// One benchmark per paper table/figure (see DESIGN.md's experiment index).

func BenchmarkFig1DimensionPrecision(b *testing.B)      { benchArtifact(b, "fig1") }
func BenchmarkFig2MemoryNER(b *testing.B)               { benchArtifact(b, "fig2") }
func BenchmarkRuleOfThumbFit(b *testing.B)              { benchArtifact(b, "rule") }
func BenchmarkTable1Spearman(b *testing.B)              { benchArtifact(b, "table1") }
func BenchmarkTable2SelectionError(b *testing.B)        { benchArtifact(b, "table2") }
func BenchmarkTable3OracleDistance(b *testing.B)        { benchArtifact(b, "table3") }
func BenchmarkFig3KGE(b *testing.B)                     { benchArtifact(b, "fig3") }
func BenchmarkFig4SentimentDims(b *testing.B)           { benchArtifact(b, "fig4") }
func BenchmarkFig5SentimentPrecisions(b *testing.B)     { benchArtifact(b, "fig5") }
func BenchmarkFig6SentimentMemory(b *testing.B)         { benchArtifact(b, "fig6") }
func BenchmarkFig7QualityTradeoffs(b *testing.B)        { benchArtifact(b, "fig7") }
func BenchmarkFig8QualityNER(b *testing.B)              { benchArtifact(b, "fig8") }
func BenchmarkFig9MeasureScatter(b *testing.B)          { benchArtifact(b, "fig9") }
func BenchmarkFig10KGEPerDatasetThreshold(b *testing.B) { benchArtifact(b, "fig10") }
func BenchmarkFig11BERT(b *testing.B)                   { benchArtifact(b, "fig11") }
func BenchmarkFig12FastText(b *testing.B)               { benchArtifact(b, "fig12") }
func BenchmarkFig13ComplexModels(b *testing.B)          { benchArtifact(b, "fig13") }
func BenchmarkFig14SeedsFinetune(b *testing.B)          { benchArtifact(b, "fig14") }
func BenchmarkFig15LearningRate(b *testing.B)           { benchArtifact(b, "fig15") }
func BenchmarkTable8AlphaK(b *testing.B)                { benchArtifact(b, "table8") }
func BenchmarkTable9MRMPQA(b *testing.B)                { benchArtifact(b, "table9") }
func BenchmarkTable10WorstCasePairwise(b *testing.B)    { benchArtifact(b, "table10") }
func BenchmarkTable11WorstCaseBudget(b *testing.B)      { benchArtifact(b, "table11") }
func BenchmarkTable13RandomnessSources(b *testing.B)    { benchArtifact(b, "table13") }
func BenchmarkProp1Verification(b *testing.B)           { benchArtifact(b, "prop1") }

// ---- micro-benchmarks for the computational kernels ----

func benchEmbeddings(n, d int) (*embedding.Embedding, *embedding.Embedding) {
	rng := rand.New(rand.NewSource(1))
	a := embedding.New(n, d)
	bb := embedding.New(n, d)
	for i := range a.Vectors.Data {
		a.Vectors.Data[i] = rng.NormFloat64()
		bb.Vectors.Data[i] = a.Vectors.Data[i] + 0.1*rng.NormFloat64()
	}
	return a, bb
}

func BenchmarkSVD300x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := matrix.NewDenseRand(300, 64, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matrix.ComputeSVD(m)
	}
}

func BenchmarkQuantize4Bit(b *testing.B) {
	e, _ := benchEmbeddings(1000, 64)
	clip := compress.OptimalClip(e.Vectors.Data, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.Quantize(e, 4, clip)
	}
}

func BenchmarkEigenspaceInstability(b *testing.B) {
	x, xt := benchEmbeddings(300, 32)
	e, et := benchEmbeddings(300, 64)
	m := core.NewEigenspaceInstability(e, et)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, xt)
	}
}

func BenchmarkKNNMeasure(b *testing.B) {
	x, xt := benchEmbeddings(300, 32)
	m := &core.KNN{K: 5, Queries: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, xt)
	}
}

// BenchmarkKNNMeasure3000 runs the batched k-NN engine at a vocabulary
// size where its speedup over the seed implementation is visible; the
// pre-PR loop is timed by BenchmarkKNNMeasureReference3000 in
// internal/core. The measure value is identical for every worker count.
func BenchmarkKNNMeasure3000(b *testing.B) {
	x, xt := benchEmbeddings(3000, 64)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := &core.KNN{K: 5, Queries: 1000, Seed: 1, Workers: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Distance(x, xt)
			}
		})
	}
}

// BenchmarkMulATB times the blocked parallel aᵀ·b kernel at measure-layer
// scale (Gram matrices of a 3000-word embedding). The product is bitwise
// identical for every worker count.
func BenchmarkMulATB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := matrix.NewDenseRand(3000, 64, 1, rng)
	y := matrix.NewDenseRand(3000, 64, 1, rng)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.MulATBWorkers(x, y, w)
			}
		})
	}
}

// BenchmarkMulABT times the blocked parallel a·bᵀ kernel on the batched
// k-NN engine's shape: a query block scored against a 3000-word
// vocabulary.
func BenchmarkMulABT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := matrix.NewDenseRand(128, 64, 1, rng)
	n := matrix.NewDenseRand(3000, 64, 1, rng)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.MulABTWorkers(q, n, w)
			}
		})
	}
}

// ---- downstream-training benchmarks (fast path vs retained reference) ----
//
// The fast and reference trainers produce bitwise-identical models (see
// the equality tests in internal/tasks), so the fast/reference ratio is
// pure overhead eliminated: per-op allocation, unfused op compositions,
// and per-call temporaries.

func benchSentimentSetup() (*embedding.Embedding, *sentiment.Dataset) {
	c := benchCorpus()
	emb := embtrain.NewMC().Train(c, 32, 1)
	ds := sentiment.Generate(c, corpus.TestConfig(), sentiment.SST2Params())
	return emb, ds
}

func BenchmarkTrainLinearBOW(b *testing.B) {
	emb, ds := benchSentimentSetup()
	cfg := sentiment.DefaultLinearBOWConfig(1)
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sentiment.TrainLinearBOW(emb, ds, cfg)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sentiment.TrainLinearBOWReference(emb, ds, cfg)
		}
	})
}

func BenchmarkNERTrain(b *testing.B) {
	c := benchCorpus()
	emb := embtrain.NewMC().Train(c, 16, 1)
	p := ner.CoNLLParams()
	p.TrainN, p.ValN, p.TestN = 120, 30, 60
	ds := ner.Generate(c, corpus.TestConfig(), p)
	cfg := ner.DefaultConfig(1)
	cfg.Epochs = 3
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ner.Train(emb, ds, cfg)
		}
	})
	// The bitwise-equality twin of the fast trainer: same lockstep batch
	// schedule, retained slow ops (fresh heap tape per batch, unfused
	// compositions, per-op temporaries).
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ner.TrainReference(emb, ds, cfg)
		}
	})
	// The seed's trainer (one tape and one SGD step per sentence per
	// epoch) at its own tuned learning rate — the pre-batching baseline.
	oldCfg := cfg
	oldCfg.LR = 0.4
	b.Run("per-sentence", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ner.TrainPerSentence(emb, ds, oldCfg)
		}
	})
}

// BenchmarkGridCell times one full uncached grid-cell evaluation (all
// distance measures plus two sentiment tasks × two downstream models) with
// embeddings, anchors, and datasets pre-warmed — the unit of work the
// dimension × precision × seed sweep repeats.
func BenchmarkGridCell(b *testing.B) {
	r := experiments.NewRunner(experiments.SmallConfig())
	r.Cfg.Workers = 1
	tasks := []string{"sst2", "subj"}
	r.Pair("mc", 16, 1)
	r.Anchors("mc", 1)
	for _, task := range tasks {
		r.SentimentData(task)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EvalCell("mc", 16, 4, 1, tasks, false)
	}
}

func BenchmarkPIPLoss(b *testing.B) {
	x, xt := benchEmbeddings(300, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(core.PIPLoss{}).Distance(x, xt)
	}
}

func BenchmarkSemanticDisplacement(b *testing.B) {
	x, xt := benchEmbeddings(300, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		(core.SemanticDisplacement{}).Distance(x, xt)
	}
}

func benchCorpus() *corpus.Corpus {
	cfg := corpus.TestConfig()
	return corpus.Generate(cfg, corpus.Wiki17)
}

// benchTrainWorkers runs one trainer benchmark per worker count. The
// embeddings are bitwise identical across the sub-benchmarks (the engine's
// determinism contract); only the wall clock should differ, so the
// workers=1 vs workers=4 ratio is the training speedup on multicore
// hardware.
func benchTrainWorkers(b *testing.B, mk func(workers int) embtrain.Trainer) {
	c := benchCorpus()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			tr := mk(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Train(c, 16, 1)
			}
		})
	}
}

func BenchmarkTrainCBOW(b *testing.B) {
	benchTrainWorkers(b, func(w int) embtrain.Trainer {
		tr := embtrain.NewCBOW()
		tr.Epochs = 2
		tr.Workers = w
		return tr
	})
}

func BenchmarkTrainGloVe(b *testing.B) {
	benchTrainWorkers(b, func(w int) embtrain.Trainer {
		tr := embtrain.NewGloVe()
		tr.Epochs = 2
		tr.Workers = w
		return tr
	})
}

func BenchmarkTrainMC(b *testing.B) {
	benchTrainWorkers(b, func(w int) embtrain.Trainer {
		tr := embtrain.NewMC()
		tr.Epochs = 2
		tr.Workers = w
		return tr
	})
}

func BenchmarkTrainFastText(b *testing.B) {
	benchTrainWorkers(b, func(w int) embtrain.Trainer {
		tr := embtrain.NewFastText()
		tr.Epochs = 2
		tr.Workers = w
		return tr
	})
}

func BenchmarkCoocCount(b *testing.B) {
	c := benchCorpus()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cooc.CountWorkers(c, 5, cooc.InverseDistance, w)
			}
		})
	}
}

func BenchmarkTransETraining(b *testing.B) {
	g := kge.GenerateGraph(kge.TestGraphConfig())
	cfg := kge.DefaultTransEConfig(16, 1)
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kge.TrainTransE(g, cfg)
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	cfg := corpus.TestConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.Generate(cfg, corpus.Wiki17)
	}
}
