package sentiment

import (
	"math/rand"

	"anchor/internal/autodiff"
	"anchor/internal/embedding"
	"anchor/internal/matrix"
	"anchor/internal/nn"
)

// LinearBOWConfig configures the paper's linear bag-of-words sentiment
// model (Appendix C.3.1): average the fixed word embeddings of a sentence
// and classify with a linear layer trained by Adam.
type LinearBOWConfig struct {
	LR     float64
	Epochs int
	Batch  int
	// Seed controls model initialization and batch order. The paper ties
	// this to the embedding seed; Appendix E.3 varies them independently.
	Seed int64
	// SampleSeed, when nonzero, decouples the batch-order randomness from
	// Seed (used by the Table 13 randomness-source experiment).
	SampleSeed int64
}

// DefaultLinearBOWConfig mirrors the paper's shared hyperparameters
// (Adam, batch 32) with epochs scaled to the synthetic datasets.
func DefaultLinearBOWConfig(seed int64) LinearBOWConfig {
	return LinearBOWConfig{LR: 0.01, Epochs: 40, Batch: 32, Seed: seed}
}

// LinearBOW is a trained linear bag-of-words classifier over fixed
// embeddings.
type LinearBOW struct {
	emb *embedding.Embedding
	lin *nn.Linear
}

// TrainLinearBOW trains the model on ds.Train with fixed embeddings using
// the fast path: features come from the dataset's cached count matrix as
// one blocked product (counts.go), and the training loop records each
// minibatch on a single arena-backed tape that is reset between steps.
// Weights are bitwise identical to TrainLinearBOWReference for every
// worker count.
func TrainLinearBOW(emb *embedding.Embedding, ds *Dataset, cfg LinearBOWConfig) *LinearBOW {
	return trainLinearBOW(emb, ds, cfg, true)
}

// TrainLinearBOWReference trains the same model on the retained slow path
// — per-example feature loops and a fresh heap-allocating tape per
// minibatch — kept for equality tests and benchmarks.
func TrainLinearBOWReference(emb *embedding.Embedding, ds *Dataset, cfg LinearBOWConfig) *LinearBOW {
	return trainLinearBOW(emb, ds, cfg, false)
}

func trainLinearBOW(emb *embedding.Embedding, ds *Dataset, cfg LinearBOWConfig, fast bool) *LinearBOW {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampleRng := rng
	if cfg.SampleSeed != 0 {
		sampleRng = rand.New(rand.NewSource(cfg.SampleSeed))
	}
	lin := nn.NewLinear("bow", emb.Dim(), 2, rng)
	opt := nn.NewAdam(cfg.LR)

	var x *matrix.Dense
	if fast {
		x = Features(emb, ds.TrainCounts(), ds.Train, 1)
	} else {
		x = featuresReference(emb, ds.Train)
	}
	labels := make([]int, len(ds.Train))
	for i, ex := range ds.Train {
		labels[i] = ex.Label
	}

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	var tp *autodiff.Tape
	var byBuf []int
	if fast {
		tp = autodiff.NewArenaTape()
		tp.Workers = 1
		byBuf = make([]int, cfg.Batch)
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		sampleRng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += cfg.Batch {
			e := min(s+cfg.Batch, len(idx))
			var bx *autodiff.Node
			var by []int
			if fast {
				tp.Reset()
				bx = tp.NewConstBuf(e-s, emb.Dim())
				by = byBuf[:e-s]
			} else {
				tp = autodiff.NewTape()
				tp.Workers = 1
				bx = tp.Const(matrix.NewDense(e-s, emb.Dim()))
				by = make([]int, e-s)
			}
			for i := s; i < e; i++ {
				copy(bx.Value.Row(i-s), x.Row(idx[i]))
				by[i-s] = labels[idx[i]]
			}
			loss := tp.CrossEntropy(lin.Forward(tp, bx), by)
			tp.Backward(loss)
			opt.Step(lin.Params())
		}
	}
	return &LinearBOW{emb: emb, lin: lin}
}

// PredictFeatures returns the predicted labels for precomputed features
// (one row per example, from Features). Grid cells use it to score the
// test split with a single blocked product per embedding.
func (m *LinearBOW) PredictFeatures(x *matrix.Dense) []int {
	tp := autodiff.NewTape()
	logits := m.lin.Forward(tp, tp.Const(x)).Value
	out := make([]int, x.Rows)
	for i := range out {
		if logits.At(i, 1) > logits.At(i, 0) {
			out[i] = 1
		}
	}
	return out
}

// Predict returns the predicted labels for the examples.
func (m *LinearBOW) Predict(examples []Example) []int {
	return m.PredictFeatures(featuresReference(m.emb, examples))
}

// AccuracyOf returns the fraction of predictions matching the example
// labels.
func AccuracyOf(preds []int, examples []Example) float64 {
	correct := 0
	for i, ex := range examples {
		if preds[i] == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// Accuracy returns classification accuracy on the examples.
func (m *LinearBOW) Accuracy(examples []Example) float64 {
	return AccuracyOf(m.Predict(examples), examples)
}

// TrainLinearBOWFineTuned trains the same model but lets gradients update
// a private copy of the embedding matrix (the Appendix E.4 fine-tuning
// study). It returns the trained model (holding the fine-tuned copy).
func TrainLinearBOWFineTuned(emb *embedding.Embedding, ds *Dataset, cfg LinearBOWConfig) *LinearBOW {
	rng := rand.New(rand.NewSource(cfg.Seed))
	lin := nn.NewLinear("bow", emb.Dim(), 2, rng)
	tuned := emb.Clone()
	embParam := autodiff.NewParam("emb", tuned.Vectors)
	params := append(lin.Params(), embParam)
	opt := nn.NewAdam(cfg.LR)

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	tp := autodiff.NewArenaTape()
	tp.Workers = 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += cfg.Batch {
			e := min(s+cfg.Batch, len(idx))
			tp.Reset()
			embNode := tp.Use(embParam)
			rows := make([]*autodiff.Node, e-s)
			by := make([]int, e-s)
			for i := s; i < e; i++ {
				ex := ds.Train[idx[i]]
				toks := make([]int, len(ex.Tokens))
				for j, tk := range ex.Tokens {
					toks[j] = int(tk)
				}
				rows[i-s] = tp.MeanRows(tp.GatherRows(embNode, toks))
				by[i-s] = ex.Label
			}
			tp2 := tp.ConcatRows(rows...)
			loss := tp.CrossEntropy(lin.Forward(tp, tp2), by)
			tp.Backward(loss)
			opt.Step(params)
		}
	}
	return &LinearBOW{emb: tuned, lin: lin}
}

// CNNConfig configures the Kim (2014) convolutional sentence classifier
// used in the robustness appendix.
type CNNConfig struct {
	LR      float64
	Epochs  int
	Batch   int
	Widths  []int
	Filters int
	Dropout float64
	Seed    int64
}

// DefaultCNNConfig mirrors Appendix E.2's CNN (widths 3/4/5, 100 filters)
// scaled down for the synthetic datasets.
func DefaultCNNConfig(seed int64) CNNConfig {
	return CNNConfig{
		LR: 0.005, Epochs: 8, Batch: 16,
		Widths: []int{2, 3, 4}, Filters: 24, Dropout: 0.3, Seed: seed,
	}
}

// CNN is a trained convolutional sentence classifier over fixed embeddings.
type CNN struct {
	emb  *embedding.Embedding
	conv *nn.Conv1D
	out  *nn.Linear
}

// TrainCNN trains the CNN sentiment model with fixed embeddings using the
// fast path: length-bucketed minibatches stepped in lockstep (one window
// stack, matrix product, and segmented max-pool per filter width per
// batch) on an arena-backed tape with fused pooling. Weights are bitwise
// identical to TrainCNNReference for every worker count.
func TrainCNN(emb *embedding.Embedding, ds *Dataset, cfg CNNConfig) *CNN {
	return trainCNN(emb, ds, cfg, true)
}

// TrainCNNReference trains the same model over the same batch schedule on
// the retained slow path (heap tape per minibatch, unfused per-sequence
// pooling), kept for equality tests and benchmarks.
func TrainCNNReference(emb *embedding.Embedding, ds *Dataset, cfg CNNConfig) *CNN {
	return trainCNN(emb, ds, cfg, false)
}

func trainCNN(emb *embedding.Embedding, ds *Dataset, cfg CNNConfig, fast bool) *CNN {
	rng := rand.New(rand.NewSource(cfg.Seed))
	conv := nn.NewConv1D("conv", cfg.Widths, emb.Dim(), cfg.Filters, rng)
	out := nn.NewLinear("out", len(cfg.Widths)*cfg.Filters, 2, rng)
	params := append(conv.Params(), out.Params()...)
	opt := nn.NewAdam(cfg.LR)
	dropRng := rand.New(rand.NewSource(cfg.Seed + 1))

	lengths := make([]int, len(ds.Train))
	for i, ex := range ds.Train {
		lengths[i] = len(ex.Tokens)
	}
	batches := nn.LengthBatches(lengths, cfg.Batch)
	order := make([]int, len(batches))
	for i := range order {
		order[i] = i
	}
	var tp *autodiff.Tape
	if fast {
		tp = autodiff.NewArenaTape()
		tp.Workers = 1
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, bi := range order {
			batch := batches[bi]
			if fast {
				tp.Reset()
			} else {
				tp = autodiff.NewTape()
				tp.Workers = 1
			}
			n := len(ds.Train[batch[0]].Tokens)
			tok := func(b, t int) []float64 {
				return emb.Vector(int(ds.Train[batch[b]].Tokens[t]))
			}
			feats := conv.ForwardBatch(tp, tok, len(batch), n, fast)
			by := make([]int, len(batch))
			for bi2, i := range batch {
				by[bi2] = ds.Train[i].Label
			}
			dropped := tp.Dropout(feats, cfg.Dropout, dropRng)
			loss := tp.CrossEntropy(out.Forward(tp, dropped), by)
			tp.Backward(loss)
			opt.Step(params)
		}
	}
	return &CNN{emb: emb, conv: conv, out: out}
}

// Predict returns predicted labels for the examples, evaluated in
// length-bucketed lockstep batches (bitwise identical to per-example
// forward passes).
func (m *CNN) Predict(examples []Example) []int {
	lengths := make([]int, len(examples))
	for i, ex := range examples {
		lengths[i] = len(ex.Tokens)
	}
	out := make([]int, len(examples))
	tp := autodiff.NewArenaTape()
	tp.Workers = 1
	for _, batch := range nn.LengthBatches(lengths, 64) {
		tp.Reset()
		n := len(examples[batch[0]].Tokens)
		tok := func(b, t int) []float64 {
			return m.emb.Vector(int(examples[batch[b]].Tokens[t]))
		}
		feats := m.conv.ForwardBatch(tp, tok, len(batch), n, true)
		logits := m.out.Forward(tp, feats).Value
		for bi, i := range batch {
			if logits.At(bi, 1) > logits.At(bi, 0) {
				out[i] = 1
			}
		}
	}
	return out
}

// Accuracy returns classification accuracy on the examples.
func (m *CNN) Accuracy(examples []Example) float64 {
	return AccuracyOf(m.Predict(examples), examples)
}
