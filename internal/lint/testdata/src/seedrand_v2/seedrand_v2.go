// Package seedrand_v2 covers the math/rand/v2 and duration/ticker
// spellings of the seedrand rule: the v2 global generator and
// clock-derived helpers are as nondeterministic as their v1
// counterparts, and an explicitly seeded v2 generator is the sanctioned
// replacement.
package seedrand_v2

import (
	randv2 "math/rand/v2"
	"time"
)

// BadV2 draws from the math/rand/v2 global generator.
func BadV2() int {
	n := randv2.IntN(10)  // want `global math/rand/v2.IntN in deterministic package`
	m := randv2.Uint64()  // want `global math/rand/v2.Uint64 in deterministic package`
	f := randv2.Float64() // want `global math/rand/v2.Float64 in deterministic package`
	return n + int(m) + int(f)
}

// BadClock derives durations and tickers from the wall clock.
func BadClock(start time.Time) time.Duration {
	d := time.Since(start)     // want `time.Since in deterministic package`
	t := time.NewTicker(d + 1) // want `time.NewTicker in deterministic package`
	t.Stop()
	return d
}

// GoodV2 uses an explicitly seeded v2 generator.
func GoodV2(seed uint64) int {
	rng := randv2.New(randv2.NewPCG(seed, seed))
	return rng.IntN(10)
}

// SuppressedV2 documents a deliberate global draw.
func SuppressedV2() uint64 {
	//anchorlint:ignore seedrand fixture draws from the v2 global on purpose
	return randv2.Uint64()
}
