// Package store is the persistent artifact store behind the service
// layer: a content-keyed cache for trained, aligned, and quantized
// embeddings. Artifacts are keyed by everything that determines their
// bits — (algorithm, corpus tag, dimension, seed, precision, scope) —
// so a hit is bitwise identical to a recompute and repeated queries or
// process restarts never retrain.
//
// The store has two tiers plus a dedup layer:
//
//   - an in-process LRU of decoded *embedding.Embedding values (capacity
//     in entries; 0 = unbounded, matching the pre-store runner maps)
//   - an optional disk tier: one gob file per artifact under the cache
//     directory, written atomically (temp file + rename), read back on
//     memory misses and after restarts
//   - singleflight: concurrent requests for the same missing artifact
//     share one computation instead of training the same embedding twice
//
// # On-disk layout
//
// Each persisted artifact is written twice, under
//
//	<dir>/<algo>-<corpus>-d<dim>-s<seed>-b<bits>-<scope>.bin
//	<dir>/<algo>-<corpus>-d<dim>-s<seed>-b<bits>-<scope>.gob
//
// e.g. cache/cbow-wiki17-d64-s1-b32-9f8a3c21e5b70d44.bin. The .bin file is
// the zero-copy binary format (see binary.go): one ReadFile and a header
// check instead of a full gob decode, which is what the serving read path
// loads. The .gob file is the portable gob encoding written by
// embedding.Embedding.Save, kept alongside as the compatibility tier;
// loads prefer .bin and fall back to .gob (so caches written before the
// binary format still hit). The scope field is a hash of the corpus
// generation config, so caches for different corpora never collide; both
// encodings preserve float64 bits exactly, so a disk hit is bitwise
// identical to the original computation.
//
// The disk tier is self-healing: artifacts that fail decode or checksum
// verification are quarantined (renamed to *.quarantined) and recovered
// from the other encoding or a recompute — damaged bytes are never
// served — and Open sweeps stale *.tmp debris left by writers that
// crashed before their atomic rename.
package store

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"anchor/internal/embedding"
	"anchor/internal/faults"
)

// Fault-injection sites on the disk tier (see internal/faults): inert in
// production, armed by seeded plans in chaos tests.
var (
	siteBinRead  = faults.Register("store/bin.read")
	siteBinBytes = faults.Register("store/bin.bytes")
	siteGobRead  = faults.Register("store/gob.read")
	siteWrite    = faults.Register("store/write")
)

// Key identifies one embedding artifact by provenance.
type Key struct {
	// Algo is the training algorithm name ("cbow", "glove", ...).
	Algo string
	// Corpus tags the snapshot ("wiki17", "wiki18", or "wiki18a" for the
	// Procrustes-aligned Wiki'18 variant).
	Corpus string
	// Dim is the embedding dimension.
	Dim int
	// Seed is the training seed.
	Seed int64
	// Bits is the precision in bits per entry (32 = full precision).
	Bits int
	// Scope distinguishes otherwise-identical keys from different
	// settings — canonically a hash of the corpus generation config.
	Scope string
}

// ID returns the filename-safe canonical identity of the key.
func (k Key) ID() string {
	id := fmt.Sprintf("%s-%s-d%d-s%d-b%d-%s", sanitize(k.Algo), sanitize(k.Corpus), k.Dim, k.Seed, k.Bits, sanitize(k.Scope))
	return id
}

// sanitize maps a name onto the filename-safe alphabet so registry names
// chosen by plugins cannot escape the cache directory.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// Stats counts store traffic. Counters are cumulative over the store's
// lifetime and safe to read concurrently.
type Stats struct {
	// MemHits counts artifacts served from the in-process LRU.
	MemHits int64
	// DiskHits counts artifacts decoded from the disk tier.
	DiskHits int64
	// Computes counts invocations of a compute callback — i.e. actual
	// (re)trainings. A warm store serves every request with Computes
	// unchanged.
	Computes int64
	// Evictions counts LRU evictions.
	Evictions int64
	// PersistErrors counts failed best-effort disk writes (the artifact
	// is still served from memory).
	PersistErrors int64
	// Quarantines counts damaged disk artifacts moved aside (renamed to
	// *.quarantined) after failing decode or checksum verification. Each
	// quarantine is followed by fallback to the other encoding or a
	// recompute, never by serving the damaged bytes.
	Quarantines int64
	// ANNDiskHits counts IVF sidecars served from the disk tier, and
	// ANNBuilds counts index (re)builds — a warm disk serves every GetANN
	// with ANNBuilds unchanged.
	ANNDiskHits int64
	ANNBuilds   int64
}

// Store is the two-tier artifact cache. The zero value is not usable;
// construct with Open or Memory.
type Store struct {
	dir string // "" = memory-only
	cap int    // LRU capacity in entries; 0 = unbounded

	mu     sync.Mutex
	items  map[string]*list.Element
	lru    *list.List // front = most recently used
	flight map[string]*flightCall

	memHits, diskHits, computes, evictions, persistErrs, quarantines atomic.Int64
	annDiskHits, annBuilds                                           atomic.Int64
}

type entry struct {
	id  string
	emb *embedding.Embedding
}

type flightCall struct {
	done chan struct{}
	a, b *embedding.Embedding
	err  error
}

// Open returns a store persisting to dir (created if missing) holding at
// most capacity decoded artifacts in memory (capacity <= 0 = unbounded).
// An empty dir yields a memory-only store.
func Open(dir string, capacity int) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sweepStaleTemps(dir)
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Store{
		dir:    dir,
		cap:    capacity,
		items:  map[string]*list.Element{},
		lru:    list.New(),
		flight: map[string]*flightCall{},
	}, nil
}

// Memory returns an unbounded memory-only store — the drop-in replacement
// for the runner's pre-store caching maps.
func Memory() *Store {
	s, _ := Open("", 0)
	return s
}

// Dir returns the disk tier's directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:       s.memHits.Load(),
		DiskHits:      s.diskHits.Load(),
		Computes:      s.computes.Load(),
		Evictions:     s.evictions.Load(),
		PersistErrors: s.persistErrs.Load(),
		Quarantines:   s.quarantines.Load(),
		ANNDiskHits:   s.annDiskHits.Load(),
		ANNBuilds:     s.annBuilds.Load(),
	}
}

// sweepStaleTemps removes temp files left behind by writers that crashed
// between CreateTemp and the rename in writeAtomic. Temps match
// <id>.tmp<digits>; finished artifacts always end in .bin or .gob, so the
// sweep can never touch a live artifact.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if ent.Type().IsRegular() && isStaleTemp(ent.Name()) {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// isStaleTemp reports whether name matches writeAtomic's CreateTemp
// pattern: anything ending in ".tmp" plus os.CreateTemp's numeric suffix.
func isStaleTemp(name string) bool {
	i := strings.LastIndex(name, ".tmp")
	if i < 0 {
		return false
	}
	for _, r := range name[i+len(".tmp"):] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Get returns the artifact under k, computing (and caching) it on a miss.
// persist controls whether a computed artifact is also written to the
// disk tier. Concurrent Gets of the same key share one compute.
func (s *Store) Get(k Key, persist bool, compute func() (*embedding.Embedding, error)) (*embedding.Embedding, error) {
	a, _, err := s.get(k, Key{}, false, persist, func() (*embedding.Embedding, *embedding.Embedding, error) {
		e, err := compute()
		return e, nil, err
	})
	return a, err
}

// GetPair returns the two artifacts under (ka, kb), computing both with
// one callback when either is missing. This is the unit for aligned
// embedding pairs, whose second element is only defined relative to the
// first. persist controls disk-tier writes for computed artifacts.
func (s *Store) GetPair(ka, kb Key, persist bool, compute func() (*embedding.Embedding, *embedding.Embedding, error)) (*embedding.Embedding, *embedding.Embedding, error) {
	return s.get(ka, kb, true, persist, compute)
}

func (s *Store) get(ka, kb Key, pair, persist bool, compute func() (*embedding.Embedding, *embedding.Embedding, error)) (*embedding.Embedding, *embedding.Embedding, error) {
	flightKey := ka.ID()
	if pair {
		flightKey += "|" + kb.ID()
	}
	for {
		s.mu.Lock()
		a := s.lookupLocked(ka.ID())
		var b *embedding.Embedding
		if pair {
			b = s.lookupLocked(kb.ID())
		}
		if a != nil && (!pair || b != nil) {
			s.mu.Unlock()
			s.memHits.Add(1)
			return a, b, nil
		}
		if call, ok := s.flight[flightKey]; ok {
			// Someone else is already filling this slot; share its result
			// (and its error, if the computation failed).
			s.mu.Unlock()
			<-call.done
			if call.err != nil && (errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded)) {
				// The originator's client hung up mid-compute. Its
				// cancellation is not ours: retry with our own compute
				// (and our own context).
				continue
			}
			return call.a, call.b, call.err
		}
		call := &flightCall{done: make(chan struct{})}
		s.flight[flightKey] = call
		s.mu.Unlock()

		call.a, call.b, call.err = s.fill(ka, kb, pair, persist, a, b, compute)
		s.mu.Lock()
		delete(s.flight, flightKey)
		s.mu.Unlock()
		close(call.done)
		return call.a, call.b, call.err
	}
}

// fill resolves the missing elements of the slot from disk or compute and
// publishes them to the memory tier. memA/memB are the elements already
// found in memory (nil if missing).
func (s *Store) fill(ka, kb Key, pair, persist bool, memA, memB *embedding.Embedding, compute func() (*embedding.Embedding, *embedding.Embedding, error)) (*embedding.Embedding, *embedding.Embedding, error) {
	a := memA
	b := memB
	if a == nil {
		a = s.loadDisk(ka)
	}
	if pair && b == nil {
		b = s.loadDisk(kb)
	}
	computed := false
	if a == nil || (pair && b == nil) {
		var err error
		s.computes.Add(1)
		a, b, err = compute()
		if err != nil {
			return nil, nil, err
		}
		if a == nil || (pair && b == nil) {
			return nil, nil, fmt.Errorf("store: compute for %s returned nil artifact", ka.ID())
		}
		computed = true
	}
	if computed && persist && s.dir != "" {
		// Persistence is best-effort: a full or read-only disk must not
		// discard a successfully computed artifact (the memory tier still
		// serves it); failures are only counted in Stats.
		if err := s.saveDisk(ka, a); err != nil {
			s.persistErrs.Add(1)
		}
		if pair {
			if err := s.saveDisk(kb, b); err != nil {
				s.persistErrs.Add(1)
			}
		}
	}
	s.mu.Lock()
	s.putLocked(ka.ID(), a)
	if pair {
		s.putLocked(kb.ID(), b)
	}
	s.mu.Unlock()
	return a, b, nil
}

// lookupLocked returns the memory-tier artifact for id, refreshing its
// LRU position. Caller holds s.mu.
func (s *Store) lookupLocked(id string) *embedding.Embedding {
	el, ok := s.items[id]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).emb
}

// putLocked inserts or refreshes an artifact in the memory tier, evicting
// the least recently used entries beyond capacity. Caller holds s.mu.
func (s *Store) putLocked(id string, e *embedding.Embedding) {
	if el, ok := s.items[id]; ok {
		el.Value.(*entry).emb = e
		s.lru.MoveToFront(el)
		return
	}
	s.items[id] = s.lru.PushFront(&entry{id: id, emb: e})
	if s.cap <= 0 {
		return
	}
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.items, back.Value.(*entry).id)
		s.evictions.Add(1)
	}
}

func (s *Store) path(k Key) string    { return filepath.Join(s.dir, k.ID()+".gob") }
func (s *Store) binPath(k Key) string { return filepath.Join(s.dir, k.ID()+BinaryExt) }

// loadDisk returns the disk-tier artifact for k, or nil when absent or
// unreadable (an unreadable file is treated as a miss and recomputed).
// The zero-copy binary encoding is preferred; the gob file is the
// fallback — for caches written before the binary format existed, and as
// the degradation path when the binary artifact is damaged. A damaged
// file (decode or checksum failure, errors.Is ErrCorrupt) is quarantined
// — renamed aside, counted in Stats — so the bad bytes are never read
// again; a gob hit then rewrites the binary fast path. Either way a disk
// hit is bitwise identical to the original computation or it is not
// served at all.
func (s *Store) loadDisk(k Key) *embedding.Embedding {
	if s.dir == "" {
		return nil
	}
	e, binErr := LoadBinaryFile(s.binPath(k))
	if binErr == nil {
		s.diskHits.Add(1)
		return e
	}
	binCorrupt := errors.Is(binErr, ErrCorrupt)
	if binCorrupt {
		s.quarantine(s.binPath(k))
	}
	if err := faults.Error(siteGobRead); err != nil {
		return nil
	}
	e, gobErr := embedding.LoadFile(s.path(k))
	if gobErr != nil {
		if !errors.Is(gobErr, fs.ErrNotExist) {
			// The gob exists but does not decode: damaged too. Move it
			// aside so the recompute's fresh artifacts start clean.
			s.quarantine(s.path(k))
		}
		return nil
	}
	if binCorrupt || errors.Is(binErr, fs.ErrNotExist) {
		// Repair the fast path (pre-binary cache entry or quarantined
		// binary), best-effort. A transient binary read error skips this:
		// the artifact on disk may be fine.
		if err := s.writeAtomic(k, s.binPath(k), func(w *os.File) error {
			return WriteBinary(w, e, PickKind(e))
		}); err != nil {
			s.persistErrs.Add(1)
		}
	}
	s.diskHits.Add(1)
	return e
}

// quarantine moves a damaged artifact file aside as <path>.quarantined
// (deleting it when the rename fails) so the damaged bytes are never
// decoded again and a repair can take its place.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+".quarantined"); err != nil {
		os.Remove(path)
	}
	s.quarantines.Add(1)
}

// saveDisk persists an artifact atomically in both encodings — the binary
// fast path the read tier prefers and the portable gob: each is written to
// a temporary file in the cache directory and renamed into place, so
// concurrent readers and crashed writers never observe a torn file.
func (s *Store) saveDisk(k Key, e *embedding.Embedding) error {
	if err := s.writeAtomic(k, s.binPath(k), func(w *os.File) error {
		return WriteBinary(w, e, PickKind(e))
	}); err != nil {
		return err
	}
	return s.writeAtomic(k, s.path(k), func(w *os.File) error {
		return e.Save(w)
	})
}

// writeAtomic writes one artifact encoding via temp file + rename.
func (s *Store) writeAtomic(k Key, path string, write func(*os.File) error) error {
	if err := faults.Error(siteWrite); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, k.ID()+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: save %s: %w", k.ID(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
