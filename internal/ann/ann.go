// Package ann implements the deterministic approximate-nearest-neighbor
// index behind the read path's opt-in fast search mode: an IVF (inverted
// file) index over a seeded spherical k-means coarse quantizer.
//
// Exact top-k neighbor search is O(|V|) per query — every query pays one
// dot product per vocabulary row. At the production vocabulary sizes the
// ROADMAP targets (10^6+ words) that linear scan is the wall, both for
// serving reads and for the offline k-NN instability measure, which runs
// a thousand of those queries per embedding pair. IVF buys back the scan:
// rows are clustered into nlist cells around k-means centroids, a query
// scores only the nlist centroids plus the rows of its nprobe nearest
// cells, and the scanned fraction drops from 1 to roughly nprobe/nlist.
//
// The index obeys the repo's bitwise determinism contract
// (docs/ARCHITECTURE.md):
//
//   - Construction is a pure function of (rows, Config). The k-means
//     init samples seeded, assignment ties break toward the lower
//     centroid id, and centroid updates accumulate per-shard partial
//     sums over fixed row ranges folded in ascending shard order via
//     internal/parallel — so the built index is bitwise identical for
//     every worker count (pinned by the golden test in ann_test.go).
//   - Search is exact-consistent: every candidate similarity is computed
//     by the caller's sim callback (one single-accumulator dot product in
//     the serving engine — the same float64 every element of the exact
//     path's blocked kernel produces), and selection uses the exact
//     path's total order (similarity descending, id ascending). Because
//     the inverted lists partition the rows, nprobe = nlist scans every
//     row exactly once and reproduces the exact top-k bitwise; smaller
//     nprobe trades recall for speed but never reorders or perturbs the
//     similarities it does report.
//
// The built index persists as a versioned, CRC-checked, zero-copy sidecar
// next to the artifact's .bin file (format.go; internal/store owns the
// file placement and quarantine-on-corruption policy).
package ann

import (
	"math/rand"
	"sync"

	"anchor/internal/floats"
	"anchor/internal/matrix"
	"anchor/internal/parallel"
)

const (
	// DefaultIters is the k-means iteration budget when Config.Iters is
	// zero. Assignment converges long before centroids do; eight rounds
	// is past the point where list membership stops moving on embedding
	// data, and the loop exits early when an iteration changes nothing.
	DefaultIters = 8

	// buildShards is the fixed shard count of the centroid-update
	// reduction. Like parallel.DefaultShards it is a constant, never
	// derived from the machine's CPU count: the shard boundaries (and so
	// the partial-sum accumulation order) are part of the index's
	// identity, while workers only bound how many shards run at once.
	buildShards = parallel.DefaultShards

	// assignBlock is the number of rows scored per assignment-step matrix
	// product; it bounds the similarity scratch at assignBlock×nlist
	// floats per worker.
	assignBlock = 256
)

// DefaultNList returns the coarse-quantizer cell count used when
// Config.NList is zero: √n (the standard IVF sizing — cell scan cost and
// centroid scan cost balance there), clamped to [1, n].
func DefaultNList(n int) int {
	nlist := 1
	for (nlist+1)*(nlist+1) <= n {
		nlist++
	}
	if nlist > n {
		nlist = n
	}
	if nlist < 1 {
		nlist = 1
	}
	return nlist
}

// DefaultNProbe returns the probe count used when a query leaves nprobe
// zero: ⌈nlist/16⌉. Scanning the nearest ~6% of the cells holds
// recall@10 ≥ 0.95 on clustered (embedding-like) data — pinned by the
// property suite — while clearing the ≥5x speedup floor at |V|=100k,
// where the probed rows are scattered reads against the exact path's
// sequential scan.
func DefaultNProbe(nlist int) int {
	p := (nlist + 15) / 16
	if p < 1 {
		p = 1
	}
	return p
}

// Config parameterizes Build. The zero value selects the defaults; every
// field except Workers is part of the built index's identity (persisted
// in the sidecar header), while Workers only bounds concurrency and never
// changes a bit of the result.
type Config struct {
	// NList is the number of k-means cells (0 = DefaultNList(rows)).
	NList int
	// Iters is the k-means iteration budget (0 = DefaultIters).
	Iters int
	// Seed seeds the centroid initialization.
	Seed int64
	// Workers bounds the goroutines used during construction (<= 0
	// selects all CPUs). The built index is bitwise identical for every
	// value.
	Workers int
}

// withDefaults resolves the zero fields against rows.
func (c Config) withDefaults(rows int) Config {
	if c.NList <= 0 {
		c.NList = DefaultNList(rows)
	}
	if c.NList > rows && rows > 0 {
		c.NList = rows
	}
	if c.Iters <= 0 {
		c.Iters = DefaultIters
	}
	return c
}

// Index is an immutable IVF index over one embedding snapshot's rows. It
// stores the k-means centroids and, per centroid, the inverted list of
// row ids assigned to it. The lists partition [0, Rows): every row
// appears in exactly one list, in ascending id order. An Index is safe
// for concurrent use.
type Index struct {
	// Rows and Dim are the indexed matrix's shape.
	Rows, Dim int
	// NList is the cell count; Seed and Iters record the build
	// configuration (part of the index identity, validated on load).
	NList int
	Seed  int64
	Iters int
	// Centroids holds the NList unit-norm cell centers.
	Centroids *matrix.Dense
	// Starts[c]:Starts[c+1] bound cell c's ids within IDs.
	Starts []uint32
	// IDs concatenates the inverted lists, ascending within each list.
	IDs []int32
}

// List returns cell c's row ids, ascending.
func (ix *Index) List(c int) []int32 {
	return ix.IDs[ix.Starts[c]:ix.Starts[c+1]]
}

// SizeBytes is the index's in-memory footprint (centroids, offsets,
// ids), used for the query engine's byte budget.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.Centroids.Data))*8 + int64(len(ix.Starts))*4 + int64(len(ix.IDs))*4
}

// Build clusters the rows of m (which must be L2-normalized: the
// quantizer maximizes dot products, which is cosine only on unit rows)
// into an IVF index. The result is a pure function of (m, cfg minus
// Workers): bitwise identical for every worker count.
func Build(m *matrix.Dense, cfg Config) *Index {
	n, d := m.Rows, m.Cols
	cfg = cfg.withDefaults(n)
	ix := &Index{Rows: n, Dim: d, NList: cfg.NList, Seed: cfg.Seed, Iters: cfg.Iters}
	if n == 0 {
		ix.Centroids = matrix.NewDense(cfg.NList, d)
		ix.Starts = make([]uint32, cfg.NList+1)
		return ix
	}

	// Seeded init: nlist distinct rows become the starting centroids. The
	// draw sequence is a pure function of (Seed, n, NList).
	cents := matrix.NewDense(cfg.NList, d)
	for c, id := range sampleDistinct(rand.New(rand.NewSource(cfg.Seed)), n, cfg.NList) {
		copy(cents.Row(c), m.Row(id))
	}

	assign := make([]int32, n)
	prev := make([]int32, n)
	assignRows(m, cents, assign, cfg.Workers)
	for it := 0; it < cfg.Iters; it++ {
		updateCentroids(m, cents, assign, cfg.Workers)
		copy(prev, assign)
		assignRows(m, cents, assign, cfg.Workers)
		if unchanged(prev, assign) {
			break
		}
	}

	// Inverted lists: counting sort by cell. Filling in ascending row
	// order leaves every list sorted by id.
	starts := make([]uint32, cfg.NList+1)
	for _, c := range assign {
		starts[c+1]++
	}
	for c := 1; c <= cfg.NList; c++ {
		starts[c] += starts[c-1]
	}
	ids := make([]int32, n)
	next := make([]uint32, cfg.NList)
	copy(next, starts[:cfg.NList])
	for i, c := range assign {
		ids[next[c]] = int32(i)
		next[c]++
	}
	ix.Centroids = cents
	ix.Starts = starts
	ix.IDs = ids
	return ix
}

// sampleDistinct draws k distinct indices uniformly from [0, n) with a
// sparse partial Fisher–Yates shuffle (O(k) memory). The sequence is a
// pure function of (rng state, n, k).
func sampleDistinct(rng *rand.Rand, n, k int) []int {
	alias := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := alias[j]
		if !ok {
			vj = j
		}
		vi, ok := alias[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		alias[j] = vi
	}
	return out
}

// assignRows writes each row's nearest centroid (max dot product, ties
// toward the lower centroid id) into assign. Rows are scored in blocks
// through the blocked MulABT kernel; rows are independent, so banding
// over workers cannot change any assignment.
func assignRows(m, cents *matrix.Dense, assign []int32, workers int) {
	n, d := m.Rows, m.Cols
	nlist := cents.Rows
	type scratch struct{ sims *matrix.Dense }
	pool := sync.Pool{New: func() any {
		return &scratch{sims: matrix.NewDense(assignBlock, nlist)}
	}}
	nBlocks := (n + assignBlock - 1) / assignBlock
	parallel.Run(workers, nBlocks, func(s int) {
		lo := s * assignBlock
		hi := lo + assignBlock
		if hi > n {
			hi = n
		}
		sc := pool.Get().(*scratch)
		defer pool.Put(sc)
		rows := matrix.NewDenseData(hi-lo, d, m.Data[lo*d:hi*d])
		sims := matrix.NewDenseData(hi-lo, nlist, sc.sims.Data[:(hi-lo)*nlist])
		// The outer loop already spans the workers; the kernel runs
		// serially within the block.
		matrix.MulABTInto(sims, rows, cents, 1)
		for r := lo; r < hi; r++ {
			row := sims.Row(r - lo)
			best, bestSim := int32(0), row[0]
			for c := 1; c < nlist; c++ {
				if row[c] > bestSim {
					best, bestSim = int32(c), row[c]
				}
			}
			assign[r] = best
		}
	}, nil)
}

// updateCentroids recomputes each centroid as the unit-normalized mean of
// its assigned rows (spherical k-means); cells that captured no rows keep
// their previous centroid. Partial sums accumulate per shard over fixed
// row ranges and fold in ascending shard order, so the sums — and with
// them every centroid bit — are invariant to the worker count.
func updateCentroids(m, cents *matrix.Dense, assign []int32, workers int) {
	n, d := m.Rows, m.Cols
	nlist := cents.Rows
	bands := parallel.Ranges(n, buildShards)
	sums := make([][]float64, buildShards)
	counts := make([][]int32, buildShards)
	parallel.Run(workers, buildShards, func(s int) {
		sum := make([]float64, nlist*d)
		cnt := make([]int32, nlist)
		for i := bands[s].Lo; i < bands[s].Hi; i++ {
			c := int(assign[i])
			cnt[c]++
			row := m.Row(i)
			dst := sum[c*d : (c+1)*d : (c+1)*d]
			for j, v := range row {
				dst[j] += v
			}
		}
		sums[s] = sum
		counts[s] = cnt
	}, nil)

	total := make([]float64, nlist*d)
	cnt := make([]int32, nlist)
	for s := 0; s < buildShards; s++ { // ascending shard order: fixed
		for k, v := range sums[s] {
			total[k] += v
		}
		for c, v := range counts[s] {
			cnt[c] += v
		}
	}
	for c := 0; c < nlist; c++ {
		if cnt[c] == 0 {
			continue // keep the previous centroid
		}
		dst := cents.Row(c)
		inv := 1 / float64(cnt[c])
		for j := 0; j < d; j++ {
			dst[j] = total[c*d+j] * inv
		}
		floats.Normalize(dst)
	}
}

// unchanged reports whether two assignment vectors are identical.
func unchanged(a, b []int32) bool {
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}
