package matrix

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U * diag(S) * Vᵀ,
// where A is n-by-d (n >= rank), U is n-by-r with orthonormal columns,
// S holds the r positive singular values in descending order, and V is
// d-by-r with orthonormal columns. Singular values below RankTol times
// the largest are dropped, so r <= min(n, d) is the numerical rank.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// RankTol is the relative threshold below which singular values are
// treated as zero when forming the thin SVD.
const RankTol = 1e-12

// gramMinRowFactor gates the Gram fast path: it only engages when
// n >= gramMinRowFactor*d, the tall-thin regime where eigendecomposing
// the d-by-d Gram matrix (O(n·d² + d³) total) beats rotating n-length
// columns every Jacobi sweep (O(sweeps·n·d²)).
const gramMinRowFactor = 3

// gramEigTol is the minimum trusted eigenvalue ratio λ/λ_max for the Gram
// path. Forming AᵀA squares the condition number, so singular values below
// √gramEigTol·σ_max ≈ 1e-5·σ_max drown in roundoff; such spectra fall back
// to the one-sided Jacobi SVD, which works on A directly.
const gramEigTol = 1e-10

// ComputeSVD returns the thin SVD of a. Tall-thin well-conditioned inputs
// (the embedding case: n rows >> d columns) take the fast path through the
// d-by-d Gram matrix eigendecomposition; everything else — square, nearly
// rank-deficient, or ill-conditioned matrices — uses the one-sided Jacobi
// method, which is slower but accurate for small singular values. Both
// paths are deterministic and the input is not modified.
func ComputeSVD(a *Dense) SVD { return ComputeSVDWorkers(a, 0) }

// ComputeSVDWorkers is ComputeSVD with an explicit goroutine budget for
// the matrix products involved (workers <= 0 selects all CPUs). The
// decomposition is identical for every worker count.
func ComputeSVDWorkers(a *Dense, workers int) SVD {
	if a.Rows >= gramMinRowFactor*a.Cols && a.Cols >= 2 {
		if s, ok := gramSVD(a, workers); ok {
			return s
		}
	}
	return jacobiSVD(a)
}

// gramSVD computes the thin SVD of tall-thin a through the eigendecomposition
// AᵀA = V Λ Vᵀ: σ = √λ and U = A·V·diag(1/σ). U's orthonormality is
// controlled by the Jacobi convergence threshold on the Gram matrix
// (uᵢᵀuⱼ = (VᵀGV)ᵢⱼ/(σᵢσⱼ)), not by the conditioning of A, and
// U·diag(σ) = A·V exactly by construction, so reconstruction holds to
// rotation roundoff. What the Gram path cannot deliver is accurate tiny
// singular values; it reports ok=false for spectra spanning more than
// √gramEigTol so the caller falls back to one-sided Jacobi.
func gramSVD(a *Dense, workers int) (SVD, bool) {
	n, d := a.Rows, a.Cols
	g := MulATBWorkers(a, a, workers)
	eig, vecs := jacobiEigSym(g)

	// Sort eigenpairs descending; break exact ties by column index so the
	// ordering is deterministic.
	type pair struct {
		lambda float64
		idx    int
	}
	ps := make([]pair, d)
	for j := 0; j < d; j++ {
		ps[j] = pair{eig[j], j}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].lambda != ps[j].lambda {
			return ps[i].lambda > ps[j].lambda
		}
		return ps[i].idx < ps[j].idx
	})
	lmax := ps[0].lambda
	if lmax <= 0 {
		return SVD{}, false // degenerate; let Jacobi handle shape sanity
	}

	// Thin rank cut at RankTol on σ (i.e. RankTol² on λ), mirroring the
	// Jacobi path. If any retained eigenvalue is below the trust gate the
	// squared spectrum is too ill-conditioned for the Gram path.
	rank := 0
	for rank < d {
		l := ps[rank].lambda
		if l <= 0 || math.Sqrt(l) <= RankTol*math.Sqrt(lmax) {
			break
		}
		if l < gramEigTol*lmax {
			return SVD{}, false
		}
		rank++
	}
	if rank == 0 {
		return SVD{}, false
	}

	sv := make([]float64, rank)
	vOut := NewDense(d, rank)
	for r := 0; r < rank; r++ {
		sv[r] = math.Sqrt(ps[r].lambda)
		j := ps[r].idx
		for i := 0; i < d; i++ {
			vOut.Data[i*rank+r] = vecs.Data[i*d+j]
		}
	}
	u := MulWorkers(a, vOut, workers)
	for i := 0; i < n; i++ {
		row := u.Row(i)
		for r := 0; r < rank; r++ {
			row[r] /= sv[r]
		}
	}
	return SVD{U: u, S: sv, V: vOut}, true
}

// jacobiEigSym diagonalizes the symmetric matrix g with the cyclic Jacobi
// eigenvalue method, returning the eigenvalues and the orthogonal matrix
// of eigenvectors (column j pairs with eigenvalue j): g = V Λ Vᵀ. The
// input is not modified.
func jacobiEigSym(g *Dense) ([]float64, *Dense) {
	d := g.Rows
	w := g.Clone()
	v := Identity(d)

	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := 0
		for p := 0; p < d-1; p++ {
			for q := p + 1; q < d; q++ {
				app := w.At(p, p)
				aqq := w.At(q, q)
				apq := w.At(p, q)
				if apq == 0 || math.Abs(apq) <= eps*math.Sqrt(math.Abs(app)*math.Abs(aqq)) {
					continue
				}
				rotated++
				zeta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// w <- Jᵀ w J: rotate rows p,q then columns p,q.
				for i := 0; i < d; i++ {
					wpi := w.At(p, i)
					wqi := w.At(q, i)
					w.Set(p, i, c*wpi-s*wqi)
					w.Set(q, i, s*wpi+c*wqi)
				}
				for i := 0; i < d; i++ {
					wip := w.At(i, p)
					wiq := w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < d; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
		if rotated == 0 {
			break
		}
	}
	eig := make([]float64, d)
	for j := 0; j < d; j++ {
		eig[j] = w.At(j, j)
	}
	return eig, v
}

// jacobiSVD computes the thin SVD with the one-sided Jacobi method, which
// is simple and numerically robust for any shape or conditioning. It is
// the fallback behind ComputeSVD's Gram fast path. The input is not
// modified.
func jacobiSVD(a *Dense) SVD {
	n, d := a.Rows, a.Cols
	if n < d {
		// Jacobi works column-wise; decompose the transpose and swap U/V.
		s := jacobiSVD(a.T())
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	// Work on a copy: W starts as A; Jacobi rotations orthogonalize its
	// columns. At convergence W = U*diag(S) and V accumulates rotations.
	w := a.Clone()
	v := Identity(d)

	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < d-1; p++ {
			for q := p + 1; q < d; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < n; i++ {
					wp := w.Data[i*d+p]
					wq := w.Data[i*d+q]
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off++
				// Jacobi rotation that zeroes the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < n; i++ {
					wp := w.Data[i*d+p]
					wq := w.Data[i*d+q]
					w.Data[i*d+p] = c*wp - s*wq
					w.Data[i*d+q] = s*wp + c*wq
				}
				for i := 0; i < d; i++ {
					vp := v.Data[i*d+p]
					vq := v.Data[i*d+q]
					v.Data[i*d+p] = c*vp - s*vq
					v.Data[i*d+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Extract singular values as column norms; sort descending.
	type col struct {
		norm float64
		idx  int
	}
	cols := make([]col, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			x := w.Data[i*d+j]
			s += x * x
		}
		cols[j] = col{math.Sqrt(s), j}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].norm > cols[j].norm })

	// Drop numerically zero singular values to form the thin factorization.
	rank := 0
	tol := RankTol * cols[0].norm
	for rank < d && cols[rank].norm > tol && cols[rank].norm > 0 {
		rank++
	}
	if rank == 0 {
		rank = 1 // degenerate all-zero matrix: keep one column for shape sanity
	}

	u := NewDense(n, rank)
	vOut := NewDense(d, rank)
	sv := make([]float64, rank)
	for r := 0; r < rank; r++ {
		j := cols[r].idx
		sv[r] = cols[r].norm
		inv := 0.0
		if cols[r].norm > 0 {
			inv = 1 / cols[r].norm
		}
		for i := 0; i < n; i++ {
			u.Data[i*rank+r] = w.Data[i*d+j] * inv
		}
		for i := 0; i < d; i++ {
			vOut.Data[i*rank+r] = v.Data[i*d+j]
		}
	}
	return SVD{U: u, S: sv, V: vOut}
}

// Reconstruct returns U * diag(S) * Vᵀ, the matrix represented by the SVD.
func (s SVD) Reconstruct() *Dense {
	r := len(s.S)
	us := s.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= s.S[j]
		}
	}
	return MulABT(us, s.V)
}

// Procrustes returns the orthogonal matrix R that minimizes ||X - Y*R||_F
// subject to RᵀR = I (Schönemann 1966). X and Y must have the same shape.
// The solution is R = U*Vᵀ where YᵀX = U*diag(S)*Vᵀ.
func Procrustes(x, y *Dense) *Dense { return ProcrustesWorkers(x, y, 0) }

// ProcrustesWorkers is Procrustes with an explicit goroutine budget
// (workers <= 0 selects all CPUs); the rotation is identical for every
// worker count.
func ProcrustesWorkers(x, y *Dense, workers int) *Dense {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		panic("matrix: Procrustes shape mismatch")
	}
	m := MulATBWorkers(y, x, workers) // YᵀX, d-by-d
	s := ComputeSVDWorkers(m, workers)
	return MulABTWorkers(s.U, s.V, workers)
}

// LeastSquares solves min_w ||A*w - b||₂ via the normal equations with
// Tikhonov-free Cholesky; A must have full column rank. For the small,
// well-conditioned systems anchor solves (d <= a few hundred), this is
// accurate and fast.
func LeastSquares(a *Dense, b []float64) []float64 {
	if a.Rows != len(b) {
		panic("matrix: LeastSquares dimension mismatch")
	}
	ata := MulATB(a, a)
	atb := MulVecT(a, b)
	return SolveSPD(ata, atb)
}

// SolveSPD solves the symmetric positive-definite system m*x = b using
// Cholesky factorization. It panics if m is not positive definite.
func SolveSPD(m *Dense, b []float64) []float64 {
	n := m.Rows
	if m.Cols != n || len(b) != n {
		panic("matrix: SolveSPD dimension mismatch")
	}
	// Cholesky: m = L*Lᵀ.
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					panic("matrix: SolveSPD matrix not positive definite")
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward solve L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back solve Lᵀ*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}
