package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// sharedRunner is reused across tests in this package so embeddings and
// grids are trained once.
var sharedRunner = NewRunner(SmallConfig())

func TestRegistryCoversAllArtifacts(t *testing.T) {
	want := []string{
		"fig1", "fig2", "rule", "table1", "table2", "table3", "fig3",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "table8", "table9", "table10",
		"table11", "table13", "prop1",
	}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(sharedRunner, "fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestGridCachedAndComplete(t *testing.T) {
	g1 := sharedRunner.SentimentGrid()
	g2 := sharedRunner.SentimentGrid()
	if &g1[0] != &g2[0] {
		t.Fatal("grid not cached")
	}
	cfg := sharedRunner.Cfg
	want := len(cfg.Algorithms) * len(cfg.Dims) * len(cfg.Precisions) * len(cfg.Seeds)
	if len(g1) != want {
		t.Fatalf("grid has %d cells, want %d", len(g1), want)
	}
	for _, c := range g1 {
		for _, m := range MeasureNames() {
			if _, ok := c.Measures[m]; !ok {
				t.Fatalf("cell missing measure %s", m)
			}
		}
		for _, task := range cfg.SentimentTasks {
			di, ok := c.DI[task]
			if !ok {
				t.Fatalf("cell missing DI for %s", task)
			}
			if di < 0 || di > 100 {
				t.Fatalf("DI out of range: %v", di)
			}
			if acc := c.Acc[task]; acc < 0.4 {
				t.Fatalf("%s accuracy %.3f at dim %d prec %d suspiciously low", task, acc, c.Dim, c.Prec)
			}
		}
	}
}

func TestFullPrecisionHighDimMoreStableThanOneBitLowDim(t *testing.T) {
	// The paper's central claim at the extremes of the grid.
	cells := AverageOverSeeds(sharedRunner.SentimentGrid())
	cfg := sharedRunner.Cfg
	var lowMem, highMem float64
	n := 0
	for _, c := range cells {
		if c.Algo != "mc" {
			continue
		}
		if c.Dim == cfg.Dims[0] && c.Prec == 1 {
			lowMem = c.DI["sst2"]
			n++
		}
		if c.Dim == cfg.maxDim() && c.Prec == 32 {
			highMem = c.DI["sst2"]
			n++
		}
	}
	if n != 2 {
		t.Fatal("grid extremes not found")
	}
	if highMem >= lowMem {
		t.Fatalf("stability-memory tradeoff violated at extremes: low-mem DI %.2f <= high-mem DI %.2f", lowMem, highMem)
	}
}

func TestAverageOverSeeds(t *testing.T) {
	cells := []Cell{
		{Algo: "mc", Dim: 8, Prec: 1, Seed: 1, Measures: map[string]float64{"m": 1}, DI: map[string]float64{"t": 10}, Acc: map[string]float64{"t": 0.8}},
		{Algo: "mc", Dim: 8, Prec: 1, Seed: 2, Measures: map[string]float64{"m": 3}, DI: map[string]float64{"t": 20}, Acc: map[string]float64{"t": 0.6}},
	}
	avg := AverageOverSeeds(cells)
	if len(avg) != 1 || avg[0].Measures["m"] != 2 || avg[0].DI["t"] != 15 || avg[0].Acc["t"] != 0.7 {
		t.Fatalf("average wrong: %+v", avg)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("v", 1.5)
	tb.AddRow("w", "z")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1.500") {
		t.Fatalf("render output:\n%s", out)
	}
}

// runAndCheck executes an experiment and requires at least one data row.
func runAndCheck(t *testing.T, id string) []*Table {
	t.Helper()
	tables, err := Run(sharedRunner, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	rows := 0
	for _, tb := range tables {
		rows += len(tb.Rows)
	}
	if rows == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	return tables
}

func TestFig1(t *testing.T) { runAndCheck(t, "fig1") }
func TestFig2(t *testing.T) { runAndCheck(t, "fig2") }
func TestRule(t *testing.T) { runAndCheck(t, "rule") }
func TestFig4(t *testing.T) { runAndCheck(t, "fig4") }
func TestFig5(t *testing.T) { runAndCheck(t, "fig5") }
func TestFig6(t *testing.T) { runAndCheck(t, "fig6") }
func TestFig7(t *testing.T) { runAndCheck(t, "fig7") }
func TestFig8(t *testing.T) { runAndCheck(t, "fig8") }
func TestFig9(t *testing.T) { runAndCheck(t, "fig9") }
func TestTable1(t *testing.T) {
	tables := runAndCheck(t, "table1")
	// Every value must be a valid correlation.
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil || v < -1.001 || v > 1.001 {
			t.Fatalf("invalid spearman %q", row[3])
		}
	}
}
func TestTable2(t *testing.T) {
	tables := runAndCheck(t, "table2")
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil || v < 0 || v > 1 {
			t.Fatalf("invalid error rate %q", row[3])
		}
	}
}
func TestTable3(t *testing.T)  { runAndCheck(t, "table3") }
func TestFig3(t *testing.T)    { runAndCheck(t, "fig3") }
func TestFig10(t *testing.T)   { runAndCheck(t, "fig10") }
func TestFig11(t *testing.T)   { runAndCheck(t, "fig11") }
func TestFig12(t *testing.T)   { runAndCheck(t, "fig12") }
func TestFig13(t *testing.T)   { runAndCheck(t, "fig13") }
func TestFig14(t *testing.T)   { runAndCheck(t, "fig14") }
func TestFig15(t *testing.T)   { runAndCheck(t, "fig15") }
func TestTable8(t *testing.T)  { runAndCheck(t, "table8") }
func TestTable9(t *testing.T)  { runAndCheck(t, "table9") }
func TestTable10(t *testing.T) { runAndCheck(t, "table10") }
func TestTable11(t *testing.T) { runAndCheck(t, "table11") }
func TestTable13(t *testing.T) { runAndCheck(t, "table13") }
func TestProp1(t *testing.T) {
	tables := runAndCheck(t, "prop1")
	// Closed form and Monte-Carlo must agree within 20% relative.
	for _, row := range tables[0].Rows {
		closed, _ := strconv.ParseFloat(row[2], 64)
		mc, _ := strconv.ParseFloat(row[3], 64)
		if closed <= 0 {
			t.Fatalf("closed form nonpositive: %v", closed)
		}
		if diff := mc - closed; diff > 0.2*closed+0.02 || diff < -0.2*closed-0.02 {
			t.Fatalf("Prop1 mismatch: closed=%v mc=%v", closed, mc)
		}
	}
}

func TestMonotonicityReport(t *testing.T) {
	tables := MonotonicityReport(sharedRunner)
	if len(tables[0].Rows) == 0 {
		t.Fatal("no monotonicity rows")
	}
	// The average correlation between memory and instability must be
	// negative (more memory, more stable) — the paper's headline finding.
	var sum float64
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if avg := sum / float64(len(tables[0].Rows)); avg >= 0 {
		t.Fatalf("memory-instability correlation should be negative on average, got %.3f", avg)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("v,comma", 1.25)
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"v,comma\",1.250\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
