package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isFloat reports whether t's underlying type is a floating-point or
// complex scalar — the types whose addition is not associative, so
// accumulation order changes the rounded result.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// pkgFunc resolves a call expression to a package-level function and
// returns its package path and name. It returns ok=false for method
// calls, local closures, conversions, and builtins.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// goroutineBodies collects every function literal the file launches as a
// goroutine: `go func(){...}(...)` statements, plus literals handed to a
// method named Go (the errgroup/WaitGroup.Go launch shape).
func goroutineBodies(file *ast.File) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
			}
		}
		return true
	})
	return lits
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi] —
// used to separate a closure's own parameters and locals from variables
// captured from the enclosing function.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= lo && obj.Pos() <= hi
}

// capturedBase resolves the root identifier of an lvalue (x, x.f, x[i],
// x.f[i], ...) and reports whether it names a variable declared outside
// the given span, i.e. captured by a closure spanning [lo, hi].
func capturedBase(info *types.Info, expr ast.Expr, lo, hi token.Pos) (*ast.Ident, bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj, ok := info.Uses[e].(*types.Var)
			if !ok {
				return nil, false
			}
			return e, !declaredWithin(obj, lo, hi)
		case *ast.SelectorExpr:
			// A selection rooted at a package name is a global, not
			// a capture in the closure-partitioning sense; still
			// treat package-level variables as captured state.
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, false
		}
	}
}

// mentionsLocal reports whether expr references any identifier declared
// inside [lo, hi] — e.g. a closure parameter or local. An index built only
// from such identifiers is per-goroutine state, which is the disjoint
// partitioning shape sharedwrite accepts.
func mentionsLocal(info *types.Info, expr ast.Expr, lo, hi token.Pos) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && declaredWithin(obj, lo, hi) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsObj reports whether expr references the given object.
func mentionsObj(info *types.Info, expr ast.Expr, target types.Object) bool {
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}
