// Package dettaint is the interprocedural-taint fixture. The test
// registers Sink below as a taint sink (surface "artifact bytes"), so
// any nondeterministic value reaching a Sink argument — directly,
// through locals, or through a chain of calls — must be flagged, while
// seeded and laundered derivations stay clean.
package dettaint

import (
	"math/rand"
	"os"
	"sort"
	"time"

	"anchor/internal/parallel"
)

// Sink stands in for store.WriteBinary; the test points TaintSinks at it.
func Sink(v any) {}

// helper reads the clock; its summary is tainted via time.Now.
func helper() int64 { return time.Now().UnixNano() }

// noise is only tainted transitively, through helper.
func noise() int64 { return helper() }

// Bad feeds the sink from a direct source, then through a local fed by a
// two-deep call chain.
func Bad() {
	Sink(rand.Intn(256)) // want `nondeterministic value \(from math/rand.Intn\) flows into artifact bytes`
	v := noise()
	Sink(v) // want `from time.Now`
}

// FromEnv ships an environment read.
func FromEnv() {
	Sink(os.Getenv("ANCHOR_DEBUG")) // want `from os.Getenv`
}

// MapOrder appends map values in iteration order and ships the slice.
func MapOrder(m map[string]int) {
	var ks []int
	for _, v := range m {
		ks = append(ks, v)
	}
	Sink(ks) // want `from map iteration order`
}

// SortedKeys sorts after collecting, which restores determinism.
func SortedKeys(m map[string]int) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	Sink(ks)
}

// Seeded derives its randomness from an explicit seed: clean.
func Seeded(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	Sink(rng.Int63())
}

// TimeSeeded hides the clock inside a constructor chain; the taint must
// survive rand.New and rand.NewSource.
func TimeSeeded() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	Sink(rng.Int63()) // want `from time.Now`
}

// Laundered draws from the sanctioned per-shard RNG: ShardRNG cuts
// taint by construction.
func Laundered(seed int64) {
	rng := parallel.ShardRNG(seed, 3, 0)
	Sink(rng.Int63())
}

// Timed reads the clock for pacing but returns a pure value, so callers
// sinking its result stay clean: taint means tainted-return, not mere
// source presence.
func Timed(x int) int {
	start := time.Now()
	_ = start
	return x * 2
}

// CleanCaller sinks Timed's pure result.
func CleanCaller() {
	Sink(Timed(3))
}

// Suppressed documents a deliberate timestamp in the payload.
func Suppressed() {
	//anchorlint:ignore dettaint fixture ships a timestamp on purpose
	Sink(time.Now().UnixNano())
}
