// Command anchorlint is the multichecker driver for the repository's
// determinism lint suite (internal/lint). It loads the named packages,
// runs every selected analyzer, and exits non-zero when any unsuppressed
// error-severity finding remains or the baseline has gone stale:
//
//	anchorlint ./...                      # whole module (the CI gate)
//	anchorlint -rules seedrand ./...      # one rule
//	anchorlint -show-suppressed ./...     # audit documented exceptions
//	anchorlint -format sarif ./...        # SARIF 2.1.0 for code scanning
//	anchorlint -baseline lint-baseline.json ./...
//
// Findings are suppressed in place with
//
//	//anchorlint:ignore <rule> <reason>
//
// on the flagged line or the line directly above it, or carried in a
// -baseline file written once at rule-adoption time (-write-baseline);
// baseline entries that stop matching fail the run, so the baseline only
// ever shrinks. See docs/ARCHITECTURE.md ("Determinism rules") for the
// rule catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"anchor/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	detPkgs := flag.String("det-packages", "", "comma-separated override of the deterministic package list (paths; trailing /... matches a subtree)")
	showSuppressed := flag.Bool("show-suppressed", false, "also print findings covered by //anchorlint:ignore or the baseline, with their reasons")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	format := flag.String("format", "text", `output format: "text" or "sarif" (SARIF 2.1.0)`)
	baselinePath := flag.String("baseline", "", "JSON baseline of accepted findings; entries that no longer match any finding fail the run (default: lint-baseline.json when present)")
	writeBaseline := flag.String("write-baseline", "", "write the current unsuppressed findings to this baseline file and exit")
	severityFlag := flag.String("severity", "", "per-rule severity overrides, e.g. ctxflow=warning,syncguard=error (levels: error, warning, note); only error-severity findings fail the run")
	bench := flag.Bool("bench", false, "print the load+analysis wall time in go-benchmark format (for cmd/benchjson) instead of findings, and exit 0")
	cacheDir := flag.String("cache", lint.CacheDir, "directory for the go-list load cache and per-package fact store (empty disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: anchorlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s [%s] %s\n", a.Name, a.EffectiveSeverity(), a.Doc)
		}
		return
	}
	if *detPkgs != "" {
		lint.DeterministicPackages = strings.Split(*detPkgs, ",")
	}
	lint.CacheDir = *cacheDir
	severityOf, err := severityResolver(*severityFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchorlint:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	if *bench {
		// One line in `go test -bench` format so cmd/benchjson can turn
		// it into BENCH_lint.json from make bench.
		fmt.Printf("BenchmarkAnchorlint 1 %d ns/op\n", elapsed.Nanoseconds())
		return
	}
	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintln(os.Stderr, "anchorlint:", err)
			os.Exit(2)
		}
		return
	}

	var stale []lint.BaselineEntry
	if *baselinePath == "" {
		// Pick up a lint-baseline.json beside the invocation so the bare
		// `anchorlint ./...` gate and local runs agree on the carried
		// findings without every caller repeating the flag.
		if _, err := os.Stat("lint-baseline.json"); err == nil {
			*baselinePath = "lint-baseline.json"
		}
	}
	if *baselinePath != "" {
		baseline, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anchorlint:", err)
			os.Exit(2)
		}
		// Staleness is only provable for entries this invocation actually
		// re-checked: the rule must have run and the file been loaded.
		running := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			running[a.Name] = true
		}
		analyzed := make(map[string]bool)
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				analyzed[lint.RelPath(pkg.Fset.Position(f.Pos()).Filename)] = true
			}
		}
		stale = baseline.Apply(diags, running, analyzed)
	}

	failures := 0
	warnings := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if severityOf(d.Rule) == "error" {
			failures++
		} else {
			warnings++
		}
	}

	switch *format {
	case "sarif":
		out, err := lint.SARIF(diags, severityOf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anchorlint:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	case "text":
		for _, d := range diags {
			switch {
			case d.Suppressed && *showSuppressed:
				fmt.Printf("%s: suppressed [%s]: %s (%s)\n", d.Pos, d.SuppressReason, d.Message, d.Rule)
			case !d.Suppressed && severityOf(d.Rule) != "error":
				fmt.Printf("%s: %s: %s (%s)\n", d.Pos, severityOf(d.Rule), d.Message, d.Rule)
			case !d.Suppressed:
				fmt.Println(d)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "anchorlint: unknown -format %q (have: text, sarif)\n", *format)
		os.Exit(2)
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "anchorlint: stale baseline entry (finding fixed — delete it from the baseline): %s %s: %s\n",
			e.Rule, e.File, e.Message)
	}
	if failures > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "anchorlint: %d finding(s), %d stale baseline entr(ies)\n", failures, len(stale))
		os.Exit(1)
	}
}

// severityResolver parses -severity overrides and returns the effective
// per-rule severity function.
func severityResolver(overrides string) (func(string) string, error) {
	m := make(map[string]string)
	if overrides != "" {
		for _, pair := range strings.Split(overrides, ",") {
			rule, level, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("bad -severity entry %q (want rule=level)", pair)
			}
			switch level {
			case "error", "warning", "note":
			default:
				return nil, fmt.Errorf("bad severity level %q for rule %s (have: error, warning, note)", level, rule)
			}
			if lint.ByName(rule) == nil && rule != "anchorlint" {
				return nil, fmt.Errorf("unknown rule %q in -severity", rule)
			}
			m[rule] = level
		}
	}
	return func(rule string) string {
		if level, ok := m[rule]; ok {
			return level
		}
		return lint.SeverityOf(rule)
	}, nil
}

// selectAnalyzers resolves a comma-separated rule list against the suite.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.All(), nil
	}
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		a := lint.ByName(strings.TrimSpace(name))
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
