package autodiff

import (
	"math"

	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// Fused ops: single tape nodes that replace multi-node compositions on the
// hot paths of the downstream trainers (LSTM steps, CNN pooling, embedding
// lookup). Each op is bitwise identical to the unfused composition named
// in its comment: it performs the same floating-point operations in the
// same per-element order, and its backward pass accumulates into each
// gradient element exactly the values the unfused chain would, in the same
// order. The equality is enforced by tests (fused_test.go), which is what
// lets the fast trainers use fused ops while the retained reference
// trainers use the unfused compositions and still produce bitwise
// identical weights.

// LookupRows stacks rows of src selected by idx into a constant node — the
// fused embedding-lookup/stack op. src is raw storage (typically a frozen
// embedding matrix), not a tape value, so no gradients flow; on arena
// tapes the stacked value is arena-backed, making per-minibatch token
// gathering allocation-free.
func (t *Tape) LookupRows(src *matrix.Dense, idx []int32) *Node {
	v := t.newDense(len(idx), src.Cols)
	for r, id := range idx {
		copy(v.Row(r), src.Row(int(id)))
	}
	n := t.newNode()
	n.Value = v
	return t.add(n)
}

// LSTMPreact returns x·wx + h·wh + b (b broadcast over rows): the packed
// LSTM gate pre-activations, fused from
//
//	AddRowVec(Add(MatMul(x, wx), MatMul(h, wh)), b)
//
// into one node. Forward adds per element in the same order ((x·wx + h·wh)
// + b), and backward feeds each operand the same product the unfused chain
// would (the intermediate grads of the chain are single adds from zero, so
// they equal the output grad bitwise).
func (t *Tape) LSTMPreact(x, h, wx, wh, b *Node) *Node {
	rows, cols := x.Value.Rows, wx.Value.Cols
	v := t.newDense(rows, cols)
	matrix.MulInto(v, x.Value, wx.Value, t.Workers)
	s := t.newDense(rows, cols)
	matrix.MulInto(s, h.Value, wh.Value, t.Workers)
	v.Add(s)
	for i := 0; i < rows; i++ {
		row := v.Row(i)
		brow := b.Value.Row(0)
		for j := range row {
			row[j] += brow[j]
		}
	}
	out := t.newNode()
	out.Value = v
	out.needs = x.needs || h.needs || wx.needs || wh.needs || b.needs
	if out.needs {
		out.back = func(out *Node) {
			tp := out.tape
			if b.needs {
				g := b.ensureGrad().Row(0)
				for i := 0; i < rows; i++ {
					ogr := out.grad.Row(i)
					for j := range g {
						g[j] += ogr[j]
					}
				}
			}
			if h.needs {
				sc := tp.newDense(h.Value.Rows, h.Value.Cols)
				matrix.MulABTInto(sc, out.grad, wh.Value, tp.Workers)
				h.ensureGrad().Add(sc)
			}
			if wh.needs {
				sc := tp.newDense(wh.Value.Rows, wh.Value.Cols)
				matrix.MulATBInto(sc, h.Value, out.grad, tp.Workers)
				wh.ensureGrad().Add(sc)
			}
			if x.needs {
				sc := tp.newDense(x.Value.Rows, x.Value.Cols)
				matrix.MulABTInto(sc, out.grad, wx.Value, tp.Workers)
				x.ensureGrad().Add(sc)
			}
			if wx.needs {
				sc := tp.newDense(wx.Value.Rows, wx.Value.Cols)
				matrix.MulATBInto(sc, x.Value, out.grad, tp.Workers)
				wx.ensureGrad().Add(sc)
			}
		}
	}
	return t.add(out)
}

// GateActivations applies the LSTM gate nonlinearities to packed
// pre-activations (rows-by-4h, gate order [input, forget, cell, output]):
// sigmoid on the input/forget/output thirds, tanh on the cell third. Fused
// from four SliceCols + Sigmoid/Tanh pairs into one node; the derivative
// uses the stored activation (s·(1−s), 1−th²), which is bitwise what the
// unfused ops recompute.
func (t *Tape) GateActivations(gates *Node, h int) *Node {
	rows, cols := gates.Value.Rows, gates.Value.Cols
	if cols != 4*h {
		panic("autodiff: GateActivations expects 4h columns")
	}
	v := t.newDense(rows, cols)
	for i := 0; i < rows; i++ {
		gr := gates.Value.Row(i)
		vr := v.Row(i)
		for j, x := range gr {
			if j >= 2*h && j < 3*h {
				vr[j] = math.Tanh(x)
			} else {
				vr[j] = 1 / (1 + math.Exp(-x))
			}
		}
	}
	return t.unary(gates, v, func(out *Node) {
		g := gates.ensureGrad()
		for i := 0; i < rows; i++ {
			ogr := out.grad.Row(i)
			vr := out.Value.Row(i)
			gr := g.Row(i)
			for j := range gr {
				var d float64
				if j >= 2*h && j < 3*h {
					d = 1 - vr[j]*vr[j]
				} else {
					d = vr[j] * (1 - vr[j])
				}
				gr[j] += ogr[j] * d
			}
		}
	})
}

// LSTMCell computes the cell update from activated gates act (rows-by-4h,
// order [i f g o]) and the previous cell state cPrev (rows-by-h):
//
//	cNew = f ⊙ cPrev + i ⊙ g
//	hNew = o ⊙ tanh(cNew)
//
// fused from Add(Mul(f, cPrev), Mul(i, g)) and Mul(o, Tanh(cNew)). It
// returns two nodes; cNew is recorded first so hNew's backward (which
// feeds cNew's gradient) runs before cNew's, exactly as in the unfused
// chain.
func (t *Tape) LSTMCell(act *Node, h int, cPrev *Node) (hNew, cNew *Node) {
	rows := act.Value.Rows
	if act.Value.Cols != 4*h || cPrev.Value.Rows != rows || cPrev.Value.Cols != h {
		panic("autodiff: LSTMCell shape mismatch")
	}
	cv := t.newDense(rows, h)
	hv := t.newDense(rows, h)
	th := t.newFloats(rows * h)
	for b := 0; b < rows; b++ {
		av := act.Value.Row(b)
		cp := cPrev.Value.Row(b)
		cr := cv.Row(b)
		hr := hv.Row(b)
		for j := 0; j < h; j++ {
			c := av[h+j]*cp[j] + av[j]*av[2*h+j]
			cr[j] = c
			tj := math.Tanh(c)
			th[b*h+j] = tj
			hr[j] = av[3*h+j] * tj
		}
	}
	needs := act.needs || cPrev.needs
	cNode := t.newNode()
	cNode.Value = cv
	cNode.needs = needs
	if needs {
		cNode.back = func(out *Node) {
			for b := 0; b < rows; b++ {
				cg := out.grad.Row(b)
				av := act.Value.Row(b)
				cp := cPrev.Value.Row(b)
				var agr []float64
				if act.needs {
					agr = act.ensureGrad().Row(b)
				}
				var cpg []float64
				if cPrev.needs {
					cpg = cPrev.ensureGrad().Row(b)
				}
				for j := 0; j < h; j++ {
					cgj := cg[j]
					if agr != nil {
						agr[j] += cgj * av[2*h+j] // i ← cg·g
						agr[2*h+j] += cgj * av[j] // g ← cg·i
						agr[h+j] += cgj * cp[j]   // f ← cg·cPrev
					}
					if cpg != nil {
						cpg[j] += cgj * av[h+j] // cPrev ← cg·f
					}
				}
			}
		}
	}
	t.add(cNode)

	hNode := t.newNode()
	hNode.Value = hv
	hNode.needs = needs
	if needs {
		hNode.back = func(out *Node) {
			cg := cNode.ensureGrad()
			for b := 0; b < rows; b++ {
				hg := out.grad.Row(b)
				av := act.Value.Row(b)
				cgr := cg.Row(b)
				var agr []float64
				if act.needs {
					agr = act.ensureGrad().Row(b)
				}
				for j := 0; j < h; j++ {
					tj := th[b*h+j]
					if agr != nil {
						agr[3*h+j] += hg[j] * tj // o ← hg·tanh(c)
					}
					cgr[j] += (hg[j] * av[3*h+j]) * (1 - tj*tj)
				}
			}
		}
	}
	t.add(hNode)
	return hNode, cNode
}

// LSTMStep fuses one full LSTM timestep — pre-activation, gate
// nonlinearities, and cell update — into a single op producing the two
// nodes (hNew, cNew):
//
//	gates = x·wx + h·wh + b
//	[i f g o] = [σ σ tanh σ](gates)
//	cNew = f ⊙ cPrev + i ⊙ g
//	hNew = o ⊙ tanh(cNew)
//
// Unlike the composition LSTMPreact → GateActivations → LSTMCell, the
// pre-activation and activation intermediates here are tape scratch, not
// nodes: the backward pass writes the activation gradient directly
// (each element receives exactly one contribution, so the unfused chain's
// zeroed accumulators collapse to plain stores) and applies the gate
// derivative in place. Bitwise identical to the unfused chain.
func (t *Tape) LSTMStep(x, h, cPrev, wx, wh, b *Node, hid int) (hNew, cNew *Node) {
	rows, h4 := x.Value.Rows, 4*hid
	if wx.Value.Cols != h4 || cPrev.Value.Cols != hid {
		panic("autodiff: LSTMStep shape mismatch")
	}
	// gates = (x·wx + h·wh) + b, accumulated in the unfused chain's order.
	gates := t.newDense(rows, h4)
	matrix.MulInto(gates, x.Value, wx.Value, t.Workers)
	s := t.newDense(rows, h4)
	matrix.MulInto(s, h.Value, wh.Value, t.Workers)
	gates.Add(s)
	act := t.newDense(rows, h4)
	cv := t.newDense(rows, hid)
	hv := t.newDense(rows, hid)
	th := t.newFloats(rows * hid)
	brow := b.Value.Row(0)
	for r := 0; r < rows; r++ {
		gr := gates.Row(r)
		ar := act.Row(r)
		for j, g := range gr {
			g += brow[j]
			if j >= 2*hid && j < 3*hid {
				ar[j] = math.Tanh(g)
			} else {
				ar[j] = 1 / (1 + math.Exp(-g))
			}
		}
		cp := cPrev.Value.Row(r)
		cr := cv.Row(r)
		hr := hv.Row(r)
		for j := 0; j < hid; j++ {
			c := ar[hid+j]*cp[j] + ar[j]*ar[2*hid+j]
			cr[j] = c
			tj := math.Tanh(c)
			th[r*hid+j] = tj
			hr[j] = ar[3*hid+j] * tj
		}
	}

	needs := x.needs || h.needs || cPrev.needs || wx.needs || wh.needs || b.needs
	cNode := t.newNode()
	cNode.Value = cv
	cNode.needs = needs
	hNode := t.newNode()
	hNode.Value = hv
	hNode.needs = needs
	if needs {
		// actGrad is shared between the two backward closures: the h-side
		// writes the output-gate quarter, the c-side the rest, then the
		// c-side (which runs last: cNode precedes hNode on the tape) turns
		// it into the pre-activation gradient and back-propagates it.
		var actGrad *matrix.Dense
		cNode.back = func(out *Node) {
			tp := out.tape
			if actGrad == nil {
				// hNew was never consumed: the output gate receives no
				// gradient (as in the unfused chain's zeroed accumulators).
				actGrad = tp.newZeroDense(rows, h4)
			}
			// Write dgates directly: the activation gradient of each gate
			// times its nonlinearity derivative, the same two products in
			// the same order as the unfused Mul → Sigmoid/Tanh chain. The
			// output-gate quarter was pre-filled by hNode's backward; it
			// still needs its derivative factor.
			for r := 0; r < rows; r++ {
				cg := out.grad.Row(r)
				ar := act.Row(r)
				agr := actGrad.Row(r)
				cp := cPrev.Value.Row(r)
				for j := 0; j < hid; j++ {
					cgj := cg[j]
					i, f, g, o := ar[j], ar[hid+j], ar[2*hid+j], ar[3*hid+j]
					agr[j] = (cgj * g) * (i * (1 - i))         // i ← cg·g · σ'
					agr[2*hid+j] = (cgj * i) * (1 - g*g)       // g ← cg·i · tanh'
					agr[hid+j] = (cgj * cp[j]) * (f * (1 - f)) // f ← cg·cPrev · σ'
					agr[3*hid+j] *= o * (1 - o)                // o: deriv of the pre-filled grad
				}
				if cPrev.needs {
					cpg := cPrev.ensureGrad().Row(r)
					for j := 0; j < hid; j++ {
						cpg[j] += cg[j] * ar[hid+j] // cPrev ← cg·f
					}
				}
			}
			// Pre-activation backward: same products and adds as the
			// unfused MatMul/Add/AddRowVec chain.
			if b.needs {
				g := b.ensureGrad().Row(0)
				for r := 0; r < rows; r++ {
					floats.Add(g, actGrad.Row(r))
				}
			}
			if h.needs {
				sc := tp.newDense(h.Value.Rows, h.Value.Cols)
				matrix.MulABTInto(sc, actGrad, wh.Value, tp.Workers)
				h.ensureGrad().Add(sc)
			}
			if wh.needs {
				sc := tp.newDense(wh.Value.Rows, wh.Value.Cols)
				matrix.MulATBInto(sc, h.Value, actGrad, tp.Workers)
				wh.ensureGrad().Add(sc)
			}
			if x.needs {
				sc := tp.newDense(x.Value.Rows, x.Value.Cols)
				matrix.MulABTInto(sc, actGrad, wx.Value, tp.Workers)
				x.ensureGrad().Add(sc)
			}
			if wx.needs {
				sc := tp.newDense(wx.Value.Rows, wx.Value.Cols)
				matrix.MulATBInto(sc, x.Value, actGrad, tp.Workers)
				wx.ensureGrad().Add(sc)
			}
		}
		hNode.back = func(out *Node) {
			actGrad = out.tape.newDense(rows, h4)
			cg := cNode.ensureGrad()
			for r := 0; r < rows; r++ {
				hg := out.grad.Row(r)
				ar := act.Row(r)
				agr := actGrad.Row(r)
				cgr := cg.Row(r)
				for j := 0; j < hid; j++ {
					tj := th[r*hid+j]
					agr[3*hid+j] = hg[j] * tj // o ← hg·tanh(c)
					cgr[j] += (hg[j] * ar[3*hid+j]) * (1 - tj*tj)
				}
			}
		}
	}
	t.add(cNode)
	t.add(hNode)
	return hNode, cNode
}

// StackBiRows interleaves the per-timestep forward and backward hidden
// states of a bidirectional recurrence into one (T*B)-by-(Cf+Cb) node:
// row t*B+r is [fwd[t] row r, bwd[t] row r]. Fused from the per-timestep
// ConcatCols + final ConcatRows chain (whose intermediate grads are single
// adds from zero), so values and gradients are bitwise identical to it.
func (t *Tape) StackBiRows(fwd, bwd []*Node) *Node {
	steps := len(fwd)
	rows := fwd[0].Value.Rows
	cf, cb := fwd[0].Value.Cols, bwd[0].Value.Cols
	v := t.newDense(steps*rows, cf+cb)
	needs := false
	for i := 0; i < steps; i++ {
		needs = needs || fwd[i].needs || bwd[i].needs
		for r := 0; r < rows; r++ {
			dst := v.Row(i*rows + r)
			copy(dst[:cf], fwd[i].Value.Row(r))
			copy(dst[cf:], bwd[i].Value.Row(r))
		}
	}
	out := t.newNode()
	out.Value = v
	out.needs = needs
	if needs {
		out.back = func(out *Node) {
			for i := 0; i < steps; i++ {
				if fwd[i].needs {
					g := fwd[i].ensureGrad()
					for r := 0; r < rows; r++ {
						floats.Add(g.Row(r), out.grad.Row(i*rows + r)[:cf])
					}
				}
				if bwd[i].needs {
					g := bwd[i].ensureGrad()
					for r := 0; r < rows; r++ {
						floats.Add(g.Row(r), out.grad.Row(i*rows + r)[cf:])
					}
				}
			}
		}
	}
	return t.add(out)
}

// MaxPoolSegRows max-pools every consecutive segment of seg rows into one
// output row: a (n·seg)-by-c input becomes n-by-c, with gradients routed
// to the argmax rows (first row on ties). Fused from the per-segment
// SliceRows + MaxPoolRows + ConcatRows composition used by the batched
// CNN.
func (t *Tape) MaxPoolSegRows(a *Node, seg int) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	if seg <= 0 || rows%seg != 0 {
		panic("autodiff: MaxPoolSegRows segment size must divide rows")
	}
	n := rows / seg
	v := t.newDense(n, cols)
	arg := t.newInts(n * cols)
	for s := 0; s < n; s++ {
		base := s * seg
		for j := 0; j < cols; j++ {
			best, bi := a.Value.At(base, j), base
			for i := base + 1; i < base+seg; i++ {
				if x := a.Value.At(i, j); x > best {
					best, bi = x, i
				}
			}
			v.Set(s, j, best)
			arg[s*cols+j] = bi
		}
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for s := 0; s < n; s++ {
			for j := 0; j < cols; j++ {
				i := arg[s*cols+j]
				g.Set(i, j, g.At(i, j)+out.grad.At(s, j))
			}
		}
	})
}
