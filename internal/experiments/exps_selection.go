package experiments

import (
	"fmt"

	"anchor/internal/core"
	"anchor/internal/selection"
	"anchor/internal/stats"
)

// taskCells collects, for one (task, algo, seed), the candidate list the
// selection experiments operate on: one candidate per dim-prec combination.
func taskCells(cells []Cell, task, algo string, seed int64) []selection.Candidate {
	var out []selection.Candidate
	for _, c := range cells {
		if c.Algo != algo || c.Seed != seed {
			continue
		}
		di, ok := c.DI[task]
		if !ok {
			continue
		}
		out = append(out, selection.Candidate{
			Dim: c.Dim, Precision: c.Prec, Measures: c.Measures, TrueDI: di,
		})
	}
	return out
}

// gridFor returns the grid holding the given task's instability values.
func (r *Runner) gridFor(task string) []Cell {
	if task == "conll2003" {
		return r.NERGrid()
	}
	return r.SentimentGrid()
}

// seedsFor returns the seeds evaluated for the task's grid.
func (r *Runner) seedsFor(task string) []int64 {
	if task == "conll2003" {
		return r.Cfg.NERSeeds
	}
	return r.Cfg.Seeds
}

// table1Tasks returns the headline tasks of Tables 1-3.
func (r *Runner) table1Tasks() []string {
	tasks := []string{}
	for _, t := range r.Cfg.SentimentTasks {
		if t == "sst2" || t == "subj" {
			tasks = append(tasks, t)
		}
	}
	if r.Cfg.NEREnabled {
		tasks = append(tasks, "conll2003")
	}
	return tasks
}

// table9Tasks returns the appendix tasks (MR, MPQA).
func (r *Runner) table9Tasks() []string {
	tasks := []string{}
	for _, t := range r.Cfg.SentimentTasks {
		if t == "mr" || t == "mpqa" {
			tasks = append(tasks, t)
		}
	}
	return tasks
}

// spearmanTable builds a Table 1-style table for the given tasks: the
// Spearman correlation between each measure and the downstream
// disagreement, averaged over seeds.
func (r *Runner) spearmanTable(id string, tasks []string) *Table {
	t := &Table{
		ID: id, Title: "Spearman correlation: measure vs downstream disagreement",
		Columns: []string{"measure", "task", "algo", "spearman"},
	}
	for _, m := range MeasureNames() {
		for _, task := range tasks {
			cells := r.gridFor(task)
			for _, algo := range r.Cfg.Algorithms {
				var sum float64
				n := 0
				for _, seed := range r.seedsFor(task) {
					cands := taskCells(cells, task, algo, seed)
					if len(cands) < 3 {
						continue
					}
					var mv, di []float64
					for _, c := range cands {
						mv = append(mv, c.Measures[m])
						di = append(di, c.TrueDI)
					}
					sum += stats.Spearman(mv, di)
					n++
				}
				if n > 0 {
					t.AddRow(m, task, algo, sum/float64(n))
				}
			}
		}
	}
	return t
}

// Table1 reproduces Table 1 (Spearman correlations on SST-2, Subj,
// CoNLL-2003).
func Table1(r *Runner) []*Table {
	return []*Table{r.spearmanTable("table1", r.table1Tasks())}
}

// selectionErrorTable builds a Table 2-style table.
func (r *Runner) selectionErrorTable(id string, tasks []string, worstCase bool) *Table {
	title := "Pairwise dim-prec selection error"
	if worstCase {
		title = "Worst-case pairwise selection regret (abs % instability)"
	}
	t := &Table{ID: id, Title: title, Columns: []string{"measure", "task", "algo", "value"}}
	for _, m := range MeasureNames() {
		for _, task := range tasks {
			cells := r.gridFor(task)
			for _, algo := range r.Cfg.Algorithms {
				var sum float64
				n := 0
				for _, seed := range r.seedsFor(task) {
					cands := taskCells(cells, task, algo, seed)
					if len(cands) < 2 {
						continue
					}
					if worstCase {
						sum += selection.PairwiseWorstCase(cands, m)
					} else {
						sum += selection.PairwiseError(cands, m)
					}
					n++
				}
				if n > 0 {
					t.AddRow(m, task, algo, sum/float64(n))
				}
			}
		}
	}
	return t
}

// Table2 reproduces Table 2 (pairwise selection error).
func Table2(r *Runner) []*Table {
	return []*Table{r.selectionErrorTable("table2", r.table1Tasks(), false)}
}

// budgetTable builds a Table 3-style table, optionally the worst-case
// variant (Table 11), including the high/low precision baselines.
func (r *Runner) budgetTable(id string, tasks []string, worstCase bool) *Table {
	title := "Avg |DI - oracle| under fixed memory budgets (abs %)"
	if worstCase {
		title = "Worst-case |DI - oracle| under fixed memory budgets (abs %)"
	}
	t := &Table{ID: id, Title: title, Columns: []string{"selector", "task", "algo", "value"}}

	selectors := []struct {
		name string
		sel  selection.Selector
	}{}
	for _, m := range MeasureNames() {
		selectors = append(selectors, struct {
			name string
			sel  selection.Selector
		}{m, selection.MeasureSelector(m)})
	}
	selectors = append(selectors,
		struct {
			name string
			sel  selection.Selector
		}{"high-precision", selection.HighPrecision},
		struct {
			name string
			sel  selection.Selector
		}{"low-precision", selection.LowPrecision},
	)

	for _, s := range selectors {
		for _, task := range tasks {
			cells := r.gridFor(task)
			for _, algo := range r.Cfg.Algorithms {
				var sum float64
				n := 0
				for _, seed := range r.seedsFor(task) {
					cands := taskCells(cells, task, algo, seed)
					if len(cands) < 2 {
						continue
					}
					mean, worst := selection.OracleDistance(cands, s.sel)
					if worstCase {
						sum += worst
					} else {
						sum += mean
					}
					n++
				}
				if n > 0 {
					t.AddRow(s.name, task, algo, sum/float64(n))
				}
			}
		}
	}
	return t
}

// Table3 reproduces Table 3 (distance to oracle under memory budgets).
func Table3(r *Runner) []*Table {
	return []*Table{r.budgetTable("table3", r.table1Tasks(), false)}
}

// Table9 reproduces Appendix Table 9: Tables 1-3 on MR and MPQA.
func Table9(r *Runner) []*Table {
	tasks := r.table9Tasks()
	if len(tasks) == 0 {
		t := &Table{ID: "table9", Title: "MR/MPQA not in configured task set", Columns: []string{"note"}}
		t.AddRow("enable mr/mpqa in Config.SentimentTasks to reproduce Table 9")
		return []*Table{t}
	}
	a := r.spearmanTable("table9", tasks)
	b := r.selectionErrorTable("table9", tasks, false)
	c := r.budgetTable("table9", tasks, false)
	return []*Table{a, b, c}
}

// Table10 reproduces Appendix Table 10 (worst-case pairwise regret).
func Table10(r *Runner) []*Table {
	return []*Table{r.selectionErrorTable("table10", r.table1Tasks(), true)}
}

// Table11 reproduces Appendix Table 11 (worst-case budget distance).
func Table11(r *Runner) []*Table {
	return []*Table{r.budgetTable("table11", r.table1Tasks(), true)}
}

// Table8 reproduces Appendix Table 8: hyperparameter selection for the
// EIS alpha and the k-NN k by average Spearman correlation over tasks.
func Table8(r *Runner) []*Table {
	cells := r.SentimentGrid()
	ids := r.TopWordIDs()

	avgCorr := func(measure core.Measure) float64 {
		var sum float64
		n := 0
		for _, algo := range r.Cfg.Algorithms {
			for _, task := range r.Cfg.SentimentTasks {
				for _, seed := range r.Cfg.Seeds {
					var mv, di []float64
					for _, c := range cells {
						if c.Algo != algo || c.Seed != seed {
							continue
						}
						v, ok := c.DI[task]
						if !ok {
							continue
						}
						q17, q18 := r.QuantizedPair(c.Algo, c.Dim, c.Prec, c.Seed)
						mv = append(mv, measure.Distance(q17.SubRows(ids), q18.SubRows(ids)))
						di = append(di, v)
					}
					if len(mv) >= 3 {
						sum += stats.Spearman(mv, di)
						n++
					}
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	alphaT := &Table{
		ID: "table8", Title: "Average Spearman vs alpha (eigenspace instability)",
		Columns: []string{"alpha", "avg spearman"},
	}
	for _, alpha := range []float64{0, 1, 2, 3, 4} {
		var total, n float64
		for _, algo := range r.Cfg.Algorithms {
			for _, seed := range r.Cfg.Seeds {
				e, et := r.Anchors(algo, seed)
				m := &core.EigenspaceInstability{E: e, ETilde: et, Alpha: alpha, Workers: r.Cfg.Workers}
				// Correlate within this algo/seed only.
				for _, task := range r.Cfg.SentimentTasks {
					var mv, di []float64
					for _, c := range cells {
						if c.Algo != algo || c.Seed != seed {
							continue
						}
						v, ok := c.DI[task]
						if !ok {
							continue
						}
						q17, q18 := r.QuantizedPair(c.Algo, c.Dim, c.Prec, c.Seed)
						mv = append(mv, m.Distance(q17.SubRows(ids), q18.SubRows(ids)))
						di = append(di, v)
					}
					if len(mv) >= 3 {
						total += stats.Spearman(mv, di)
						n++
					}
				}
			}
		}
		if n > 0 {
			alphaT.AddRow(fmt.Sprintf("%.0f", alpha), total/n)
		}
	}

	kT := &Table{
		ID: "table8", Title: "Average Spearman vs k (k-NN measure)",
		Columns: []string{"k", "avg spearman"},
	}
	for _, k := range []int{1, 2, 5, 10, 50} {
		m := &core.KNN{K: k, Queries: r.Cfg.KNNQueries, Seed: 7, Workers: r.Cfg.Workers}
		kT.AddRow(fmt.Sprintf("%d", k), avgCorr(m))
	}
	return []*Table{alphaT, kT}
}

// Fig9 reproduces Appendix Figure 9: per-measure series of (measure value,
// NER instability) pairs with the Spearman correlation, the scatter-plot
// data.
func Fig9(r *Runner) []*Table {
	cells := r.NERGrid()
	var out []*Table
	for _, m := range MeasureNames() {
		t := &Table{
			ID: "fig9", Title: "NER instability vs " + m,
			Columns: []string{"algo", "dim", "prec", "measure value", "%disagreement"},
		}
		for _, algo := range r.Cfg.Algorithms {
			var mv, di []float64
			for _, c := range cells {
				if c.Algo != algo {
					continue
				}
				v, ok := c.DI["conll2003"]
				if !ok {
					continue
				}
				t.AddRow(c.Algo, c.Dim, c.Prec, c.Measures[m], v)
				mv = append(mv, c.Measures[m])
				di = append(di, v)
			}
			if len(mv) >= 3 {
				t.AddRow(algo, "-", "-", "spearman", stats.Spearman(mv, di))
			}
		}
		out = append(out, t)
	}
	return out
}
