// Quickstart: the end-to-end pipeline of the paper through the Service
// API in one file.
//
// It builds a Service over a demo-scale configuration, then for a ladder
// of precisions asks the two questions the paper contrasts: what does the
// eigenspace instability measure predict for the embedding pair (cheap —
// no downstream model), and what is the true downstream instability of a
// sentiment model trained on each embedding (expensive — the ground
// truth). The Service trains each embedding exactly once and caches it in
// the artifact store; every later cell reuses it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"anchor"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600 // keep the demo snappy
	ccfg.NumDocs = 300

	cfg := anchor.SmallExperimentConfig()
	cfg.Corpus = ccfg
	cfg.Dims = []int{32} // one rung: the pair anchors its own measure
	cfg.TopWords = 200
	cfg.KNNQueries = 200

	svc, err := anchor.NewService(
		anchor.WithConfig(cfg),
		anchor.WithProgress(func(stage string) { fmt.Println("  ...", stage) }),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	const dim, seed = 32, 1
	fmt.Printf("CBOW dim=%d on the Wiki'17/Wiki'18 snapshot pair\n", dim)
	fmt.Println("\nprecision  measure value and downstream instability")
	for _, bits := range []int{1, 4, 32} {
		rep, err := svc.MeasureCell(ctx, "cbow", dim, bits, seed)
		if err != nil {
			log.Fatal(err)
		}
		st, err := svc.Stability(ctx, "cbow", "sst2", dim, bits, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d bits   eigenspace-instability=%.4f   SST-2 disagreement=%.2f%%   accuracy=%.3f\n",
			bits, rep.Values["eigenspace-instability"], st.Disagreement, st.Accuracy)
	}
	fmt.Println("\nhigher precision -> lower measure value -> fewer flipped predictions")
}
