package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the analogue of one paper table
// or one figure's data series.
type Table struct {
	ID      string // paper artifact id, e.g. "fig2" or "table1"
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each value with %v for non-strings.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Cell returns the value at (row, col), for tests and downstream checks.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// RenderCSV writes the table in RFC 4180 CSV (header row first), matching
// the artifact appendix's practice of releasing result CSVs.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
