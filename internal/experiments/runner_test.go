package experiments

import (
	"sync/atomic"
	"testing"
)

func TestPairCachedAndAligned(t *testing.T) {
	a17, a18 := sharedRunner.Pair("mc", 8, 1)
	b17, b18 := sharedRunner.Pair("mc", 8, 1)
	if a17 != b17 || a18 != b18 {
		t.Fatal("Pair not cached")
	}
	if a18.Meta.Corpus != "wiki18a" {
		t.Fatalf("wiki18 pair not marked aligned: %q", a18.Meta.Corpus)
	}
	if a17.Dim() != 8 || a18.Dim() != 8 {
		t.Fatal("pair dimension wrong")
	}
}

func TestQuantizedPairPrecisionRecorded(t *testing.T) {
	q17, q18 := sharedRunner.QuantizedPair("mc", 8, 4, 1)
	if q17.Meta.Precision != 4 || q18.Meta.Precision != 4 {
		t.Fatalf("precisions %d/%d", q17.Meta.Precision, q18.Meta.Precision)
	}
	// Quantization returns copies; the cached full-precision pair must be
	// untouched.
	e17, _ := sharedRunner.Pair("mc", 8, 1)
	if e17.Meta.Precision != 32 {
		t.Fatal("cached pair mutated by quantization")
	}
}

func TestAnchorsShape(t *testing.T) {
	e, et := sharedRunner.Anchors("mc", 1)
	if e.Rows() != sharedRunner.Cfg.TopWords || et.Rows() != sharedRunner.Cfg.TopWords {
		t.Fatalf("anchor rows %d/%d, want %d", e.Rows(), et.Rows(), sharedRunner.Cfg.TopWords)
	}
	if e.Dim() != sharedRunner.Cfg.maxDim() {
		t.Fatalf("anchor dim %d, want max dim %d", e.Dim(), sharedRunner.Cfg.maxDim())
	}
}

func TestSentimentDataCachedAndPanicsOnUnknown(t *testing.T) {
	a := sharedRunner.SentimentData("sst2")
	b := sharedRunner.SentimentData("sst2")
	if a != b {
		t.Fatal("dataset not cached")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown task")
		}
	}()
	sharedRunner.SentimentData("imdb")
}

func TestPairUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sharedRunner.Pair("elmo", 8, 1)
}

func TestParallelForCoversAllIndices(t *testing.T) {
	const n = 137
	for _, workers := range []int{0, 1, 3} {
		var hits [n]int32
		parallelFor(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
	// Degenerate sizes.
	parallelFor(0, 0, func(int) { t.Fatal("must not run") })
	ran := false
	parallelFor(0, 1, func(int) { ran = true })
	if !ran {
		t.Fatal("n=1 did not run")
	}
}

func TestConfigLadderHelpers(t *testing.T) {
	cfg := SmallConfig()
	if cfg.midDim() != 16 || cfg.maxDim() != 32 {
		t.Fatalf("mid=%d max=%d", cfg.midDim(), cfg.maxDim())
	}
	bench := BenchConfig()
	repro := ReproConfig()
	if len(bench.Dims) >= len(repro.Dims) {
		t.Fatal("repro ladder should extend bench ladder")
	}
	for _, c := range []Config{cfg, bench, repro} {
		if c.Alpha != 3 || c.K != 5 {
			t.Fatal("paper hyperparameters (alpha=3, k=5) must be defaults")
		}
	}
}

func TestNERGridDisabled(t *testing.T) {
	cfg := SmallConfig()
	cfg.NEREnabled = false
	r := NewRunner(cfg)
	if got := r.NERGrid(); got != nil {
		t.Fatalf("disabled NER grid should be nil, got %d cells", len(got))
	}
}
