package ann

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// clusteredRows builds a unit-normalized row matrix drawn from a seeded
// Gaussian mixture: ncl random unit centers, rows assigned round-robin
// with per-coordinate noise. Trained embeddings are clustered — that is
// why IVF works — so the recall floors are asserted on clustered data;
// isotropic noise (the adversarial case for any partitioning index) is
// exercised separately without a floor.
func clusteredRows(n, d, ncl int, noise float64, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	centers := matrix.NewDense(ncl, d)
	for i := range centers.Data {
		centers.Data[i] = rng.NormFloat64()
	}
	for c := 0; c < ncl; c++ {
		floats.Normalize(centers.Row(c))
	}
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		ctr := centers.Row(i % ncl)
		row := m.Row(i)
		for j := range row {
			row[j] = ctr[j] + noise*rng.NormFloat64()
		}
		floats.Normalize(row)
	}
	return m
}

// exactTopK is the brute-force oracle: every candidate scored with the
// same single-accumulator dot the searcher's sim callback uses, ranked
// by similarity descending with id-ascending tie-breaks.
func exactTopK(m *matrix.Dense, q []float64, k, self int) []int32 {
	ids := make([]int32, 0, m.Rows)
	sims := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		if i == self {
			continue
		}
		ids = append(ids, int32(i))
		sims[i] = floats.Dot(q, m.Row(i))
	}
	sort.Slice(ids, func(a, b int) bool {
		if sims[ids[a]] != sims[ids[b]] {
			return sims[ids[a]] > sims[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func overlap(a, b []int32) int {
	shared := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				shared++
				break
			}
		}
	}
	return shared
}

func sameIndex(a, b *Index) bool {
	if a.Rows != b.Rows || a.Dim != b.Dim || a.NList != b.NList ||
		a.Seed != b.Seed || a.Iters != b.Iters ||
		len(a.Centroids.Data) != len(b.Centroids.Data) ||
		len(a.Starts) != len(b.Starts) || len(a.IDs) != len(b.IDs) {
		return false
	}
	for i, v := range a.Centroids.Data {
		if math.Float64bits(v) != math.Float64bits(b.Centroids.Data[i]) {
			return false
		}
	}
	for i, v := range a.Starts {
		if b.Starts[i] != v {
			return false
		}
	}
	for i, v := range a.IDs {
		if b.IDs[i] != v {
			return false
		}
	}
	return true
}

// TestBuildWorkerInvarianceGolden pins the determinism contract's load-
// bearing claim: construction is bitwise identical across worker counts.
// Workers=1 is the golden reference; 2, 4, and 8 must reproduce every
// centroid bit and every list byte.
func TestBuildWorkerInvarianceGolden(t *testing.T) {
	m := clusteredRows(3000, 24, 40, 0.1, 11)
	golden := Build(m, Config{Seed: 5, Workers: 1})
	for _, w := range []int{2, 4, 8} {
		got := Build(m, Config{Seed: 5, Workers: w})
		if !sameIndex(golden, got) {
			t.Fatalf("workers=%d: index differs bitwise from workers=1 golden", w)
		}
	}
}

// TestBuildPartitions checks the structural invariants every other
// component assumes: the inverted lists partition [0, rows) and each
// list is ascending; centroids are unit-norm (or untouched empties).
func TestBuildPartitions(t *testing.T) {
	m := clusteredRows(1777, 12, 20, 0.1, 3)
	ix := Build(m, Config{Seed: 9})
	if ix.Starts[0] != 0 || int(ix.Starts[ix.NList]) != ix.Rows {
		t.Fatalf("starts span [%d, %d), want [0, %d)", ix.Starts[0], ix.Starts[ix.NList], ix.Rows)
	}
	seen := make([]bool, ix.Rows)
	for c := 0; c < ix.NList; c++ {
		list := ix.List(c)
		for i, id := range list {
			if id < 0 || int(id) >= ix.Rows || seen[id] {
				t.Fatalf("cell %d id %d invalid or duplicated", c, id)
			}
			if i > 0 && list[i-1] >= id {
				t.Fatalf("cell %d not ascending at %d", c, i)
			}
			seen[id] = true
		}
	}
	for _, ok := range seen {
		if !ok {
			t.Fatal("lists do not cover every row")
		}
	}
}

// TestSearchExactAtFullProbe asserts the golden equivalence the serving
// path's opt-in mode rests on: nprobe = nlist scans every row exactly
// once under the exact path's total order, so the returned ids (and with
// them the similarities, which come from the same callback) match the
// brute-force oracle bitwise — on clustered and on isotropic data.
func TestSearchExactAtFullProbe(t *testing.T) {
	fixtures := map[string]*matrix.Dense{
		"clustered": clusteredRows(1500, 16, 24, 0.08, 21),
		"isotropic": clusteredRows(900, 16, 900, 1, 22), // every row its own "cluster": pure noise
	}
	for name, m := range fixtures {
		ix := Build(m, Config{Seed: 1})
		s := NewSearcher(ix)
		out := make([]int32, 10)
		for qi := 0; qi < m.Rows; qi += 37 {
			q := m.Row(qi)
			got := s.Search(q, 10, ix.NList, qi, func(id int32) float64 {
				return floats.Dot(q, m.Row(int(id)))
			}, out)
			want := exactTopK(m, q, 10, qi)
			if len(got) != len(want) {
				t.Fatalf("%s q=%d: got %d ids, want %d", name, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s q=%d rank %d: got id %d, want %d", name, qi, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSearchRecallTable asserts the recall@10 ≥ 0.95 floor at the
// default nprobe across dimensions and seeds on clustered fixtures.
func TestSearchRecallTable(t *testing.T) {
	cases := []struct {
		n, d, ncl int
		seed      int64
	}{
		{1500, 16, 24, 1},
		{1500, 16, 24, 2},
		{2000, 25, 30, 3},
		{3000, 50, 40, 4},
		{1200, 100, 16, 5},
	}
	for _, tc := range cases {
		m := clusteredRows(tc.n, tc.d, tc.ncl, 0.08, tc.seed)
		r := recallAt10(m, Config{Seed: tc.seed}, 0)
		if r < 0.95 {
			t.Errorf("n=%d d=%d ncl=%d seed=%d: recall@10 = %.3f < 0.95",
				tc.n, tc.d, tc.ncl, tc.seed, r)
		}
	}
}

// recallAt10 builds an index over m and returns mean recall@10 at the
// given nprobe (0 = default) over a fixed query stride.
func recallAt10(m *matrix.Dense, cfg Config, nprobe int) float64 {
	ix := Build(m, cfg)
	s := NewSearcher(ix)
	out := make([]int32, 10)
	hits, total := 0, 0
	for qi := 0; qi < m.Rows; qi += 29 {
		q := m.Row(qi)
		got := s.Search(q, 10, nprobe, qi, func(id int32) float64 {
			return floats.Dot(q, m.Row(int(id)))
		}, out)
		want := exactTopK(m, q, 10, qi)
		hits += overlap(got, want)
		total += len(want)
	}
	return float64(hits) / float64(total)
}

// TestSearchProperties drives the two tentpole properties through
// testing/quick's seed generator: on any clustered fixture, the default
// nprobe holds the recall floor, and full probe is id-exact against the
// oracle.
func TestSearchProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("property suite builds many indexes")
	}
	prop := func(seed int64) bool {
		m := clusteredRows(1200, 12, 16, 0.08, seed)
		if recallAt10(m, Config{Seed: seed}, 0) < 0.95 {
			t.Logf("seed=%d: recall floor violated", seed)
			return false
		}
		ix := Build(m, Config{Seed: seed})
		s := NewSearcher(ix)
		out := make([]int32, 10)
		for qi := 0; qi < m.Rows; qi += 101 {
			q := m.Row(qi)
			got := s.Search(q, 10, ix.NList, qi, func(id int32) float64 {
				return floats.Dot(q, m.Row(int(id)))
			}, out)
			want := exactTopK(m, q, 10, qi)
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed=%d q=%d rank %d: %d != %d", seed, qi, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchEdgeCases covers the empty index, k <= 0, undersized cells,
// and self-exclusion.
func TestSearchEdgeCases(t *testing.T) {
	empty := Build(matrix.NewDense(0, 4), Config{})
	s := NewSearcher(empty)
	if got := s.Search([]float64{1, 0, 0, 0}, 5, 0, -1, nil, make([]int32, 5)); len(got) != 0 {
		t.Fatalf("empty index returned %d ids", len(got))
	}

	m := clusteredRows(7, 4, 2, 0.05, 1)
	ix := Build(m, Config{NList: 3, Seed: 2})
	s = NewSearcher(ix)
	q := m.Row(0)
	sim := func(id int32) float64 { return floats.Dot(q, m.Row(int(id))) }
	if got := s.Search(q, 0, ix.NList, 0, sim, nil); len(got) != 0 {
		t.Fatalf("k=0 returned %d ids", len(got))
	}
	got := s.Search(q, 20, ix.NList, 0, sim, make([]int32, 20))
	if len(got) != 6 { // 7 rows minus self
		t.Fatalf("k beyond rows returned %d ids, want 6", len(got))
	}
	for _, id := range got {
		if id == 0 {
			t.Fatal("self id not excluded")
		}
	}
}

func TestDefaults(t *testing.T) {
	nlistCases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {4, 2}, {10, 3}, {99, 9}, {100, 10}, {10000, 100}, {100000, 316},
	}
	for _, tc := range nlistCases {
		if got := DefaultNList(tc.n); got != tc.want {
			t.Errorf("DefaultNList(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	nprobeCases := []struct{ nlist, want int }{
		{1, 1}, {15, 1}, {16, 1}, {17, 2}, {100, 7}, {316, 20},
	}
	for _, tc := range nprobeCases {
		if got := DefaultNProbe(tc.nlist); got != tc.want {
			t.Errorf("DefaultNProbe(%d) = %d, want %d", tc.nlist, got, tc.want)
		}
	}
	// NList above rows clamps; SizeBytes accounts all three payloads.
	ix := Build(clusteredRows(5, 4, 2, 0.1, 1), Config{NList: 50})
	if ix.NList != 5 {
		t.Fatalf("NList not clamped to rows: %d", ix.NList)
	}
	if want := int64(5*4*8 + 6*4 + 5*4); ix.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", ix.SizeBytes(), want)
	}
}
