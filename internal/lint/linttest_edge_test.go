package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

// TestLinttestEdgeCases runs the harness fixture, which exercises the
// corners of the expectation grammar: one comment carrying two patterns
// for two findings on the same line, a block-comment expectation, an
// ignore directive naming an unknown rule (its pseudo-rule finding is
// claimed from inside the directive text), and a stale directive whose
// hygiene finding is claimed the same way.
func TestLinttestEdgeCases(t *testing.T) {
	old := lint.DeterministicPackages
	lint.DeterministicPackages = append(old[:len(old):len(old)], "anchorlint.test/harness")
	defer func() { lint.DeterministicPackages = old }()
	linttest.Run(t, lint.SeedRand, "testdata/src/harness", "anchorlint.test/harness")
}
