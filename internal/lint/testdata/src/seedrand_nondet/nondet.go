// Package nondet holds the seedrand negative fixture: this package is not
// registered as deterministic, so the same global-source draws that fail
// the seedrand fixture must produce no findings here.
package nondet

import (
	"math/rand"
	"time"
)

// Sample may use ambient randomness and the clock: this package is
// outside the determinism contract.
func Sample() float64 {
	return rand.Float64() * float64(time.Now().Unix()%7)
}
