// Selection demonstrates the practical payoff of the eigenspace
// instability measure (Section 5.2): choosing dimension-precision
// parameters under a memory budget WITHOUT training downstream models,
// then checking the choice against the downstream-trained oracle.
//
//	go run ./examples/selection
package main

import (
	"fmt"
	"log"

	"anchor"
	"anchor/internal/tasks/sentiment"
)

func main() {
	ccfg := anchor.DefaultCorpusConfig()
	ccfg.VocabSize = 600
	ccfg.NumDocs = 300
	c17 := anchor.GenerateCorpus(ccfg, anchor.Wiki17)
	c18 := anchor.GenerateCorpus(ccfg, anchor.Wiki18)
	ds := sentiment.Generate(c17, ccfg, sentiment.SST2Params())
	top := c17.TopWords(200)

	const seed = 1
	dims := []int{8, 16, 32, 64}
	precisions := []int{1, 2, 4, 8, 32}

	// Train the dimension ladder once; the largest pair anchors the measure.
	type pair struct{ e17, e18 *anchor.Embedding }
	pairs := map[int]pair{}
	for _, dim := range dims {
		e17, err := anchor.TrainEmbedding("mc", c17, dim, seed)
		if err != nil {
			log.Fatal(err)
		}
		e18, err := anchor.TrainEmbedding("mc", c18, dim, seed)
		if err != nil {
			log.Fatal(err)
		}
		e18.AlignTo(e17)
		e18.Meta.Corpus = "wiki18a"
		pairs[dim] = pair{e17, e18}
	}
	big := pairs[dims[len(dims)-1]]
	eis := anchor.NewEigenspaceInstability(big.e17.SubRows(top), big.e18.SubRows(top))

	fmt.Println("evaluating the dim x precision grid (measure is cheap; DI trains models)...")
	var cands []anchor.Candidate
	for _, dim := range dims {
		for _, bits := range precisions {
			p := pairs[dim]
			q17, q18 := anchor.QuantizePair(p.e17, p.e18, bits)
			val := eis.Distance(q17.SubRows(top), q18.SubRows(top))

			cfg := sentiment.DefaultLinearBOWConfig(seed)
			m17 := sentiment.TrainLinearBOW(q17, ds, cfg)
			m18 := sentiment.TrainLinearBOW(q18, ds, cfg)
			di := anchor.PredictionDisagreementPct(m17.Predict(ds.Test), m18.Predict(ds.Test))
			cands = append(cands, anchor.Candidate{
				Dim: dim, Precision: bits,
				Measures: map[string]float64{"eigenspace-instability": val},
				TrueDI:   di,
			})
		}
	}

	pairErr := anchor.PairwiseSelectionError(cands, "eigenspace-instability")
	mean, worst := anchor.SelectUnderBudget(cands, "eigenspace-instability")
	fmt.Printf("\npairwise selection error:      %.3f (0 = always picks the more stable config)\n", pairErr)
	fmt.Printf("budget selection vs oracle:    mean %.2f%%, worst %.2f%% extra instability\n", mean, worst)
	fmt.Println("\nmemory-budget groups (same dim x bits product, different tradeoffs):")
	fmt.Println("  the measure ranks them without ever training a downstream model")
}
