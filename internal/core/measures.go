// Package core implements the paper's primary contribution: the
// eigenspace instability measure (Definition 2) with its theoretical link
// to downstream prediction disagreement (Proposition 1), alongside the four
// baseline embedding distance measures it is evaluated against (Section
// 2.4) and the downstream instability definition itself (Definition 1).
//
// All measures follow the convention "larger value = predicted to be more
// unstable downstream", so the paper's "1 − k-NN" and "1 − eigenspace
// overlap" reporting convention is built in.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"anchor/internal/embedding"
	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// Measure is an embedding distance measure: given a pair of embeddings
// over the same vocabulary it returns a scalar that is intended to predict
// the downstream instability of the pair (larger = more unstable).
type Measure interface {
	Name() string
	Distance(x, xt *embedding.Embedding) float64
}

// svdCache memoizes thin SVDs keyed by embedding identity. The selection
// experiments evaluate several measures over many pairs that share
// embeddings, and the SVD dominates their cost.
type svdCache struct {
	mu sync.Mutex
	m  map[string]matrix.SVD
}

var sharedSVDs = &svdCache{m: make(map[string]matrix.SVD)}

// cacheKey returns a unique identity for the embedding, or "" if the
// embedding carries no provenance (ad-hoc matrices are never cached).
// The shape is part of the key because row-sliced sub-embeddings share
// their parent's Meta.
func cacheKey(e *embedding.Embedding) string {
	if e.Meta.Algorithm == "" {
		return ""
	}
	return fmt.Sprintf("%s@%dx%d", e.Meta.String(), e.Rows(), e.Dim())
}

func thinSVD(e *embedding.Embedding) matrix.SVD {
	key := cacheKey(e)
	if key == "" {
		return matrix.ComputeSVD(e.Vectors)
	}
	sharedSVDs.mu.Lock()
	s, ok := sharedSVDs.m[key]
	sharedSVDs.mu.Unlock()
	if ok {
		return s
	}
	s = matrix.ComputeSVD(e.Vectors)
	sharedSVDs.mu.Lock()
	sharedSVDs.m[key] = s
	sharedSVDs.mu.Unlock()
	return s
}

// ResetSVDCache clears the internal SVD cache (for tests and long-running
// processes that retrain embeddings under identical metadata).
func ResetSVDCache() {
	sharedSVDs.mu.Lock()
	sharedSVDs.m = make(map[string]matrix.SVD)
	sharedSVDs.mu.Unlock()
}

// KNN is the k-nearest-neighbor instability measure used in prior work on
// intrinsic embedding stability (Hellrich & Hahn 2016; Antoniak & Mimno
// 2018; Wendlandt et al. 2018). Distance returns 1 − (average neighbor
// overlap) over Queries randomly sampled query words.
type KNN struct {
	K       int
	Queries int
	Seed    int64
}

// NewKNN returns the paper's configuration: k=5 (chosen in Appendix D.3),
// 1000 query words.
func NewKNN() *KNN { return &KNN{K: 5, Queries: 1000, Seed: 7} }

// Name implements Measure.
func (m *KNN) Name() string { return "1-knn" }

// Distance implements Measure.
func (m *KNN) Distance(x, xt *embedding.Embedding) float64 {
	n := x.Rows()
	if xt.Rows() != n {
		panic("core: KNN row mismatch")
	}
	rng := rand.New(rand.NewSource(m.Seed))
	q := m.Queries
	if q > n {
		q = n
	}
	queries := rng.Perm(n)[:q]

	var overlap float64
	for _, qi := range queries {
		na := nearestK(x, qi, m.K)
		nb := nearestK(xt, qi, m.K)
		inA := make(map[int]bool, len(na))
		for _, w := range na {
			inA[w] = true
		}
		shared := 0
		for _, w := range nb {
			if inA[w] {
				shared++
			}
		}
		overlap += float64(shared) / float64(m.K)
	}
	return 1 - overlap/float64(len(queries))
}

// nearestK returns the indices of the k words most similar to query by
// cosine similarity, excluding the query itself.
func nearestK(e *embedding.Embedding, query, k int) []int {
	type cand struct {
		idx int
		sim float64
	}
	qv := e.Vector(query)
	cands := make([]cand, 0, e.Rows()-1)
	for i := 0; i < e.Rows(); i++ {
		if i == query {
			continue
		}
		cands = append(cands, cand{i, floats.CosineSim(qv, e.Vector(i))})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sim != cands[b].sim {
			return cands[a].sim > cands[b].sim
		}
		return cands[a].idx < cands[b].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// SemanticDisplacement measures the average cosine distance between
// aligned word vectors after solving orthogonal Procrustes (Hamilton et
// al. 2016): (1/n) Σ cos-dist(X_i, (X̃R)_i).
type SemanticDisplacement struct{}

// Name implements Measure.
func (SemanticDisplacement) Name() string { return "semantic-displacement" }

// Distance implements Measure.
func (SemanticDisplacement) Distance(x, xt *embedding.Embedding) float64 {
	if x.Rows() != xt.Rows() || x.Dim() != xt.Dim() {
		panic("core: SemanticDisplacement shape mismatch")
	}
	r := matrix.Procrustes(x.Vectors, xt.Vectors)
	aligned := matrix.Mul(xt.Vectors, r)
	var sum float64
	for i := 0; i < x.Rows(); i++ {
		sum += floats.CosineDist(x.Vector(i), aligned.Row(i))
	}
	return sum / float64(x.Rows())
}

// PIPLoss is the pairwise inner product loss ‖XXᵀ − X̃X̃ᵀ‖_F (Yin & Shen
// 2018), computed without materializing the n-by-n Gram matrices via
// ‖XXᵀ − X̃X̃ᵀ‖²_F = ‖XᵀX‖²_F + ‖X̃ᵀX̃‖²_F − 2‖XᵀX̃‖²_F.
type PIPLoss struct{}

// Name implements Measure.
func (PIPLoss) Name() string { return "pip-loss" }

// Distance implements Measure.
func (PIPLoss) Distance(x, xt *embedding.Embedding) float64 {
	if x.Rows() != xt.Rows() {
		panic("core: PIPLoss row mismatch")
	}
	gx := matrix.MulATB(x.Vectors, x.Vectors)
	gt := matrix.MulATB(xt.Vectors, xt.Vectors)
	cross := matrix.MulATB(x.Vectors, xt.Vectors)
	fx, ft, fc := gx.FrobNorm(), gt.FrobNorm(), cross.FrobNorm()
	v := fx*fx + ft*ft - 2*fc*fc
	if v < 0 {
		v = 0 // guard against cancellation for near-identical inputs
	}
	return math.Sqrt(v)
}

// EigenspaceOverlap is 1 minus the eigenspace overlap score
// (1/max(d,d̃))‖UᵀŨ‖²_F of May et al. 2019, so that larger means more
// unstable like every other measure here.
type EigenspaceOverlap struct{}

// Name implements Measure.
func (EigenspaceOverlap) Name() string { return "1-eigenspace-overlap" }

// Distance implements Measure.
func (EigenspaceOverlap) Distance(x, xt *embedding.Embedding) float64 {
	if x.Rows() != xt.Rows() {
		panic("core: EigenspaceOverlap row mismatch")
	}
	u := thinSVD(x).U
	ut := thinSVD(xt).U
	cross := matrix.MulATB(u, ut)
	f := cross.FrobNorm()
	denom := float64(u.Cols)
	if ut.Cols > u.Cols {
		denom = float64(ut.Cols)
	}
	return 1 - f*f/denom
}

// EigenspaceInstability is the paper's new measure (Definition 2): the
// normalized trace tr((UUᵀ + ŨŨᵀ − 2ŨŨᵀUUᵀ)Σ) / tr(Σ) with
// Σ = (EEᵀ)^α + (ẼẼᵀ)^α built from two fixed high-quality anchor
// embeddings E and Ẽ (the paper uses the highest-dimensional
// full-precision Wiki'17 and Wiki'18 embeddings). Distance evaluates it
// with the memory-efficient Appendix B.1 factorization, never forming an
// n-by-n matrix.
type EigenspaceInstability struct {
	// E and ETilde are the anchor embeddings defining Σ.
	E, ETilde *embedding.Embedding
	// Alpha weights high-eigenvalue directions (the paper selects α=3).
	Alpha float64
}

// NewEigenspaceInstability returns the measure with the paper's α=3.
func NewEigenspaceInstability(e, eTilde *embedding.Embedding) *EigenspaceInstability {
	return &EigenspaceInstability{E: e, ETilde: eTilde, Alpha: 3}
}

// Name implements Measure.
func (m *EigenspaceInstability) Name() string { return "eigenspace-instability" }

// Distance implements Measure.
func (m *EigenspaceInstability) Distance(x, xt *embedding.Embedding) float64 {
	n := x.Rows()
	if xt.Rows() != n || m.E.Rows() != n || m.ETilde.Rows() != n {
		panic("core: EigenspaceInstability row mismatch")
	}
	u := thinSVD(x).U
	ut := thinSVD(xt).U

	num := 0.0
	den := 0.0
	for _, anchor := range []*embedding.Embedding{m.E, m.ETilde} {
		s := thinSVD(anchor)
		// Scale V's columns by σ^α: VRα has shape n-by-r.
		vra := s.U.Clone() // left singular vectors of the anchor (n-by-r)
		for i := 0; i < vra.Rows; i++ {
			row := vra.Row(i)
			for j := range row {
				row[j] *= math.Pow(s.S[j], m.Alpha)
			}
		}
		uv := matrix.MulATB(u, vra)   // Uᵀ V Rα  (d-by-r)
		utv := matrix.MulATB(ut, vra) // Ũᵀ V Rα  (k-by-r)
		uut := matrix.MulATB(ut, u)   // Ũᵀ U    (k-by-d)

		fuv := uv.FrobNorm()
		futv := utv.FrobNorm()
		num += fuv*fuv + futv*futv

		// −2 tr(Rα Vᵀ Ũ Ũᵀ U Uᵀ V Rα) = −2 tr((Ũᵀ V Rα)ᵀ (ŨᵀU)(Uᵀ V Rα)).
		mid := matrix.Mul(uut, uv) // k-by-r
		var tr float64
		for i := range mid.Data {
			tr += mid.Data[i] * utv.Data[i]
		}
		num -= 2 * tr

		for _, sv := range s.S {
			den += math.Pow(sv, 2*m.Alpha)
		}
	}
	if den == 0 {
		return 0
	}
	v := num / den
	if v < 0 {
		v = 0 // numerical guard: the trace is provably nonnegative
	}
	return v
}

// NaiveDistance computes the eigenspace instability measure directly from
// Definition 2, materializing the n-by-n matrices. It exists to validate
// the efficient implementation and for small-n experimentation.
func (m *EigenspaceInstability) NaiveDistance(x, xt *embedding.Embedding) float64 {
	n := x.Rows()
	u := thinSVD(x).U
	ut := thinSVD(xt).U

	sigma := matrix.NewDense(n, n)
	for _, anchor := range []*embedding.Embedding{m.E, m.ETilde} {
		s := thinSVD(anchor)
		va := s.U.Clone()
		for i := 0; i < va.Rows; i++ {
			row := va.Row(i)
			for j := range row {
				row[j] *= math.Pow(s.S[j], m.Alpha)
			}
		}
		sigma.Add(matrix.MulABT(va, va))
	}

	uut := matrix.MulABT(u, u)
	utut := matrix.MulABT(ut, ut)
	inner := uut.Clone().Add(utut).Sub(matrix.Mul(utut, uut).Scale(2))
	prod := matrix.Mul(inner, sigma)
	var num, den float64
	for i := 0; i < n; i++ {
		num += prod.At(i, i)
		den += sigma.At(i, i)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// AllMeasures returns the paper's five measures in reporting order, with
// the given anchors for the eigenspace instability measure.
func AllMeasures(e, eTilde *embedding.Embedding) []Measure {
	return []Measure{
		NewEigenspaceInstability(e, eTilde),
		NewKNN(),
		SemanticDisplacement{},
		PIPLoss{},
		EigenspaceOverlap{},
	}
}
