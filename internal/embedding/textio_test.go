package embedding

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	e := randomEmbedding(5, 3, 1)
	e.Words = []string{"alpha", "beta", "gamma", "delta", "eps"}
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 5 || got.Dim() != 3 {
		t.Fatalf("shape %dx%d", got.Rows(), got.Dim())
	}
	for i := 0; i < 5; i++ {
		if got.Words[i] != e.Words[i] {
			t.Fatalf("word %d: %q != %q", i, got.Words[i], e.Words[i])
		}
		for j := 0; j < 3; j++ {
			if math.Abs(got.Vectors.At(i, j)-e.Vectors.At(i, j)) > 1e-12 {
				t.Fatalf("value (%d,%d) differs", i, j)
			}
		}
	}
}

func TestWriteTextPlaceholderWords(t *testing.T) {
	e := randomEmbedding(2, 2, 2)
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "w0 ") || !strings.Contains(buf.String(), "w1 ") {
		t.Fatalf("placeholder words missing:\n%s", buf.String())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x y\n",
		"neg shape":    "-1 3\n",
		"short rows":   "2 2\nfoo 1 2\n",
		"wrong fields": "1 3\nfoo 1 2\n",
		"bad float":    "1 2\nfoo 1 x\n",
	}
	for name, input := range cases {
		if _, err := ReadText(strings.NewReader(input)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadTextWord2vecStyle(t *testing.T) {
	// Hand-written file in the classic format.
	in := "2 3\nking 0.1 0.2 0.3\nqueen -0.1 -0.2 -0.3\n"
	e, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e.Words[0] != "king" || e.Vectors.At(1, 2) != -0.3 {
		t.Fatal("parse mismatch")
	}
}
