// Package serve exposes the anchor Service over HTTP as a JSON API — the
// selection service the paper argues for, as a traffic-serving surface:
// given an embedding configuration (or a whole candidate grid), answer
// stability queries cheaply from measures and the artifact store instead
// of retraining downstream models.
//
// Endpoints (all under /v1, JSON in/out; see docs/HTTP_API.md for the
// full request/response reference):
//
//	GET  /v1/healthz          health detail + registry, store, and query stats
//	GET  /v1/livez            liveness probe (200 while the process serves)
//	GET  /v1/readyz           readiness probe (503 when draining/saturated)
//	GET  /v1/vectors          word vector lookup in one snapshot
//	POST /v1/neighbors        k nearest neighbors in one snapshot
//	POST /v1/neighbors/delta  neighbor overlap between the two snapshots
//	POST /v1/train            train (or fetch) one embedding snapshot
//	POST /v1/measures         every distance measure at one grid cell
//	POST /v1/stability        true downstream disagreement for one cell
//	POST /v1/select           rank a dim x precision grid under a budget
//
// Requests are handled concurrently over one shared Service; the artifact
// store's singleflight guarantees concurrent identical queries train at
// most once, and determinism guarantees responses are bitwise identical
// to the library path for any worker count. Concurrent /v1/neighbors
// requests against the same snapshot are additionally micro-batched into
// shared matrix products without changing any response's bits. Each
// request is scoped to its connection's context, so a dropped client
// cancels its computation at the next stage boundary (reported as 499 in
// logs, nginx-style).
//
// Every API endpoint runs behind the serving middleware (see route):
// panic recovery (a panicking handler yields a structured 500 and the
// process keeps serving), admission control (WithMaxInFlight bounds
// concurrent requests; excess load is shed with 429 + Retry-After), and
// per-endpoint deadlines (WithReadTimeout/WithComputeTimeout; a request
// that outlives its deadline gets 503 + Retry-After). The probes bypass
// admission and deadlines so they answer even under full load. None of
// this touches answer bytes: degradation changes availability, never
// answers — a request that succeeds is bitwise identical to one served
// by an idle process (enforced by the chaos suite in chaos_test.go).
//
// Errors are structured: {"error": {"code": "...", "message": "..."}}
// with 400 for malformed or unknown-name requests, 404 for unknown
// routes and out-of-vocabulary words, 405 for wrong methods, 429 for
// shed load, 503 for server-side deadline expiry or a draining/saturated
// readiness probe, and 500 for internal failures.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"anchor"
	"anchor/internal/faults"
)

// Fault-injection sites on the request path (see internal/faults): inert
// in production, armed by seeded plans in chaos tests.
var (
	sitePanic   = faults.Register("serve/panic")
	siteLatency = faults.Register("serve/latency")
)

// errDeadline is the cause installed by the per-endpoint deadline, so
// fail can tell a server-imposed timeout (503, retryable) from a client
// hanging up (499).
var errDeadline = errors.New("serve: per-endpoint deadline exceeded")

// StatusClientClosedRequest is the nginx convention for "client canceled
// the request before the response was ready".
const StatusClientClosedRequest = 499

// Server wraps one Service as an http.Handler.
type Server struct {
	svc *anchor.Service
	log *log.Logger

	maxInFlight    int
	readTimeout    time.Duration
	computeTimeout time.Duration
	sem            chan struct{} // nil = unbounded admission

	draining atomic.Bool
	inFlight atomic.Int64

	shed, timeouts, panics atomic.Int64
}

// ServerOption configures New.
type ServerOption func(*Server)

// WithMaxInFlight bounds the number of API requests executing at once
// (probes are exempt). Arrivals beyond the bound are shed immediately
// with 429 + Retry-After instead of queueing — under overload the server
// answers fast with "try later" rather than slowly with everything.
// n <= 0 (the default) disables admission control.
func WithMaxInFlight(n int) ServerOption {
	return func(s *Server) { s.maxInFlight = n }
}

// WithReadTimeout sets the per-request deadline for the read-path
// endpoints (vectors, neighbors, neighbors/delta). A request that
// outlives it is answered 503 + Retry-After. 0 (the default) disables
// the deadline.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithComputeTimeout sets the per-request deadline for the compute
// endpoints (train, measures, stability, select), which may train
// embeddings and downstream models. 0 (the default) disables it.
func WithComputeTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.computeTimeout = d }
}

// New returns a Server over svc. logger may be nil to disable logging.
func New(svc *anchor.Service, logger *log.Logger, opts ...ServerOption) *Server {
	s := &Server{svc: svc, log: logger}
	for _, opt := range opts {
		opt(s)
	}
	if s.maxInFlight > 0 {
		s.sem = make(chan struct{}, s.maxInFlight)
	}
	return s
}

// SetDraining flips the readiness signal: a draining server answers 503
// on /v1/readyz (so load balancers stop routing to it) while continuing
// to serve everything else. Call before http.Server.Shutdown for a
// connection-preserving rolling restart.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the routed handler for the /v1 API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Probes and health detail bypass admission and deadlines: they must
	// answer precisely when the server is saturated.
	mux.HandleFunc("/v1/healthz", s.protect(s.handleHealthz))
	mux.HandleFunc("/v1/livez", s.protect(s.handleLivez))
	mux.HandleFunc("/v1/readyz", s.protect(s.handleReadyz))
	mux.HandleFunc("/v1/vectors", s.route(s.readTimeout, s.handleVectors))
	mux.HandleFunc("/v1/neighbors", s.route(s.readTimeout, s.handleNeighbors))
	mux.HandleFunc("/v1/neighbors/delta", s.route(s.readTimeout, s.handleNeighborDelta))
	mux.HandleFunc("/v1/train", s.route(s.computeTimeout, s.handleTrain))
	mux.HandleFunc("/v1/measures", s.route(s.computeTimeout, s.handleMeasures))
	mux.HandleFunc("/v1/stability", s.route(s.computeTimeout, s.handleStability))
	mux.HandleFunc("/v1/select", s.route(s.computeTimeout, s.handleSelect))
	// Unknown routes get the structured envelope too, not the mux's
	// plain-text default.
	mux.HandleFunc("/", s.protect(func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no route %s (see docs/HTTP_API.md for the /v1 endpoints)", r.URL.Path))
	}))
	return mux
}

// trackingWriter remembers whether the response has started, so the
// panic recovery knows whether a structured 500 can still be written.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// protect wraps h with panic recovery only: a panicking handler becomes
// a structured 500 (when the response has not started) and the process
// keeps serving — one poisoned request must never take down the tier.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.logf("serve: panic on %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				if !tw.wrote {
					s.writeError(tw, http.StatusInternalServerError, "internal_panic",
						fmt.Sprintf("request handler panicked: %v", v))
				}
			}
		}()
		h(tw, r)
	}
}

// route wraps an API handler with the full serving middleware: panic
// recovery, admission control (shed with 429 when the bounded in-flight
// set is full), and the per-endpoint deadline (503 via fail when it
// expires). Shedding and deadlines bound work, not answers: any request
// that completes returns exactly the bytes an unloaded server returns.
func (s *Server) route(timeout time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return s.protect(func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusTooManyRequests, "overloaded",
					fmt.Sprintf("in-flight request limit (%d) reached; retry shortly", s.maxInFlight))
				return
			}
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		if timeout > 0 {
			ctx, cancel := context.WithTimeoutCause(r.Context(), timeout, errDeadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		// Injected faults land inside the admission slot and under the
		// endpoint deadline, like real handler slowness and bugs would.
		faults.Sleep(r.Context(), siteLatency)
		faults.Crash(sitePanic)
		h(w, r)
	})
}

// errorBody is the structured error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("serve: encode response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	s.writeJSON(w, status, body)
}

// fail maps a service error onto the structured error space: unknown
// names and invalid parameters are the client's fault (400), a word
// missing from a snapshot's vocabulary is an absent resource (404), a
// server-imposed per-endpoint deadline is retryable overload (503 +
// Retry-After), a canceled request context is the client hanging up
// (499, nginx convention), and everything else is ours (500).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	var unk *anchor.UnknownNameError
	var inv *anchor.InvalidRequestError
	var uw *anchor.UnknownWordError
	switch {
	case errors.As(err, &unk):
		s.writeError(w, http.StatusBadRequest, "unknown_"+unk.Kind, unk.Error())
	case errors.As(err, &uw):
		// The request is well-formed; the word just does not exist in the
		// snapshot's vocabulary.
		s.writeError(w, http.StatusNotFound, "unknown_word", uw.Error())
	case errors.As(err, &inv):
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if errors.Is(context.Cause(r.Context()), errDeadline) {
			// Our deadline, not the client's cancellation: the request was
			// healthy but too slow right now. Retryable.
			s.timeouts.Add(1)
			s.logf("serve: %s %s exceeded its deadline", r.Method, r.URL.Path)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, "deadline_exceeded",
				"request exceeded the server's per-endpoint deadline; retry shortly")
			return
		}
		// The client is gone; the status is for logs and tests.
		s.logf("serve: %s %s canceled", r.Method, r.URL.Path)
		s.writeError(w, StatusClientClosedRequest, "client_closed_request", err.Error())
	default:
		s.logf("serve: %s %s failed: %v", r.Method, r.URL.Path, err)
		s.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// decode parses a JSON body into v, rejecting unknown fields so typos in
// request payloads fail loudly instead of silently selecting defaults.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s requires %s", r.URL.Path, method))
		return false
	}
	return true
}

// healthzResponse reports liveness plus what is plugged in and how the
// artifact store is doing.
type healthzResponse struct {
	Status     string   `json:"status"`
	Algorithms []string `json:"algorithms"`
	Tasks      []string `json:"tasks"`
	Measures   []string `json:"measures"`
	// Serving reports the fault-tolerance middleware's view of traffic:
	// current and maximum in-flight requests, shed/timed-out/panicked
	// request counts, and whether the server is draining.
	Serving struct {
		InFlight    int64 `json:"in_flight"`
		MaxInFlight int   `json:"max_in_flight"`
		Shed        int64 `json:"shed"`
		Timeouts    int64 `json:"timeouts"`
		Panics      int64 `json:"panics"`
		Draining    bool  `json:"draining"`
	} `json:"serving"`
	Store struct {
		MemHits       int64 `json:"mem_hits"`
		DiskHits      int64 `json:"disk_hits"`
		Computes      int64 `json:"computes"`
		Evictions     int64 `json:"evictions"`
		PersistErrors int64 `json:"persist_errors"`
		// Quarantines counts damaged disk artifacts moved aside and
		// recovered from the other encoding or a recompute.
		Quarantines int64 `json:"quarantines"`
		// ANNDiskHits counts IVF sidecars served from disk; ANNBuilds
		// counts sidecar (re)builds.
		ANNDiskHits int64 `json:"ann_disk_hits"`
		ANNBuilds   int64 `json:"ann_builds"`
	} `json:"store"`
	Query struct {
		SnapshotHits   int64 `json:"snapshot_hits"`
		SnapshotLoads  int64 `json:"snapshot_loads"`
		Evictions      int64 `json:"evictions"`
		Batches        int64 `json:"batches"`
		BatchedQueries int64 `json:"batched_queries"`
		// Retries counts snapshot-load attempts beyond the first.
		Retries int64 `json:"retries"`
		// ANNQueries counts neighbor queries answered through the IVF
		// index; ANNBuilds counts index constructions (cache misses —
		// warm sidecar loads do not count).
		ANNQueries int64 `json:"ann_queries"`
		ANNBuilds  int64 `json:"ann_builds"`
		// ResidentBytes totals the bytes pinned by resident snapshots.
		ResidentBytes int64 `json:"resident_bytes"`
		// Snapshots lists the resident snapshots (most recently used
		// first) with their precision mode and footprint.
		Snapshots []anchor.SnapshotInfo `json:"snapshots"`
	} `json:"query"`
	// ServingBudgetBits is the serving-memory budget (dim*bits) used to
	// auto-select cells for dim-0 queries; 0 when disabled.
	ServingBudgetBits int `json:"serving_budget_bits,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := healthzResponse{
		Status:     "ok",
		Algorithms: s.svc.Algorithms(),
		Tasks:      s.svc.Tasks(),
		Measures:   s.svc.Measures(),
	}
	resp.Serving.InFlight = s.inFlight.Load()
	resp.Serving.MaxInFlight = s.maxInFlight
	resp.Serving.Shed = s.shed.Load()
	resp.Serving.Timeouts = s.timeouts.Load()
	resp.Serving.Panics = s.panics.Load()
	resp.Serving.Draining = s.draining.Load()
	st := s.svc.StoreStats()
	resp.Store.MemHits = st.MemHits
	resp.Store.DiskHits = st.DiskHits
	resp.Store.Computes = st.Computes
	resp.Store.Evictions = st.Evictions
	resp.Store.PersistErrors = st.PersistErrors
	resp.Store.Quarantines = st.Quarantines
	resp.Store.ANNDiskHits = st.ANNDiskHits
	resp.Store.ANNBuilds = st.ANNBuilds
	qs := s.svc.QueryStats()
	resp.Query.SnapshotHits = qs.SnapshotHits
	resp.Query.SnapshotLoads = qs.SnapshotLoads
	resp.Query.Evictions = qs.Evictions
	resp.Query.Batches = qs.Batches
	resp.Query.BatchedQueries = qs.BatchedQueries
	resp.Query.Retries = qs.Retries
	resp.Query.ANNQueries = qs.ANNQueries
	resp.Query.ANNBuilds = qs.ANNBuilds
	resp.Query.Snapshots = s.svc.ResidentSnapshots()
	for _, in := range resp.Query.Snapshots {
		resp.Query.ResidentBytes += in.Bytes
	}
	resp.ServingBudgetBits = s.svc.ServingBudget()
	s.writeJSON(w, http.StatusOK, resp)
}

// handleLivez is the liveness probe: 200 for as long as the process can
// execute a handler at all. Panic recovery keeps this true through
// poisoned requests; only a dead process fails it.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 while the server is draining
// for shutdown or its admission queue is saturated — the signal for load
// balancers to route elsewhere — and 200 otherwise. Liveness and
// readiness are split on purpose: an overloaded server is alive (don't
// restart it) but not ready (don't send it more).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining before shutdown")
		return
	}
	if s.sem != nil && len(s.sem) >= cap(s.sem) {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "overloaded",
			fmt.Sprintf("all %d in-flight slots busy", s.maxInFlight))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// trainRequest asks for one embedding snapshot.
type trainRequest struct {
	Algo string `json:"algo"`
	Year int    `json:"year"`
	Dim  int    `json:"dim"`
	Seed int64  `json:"seed"`
	// ReturnVectors includes the full matrix in the response (row-major);
	// by default only provenance and shape are returned.
	ReturnVectors bool `json:"return_vectors"`
}

type trainResponse struct {
	Algo      string    `json:"algo"`
	Corpus    string    `json:"corpus"`
	Dim       int       `json:"dim"`
	Seed      int64     `json:"seed"`
	Precision int       `json:"bits"`
	Rows      int       `json:"rows"`
	Vectors   []float64 `json:"vectors,omitempty"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req trainRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	if req.Year == 0 {
		req.Year = 2017
	}
	e, err := s.svc.Train(r.Context(), req.Algo, req.Year, req.Dim, req.Seed)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	resp := trainResponse{
		Algo: e.Meta.Algorithm, Corpus: e.Meta.Corpus,
		Dim: e.Dim(), Seed: e.Meta.Seed, Precision: e.Meta.Precision,
		Rows: e.Rows(),
	}
	if req.ReturnVectors {
		resp.Vectors = e.Vectors.Data
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// cellRequest identifies one grid cell.
type cellRequest struct {
	Algo string `json:"algo"`
	Dim  int    `json:"dim"`
	Bits int    `json:"bits"`
	Seed int64  `json:"seed"`
}

func (s *Server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req cellRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.MeasureCell(r.Context(), req.Algo, req.Dim, req.Bits, req.Seed)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// stabilityRequest identifies one grid cell and a downstream task.
type stabilityRequest struct {
	Algo string `json:"algo"`
	Task string `json:"task"`
	Dim  int    `json:"dim"`
	Bits int    `json:"bits"`
	Seed int64  `json:"seed"`
}

func (s *Server) handleStability(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req stabilityRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.Stability(r.Context(), req.Algo, req.Task, req.Dim, req.Bits, req.Seed)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// queryOptions assembles the Service query options shared by the read
// path handlers. Zero values select the service defaults.
func queryOptions(year, k, bits int, seed int64) []anchor.QueryOption {
	var opts []anchor.QueryOption
	if year != 0 {
		opts = append(opts, anchor.QueryYear(year))
	}
	if k != 0 {
		opts = append(opts, anchor.QueryK(k))
	}
	if bits != 0 {
		opts = append(opts, anchor.QueryPrecision(bits))
	}
	if seed != 0 {
		opts = append(opts, anchor.QuerySeed(seed))
	}
	return opts
}

// annOptions assembles the approximate-search options shared by the
// neighbors handlers.
func annOptions(ann bool, nprobe int) []anchor.QueryOption {
	var opts []anchor.QueryOption
	if ann {
		opts = append(opts, anchor.QueryANN(true))
	}
	if nprobe != 0 {
		opts = append(opts, anchor.QueryNProbe(nprobe))
	}
	return opts
}

// handleVectors is GET /v1/vectors: word vector lookup in one snapshot.
// Parameters come from the query string (it is a read), words
// comma-separated: /v1/vectors?algo=cbow&dim=64&words=king,queen.
func (s *Server) handleVectors(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	var year, dim, bits int
	var seed int64
	for _, p := range []struct {
		name string
		dst  *int
	}{{"year", &year}, {"dim", &dim}, {"bits", &bits}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "invalid_request",
					fmt.Sprintf("bad %s %q", p.name, v))
				return
			}
			*p.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "invalid_request", fmt.Sprintf("bad seed %q", v))
			return
		}
		seed = n
	}
	var words []string
	for _, part := range strings.Split(q.Get("words"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			words = append(words, part)
		}
	}
	rep, err := s.svc.Query(r.Context(), q.Get("algo"), dim, words, queryOptions(year, 0, bits, seed)...)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// neighborsRequest asks for nearest neighbors in one snapshot.
type neighborsRequest struct {
	Algo  string   `json:"algo"`
	Words []string `json:"words"`
	Dim   int      `json:"dim"`
	K     int      `json:"k"`
	Year  int      `json:"year"`
	// Bits selects the served precision (1..32; 0 = service default).
	// Dim 0 with a serving budget configured has the (dim, bits) cell
	// auto-selected.
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
	// ANN routes the query through the snapshot's IVF index; NProbe
	// tunes how many index cells it scans (0 = the index default, >=
	// the cell count reproduces the exact answer bitwise).
	ANN    bool `json:"ann"`
	NProbe int  `json:"nprobe"`
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req neighborsRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.Neighbors(r.Context(), req.Algo, req.Dim, req.Words,
		append(queryOptions(req.Year, req.K, req.Bits, req.Seed), annOptions(req.ANN, req.NProbe)...)...)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

// neighborDeltaRequest asks for neighbor overlap between the snapshots.
type neighborDeltaRequest struct {
	Algo  string   `json:"algo"`
	Words []string `json:"words"`
	Dim   int      `json:"dim"`
	K     int      `json:"k"`
	// Bits selects the served precision (1..32; 0 = service default).
	Bits int   `json:"bits"`
	Seed int64 `json:"seed"`
	// ANN routes both snapshots' scans through their IVF indexes;
	// NProbe tunes the cells scanned per query (0 = the index default).
	ANN    bool `json:"ann"`
	NProbe int  `json:"nprobe"`
}

func (s *Server) handleNeighborDelta(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req neighborDeltaRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.NeighborDelta(r.Context(), req.Algo, req.Dim, req.Words,
		append(queryOptions(0, req.K, req.Bits, req.Seed), annOptions(req.ANN, req.NProbe)...)...)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	var req anchor.SelectRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	rep, err := s.svc.Select(r.Context(), req)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}
