// Package dettaint_measure is the measure-package fixture for the
// dettaint rule: the test lists this package in TaintMeasurePackages, so
// any function whose return value carries nondeterminism is reported
// even though no sink is called.
package dettaint_measure

import "time"

// Distance derives a measure from the clock.
func Distance() float64 {
	return float64(time.Now().UnixNano()) // want `measure value derived from time.Now`
}

// Pure is a deterministic measure of its inputs.
func Pure(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Elapsed uses the clock internally but returns a pure value.
func Elapsed(n int) int {
	t := time.Now()
	_ = t
	return n * n
}
