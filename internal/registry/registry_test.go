package registry

import (
	"errors"
	"testing"
)

func TestRegisterGetNamesOrder(t *testing.T) {
	r := New[int]("thing")
	r.Register("b", 2)
	r.Register("a", 1)
	r.Register("c", 3)
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "b" || names[1] != "a" || names[2] != "c" {
		t.Fatalf("Names() = %v, want registration order [b a c]", names)
	}
	// Names returns a copy; mutating it must not corrupt the registry.
	names[0] = "zzz"
	if got := r.Names(); got[0] != "b" {
		t.Fatal("Names() does not copy")
	}
}

func TestDuplicateAndEmptyNamesPanic(t *testing.T) {
	r := New[int]("thing")
	r.Register("a", 1)
	for _, name := range []string{"a", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", name)
				}
			}()
			r.Register(name, 2)
		}()
	}
}

func TestLookupUnknownError(t *testing.T) {
	r := New[int]("thing")
	r.Register("a", 1)
	if v, err := r.Lookup("a"); err != nil || v != 1 {
		t.Fatalf("Lookup(a) = %v, %v", v, err)
	}
	_, err := r.Lookup("nope")
	var unk *UnknownError
	if !errors.As(err, &unk) {
		t.Fatalf("want *UnknownError, got %v", err)
	}
	if unk.Kind != "thing" || unk.Name != "nope" || len(unk.Known) != 1 {
		t.Fatalf("error contents: %+v", unk)
	}
}
