// Package floats provides the dense float64 vector kernels used throughout
// anchor: dot products, norms, scaled accumulation, and small statistical
// helpers. Every higher-level numeric package (matrix, embedding training,
// neural nets) is built on these primitives.
package floats

import (
	"math"
	"sort"
)

// Dot returns the inner product of x and y. The slices must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("floats: Dot length mismatch")
	}
	y = y[:len(x)] // bounds-check elimination in the loop below
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha * x in place. The slices must have equal
// length. The body is unrolled four-wide; each element is still updated
// by the single operation y[i] += alpha*x[i], so results are bitwise
// identical to the rolled loop.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("floats: Axpy length mismatch")
	}
	y = y[:len(x)] // bounds-check elimination in the loops below
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] += alpha * x4[0]
		y4[1] += alpha * x4[1]
		y4[2] += alpha * x4[2]
		y4[3] += alpha * x4[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes x += y element-wise in place.
func Add(x, y []float64) {
	if len(x) != len(y) {
		panic("floats: Add length mismatch")
	}
	y = y[:len(x)] // bounds-check elimination in the loop below
	for i := range x {
		x[i] += y[i]
	}
}

// Sub computes x -= y element-wise in place.
func Sub(x, y []float64) {
	if len(x) != len(y) {
		panic("floats: Sub length mismatch")
	}
	y = y[:len(x)] // bounds-check elimination in the loop below
	for i := range x {
		x[i] -= y[i]
	}
}

// Norm returns the Euclidean (L2) norm of x.
func Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Normalize scales x to unit L2 norm in place and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// CosineSim returns the cosine similarity of x and y, or 0 if either is zero.
func CosineSim(x, y []float64) float64 {
	nx, ny := Norm(x), Norm(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}

// CosineDist returns 1 - CosineSim(x, y).
func CosineDist(x, y []float64) float64 {
	return 1 - CosineSim(x, y)
}

// L1Dist returns the Manhattan distance between x and y.
func L1Dist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("floats: L1Dist length mismatch")
	}
	var s float64
	for i, v := range x {
		s += math.Abs(v - y[i])
	}
	return s
}

// L2Dist returns the Euclidean distance between x and y.
func L2Dist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("floats: L2Dist length mismatch")
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Max returns the maximum element of x. It panics on an empty slice.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("floats: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element of x. It panics on an empty slice.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("floats: Min of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of x (first one on ties).
// It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("floats: ArgMax of empty slice")
	}
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("floats: Quantile of empty slice")
	}
	s := Clone(x)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile on data the caller has already sorted
// ascending; it performs no allocation, so repeated quantiles of the same
// slice can share one sort.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		panic("floats: QuantileSorted of empty slice")
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// LogSumExp returns log(sum(exp(x_i))) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := Max(x)
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of x into dst (which may alias x) and
// returns dst. The slices must have equal length.
func Softmax(dst, x []float64) []float64 {
	if len(dst) != len(x) {
		panic("floats: Softmax length mismatch")
	}
	m := Max(x)
	var s float64
	for i, v := range x {
		e := math.Exp(v - m)
		dst[i] = e
		s += e
	}
	for i := range dst {
		dst[i] /= s
	}
	return dst
}
