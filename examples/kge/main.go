// KGE demonstrates the paper's Section 6.1 extension: the
// stability-memory tradeoff also holds for knowledge graph embeddings.
// It trains TransE on a synthetic FB15K analogue and on a 95% subsample,
// then reports link prediction instability (unstable-rank@10) and triplet
// classification disagreement across dimensions and precisions.
//
//	go run ./examples/kge
package main

import (
	"fmt"

	"anchor"
	"anchor/internal/kge"
)

func main() {
	gcfg := kge.DefaultGraphConfig()
	gcfg.Entities = 200
	gcfg.TrainN, gcfg.ValidN, gcfg.TestN = 2000, 200, 200
	g := kge.GenerateGraph(gcfg)
	g95 := kge.Subsample(g, 0.95, 7)
	fmt.Printf("synthetic knowledge graph: %d entities, %d relations, %d train triplets\n",
		g.NumEntities, g.NumRelations, len(g.Train))

	fmt.Println("\ndim  bits  memory(bits/vec)  unstable-rank@10  classification disagreement")
	for _, dim := range []int{4, 8, 16, 32} {
		cfg := kge.DefaultTransEConfig(dim, 1)
		m95 := kge.TrainTransE(g95, cfg)
		mFull := kge.TrainTransE(g, cfg)
		for _, bits := range []int{1, 4, 32} {
			q95, qFull := kge.QuantizePair(m95, mFull, bits)

			ur := kge.UnstableRankAt10(q95.TailRanks(g.Test), qFull.TailRanks(g.Test))

			val := kge.BuildClassificationSet(g, g.Valid, 1)
			test := kge.BuildClassificationSet(g, g.Test, 2)
			th := q95.TuneThresholds(g.NumRelations, val)
			di := anchor.PredictionDisagreementPct(q95.Classify(test, th), qFull.Classify(test, th))

			fmt.Printf("%3d  %4d  %16d  %15.1f%%  %26.1f%%\n", dim, bits, dim*bits, 100*ur, di)
		}
	}
	fmt.Println("\nas with word embeddings: more memory, more stable")
}
