package matrix

// Float32 serving representation. Dense32 stores a row-major float32
// matrix for artifacts whose values are exactly float32-representable
// (quantized levels are rounded to float32 by construction), halving the
// memory traffic of the bandwidth-bound read path. Arithmetic stays in
// float64: every product widens both operands first and every output
// element keeps one float64 accumulator in ascending k, so MulABTInto32
// is bitwise identical to MulABTInto on widened copies of its inputs —
// the storage narrows, the answers do not.

import (
	"fmt"

	"anchor/internal/parallel"
)

// Dense32 is a dense row-major float32 matrix.
type Dense32 struct {
	Rows, Cols int
	Data       []float32
}

// NewDense32 returns a zeroed rows-by-cols float32 matrix.
func NewDense32(rows, cols int) *Dense32 {
	return &Dense32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewDense32From narrows m into a float32 matrix. Callers must ensure
// every value of m is exactly float32-representable (see Float32Exact)
// when bitwise fidelity matters; narrowing itself is a plain float64 →
// float32 conversion either way.
func NewDense32From(m *Dense) *Dense32 {
	out := NewDense32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Float32Exact reports whether every value survives a float64 → float32 →
// float64 round trip exactly, i.e. whether a Dense32 copy is lossless.
func Float32Exact(data []float64) bool {
	for _, v := range data {
		if v != float64(float32(v)) {
			return false
		}
	}
	return true
}

// Row returns row i sharing the underlying storage.
func (m *Dense32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// WidenRow writes row i widened to float64 into dst (length Cols).
func (m *Dense32) WidenRow(i int, dst []float64) {
	row := m.Row(i)
	for k, v := range row {
		dst[k] = float64(v)
	}
}

// Widen returns a float64 copy of the matrix.
func (m *Dense32) Widen() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// MulABT32Workers returns a*bᵀ for float32 operands, computed on up to
// workers goroutines (workers <= 0 selects all CPUs). The result is a
// float64 matrix bitwise identical to MulABTWorkers on widened copies of
// a and b, for every worker count.
func MulABT32Workers(a, b *Dense32, workers int) *Dense {
	return MulABTInto32(NewDense(a.Rows, b.Rows), a, b, workers)
}

// MulABTInto32 computes a*bᵀ into dst and returns dst, overwriting its
// previous contents. dst must be a.Rows-by-b.Rows and float64; a and b
// are float32. It mirrors MulABTInto's cache-blocked, 4x2-interleaved
// micro-kernel exactly — same b-row tiling, same accumulator chains, one
// float64 accumulator per output element in ascending k — with each
// product widening its float32 operands to float64 first. Loading half
// the bytes per row is the entire difference, so outputs are bitwise
// identical to the float64 kernel on widened inputs for every worker
// count and batch shape.
func MulABTInto32(dst *Dense, a, b *Dense32, workers int) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulABT32 col mismatch %d vs %d", a.Cols, b.Cols))
	}
	checkDst(dst, a.Rows, b.Rows)
	runBanded(a.Rows, a.Rows*a.Cols*b.Rows, workers, func(band parallel.Range) {
		for j0 := 0; j0 < b.Rows; j0 += abtJBlock {
			j1 := j0 + abtJBlock
			if j1 > b.Rows {
				j1 = b.Rows
			}
			i := band.Lo
			for ; i+4 <= band.Hi; i += 4 {
				a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
				o0, o1, o2, o3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
				j := j0
				for ; j+2 <= j1; j += 2 {
					b0 := b.Row(j)
					b1 := b.Row(j + 1)[:len(b0):len(b0)]
					x0, x1, x2, x3 := a0[:len(b0):len(b0)], a1[:len(b0):len(b0)], a2[:len(b0):len(b0)], a3[:len(b0):len(b0)]
					var s00, s01, s10, s11, s20, s21, s30, s31 float64
					for k, bv := range b0 {
						bv0, bv1 := float64(bv), float64(b1[k])
						v0, v1, v2, v3 := float64(x0[k]), float64(x1[k]), float64(x2[k]), float64(x3[k])
						s00 += v0 * bv0
						s01 += v0 * bv1
						s10 += v1 * bv0
						s11 += v1 * bv1
						s20 += v2 * bv0
						s21 += v2 * bv1
						s30 += v3 * bv0
						s31 += v3 * bv1
					}
					o0[j], o0[j+1] = s00, s01
					o1[j], o1[j+1] = s10, s11
					o2[j], o2[j+1] = s20, s21
					o3[j], o3[j+1] = s30, s31
				}
				for ; j < j1; j++ {
					brow := b.Row(j)
					var s0, s1, s2, s3 float64
					for k, bv := range brow {
						bv0 := float64(bv)
						s0 += float64(a0[k]) * bv0
						s1 += float64(a1[k]) * bv0
						s2 += float64(a2[k]) * bv0
						s3 += float64(a3[k]) * bv0
					}
					o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
				}
			}
			for ; i < band.Hi; i++ {
				arow := a.Row(i)
				orow := dst.Row(i)
				j := j0
				for ; j+4 <= j1; j += 4 {
					b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
					var s0, s1, s2, s3 float64
					for k, av := range arow {
						av0 := float64(av)
						s0 += av0 * float64(b0[k])
						s1 += av0 * float64(b1[k])
						s2 += av0 * float64(b2[k])
						s3 += av0 * float64(b3[k])
					}
					orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
				}
				for ; j < j1; j++ {
					brow := b.Row(j)
					var s float64
					for k, bv := range brow {
						s += float64(arow[k]) * float64(bv)
					}
					orow[j] = s
				}
			}
		}
	})
	return dst
}
