package lint_test

import (
	"testing"

	"anchor/internal/lint"
	"anchor/internal/lint/linttest"
)

func TestDetTaintSinks(t *testing.T) {
	old := lint.TaintSinks
	lint.TaintSinks = map[string]string{"anchorlint.test/dettaint.Sink": "artifact bytes"}
	defer func() { lint.TaintSinks = old }()
	linttest.Run(t, lint.DetTaint, "testdata/src/dettaint", "anchorlint.test/dettaint")
}

func TestDetTaintMeasures(t *testing.T) {
	old := lint.TaintMeasurePackages
	lint.TaintMeasurePackages = append(old[:len(old):len(old)], "anchorlint.test/dettaint_measure")
	defer func() { lint.TaintMeasurePackages = old }()
	linttest.Run(t, lint.DetTaint, "testdata/src/dettaint_measure", "anchorlint.test/dettaint_measure")
}
