package tasks

import (
	"anchor/internal/core"
	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/tasks/ner"
	"anchor/internal/tasks/sentiment"
)

// Sentiment evaluates a sentiment dataset with the paper's linear
// bag-of-words model. The dataset (and its cached per-split count
// matrices) is shared by every Eval call.
type Sentiment struct {
	Data *sentiment.Dataset
}

// Task implements Evaluator.
func (s *Sentiment) Task() string { return s.Data.Name }

// Eval implements Evaluator: it trains the two linear BOW models and
// scores the test split through the cached count-matrix feature path
// (bitwise identical to the per-example loop; see PR 3's golden tests).
func (s *Sentiment) Eval(e17, e18 *embedding.Embedding, seed int64, train func(f17, f18 func())) Result {
	ds := s.Data
	cfg := sentiment.DefaultLinearBOWConfig(seed)
	var m17, m18 *sentiment.LinearBOW
	train(
		func() { m17 = sentiment.TrainLinearBOW(e17, ds, cfg) },
		func() { m18 = sentiment.TrainLinearBOW(e18, ds, cfg) },
	)
	p17 := m17.PredictFeatures(sentiment.Features(e17, ds.TestCounts(), ds.Test, 1))
	p18 := m18.PredictFeatures(sentiment.Features(e18, ds.TestCounts(), ds.Test, 1))
	return Result{
		Disagreement: core.PredictionDisagreementPct(p17, p18),
		Accuracy:     sentiment.AccuracyOf(p17, ds.Test),
	}
}

// NER evaluates the CoNLL-2003 analogue with the BiLSTM tagger.
type NER struct {
	Data *ner.Dataset
}

// Task implements Evaluator.
func (n *NER) Task() string { return "conll2003" }

// Eval implements Evaluator.
func (n *NER) Eval(e17, e18 *embedding.Embedding, seed int64, train func(f17, f18 func())) Result {
	ds := n.Data
	cfg := ner.DefaultConfig(seed)
	var m17, m18 *ner.Tagger
	train(
		func() { m17 = ner.Train(e17, ds, cfg) },
		func() { m18 = ner.Train(e18, ds, cfg) },
	)
	p17, f1 := m17.EvaluateEntities(ds.Test)
	return Result{
		Disagreement: core.PredictionDisagreementPct(p17, m18.EntityPredictions(ds.Test)),
		Accuracy:     f1,
	}
}

func init() {
	for _, p := range sentiment.AllParams() {
		name := p.Name
		Register(name, func(c17 *corpus.Corpus, ccfg corpus.Config) (Evaluator, error) {
			params, err := sentiment.ParamsByName(name)
			if err != nil {
				return nil, err
			}
			return &Sentiment{Data: sentiment.Generate(c17, ccfg, params)}, nil
		})
	}
	Register("conll2003", func(c17 *corpus.Corpus, ccfg corpus.Config) (Evaluator, error) {
		return &NER{Data: ner.Generate(c17, ccfg, ner.CoNLLParams())}, nil
	})
}
