package nn

import (
	"math"

	"anchor/internal/autodiff"
)

// Optimizer updates parameters from their accumulated gradients and
// zeroes the gradients.
type Optimizer interface {
	Step(params []*autodiff.Param)
}

// SGD is plain stochastic gradient descent with an optional learning-rate
// multiplier set by annealing schedules (the NER training loop uses the
// paper's anneal-on-plateau schedule).
type SGD struct {
	LR float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (o *SGD) Step(params []*autodiff.Param) {
	for _, p := range params {
		for i := range p.Value.Data {
			p.Value.Data[i] -= o.LR * p.Grad.Data[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015), used for the sentiment
// models exactly as in the paper (Appendix C.3.1).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*autodiff.Param][]float64
	v map[*autodiff.Param][]float64
}

// NewAdam returns Adam with the standard defaults and the given learning
// rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*autodiff.Param][]float64),
		v: make(map[*autodiff.Param][]float64),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*autodiff.Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = make([]float64, len(p.Value.Data))
			o.v[p] = v
		}
		for i, g := range p.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			p.Value.Data[i] -= o.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + o.Eps)
		}
		p.ZeroGrad()
	}
}
