// Package autodiff implements a small tape-based reverse-mode automatic
// differentiation engine over dense matrices. It exists so the downstream
// models of the paper (linear bag-of-words, CNN, BiLSTM, BiLSTM-CRF, and
// the mini-BERT feature extractor) can be trained from scratch with
// gradient code that is written once and verified once (against finite
// differences) instead of hand-derived per model.
//
// A Tape records operations in execution order; Backward walks the tape in
// reverse. Nodes wrap matrix.Dense values; gradients accumulate into
// per-node buffers, and parameter nodes share their gradient buffer with
// the caller so optimizers can consume them.
//
// Tapes come in two flavors with identical numerics:
//
//   - NewTape returns a classic tape that heap-allocates every node,
//     value, and gradient. It is retained as the slow reference path for
//     equality tests and benchmarks.
//   - NewArenaTape returns a tape backed by a resettable arena (arena.go):
//     Reset rewinds the arena so capacity is reused across minibatches,
//     making steady-state training nearly allocation-free.
//
// Determinism contract (extending the matrix package's): every op performs
// the same floating-point operations in the same per-element order on both
// tape flavors, matrix products run through the blocked kernels whose
// results are bitwise identical for every worker count, and the fused ops
// in fused.go are bitwise identical to the unfused compositions they
// replace. Training a model on an arena tape with fused ops therefore
// yields bitwise-identical weights to the classic reference path.
package autodiff

import (
	"math"
	"math/rand"

	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// Node is one value in the computation graph.
type Node struct {
	Value *matrix.Dense
	grad  *matrix.Dense
	needs bool        // participates in gradient computation
	tape  *Tape       // owning tape (for gradient/scratch allocation)
	back  func(*Node) // propagates the node's grad into its parents
}

// Grad returns the gradient accumulated for this node (nil until Backward
// reaches it). For parameter nodes this aliases the Param's Grad matrix.
func (n *Node) Grad() *matrix.Dense { return n.grad }

func (n *Node) ensureGrad() *matrix.Dense {
	if n.grad == nil {
		n.grad = n.tape.newZeroDense(n.Value.Rows, n.Value.Cols)
	}
	return n.grad
}

// Param is a trainable parameter: a value plus a persistent gradient
// accumulator shared across tapes.
type Param struct {
	Name  string
	Value *matrix.Dense
	Grad  *matrix.Dense
}

// NewParam allocates a named parameter with a zeroed gradient.
func NewParam(name string, value *matrix.Dense) *Param {
	return &Param{Name: name, Value: value, Grad: matrix.NewDense(value.Rows, value.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { floats.Fill(p.Grad.Data, 0) }

// Tape records a computation for reverse-mode differentiation.
type Tape struct {
	nodes []*Node
	arena *arena // nil for classic heap-allocating tapes

	// Workers is the goroutine budget for the tape's matrix-product
	// kernels (<= 0 selects all CPUs). Products are bitwise identical for
	// every value, so this is a pure throughput knob; trainers that
	// already parallelize at a coarser grain set it to 1.
	Workers int
}

// NewTape returns an empty classic tape that heap-allocates per op (the
// retained slow reference path).
func NewTape() *Tape { return &Tape{} }

// NewArenaTape returns a tape whose nodes, values, gradients, and scratch
// come from a resettable arena. Call Reset between minibatches to reuse
// the arena's capacity; values and gradients recorded before a Reset are
// invalid afterwards.
func NewArenaTape() *Tape { return &Tape{arena: &arena{}} }

// Reset clears the tape for re-recording. On arena tapes all previously
// returned nodes, values, and gradients become invalid and their storage
// is reused; parameters (and their Grad accumulators) are unaffected.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	if t.arena != nil {
		t.arena.reset()
	}
}

// ---- allocation helpers (arena-backed when available) ----

func (t *Tape) newNode() *Node {
	if t.arena != nil {
		return t.arena.node()
	}
	return &Node{}
}

// newDense returns an r-by-c matrix whose contents the caller fully
// overwrites (arena memory is stale, not zeroed).
func (t *Tape) newDense(r, c int) *matrix.Dense {
	if t.arena != nil {
		d := t.arena.dense()
		d.Rows, d.Cols = r, c
		d.Data = t.arena.floats(r * c)
		return d
	}
	return matrix.NewDense(r, c)
}

// newZeroDense returns a zeroed r-by-c matrix.
func (t *Tape) newZeroDense(r, c int) *matrix.Dense {
	d := t.newDense(r, c)
	if t.arena != nil {
		floats.Fill(d.Data, 0)
	}
	return d
}

// newDenseCopy returns a copy of src.
func (t *Tape) newDenseCopy(src *matrix.Dense) *matrix.Dense {
	d := t.newDense(src.Rows, src.Cols)
	copy(d.Data, src.Data)
	return d
}

func (t *Tape) newFloats(n int) []float64 {
	if t.arena != nil {
		return t.arena.floats(n)
	}
	return make([]float64, n)
}

func (t *Tape) newInts(n int) []int {
	if t.arena != nil {
		return t.arena.ints(n)
	}
	return make([]int, n)
}

func (t *Tape) add(n *Node) *Node {
	n.tape = t
	t.nodes = append(t.nodes, n)
	return n
}

// Const introduces a value that does not require gradients.
func (t *Tape) Const(v *matrix.Dense) *Node {
	n := t.newNode()
	n.Value = v
	return t.add(n)
}

// NewConstBuf returns a constant node with a freshly allocated zeroed
// r-by-c value for the caller to fill in place (arena-backed on arena
// tapes). It is the allocation-free analogue of Const(matrix.NewDense(..)).
func (t *Tape) NewConstBuf(r, c int) *Node {
	n := t.newNode()
	n.Value = t.newZeroDense(r, c)
	return t.add(n)
}

// Use introduces a parameter; gradients accumulate into p.Grad.
func (t *Tape) Use(p *Param) *Node {
	n := t.newNode()
	n.Value = p.Value
	n.grad = p.Grad
	n.needs = true
	return t.add(n)
}

// Backward runs reverse-mode differentiation from the scalar loss node,
// seeding its gradient with 1.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic("autodiff: Backward requires a 1x1 loss node")
	}
	loss.ensureGrad().Set(0, 0, 1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.grad != nil {
			n.back(n)
		}
	}
}

func (t *Tape) unary(a *Node, value *matrix.Dense, back func(out *Node)) *Node {
	out := t.newNode()
	out.Value = value
	out.needs = a.needs
	if a.needs {
		out.back = back
	}
	return t.add(out)
}

func (t *Tape) binary(a, b *Node, value *matrix.Dense, back func(out *Node)) *Node {
	out := t.newNode()
	out.Value = value
	out.needs = a.needs || b.needs
	if out.needs {
		out.back = back
	}
	return t.add(out)
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := t.newDenseCopy(a.Value)
	v.Add(b.Value)
	return t.binary(a, b, v, func(out *Node) {
		if a.needs {
			a.ensureGrad().Add(out.grad)
		}
		if b.needs {
			b.ensureGrad().Add(out.grad)
		}
	})
}

// Sub returns a - b (same shape).
func (t *Tape) Sub(a, b *Node) *Node {
	v := t.newDenseCopy(a.Value)
	v.Sub(b.Value)
	return t.binary(a, b, v, func(out *Node) {
		if a.needs {
			a.ensureGrad().Add(out.grad)
		}
		if b.needs {
			b.ensureGrad().Sub(out.grad)
		}
	})
}

// Mul returns the element-wise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := t.newDense(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = x * b.Value.Data[i]
	}
	return t.binary(a, b, v, func(out *Node) {
		if a.needs {
			g := a.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.grad.Data[i] * b.Value.Data[i]
			}
		}
		if b.needs {
			g := b.ensureGrad()
			for i := range g.Data {
				g.Data[i] += out.grad.Data[i] * a.Value.Data[i]
			}
		}
	})
}

// Scale returns alpha * a.
func (t *Tape) Scale(a *Node, alpha float64) *Node {
	v := t.newDense(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = x * alpha
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		floats.Axpy(alpha, out.grad.Data, g.Data)
	})
}

// MatMul returns a · b, computed by the blocked kernel; the backward pass
// runs the transposed-product kernels into tape scratch, avoiding the two
// temporaries the pre-arena implementation allocated per call.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.newDense(a.Value.Rows, b.Value.Cols)
	matrix.MulInto(v, a.Value, b.Value, t.Workers)
	return t.binary(a, b, v, func(out *Node) {
		tp := out.tape
		if a.needs {
			s := tp.newDense(a.Value.Rows, a.Value.Cols)
			matrix.MulABTInto(s, out.grad, b.Value, tp.Workers)
			a.ensureGrad().Add(s)
		}
		if b.needs {
			s := tp.newDense(b.Value.Rows, b.Value.Cols)
			matrix.MulATBInto(s, a.Value, out.grad, tp.Workers)
			b.ensureGrad().Add(s)
		}
	})
}

// MatMulABT returns a · bᵀ (used for attention scores).
func (t *Tape) MatMulABT(a, b *Node) *Node {
	v := t.newDense(a.Value.Rows, b.Value.Rows)
	matrix.MulABTInto(v, a.Value, b.Value, t.Workers)
	return t.binary(a, b, v, func(out *Node) {
		tp := out.tape
		if a.needs {
			s := tp.newDense(a.Value.Rows, a.Value.Cols)
			matrix.MulInto(s, out.grad, b.Value, tp.Workers)
			a.ensureGrad().Add(s)
		}
		if b.needs {
			s := tp.newDense(b.Value.Rows, b.Value.Cols)
			matrix.MulATBInto(s, out.grad, a.Value, tp.Workers)
			b.ensureGrad().Add(s)
		}
	})
}

// AddRowVec broadcasts the 1-by-c row vector b over every row of a.
func (t *Tape) AddRowVec(a, b *Node) *Node {
	if b.Value.Rows != 1 || b.Value.Cols != a.Value.Cols {
		panic("autodiff: AddRowVec shape mismatch")
	}
	v := t.newDenseCopy(a.Value)
	for i := 0; i < v.Rows; i++ {
		floats.Add(v.Row(i), b.Value.Row(0))
	}
	return t.binary(a, b, v, func(out *Node) {
		if a.needs {
			a.ensureGrad().Add(out.grad)
		}
		if b.needs {
			g := b.ensureGrad().Row(0)
			for i := 0; i < out.grad.Rows; i++ {
				floats.Add(g, out.grad.Row(i))
			}
		}
	})
}

// AddColVec broadcasts the r-by-1 column vector b over every column of a.
func (t *Tape) AddColVec(a, b *Node) *Node {
	if b.Value.Cols != 1 || b.Value.Rows != a.Value.Rows {
		panic("autodiff: AddColVec shape mismatch")
	}
	v := t.newDenseCopy(a.Value)
	for i := 0; i < v.Rows; i++ {
		bi := b.Value.At(i, 0)
		row := v.Row(i)
		for j := range row {
			row[j] += bi
		}
	}
	return t.binary(a, b, v, func(out *Node) {
		if a.needs {
			a.ensureGrad().Add(out.grad)
		}
		if b.needs {
			g := b.ensureGrad()
			for i := 0; i < out.grad.Rows; i++ {
				g.Data[i] += floats.Sum(out.grad.Row(i))
			}
		}
	})
}

func (t *Tape) pointwise(a *Node, f, df func(float64) float64) *Node {
	v := t.newDense(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = f(x)
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for i := range g.Data {
			g.Data[i] += out.grad.Data[i] * df(a.Value.Data[i])
		}
	})
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	sig := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	return t.pointwise(a, sig, func(x float64) float64 {
		s := sig(x)
		return s * (1 - s)
	})
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.pointwise(a, math.Tanh, func(x float64) float64 {
		th := math.Tanh(x)
		return 1 - th*th
	})
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.pointwise(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// GELU applies the Gaussian error linear unit (tanh approximation used by
// BERT) element-wise.
func (t *Tape) GELU(a *Node) *Node {
	const c = 0.7978845608028654 // sqrt(2/π)
	gelu := func(x float64) float64 {
		return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
	}
	dgelu := func(x float64) float64 {
		inner := c * (x + 0.044715*x*x*x)
		th := math.Tanh(inner)
		dinner := c * (1 + 3*0.044715*x*x)
		return 0.5*(1+th) + 0.5*x*(1-th*th)*dinner
	}
	return t.pointwise(a, gelu, dgelu)
}

// SoftmaxRows applies softmax independently to each row.
func (t *Tape) SoftmaxRows(a *Node) *Node {
	v := t.newDense(a.Value.Rows, a.Value.Cols)
	for i := 0; i < v.Rows; i++ {
		floats.Softmax(v.Row(i), a.Value.Row(i))
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for i := 0; i < v.Rows; i++ {
			s := v.Row(i)
			og := out.grad.Row(i)
			dot := floats.Dot(og, s)
			gr := g.Row(i)
			for j := range gr {
				gr[j] += s[j] * (og[j] - dot)
			}
		}
	})
}

// GatherRows selects rows of a by index (embedding lookup). Gradients
// scatter-add back into the source rows. The index slice is copied, so
// callers may reuse their buffer after the call.
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	cp := t.newInts(len(idx))
	copy(cp, idx)
	idx = cp
	v := t.newDense(len(idx), a.Value.Cols)
	for r, id := range idx {
		copy(v.Row(r), a.Value.Row(id))
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for r, id := range idx {
			floats.Add(g.Row(id), out.grad.Row(r))
		}
	})
}

// ConcatCols concatenates nodes horizontally (same row count).
func (t *Tape) ConcatCols(nodes ...*Node) *Node {
	rows := nodes[0].Value.Rows
	cols := 0
	needs := false
	for _, n := range nodes {
		if n.Value.Rows != rows {
			panic("autodiff: ConcatCols row mismatch")
		}
		cols += n.Value.Cols
		needs = needs || n.needs
	}
	v := t.newDense(rows, cols)
	off := 0
	for _, n := range nodes {
		for i := 0; i < rows; i++ {
			copy(v.Row(i)[off:off+n.Value.Cols], n.Value.Row(i))
		}
		off += n.Value.Cols
	}
	out := t.newNode()
	out.Value = v
	out.needs = needs
	if needs {
		out.back = func(out *Node) {
			off := 0
			for _, n := range nodes {
				if n.needs {
					g := n.ensureGrad()
					for i := 0; i < rows; i++ {
						floats.Add(g.Row(i), out.grad.Row(i)[off:off+n.Value.Cols])
					}
				}
				off += n.Value.Cols
			}
		}
	}
	return t.add(out)
}

// ConcatRows concatenates nodes vertically (same column count).
func (t *Tape) ConcatRows(nodes ...*Node) *Node {
	cols := nodes[0].Value.Cols
	rows := 0
	needs := false
	for _, n := range nodes {
		if n.Value.Cols != cols {
			panic("autodiff: ConcatRows col mismatch")
		}
		rows += n.Value.Rows
		needs = needs || n.needs
	}
	v := t.newDense(rows, cols)
	r := 0
	for _, n := range nodes {
		copy(v.Data[r*cols:(r+n.Value.Rows)*cols], n.Value.Data)
		r += n.Value.Rows
	}
	out := t.newNode()
	out.Value = v
	out.needs = needs
	if needs {
		out.back = func(out *Node) {
			r := 0
			for _, n := range nodes {
				if n.needs {
					g := n.ensureGrad()
					floats.Add(g.Data, out.grad.Data[r*cols:(r+n.Value.Rows)*cols])
				}
				r += n.Value.Rows
			}
		}
	}
	return t.add(out)
}

// SliceCols returns columns [from, to) of a.
func (t *Tape) SliceCols(a *Node, from, to int) *Node {
	v := t.newDense(a.Value.Rows, to-from)
	for i := 0; i < v.Rows; i++ {
		copy(v.Row(i), a.Value.Row(i)[from:to])
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for i := 0; i < out.Value.Rows; i++ {
			floats.Add(g.Row(i)[from:to], out.grad.Row(i))
		}
	})
}

// SliceRows returns rows [from, to) of a.
func (t *Tape) SliceRows(a *Node, from, to int) *Node {
	cols := a.Value.Cols
	v := t.newDense(to-from, cols)
	copy(v.Data, a.Value.Data[from*cols:to*cols])
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		floats.Add(g.Data[from*cols:to*cols], out.grad.Data)
	})
}

// MeanRows averages rows into a 1-by-c node.
func (t *Tape) MeanRows(a *Node) *Node {
	v := t.newZeroDense(1, a.Value.Cols)
	for i := 0; i < a.Value.Rows; i++ {
		floats.Add(v.Row(0), a.Value.Row(i))
	}
	inv := 1 / float64(a.Value.Rows)
	floats.Scale(inv, v.Row(0))
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for i := 0; i < g.Rows; i++ {
			floats.Axpy(inv, out.grad.Row(0), g.Row(i))
		}
	})
}

// MaxPoolRows takes the column-wise maximum over rows into a 1-by-c node;
// gradients route to the argmax rows.
func (t *Tape) MaxPoolRows(a *Node) *Node {
	cols := a.Value.Cols
	v := t.newDense(1, cols)
	arg := t.newInts(cols)
	for j := 0; j < cols; j++ {
		best, bi := a.Value.At(0, j), 0
		for i := 1; i < a.Value.Rows; i++ {
			if x := a.Value.At(i, j); x > best {
				best, bi = x, i
			}
		}
		v.Set(0, j, best)
		arg[j] = bi
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for j := 0; j < cols; j++ {
			g.Set(arg[j], j, g.At(arg[j], j)+out.grad.At(0, j))
		}
	})
}

// LayerNormRows normalizes each row to zero mean and unit variance, then
// applies the learned per-column gain and bias (1-by-c nodes).
func (t *Tape) LayerNormRows(a, gain, bias *Node) *Node {
	const eps = 1e-5
	rows, cols := a.Value.Rows, a.Value.Cols
	v := t.newDense(rows, cols)
	xhat := t.newDense(rows, cols)
	invStd := t.newFloats(rows)
	for i := 0; i < rows; i++ {
		row := a.Value.Row(i)
		mean := floats.Mean(row)
		var variance float64
		for _, x := range row {
			d := x - mean
			variance += d * d
		}
		variance /= float64(cols)
		is := 1 / math.Sqrt(variance+eps)
		invStd[i] = is
		xr := xhat.Row(i)
		vr := v.Row(i)
		for j, x := range row {
			xr[j] = (x - mean) * is
			vr[j] = xr[j]*gain.Value.At(0, j) + bias.Value.At(0, j)
		}
	}
	out := t.newNode()
	out.Value = v
	out.needs = a.needs || gain.needs || bias.needs
	if out.needs {
		out.back = func(out *Node) {
			gd := out.tape.newFloats(cols)
			for i := 0; i < rows; i++ {
				og := out.grad.Row(i)
				xr := xhat.Row(i)
				if gain.needs {
					g := gain.ensureGrad().Row(0)
					for j := range g {
						g[j] += og[j] * xr[j]
					}
				}
				if bias.needs {
					g := bias.ensureGrad().Row(0)
					floats.Add(g, og)
				}
				if a.needs {
					// dL/dx = (gain*og - mean(gain*og) - xhat*mean(gain*og*xhat)) * invStd
					for j := range gd {
						gd[j] = og[j] * gain.Value.At(0, j)
					}
					m1 := floats.Mean(gd)
					var m2 float64
					for j := range gd {
						m2 += gd[j] * xr[j]
					}
					m2 /= float64(cols)
					ga := a.ensureGrad().Row(i)
					for j := range ga {
						ga[j] += (gd[j] - m1 - xr[j]*m2) * invStd[i]
					}
				}
			}
		}
	}
	return t.add(out)
}

// Dropout zeroes entries with probability p and scales survivors by
// 1/(1-p) (inverted dropout). With p <= 0 it is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand) *Node {
	if p <= 0 {
		return a
	}
	keep := 1 - p
	mask := t.newDense(a.Value.Rows, a.Value.Cols)
	for i := range mask.Data {
		if rng.Float64() < keep {
			mask.Data[i] = 1 / keep
		} else {
			mask.Data[i] = 0
		}
	}
	v := t.newDense(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		v.Data[i] = x * mask.Data[i]
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for i := range g.Data {
			g.Data[i] += out.grad.Data[i] * mask.Data[i]
		}
	})
}

// LogSumExpCols reduces over rows: out[0][j] = log Σ_i exp(a[i][j]).
func (t *Tape) LogSumExpCols(a *Node) *Node {
	rows, cols := a.Value.Rows, a.Value.Cols
	v := t.newDense(1, cols)
	col := t.newFloats(rows)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			col[i] = a.Value.At(i, j)
		}
		v.Set(0, j, floats.LogSumExp(col))
	}
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		for j := 0; j < cols; j++ {
			lse := v.At(0, j)
			og := out.grad.At(0, j)
			for i := 0; i < rows; i++ {
				g.Set(i, j, g.At(i, j)+og*math.Exp(a.Value.At(i, j)-lse))
			}
		}
	})
}

// Reshape reinterprets a as an r-by-c matrix with the same number of
// elements (row-major order preserved).
func (t *Tape) Reshape(a *Node, r, c int) *Node {
	if r*c != a.Value.Rows*a.Value.Cols {
		panic("autodiff: Reshape element count mismatch")
	}
	v := t.newDense(r, c)
	copy(v.Data, a.Value.Data)
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		floats.Add(g.Data, out.grad.Data)
	})
}

// SumAll reduces a to a 1x1 scalar node.
func (t *Tape) SumAll(a *Node) *Node {
	v := t.newDense(1, 1)
	v.Set(0, 0, floats.Sum(a.Value.Data))
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		og := out.grad.At(0, 0)
		for i := range g.Data {
			g.Data[i] += og
		}
	})
}

// At extracts element (i, j) as a 1x1 scalar node.
func (t *Tape) At(a *Node, i, j int) *Node {
	v := t.newDense(1, 1)
	v.Set(0, 0, a.Value.At(i, j))
	return t.unary(a, v, func(out *Node) {
		g := a.ensureGrad()
		g.Set(i, j, g.At(i, j)+out.grad.At(0, 0))
	})
}

// CrossEntropy computes the mean softmax cross-entropy between logits
// (n-by-C) and integer targets. The combined op is numerically stable and
// has the exact gradient (softmax − onehot)/n. The target slice is
// copied, so callers may reuse their buffer after the call.
func (t *Tape) CrossEntropy(logits *Node, targets []int) *Node {
	n := logits.Value.Rows
	if len(targets) != n {
		panic("autodiff: CrossEntropy target length mismatch")
	}
	cp := t.newInts(n)
	copy(cp, targets)
	targets = cp
	probs := t.newDense(n, logits.Value.Cols)
	var loss float64
	for i := 0; i < n; i++ {
		floats.Softmax(probs.Row(i), logits.Value.Row(i))
		p := probs.At(i, targets[i])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	v := t.newDense(1, 1)
	v.Set(0, 0, loss/float64(n))
	return t.unary(logits, v, func(out *Node) {
		g := logits.ensureGrad()
		scale := out.grad.At(0, 0) / float64(n)
		for i := 0; i < n; i++ {
			gr := g.Row(i)
			pr := probs.Row(i)
			for j := range gr {
				delta := 0.0
				if j == targets[i] {
					delta = 1
				}
				gr[j] += scale * (pr[j] - delta)
			}
		}
	})
}
