package embtrain

import (
	"math/rand"

	"anchor/internal/corpus"
	"anchor/internal/embedding"
	"anchor/internal/floats"
)

// CBOW trains continuous bag-of-words embeddings with negative sampling
// (Mikolov et al. 2013): the averaged context window predicts the center
// word. This mirrors the word2vec implementation the paper uses.
type CBOW struct {
	// Window is the maximum context half-width; per position the effective
	// width is sampled uniformly from [1, Window] as in word2vec.
	Window int
	// Negatives is the number of negative samples per center word.
	Negatives int
	// Epochs is the number of passes over the corpus.
	Epochs int
	// LR is the initial learning rate, decayed linearly to LR/10000.
	LR float64
	// NegPower is the unigram distribution exponent (0.75 in word2vec).
	NegPower float64
}

// NewCBOW returns a CBOW trainer with repro-scale defaults (the paper's
// hyperparameters, with window and epochs scaled to the synthetic corpus).
func NewCBOW() *CBOW {
	return &CBOW{Window: 5, Negatives: 5, Epochs: 12, LR: 0.1, NegPower: 0.75}
}

// Name implements Trainer.
func (t *CBOW) Name() string { return "cbow" }

// Train implements Trainer.
func (t *CBOW) Train(c *corpus.Corpus, dim int, seed int64) *embedding.Embedding {
	n := c.Vocab.Size()
	rng := rand.New(rand.NewSource(seed))
	e := embedding.New(n, dim)
	e.Words = c.Vocab.Words
	e.Meta = embedding.Meta{
		Algorithm: t.Name(), Corpus: corpusName(c), Dim: dim, Seed: seed, Precision: 32,
	}
	initMatrix(e.Vectors.Data, dim, rng)
	out := make([]float64, n*dim) // output (context->center) matrix, zero-initialized

	table := newUnigramTable(c.Counts, t.NegPower)
	total := float64(t.Epochs) * float64(c.Tokens)
	processed := 0.0
	h := make([]float64, dim)    // averaged context vector
	grad := make([]float64, dim) // gradient accumulated for the context

	for epoch := 0; epoch < t.Epochs; epoch++ {
		order := shuffledOrder(len(c.Sentences), rng)
		for _, si := range order {
			sent := c.Sentences[si]
			for pos, center := range sent {
				lr := t.LR * (1 - processed/total)
				if lr < t.LR*1e-4 {
					lr = t.LR * 1e-4
				}
				processed++

				b := 1 + rng.Intn(t.Window) // effective half-width
				floats.Fill(h, 0)
				count := 0
				for off := -b; off <= b; off++ {
					if off == 0 {
						continue
					}
					p := pos + off
					if p < 0 || p >= len(sent) {
						continue
					}
					floats.Add(h, e.Vectors.Row(int(sent[p])))
					count++
				}
				if count == 0 {
					continue
				}
				floats.Scale(1/float64(count), h)
				floats.Fill(grad, 0)

				for k := 0; k <= t.Negatives; k++ {
					var target int32
					var label float64
					if k == 0 {
						target, label = center, 1
					} else {
						target = table.sample(rng)
						if target == center {
							continue
						}
						label = 0
					}
					row := out[int(target)*dim : (int(target)+1)*dim]
					g := (label - sigmoid(floats.Dot(h, row))) * lr
					floats.Axpy(g, row, grad)
					floats.Axpy(g, h, row)
				}
				gScale := 1 / float64(count)
				for off := -b; off <= b; off++ {
					if off == 0 {
						continue
					}
					p := pos + off
					if p < 0 || p >= len(sent) {
						continue
					}
					floats.Axpy(gScale, grad, e.Vectors.Row(int(sent[p])))
				}
			}
		}
	}
	return e
}

func corpusName(c *corpus.Corpus) string {
	switch c.Year {
	case corpus.Wiki17:
		return "wiki17"
	case corpus.Wiki18:
		return "wiki18"
	}
	return "corpus"
}
