// Package embedding defines the embedding container shared by every
// trainer and consumer in anchor: a dense matrix of word vectors tied to a
// vocabulary, with persistence, orthogonal Procrustes alignment (the paper
// aligns every Wiki'17/Wiki'18 pair before compressing and training
// downstream models), normalization, and frequency-based row slicing.
package embedding

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"anchor/internal/matrix"
)

// Embedding is a vocabulary-aligned word embedding matrix. Row i is the
// vector for word id i; the id space is shared across corpus snapshots so
// rows of two embeddings are directly comparable.
type Embedding struct {
	// Vectors is the n-by-d matrix of word vectors.
	Vectors *matrix.Dense
	// Words maps row -> word string (may be nil when only ids matter).
	Words []string
	// Meta records how the embedding was produced.
	Meta Meta
}

// Meta describes an embedding's provenance, used for caching and reporting.
type Meta struct {
	Algorithm string // "cbow", "glove", "mc", "fasttext"
	Corpus    string // e.g. "wiki17"
	Dim       int
	Seed      int64
	Precision int // bits per entry; 32 means uncompressed
	// Clip is the quantization clipping threshold used when Precision <
	// 32 (zero for full-precision embeddings). Recording it makes a
	// quantized artifact self-describing: the 2^Precision representable
	// levels are a pure function of (Clip, Precision), which is what lets
	// the storage layer re-pack rows as b-bit codes and the query engine
	// serve them through the LUT kernel.
	Clip float64
}

// String renders the provenance as a stable identifier.
func (m Meta) String() string {
	return fmt.Sprintf("%s-%s-d%d-s%d-b%d", m.Algorithm, m.Corpus, m.Dim, m.Seed, m.Precision)
}

// New returns a zeroed embedding with n rows of dimension d.
func New(n, d int) *Embedding {
	return &Embedding{Vectors: matrix.NewDense(n, d)}
}

// Rows returns the vocabulary size.
func (e *Embedding) Rows() int { return e.Vectors.Rows }

// Dim returns the vector dimensionality.
func (e *Embedding) Dim() int { return e.Vectors.Cols }

// Vector returns the vector for word id i (shared storage).
func (e *Embedding) Vector(i int) []float64 { return e.Vectors.Row(i) }

// Clone returns a deep copy of the embedding.
func (e *Embedding) Clone() *Embedding {
	c := &Embedding{Vectors: e.Vectors.Clone(), Meta: e.Meta}
	if e.Words != nil {
		c.Words = append([]string(nil), e.Words...)
	}
	return c
}

// SubRows returns a new embedding containing only the given word ids, in
// order. The paper computes distance measures over the top-10k most
// frequent words; this is the slicing primitive for that.
func (e *Embedding) SubRows(ids []int) *Embedding {
	out := New(len(ids), e.Dim())
	out.Meta = e.Meta
	if e.Words != nil {
		out.Words = make([]string, len(ids))
	}
	for r, id := range ids {
		copy(out.Vectors.Row(r), e.Vectors.Row(id))
		if e.Words != nil {
			out.Words[r] = e.Words[id]
		}
	}
	return out
}

// AlignTo rotates e in place with the orthogonal Procrustes solution so
// that it best matches ref in Frobenius norm: e <- e * R where
// R = argmin_Ω ||ref - e*Ω||_F subject to ΩᵀΩ = I (Schönemann 1966).
// Both embeddings must have identical shape.
func (e *Embedding) AlignTo(ref *Embedding) {
	if e.Rows() != ref.Rows() || e.Dim() != ref.Dim() {
		panic("embedding: AlignTo shape mismatch")
	}
	r := matrix.Procrustes(ref.Vectors, e.Vectors)
	e.Vectors = matrix.Mul(e.Vectors, r)
}

// AlignTagged aligns e to ref with orthogonal Procrustes and marks e's
// provenance as the aligned variant by appending "a" to its corpus tag
// ("wiki18" -> "wiki18a"), so caches keyed on Meta can never confuse an
// aligned embedding with its unaligned original. This is the paper's
// Section 3 protocol step shared by the runner, the CLI, and
// anchor.AlignQuantize.
func AlignTagged(ref, e *Embedding) {
	e.AlignTo(ref)
	e.Meta.Corpus += "a"
}

// gobEmbedding is the serialized form.
type gobEmbedding struct {
	Rows, Cols int
	Data       []float64
	Words      []string
	Meta       Meta
}

// Save writes the embedding to w in gob format.
func (e *Embedding) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(gobEmbedding{
		Rows: e.Rows(), Cols: e.Dim(), Data: e.Vectors.Data, Words: e.Words, Meta: e.Meta,
	})
}

// Load reads an embedding previously written by Save.
func Load(r io.Reader) (*Embedding, error) {
	var g gobEmbedding
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("embedding: decode: %w", err)
	}
	if len(g.Data) != g.Rows*g.Cols {
		return nil, fmt.Errorf("embedding: corrupt payload: %d values for %dx%d", len(g.Data), g.Rows, g.Cols)
	}
	return &Embedding{
		Vectors: matrix.NewDenseData(g.Rows, g.Cols, g.Data),
		Words:   g.Words,
		Meta:    g.Meta,
	}, nil
}

// SaveFile writes the embedding to path, creating or truncating it.
func (e *Embedding) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("embedding: %w", err)
	}
	defer f.Close()
	if err := e.Save(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads an embedding from path.
func LoadFile(path string) (*Embedding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("embedding: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// MemoryBitsPerWord returns the paper's memory axis for this embedding:
// dimension times precision in bits. An uncompressed embedding has
// precision 32.
func (e *Embedding) MemoryBitsPerWord() int {
	b := e.Meta.Precision
	if b == 0 {
		b = 32
	}
	return e.Dim() * b
}
