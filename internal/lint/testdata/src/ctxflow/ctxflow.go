// Package ctxflow is the context-discipline fixture: the test lists it
// as a library package (CtxLibraryPrefixes) and a deterministic package
// (DeterministicPackages), so root-context minting, uncancelable
// blocking calls under a received ctx, and I/O loops that never poll
// their ctx must all be flagged.
package ctxflow

import (
	"context"
	"os"
	"time"
)

// Background mints a root context inside library code.
func Background() context.Context {
	return context.Background() // want `context.Background\(\) in library package`
}

// Todo reaches for the other root constructor.
func Todo() context.Context {
	return context.TODO() // want `context.TODO\(\) in library package`
}

// Sleeper receives a ctx but blocks where cancellation cannot reach.
func Sleeper(ctx context.Context) {
	time.Sleep(time.Millisecond) // want `Sleeper receives a ctx but calls time.Sleep`
}

// RetryLoop performs file I/O each iteration without consulting ctx.
func RetryLoop(ctx context.Context, path string) error {
	for i := 0; i < 3; i++ { // want `I/O loop in RetryLoop never polls ctx`
		if _, err := os.ReadFile(path); err == nil {
			return nil
		}
	}
	return nil
}

// PolledLoop checks ctx.Err each attempt, so deadlines bound the work.
func PolledLoop(ctx context.Context, path string) error {
	for i := 0; i < 3; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := os.ReadFile(path); err == nil {
			return nil
		}
	}
	return nil
}

// NoCtx was never handed a ctx; the loop rule only binds functions that
// received one.
func NoCtx(path string) {
	for i := 0; i < 3; i++ {
		if _, err := os.ReadFile(path); err == nil {
			return
		}
	}
}

// Suppressed documents a deliberate uncancelable pause.
func Suppressed(ctx context.Context) {
	//anchorlint:ignore ctxflow fixture pauses without cancellation on purpose
	time.Sleep(time.Millisecond)
}
