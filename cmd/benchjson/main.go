// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so CI can archive benchmark numbers
// (queries/s, ns/op, bytes/query, ...) as a diffable artifact instead of
// a log to eyeball.
//
// Usage:
//
//	go test -bench ... | tee bench.txt
//	benchjson -o BENCH_query.json < bench.txt
//
// Every benchmark result line ("BenchmarkName-8  3  123 ns/op  9 queries/s")
// becomes one entry carrying the benchmark name (GOMAXPROCS suffix
// stripped), the iteration count, and every reported value keyed by its
// unit. Context lines (goos, goarch, cpu, pkg) are captured once.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkNeighborsPrecision/bits=8".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line: "ns/op", "queries/s", "bytes/query", "B/op", "allocs/op", ...
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkgs    []string `json:"pkgs,omitempty"`
	Results []Result `json:"results"`
}

// parseLine parses one "Benchmark..." result line, reporting ok=false
// for anything else (PASS, ok, headers, failures).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

func run(out string) error {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkgs = append(rep.Pkgs, strings.TrimPrefix(line, "pkg: "))
		default:
			if res, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func main() {
	out := flag.String("o", "-", "output file (- = stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
