package kge

import (
	"anchor/internal/compress"
	"anchor/internal/matrix"
)

func quantizeDense(m *matrix.Dense, bits int, clip float64) *matrix.Dense {
	out := m.Clone()
	compress.QuantizeValues(out.Data, bits, clip)
	return out
}

// QuantizePair compresses a pair of TransE models (trained on FB15K-95 and
// FB15K) to the given precision. As with word embeddings, the clipping
// thresholds are computed on the first model and shared with the second to
// avoid a spurious source of instability; entity and relation matrices get
// independent clips. Unlike word embeddings, the pair is NOT Procrustes-
// aligned first (the paper found alignment hurts KGE quality, Appendix C.5).
func QuantizePair(a, b *TransE, bits int) (*TransE, *TransE) {
	if bits >= compress.FullPrecision {
		return a.Quantize(bits, 0, 0), b.Quantize(bits, 0, 0)
	}
	entClip := compress.OptimalClip(a.Entity.Data, bits)
	relClip := compress.OptimalClip(a.Relation.Data, bits)
	return a.Quantize(bits, entClip, relClip), b.Quantize(bits, entClip, relClip)
}
