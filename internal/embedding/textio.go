package embedding

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"anchor/internal/matrix"
)

// WriteText writes the embedding in the word2vec text format: a header
// line "<rows> <dim>" followed by one "<word> v1 v2 ..." line per word,
// so vectors interoperate with standard NLP tooling. Embeddings without
// word strings use "w<id>" placeholders.
func (e *Embedding) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", e.Rows(), e.Dim()); err != nil {
		return fmt.Errorf("embedding: write text: %w", err)
	}
	for i := 0; i < e.Rows(); i++ {
		word := fmt.Sprintf("w%d", i)
		if e.Words != nil {
			word = e.Words[i]
		}
		if _, err := bw.WriteString(word); err != nil {
			return fmt.Errorf("embedding: write text: %w", err)
		}
		for _, v := range e.Vector(i) {
			if _, err := fmt.Fprintf(bw, " %g", v); err != nil {
				return fmt.Errorf("embedding: write text: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("embedding: write text: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText parses the word2vec text format written by WriteText (and by
// the original word2vec/GloVe/fastText tools).
func ReadText(r io.Reader) (*Embedding, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("embedding: read text: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return nil, fmt.Errorf("embedding: read text: bad header %q", sc.Text())
	}
	rows, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("embedding: read text: bad row count: %w", err)
	}
	dim, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("embedding: read text: bad dimension: %w", err)
	}
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embedding: read text: nonpositive shape %dx%d", rows, dim)
	}

	e := &Embedding{Vectors: matrix.NewDense(rows, dim), Words: make([]string, rows)}
	for i := 0; i < rows; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("embedding: read text: expected %d rows, got %d", rows, i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != dim+1 {
			return nil, fmt.Errorf("embedding: read text: row %d has %d fields, want %d", i, len(fields), dim+1)
		}
		e.Words[i] = fields[0]
		row := e.Vectors.Row(i)
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("embedding: read text: row %d col %d: %w", i, j, err)
			}
			row[j] = v
		}
	}
	return e, sc.Err()
}
