package matrix

// Cache-blocked, goroutine-parallel matrix product kernels.
//
// Determinism contract: every kernel accumulates each output element in
// exactly the same order as the serial reference loop (ascending inner
// index, one accumulator per element), and parallel workers own disjoint
// bands of output rows. Blocking and banding change which elements are
// computed together, never the order or grouping of any floating-point
// addition, so the result is bitwise identical to the serial reference —
// and to the pre-blocking implementations of Mul/MulATB/MulABT — for
// every worker count and block size. Workers is a pure throughput knob.

import (
	"fmt"

	"anchor/internal/floats"
	"anchor/internal/parallel"
)

const (
	// parMinFlops is the approximate multiply-add count below which a
	// product runs serially: spawning goroutines costs more than the
	// arithmetic saved (d-by-d products in Procrustes, tiny grids).
	parMinFlops = 1 << 15
	// mulKBlock is the stripe of a's columns (= rows of b) one pass of
	// Mul streams, sized so the stripe of b rows stays cache-resident
	// while it is reused across the band's output rows.
	mulKBlock = 128
	// abtJBlock is the tile of b rows one pass of MulABT scores against
	// an output row band, keeping the tile hot across the band.
	abtJBlock = 64
)

// runBanded splits [0, rows) into one contiguous band per worker and runs
// band on up to workers goroutines (workers <= 0 selects all CPUs). Small
// problems (by flops) run serially on the calling goroutine. Bands are
// disjoint, so no synchronization beyond the final join is needed.
func runBanded(rows int, flops int, workers int, band func(parallel.Range)) {
	w := parallel.Workers(workers)
	if w > rows {
		w = rows
	}
	if w <= 1 || flops < parMinFlops {
		band(parallel.Range{Lo: 0, Hi: rows})
		return
	}
	bands := parallel.Ranges(rows, w)
	parallel.Run(w, len(bands), func(s int) {
		if bands[s].Len() > 0 {
			band(bands[s])
		}
	}, nil)
}

// MulWorkers returns a*b computed on up to workers goroutines
// (workers <= 0 selects all CPUs). The result is bitwise identical for
// every worker count.
func MulWorkers(a, b *Dense, workers int) *Dense {
	return MulInto(NewDense(a.Rows, b.Cols), a, b, workers)
}

// MulInto computes a*b into dst and returns dst, overwriting its previous
// contents. dst must be a.Rows-by-b.Cols and must not alias a or b.
// Reusing dst across calls keeps hot loops allocation-free.
func MulInto(dst, a, b *Dense, workers int) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul inner dimension mismatch %d vs %d", a.Cols, b.Rows))
	}
	checkDst(dst, a.Rows, b.Cols)
	floats.Fill(dst.Data, 0)
	runBanded(a.Rows, a.Rows*a.Cols*b.Cols, workers, func(band parallel.Range) {
		// Stream b's rows in k-stripes: one stripe stays cache-resident
		// while every output row of the band accumulates against it. Per
		// element the adds still happen in ascending k, matching the
		// serial ikj loop bit for bit.
		for k0 := 0; k0 < a.Cols; k0 += mulKBlock {
			k1 := k0 + mulKBlock
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for i := band.Lo; i < band.Hi; i++ {
				arow := a.Row(i)[k0:k1]
				orow := dst.Row(i)
				for kk, av := range arow {
					if av == 0 {
						continue
					}
					floats.Axpy(av, b.Row(k0+kk), orow)
				}
			}
		}
	})
	return dst
}

// MulATBWorkers returns aᵀ*b without materializing aᵀ, computed on up to
// workers goroutines (workers <= 0 selects all CPUs). The result is
// bitwise identical for every worker count.
func MulATBWorkers(a, b *Dense, workers int) *Dense {
	return MulATBInto(NewDense(a.Cols, b.Cols), a, b, workers)
}

// MulATBInto computes aᵀ*b into dst and returns dst, overwriting its
// previous contents. dst must be a.Cols-by-b.Cols and must not alias a
// or b.
func MulATBInto(dst, a, b *Dense, workers int) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matrix: MulATB row mismatch %d vs %d", a.Rows, b.Rows))
	}
	checkDst(dst, a.Cols, b.Cols)
	floats.Fill(dst.Data, 0)
	runBanded(a.Cols, a.Rows*a.Cols*b.Cols, workers, func(band parallel.Range) {
		// Each band owns output rows [Lo, Hi) — a contiguous slice of a's
		// columns. Streaming r keeps b.Row(r) hot across the band, and
		// every output element still accumulates in ascending r, matching
		// the serial reference bit for bit.
		for r := 0; r < a.Rows; r++ {
			arow := a.Row(r)
			brow := b.Row(r)
			for i := band.Lo; i < band.Hi; i++ {
				if av := arow[i]; av != 0 {
					floats.Axpy(av, brow, dst.Row(i))
				}
			}
		}
	})
	return dst
}

// MulABTWorkers returns a*bᵀ without materializing bᵀ, computed on up to
// workers goroutines (workers <= 0 selects all CPUs). The result is
// bitwise identical for every worker count.
func MulABTWorkers(a, b *Dense, workers int) *Dense {
	return MulABTInto(NewDense(a.Rows, b.Rows), a, b, workers)
}

// MulABTInto computes a*bᵀ into dst and returns dst, overwriting its
// previous contents. dst must be a.Rows-by-b.Rows and must not alias a
// or b. This is the workhorse of the batched k-NN engine and the query
// read path, which reuse dst across query blocks.
//
// The inner loops interleave independent output elements — four a-rows
// against one streamed b-row when the band is tall enough, four b-rows
// against one a-row otherwise — which hides floating-point add latency
// behind four independent accumulator chains and lets one load of a
// b-row serve four queries. Every output element still accumulates with
// its own single accumulator in ascending k, exactly the serial Dot
// order, so results stay bitwise identical to the reference loop (and to
// every other batch shape) for every worker count.
func MulABTInto(dst, a, b *Dense, workers int) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulABT col mismatch %d vs %d", a.Cols, b.Cols))
	}
	checkDst(dst, a.Rows, b.Rows)
	runBanded(a.Rows, a.Rows*a.Cols*b.Rows, workers, func(band parallel.Range) {
		// Tile b's rows so a tile is scored against every row of the band
		// while cache-hot.
		for j0 := 0; j0 < b.Rows; j0 += abtJBlock {
			j1 := j0 + abtJBlock
			if j1 > b.Rows {
				j1 = b.Rows
			}
			i := band.Lo
			for ; i+4 <= band.Hi; i += 4 {
				a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
				o0, o1, o2, o3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
				j := j0
				for ; j+2 <= j1; j += 2 {
					b0 := b.Row(j)
					// Reslicing to b0's length eliminates bounds checks in
					// the hot loop below.
					b1 := b.Row(j + 1)[:len(b0):len(b0)]
					x0, x1, x2, x3 := a0[:len(b0):len(b0)], a1[:len(b0):len(b0)], a2[:len(b0):len(b0)], a3[:len(b0):len(b0)]
					var s00, s01, s10, s11, s20, s21, s30, s31 float64
					for k, bv0 := range b0 {
						bv1 := b1[k]
						v0, v1, v2, v3 := x0[k], x1[k], x2[k], x3[k]
						s00 += v0 * bv0
						s01 += v0 * bv1
						s10 += v1 * bv0
						s11 += v1 * bv1
						s20 += v2 * bv0
						s21 += v2 * bv1
						s30 += v3 * bv0
						s31 += v3 * bv1
					}
					o0[j], o0[j+1] = s00, s01
					o1[j], o1[j+1] = s10, s11
					o2[j], o2[j+1] = s20, s21
					o3[j], o3[j+1] = s30, s31
				}
				for ; j < j1; j++ {
					brow := b.Row(j)
					var s0, s1, s2, s3 float64
					for k, bv := range brow {
						s0 += a0[k] * bv
						s1 += a1[k] * bv
						s2 += a2[k] * bv
						s3 += a3[k] * bv
					}
					o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
				}
			}
			for ; i < band.Hi; i++ {
				arow := a.Row(i)
				orow := dst.Row(i)
				j := j0
				for ; j+4 <= j1; j += 4 {
					b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
					var s0, s1, s2, s3 float64
					for k, av := range arow {
						s0 += av * b0[k]
						s1 += av * b1[k]
						s2 += av * b2[k]
						s3 += av * b3[k]
					}
					orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
				}
				for ; j < j1; j++ {
					orow[j] = floats.Dot(arow, b.Row(j))
				}
			}
		}
	})
	return dst
}

func checkDst(dst *Dense, rows, cols int) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("matrix: dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, rows, cols))
	}
}
