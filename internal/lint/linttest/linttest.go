// Package linttest is an analysistest-style harness for the anchorlint
// analyzers: it type-checks a directory of fixture files, runs one
// analyzer over them, and compares the diagnostics against `// want`
// comments in the fixtures.
//
// A want comment holds one or more quoted regular expressions and binds to
// its own line:
//
//	sum += v // want `accumulation`
//	rand.Int() // want "global math/rand" "seeded"
//
// Every diagnostic must be claimed by a want on its line and every want
// must be claimed by a diagnostic; findings suppressed by a valid
// //anchorlint:ignore directive are dropped before matching, which is how
// fixtures assert that suppression works.
package linttest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"go/ast"

	"anchor/internal/lint"
)

// want is one expected diagnostic: a line plus a message pattern.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	claimed bool
}

var quoted = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run type-checks the fixture directory as package pkgPath, runs the
// analyzer, and reports any mismatch between diagnostics and // want
// comments as test errors.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	wants := collectWants(t, pkg.Fset, pkg.Files)
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for _, w := range wants {
		if !w.claimed {
			t.Errorf("%s: %s:%d: no diagnostic matched want %q", a.Name, w.file, w.line, w.re)
		}
	}
}

// Collect type-checks the fixture directory as package pkgPath, runs
// the analyzer, and returns the raw diagnostics without matching them
// against expectation comments. It exists for negative tests: loading
// the same fixture under a package identity outside a rule's configured
// scope and asserting which findings disappear.
func Collect(t *testing.T, a *lint.Analyzer, dir, pkgPath string) []lint.Diagnostic {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

// loadFixture parses and type-checks the fixture directory as package
// pkgPath. Fixture _test.go files mirror the loader's treatment of real
// test files: parsed but not type-checked, visible to analyzers only as
// exercise evidence (faultsite's chaos-plan check), and never a source
// of findings or expectations.
func loadFixture(t *testing.T, dir, pkgPath string) *lint.Package {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	fset := token.NewFileSet()
	var files, testFiles []*ast.File
	importSet := map[string]bool{}
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		if strings.HasSuffix(p, "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			importSet[path] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports, err := lint.ExportData(dir, imports...)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	typed, info, err := lint.Check(pkgPath, fset, files, lint.ExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("fixtures must type-check: %v", err)
	}
	return &lint.Package{PkgPath: pkgPath, Fset: fset, Files: files, TestFiles: testFiles, Types: typed, TypesInfo: info}
}

// collectWants extracts every `// want "re"...` expectation.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var ws []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				specs := quoted.FindAllString(text[i+len("want "):], -1)
				if len(specs) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
				}
				for _, s := range specs {
					pat, err := strconv.Unquote(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, s, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return ws
}

// claim marks the first unclaimed want matching the diagnostic.
func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.claimed && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.claimed = true
			return true
		}
	}
	return false
}
