// Package bert implements the paper's contextual word embedding extension
// (Section 6.2, Appendix C.6): a shallow 3-layer BERT-style transformer
// encoder pre-trained with a masked language model objective on
// sub-sampled corpus snapshots, then used as a FROZEN feature extractor for
// downstream linear classifiers. Dimension experiments vary the
// transformer output size; precision experiments uniformly quantize the
// last transformer layer's outputs, exactly as in the paper.
package bert

import (
	"math"
	"math/rand"

	"anchor/internal/autodiff"
	"anchor/internal/corpus"
	"anchor/internal/matrix"
	"anchor/internal/nn"
)

// Config parameterizes pre-training. The paper uses 3 transformer layers
// on 10% sub-sampled Wikipedia with output dimensionality swept from a
// quarter of to 4x the BERT-base hidden size.
type Config struct {
	Layers        int
	Hidden        int
	Heads         int
	FFN           int
	SeqLen        int
	MaskProb      float64
	Epochs        int
	LR            float64
	SubsampleFrac float64
	Seed          int64
}

// DefaultConfig returns the repro-scale 3-layer configuration for a given
// output dimensionality.
func DefaultConfig(hidden int, seed int64) Config {
	heads := 2
	if hidden >= 64 {
		heads = 4
	}
	return Config{
		Layers: 3, Hidden: hidden, Heads: heads, FFN: 2 * hidden,
		SeqLen: 16, MaskProb: 0.15, Epochs: 2, LR: 1e-3,
		SubsampleFrac: 0.1, Seed: seed,
	}
}

type encoderLayer struct {
	wq, wk, wv, wo   *nn.Linear
	ffn1, ffn2       *nn.Linear
	ln1Gain, ln1Bias *autodiff.Param
	ln2Gain, ln2Bias *autodiff.Param
}

func newEncoderLayer(name string, hidden, ffn int, rng *rand.Rand) *encoderLayer {
	ones := func(n string) *autodiff.Param {
		m := matrix.NewDense(1, hidden)
		for i := range m.Data {
			m.Data[i] = 1
		}
		return autodiff.NewParam(n, m)
	}
	return &encoderLayer{
		wq:      nn.NewLinear(name+".q", hidden, hidden, rng),
		wk:      nn.NewLinear(name+".k", hidden, hidden, rng),
		wv:      nn.NewLinear(name+".v", hidden, hidden, rng),
		wo:      nn.NewLinear(name+".o", hidden, hidden, rng),
		ffn1:    nn.NewLinear(name+".ffn1", hidden, ffn, rng),
		ffn2:    nn.NewLinear(name+".ffn2", ffn, hidden, rng),
		ln1Gain: ones(name + ".ln1g"),
		ln1Bias: autodiff.NewParam(name+".ln1b", matrix.NewDense(1, hidden)),
		ln2Gain: ones(name + ".ln2g"),
		ln2Bias: autodiff.NewParam(name+".ln2b", matrix.NewDense(1, hidden)),
	}
}

func (l *encoderLayer) params() []*autodiff.Param {
	out := append(l.wq.Params(), l.wk.Params()...)
	out = append(out, l.wv.Params()...)
	out = append(out, l.wo.Params()...)
	out = append(out, l.ffn1.Params()...)
	out = append(out, l.ffn2.Params()...)
	return append(out, l.ln1Gain, l.ln1Bias, l.ln2Gain, l.ln2Bias)
}

// Model is a pre-trained BERT-style encoder.
type Model struct {
	Cfg       Config
	VocabSize int // corpus vocab; the [MASK] token is row VocabSize
	tokEmb    *autodiff.Param
	posEmb    *autodiff.Param
	layers    []*encoderLayer
	mlmOut    *nn.Linear
}

func (m *Model) params() []*autodiff.Param {
	out := []*autodiff.Param{m.tokEmb, m.posEmb}
	for _, l := range m.layers {
		out = append(out, l.params()...)
	}
	return append(out, m.mlmOut.Params()...)
}

// encode runs the transformer over a token sequence on the given tape and
// returns the last layer's hidden states (n-by-Hidden).
func (m *Model) encode(tp *autodiff.Tape, tokens []int) *autodiff.Node {
	n := len(tokens)
	x := tp.Add(
		tp.GatherRows(tp.Use(m.tokEmb), tokens),
		tp.SliceRows(tp.Use(m.posEmb), 0, n),
	)
	dh := m.Cfg.Hidden / m.Cfg.Heads
	scale := 1 / math.Sqrt(float64(dh))
	for _, l := range m.layers {
		q := l.wq.Forward(tp, x)
		k := l.wk.Forward(tp, x)
		v := l.wv.Forward(tp, x)
		heads := make([]*autodiff.Node, m.Cfg.Heads)
		for h := 0; h < m.Cfg.Heads; h++ {
			qh := tp.SliceCols(q, h*dh, (h+1)*dh)
			kh := tp.SliceCols(k, h*dh, (h+1)*dh)
			vh := tp.SliceCols(v, h*dh, (h+1)*dh)
			scores := tp.Scale(tp.MatMulABT(qh, kh), scale)
			heads[h] = tp.MatMul(tp.SoftmaxRows(scores), vh)
		}
		attn := l.wo.Forward(tp, tp.ConcatCols(heads...))
		x = tp.LayerNormRows(tp.Add(x, attn), tp.Use(l.ln1Gain), tp.Use(l.ln1Bias))
		ffn := l.ffn2.Forward(tp, tp.GELU(l.ffn1.Forward(tp, x)))
		x = tp.LayerNormRows(tp.Add(x, ffn), tp.Use(l.ln2Gain), tp.Use(l.ln2Bias))
	}
	return x
}

// Pretrain trains the masked language model on a sub-sample of the corpus
// and returns the frozen encoder.
func Pretrain(c *corpus.Corpus, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := c.Vocab.Size()
	m := &Model{Cfg: cfg, VocabSize: vocab}

	tok := matrix.NewDense(vocab+1, cfg.Hidden) // +1 for [MASK]
	pos := matrix.NewDense(cfg.SeqLen, cfg.Hidden)
	nn.XavierInit(tok, vocab+1, cfg.Hidden, rng)
	nn.XavierInit(pos, cfg.SeqLen, cfg.Hidden, rng)
	m.tokEmb = autodiff.NewParam("tok", tok)
	m.posEmb = autodiff.NewParam("pos", pos)
	for i := 0; i < cfg.Layers; i++ {
		m.layers = append(m.layers, newEncoderLayer("layer", cfg.Hidden, cfg.FFN, rng))
	}
	m.mlmOut = nn.NewLinear("mlm", cfg.Hidden, vocab, rng)

	// Deterministic sub-sample of sentences.
	var sentences [][]int32
	for i, s := range c.Sentences {
		if float64(i%1000)/1000 < cfg.SubsampleFrac {
			sentences = append(sentences, s)
		}
	}
	params := m.params()
	opt := nn.NewAdam(cfg.LR)
	maskTok := vocab

	order := make([]int, len(sentences))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, si := range order {
			sent := sentences[si]
			n := len(sent)
			if n > cfg.SeqLen {
				n = cfg.SeqLen
			}
			if n < 2 {
				continue
			}
			tokens := make([]int, n)
			for i := 0; i < n; i++ {
				tokens[i] = int(sent[i])
			}
			// Mask positions (at least one) with BERT's 80/10/10 rule.
			var maskedPos []int
			var maskedTarget []int
			for i := 0; i < n; i++ {
				if rng.Float64() < cfg.MaskProb {
					maskedPos = append(maskedPos, i)
					maskedTarget = append(maskedTarget, tokens[i])
					switch r := rng.Float64(); {
					case r < 0.8:
						tokens[i] = maskTok
					case r < 0.9:
						tokens[i] = rng.Intn(vocab)
					}
				}
			}
			if len(maskedPos) == 0 {
				i := rng.Intn(n)
				maskedPos = []int{i}
				maskedTarget = []int{tokens[i]}
				tokens[i] = maskTok
			}
			tp := autodiff.NewTape()
			hidden := m.encode(tp, tokens)
			masked := tp.GatherRows(hidden, maskedPos)
			loss := tp.CrossEntropy(m.mlmOut.Forward(tp, masked), maskedTarget)
			tp.Backward(loss)
			opt.Step(params)
		}
	}
	return m
}

// Encode returns the frozen last-layer hidden states for a sentence
// (truncated to SeqLen), with no gradient tracking.
func (m *Model) Encode(tokens []int32) *matrix.Dense {
	n := len(tokens)
	if n > m.Cfg.SeqLen {
		n = m.Cfg.SeqLen
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = int(tokens[i])
	}
	tp := autodiff.NewTape()
	return m.encode(tp, ids).Value
}

// SentenceFeature returns the mean-pooled last-layer representation, the
// sentence embedding the downstream linear classifiers consume.
func (m *Model) SentenceFeature(tokens []int32) []float64 {
	h := m.Encode(tokens)
	out := make([]float64, m.Cfg.Hidden)
	for i := 0; i < h.Rows; i++ {
		row := h.Row(i)
		for j := range out {
			out[j] += row[j]
		}
	}
	for j := range out {
		out[j] /= float64(h.Rows)
	}
	return out
}

// MLMLoss evaluates the average masked-LM loss over up to maxSentences
// corpus sentences (deterministic masking), for convergence tests.
func (m *Model) MLMLoss(c *corpus.Corpus, maxSentences int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var total float64
	count := 0
	for si := 0; si < len(c.Sentences) && count < maxSentences; si++ {
		sent := c.Sentences[si]
		n := len(sent)
		if n > m.Cfg.SeqLen {
			n = m.Cfg.SeqLen
		}
		if n < 2 {
			continue
		}
		tokens := make([]int, n)
		for i := 0; i < n; i++ {
			tokens[i] = int(sent[i])
		}
		pos := rng.Intn(n)
		target := tokens[pos]
		tokens[pos] = m.VocabSize
		tp := autodiff.NewTape()
		hidden := m.encode(tp, tokens)
		masked := tp.GatherRows(hidden, []int{pos})
		loss := tp.CrossEntropy(m.mlmOut.Forward(tp, masked), []int{target})
		total += loss.Value.At(0, 0)
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
