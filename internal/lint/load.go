package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Fset maps positions in Files.
	Fset *token.FileSet
	// Files are the parsed library sources (no _test.go files).
	Files []*ast.File
	// TestFiles are the package's _test.go sources, parsed but not
	// type-checked. Module-level analyzers read them for evidence of
	// exercise (the faultsite chaos-plan check), never for findings.
	TestFiles []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// ExportPath is the compiler export-data file `go list -export`
	// produced for the package. The path embeds the build-cache action
	// ID — a hash over the package's transitive sources — so it doubles
	// as a content-addressed identity for fact caching.
	ExportPath string
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Export       string
	DepOnly      bool
	Standard     bool
	Error        *struct{ Err string }
}

// goList runs `go list -export -json -deps` in dir and returns the decoded
// package stream. The -export flag makes the go tool compile (or fetch
// from the build cache) export data for every listed package, which is how
// the type checker resolves imports without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists patterns from dir (the module root, or "" for the current
// directory), parses every matched non-test package, and type-checks it
// against export data for its dependencies. Packages matched only as
// dependencies are used for imports but not analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goListCached(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Error != nil || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", filepath.Join(p.Dir, name), err)
			}
			files = append(files, f)
		}
		// Test files are parsed (for the chaos-plan exercise check) but
		// not type-checked: their dependencies are not in the -export
		// closure, and no analyzer reports findings in them.
		var testFiles []*ast.File
		for _, name := range append(append([]string{}, p.TestGoFiles...), p.XTestGoFiles...) {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", filepath.Join(p.Dir, name), err)
			}
			testFiles = append(testFiles, f)
		}
		pkg, info, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath:    p.ImportPath,
			Fset:       fset,
			Files:      files,
			TestFiles:  testFiles,
			Types:      pkg,
			TypesInfo:  info,
			ExportPath: p.Export,
		})
	}
	return out, nil
}

// ExportData lists the given packages from dir and returns the map of
// import path to compiler export-data file for them and all their
// dependencies. The lint/linttest harness uses it to type-check fixture
// files that live under testdata (where go list patterns cannot reach).
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	if len(patterns) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goListCached(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a go/types importer that resolves import paths
// through the supplied map of import path to compiler export-data file (as
// produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Check type-checks one package's files with full object and selection
// resolution, returning the package and its types.Info.
func Check(pkgPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return pkg, info, nil
}
