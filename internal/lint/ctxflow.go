package lint

import (
	"go/ast"
	"go/types"
)

// CtxLibraryPrefixes lists import-path prefixes treated as library code
// for the ctxflow rule: library functions must accept a caller's context
// rather than mint their own roots. Binaries (cmd/...) own the root
// context and are exempt. Tests may extend the list to cover fixtures.
var CtxLibraryPrefixes = []string{"anchor/internal/"}

// ctxBlockingFuncs are stdlib calls with no cancellation path that a
// context-receiving function must not invoke directly; each maps to the
// sanctioned ctx-aware replacement named in the finding.
var ctxBlockingFuncs = map[[2]string]string{
	{"time", "Sleep"}:    "select on ctx.Done() and a timer instead",
	{"net/http", "Get"}:  "use http.NewRequestWithContext",
	{"net/http", "Post"}: "use http.NewRequestWithContext",
	{"net/http", "Head"}: "use http.NewRequestWithContext",
}

// ctxIOFuncs are direct file-I/O calls that make a loop an I/O loop for
// the poll-ctx check.
var ctxIOFuncs = map[[2]string]bool{
	{"os", "Open"}: true, {"os", "OpenFile"}: true, {"os", "Create"}: true,
	{"os", "ReadFile"}: true, {"os", "WriteFile"}: true,
	{"os", "CreateTemp"}: true, {"os", "ReadDir"}: true,
}

// CtxIOPackages lists packages whose functions constitute I/O when
// called from a loop: the artifact store is the disk layer, so a
// det-package loop calling into it must poll its ctx. Query/serve
// helpers are deliberately absent — most are in-memory and counting them
// would flag every loop in the engine. Tests may override the list.
var CtxIOPackages = []string{"anchor/internal/store"}

// CtxFlow enforces the context-discipline clauses PR 8 introduced by
// hand: library packages never mint root contexts
// (context.Background/TODO), a function that receives a ctx does not
// bypass it with uncancelable blocking calls, and I/O loops in
// deterministic packages poll the ctx each iteration so deadlines
// actually bound retry and scan work.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/context.TODO() in library packages, " +
		"uncancelable blocking calls (time.Sleep, http.Get) inside " +
		"ctx-receiving functions, and I/O loops in deterministic packages " +
		"that never poll their ctx",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	library := false
	for _, prefix := range CtxLibraryPrefixes {
		if len(pass.PkgPath) >= len(prefix) && pass.PkgPath[:len(prefix)] == prefix {
			library = true
			break
		}
	}
	for _, file := range pass.Files {
		if library {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkgPath, name, ok := pkgFunc(pass.TypesInfo, call); ok &&
					pkgPath == "context" && (name == "Background" || name == "TODO") {
					pass.Reportf(call.Pos(),
						"context.%s() in library package %s: accept a ctx from the caller and forward it, so deadlines and cancellation propagate",
						name, pass.PkgPath)
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxObj := ctxParam(pass.TypesInfo, fd)
			if ctxObj == nil {
				continue
			}
			checkCtxBlocking(pass, fd)
			if IsDeterministicPkg(pass.PkgPath) {
				checkCtxLoops(pass, fd, ctxObj)
			}
		}
	}
	return nil
}

// ctxParam returns the function's context.Context parameter object, or
// nil when the function takes no (named) context.
func ctxParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && obj.Type() != nil && obj.Type().String() == "context.Context" {
				return obj
			}
		}
	}
	return nil
}

// checkCtxBlocking flags uncancelable blocking calls inside a function
// that received a context.
func checkCtxBlocking(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, name, ok := pkgFunc(pass.TypesInfo, call)
		if !ok {
			return true
		}
		if fix, blocking := ctxBlockingFuncs[[2]string{pkgPath, name}]; blocking {
			pass.Reportf(call.Pos(),
				"%s receives a ctx but calls %s.%s, which cannot be canceled: %s",
				fd.Name.Name, pkgPath, name, fix)
		}
		return true
	})
}

// checkCtxLoops flags for/range loops that perform I/O without ever
// consulting the function's ctx: a deadline cannot bound a loop that
// never polls it.
func checkCtxLoops(pass *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !loopDoesIO(pass.TypesInfo, body) {
			return true
		}
		if loopMentionsObj(pass.TypesInfo, n, ctxObj) {
			return true
		}
		pass.Reportf(n.Pos(),
			"I/O loop in %s never polls ctx: check ctx.Err() or select on ctx.Done() each iteration so deadlines bound the work",
			fd.Name.Name)
		return true
	})
}

// loopDoesIO reports whether the loop body contains a direct file-I/O
// call or a call into one of the I/O-layer packages (CtxIOPackages).
func loopDoesIO(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if pkgPath, name, ok := pkgFunc(info, call); ok && ctxIOFuncs[[2]string{pkgPath, name}] {
			found = true
			return false
		}
		if fn := Callee(info, call); fn != nil && fn.Pkg() != nil &&
			pkgInList(fn.Pkg().Path(), CtxIOPackages) {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopMentionsObj reports whether the loop (condition or body)
// references the given object.
func loopMentionsObj(info *types.Info, loop ast.Node, target types.Object) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}
