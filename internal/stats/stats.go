// Package stats provides the statistical tooling used by anchor's
// evaluation: tie-aware rank correlation (Spearman), Pearson correlation,
// and the linear-log trend fits the paper uses to derive its
// stability–memory rule of thumb (Section 3.3 / Appendix C.4).
package stats

import (
	"math"
	"sort"

	"anchor/internal/floats"
	"anchor/internal/matrix"
)

// Ranks returns the 1-based fractional ranks of x; tied values receive the
// average of the ranks they span, matching the convention used by
// scipy.stats.spearmanr.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of x and y.
// It returns 0 when either input has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	mx, my := floats.Mean(x), floats.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the tie-aware Spearman rank correlation of x and y,
// i.e. the Pearson correlation of their fractional ranks.
func Spearman(x, y []float64) float64 {
	return Pearson(Ranks(x), Ranks(y))
}

// LinearFit fits y ≈ a + b*x by ordinary least squares and returns (a, b).
func LinearFit(x, y []float64) (intercept, slope float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs >= 2 paired points")
	}
	a := matrix.NewDense(len(x), 2)
	for i, v := range x {
		a.Set(i, 0, 1)
		a.Set(i, 1, v)
	}
	w := matrix.LeastSquares(a, y)
	return w[0], w[1]
}

// LinearLogPoint is one observation for the stability–memory trend fit:
// a task identifier, the memory (or dimension/precision) value on the log
// axis, and the observed downstream instability in percent.
type LinearLogPoint struct {
	Task string
	X    float64 // e.g. bits/word; must be > 0
	Y    float64 // downstream disagreement, percent
}

// LinearLogFit is the fitted model DI_t ≈ Intercepts[t] - Slope*log2(x),
// mirroring Appendix C.4: a shared slope with one intercept per task.
type LinearLogFit struct {
	Slope      float64 // positive slope means instability falls as memory grows
	Intercepts map[string]float64
}

// Predict returns the fitted instability for task t at memory x.
func (f LinearLogFit) Predict(task string, x float64) float64 {
	return f.Intercepts[task] - f.Slope*math.Log2(x)
}

// FitLinearLog fits the paper's linear-log trend to the given points:
// a single shared slope on log2(x) and an independent intercept per task
// (the design matrix is [log2 x | one-hot(task)], exactly as described in
// Appendix C.4). It panics if fewer than two points are supplied.
func FitLinearLog(points []LinearLogPoint) LinearLogFit {
	if len(points) < 2 {
		panic("stats: FitLinearLog needs >= 2 points")
	}
	tasks := []string{}
	taskIdx := map[string]int{}
	for _, p := range points {
		if _, ok := taskIdx[p.Task]; !ok {
			taskIdx[p.Task] = len(tasks)
			tasks = append(tasks, p.Task)
		}
	}
	cols := 1 + len(tasks)
	a := matrix.NewDense(len(points), cols)
	y := make([]float64, len(points))
	for i, p := range points {
		if p.X <= 0 {
			panic("stats: FitLinearLog requires positive x")
		}
		a.Set(i, 0, -math.Log2(p.X)) // negate so Slope > 0 means "more memory, less instability"
		a.Set(i, 1+taskIdx[p.Task], 1)
		y[i] = p.Y
	}
	w := matrix.LeastSquares(a, y)
	fit := LinearLogFit{Slope: w[0], Intercepts: make(map[string]float64, len(tasks))}
	for t, j := range taskIdx {
		fit.Intercepts[t] = w[1+j]
	}
	return fit
}

// MeanStd returns the mean and population standard deviation of x.
func MeanStd(x []float64) (mean, std float64) {
	return floats.Mean(x), floats.StdDev(x)
}
