package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"anchor/internal/ann"
	"anchor/internal/faults"
)

// ANN sidecar tier: the IVF index built over an embedding artifact's
// normalized rows persists as a versioned, CRC-checked .ann file next to
// the artifact's .bin, keyed by the artifact identity plus the index's
// own nlist (so different cell counts never collide). The sidecar
// follows the disk tier's failure rules: written atomically, quarantined
// on corruption, and rebuilt — never served damaged. Unlike embeddings,
// indexes are derived data, so the memory tier does not hold them (the
// query engine caches its own per-snapshot index) and there is no
// portable fallback encoding: a lost sidecar is just a rebuild.

// siteANNRead is the fault-injection site for sidecar reads.
var siteANNRead = faults.Register("store/ann.read")

// annPath returns the sidecar path for k at the given cell count.
func (s *Store) annPath(k Key, nlist int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-ivf%d%s", k.ID(), nlist, ann.Ext))
}

// LoadANNFile reads and decodes an IVF sidecar in one os.ReadFile; the
// decoded index aliases the file buffer (zero copy, see ann.Decode).
func LoadANNFile(path string) (*ann.Index, error) {
	if err := faults.Error(siteANNRead); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return ann.Decode(data)
}

// GetANN returns the IVF index for the artifact under k, loading the
// sidecar from the disk tier when present and building (then persisting,
// best-effort) otherwise. rows and dim are the indexed snapshot's shape;
// a sidecar that does not match the requested shape and build
// configuration exactly is stale — treated as a miss and overwritten —
// and a corrupt sidecar is quarantined first, so a served index is
// always exactly what build would return. Memory-only stores just build.
func (s *Store) GetANN(k Key, cfg ann.Config, rows, dim int, build func() (*ann.Index, error)) (*ann.Index, error) {
	nlist := cfg.NList
	if nlist <= 0 {
		nlist = ann.DefaultNList(rows)
	}
	path := ""
	if s.dir != "" {
		path = s.annPath(k, nlist)
		ix, err := LoadANNFile(path)
		if err == nil && annMatches(ix, cfg, nlist, rows, dim) {
			s.annDiskHits.Add(1)
			return ix, nil
		}
		if err != nil && errors.Is(err, ann.ErrCorrupt) {
			s.quarantine(path)
		}
		// Anything else — absent file, transient read error, version or
		// shape mismatch — is a miss; the rebuild below overwrites it.
		_ = err
	}

	s.annBuilds.Add(1)
	ix, err := build()
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := s.writeAtomic(k, path, func(w *os.File) error {
			return ann.Encode(w, ix)
		}); err != nil {
			s.persistErrs.Add(1)
		}
	}
	return ix, nil
}

// annMatches reports whether a decoded sidecar is the index the request
// describes: same shape and same build identity (seed, iters, nlist).
func annMatches(ix *ann.Index, cfg ann.Config, nlist, rows, dim int) bool {
	iters := cfg.Iters
	if iters <= 0 {
		iters = ann.DefaultIters
	}
	return ix.Rows == rows && ix.Dim == dim && ix.NList == nlist &&
		ix.Seed == cfg.Seed && ix.Iters == iters
}
