GO ?= go

.PHONY: build test vet fmt bench bench-artifacts

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Kernel and measure micro-benchmarks (the set CI archives per PR),
# including the retained pre-PR k-NN loop for speedup comparison, plus the
# downstream-training benchmarks (fast vs retained reference trainers) and
# the grid-cell benchmark with allocation counts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMulATB|BenchmarkMulABT|BenchmarkKNNMeasure|BenchmarkSVD|BenchmarkEigenspaceInstability|BenchmarkPIPLoss|BenchmarkSemanticDisplacement|BenchmarkQuantize' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkKNNMeasureReference3000' -benchtime 1x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkTrainLinearBOW|BenchmarkNERTrain|BenchmarkGridCell' -benchmem .

# Full paper-artifact regeneration benchmarks (slow; trains the grid).
bench-artifacts:
	$(GO) test -run '^$$' -bench 'BenchmarkFig|BenchmarkTable|BenchmarkRule|BenchmarkProp' -benchtime 1x .
